package raster

import (
	"math"
	"testing"
)

// The fast-sim approximation kernels are not byte-identical to their
// reference counterparts by design; these tests pin the error bounds and
// the exact cases instead.

// TestBoxBlurApproxWithinOneLevel pins the multiply-shift quantisation to
// the exact window mean: never more than one gray level apart, at any
// radius, including through an aliased destination.
func TestBoxBlurApproxWithinOneLevel(t *testing.T) {
	for _, wh := range [][2]int{{7, 5}, {57, 31}, {160, 120}} {
		for radius := 0; radius <= 4; radius++ {
			g := testImage(int64(wh[0]+radius), wh[0], wh[1])
			want := g.BoxBlurInto(dirtyGray(3, 3), dirtyGray(2, 9), radius)
			got := g.Clone().BoxBlurApproxInto(dirtyGray(9, 1), dirtyGray(1, 7), radius)
			for i := range want.Pix {
				d := int(got.Pix[i]) - int(want.Pix[i])
				if d < -1 || d > 1 {
					t.Fatalf("size %v radius %d: approx blur off by %d at pixel %d", wh, radius, d, i)
				}
			}
			// dst aliasing g, as the scan scratch ping-pong does.
			aliased := g.Clone()
			aliased.BoxBlurApproxInto(aliased, dirtyGray(4, 4), radius)
			if !Equal(aliased, got) {
				t.Fatalf("size %v radius %d: aliased approx blur differs", wh, radius)
			}
		}
	}
}

// TestWarpNearestSpecialization pins the allocation-free barrel-free
// nearest warp to the generic row-mapper formulation: identical bytes
// for shift-only, rotate-only and combined mappings — the same contract
// the bilinear pair holds.
func TestWarpNearestSpecialization(t *testing.T) {
	g := testImage(5, 97, 61)
	jit := make([]float64, g.H)
	for y := range jit {
		jit[y] = math.Sin(float64(y)/9) * 1.3
	}
	for _, tc := range []struct {
		name   string
		theta  float64
		jitter []float64
	}{
		{"identity", 0, nil},
		{"jitter", 0, jit},
		{"rotate", 0.004, nil},
		{"rotate-jitter", -0.006, jit},
	} {
		sin, cos := math.Sin(tc.theta), math.Cos(tc.theta)
		got := g.WarpShiftRotateNearestInto(dirtyGray(2, 2), sin, cos, tc.theta != 0, tc.jitter)
		cx, cy := float64(g.W)/2, float64(g.H)/2
		rowf := func(y float64) func(x float64) (float64, float64) {
			shift := 0.0
			if tc.jitter != nil {
				if yi := int(y); yi >= 0 && yi < len(tc.jitter) {
					shift = tc.jitter[yi]
				}
			}
			dy := y - cy
			sinDy, cosDy := sin*dy, cos*dy
			return func(x float64) (float64, float64) {
				if tc.jitter != nil {
					x += shift
				}
				dx := x - cx
				if tc.theta != 0 {
					return cx + (cos*dx - sinDy), cy + (sin*dx + cosDy)
				}
				return cx + dx, cy + dy
			}
		}
		want := g.WarpRowsNearestInto(dirtyGray(3, 3), rowf)
		if !Equal(got, want) {
			t.Fatalf("%s: specialized nearest warp differs from row-mapper formulation in %d pixels",
				tc.name, DiffCount(got, want))
		}
	}
}

// TestWarpRowsNearestExactCases pins the nearest-neighbor warp where it
// is exact: the identity mapping copies the image, and integer
// translations land on whole pixels (clamped at the borders).
func TestWarpRowsNearestExactCases(t *testing.T) {
	g := testImage(3, 41, 29)
	ident := func(y float64) func(x float64) (float64, float64) {
		return func(x float64) (float64, float64) { return x, y }
	}
	if got := g.WarpRowsNearestInto(dirtyGray(2, 2), ident); !Equal(got, g) {
		t.Fatal("identity nearest warp is not a copy")
	}
	const dx, dy = 3, -2
	shift := func(y float64) func(x float64) (float64, float64) {
		return func(x float64) (float64, float64) { return x + dx, y + dy }
	}
	got := g.WarpRowsNearestInto(dirtyGray(2, 2), shift)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			sx, sy := x+dx, y+dy
			if sx < 0 {
				sx = 0
			} else if sx >= g.W {
				sx = g.W - 1
			}
			if sy < 0 {
				sy = 0
			} else if sy >= g.H {
				sy = g.H - 1
			}
			if got.Pix[y*g.W+x] != g.Pix[sy*g.W+sx] {
				t.Fatalf("integer shift: pixel (%d,%d) not the clamped source pixel", x, y)
			}
		}
	}
}
