package raster

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewIsWhite(t *testing.T) {
	g := New(4, 3)
	for _, p := range g.Pix {
		if p != 255 {
			t.Fatal("New not white")
		}
	}
	if NewBlack(2, 2).Pix[0] != 0 {
		t.Fatal("NewBlack not black")
	}
}

func TestAtSetBounds(t *testing.T) {
	g := New(3, 3)
	g.Set(1, 1, 7)
	if g.At(1, 1) != 7 {
		t.Fatal("Set/At")
	}
	if g.At(-1, 0) != 255 || g.At(3, 0) != 255 || g.At(0, 99) != 255 {
		t.Fatal("out-of-bounds reads must be white")
	}
	g.Set(-1, -1, 0) // must not panic
}

func TestFillRectClips(t *testing.T) {
	g := New(4, 4)
	g.FillRect(-5, -5, 2, 2, 0)
	if g.At(0, 0) != 0 || g.At(1, 1) != 0 || g.At(2, 2) != 255 {
		t.Fatal("FillRect region wrong")
	}
	g.FillRect(3, 3, 100, 100, 9)
	if g.At(3, 3) != 9 {
		t.Fatal("clipped fill missed corner")
	}
}

func TestSampleBilinear(t *testing.T) {
	g := New(2, 2)
	g.Set(0, 0, 0)
	g.Set(1, 0, 100)
	g.Set(0, 1, 200)
	g.Set(1, 1, 100)
	if v := g.SampleBilinear(0, 0); v != 0 {
		t.Fatalf("corner sample %v", v)
	}
	if v := g.SampleBilinear(0.5, 0); math.Abs(v-50) > 1e-9 {
		t.Fatalf("midpoint sample %v", v)
	}
	if v := g.SampleBilinear(0.5, 0.5); math.Abs(v-100) > 1e-9 {
		t.Fatalf("center sample %v", v)
	}
}

func TestOtsuBimodal(t *testing.T) {
	g := New(100, 100)
	g.FillRect(0, 0, 50, 100, 10) // half dark
	thr := g.OtsuThreshold()
	if thr <= 10 || thr > 255 {
		t.Fatalf("threshold %d not between modes", thr)
	}
	b := g.Threshold(thr)
	if b.At(0, 0) != 0 || b.At(99, 0) != 255 {
		t.Fatal("threshold output wrong")
	}
}

func TestResize(t *testing.T) {
	g := New(10, 10)
	g.FillRect(0, 0, 10, 5, 0)
	r := g.Resize(20, 20)
	if r.W != 20 || r.H != 20 {
		t.Fatal("size")
	}
	if r.At(10, 2) != 0 || r.At(10, 18) != 255 {
		t.Fatal("content not preserved")
	}
}

func TestWarpIdentity(t *testing.T) {
	g := New(8, 8)
	g.Set(3, 4, 42)
	w := g.Warp(func(x, y float64) (float64, float64) { return x, y })
	if !Equal(g, w) {
		t.Fatal("identity warp changed image")
	}
}

func TestBoxBlurPreservesMean(t *testing.T) {
	g := New(50, 50)
	g.FillRect(10, 10, 40, 40, 0)
	before := g.Mean()
	b := g.BoxBlur(2)
	after := b.Mean()
	if math.Abs(before-after) > 3 {
		t.Fatalf("blur changed mean %f -> %f", before, after)
	}
	if b.At(25, 25) != 0 {
		t.Fatal("interior should stay black")
	}
	if b.At(10, 10) == 0 {
		t.Fatal("edge should be smoothed")
	}
	if !Equal(g, g.BoxBlur(0)) {
		t.Fatal("radius 0 must be identity")
	}
}

func TestRotate90RoundTrip(t *testing.T) {
	g := New(5, 3)
	n := byte(0)
	for y := 0; y < 3; y++ {
		for x := 0; x < 5; x++ {
			g.Set(x, y, n)
			n++
		}
	}
	r1 := g.Rotate90(1)
	if r1.W != 3 || r1.H != 5 {
		t.Fatal("rot90 dims")
	}
	// Top-left goes to top-right under CW rotation.
	if r1.At(2, 0) != g.At(0, 0) {
		t.Fatalf("rot90 content: got %d", r1.At(2, 0))
	}
	if !Equal(g, g.Rotate90(1).Rotate90(3)) {
		t.Fatal("rot90+rot270 != identity")
	}
	if !Equal(g, g.Rotate90(2).Rotate90(2)) {
		t.Fatal("rot180 twice != identity")
	}
	if !Equal(g.Rotate90(-1), g.Rotate90(3)) {
		t.Fatal("negative rotation")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	g := New(17, 9)
	for i := range g.Pix {
		g.Pix[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	if err := g.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, got) {
		t.Fatal("PNG round trip")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	f := func(wRaw, hRaw uint8, seed int64) bool {
		w := int(wRaw)%30 + 1
		h := int(hRaw)%30 + 1
		g := New(w, h)
		s := seed
		for i := range g.Pix {
			s = s*6364136223846793005 + 1442695040888963407
			g.Pix[i] = byte(s >> 32)
		}
		var buf bytes.Buffer
		if err := g.EncodePGM(&buf); err != nil {
			return false
		}
		got, err := DecodePGM(&buf)
		return err == nil && Equal(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPGMRejectsJunk(t *testing.T) {
	if _, err := DecodePGM(bytes.NewReader([]byte("P6\n2 2\n255\n0000"))); err == nil {
		t.Fatal("P6 accepted")
	}
	if _, err := DecodePGM(bytes.NewReader([]byte("P5\n2 2\n255\nX"))); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestDiffCount(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	if DiffCount(a, b) != 0 {
		t.Fatal("identical images differ")
	}
	b.Set(0, 0, 0)
	b.Set(3, 3, 0)
	if DiffCount(a, b) != 2 {
		t.Fatal("count wrong")
	}
	if Equal(a, b) {
		t.Fatal("Equal on different images")
	}
	if Equal(a, New(3, 4)) {
		t.Fatal("Equal on different sizes")
	}
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0x0")
		}
	}()
	New(0, 0)
}
