// Package raster provides the grayscale image type shared by MOCoder and
// the analog-media simulators, together with the sampling, warping and
// thresholding primitives the emblem decoder needs.
//
// Images are 8-bit grayscale: 0 is black (exposed film / printed toner),
// 255 is white. Bitonal media (microfilm writers, laser printers) use the
// same type restricted to {0, 255}.
package raster

import (
	"errors"
	"fmt"
	"image"
	"image/png"
	"io"
	"math"
)

// Gray is an 8-bit grayscale image with row-major pixels.
type Gray struct {
	W, H int
	Pix  []byte // len = W*H
}

// New returns a white (255) image of the given size.
func New(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid size %dx%d", w, h))
	}
	g := &Gray{W: w, H: h, Pix: make([]byte, w*h)}
	// Doubling copy: memmove-backed white fill (the byte-store loop shows
	// up on multi-megapixel frames; Go only pattern-matches zero fills).
	g.Pix[0] = 255
	for n := 1; n < len(g.Pix); n *= 2 {
		copy(g.Pix[n:], g.Pix[:n])
	}
	return g
}

// NewBlack returns an all-black image.
func NewBlack(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return white, which
// matches the unexposed margin around a scanned frame.
func (g *Gray) At(x, y int) byte {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 255
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are dropped.
func (g *Gray) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// FillRect paints the rectangle [x0,x1)×[y0,y1) with v, clipped to bounds.
func (g *Gray) FillRect(x0, y0, x1, y1 int, v byte) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > g.W {
		x1 = g.W
	}
	if y1 > g.H {
		y1 = g.H
	}
	for y := y0; y < y1; y++ {
		row := g.Pix[y*g.W : y*g.W+g.W]
		for x := x0; x < x1; x++ {
			row[x] = v
		}
	}
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	return &Gray{W: g.W, H: g.H, Pix: append([]byte(nil), g.Pix...)}
}

// reshape resizes dst's backing store to w×h, reusing the pixel buffer
// when it is large enough. Contents are unspecified.
func (g *Gray) reshape(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid size %dx%d", w, h))
	}
	g.W, g.H = w, h
	if cap(g.Pix) < w*h {
		g.Pix = make([]byte, w*h)
	} else {
		g.Pix = g.Pix[:w*h]
	}
}

// CopyInto copies g into dst, reusing dst's pixel buffer when possible,
// and returns dst. Clone for callers that recycle a destination image
// across frames (the scan-path scratch).
func (g *Gray) CopyInto(dst *Gray) *Gray {
	dst.reshape(g.W, g.H)
	copy(dst.Pix, g.Pix)
	return dst
}

// SampleBilinear returns the bilinearly interpolated intensity at the
// floating-point position (x, y). Out-of-bounds regions read as white.
//
// Interior samples — the overwhelming case for the scanner simulation,
// Rectify and the emblem reader, which all sample well inside the frame
// — index Pix directly instead of taking four bounds-checked At calls.
// Both paths evaluate the identical expression, so results are
// bit-for-bit the same.
func (g *Gray) SampleBilinear(x, y float64) float64 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	var p00, p10, p01, p11 float64
	if x0 >= 0 && y0 >= 0 && x0+1 < g.W && y0+1 < g.H {
		i := y0*g.W + x0
		p00 = float64(g.Pix[i])
		p10 = float64(g.Pix[i+1])
		p01 = float64(g.Pix[i+g.W])
		p11 = float64(g.Pix[i+g.W+1])
	} else {
		p00 = float64(g.At(x0, y0))
		p10 = float64(g.At(x0+1, y0))
		p01 = float64(g.At(x0, y0+1))
		p11 = float64(g.At(x0+1, y0+1))
	}
	return p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy
}

// Mean returns the average intensity.
func (g *Gray) Mean() float64 {
	var sum uint64
	for _, p := range g.Pix {
		sum += uint64(p)
	}
	return float64(sum) / float64(len(g.Pix))
}

// Histogram returns the 256-bin intensity histogram. Four sub-histograms
// accumulate interleaved pixels so runs of equal values (the common case
// on near-bitonal frames) do not serialise on one counter's
// store-to-load dependency; the merged counts are exactly the single
// accumulator's.
func (g *Gray) Histogram() [256]int {
	var h0, h1, h2, h3 [256]int
	p := g.Pix
	n := len(p) &^ 3
	for i := 0; i < n; i += 4 {
		h0[p[i]]++
		h1[p[i+1]]++
		h2[p[i+2]]++
		h3[p[i+3]]++
	}
	for _, v := range p[n:] {
		h0[v]++
	}
	var h [256]int
	for i := range h {
		h[i] = h0[i] + h1[i] + h2[i] + h3[i]
	}
	return h
}

// OtsuThreshold computes the global binarisation threshold that maximises
// inter-class variance — the first step of emblem decoding on a scan whose
// black/white levels have drifted with fading or exposure.
func (g *Gray) OtsuThreshold() byte {
	hist := g.Histogram()
	total := len(g.Pix)
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var sumB, wB float64
	var best float64
	bestMid := 128.0
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > best {
			best = between
			// Split halfway between the class means rather than at the
			// class boundary: near-binary histograms make the boundary
			// degenerate (argmax plateau starting at t=0), and the
			// midpoint classifies blur-graded pixels sensibly.
			bestMid = (mB + mF) / 2
		}
	}
	if bestMid < 1 {
		bestMid = 1
	}
	if bestMid > 255 {
		bestMid = 255
	}
	return byte(bestMid)
}

// Threshold returns a bitonal copy: pixels < t become 0, others 255.
func (g *Gray) Threshold(t byte) *Gray {
	return g.ThresholdInto(&Gray{}, t)
}

// ThresholdInto is Threshold into a reused destination; dst may be g
// itself for in-place quantisation.
func (g *Gray) ThresholdInto(dst *Gray, t byte) *Gray {
	dst.reshape(g.W, g.H)
	pix, out := g.Pix, dst.Pix
	for i, p := range pix {
		if p < t {
			out[i] = 0
		} else {
			out[i] = 255
		}
	}
	return dst
}

// Resize scales to w×h. Upscaling interpolates bilinearly; downscaling
// averages over the source area each destination pixel covers, which is
// how a scanner sensor integrates light (and avoids aliasing on module
// boundaries).
func (g *Gray) Resize(w, h int) *Gray {
	return g.ResizeInto(&Gray{}, w, h)
}

// ResizeInto is Resize into a reused destination (every destination pixel
// is written, so no clearing is needed); dst must not alias g.
func (g *Gray) ResizeInto(dst *Gray, w, h int) *Gray {
	out := dst
	out.reshape(w, h)
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	if sx <= 1 && sy <= 1 {
		for y := 0; y < h; y++ {
			srcY := (float64(y)+0.5)*sy - 0.5
			row := out.row(y)
			for x := 0; x < w; x++ {
				srcX := (float64(x)+0.5)*sx - 0.5
				row[x] = clampByte(g.SampleBilinear(srcX, srcY))
			}
		}
		return out
	}
	for y := 0; y < h; y++ {
		y0 := float64(y) * sy
		y1 := y0 + sy
		row := out.row(y)
		for x := 0; x < w; x++ {
			x0 := float64(x) * sx
			x1 := x0 + sx
			row[x] = clampByte(g.areaAverage(x0, y0, x1, y1))
		}
	}
	return out
}

// areaAverage integrates intensity over the source rectangle
// [x0,x1)×[y0,y1) in pixel-box coordinates (pixel i covers [i, i+1)).
// Rectangles fully inside the image — every downscale source box except
// the border rows/columns — read Pix through a row slice instead of
// bounds-checked At calls; the summation order and arithmetic are
// identical on both paths.
func (g *Gray) areaAverage(x0, y0, x1, y1 float64) float64 {
	ix0, iy0 := int(math.Floor(x0)), int(math.Floor(y0))
	ix1, iy1 := int(math.Ceil(x1)), int(math.Ceil(y1))
	var sum, area float64
	interior := ix0 >= 0 && iy0 >= 0 && ix1 <= g.W && iy1 <= g.H
	for iy := iy0; iy < iy1; iy++ {
		hy := math.Min(y1, float64(iy+1)) - math.Max(y0, float64(iy))
		if hy <= 0 {
			continue
		}
		if interior {
			row := g.Pix[iy*g.W : iy*g.W+g.W]
			for ix := ix0; ix < ix1; ix++ {
				wx := math.Min(x1, float64(ix+1)) - math.Max(x0, float64(ix))
				if wx <= 0 {
					continue
				}
				sum += wx * hy * float64(row[ix])
				area += wx * hy
			}
			continue
		}
		for ix := ix0; ix < ix1; ix++ {
			wx := math.Min(x1, float64(ix+1)) - math.Max(x0, float64(ix))
			if wx <= 0 {
				continue
			}
			sum += wx * hy * float64(g.At(ix, iy))
			area += wx * hy
		}
	}
	if area == 0 {
		return 255
	}
	return sum / area
}

// Warp resamples the image through an inverse mapping: for every output
// pixel (x, y), f returns the source position to sample. Distortion models
// (lens curvature, rotation, scanner jitter) are expressed as warps.
func (g *Gray) Warp(f func(x, y float64) (sx, sy float64)) *Gray {
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		row := out.row(y)
		for x := 0; x < g.W; x++ {
			sx, sy := f(float64(x), float64(y))
			row[x] = clampByte(g.SampleBilinear(sx, sy))
		}
	}
	return out
}

// WarpRows is Warp with a per-row setup hook: rowf is called once per
// output row and returns the inverse mapping for that row's pixels.
// Distortion models hoist row-invariant terms (jitter shift, rotation
// components of the row's y offset) out of the per-pixel loop this way.
func (g *Gray) WarpRows(rowf func(y float64) func(x float64) (sx, sy float64)) *Gray {
	return g.WarpRowsInto(&Gray{}, rowf)
}

// WarpRowsInto is WarpRows into a reused destination; dst must not alias
// g (the warp reads arbitrary source positions while writing).
//
// The bilinear sample is expanded inline for the interior case — the
// overwhelming majority of warp samples — with the exact expression
// SampleBilinear's interior path evaluates (same loads, same operation
// order, so the resampled bytes are bit-identical; the scanner-model
// differential in media/fastpath_test.go pins this against the
// SampleBilinear formulation). Border samples fall back to the one shared
// implementation.
func (g *Gray) WarpRowsInto(dst *Gray, rowf func(y float64) func(x float64) (sx, sy float64)) *Gray {
	out := dst
	out.reshape(g.W, g.H)
	w, h := g.W, g.H
	pix := g.Pix
	for y := 0; y < h; y++ {
		row := out.row(y)
		f := rowf(float64(y))
		for x := 0; x < w; x++ {
			sx, sy := f(float64(x))
			x0 := int(math.Floor(sx))
			y0 := int(math.Floor(sy))
			var v float64
			if x0 >= 0 && y0 >= 0 && x0+1 < w && y0+1 < h {
				fx := sx - float64(x0)
				fy := sy - float64(y0)
				i := y0*w + x0
				r0 := pix[i : i+2]
				r1 := pix[i+w : i+w+2]
				p00 := float64(r0[0])
				p10 := float64(r0[1])
				p01 := float64(r1[0])
				p11 := float64(r1[1])
				v = p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy
			} else {
				v = g.SampleBilinear(sx, sy)
			}
			// v is a convex combination of byte values (see
			// WarpShiftRotateInto): clampByte reduces to its rounding arm.
			row[x] = byte(v + 0.5)
		}
	}
	return out
}

// WarpShiftRotateInto resamples through the inverse mapping of a per-row
// horizontal shift followed by a rotation about the image centre — the
// geometry of every barrel-free scanner model. The per-pixel arithmetic
// is exactly what the general WarpRows row mapper evaluates for that
// model (jitter add, then the hoisted rotation terms; rotate selects the
// same theta != 0 branch), executed without the per-pixel closure call.
// jitter nil means no shift stage at all. dst must not alias g.
func (g *Gray) WarpShiftRotateInto(dst *Gray, sin, cos float64, rotate bool, jitter []float64) *Gray {
	out := dst
	out.reshape(g.W, g.H)
	w, h := g.W, g.H
	pix := g.Pix
	cx, cy := float64(w)/2, float64(h)/2
	hasJitter := jitter != nil
	// Without a row shift, cos·dx and sin·dx depend on the column alone —
	// hoist them out of the row loop (the same multiplications on the
	// same operands, so the sampled positions are bit-identical).
	var cosDx, sinDx []float64
	if !hasJitter && rotate {
		cosDx = make([]float64, w)
		sinDx = make([]float64, w)
		for x := 0; x < w; x++ {
			dx := float64(x) - cx
			cosDx[x] = cos * dx
			sinDx[x] = sin * dx
		}
	}
	for y := 0; y < h; y++ {
		fy := float64(y)
		shift := 0.0
		if hasJitter {
			if yi := int(fy); yi >= 0 && yi < len(jitter) {
				shift = jitter[yi]
			}
		}
		dy := fy - cy
		sinDy, cosDy := sin*dy, cos*dy
		row := out.row(y)
		for x := 0; x < w; x++ {
			var sx, sy float64
			if cosDx != nil {
				sx = cx + (cosDx[x] - sinDy)
				sy = cy + (sinDx[x] + cosDy)
			} else {
				fx := float64(x)
				if hasJitter {
					fx += shift
				}
				dx := fx - cx
				if rotate {
					sx = cx + (cos*dx - sinDy)
					sy = cy + (sin*dx + cosDy)
				} else {
					sx = cx + dx
					sy = cy + dy
				}
			}
			x0 := int(math.Floor(sx))
			y0 := int(math.Floor(sy))
			var v float64
			if x0 >= 0 && y0 >= 0 && x0+1 < w && y0+1 < h {
				gx := sx - float64(x0)
				gy := sy - float64(y0)
				i := y0*w + x0
				r0 := pix[i : i+2]
				r1 := pix[i+w : i+w+2]
				p00 := float64(r0[0])
				p10 := float64(r0[1])
				p01 := float64(r1[0])
				p11 := float64(r1[1])
				v = p00*(1-gx)*(1-gy) + p10*gx*(1-gy) + p01*(1-gx)*gy + p11*gx*gy
			} else {
				v = g.SampleBilinear(sx, sy)
			}
			// A bilinear sample is a convex combination of byte values, so
			// v is always in [0, 255] and clampByte reduces to its rounding
			// arm (clampByte(v) == byte(v+0.5) on that whole range).
			row[x] = byte(v + 0.5)
		}
	}
	return out
}

// WarpShiftRotateNearestInto is WarpShiftRotateInto with nearest-neighbor
// sampling: the same barrel-free inverse mapping (per-row jitter shift
// plus optional rotation about the center), but each output pixel copies
// the source pixel nearest the mapped position instead of blending four.
// It is the fast-sim counterpart of the barrel-free specialization —
// allocation-free per call once dst is sized, where the generic
// WarpRowsNearestInto pays one row-closure allocation per scan line.
func (g *Gray) WarpShiftRotateNearestInto(dst *Gray, sin, cos float64, rotate bool, jitter []float64) *Gray {
	out := dst
	out.reshape(g.W, g.H)
	w, h := g.W, g.H
	pix := g.Pix
	cx, cy := float64(w)/2, float64(h)/2
	hasJitter := jitter != nil
	for y := 0; y < h; y++ {
		fy := float64(y)
		shift := 0.0
		if hasJitter {
			if yi := int(fy); yi >= 0 && yi < len(jitter) {
				shift = jitter[yi]
			}
		}
		dy := fy - cy
		sinDy, cosDy := sin*dy, cos*dy
		row := out.row(y)
		for x := 0; x < w; x++ {
			fx := float64(x)
			if hasJitter {
				fx += shift
			}
			dx := fx - cx
			var sx, sy float64
			if rotate {
				sx = cx + (cos*dx - sinDy)
				sy = cy + (sin*dx + cosDy)
			} else {
				sx = cx + dx
				sy = cy + dy
			}
			xi := int(sx + 0.5)
			yi := int(sy + 0.5)
			if xi < 0 {
				xi = 0
			} else if xi >= w {
				xi = w - 1
			}
			if yi < 0 {
				yi = 0
			} else if yi >= h {
				yi = h - 1
			}
			row[x] = pix[yi*w+xi]
		}
	}
	return out
}

// WarpRowsNearestInto is WarpRowsInto with nearest-neighbor sampling: each
// output pixel copies the source pixel nearest the inverse-mapped
// position (coordinates rounded, then clamped to the frame). It is the
// fast-sim scanner's coarser geometry resample — one load per pixel
// instead of the bilinear four-tap blend — and is NOT byte-identical to
// the bilinear warp; the media package's fast-sim contract is statistical
// equivalence, not bit equality. dst must not alias g.
func (g *Gray) WarpRowsNearestInto(dst *Gray, rowf func(y float64) func(x float64) (sx, sy float64)) *Gray {
	out := dst
	out.reshape(g.W, g.H)
	w, h := g.W, g.H
	pix := g.Pix
	for y := 0; y < h; y++ {
		row := out.row(y)
		f := rowf(float64(y))
		for x := 0; x < w; x++ {
			sx, sy := f(float64(x))
			xi := int(sx + 0.5)
			yi := int(sy + 0.5)
			if xi < 0 {
				xi = 0
			} else if xi >= w {
				xi = w - 1
			}
			if yi < 0 {
				yi = 0
			} else if yi >= h {
				yi = h - 1
			}
			row[x] = pix[yi*w+xi]
		}
	}
	return out
}

// BoxBlur applies an n-radius box blur (separable, two passes). Three
// successive box blurs approximate a Gaussian; one pass models mild lens
// defocus well enough for the decode-robustness experiments.
//
// Both passes walk the image row-major: the vertical pass carries one
// running sum per column and slides all of them down a row at a time, so
// it streams whole rows instead of striding H pixels between touches.
// The per-column sums it maintains are exactly the sums the per-column
// walk would compute, keeping the output byte-identical.
func (g *Gray) BoxBlur(radius int) *Gray {
	return g.BoxBlurInto(&Gray{}, &Gray{}, radius)
}

// BoxBlurInto is BoxBlur through reused buffers: the result lands in dst,
// tmp holds the horizontal pass. dst may alias g (the source is fully
// consumed by the horizontal pass); tmp must alias neither.
func (g *Gray) BoxBlurInto(dst, tmp *Gray, radius int) *Gray {
	if radius <= 0 {
		return g.CopyInto(dst)
	}
	tmp.reshape(g.W, g.H)
	win := 2*radius + 1
	// A window sum of win bytes is at most 255·win, so byte(sum/win) is a
	// table lookup — integer division by a runtime-variable window is the
	// slowest per-pixel operation in both passes otherwise.
	div := make([]byte, 255*win+1)
	for v := range div {
		div[v] = byte(v / win)
	}
	// horizontal; the interior span needs no edge clamping, so it slides
	// the window with direct loads (identical values: atClamped is the
	// identity for in-range indices).
	lo, hi := radius, g.W-radius-1
	if lo > g.W {
		lo = g.W
	}
	if hi < lo {
		hi = lo
	}
	for y := 0; y < g.H; y++ {
		row := g.Pix[y*g.W : y*g.W+g.W]
		var sum int
		for x := -radius; x <= radius; x++ {
			sum += int(atClamped(row, g.W, x))
		}
		dst := tmp.Pix[y*g.W:]
		for x := 0; x < lo; x++ {
			dst[x] = div[sum]
			sum += int(atClamped(row, g.W, x+radius+1)) - int(atClamped(row, g.W, x-radius))
		}
		for x := lo; x < hi; x++ {
			dst[x] = div[sum]
			sum += int(row[x+radius+1]) - int(row[x-radius])
		}
		for x := hi; x < g.W; x++ {
			dst[x] = div[sum]
			sum += int(atClamped(row, g.W, x+radius+1)) - int(atClamped(row, g.W, x-radius))
		}
	}
	// vertical
	out := dst
	out.reshape(g.W, g.H)
	sums := make([]int, g.W)
	for y := -radius; y <= radius; y++ {
		row := tmp.row(clampRow(y, g.H))
		for x, p := range row {
			sums[x] += int(p)
		}
	}
	for y := 0; y < g.H; y++ {
		dst := out.Pix[y*g.W : y*g.W+g.W]
		for x := range dst {
			dst[x] = div[sums[x]]
		}
		add := tmp.row(clampRow(y+radius+1, g.H))
		sub := tmp.row(clampRow(y-radius, g.H))
		for x := range sums {
			sums[x] += int(add[x]) - int(sub[x])
		}
	}
	return out
}

// BoxBlurApproxInto is BoxBlurInto with the window-mean division replaced
// by a fixed-point multiply-shift: q = (sum·m) >> 24 with m = ⌈2^24/win⌉,
// which stays within one gray level of the exact byte(sum/win) over the
// whole sum range and needs no per-call division table. It is the
// fast-sim scanner's coarser blur — same separable two-pass structure and
// window sums, approximate quantisation — and is NOT byte-identical to
// BoxBlurInto. Aliasing rules match BoxBlurInto: dst may alias g, tmp
// must alias neither.
func (g *Gray) BoxBlurApproxInto(dst, tmp *Gray, radius int) *Gray {
	if radius <= 0 {
		return g.CopyInto(dst)
	}
	tmp.reshape(g.W, g.H)
	win := 2*radius + 1
	m := uint64((1<<24 + win - 1) / win)
	q := func(sum int) byte { return byte(uint64(sum) * m >> 24) }
	// horizontal (window slide identical to BoxBlurInto)
	lo, hi := radius, g.W-radius-1
	if lo > g.W {
		lo = g.W
	}
	if hi < lo {
		hi = lo
	}
	for y := 0; y < g.H; y++ {
		row := g.Pix[y*g.W : y*g.W+g.W]
		var sum int
		for x := -radius; x <= radius; x++ {
			sum += int(atClamped(row, g.W, x))
		}
		dst := tmp.Pix[y*g.W:]
		for x := 0; x < lo; x++ {
			dst[x] = q(sum)
			sum += int(atClamped(row, g.W, x+radius+1)) - int(atClamped(row, g.W, x-radius))
		}
		for x := lo; x < hi; x++ {
			dst[x] = q(sum)
			sum += int(row[x+radius+1]) - int(row[x-radius])
		}
		for x := hi; x < g.W; x++ {
			dst[x] = q(sum)
			sum += int(atClamped(row, g.W, x+radius+1)) - int(atClamped(row, g.W, x-radius))
		}
	}
	// vertical (running column sums, as in BoxBlurInto)
	out := dst
	out.reshape(g.W, g.H)
	sums := make([]int, g.W)
	for y := -radius; y <= radius; y++ {
		row := tmp.row(clampRow(y, g.H))
		for x, p := range row {
			sums[x] += int(p)
		}
	}
	for y := 0; y < g.H; y++ {
		dst := out.Pix[y*g.W : y*g.W+g.W]
		for x := range dst {
			dst[x] = q(sums[x])
		}
		add := tmp.row(clampRow(y+radius+1, g.H))
		sub := tmp.row(clampRow(y-radius, g.H))
		for x := range sums {
			sums[x] += int(add[x]) - int(sub[x])
		}
	}
	return out
}

func atClamped(row []byte, w, x int) byte {
	if x < 0 {
		x = 0
	}
	if x >= w {
		x = w - 1
	}
	return row[x]
}

// row returns row y of the image as a slice.
func (g *Gray) row(y int) []byte {
	return g.Pix[y*g.W : y*g.W+g.W]
}

func clampRow(y, h int) int {
	if y < 0 {
		return 0
	}
	if y >= h {
		return h - 1
	}
	return y
}

func clampByte(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}

// Rotate90 returns the image rotated clockwise by k×90 degrees.
func (g *Gray) Rotate90(k int) *Gray {
	k = ((k % 4) + 4) % 4
	switch k {
	case 0:
		return g.Clone()
	case 2:
		out := &Gray{W: g.W, H: g.H, Pix: make([]byte, len(g.Pix))}
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				out.Pix[(g.H-1-y)*g.W+(g.W-1-x)] = g.Pix[y*g.W+x]
			}
		}
		return out
	case 1:
		out := &Gray{W: g.H, H: g.W, Pix: make([]byte, len(g.Pix))}
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				// (x, y) → (H-1-y, x)
				out.Pix[x*out.W+(g.H-1-y)] = g.Pix[y*g.W+x]
			}
		}
		return out
	default: // 3
		out := &Gray{W: g.H, H: g.W, Pix: make([]byte, len(g.Pix))}
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				// (x, y) → (y, W-1-x)
				out.Pix[(g.W-1-x)*out.W+y] = g.Pix[y*g.W+x]
			}
		}
		return out
	}
}

// EncodePNG writes the image as an 8-bit grayscale PNG.
func (g *Gray) EncodePNG(w io.Writer) error {
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	copy(img.Pix, g.Pix)
	return png.Encode(w, img)
}

// DecodePNG reads a PNG (any color model) as grayscale.
func DecodePNG(r io.Reader) (*Gray, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("raster: %w", err)
	}
	b := img.Bounds()
	g := New(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r16, g16, b16, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			// ITU-R BT.601 luma.
			lum := (299*r16 + 587*g16 + 114*b16) / 1000
			g.Pix[y*g.W+x] = byte(lum >> 8)
		}
	}
	return g, nil
}

// EncodePGM writes the image as a binary PGM (P5), the "flat array of pixel
// intensities" interchange format the Bootstrap document describes for
// feeding scans to the emulated decoder.
func (g *Gray) EncodePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	_, err := w.Write(g.Pix)
	return err
}

// DecodePGM reads a binary PGM (P5).
func DecodePGM(r io.Reader) (*Gray, error) {
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(r, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("raster: bad PGM header: %w", err)
	}
	if magic != "P5" || maxv != 255 || w <= 0 || h <= 0 {
		return nil, errors.New("raster: unsupported PGM variant")
	}
	// Single whitespace byte after maxval per spec.
	var sep [1]byte
	if _, err := io.ReadFull(r, sep[:]); err != nil {
		return nil, err
	}
	g := &Gray{W: w, H: h, Pix: make([]byte, w*h)}
	if _, err := io.ReadFull(r, g.Pix); err != nil {
		return nil, fmt.Errorf("raster: short PGM payload: %w", err)
	}
	return g, nil
}

// Equal reports whether two images are identical.
func Equal(a, b *Gray) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

// DiffCount returns the number of differing pixels between equally sized
// images; it panics on size mismatch.
func DiffCount(a, b *Gray) int {
	if a.W != b.W || a.H != b.H {
		panic("raster: DiffCount size mismatch")
	}
	n := 0
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			n++
		}
	}
	return n
}
