package raster

import (
	"math"
	"math/rand"
	"testing"
)

func testImage(seed int64, w, h int) *Gray {
	rng := rand.New(rand.NewSource(seed))
	g := New(w, h)
	for i := range g.Pix {
		// Emblem-like content: hard edges plus noise.
		x, y := i%w, i/w
		if (x/4+y/6)%2 == 0 {
			g.Pix[i] = byte(rng.Intn(40))
		} else {
			g.Pix[i] = byte(200 + rng.Intn(56))
		}
	}
	return g
}

// dirtyGray returns a scratch image pre-filled with garbage of an
// unrelated size, so reuse bugs (stale size, uncleared pixels) surface.
func dirtyGray(w, h int) *Gray {
	g := New(w, h)
	for i := range g.Pix {
		g.Pix[i] = byte(i*13 + 7)
	}
	return g
}

// TestHistogramSplitAccumulators pins the four-way histogram to the
// single-accumulator formulation on sizes around the unroll boundary.
func TestHistogramSplitAccumulators(t *testing.T) {
	for _, wh := range [][2]int{{1, 1}, {3, 1}, {5, 1}, {7, 3}, {160, 120}} {
		g := testImage(int64(wh[0]), wh[0], wh[1])
		got := g.Histogram()
		var want [256]int
		for _, p := range g.Pix {
			want[p]++
		}
		if got != want {
			t.Fatalf("size %v: split histogram differs from reference", wh)
		}
	}
}

// TestIntoVariantsMatchOriginals pins every Into variant to its
// allocating original, through dirty reused destinations and across
// repeated calls with differing sizes.
func TestIntoVariantsMatchOriginals(t *testing.T) {
	sizes := [][2]int{{120, 90}, {57, 31}, {200, 150}}
	dst, tmp := dirtyGray(5, 5), dirtyGray(300, 2)
	for round := 0; round < 2; round++ {
		for si, wh := range sizes {
			g := testImage(int64(si)+1, wh[0], wh[1])

			if got := g.CopyInto(dst); !Equal(got, g.Clone()) {
				t.Fatalf("size %v: CopyInto differs from Clone", wh)
			}

			for _, target := range [][2]int{{wh[0] * 2, wh[1] * 2}, {wh[0] / 2, wh[1] / 2}, {wh[0] * 3 / 2, wh[1] / 2}} {
				want := g.Resize(target[0], target[1])
				got := g.ResizeInto(dst, target[0], target[1])
				if !Equal(got, want) {
					t.Fatalf("size %v -> %v: ResizeInto differs from Resize", wh, target)
				}
			}

			rowf := func(y float64) func(x float64) (float64, float64) {
				dy := math.Sin(y/7) * 1.5
				return func(x float64) (float64, float64) {
					return x + math.Cos(x/11)*0.8, y + dy
				}
			}
			if got, want := g.WarpRowsInto(dst, rowf), g.WarpRows(rowf); !Equal(got, want) {
				t.Fatalf("size %v: WarpRowsInto differs from WarpRows", wh)
			}

			for _, radius := range []int{0, 1, 3} {
				want := g.BoxBlur(radius)
				if got := g.BoxBlurInto(dst, tmp, radius); !Equal(got, want) {
					t.Fatalf("size %v radius %d: BoxBlurInto differs from BoxBlur", wh, radius)
				}
				// dst aliasing the source: blur a copy in place.
				alias := g.Clone()
				if got := alias.BoxBlurInto(alias, tmp, radius); !Equal(got, want) {
					t.Fatalf("size %v radius %d: in-place BoxBlurInto differs", wh, radius)
				}
			}

			thr := g.OtsuThreshold()
			want := g.Threshold(thr)
			if got := g.ThresholdInto(dst, thr); !Equal(got, want) {
				t.Fatalf("size %v: ThresholdInto differs from Threshold", wh)
			}
			alias := g.Clone()
			if got := alias.ThresholdInto(alias, thr); !Equal(got, want) {
				t.Fatalf("size %v: in-place ThresholdInto differs", wh)
			}
		}
	}
}
