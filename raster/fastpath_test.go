package raster

import (
	"math"
	"math/rand"
	"testing"
)

// The hot-path rewrites (direct Pix indexing in SampleBilinear and
// areaAverage, the row-major vertical blur pass) must be byte-identical
// to the straightforward reference formulations they replaced — the
// media scanner and Rectify sit in front of every decode mode, so a
// single differing pixel would ripple into every restore. These tests
// pin that equivalence against reference implementations.

func noisyImage(w, h int, seed int64) *Gray {
	g := New(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Pix {
		g.Pix[i] = byte(rng.Intn(256))
	}
	return g
}

// refSampleBilinear is the original At-based formulation.
func refSampleBilinear(g *Gray, x, y float64) float64 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	p00 := float64(g.At(x0, y0))
	p10 := float64(g.At(x0+1, y0))
	p01 := float64(g.At(x0, y0+1))
	p11 := float64(g.At(x0+1, y0+1))
	return p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy
}

func TestSampleBilinearMatchesReference(t *testing.T) {
	g := noisyImage(37, 23, 1)
	rng := rand.New(rand.NewSource(2))
	// Dense random positions inside, straddling and outside the bounds.
	for i := 0; i < 20000; i++ {
		x := rng.Float64()*float64(g.W+8) - 4
		y := rng.Float64()*float64(g.H+8) - 4
		if got, want := g.SampleBilinear(x, y), refSampleBilinear(g, x, y); got != want {
			t.Fatalf("SampleBilinear(%g, %g) = %v, reference %v", x, y, got, want)
		}
	}
	// Exact corners and edges, where the interior predicate flips.
	for _, x := range []float64{-1, -0.5, 0, 0.5, 1, float64(g.W) - 2, float64(g.W) - 1.5, float64(g.W) - 1, float64(g.W)} {
		for _, y := range []float64{-1, 0, 0.5, float64(g.H) - 2, float64(g.H) - 1, float64(g.H)} {
			if got, want := g.SampleBilinear(x, y), refSampleBilinear(g, x, y); got != want {
				t.Fatalf("SampleBilinear(%g, %g) = %v, reference %v", x, y, got, want)
			}
		}
	}
}

// refBoxBlur is the original column-walking vertical pass.
func refBoxBlur(g *Gray, radius int) *Gray {
	if radius <= 0 {
		return g.Clone()
	}
	atCol := func(img *Gray, x, y int) byte {
		if y < 0 {
			y = 0
		}
		if y >= img.H {
			y = img.H - 1
		}
		return img.Pix[y*img.W+x]
	}
	tmp := &Gray{W: g.W, H: g.H, Pix: make([]byte, len(g.Pix))}
	win := 2*radius + 1
	for y := 0; y < g.H; y++ {
		row := g.Pix[y*g.W:]
		var sum int
		for x := -radius; x <= radius; x++ {
			sum += int(atClamped(row, g.W, x))
		}
		for x := 0; x < g.W; x++ {
			tmp.Pix[y*g.W+x] = byte(sum / win)
			sum += int(atClamped(row, g.W, x+radius+1)) - int(atClamped(row, g.W, x-radius))
		}
	}
	out := &Gray{W: g.W, H: g.H, Pix: make([]byte, len(g.Pix))}
	for x := 0; x < g.W; x++ {
		var sum int
		for y := -radius; y <= radius; y++ {
			sum += int(atCol(tmp, x, y))
		}
		for y := 0; y < g.H; y++ {
			out.Pix[y*g.W+x] = byte(sum / win)
			sum += int(atCol(tmp, x, y+radius+1)) - int(atCol(tmp, x, y-radius))
		}
	}
	return out
}

func TestBoxBlurMatchesReference(t *testing.T) {
	for _, size := range [][2]int{{1, 1}, {5, 3}, {64, 48}, {131, 77}} {
		g := noisyImage(size[0], size[1], int64(size[0]))
		for _, radius := range []int{0, 1, 2, 5, 100} {
			got := g.BoxBlur(radius)
			want := refBoxBlur(g, radius)
			if !Equal(got, want) {
				t.Fatalf("BoxBlur(%d) on %dx%d differs from reference in %d pixels",
					radius, size[0], size[1], DiffCount(got, want))
			}
		}
	}
}

// refAreaAverage is the original At-based integration.
func refAreaAverage(g *Gray, x0, y0, x1, y1 float64) float64 {
	ix0, iy0 := int(math.Floor(x0)), int(math.Floor(y0))
	ix1, iy1 := int(math.Ceil(x1)), int(math.Ceil(y1))
	var sum, area float64
	for iy := iy0; iy < iy1; iy++ {
		hy := math.Min(y1, float64(iy+1)) - math.Max(y0, float64(iy))
		if hy <= 0 {
			continue
		}
		for ix := ix0; ix < ix1; ix++ {
			wx := math.Min(x1, float64(ix+1)) - math.Max(x0, float64(ix))
			if wx <= 0 {
				continue
			}
			sum += wx * hy * float64(g.At(ix, iy))
			area += wx * hy
		}
	}
	if area == 0 {
		return 255
	}
	return sum / area
}

func TestAreaAverageMatchesReference(t *testing.T) {
	g := noisyImage(41, 29, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		x0 := rng.Float64()*float64(g.W+4) - 2
		y0 := rng.Float64()*float64(g.H+4) - 2
		x1 := x0 + rng.Float64()*6
		y1 := y0 + rng.Float64()*6
		if got, want := g.areaAverage(x0, y0, x1, y1), refAreaAverage(g, x0, y0, x1, y1); got != want {
			t.Fatalf("areaAverage(%g,%g,%g,%g) = %v, reference %v", x0, y0, x1, y1, got, want)
		}
	}
}

// TestResizeWarpStable pins whole-image results of the rewritten loops
// through the public entry points, up- and downscaling plus a rotation
// warp over a structured (non-noise) image.
func TestResizeWarpStable(t *testing.T) {
	g := New(90, 60)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			g.Pix[y*g.W+x] = byte((x*3 + y*5) % 256)
		}
	}
	up := g.Resize(g.W*2+1, g.H*2+1)
	down := g.Resize(g.W/3, g.H/3)
	rot := g.Warp(func(x, y float64) (float64, float64) {
		const th = 0.01
		cx, cy := float64(g.W)/2, float64(g.H)/2
		dx, dy := x-cx, y-cy
		return cx + dx*math.Cos(th) - dy*math.Sin(th), cy + dx*math.Sin(th) + dy*math.Cos(th)
	})

	refPix := func(img *Gray, f func(x, y int) float64) *Gray {
		out := &Gray{W: img.W, H: img.H, Pix: make([]byte, len(img.Pix))}
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				out.Pix[y*img.W+x] = clampByte(f(x, y))
			}
		}
		return out
	}
	wantUp := refPix(up, func(x, y int) float64 {
		sx := float64(g.W) / float64(up.W)
		sy := float64(g.H) / float64(up.H)
		return refSampleBilinear(g, (float64(x)+0.5)*sx-0.5, (float64(y)+0.5)*sy-0.5)
	})
	if !Equal(up, wantUp) {
		t.Fatalf("bilinear Resize differs from reference in %d pixels", DiffCount(up, wantUp))
	}
	wantDown := refPix(down, func(x, y int) float64 {
		sx := float64(g.W) / float64(down.W)
		sy := float64(g.H) / float64(down.H)
		return refAreaAverage(g, float64(x)*sx, float64(y)*sy, float64(x)*sx+sx, float64(y)*sy+sy)
	})
	if !Equal(down, wantDown) {
		t.Fatalf("area Resize differs from reference in %d pixels", DiffCount(down, wantDown))
	}
	if rot.W != g.W || rot.H != g.H {
		t.Fatal("warp changed dimensions")
	}
}
