package raster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBlack(t *testing.T) {
	g := NewBlack(7, 5)
	if g.W != 7 || g.H != 5 {
		t.Fatalf("dimensions %dx%d", g.W, g.H)
	}
	for i, p := range g.Pix {
		if p != 0 {
			t.Fatalf("pixel %d = %d, want 0", i, p)
		}
	}
}

func TestResizeDownscaleAveragesAreas(t *testing.T) {
	// A 4x4 checkerboard of 0/255 downscaled 2x must become uniform 127/128
	// (every output pixel integrates half black, half white).
	src := New(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if (x+y)%2 == 0 {
				src.Set(x, y, 0)
			}
		}
	}
	out := src.Resize(2, 2)
	for i, p := range out.Pix {
		if p < 126 || p > 129 {
			t.Fatalf("pixel %d = %d, want ≈127", i, p)
		}
	}
}

func TestResizeDownscalePreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := New(64, 48)
	for i := range src.Pix {
		src.Pix[i] = byte(rng.Intn(256))
	}
	out := src.Resize(16, 12)
	if d := src.Mean() - out.Mean(); d > 1.5 || d < -1.5 {
		t.Fatalf("mean drifted by %.2f under area-average downscale", d)
	}
}

func TestResizeDownscaleNonIntegerRatio(t *testing.T) {
	src := NewBlack(10, 10)
	src.FillRect(0, 0, 10, 5, 200) // top half bright
	out := src.Resize(3, 3)
	if out.W != 3 || out.H != 3 {
		t.Fatal("size")
	}
	// Top row ≈ 200, bottom row ≈ 0, middle mixed.
	if out.At(1, 0) < 190 || out.At(1, 2) > 10 {
		t.Fatalf("rows %d / %d", out.At(1, 0), out.At(1, 2))
	}
	mid := out.At(1, 1)
	if mid < 80 || mid > 120 {
		t.Fatalf("middle row %d, want ≈100", mid)
	}
}

func TestResizeRoundTripUpDownProperty(t *testing.T) {
	// Upscale then downscale back must approximately preserve smooth
	// content (pure noise loses its high frequencies by design).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := rng.Intn(17), rng.Intn(17)
		src := New(12, 9)
		for y := 0; y < 9; y++ {
			for x := 0; x < 12; x++ {
				src.Set(x, y, byte(a*x+b*y/2+rng.Intn(8))) // ≤ 248: no wraparound
			}
		}
		back := src.Resize(36, 27).Resize(12, 9)
		diff := 0.0
		for i := range src.Pix {
			d := float64(src.Pix[i]) - float64(back.Pix[i])
			if d < 0 {
				d = -d
			}
			diff += d
		}
		return diff/float64(len(src.Pix)) < 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
