// Experiment harness: one benchmark per table and figure of the paper
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured results).
//
//	T1  Table 1   DynaRisc instruction set + dispatch cost
//	F1  Figure 1  emblem render
//	F2  Figure 2  end-to-end archival/restoration pipeline
//	E1  §4        paper archive (TPC-H → A4 @600 dpi)
//	E2  §4        microfilm archive (102 KB image → 3 frames)
//	E3  §4        cinema film archive (2K frames, 4K rescan)
//	E4  §4        portability: Bootstrap size accounting
//	E5  §3.1      inner-code damage sweep (7.2 % cliff)
//	E6  §3.1      DBCoder vs LZMA-class compression
//	E7  §5        capacity arithmetic (reels, pages, DNA)
//	E8  ablation  emulation overhead (native/DynaRisc/nested)
//	E9  ablation  self-clocking vs absolute grid vs QR baseline
//	E10 §5 ext.   columnar DBCoder layout vs generic
//	E11 §5 ext.   DNA archival channel (coverage sweep)
//	P1  ext.      concurrent frame pipeline: workers sweep (archive)
//	P2  ext.      concurrent frame pipeline: workers sweep (restore ×3 modes)
//	P3  ext.      concurrent frame pipeline: serial vs parallel per profile
//	P4  ext.      emulated restore: time and allocations per frame
//	P5  ext.      archive hot path: time and allocations per frame
//	P6  ext.      multi-volume streaming: sheet sweep, sheet-loss restore,
//	              streaming vs buffered restore allocation
//	P7  ext.      restore scan hot path: per-frame decode, RS decode
//	              (clean/damaged/erasures), group recovery, serial native
//	              restore
package microlonys_test

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"microlonys"
	"microlonys/dynarisc"
	"microlonys/internal/columnar"
	"microlonys/internal/dbcoder"
	"microlonys/internal/dnasim"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/nested"
	"microlonys/internal/qrbase"
	"microlonys/internal/rs"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/raster"
	"microlonys/tpch"
)

// ---- shared fixtures -------------------------------------------------

var (
	dumpOnce sync.Once
	dumpData []byte // ≈1.2 MB TPC-H SQL archive (the E1 workload)
)

// tpchDump builds the paper's E1 workload once.
func tpchDump() []byte {
	dumpOnce.Do(func() {
		_, db := tpch.FitScaleFactor(1_200_000, 7, sqldump.Dump)
		dumpData = sqldump.Dump(db)
	})
	return dumpData
}

// logoPayload stands in for the 102 KB Olonys-logo TIFF of E2/E3: a
// deterministic pseudo-image (smooth gradients with structure, so it is
// neither all-zero nor incompressible noise).
func logoPayload() []byte {
	p := make([]byte, 102*1024)
	for i := range p {
		x, y := i%512, i/512
		p[i] = byte((x*x/97 + y*y/89 + x*y/101) % 251)
	}
	return p
}

// benchProfile is a mid-size medium for pipeline-level iteration.
func benchProfile() media.Profile {
	l := emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 3}
	return media.Profile{
		Name:   "bench",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: media.Distortions{
			RotationDeg: 0.1, BlurRadius: 1, Noise: 2, DustSpecks: 2,
		},
	}
}

// ---- T1: Table 1 — DynaRisc ISA ---------------------------------------

// BenchmarkTable1DynaRiscDispatch measures the reference CPU running a
// mixed stream of the Table 1 instruction classes, and reports the ISA
// size the table fixes (23 opcodes).
func BenchmarkTable1DynaRiscDispatch(b *testing.B) {
	src := `
	        LDI   R0, #0
	        LDI   R1, #1
	        LDI   R2, #10000
	loop:   ADD   R0, R1
	        MOVE  R3, R0
	        LSL   R3, R1
	        XOR   R3, R0
	        CMP   R0, R2
	        JNZ   loop
	        HALT
	`
	prog, err := dynarisc.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	var steps uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := dynarisc.NewCPU(1 << 16)
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			b.Fatal(err)
		}
		if err := cpu.Run(); err != nil {
			b.Fatal(err)
		}
		steps = cpu.Steps
	}
	b.ReportMetric(float64(len(dynarisc.ISATable())), "opcodes")
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// ---- F1: Figure 1 — a sample emblem ------------------------------------

// BenchmarkFigure1EmblemRender renders one emblem from digital data, the
// artifact Figure 1 shows (cmd/emblem -demo writes the PNG itself).
func BenchmarkFigure1EmblemRender(b *testing.B) {
	l := media.Microfilm().Layout
	payload := make([]byte, mocoder.Capacity(l))
	rand.New(rand.NewSource(1)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	var img *raster.Gray
	for i := 0; i < b.N; i++ {
		var err error
		img, err = mocoder.Encode(payload, hdr, l)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload)), "payload_B")
	b.ReportMetric(float64(img.W*img.H), "pixels")
}

// ---- F2: Figure 2 — the end-to-end pipeline ----------------------------

// BenchmarkFigure2Pipeline runs the complete archival (Fig. 2a) and
// restoration (Fig. 2b) flow per iteration on a mid-size medium.
func BenchmarkFigure2Pipeline(b *testing.B) {
	data := tpchDump()[:64*1024]
	opts := microlonys.DefaultOptions(benchProfile())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arch, err := microlonys.Archive(data, opts)
		if err != nil {
			b.Fatal(err)
		}
		got, _, err := microlonys.Restore(arch.Medium, arch.BootstrapText, microlonys.RestoreNative)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			b.Fatal("round trip mismatch")
		}
	}
}

// ---- E1: paper archive --------------------------------------------------

// BenchmarkE1PaperArchiveEncode encodes the ≈1.2 MB TPC-H SQL archive to
// A4 pages at 600 dpi (the paper: 26 emblems, 50 KB/page, ~6 min with
// printing).
func BenchmarkE1PaperArchiveEncode(b *testing.B) {
	dump := tpchDump()
	opts := microlonys.DefaultOptions(media.Paper())
	opts.Compress = false // the paper archived the dump uncompressed
	b.SetBytes(int64(len(dump)))
	var man microlonys.Manifest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arch, err := microlonys.Archive(dump, opts)
		if err != nil {
			b.Fatal(err)
		}
		man = arch.Manifest
	}
	b.ReportMetric(float64(man.TotalFrames), "pages")
	b.ReportMetric(float64(man.RawLen)/float64(man.DataEmblems)/1024, "KB/page")
}

// BenchmarkE1PaperArchiveDecode scans and restores the E1 archive (the
// paper: 3 m 20 s on an i9 with a C++ VeRisc emulator).
func BenchmarkE1PaperArchiveDecode(b *testing.B) {
	dump := tpchDump()
	opts := microlonys.DefaultOptions(media.Paper())
	opts.Compress = false
	arch, err := microlonys.Archive(dump, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := microlonys.Restore(arch.Medium, arch.BootstrapText, microlonys.RestoreNative)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, dump) {
			b.Fatal("restore mismatch")
		}
	}
}

// ---- E2/E3: film archives ------------------------------------------------

func benchFilm(b *testing.B, profile media.Profile) {
	payload := logoPayload()
	opts := microlonys.DefaultOptions(profile)
	opts.Compress = false // the paper stored the TIFF directly
	b.SetBytes(int64(len(payload)))
	var man microlonys.Manifest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arch, err := microlonys.Archive(payload, opts)
		if err != nil {
			b.Fatal(err)
		}
		man = arch.Manifest
		got, _, err := microlonys.Restore(arch.Medium, arch.BootstrapText, microlonys.RestoreNative)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			b.Fatal("film round trip mismatch")
		}
	}
	b.ReportMetric(float64(man.DataEmblems), "data_frames")
	b.ReportMetric(float64(man.TotalFrames), "frames")
}

// BenchmarkE2MicrofilmArchive writes the 102 KB image to 16 mm microfilm
// frames (3888×5498 bitonal; the paper: 3 emblems) and restores it from
// the simulated high-resolution rescan.
func BenchmarkE2MicrofilmArchive(b *testing.B) { benchFilm(b, media.Microfilm()) }

// BenchmarkE3CinemaFilmArchive writes the same image to 35 mm cinema film
// (2048×1556 2K frames; the paper: 3 emblems in 3 full-aperture frames)
// scanned back in 4K grayscale.
func BenchmarkE3CinemaFilmArchive(b *testing.B) { benchFilm(b, media.CinemaFilm()) }

// ---- E4: portability ------------------------------------------------------

// BenchmarkE4BootstrapSize builds the Bootstrap document and reports the
// page accounting (the paper: a seven-page document — four pages of
// pseudocode plus three pages of letters).
func BenchmarkE4BootstrapSize(b *testing.B) {
	opts := microlonys.DefaultOptions(media.Paper())
	var arch *microlonys.Archived
	var err error
	for i := 0; i < b.N; i++ {
		arch, err = microlonys.Archive([]byte("x"), opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	st := arch.Bootstrap.PageStats()
	b.ReportMetric(float64(st.PseudocodePages), "pseudo_pages")
	b.ReportMetric(float64(st.LetterPages), "letter_pages")
	b.ReportMetric(float64(st.TotalPages), "pages")
	b.ReportMetric(float64(st.PseudocodeLines), "pseudo_lines")
}

// ---- E5: inner-code damage sweep -------------------------------------------

// BenchmarkE5DamageSweep corrupts a growing fraction of each inner-code
// block's user data in the rendered stream, then decodes the emblem.
// §3.1 claims automatic correction of up to 7.2 % damaged data within a
// single emblem (16 of 223 bytes per RS block); the success metric must
// hold 1.0 up to that fraction and collapse immediately above it.
func BenchmarkE5DamageSweep(b *testing.B) {
	l := emblem.Layout{DataW: 180, DataH: 135, PxPerModule: 3}
	spec := mocoder.Spec(l)
	payload := make([]byte, spec.Capacity)
	rand.New(rand.NewSource(2)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}

	for _, pct := range []float64{0, 2, 4, 6, 7, 8, 10} {
		b.Run(fmt.Sprintf("damage=%g%%", pct), func(b *testing.B) {
			success, corrected, trials := 0, 0, 0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)*7919 + 13))
				img, err := mocoder.EncodeDamaged(payload, hdr, l, func(stream []byte) {
					for blk, dataLen := range spec.BlockDataLens {
						nErr := int(pct / 100 * float64(dataLen))
						for _, j := range rng.Perm(dataLen)[:nErr] {
							stream[spec.StreamPos(blk, j)] ^= 0xA5
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				got, _, st, err := mocoder.Decode(img, l)
				trials++
				if err == nil && bytes.Equal(got, payload) {
					success++
					if st != nil {
						corrected += st.BytesCorrected
					}
				}
			}
			b.ReportMetric(float64(success)/float64(trials), "success")
			b.ReportMetric(float64(corrected)/float64(trials), "corrected_B")
		})
	}
}

// ---- E6: compression ---------------------------------------------------------

// BenchmarkE6Compression compares DBCoder (LZ77 + adaptive binary range
// coding) against stdlib flate at maximum effort on the TPC-H SQL text —
// the paper claims performance "close to 7-Zip's LZMA" for this class of
// input.
func BenchmarkE6Compression(b *testing.B) {
	dump := tpchDump()
	b.Run("dbcoder", func(b *testing.B) {
		b.SetBytes(int64(len(dump)))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(dbcoder.Compress(dump))
		}
		b.ReportMetric(float64(len(dump))/float64(n), "ratio")
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("flate9", func(b *testing.B) {
		b.SetBytes(int64(len(dump)))
		var n int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			w, _ := flate.NewWriter(&buf, flate.BestCompression)
			w.Write(dump)
			w.Close()
			n = buf.Len()
		}
		b.ReportMetric(float64(len(dump))/float64(n), "ratio")
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = dump
		}
		b.ReportMetric(1.0, "ratio")
		b.ReportMetric(float64(len(dump)), "bytes")
	})
}

// BenchmarkE10ColumnarLayout measures the paper's §5 future-work claim:
// a database-specific, compressed, columnar layout versus the generic
// DBCoder path on the same TPC-H archive. (Standalone extension — the
// ULE pipeline archives the generic layout, whose decoder is stored on
// the medium; the columnar DynaRisc decoder is future work here as in
// the paper.)
func BenchmarkE10ColumnarLayout(b *testing.B) {
	dump := tpchDump()
	b.Run("columnar", func(b *testing.B) {
		b.SetBytes(int64(len(dump)))
		var n int
		for i := 0; i < b.N; i++ {
			blob, err := columnar.Compress(dump)
			if err != nil {
				b.Fatal(err)
			}
			n = len(blob)
		}
		b.ReportMetric(float64(len(dump))/float64(n), "ratio")
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("columnar-decode", func(b *testing.B) {
		blob, err := columnar.Compress(dump)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(dump)))
		for i := 0; i < b.N; i++ {
			got, err := columnar.Decompress(blob)
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, dump) {
				b.Fatal("columnar round trip mismatch")
			}
		}
	})
}

// ---- E7: capacity arithmetic ---------------------------------------------------

// BenchmarkE7CapacityModel evaluates the §5 scale arithmetic: 1.3 GB per
// 66 m reel ⇒ ~800 reels per terabyte, versus DNA at 1 EB/mm³.
func BenchmarkE7CapacityModel(b *testing.B) {
	var rep media.ScaleReport
	for i := 0; i < b.N; i++ {
		rep = media.Scale(1 << 40) // 1 TB
	}
	reel := media.MicrofilmReel()
	b.ReportMetric(float64(reel.Bytes())/1e9, "GB/reel")
	b.ReportMetric(float64(rep.Reels), "reels/TB")
	b.ReportMetric(float64(rep.Pages), "pages/TB")
	b.ReportMetric(rep.DNAVolumeMM3*1e12, "DNA_pm3/TB")
}

// ---- E8: emulation overhead ------------------------------------------------------

// BenchmarkE8EmulationOverhead decodes the same scanned emblem three
// ways: the native Go decoder, the archived MODecode stream on the
// DynaRisc reference CPU, and the same stream under the VeRisc-hosted
// emulator — quantifying what the nested portability strategy costs.
func BenchmarkE8EmulationOverhead(b *testing.B) {
	l := emblem.Layout{DataW: 80, DataH: 64, PxPerModule: 2}
	payload := make([]byte, mocoder.Capacity(l))
	rand.New(rand.NewSource(3)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw, GroupData: 1, GroupParity: 0}
	scan, err := mocoder.Encode(payload, hdr, l)
	if err != nil {
		b.Fatal(err)
	}
	moProg, err := dynprog.MODecode()
	if err != nil {
		b.Fatal(err)
	}
	in := make([]uint16, 0, 4+len(scan.Pix))
	in = append(in, uint16(scan.W), uint16(scan.H), uint16(l.DataW), uint16(l.DataH))
	for _, p := range scan.Pix {
		in = append(in, uint16(p))
	}

	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got, _, _, err := mocoder.Decode(scan, l)
			if err != nil || !bytes.Equal(got, payload) {
				b.Fatal("native decode failed")
			}
		}
	})
	b.Run("dynarisc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cpu := dynarisc.NewCPU(dynprog.MOMemWords(scan))
			if err := cpu.LoadProgram(moProg.Org, moProg.Words); err != nil {
				b.Fatal(err)
			}
			cpu.In = in
			if err := cpu.Run(); err != nil {
				b.Fatal(err)
			}
			out := cpu.OutBytes()
			if len(out) < emblem.HeaderSize || !bytes.Equal(out[emblem.HeaderSize:], payload) {
				b.Fatal("dynarisc decode mismatch")
			}
		}
	})
	b.Run("nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := nested.Run(moProg, in, dynprog.MOMemWords(scan), 0)
			if err != nil {
				b.Fatal(err)
			}
			outB := make([]byte, len(out))
			for j, w := range out {
				outB[j] = byte(w)
			}
			if len(outB) < emblem.HeaderSize || !bytes.Equal(outB[emblem.HeaderSize:], payload) {
				b.Fatal("nested decode mismatch")
			}
		}
	})
}

// ---- E9: clocking ablation ----------------------------------------------------------

// BenchmarkE9ClockingAblation sweeps scanner row jitter over three
// layouts of the same Reed-Solomon-protected stream: Differential-
// Manchester emblems (self-clocking), absolute-grid emblems (same
// geometry, no clock pairing) and the QR-style baseline. §3.1's design
// argument predicts the self-clocking emblems keep decoding after the
// absolute grids fail.
func BenchmarkE9ClockingAblation(b *testing.B) {
	// Fine pitch (2 px/module) is the archival operating point §3.1 cares
	// about: capture resolution barely above code resolution, where QR's
	// many-pixels-per-dot assumption fails.
	l := emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 2}
	payload := make([]byte, mocoder.Capacity(l))
	rand.New(rand.NewSource(4)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}

	dm, err := mocoder.Encode(payload, hdr, l)
	if err != nil {
		b.Fatal(err)
	}
	abs, err := mocoder.EncodeAbsolute(payload, hdr, l)
	if err != nil {
		b.Fatal(err)
	}
	qrPayload := payload[:64] // QR capacity is far smaller
	qr, _, err := qrbase.Encode(qrPayload, qrbase.DefaultParity, 2)
	if err != nil {
		b.Fatal(err)
	}

	const trialsPerOp = 8
	for _, jitter := range []float64{0, 1, 2, 3, 4, 5} {
		for _, arm := range []string{"dm", "absolute", "qr"} {
			b.Run(fmt.Sprintf("jitter=%.1fpx/%s", jitter, arm), func(b *testing.B) {
				success, trials := 0, 0
				for i := 0; i < b.N; i++ {
					for t := 0; t < trialsPerOp; t++ {
						d := media.Distortions{RowJitterPx: jitter, Seed: int64(i*trialsPerOp+t) + 1}
						trials++
						switch arm {
						case "dm":
							got, _, _, err := mocoder.Decode(d.Apply(dm), l)
							if err == nil && bytes.Equal(got, payload) {
								success++
							}
						case "absolute":
							got, _, _, err := mocoder.DecodeAbsolute(d.Apply(abs), l)
							if err == nil && bytes.Equal(got, payload) {
								success++
							}
						case "qr":
							got, _, err := qrbase.Decode(d.Apply(qr), qrbase.DefaultParity)
							if err == nil && bytes.Equal(got, qrPayload) {
								success++
							}
						}
					}
				}
				b.ReportMetric(float64(success)/float64(trials), "success")
			})
		}
	}
}

// ---- P1–P3: concurrent frame pipeline ----------------------------------------

// pipelineWorkerCounts is the sweep used by the P benchmarks: the serial
// reference, small fixed pools, and 0 = GOMAXPROCS.
var pipelineWorkerCounts = []int{1, 2, 4, 8, 0}

// BenchmarkP1ArchiveWorkers measures CreateArchive's frame-encode fan-out.
// The payload is archived raw (as in E1/E2/E3), so per-frame emblem
// rasterization dominates and throughput scales with the worker count;
// with DBCoder enabled the serial split stage bounds the speedup instead
// (Amdahl — see BenchmarkE6Compression for that cost).
func BenchmarkP1ArchiveWorkers(b *testing.B) {
	data := tpchDump()[:256*1024]
	for _, w := range pipelineWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := microlonys.DefaultOptions(benchProfile())
			opts.Compress = false
			opts.Workers = w
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := microlonys.Archive(data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP2RestoreWorkers measures Restore's scan/decode fan-out in all
// three execution modes. Native restores the 256 KB archive; the emulated
// modes restore a smaller one (DynaRisc decodes each frame in seconds,
// nested in minutes — the overhead E8 quantifies per frame).
func BenchmarkP2RestoreWorkers(b *testing.B) {
	archive := func(b *testing.B, n int, compress bool) (*microlonys.Archived, []byte) {
		data := tpchDump()[:n]
		opts := microlonys.DefaultOptions(benchProfile())
		opts.Compress = compress
		arch, err := microlonys.Archive(data, opts)
		if err != nil {
			b.Fatal(err)
		}
		return arch, data
	}

	run := func(b *testing.B, arch *microlonys.Archived, data []byte, mode microlonys.Mode, w int) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			got, _, err := microlonys.RestoreWith(arch.Medium, arch.BootstrapText,
				microlonys.RestoreOptions{Mode: mode, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				b.Fatal("restore mismatch")
			}
		}
	}

	b.Run("native", func(b *testing.B) {
		arch, data := archive(b, 256*1024, true)
		for _, w := range pipelineWorkerCounts {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { run(b, arch, data, microlonys.RestoreNative, w) })
		}
	})
	b.Run("dynarisc", func(b *testing.B) {
		arch, data := archive(b, 8*1024, true)
		for _, w := range pipelineWorkerCounts {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { run(b, arch, data, microlonys.RestoreDynaRisc, w) })
		}
	})
	b.Run("nested", func(b *testing.B) {
		if testing.Short() {
			b.Skip("nested emulation is slow; skipped in -short mode")
		}
		// Raw mode keeps this to one group of four small frames, as in
		// the core nested tests.
		data := tpchDump()[:2*benchProfile().FrameCapacity()]
		opts := microlonys.DefaultOptions(benchProfile())
		opts.Compress = false
		arch, err := microlonys.Archive(data, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { run(b, arch, data, microlonys.RestoreNested, w) })
		}
	})
}

// BenchmarkP3ProfilePipeline compares the serial reference (workers=1)
// against the default pool (workers=0 ⇒ GOMAXPROCS) for an archive+restore
// round trip on each of the paper's three media profiles, at a payload
// small enough that the full-resolution frames stay benchable.
func BenchmarkP3ProfilePipeline(b *testing.B) {
	payload := logoPayload()
	for _, prof := range []media.Profile{media.Paper(), media.Microfilm(), media.CinemaFilm()} {
		for _, w := range []int{1, 0} {
			b.Run(fmt.Sprintf("%s/workers=%d", prof.Name, w), func(b *testing.B) {
				opts := microlonys.DefaultOptions(prof)
				opts.Compress = false // as in E2/E3: the payload is image-like
				opts.Workers = w
				b.SetBytes(int64(len(payload)))
				for i := 0; i < b.N; i++ {
					arch, err := microlonys.Archive(payload, opts)
					if err != nil {
						b.Fatal(err)
					}
					got, _, err := microlonys.RestoreWith(arch.Medium, arch.BootstrapText,
						microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					if !bytes.Equal(got, payload) {
						b.Fatal("round trip mismatch")
					}
				}
			})
		}
	}
}

// ---- P4: emulated restore hot path --------------------------------------------

// BenchmarkP4EmulatedRestore measures the emulated-restore hot path this
// repo's perf work targets: end-to-end Restore in the DynaRisc and
// nested modes at serial and default worker counts, with allocation
// reporting. Per-worker emulator reuse should hold allocations per
// restore roughly constant in the frame count (one machine image per
// worker, one payload per frame) rather than one multi-megabyte image
// per frame; the fused interpreter loops set the ns/frame floor.
func BenchmarkP4EmulatedRestore(b *testing.B) {
	run := func(b *testing.B, arch *microlonys.Archived, data []byte, mode microlonys.Mode, w int) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		frames := arch.Manifest.TotalFrames
		for i := 0; i < b.N; i++ {
			got, _, err := microlonys.RestoreWith(arch.Medium, arch.BootstrapText,
				microlonys.RestoreOptions{Mode: mode, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				b.Fatal("restore mismatch")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(frames)/1e6, "ms/frame")
	}

	b.Run("dynarisc", func(b *testing.B) {
		data := tpchDump()[:8*1024]
		opts := microlonys.DefaultOptions(benchProfile())
		arch, err := microlonys.Archive(data, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 0} {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
				run(b, arch, data, microlonys.RestoreDynaRisc, w)
			})
		}
	})
	b.Run("nested", func(b *testing.B) {
		if testing.Short() {
			b.Skip("nested emulation is slow; skipped in -short mode")
		}
		data := tpchDump()[:2*benchProfile().FrameCapacity()]
		opts := microlonys.DefaultOptions(benchProfile())
		opts.Compress = false // one 4-frame group keeps nested benchable
		arch, err := microlonys.Archive(data, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
				run(b, arch, data, microlonys.RestoreNested, w)
			})
		}
	})

	// Per-frame decoder cost in isolation, one iteration = one frame
	// through a reused emulator — the counterpart of E8's fresh-machine
	// numbers, and the direct measure of what Reset/reuse saves.
	b.Run("frame-reuse", func(b *testing.B) {
		l := emblem.Layout{DataW: 80, DataH: 64, PxPerModule: 2}
		payload := make([]byte, mocoder.Capacity(l))
		rand.New(rand.NewSource(3)).Read(payload)
		hdr := emblem.Header{Kind: emblem.KindRaw, GroupData: 1, GroupParity: 0}
		scan, err := mocoder.Encode(payload, hdr, l)
		if err != nil {
			b.Fatal(err)
		}
		moProg, err := dynprog.MODecode()
		if err != nil {
			b.Fatal(err)
		}
		in := dynprog.MOInput(scan, l)

		b.Run("dynarisc", func(b *testing.B) {
			b.ReportAllocs()
			cpu := dynarisc.NewCPU(dynprog.MOMemWords(scan))
			decode := func() []byte {
				cpu.Reset()
				if err := cpu.LoadProgram(moProg.Org, moProg.Words); err != nil {
					b.Fatal(err)
				}
				cpu.In = in
				if err := cpu.Run(); err != nil {
					b.Fatal(err)
				}
				return cpu.OutBytes()
			}
			decode()       // warm-up grows the reused Out buffer once
			b.ResetTimer() // …so iterations measure the steady state
			for i := 0; i < b.N; i++ {
				out := decode()
				if len(out) < emblem.HeaderSize || !bytes.Equal(out[emblem.HeaderSize:], payload) {
					b.Fatal("dynarisc decode mismatch")
				}
			}
		})
		b.Run("nested", func(b *testing.B) {
			if testing.Short() {
				b.Skip("nested emulation is slow; skipped in -short mode")
			}
			b.ReportAllocs()
			r := nested.NewRunner()
			if _, err := r.RunAppendBytes(nil, moProg, in, dynprog.MOMemWords(scan), 0); err != nil {
				b.Fatal(err) // warm-up allocates the lazy machine
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outB, err := r.RunAppendBytes(nil, moProg, in, dynprog.MOMemWords(scan), 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(outB) < emblem.HeaderSize || !bytes.Equal(outB[emblem.HeaderSize:], payload) {
					b.Fatal("nested decode mismatch")
				}
			}
		})
	})
}

// ---- P5: archive hot path ------------------------------------------------

// BenchmarkP5ArchiveEncode measures the archive-side hot path: end-to-end
// CreateArchive with allocation reporting and ms/frame (raw and
// compressed, serial and default worker counts), the per-frame emblem
// encode through fresh vs reused scratch (the direct measure of what the
// per-worker encScratch saves), the place stage's media-writer cost, and
// the DBCoder depth dial behind Options.CompressDepth. The counterpart of
// P4 for the write-heavy direction archival systems are built around.
func BenchmarkP5ArchiveEncode(b *testing.B) {
	run := func(b *testing.B, data []byte, opts microlonys.Options) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		frames := 0
		for i := 0; i < b.N; i++ {
			arch, err := microlonys.Archive(data, opts)
			if err != nil {
				b.Fatal(err)
			}
			frames = arch.Manifest.TotalFrames
		}
		b.ReportMetric(float64(frames), "frames")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(frames)/1e6, "ms/frame")
	}

	// End-to-end archival, frame encode dominated (as in E1/E2/E3).
	b.Run("raw", func(b *testing.B) {
		data := tpchDump()[:256*1024]
		for _, w := range []int{1, 0} {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
				opts := microlonys.DefaultOptions(benchProfile())
				opts.Compress = false
				opts.Workers = w
				run(b, data, opts)
			})
		}
	})

	// End-to-end archival with DBCoder in front (the serial split stage
	// bounds the worker scaling; E6 prices that stage in isolation).
	b.Run("compressed", func(b *testing.B) {
		data := tpchDump()[:128*1024]
		for _, w := range []int{1, 0} {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
				opts := microlonys.DefaultOptions(benchProfile())
				opts.Workers = w
				run(b, data, opts)
			})
		}
	})

	// The Options.CompressDepth dial: archive speed vs stream density.
	b.Run("depth", func(b *testing.B) {
		data := tpchDump()[:256*1024]
		for _, depth := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				var streamLen int
				for i := 0; i < b.N; i++ {
					blob := dbcoder.CompressDepth(data, depth)
					streamLen = len(blob)
				}
				b.ReportMetric(float64(len(data))/float64(streamLen), "ratio")
			})
		}
	})

	// Per-frame encode cost in isolation, one iteration = one frame:
	// fresh scratch vs a reused Encoder, the archive counterpart of P4's
	// frame-reuse arm.
	b.Run("frame-reuse", func(b *testing.B) {
		l := benchProfile().Layout
		payload := make([]byte, mocoder.Capacity(l))
		rand.New(rand.NewSource(6)).Read(payload)
		hdr := emblem.Header{Kind: emblem.KindRaw}
		b.Run("fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mocoder.Encode(payload, hdr, l); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("reused", func(b *testing.B) {
			b.ReportAllocs()
			var e mocoder.Encoder
			if _, err := e.Encode(payload, hdr, l); err != nil {
				b.Fatal(err) // warm-up sizes the scratch once
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Encode(payload, hdr, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	// The place stage: writer-side quantisation and storage of encoded
	// frames (the built-in profiles' writers are distortion-free, so this
	// rides the IsZero fast path).
	b.Run("place", func(b *testing.B) {
		prof := benchProfile()
		prof.WriteBitonal = true
		l := prof.Layout
		payload := make([]byte, mocoder.Capacity(l))
		rand.New(rand.NewSource(7)).Read(payload)
		var e mocoder.Encoder
		frames := make([]*raster.Gray, 8)
		for i := range frames {
			img, err := e.Encode(payload, emblem.Header{Kind: emblem.KindRaw, Index: uint16(i)}, l)
			if err != nil {
				b.Fatal(err)
			}
			frames[i] = img
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(frames) * l.ImageW() * l.ImageH()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := media.New(prof)
			if err := m.Write(frames); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- P6: multi-volume streaming archives -------------------------------

// BenchmarkP6Volume measures the multi-volume streaming pipeline at the
// public API (BENCH_volume.json records the committed baseline): the
// sheet sweep (the same archive cut across one, two and three carriers,
// archive + restore), the sheet-loss scenario (destroy one of three
// carriers, Partial-restore the survivors), and RestoreTo-vs-
// RestoreVolume on a 3-sheet archive — both public ends stream
// group-incrementally, so they should differ only by the output buffer.
// The streaming-vs-seed-buffered peak comparison lives next to the seed
// reference formulations: BenchmarkP6ArchivePeak and
// BenchmarkP6ReassemblePeak in internal/core.
func BenchmarkP6Volume(b *testing.B) {
	prof := benchProfile()
	capacity := prof.FrameCapacity()
	newOpts := func(sheetFrames int) microlonys.Options {
		opts := microlonys.DefaultOptions(prof)
		opts.Compress = false // raw keeps the frame count exact and streams end to end
		opts.SheetFrames = sheetFrames
		return opts
	}
	// 40 capacity-sized chunks = 3 outer-code groups = 49 frames: one
	// unbounded sheet, three sheets of 20 frames, or two of 40.
	data := tpchDump()[:40*capacity]

	archive := func(b *testing.B, sheetFrames int) *microlonys.Archived {
		b.Helper()
		arch, err := microlonys.ArchiveReader(bytes.NewReader(data), newOpts(sheetFrames))
		if err != nil {
			b.Fatal(err)
		}
		return arch
	}

	// The same archive across more, smaller carriers: the frame stream is
	// identical work, so the sweep prices the sheet bookkeeping itself.
	b.Run("sheets", func(b *testing.B) {
		for _, sf := range []int{0, 20, 40} {
			b.Run(fmt.Sprintf("sheetFrames=%d", sf), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(data)))
				var sheets int
				for i := 0; i < b.N; i++ {
					arch := archive(b, sf)
					sheets = arch.Volume.Sheets()
					out, _, err := microlonys.RestoreVolume(arch.Volume, arch.BootstrapText,
						microlonys.RestoreOptions{Mode: microlonys.RestoreNative})
					if err != nil {
						b.Fatal(err)
					}
					if !bytes.Equal(out, data) {
						b.Fatal("round trip differs")
					}
				}
				b.ReportMetric(float64(sheets), "sheets")
			})
		}
	})

	// Carrier loss: one of three sheets destroyed, survivors restored in
	// Partial mode with per-group accounting.
	b.Run("sheetloss", func(b *testing.B) {
		b.ReportAllocs()
		var lostGroups, lostBytes int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			arch := archive(b, 20)
			if err := arch.Volume.DestroySheet(1); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			st, err := microlonys.RestoreTo(io.Discard, arch.Volume, arch.BootstrapText,
				microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Partial: true})
			if err != nil {
				b.Fatal(err)
			}
			lostGroups, lostBytes = st.GroupsLost, st.BytesLost
		}
		b.ReportMetric(float64(lostGroups), "groups-lost")
		b.ReportMetric(float64(lostBytes), "B-lost")
	})

	// RestoreTo (streamed to io.Discard) vs RestoreVolume (buffered output)
	// on the 3-sheet archive: same group-incremental decoding, so the
	// allocation totals isolate what the output buffer costs.
	b.Run("restore", func(b *testing.B) {
		arch := archive(b, 20)
		b.Run("streaming", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := microlonys.RestoreTo(io.Discard, arch.Volume, arch.BootstrapText,
					microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("buffered", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				out, _, err := microlonys.RestoreVolume(arch.Volume, arch.BootstrapText,
					microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != len(data) {
					b.Fatal("short restore")
				}
			}
		})
	})
}

// ---- P7: restore scan hot path -------------------------------------------

// BenchmarkP7RestoreScan measures the native restore scan leg this repo's
// scan-path work targets (BENCH_scan.json records the committed
// baseline): the end-to-end serial native restore of a 256 KB raw archive
// (the read-side counterpart of P5/raw/workers=1 — scan + demodulate +
// inner RS dominate), the per-frame emblem decode through fresh vs reused
// scratch (the direct measure of what the per-worker scanScratch saves),
// the Reed-Solomon decode on clean, damaged and erased words (clean is
// the dominant undamaged case the syndrome tables exist for), and the
// outer-code group recovery (the once-per-group erasure solve).
func BenchmarkP7RestoreScan(b *testing.B) {
	// End-to-end serial restore, in two scanner regimes: the bench
	// profile's full distortion model (rotation, blur, noise, dust — the
	// scanner simulation is roughly half the work and is identity-bound),
	// and a pristine scan-back (the archival-writer best case), which
	// isolates the decode leg this PR rebuilds.
	serial := func(b *testing.B, prof media.Profile) {
		data := tpchDump()[:256*1024]
		opts := microlonys.DefaultOptions(prof)
		opts.Compress = false
		arch, err := microlonys.Archive(data, opts)
		if err != nil {
			b.Fatal(err)
		}
		frames := arch.Manifest.TotalFrames
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, _, err := microlonys.RestoreWith(arch.Medium, arch.BootstrapText,
				microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				b.Fatal("restore mismatch")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(frames)/1e6, "ms/frame")
	}
	b.Run("serial-native/distorted", func(b *testing.B) { serial(b, benchProfile()) })
	b.Run("serial-native/fastsim", func(b *testing.B) {
		// The same distortion model through the fast-sim approximations
		// (nearest warp, stream noise, multiply-shift blur) — the scan
		// leg's cheap profile for large damage campaigns.
		prof := benchProfile()
		prof.Scanner.FastSim = true
		serial(b, prof)
	})
	b.Run("serial-native/clean", func(b *testing.B) {
		prof := benchProfile()
		prof.Scanner = media.Distortions{}
		serial(b, prof)
	})

	// Per-frame emblem decode on a clean rendered frame, one iteration =
	// one frame: fresh scratch vs a reused DecodeScratch.
	b.Run("frame-decode", func(b *testing.B) {
		l := benchProfile().Layout
		payload := make([]byte, mocoder.Capacity(l))
		rand.New(rand.NewSource(11)).Read(payload)
		img, err := mocoder.Encode(payload, emblem.Header{Kind: emblem.KindRaw}, l)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := mocoder.Decode(img, l); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("reused", func(b *testing.B) {
			b.ReportAllocs()
			var s mocoder.DecodeScratch
			if _, _, _, err := mocoder.DecodeWith(&s, img, l); err != nil {
				b.Fatal(err) // warm-up sizes the scratch once
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := mocoder.DecodeWith(&s, img, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	// The inner RS(255,223) decode: the clean word every undamaged block
	// hits, and a 16-error word at the correction limit.
	b.Run("rs-decode", func(b *testing.B) {
		c := rs.New(rs.InnerParity)
		rng := rand.New(rand.NewSource(12))
		data := make([]byte, rs.InnerData)
		rng.Read(data)
		clean := c.EncodeFull(data)
		damaged := append([]byte(nil), clean...)
		for _, p := range rng.Perm(len(damaged))[:16] {
			damaged[p] ^= 0xA5
		}
		buf := make([]byte, len(clean))
		b.Run("clean", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(rs.InnerData)
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(clean, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("damaged", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(rs.InnerData)
			for i := 0; i < b.N; i++ {
				copy(buf, damaged)
				if _, err := c.Decode(buf, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Hoisted out of the sub-benchmark so the workload is identical
		// across calibration rounds (the closure reruns with growing b.N
		// and must not re-draw from the shared rng).
		eras := rng.Perm(len(clean))[:rs.InnerParity]
		erased := append([]byte(nil), clean...)
		for _, p := range eras {
			erased[p] = 0
		}
		b.Run("erasures", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(rs.InnerData)
			for i := 0; i < b.N; i++ {
				copy(buf, erased)
				if _, err := c.Decode(buf, eras); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	// Outer-code group recovery: 3 of 20 emblem payloads missing, at the
	// bench profile's frame capacity.
	b.Run("group-recover", func(b *testing.B) {
		capacity := benchProfile().FrameCapacity()
		rng := rand.New(rand.NewSource(13))
		data := make([][]byte, mocoder.GroupData)
		for i := range data {
			data[i] = make([]byte, capacity)
			rng.Read(data[i])
		}
		parity, err := mocoder.GroupParityPayloads(data)
		if err != nil {
			b.Fatal(err)
		}
		group := append(append([][]byte(nil), data...), parity...)
		broken := make([][]byte, len(group))
		b.ReportAllocs()
		b.SetBytes(int64(mocoder.GroupData * capacity))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(broken, group)
			broken[1], broken[8], broken[19] = nil, nil, nil
			if err := mocoder.RecoverGroup(broken); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- P9: indexed selective restore ------------------------------------

// BenchmarkP9Range prices the selective-restore index (BENCH_range.json
// records the committed numbers): one TPC-H table restored from a
// ~100-sheet indexed volume against the full restore of the same volume.
// The table query probes one index emblem, decodes only the outer-code
// groups the table's restart blocks overlap, and must touch fewer than
// 5% of the volume's frames — asserted here, so the CI bench smoke is
// also the regression gate for the headline ratio.
func BenchmarkP9Range(b *testing.B) {
	// A mid-size frame: large enough that the index emblem carries a
	// fine-grained restart-block table next to the full section table,
	// small enough that a ~100-sheet volume archives in seconds.
	l := emblem.Layout{DataW: 160, DataH: 120, PxPerModule: 3}
	prof := media.Profile{
		Name:   "p9-bench",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: media.Distortions{
			RotationDeg: 0.1, BlurRadius: 1, Noise: 2, DustSpecks: 2,
		},
	}
	capacity := prof.FrameCapacity()
	// Enough stream chunks for ~100 one-group sheets after compression
	// (~50 in -short smoke runs, same ratio assertion).
	sheets := 100
	if testing.Short() {
		sheets = 50
	}
	opts := microlonys.DefaultOptions(prof)
	opts.CompressDepth = 1
	opts.SheetFrames = 22 // 17+3 group + catalog + index slots
	opts.Catalog = true
	opts.Index = true
	_, db := tpch.FitScaleFactor(sheets*17*capacity*13/2, 7, sqldump.Dump)
	data := sqldump.Dump(db)
	arch, err := microlonys.ArchiveReader(bytes.NewReader(data), opts)
	if err != nil {
		b.Fatal(err)
	}
	secs, err := sqldump.Sections(data)
	if err != nil {
		b.Fatal(err)
	}
	want := data[secs[1].Off : secs[1].Off+secs[1].Len] // nation: small and fixed-size
	total := arch.Volume.FrameCount()
	b.Logf("volume: %d sheets, %d frames, %d B raw -> %d B stream; table %q = %d B",
		arch.Volume.Sheets(), total, arch.Manifest.RawLen, arch.Manifest.StreamLen,
		secs[1].Table, len(want))

	b.Run("table", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(want)))
		var st *microlonys.RestoreStats
		for i := 0; i < b.N; i++ {
			got, s, err := microlonys.RestoreTable(arch.Volume, arch.BootstrapText, secs[1].Table,
				microlonys.RestoreOptions{Mode: microlonys.RestoreNative})
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				b.Fatal("table restore differs from input extent")
			}
			st = s
		}
		if st.IndexFallbacks != 0 {
			b.Fatalf("table query fell back to a full restore: %+v", st)
		}
		ratio := 100 * float64(st.FramesScanned) / float64(total)
		if ratio >= 5 {
			b.Fatalf("table query touched %.1f%% of frames (%d of %d), want <5%%",
				ratio, st.FramesScanned, total)
		}
		b.ReportMetric(float64(st.FramesScanned), "frames-scanned")
		b.ReportMetric(float64(st.FramesSkipped), "frames-skipped")
		b.ReportMetric(ratio, "frames-touched-%")
	})

	b.Run("range", func(b *testing.B) {
		b.ReportAllocs()
		off, n := len(data)/2, 4096
		b.SetBytes(int64(n))
		var st *microlonys.RestoreStats
		for i := 0; i < b.N; i++ {
			got, s, err := microlonys.RestoreRange(arch.Volume, arch.BootstrapText, off, n,
				microlonys.RestoreOptions{Mode: microlonys.RestoreNative})
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, data[off:off+n]) {
				b.Fatal("range restore differs from input slice")
			}
			st = s
		}
		b.ReportMetric(float64(st.FramesScanned), "frames-scanned")
		b.ReportMetric(100*float64(st.FramesScanned)/float64(total), "frames-touched-%")
	})

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			got, _, err := microlonys.RestoreVolume(arch.Volume, arch.BootstrapText,
				microlonys.RestoreOptions{Mode: microlonys.RestoreNative})
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				b.Fatal("full restore differs from input")
			}
		}
	})
}

// ---- E11: DNA archival channel (§5 future work) -------------------------------

// BenchmarkE11DNAArchival runs the DBCoder-compressed TPC-H archive
// through the synthetic-DNA substrate (§5: "extending Micr'Olonys to be
// used in conjunction with a DNA-based database archive") across
// sequencing-coverage levels, reporting restore success and the net
// information density behind the paper's 1 EB/mm³ contrast.
func BenchmarkE11DNAArchival(b *testing.B) {
	blob := dbcoder.Compress(tpchDump())[:48*1024] // bounded slice of the real stream
	oligos := dnasim.Encode(blob)
	b.Logf("payload %d B -> %d oligos of %d nt", len(blob), len(oligos), dnasim.OligoLen())

	for _, cov := range []float64{2, 5, 10} {
		b.Run(fmt.Sprintf("coverage=%gx", cov), func(b *testing.B) {
			success, trials := 0, 0
			var corrected int
			for i := 0; i < b.N; i++ {
				ch := dnasim.Channel{
					Coverage: cov, SubRate: 0.005, DropRate: 0.01,
					Seed: int64(i) + 1,
				}
				got, st, err := dnasim.Decode(ch.Sequence(oligos))
				trials++
				if err == nil && bytes.Equal(got, blob) {
					success++
					corrected += st.BytesCorrected
				}
			}
			b.ReportMetric(float64(success)/float64(trials), "success")
			b.ReportMetric(float64(corrected)/float64(trials), "corrected_B")
			b.ReportMetric(dnasim.Density(len(blob)), "bits/nt")
		})
	}
}

// BenchmarkE5OuterCode destroys k whole frames of a single 20-frame
// group (17 data + 3 parity) and restores. §3.1: "full bit-for-bit
// restoration of data contained within a series of 20 emblems in which
// any three are missing altogether" — success must hold through k=3 and
// vanish at k=4.
func BenchmarkE5OuterCode(b *testing.B) {
	profile := benchProfile()
	capacity := profile.FrameCapacity()
	data := make([]byte, capacity*17) // exactly one full group
	rand.New(rand.NewSource(5)).Read(data)
	opts := microlonys.DefaultOptions(profile)
	opts.Compress = false

	for _, k := range []int{0, 1, 2, 3, 4} {
		b.Run(fmt.Sprintf("destroyed=%d", k), func(b *testing.B) {
			success, trials := 0, 0
			for i := 0; i < b.N; i++ {
				arch, err := microlonys.Archive(data, opts)
				if err != nil {
					b.Fatal(err)
				}
				if arch.Manifest.TotalFrames != 20 {
					b.Fatalf("frames = %d, want one 20-frame group", arch.Manifest.TotalFrames)
				}
				rng := rand.New(rand.NewSource(int64(i) + 1))
				for _, f := range rng.Perm(20)[:k] {
					arch.Medium.Destroy(f)
				}
				got, _, err := microlonys.Restore(arch.Medium, arch.BootstrapText, microlonys.RestoreNative)
				trials++
				if err == nil && bytes.Equal(got, data) {
					success++
				}
			}
			b.ReportMetric(float64(success)/float64(trials), "success")
		})
	}
}
