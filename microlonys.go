// Package microlonys is an end-to-end, long-term database archival system
// implementing Universal Layout Emulation (ULE), reproducing "Universal
// Layout Emulation for Long-Term Database Archival" (Appuswamy & Joguin,
// CIDR 2021).
//
// ULE archives data together with the layout decoders needed to read it
// back: the database archive is compressed by DBCoder, laid out on visual
// analog media as emblems by MOCoder, and accompanied by (a) system
// emblems holding the DBCoder decoder as a DynaRisc instruction stream and
// (b) a short plain-text Bootstrap document containing the MOCoder decoder
// and a DynaRisc emulator written for the four-instruction VeRisc machine.
// A future user implements VeRisc from the document's pseudocode — a few
// hundred lines on any platform — and the archive restores itself.
//
//	opts := microlonys.DefaultOptions(media.Paper())
//	arch, err := microlonys.Archive(sqlDump, opts)
//	...
//	data, stats, err := microlonys.Restore(arch.Medium, arch.BootstrapText,
//		microlonys.RestoreNative)
//
// Restoration modes: RestoreNative uses the Go reference decoders;
// RestoreDynaRisc executes the archived decoder instruction streams on the
// DynaRisc reference CPU; RestoreNested additionally hosts DynaRisc inside
// the VeRisc emulator — the exact path a future user follows.
//
// Emblem frames are independent, so both directions fan per-frame work
// (rasterization on the way out, scan/decode on the way back) across a
// bounded worker pool. Options.Workers and RestoreOptions.Workers size the
// pool (0 = GOMAXPROCS, 1 = serial); results are byte-identical at any
// setting.
//
// Archives are multi-volume and streaming: ArchiveReader plans, encodes
// and places one outer-code group at a time onto a media.Volume — an
// ordered set of sheets (pages, reels) cut to Options.SheetFrames, with a
// group never straddling a carrier — and RestoreTo flushes each group to
// an io.Writer as soon as its frames decode. The []byte APIs are thin
// wrappers over the streaming ends.
//
// Subpackages: media (analog media simulation and capacity models), raster
// (images), dynarisc and verisc (the two virtual processors), tpch (the
// evaluation workload generator).
package microlonys

import (
	"io"

	"microlonys/internal/archindex"
	"microlonys/internal/core"
	"microlonys/media"
)

// Mode selects a restoration execution path.
type Mode = core.Mode

// Restoration modes.
const (
	RestoreNative   = core.RestoreNative
	RestoreDynaRisc = core.RestoreDynaRisc
	RestoreNested   = core.RestoreNested
)

// Options configures archival, including the Workers field bounding the
// frame-encode fan-out.
type Options = core.Options

// RestoreOptions configures restoration: the execution Mode and the
// Workers field bounding the frame scan/decode fan-out.
type RestoreOptions = core.RestoreOptions

// Manifest records what an archival run wrote.
type Manifest = core.Manifest

// Archived is a produced archive: the written medium, the Bootstrap
// document text and the manifest.
type Archived = core.Archived

// RestoreStats reports restoration diagnostics, including per-sheet and
// per-group recovery detail.
type RestoreStats = core.RestoreStats

// SheetReport is one media sheet's slice of RestoreStats.
type SheetReport = core.SheetReport

// GroupReport is one outer-code group's slice of RestoreStats.
type GroupReport = core.GroupReport

// DefaultOptions returns the paper's configuration (17+3 outer code,
// DBCoder compression) for a media profile.
func DefaultOptions(p media.Profile) Options { return core.DefaultOptions(p) }

// Archive runs the archival pipeline of Figure 2(a): the database archive
// bytes are compressed, laid out as emblems with nested Reed-Solomon
// protection, and written to the simulated medium together with the
// system emblems and Bootstrap document.
func Archive(data []byte, opts Options) (*Archived, error) {
	return core.CreateArchive(data, opts)
}

// ArchiveReader is Archive over an io.Reader: the pipeline plans, encodes
// and places one outer-code group at a time, so the rasterized frames are
// never materialized beyond the group in flight. With Options.SheetFrames
// set, the place stage shards groups across media sheets — a group never
// straddles a carrier — and the result's Volume holds every sheet
// (Medium aliases the single sheet when only one was cut).
func ArchiveReader(r io.Reader, opts Options) (*Archived, error) {
	return core.CreateArchiveStream(r, opts)
}

// Restore runs the restoration pipeline of Figure 2(b) against a medium
// and the Bootstrap text, returning the original archive bytes.
func Restore(m *media.Medium, bootstrapText string, mode Mode) ([]byte, *RestoreStats, error) {
	return core.Restore(m, bootstrapText, mode)
}

// RestoreWith is Restore with explicit options — most usefully Workers,
// which sizes the scan/decode worker pool. Output is byte-identical at
// any worker count.
func RestoreWith(m *media.Medium, bootstrapText string, opts RestoreOptions) ([]byte, *RestoreStats, error) {
	return core.RestoreWithOptions(m, bootstrapText, opts)
}

// RestoreVolume restores a multi-sheet volume into memory.
func RestoreVolume(v *media.Volume, bootstrapText string, opts RestoreOptions) ([]byte, *RestoreStats, error) {
	return core.RestoreVolume(v, bootstrapText, opts)
}

// RestoreTo runs the restoration pipeline group-incrementally against a
// volume, writing the restored bytes to w: each 17+3 group is
// outer-recovered and flushed as soon as its frames decode, bounding peak
// memory to the groups in flight instead of the whole archive (raw
// archives stream end to end; compressed archives buffer only the small
// compressed stream for DBDecode). RestoreOptions.Partial keeps going
// past lost carriers, zero-filling and reporting what could not be
// recovered.
func RestoreTo(w io.Writer, v *media.Volume, bootstrapText string, opts RestoreOptions) (*RestoreStats, error) {
	return core.RestoreToWriter(w, v, bootstrapText, opts)
}

// ArchiveIndex is a volume's selective-restore index: archive identity
// and geometry, DBS1 restart-block table and named sections, written one
// emblem per sheet when Options.Index is set.
type ArchiveIndex = archindex.Index

// ArchiveSection is one named extent of the original archive — a
// SQL-dump table or a column — recorded in the ArchiveIndex.
type ArchiveSection = archindex.Section

// ArchiveSection kinds.
const (
	SectionTable  = archindex.SectionTable
	SectionColumn = archindex.SectionColumn
)

// RestoreRange restores exactly bytes [off, off+length) of the original
// archive from an indexed volume (Options.Index), scanning and decoding
// only the outer-code groups the range touches — whole sheets outside the
// query are skipped without a single frame scan, and only the overlapping
// DBS1 restart blocks are decompressed. The bytes are identical to the
// same slice of a full Restore at any worker count. Volumes without a
// usable index fall back to a full restore (RestoreStats.IndexFallbacks).
func RestoreRange(v *media.Volume, bootstrapText string, off, length int, opts RestoreOptions) ([]byte, *RestoreStats, error) {
	return core.RestoreRange(v, bootstrapText, off, length, opts)
}

// RestoreTable restores one SQL-dump table's rows region by name through
// the index's section table, decoding only the groups the table spans.
func RestoreTable(v *media.Volume, bootstrapText, table string, opts RestoreOptions) ([]byte, *RestoreStats, error) {
	return core.RestoreTable(v, bootstrapText, table, opts)
}

// RestoreSection restores one named archive section — a table ("nation")
// or a column ("nation.n_name") — through the index.
func RestoreSection(v *media.Volume, bootstrapText, name string, opts RestoreOptions) ([]byte, *RestoreStats, error) {
	return core.RestoreSection(v, bootstrapText, name, opts)
}

// ListIndex reads a volume's selective-restore index without decoding any
// payload group: one index emblem probe per sheet until one parses.
func ListIndex(v *media.Volume, bootstrapText string, opts RestoreOptions) (*ArchiveIndex, *RestoreStats, error) {
	return core.ListIndex(v, bootstrapText, opts)
}

// SalvageOptions configures a Salvage run.
type SalvageOptions = core.SalvageOptions

// SalvageReport is the salvage ledger: sheets identified, duplicated and
// missing, catalog usage, and the best-effort restore's statistics.
type SalvageReport = core.SalvageReport

// Salvage is the disaster-path restore: it accepts an unordered bag of
// possibly damaged, duplicated or incomplete sheets — with no Bootstrap
// text and no sheet order — and restores best-effort. Sheets are
// identified and ordered from their self-describing catalog emblems
// (written when Options.Catalog was set), falling back to a majority
// vote over the surviving frame headers; redundant copies are deduped
// by best-decoding sheet; each restored group is verified against the
// catalog's checksum; what cannot be recovered is zero-filled at its
// archive offset and inventoried in the SalvageReport. The output is
// byte-identical to Restore whenever damage stays within the parity
// budget.
func Salvage(sheets []*media.Medium, opts SalvageOptions) ([]byte, *SalvageReport, error) {
	return core.Salvage(sheets, opts)
}

// SalvageTo is Salvage streaming to an io.Writer.
func SalvageTo(w io.Writer, sheets []*media.Medium, opts SalvageOptions) (*SalvageReport, error) {
	return core.SalvageTo(w, sheets, opts)
}
