// Package microlonys is an end-to-end, long-term database archival system
// implementing Universal Layout Emulation (ULE), reproducing "Universal
// Layout Emulation for Long-Term Database Archival" (Appuswamy & Joguin,
// CIDR 2021).
//
// ULE archives data together with the layout decoders needed to read it
// back: the database archive is compressed by DBCoder, laid out on visual
// analog media as emblems by MOCoder, and accompanied by (a) system
// emblems holding the DBCoder decoder as a DynaRisc instruction stream and
// (b) a short plain-text Bootstrap document containing the MOCoder decoder
// and a DynaRisc emulator written for the four-instruction VeRisc machine.
// A future user implements VeRisc from the document's pseudocode — a few
// hundred lines on any platform — and the archive restores itself.
//
//	opts := microlonys.DefaultOptions(media.Paper())
//	arch, err := microlonys.Archive(sqlDump, opts)
//	...
//	data, stats, err := microlonys.Restore(arch.Medium, arch.BootstrapText,
//		microlonys.RestoreNative)
//
// Restoration modes: RestoreNative uses the Go reference decoders;
// RestoreDynaRisc executes the archived decoder instruction streams on the
// DynaRisc reference CPU; RestoreNested additionally hosts DynaRisc inside
// the VeRisc emulator — the exact path a future user follows.
//
// Emblem frames are independent, so both directions fan per-frame work
// (rasterization on the way out, scan/decode on the way back) across a
// bounded worker pool. Options.Workers and RestoreOptions.Workers size the
// pool (0 = GOMAXPROCS, 1 = serial); results are byte-identical at any
// setting.
//
// Subpackages: media (analog media simulation and capacity models), raster
// (images), dynarisc and verisc (the two virtual processors), tpch (the
// evaluation workload generator).
package microlonys

import (
	"microlonys/internal/core"
	"microlonys/media"
)

// Mode selects a restoration execution path.
type Mode = core.Mode

// Restoration modes.
const (
	RestoreNative   = core.RestoreNative
	RestoreDynaRisc = core.RestoreDynaRisc
	RestoreNested   = core.RestoreNested
)

// Options configures archival, including the Workers field bounding the
// frame-encode fan-out.
type Options = core.Options

// RestoreOptions configures restoration: the execution Mode and the
// Workers field bounding the frame scan/decode fan-out.
type RestoreOptions = core.RestoreOptions

// Manifest records what an archival run wrote.
type Manifest = core.Manifest

// Archived is a produced archive: the written medium, the Bootstrap
// document text and the manifest.
type Archived = core.Archived

// RestoreStats reports restoration diagnostics.
type RestoreStats = core.RestoreStats

// DefaultOptions returns the paper's configuration (17+3 outer code,
// DBCoder compression) for a media profile.
func DefaultOptions(p media.Profile) Options { return core.DefaultOptions(p) }

// Archive runs the archival pipeline of Figure 2(a): the database archive
// bytes are compressed, laid out as emblems with nested Reed-Solomon
// protection, and written to the simulated medium together with the
// system emblems and Bootstrap document.
func Archive(data []byte, opts Options) (*Archived, error) {
	return core.CreateArchive(data, opts)
}

// Restore runs the restoration pipeline of Figure 2(b) against a medium
// and the Bootstrap text, returning the original archive bytes.
func Restore(m *media.Medium, bootstrapText string, mode Mode) ([]byte, *RestoreStats, error) {
	return core.Restore(m, bootstrapText, mode)
}

// RestoreWith is Restore with explicit options — most usefully Workers,
// which sizes the scan/decode worker pool. Output is byte-identical at
// any worker count.
func RestoreWith(m *media.Medium, bootstrapText string, opts RestoreOptions) ([]byte, *RestoreStats, error) {
	return core.RestoreWithOptions(m, bootstrapText, opts)
}
