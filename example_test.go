package microlonys_test

import (
	"bytes"
	"fmt"

	"microlonys"
	"microlonys/internal/emblem"
	"microlonys/media"
)

// exampleProfile is a small, distortion-free medium so the examples run in
// milliseconds; media.Paper, media.Microfilm and media.CinemaFilm are the
// paper's full-size profiles.
func exampleProfile() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return media.Profile{
		Name:   "example",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
}

// ExampleArchive archives a small SQL dump and reports what was written.
func ExampleArchive() {
	dump := bytes.Repeat([]byte("INSERT INTO lineitem VALUES (1, 155190, 7706);\n"), 200)

	arch, err := microlonys.Archive(dump, microlonys.DefaultOptions(exampleProfile()))
	if err != nil {
		fmt.Println(err)
		return
	}

	m := arch.Manifest
	fmt.Println("compressed:", m.StreamLen < m.RawLen)
	fmt.Println("system emblems archived:", m.SystemEmblems > 0)
	fmt.Println("parity emblems archived:", m.ParityEmblems > 0)
	fmt.Println("medium frames == manifest frames:", arch.Medium.FrameCount() == m.TotalFrames)
	fmt.Println("bootstrap is plain text:", len(arch.BootstrapText) > 0)
	// Output:
	// compressed: true
	// system emblems archived: true
	// parity emblems archived: true
	// medium frames == manifest frames: true
	// bootstrap is plain text: true
}

// ExampleRestore archives, destroys a frame, and restores bit-exactly —
// the outer code recovering the destroyed emblem.
func ExampleRestore() {
	// Three frames' worth of payload, so group 0 is 3 data + 3 parity
	// emblems and can lose any three of the six.
	profile := exampleProfile()
	dump := bytes.Repeat([]byte{'x'}, 3*profile.FrameCapacity())
	opts := microlonys.DefaultOptions(profile)
	opts.Compress = false

	arch, err := microlonys.Archive(dump, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := arch.Medium.Destroy(0); err != nil {
		fmt.Println(err)
		return
	}

	restored, stats, err := microlonys.Restore(arch.Medium, arch.BootstrapText, microlonys.RestoreNative)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("bit-exact:", bytes.Equal(restored, dump))
	fmt.Println("frames lost:", stats.FramesFailed)
	fmt.Println("groups recovered by outer code:", stats.GroupsRecovered)
	// Output:
	// bit-exact: true
	// frames lost: 1
	// groups recovered by outer code: 1
}

// ExampleRestoreWith restores on an explicit worker-pool size. Workers
// only changes wall-clock time — the restored bytes are identical at any
// setting.
func ExampleRestoreWith() {
	dump := bytes.Repeat([]byte("INSERT INTO region VALUES (0, 'AFRICA');\n"), 100)

	opts := microlonys.DefaultOptions(exampleProfile())
	opts.Workers = 4 // bound the frame-encode fan-out
	arch, err := microlonys.Archive(dump, opts)
	if err != nil {
		fmt.Println(err)
		return
	}

	restored, _, err := microlonys.RestoreWith(arch.Medium, arch.BootstrapText,
		microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Workers: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("bit-exact:", bytes.Equal(restored, dump))
	// Output:
	// bit-exact: true
}
