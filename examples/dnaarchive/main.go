// Dnaarchive demonstrates the paper's §5 direction of "extending
// Micr'Olonys to be used in conjunction with a DNA-based database
// archive": the same DBCoder-compressed stream that MOCoder lays out as
// emblems on film is laid out here as synthetic-DNA oligonucleotides,
// passed through a simulated synthesis/sequencing channel (coverage
// variance, substitutions, whole-oligo dropout) and restored bit-exact.
//
// This is the ULE separation of concerns in action: nothing above the
// media layout layer changes when the medium stops being visual.
package main

import (
	"bytes"
	"fmt"
	"log"

	"microlonys/internal/dbcoder"
	"microlonys/internal/dnasim"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/tpch"
)

func main() {
	fmt.Println("== §5 extension: DNA database archive ==")

	// db_dump + DBCoder, exactly as for the visual media.
	db := tpch.Generate(0.0002, 7)
	dump := sqldump.Dump(db)
	blob := dbcoder.Compress(dump)
	fmt.Printf("TPC-H dump %d B -> DBCoder stream %d B\n", len(dump), len(blob))

	// Media layout: oligos instead of emblems.
	oligos := dnasim.Encode(blob)
	fmt.Printf("oligos: %d of %d nt  (GC %.2f, max homopolymer %d)\n",
		len(oligos), dnasim.OligoLen(), dnasim.GCContent(oligos), dnasim.MaxHomopolymer(oligos))
	fmt.Printf("density: %.2f bits/nt net of addressing and parity\n", dnasim.Density(len(blob)))

	// The wet lab, simulated.
	ch := dnasim.Channel{Coverage: 8, SubRate: 0.005, DropRate: 0.02, Seed: 42}
	reads := ch.Sequence(oligos)
	fmt.Printf("sequenced %d noisy reads (%.1fx coverage, 0.5%% substitutions, 2%% dropout)\n",
		len(reads), ch.Coverage)

	// Restoration: reads -> stream -> SQL text.
	got, st, err := dnasim.Decode(reads)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		log.Fatal("stream mismatch")
	}
	restored, err := dbcoder.Decompress(got)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(restored, dump) {
		log.Fatal("dump mismatch")
	}
	parsed, err := sqldump.Parse(restored)
	if err != nil {
		log.Fatal(err)
	}
	if err := sqldump.Equal(db, parsed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored BIT-EXACT (reads rejected: %d, oligos dropped: %d, bytes corrected: %d)\n",
		st.ReadsBadCRC, st.OligosDropped, st.BytesCorrected)

	// The §5 scale contrast.
	rep := media.Scale(1 << 40)
	fmt.Printf("\n1 TB on microfilm: %s; as DNA at 1 EB/mm^3: %.2g mm^3\n",
		rep.ReelShelfNote, rep.DNAVolumeMM3)
}
