// Sheetloss: multi-volume archival and carrier loss. Archives a SQL dump
// across several media sheets (an outer-code group never straddles a
// sheet), destroys one sheet entirely — a burnt reel, a lost page bundle
// — and restores the survivors, reporting per-sheet and per-group
// recovery statistics. The contrast run spreads the same damage as
// individual frames across sheets, which the outer code repairs in full:
// carrier-confined loss costs only that carrier's groups, scattered loss
// costs nothing.
package main

import (
	"bytes"
	"fmt"
	"log"

	"microlonys"
	"microlonys/internal/emblem"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/tpch"
)

// demoProfile is a scaled-down clean medium so the demo runs in seconds;
// swap in media.Paper() or media.Microfilm() for the full-size pipeline.
func demoProfile() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 3}
	return media.Profile{
		Name:   "demo-sheets",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: media.Distortions{
			RotationDeg: 0.1, BlurRadius: 1, Noise: 2, DustSpecks: 3,
		},
	}
}

func archive(dump []byte, prof media.Profile) *microlonys.Archived {
	opts := microlonys.DefaultOptions(prof)
	opts.Compress = false // raw: surviving groups are directly readable SQL
	opts.SheetFrames = 20 // one 17+3 group per sheet
	arch, err := microlonys.ArchiveReader(bytes.NewReader(dump), opts)
	if err != nil {
		log.Fatal(err)
	}
	return arch
}

func main() {
	// 1. A database archive sized to three outer-code groups.
	prof := demoProfile()
	db := tpch.Generate(0.0008, 42)
	dump := sqldump.Dump(db)
	if want := 40 * prof.FrameCapacity(); len(dump) > want {
		dump = dump[:want]
	}
	arch := archive(dump, prof)
	man := arch.Manifest
	fmt.Printf("archived %d B raw: %d data + %d parity emblems, %d groups across %d sheets\n",
		man.RawLen, man.DataEmblems, man.ParityEmblems, man.Groups, man.Sheets)
	for s := 0; s < arch.Volume.Sheets(); s++ {
		sheet, _ := arch.Volume.Sheet(s)
		fmt.Printf("  sheet %d: %d frames\n", s, sheet.FrameCount())
	}

	// 2. Lose an entire carrier.
	if err := arch.Volume.DestroySheet(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndestroyed sheet 1 entirely (simulated carrier loss)")

	// 3. A strict restore refuses: the sheet's groups are beyond the
	// outer code, since every one of their frames is gone.
	_, _, err := microlonys.RestoreVolume(arch.Volume, arch.BootstrapText,
		microlonys.RestoreOptions{Mode: microlonys.RestoreNative})
	fmt.Printf("strict restore: %v\n", err)

	// 4. A Partial restore brings back the survivors, zero-fills the lost
	// group's bytes so offsets hold, and names what was lost.
	out, st, err := microlonys.RestoreVolume(arch.Volume, arch.BootstrapText,
		microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Partial: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartial restore: %d bytes out (%d zero-filled), %d/%d frames failed\n",
		len(out), st.BytesLost, st.FramesFailed, st.FramesScanned)
	for s, sh := range st.Sheets {
		fmt.Printf("  sheet %d: %d frames, %d failed, %d lost; %d groups seen, %d recovered, %d lost\n",
			s, sh.Frames, sh.FramesFailed, sh.FramesLost, sh.Groups, sh.GroupsRecovered, sh.GroupsLost)
	}
	for _, g := range st.Groups {
		fmt.Printf("  group %d (sheet %d, %s): %d frames, %d missing, recovered=%v lost=%v\n",
			g.ID, g.Sheet, g.Kind, g.Frames, g.Missing, g.Recovered, g.Lost)
	}
	intact := 0
	for i := range out {
		if i < len(dump) && out[i] == dump[i] && out[i] != 0 {
			intact++
		}
	}
	fmt.Printf("  %d bytes of the survivors verified bit-exact at their archive offsets\n", intact)

	// 5. The contrast: the same number of lost frames, but scattered —
	// at most three per group, so every group recovers.
	arch = archive(dump, prof)
	for _, loss := range []struct{ sheet, frame int }{
		{0, 0}, {0, 7}, {0, 19}, {1, 3}, {1, 11}, {1, 18}, {2, 4},
	} {
		if err := arch.Volume.Destroy(loss.sheet, loss.frame); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nfresh archive; destroyed 7 frames scattered across the sheets (max 3 per group)")
	out, st, err = microlonys.RestoreVolume(arch.Volume, arch.BootstrapText,
		microlonys.RestoreOptions{Mode: microlonys.RestoreNative})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, dump) {
		log.Fatal("scattered-loss restore differs!")
	}
	fmt.Printf("RESTORED BIT-EXACT: %d groups recovered by the outer code (%d frames failed)\n",
		st.GroupsRecovered, st.FramesFailed)
}
