// Quickstart: archive a small SQL dump to simulated archival paper,
// destroy a frame, and restore bit-exactly — the smallest end-to-end tour
// of the ULE pipeline. Also renders a sample emblem (the paper's
// Figure 1) to emblem.png.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"microlonys"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/tpch"
)

func main() {
	// 1. A database archive: a tiny TPC-H instance dumped to SQL text.
	db := tpch.Generate(0.0002, 42)
	dump := sqldump.Dump(db)
	fmt.Printf("database: %d tables, %d rows -> %d byte SQL archive\n",
		len(db.Tables), db.TotalRows(), len(dump))

	// 2. Archive it. A scaled-down paper profile keeps the demo fast; use
	// media.Paper() for the full 600-dpi A4 pipeline.
	profile := media.Paper()
	opts := microlonys.DefaultOptions(profile)
	arch, err := microlonys.Archive(dump, opts)
	if err != nil {
		log.Fatal(err)
	}
	m := arch.Manifest
	fmt.Printf("archived: %d B compressed to %d B; %d data + %d system + %d parity emblems\n",
		m.RawLen, m.StreamLen, m.DataEmblems, m.SystemEmblems, m.ParityEmblems)
	fmt.Printf("bootstrap document: %d bytes of plain text\n", len(arch.BootstrapText))

	// 3. Render Figure 1: the first frame is a sample emblem.
	scan, err := arch.Medium.ScanFrame(0)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("emblem.png")
	if err != nil {
		log.Fatal(err)
	}
	if err := scan.EncodePNG(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("wrote emblem.png (Figure 1)")

	// 4. Lose a frame entirely — the outer Reed-Solomon code covers it.
	if arch.Medium.FrameCount() > 3 {
		if err := arch.Medium.Destroy(1); err != nil {
			log.Fatal(err)
		}
		fmt.Println("destroyed frame 1 (simulated torn page)")
	}

	// 5. Restore and verify.
	restored, st, err := microlonys.Restore(arch.Medium, arch.BootstrapText,
		microlonys.RestoreNative)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %d frames scanned, %d failed, %d groups recovered\n",
		st.FramesScanned, st.FramesFailed, st.GroupsRecovered)
	if !bytes.Equal(restored, dump) {
		log.Fatal("restored archive differs!")
	}

	// 6. Load the SQL back (the db_load step) and check every row.
	parsed, err := sqldump.Parse(restored)
	if err != nil {
		log.Fatal(err)
	}
	if err := sqldump.Equal(db, parsed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("RESTORED BIT-EXACT — database round trip complete")
}
