// Paperarchive reproduces the paper-archive experiment of §4 (E1): a
// TPC-H database dumped to a ≈1.2 MB SQL archive, encoded into emblems
// and printed to A4 paper at 600 dpi, then scanned and restored.
//
// The paper reports: 26 emblems, a density of 50 KB per page, roughly
// 6 minutes to encode+print and 3m20s to decode on their hardware. This
// program prints the same row for our implementation. Run with -compress
// to also measure the DBCoder-compressed variant (fewer pages than the
// paper, since the paper archived the dump uncompressed).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"microlonys"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/tpch"
)

func main() {
	compress := flag.Bool("compress", false, "enable DBCoder compression")
	destroy := flag.Int("destroy", 0, "destroy N frames before restore")
	flag.Parse()

	fmt.Println("== E1: paper archive (TPC-H -> A4 @600 dpi) ==")
	sf, db := tpch.FitScaleFactor(1_200_000, 7, sqldump.Dump)
	dump := sqldump.Dump(db)
	fmt.Printf("TPC-H sf=%g: %d rows, %d byte SQL archive (paper: ~1.2MB)\n",
		sf, db.TotalRows(), len(dump))

	profile := media.Paper()
	opts := microlonys.DefaultOptions(profile)
	opts.Compress = *compress

	t0 := time.Now()
	arch, err := microlonys.Archive(dump, opts)
	if err != nil {
		log.Fatal(err)
	}
	encodeTime := time.Since(t0)

	m := arch.Manifest
	pages := m.TotalFrames
	density := float64(m.RawLen) / float64(m.DataEmblems) / 1024
	fmt.Printf("emblems: %d data (+%d parity", m.DataEmblems, m.ParityEmblems)
	if m.SystemEmblems > 0 {
		fmt.Printf(" +%d system", m.SystemEmblems)
	}
	fmt.Printf(") = %d pages    [paper: 26 emblems]\n", pages)
	fmt.Printf("density: %.1f KB/page               [paper: 50 KB/page]\n", density)
	fmt.Printf("encode time: %v                  [paper: ~6 min incl. printing]\n", encodeTime)

	for i := 0; i < *destroy; i++ {
		arch.Medium.Destroy(i * 5 % arch.Medium.FrameCount())
	}

	t0 = time.Now()
	restored, st, err := microlonys.Restore(arch.Medium, arch.BootstrapText,
		microlonys.RestoreNative)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decode time: %v                  [paper: 3m20s]\n", time.Since(t0))
	fmt.Printf("corrections: %d bytes across %d frames; %d groups recovered\n",
		st.BytesCorrected, st.FramesScanned, st.GroupsRecovered)

	if !bytes.Equal(restored, dump) {
		log.Fatal("NOT bit exact")
	}
	parsed, err := sqldump.Parse(restored)
	if err != nil {
		log.Fatal(err)
	}
	if err := sqldump.Equal(db, parsed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored SQL archive is BIT-EXACT; database reloads cleanly")
}
