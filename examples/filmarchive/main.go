// Filmarchive reproduces the microfilm and cinema-film experiments of §4
// (E2 and E3): a 102 KB image payload (standing in for the Olonys logo)
// archived to 16 mm microfilm frames and to 35 mm 2K cinema frames, then
// scanned back (bitonal ≈5000×7000 for microfilm, grayscale 4K for
// cinema) and restored without errors. The paper used 3 emblems on each
// medium; the capacity models print the reel arithmetic as well.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"microlonys"
	"microlonys/media"
)

func main() {
	// The 102 KB payload: a synthetic bitonal logo image, stored raw
	// (the paper archived a TIFF image, not a database, on film).
	payload := logoBytes(102 * 1024)

	for _, prof := range []media.Profile{media.Microfilm(), media.CinemaFilm()} {
		fmt.Printf("== %s ==\n", prof.Name)
		opts := microlonys.DefaultOptions(prof)
		opts.Compress = false // raw payload, as in the paper's film runs

		t0 := time.Now()
		arch, err := microlonys.Archive(payload, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  102 KB -> %d data emblems (+%d parity)   [paper: 3 emblems]\n",
			arch.Manifest.DataEmblems, arch.Manifest.ParityEmblems)
		fmt.Printf("  frame %dx%d px, scan %dx%d px, capacity %d B/frame\n",
			prof.FrameW, prof.FrameH, prof.ScanW, prof.ScanH, prof.FrameCapacity())

		restored, st, err := microlonys.Restore(arch.Medium, arch.BootstrapText,
			microlonys.RestoreNative)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(restored, payload) {
			log.Fatalf("%s: payload differs", prof.Name)
		}
		fmt.Printf("  restored bit-exact in %v (%d bytes corrected)\n",
			time.Since(t0), st.BytesCorrected)
	}

	// §4/§5 capacity arithmetic.
	reel := media.MicrofilmReel()
	fmt.Println("== capacity model ==")
	fmt.Printf("  %d frames per %.0f m reel -> %.2f GB/reel   [paper: 1.3 GB]\n",
		reel.Frames(), reel.LengthMeters, float64(reel.Bytes())/1e9)
	rep := media.Scale(1e12)
	fmt.Printf("  1 TB needs %s                       [paper: ~800 reels]\n", rep.ReelShelfNote)
	fmt.Printf("  1 TB as DNA: %.2g mm^3 at 1 EB/mm^3 (the §5 contrast)\n", rep.DNAVolumeMM3)
}

// logoBytes builds a deterministic "image-like" payload: runs of black
// and white with structure, the compression-hostile raw content of §4's
// film experiments.
func logoBytes(n int) []byte {
	rng := rand.New(rand.NewSource(9))
	out := make([]byte, 0, n)
	for len(out) < n {
		run := rng.Intn(40) + 1
		var v byte
		if rng.Intn(2) == 0 {
			v = 0xFF
		}
		for i := 0; i < run && len(out) < n; i++ {
			out = append(out, v)
		}
	}
	return out
}
