// Futureuser plays the role of the person in §3.3 / §4 restoring the
// archive decades from now: they receive ONLY the scanned frames and the
// Bootstrap text, and they implement the VeRisc machine from the
// document's pseudocode — nothing else from this repository.
//
// The ~80-line emulator below (`futureVM`) was written strictly against
// Section 1 of the Bootstrap document; it deliberately shares no code
// with package verisc. It then follows the document's steps: decode the
// letter sections, instantiate the DynaRisc emulator inside the VM, run
// MODecode on every frame, assemble the archive, and run DBDecode from
// the system frames. This is the paper's portability experiment (E4) in
// executable form.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"microlonys"
	"microlonys/internal/emblem"
	"microlonys/media"
	"microlonys/raster"
)

// futureVM implements Step 1 of the Bootstrap and nothing more.
type futureVM struct {
	M   []uint32
	R   uint32
	B   uint32
	PC  uint32
	In  []uint32
	ip  int
	Out []uint32
}

func newFutureVM(cells int) *futureVM { return &futureVM{M: make([]uint32, cells)} }

func (v *futureVM) read(a uint32) uint32 {
	switch a {
	case 0:
		return v.PC
	case 1:
		return v.B
	case 2:
		if v.ip < len(v.In) {
			x := v.In[v.ip]
			v.ip++
			return x
		}
		return 0
	case 3:
		if v.ip < len(v.In) {
			return 1
		}
		return 0
	}
	return v.M[a]
}

func (v *futureVM) run() error {
	for steps := 0; ; steps++ {
		op, addr := v.M[v.PC], v.M[v.PC+1]
		v.PC += 2
		switch op {
		case 0:
			v.R = v.read(addr)
		case 1:
			switch addr {
			case 0:
				v.PC = v.R
			case 1:
				v.B = v.R & 1
			case 4:
				v.Out = append(v.Out, v.R)
			case 5:
				return nil
			default:
				v.M[addr] = v.R
			}
		case 2:
			t := int64(v.R) - int64(v.read(addr)) - int64(v.B)
			if t < 0 {
				v.B = 1
			} else {
				v.B = 0
			}
			v.R = uint32(t)
		case 3:
			v.R &= v.read(addr)
		default:
			return fmt.Errorf("corrupt image: op %d", op)
		}
	}
}

// letters implements Step 2.
func letters(s string) []byte {
	var nib []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'P' {
			nib = append(nib, 0xF-(c-'A'))
		}
	}
	out := make([]byte, len(nib)/2)
	for i := range out {
		out[i] = nib[2*i]<<4 | nib[2*i+1]
	}
	return out
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func main() {
	// ---- What the future user receives --------------------------------
	// (produced today by the archivist; from here on, only the Bootstrap
	// text and the frame scans are used)
	dump := []byte(strings.Repeat("INSERT INTO nation VALUES ('FRANCE', 3);\n", 60))
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	prof := media.Profile{
		Name: "demo", FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(), Layout: l,
	}
	arch, err := microlonys.Archive(dump, microlonys.DefaultOptions(prof))
	if err != nil {
		log.Fatal(err)
	}
	scans, err := arch.Medium.Scan()
	if err != nil {
		log.Fatal(err)
	}
	bootText := arch.BootstrapText
	fmt.Printf("received: %d frame scans + %d bytes of Bootstrap text\n",
		len(scans), len(bootText))

	// ---- The future user's restoration, Bootstrap steps 2-6 -----------
	section := func(marker string) string {
		i := strings.Index(bootText, marker)
		rest := bootText[i+len(marker):]
		j := strings.Index(rest, "====")
		return rest[:j]
	}
	// Section 2: geometry.
	var dataW, dataH int
	for _, f := range strings.Fields(section("==== SECTION 2: EMBLEM GEOMETRY ====")) {
		fmt.Sscanf(f, "dataw=%d", &dataW)
		fmt.Sscanf(f, "datah=%d", &dataH)
	}
	// Section 3: the DynaRisc emulator (VeRisc cells).
	emu := letters(section("==== SECTION 3: DYNARISC EMULATOR (letters) ===="))
	org := be32(emu[4:])
	count := be32(emu[8:])
	cells := make([]uint32, count)
	for i := range cells {
		cells[i] = be32(emu[12+4*i:])
	}
	// Section 4: MODecode (DynaRisc words).
	mo := letters(section("==== SECTION 4: MODECODE (letters) ===="))
	moOrg := uint32(mo[4])<<8 | uint32(mo[5])
	moCount := be32(mo[6:])
	moWords := make([]uint32, moCount)
	for i := range moWords {
		moWords[i] = uint32(mo[10+2*i])<<8 | uint32(mo[10+2*i+1])
	}

	runGuest := func(guestInput []uint32) []uint32 {
		vm := newFutureVM(18_000_000)
		copy(vm.M[org:], cells)
		vm.PC = org
		vm.In = append([]uint32{moOrg, moCount}, append(moWords, guestInput...)...)
		if err := vm.run(); err != nil {
			log.Fatal(err)
		}
		return vm.Out
	}
	_ = runGuest

	// Step 4: decode every frame through the emulated MODecode.
	type frame struct {
		hdr     []byte
		payload []byte
	}
	var frames []frame
	for i, scan := range scans {
		in := []uint32{uint32(scan.W), uint32(scan.H), uint32(dataW), uint32(dataH)}
		for _, p := range scan.Pix {
			in = append(in, uint32(p))
		}
		out := runGuest(in)
		if len(out) < 22 {
			fmt.Printf("frame %d: damaged, set aside\n", i)
			continue
		}
		b := make([]byte, len(out))
		for j, w := range out {
			b[j] = byte(w)
		}
		frames = append(frames, frame{hdr: b[:22], payload: b[22:]})
	}
	fmt.Printf("decoded %d frames under the hand-written VM\n", len(frames))

	// Step 5: order data frames by index, keep system frames separate.
	var dataStream, sysStream []byte
	var dataTotal, sysTotal uint32
	for _, f := range frames {
		kind := f.hdr[2]
		total := be32(f.hdr[16:])
		switch kind {
		case 1: // data
			dataStream = append(dataStream, f.payload...)
			dataTotal = total
		case 2: // system
			sysStream = append(sysStream, f.payload...)
			sysTotal = total
		}
	}
	dataStream = dataStream[:dataTotal]
	sysStream = sysStream[:sysTotal]
	fmt.Printf("archive stream: %d bytes (DBC1), DBDecode program: %d bytes\n",
		len(dataStream), len(sysStream))

	// Step 6: run DBDecode (from the system frames) on the archive.
	dbOrg := uint32(sysStream[4])<<8 | uint32(sysStream[5])
	dbCount := be32(sysStream[6:])
	dbWords := make([]uint32, dbCount)
	for i := range dbWords {
		dbWords[i] = uint32(sysStream[10+2*i])<<8 | uint32(sysStream[10+2*i+1])
	}
	vm := newFutureVM(18_000_000)
	copy(vm.M[org:], cells)
	vm.PC = org
	vm.In = append([]uint32{dbOrg, dbCount}, dbWords...)
	for _, b := range dataStream {
		vm.In = append(vm.In, uint32(b))
	}
	if err := vm.run(); err != nil {
		log.Fatal(err)
	}
	restored := make([]byte, len(vm.Out))
	for i, w := range vm.Out {
		restored[i] = byte(w)
	}

	if bytes.Equal(restored, dump) {
		fmt.Println("FUTURE USER RESTORED THE DATABASE BIT-EXACT")
		fmt.Println("(VeRisc VM: ~80 lines, written only from the Bootstrap pseudocode)")
	} else {
		log.Fatalf("restoration differs: %d vs %d bytes", len(restored), len(dump))
	}

	salvageAct()
	_ = raster.Gray{}
}

// salvageAct is the second act: the same future user, a worse day. The
// sheets turn up loose in a box — out of order, one photocopied twice,
// a few frames water-damaged — and the printed Bootstrap text is GONE.
// With Options.Catalog each sheet reserved its slot-0 frame for a
// self-describing catalog emblem (archive identity, sheet inventory,
// per-group checksums, and — when the frame is large enough — a
// compressed replica of the whole Bootstrap document), so the bag alone
// is enough: Salvage identifies and orders the sheets, dedupes the
// copies, recovers the Bootstrap from the replica, and restores.
func salvageAct() {
	fmt.Println()
	fmt.Println("--- act two: the Bootstrap text is lost ---")

	// Archive day: a frame large enough to carry the Bootstrap replica
	// inside the catalog emblem (the act-one demo layout is too small —
	// its catalogs still carry identity, inventory and checksums, just
	// not the replica).
	dump := []byte(strings.Repeat("INSERT INTO region VALUES ('EUROPE', 3);\n", 2000))
	l := emblem.Layout{DataW: 480, DataH: 360, PxPerModule: 2}
	prof := media.Profile{
		Name: "demo-large", FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(), Layout: l,
	}
	opts := microlonys.DefaultOptions(prof)
	opts.Compress = false // keep the demo multi-sheet
	opts.GroupData = 4    // small groups -> small sheets
	opts.SheetFrames = 8  // 4+3 outer code + the catalog slot
	opts.Catalog = true
	arch, err := microlonys.Archive(dump, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Decades later: an unordered bag — shuffled, one sheet duplicated,
	// one frame of sheet 0 destroyed. No bootstrap text anywhere.
	var bag []*media.Medium
	for s := 0; s < arch.Volume.Sheets(); s++ {
		sheet, err := arch.Volume.Sheet(s)
		if err != nil {
			log.Fatal(err)
		}
		bag = append(bag, sheet)
	}
	if err := bag[0].Destroy(3); err != nil {
		log.Fatal(err)
	}
	bag = append(bag, bag[1].Clone())              // a photocopied duplicate
	bag[0], bag[len(bag)-1] = bag[len(bag)-1], bag[0] // out of order
	bag[1], bag[2] = bag[2], bag[1]
	fmt.Printf("received: a bag of %d sheets, shuffled, no Bootstrap text\n", len(bag))

	got, rep, err := microlonys.Salvage(bag, microlonys.SalvageOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog frames identified %d of %d sheets (archive %016x), deduped %d copy\n",
		len(rep.SheetsIdentified), rep.SheetCount, rep.ArchiveID, rep.SheetsDuplicate)
	if !rep.BootstrapRecovered {
		log.Fatal("expected the Bootstrap replica to survive in the catalog")
	}
	fmt.Println("Bootstrap document recovered from one sheet's catalog replica")
	if !bytes.Equal(got, dump) {
		log.Fatalf("salvage differs: %d vs %d bytes", len(got), len(dump))
	}
	fmt.Println("SALVAGED BIT-EXACT FROM THE UNORDERED, BOOTSTRAP-FREE BAG")

	// Epilogue: an even worse find. One sheet was never recovered at all,
	// and on every OTHER surviving sheet the catalog frame itself is
	// ruined — a single sheet's catalog must identify the archive,
	// inventory what is missing, and resupply the Bootstrap, alone.
	var worse []*media.Medium
	for s := 0; s < arch.Volume.Sheets(); s++ {
		if s == 1 {
			continue // sheet 1 is gone
		}
		sheet, err := arch.Volume.Sheet(s)
		if err != nil {
			log.Fatal(err)
		}
		if s != 0 {
			if err := sheet.Destroy(0); err != nil { // ruin this catalog
				log.Fatal(err)
			}
		}
		worse = append(worse, sheet)
	}
	worse[0], worse[len(worse)-1] = worse[len(worse)-1], worse[0]
	got, rep, err = microlonys.Salvage(worse, microlonys.SalvageOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one catalog left: identified %d sheets, inventoried missing %v, %d bytes zero-filled\n",
		len(rep.SheetsIdentified), rep.SheetsMissing, rep.Stats.BytesLost)
	if len(rep.SheetsMissing) != 1 || rep.SheetsMissing[0] != 1 {
		log.Fatalf("expected the surviving catalog to inventory sheet 1 as missing, got %v",
			rep.SheetsMissing)
	}
	if !rep.BootstrapRecovered || rep.Stats.BytesLost == 0 {
		log.Fatal("expected a bootstrap replica and zero-filled losses")
	}
	fmt.Println("ONE SHEET'S CATALOG ALONE INVENTORIED THE LOSSES AND RESUPPLIED THE BOOTSTRAP")
}
