// Package verisc implements VeRisc, the four-instruction software
// processor at the bottom of the Olonys nested emulation strategy (§3.2).
//
// VeRisc exists to minimise the work a user must do decades from now: the
// Bootstrap document archived with the data describes this machine in a
// few pages of pseudocode, and implementing it — an interpreter for just
// four instructions — is the only programming the restoration requires.
// The archived DynaRisc emulator then runs *on* VeRisc, and the archived
// layout decoders run on DynaRisc.
//
// # Machine model
//
// Memory is an array of 32-bit cells. One accumulator R and one borrow
// flag B form the whole register state. An instruction is two consecutive
// cells, [op, addr]:
//
//	op 0  LD  &addr   R = M[addr]
//	op 1  ST  &addr   M[addr] = R
//	op 2  SBB &addr   R = R - M[addr] - B, setting B to the borrow
//	op 3  AND &addr   R = R & M[addr]
//
// The low cells are memory-mapped machine state:
//
//	cell 0  PC     read: address of next instruction; write: jump
//	cell 1  B      borrow flag (0 or 1)
//	cell 2  IN     read: pops the next input word (0 at end)
//	cell 3  AVAIL  read: 1 while input remains
//	cell 4  OUT    write: appends an output word
//	cell 5  HALT   write: stops the machine
//
// Everything else — control flow, logic, arithmetic — is synthesised:
// jumps store a computed target to PC, OR/XOR derive from AND and
// subtraction, and indexed addressing patches the operand cell of an
// upcoming instruction (the program lives in the same memory it computes
// in). Package's Builder provides these idioms as macros; internal/nested
// uses them to express the DynaRisc emulator as a VeRisc program.
package verisc

import (
	"errors"
	"fmt"
)

// The four opcodes.
const (
	LD  = 0
	ST  = 1
	SBB = 2
	AND = 3
)

// Memory-mapped cells.
const (
	CellPC    = 0
	CellB     = 1
	CellIn    = 2
	CellAvail = 3
	CellOut   = 4
	CellHalt  = 5

	// ReservedCells is the first address available to programs.
	ReservedCells = 8
)

// DefaultMemCells sizes the reference CPU memory.
const DefaultMemCells = 1 << 21

// Execution errors.
var (
	ErrStepLimit  = errors.New("verisc: step limit exceeded")
	ErrBadAddress = errors.New("verisc: address out of range")
	ErrBadOpcode  = errors.New("verisc: undefined opcode")
)

// CPU is the reference VeRisc emulator. It is intentionally tiny — the
// measurable artifact behind the paper's "anyone can implement this in
// under a week" portability claim (see also examples/futureuser, an
// independent implementation written only from the Bootstrap text).
type CPU struct {
	R   uint32
	B   uint32 // 0 or 1
	PC  uint32
	Mem []uint32

	In    []uint32
	InPos int
	Out   []uint32

	Halted   bool
	Steps    uint64
	MaxSteps uint64 // 0 = unlimited

	// dirtyHi is 1 + the highest memory cell written through Load or a
	// store since the last Reset, so Reset clears only touched memory.
	dirtyHi int
}

// NewCPU returns a CPU with the given memory size in cells (0 selects
// DefaultMemCells).
func NewCPU(memCells int) *CPU {
	if memCells <= 0 {
		memCells = DefaultMemCells
	}
	return &CPU{Mem: make([]uint32, memCells)}
}

// Load copies a program image to org and points PC at it.
func (c *CPU) Load(org uint32, cells []uint32) error {
	if int(org)+len(cells) > len(c.Mem) {
		return fmt.Errorf("%w: image of %d cells at %d", ErrBadAddress, len(cells), org)
	}
	copy(c.Mem[org:], cells)
	if hi := int(org) + len(cells); hi > c.dirtyHi {
		c.dirtyHi = hi
	}
	c.PC = org
	return nil
}

// Reset returns the CPU to its power-on state while keeping its
// allocations, so one machine can host many nested-emulation runs
// without rebuilding the multi-megabyte cell array each time: R, B, PC,
// the step counter and the input cursor are zeroed; cells written since
// the last Reset (through Load, Step or Run) are cleared via a dirty
// high-water mark; and Out is truncated in place so its capacity is
// reused. A Reset CPU behaves identically to a fresh NewCPU of the same
// size (reset_test.go pins that, including after an error or step-limit
// abort). Configuration (MaxSteps) is preserved. Direct writes to Mem
// bypass the watermark — callers that poke memory themselves must also
// clear it themselves.
func (c *CPU) Reset() {
	c.R, c.B, c.PC = 0, 0, 0
	clear(c.Mem[:c.dirtyHi])
	c.dirtyHi = 0
	c.In = nil
	c.InPos = 0
	c.Out = c.Out[:0]
	c.Halted = false
	c.Steps = 0
}

// EnsureMem grows memory to at least memCells cells, preserving
// contents. It never shrinks, so a reused machine sized for the largest
// guest seen so far fits every smaller one.
func (c *CPU) EnsureMem(memCells int) {
	if memCells <= len(c.Mem) {
		return
	}
	grown := make([]uint32, memCells)
	copy(grown, c.Mem)
	c.Mem = grown
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.MaxSteps > 0 && c.Steps >= c.MaxSteps {
		return ErrStepLimit
	}
	c.Steps++
	if int(c.PC)+1 >= len(c.Mem) {
		return fmt.Errorf("%w: pc=%d", ErrBadAddress, c.PC)
	}
	op := c.Mem[c.PC]
	addr := c.Mem[c.PC+1]
	c.PC += 2

	switch op {
	case LD:
		v, err := c.read(addr)
		if err != nil {
			return err
		}
		c.R = v
	case ST:
		if err := c.write(addr, c.R); err != nil {
			return err
		}
	case SBB:
		v, err := c.read(addr)
		if err != nil {
			return err
		}
		t := int64(c.R) - int64(v) - int64(c.B)
		if t < 0 {
			c.B = 1
		} else {
			c.B = 0
		}
		c.R = uint32(t)
	case AND:
		v, err := c.read(addr)
		if err != nil {
			return err
		}
		c.R &= v
	default:
		return fmt.Errorf("%w: %d at pc=%d", ErrBadOpcode, op, c.PC-2)
	}
	return nil
}

func (c *CPU) read(addr uint32) (uint32, error) {
	switch addr {
	case CellPC:
		return c.PC, nil
	case CellB:
		return c.B, nil
	case CellIn:
		if c.InPos < len(c.In) {
			v := c.In[c.InPos]
			c.InPos++
			return v, nil
		}
		return 0, nil
	case CellAvail:
		if c.InPos < len(c.In) {
			return 1, nil
		}
		return 0, nil
	}
	if int(addr) >= len(c.Mem) {
		return 0, fmt.Errorf("%w: load %d", ErrBadAddress, addr)
	}
	return c.Mem[addr], nil
}

func (c *CPU) write(addr, v uint32) error {
	switch addr {
	case CellPC:
		c.PC = v
		return nil
	case CellB:
		c.B = v & 1
		return nil
	case CellOut:
		c.Out = append(c.Out, v)
		return nil
	case CellHalt:
		c.Halted = true
		return nil
	}
	if int(addr) >= len(c.Mem) {
		return fmt.Errorf("%w: store %d", ErrBadAddress, addr)
	}
	c.Mem[addr] = v
	if int(addr) >= c.dirtyHi {
		c.dirtyHi = int(addr) + 1
	}
	return nil
}

// Run executes until HALT, an error, or the step limit.
//
// Run is the throughput path: it keeps the whole register state (R, B,
// PC, the step counter) in locals, inlines instruction dispatch and the
// common direct-memory case (addr >= ReservedCells), and falls back to
// the memory-mapped handlers only for the low cells — syncing the locals
// around those calls, since reads and writes of the mapped cells observe
// and mutate machine state. The step budget is resolved into a local
// limit up front. Semantics are identical to calling Step in a loop;
// step_test.go and the dynarisc/verisc differential tests rely on that
// equivalence.
func (c *CPU) Run() error {
	if c.Halted {
		return nil
	}
	mem := c.Mem
	memLen := uint32(len(mem))
	limit := ^uint64(0)
	if c.MaxSteps > 0 {
		limit = c.MaxSteps
	}
	pc, r, borrow := c.PC, c.R, c.B
	steps := c.Steps

	for {
		if steps >= limit {
			c.PC, c.R, c.B, c.Steps = pc, r, borrow, steps
			return ErrStepLimit
		}
		steps++
		// uint64 widening: pc+1 must not wrap at pc == 0xFFFFFFFF (a
		// guest can store any value to CellPC), mirroring Step's int
		// comparison.
		if uint64(pc)+1 >= uint64(memLen) {
			c.PC, c.R, c.B, c.Steps = pc, r, borrow, steps
			return fmt.Errorf("%w: pc=%d", ErrBadAddress, pc)
		}
		op := mem[pc]
		addr := mem[pc+1]
		pc += 2

		// Direct-memory fast path.
		if addr >= ReservedCells && addr < memLen {
			switch op {
			case LD:
				r = mem[addr]
			case ST:
				mem[addr] = r
				if int(addr) >= c.dirtyHi {
					c.dirtyHi = int(addr) + 1
				}
			case SBB:
				t := int64(r) - int64(mem[addr]) - int64(borrow)
				if t < 0 {
					borrow = 1
				} else {
					borrow = 0
				}
				r = uint32(t)
			case AND:
				r &= mem[addr]
			default:
				c.PC, c.R, c.B, c.Steps = pc, r, borrow, steps
				return fmt.Errorf("%w: %d at pc=%d", ErrBadOpcode, op, pc-2)
			}
			continue
		}

		// Memory-mapped slow path: the handlers observe machine state
		// (CellPC/CellB reads) and mutate it (CellPC/CellB/CellHalt
		// writes), so sync the locals across the call.
		c.PC, c.R, c.B, c.Steps = pc, r, borrow, steps
		switch op {
		case LD, SBB, AND:
			v, err := c.read(addr)
			if err != nil {
				return err
			}
			switch op {
			case LD:
				r = v
			case SBB:
				t := int64(r) - int64(v) - int64(borrow)
				if t < 0 {
					borrow = 1
				} else {
					borrow = 0
				}
				r = uint32(t)
				c.B = borrow
			case AND:
				r &= v
			}
			c.R = r
		case ST:
			if err := c.write(addr, r); err != nil {
				return err
			}
			pc, borrow = c.PC, c.B // a mapped store may jump or set B
			if c.Halted {
				return nil
			}
		default:
			return fmt.Errorf("%w: %d at pc=%d", ErrBadOpcode, op, pc-2)
		}
	}
}

// SetInBytes loads the input stream from bytes, one per cell — the
// convention the archived decoders use for byte streams.
func (c *CPU) SetInBytes(p []byte) {
	c.In = make([]uint32, len(p))
	for i, b := range p {
		c.In[i] = uint32(b)
	}
	c.InPos = 0
}

// OutBytes returns the output stream as bytes (low byte of each word).
func (c *CPU) OutBytes() []byte {
	return c.AppendOutBytes(make([]byte, 0, len(c.Out)))
}

// AppendOutBytes appends the output stream to dst as bytes (low byte of
// each word) and returns the extended slice — the companion to OutBytes
// for callers that reuse buffers across runs. Growth happens at most
// once, sized for the whole stream.
func (c *CPU) AppendOutBytes(dst []byte) []byte {
	if need := len(dst) + len(c.Out); cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, w := range c.Out {
		dst = append(dst, byte(w))
	}
	return dst
}
