package verisc

import (
	"errors"
	"testing"
)

func veriscStateEqual(a, b *CPU) bool {
	if a.R != b.R || a.B != b.B || a.PC != b.PC {
		return false
	}
	if a.Halted != b.Halted || a.Steps != b.Steps || a.InPos != b.InPos {
		return false
	}
	if len(a.Out) != len(b.Out) {
		return false
	}
	for i := range a.Out {
		if a.Out[i] != b.Out[i] {
			return false
		}
	}
	if len(a.Mem) != len(b.Mem) {
		return false
	}
	for i := range a.Mem {
		if a.Mem[i] != b.Mem[i] {
			return false
		}
	}
	return true
}

// TestResetMatchesFresh pins the reuse contract the nested emulator's
// Runner relies on: a Reset machine is indistinguishable from a fresh
// NewCPU of the same size and replays the next program identically.
func TestResetMatchesFresh(t *testing.T) {
	p := buildStepProgram(t)
	runOnce := func(c *CPU, in []uint32) {
		t.Helper()
		if err := c.Load(p.Org, p.Cells); err != nil {
			t.Fatal(err)
		}
		c.In = in
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
	}

	reused := NewCPU(1 << 12)
	runOnce(reused, []uint32{3, 1, 4})
	if len(reused.Out) == 0 {
		t.Fatal("first run produced nothing; test is vacuous")
	}
	reused.Reset()

	fresh := NewCPU(1 << 12)
	if !veriscStateEqual(reused, fresh) {
		t.Fatal("reset CPU differs from fresh CPU")
	}

	runOnce(reused, []uint32{9, 9})
	runOnce(fresh, []uint32{9, 9})
	if !veriscStateEqual(reused, fresh) {
		t.Fatal("reused CPU diverged from fresh CPU on the second program")
	}
}

// TestResetAfterAbort reuses machines whose previous runs died on a step
// limit and on a bad address, with dirty memory and partial output.
func TestResetAfterAbort(t *testing.T) {
	p := buildStepProgram(t)

	limited := NewCPU(1 << 12)
	limited.MaxSteps = 3
	if err := limited.Load(p.Org, p.Cells); err != nil {
		t.Fatal(err)
	}
	limited.In = []uint32{1, 2, 3}
	if err := limited.Run(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("got %v, want step limit", err)
	}
	limited.Reset()
	limited.MaxSteps = 0

	broken := NewCPU(64)
	broken.Mem[ReservedCells] = LD
	broken.Mem[ReservedCells+1] = 1 << 20 // out of range
	broken.PC = ReservedCells
	if err := broken.Run(); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("got %v, want bad address", err)
	}
	broken.Reset()
	// The two soup cells were poked directly (bypassing the watermark);
	// clear them by hand as Reset documents.
	broken.Mem[ReservedCells] = 0
	broken.Mem[ReservedCells+1] = 0

	for name, c := range map[string]*CPU{"limited": limited, "broken": broken} {
		if !veriscStateEqual(c, NewCPU(len(c.Mem))) {
			t.Fatalf("%s: reset-after-abort CPU differs from fresh", name)
		}
	}

	if err := limited.Load(p.Org, p.Cells); err != nil {
		t.Fatal(err)
	}
	limited.In = []uint32{7}
	if err := limited.Run(); err != nil {
		t.Fatal(err)
	}
	fresh := NewCPU(1 << 12)
	if err := fresh.Load(p.Org, p.Cells); err != nil {
		t.Fatal(err)
	}
	fresh.In = []uint32{7}
	if err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	if !veriscStateEqual(limited, fresh) {
		t.Fatal("machine reused after a step-limit abort diverged from fresh")
	}
}

// TestEnsureMemGrowsAndPreserves covers the grow-only reuse helper.
func TestEnsureMemGrowsAndPreserves(t *testing.T) {
	c := NewCPU(64)
	c.Mem[10] = 42
	c.EnsureMem(32)
	if len(c.Mem) != 64 {
		t.Fatalf("EnsureMem shrank memory to %d", len(c.Mem))
	}
	c.EnsureMem(256)
	if len(c.Mem) != 256 || c.Mem[10] != 42 {
		t.Fatalf("EnsureMem lost contents: len=%d Mem[10]=%d", len(c.Mem), c.Mem[10])
	}
}

// TestAppendOutBytes covers the allocation-free output conversion.
func TestAppendOutBytes(t *testing.T) {
	c := NewCPU(64)
	c.Out = []uint32{0x41, 0x342, 0x43}
	if got := c.AppendOutBytes([]byte("y:")); string(got) != "y:ABC" {
		t.Fatalf("AppendOutBytes = %q", got)
	}
}
