package verisc

import (
	"fmt"
	"sort"
)

// Program is a built VeRisc image.
type Program struct {
	Org    uint32
	Cells  []uint32
	Labels map[string]uint32
}

// Ref is an address reference: absolute, or a label plus offset resolved
// at Build time.
type Ref struct {
	abs   uint32
	label string
	off   int
	isAbs bool
}

// Abs returns an absolute address reference.
func Abs(addr uint32) Ref { return Ref{abs: addr, isAbs: true} }

// Lbl returns a label reference.
func Lbl(name string) Ref { return Ref{label: name} }

// LblOff returns a label reference with an offset.
func LblOff(name string, off int) Ref { return Ref{label: name, off: off} }

// Builder assembles VeRisc programs. Code is emitted sequentially from
// the origin; constants, variables and address tables are appended after
// the code at Build time and referenced through labels. On top of the
// four raw instructions the Builder provides the standard VeRisc idioms
// as macros: immediate loads, addition (via double subtraction),
// conditional jumps (via a borrow-indexed address table stored to PC) and
// indirect access (by patching the operand cell of an upcoming
// instruction). The macros keep VeRisc honest: every emitted cell is one
// of the four instructions or data.
type Builder struct {
	org    uint32
	cells  []uint32
	fixups map[int]Ref // code-relative cell index -> ref
	labels map[string]uint32

	consts map[uint64]string // interned const/addr cells (key has kind bit)
	data   []dataCell
	uniq   int
	err    error
}

type dataCell struct {
	label string
	init  []Ref // each cell either Abs(value) or a label ref
}

// NewBuilder returns a builder placing code at org (min ReservedCells).
func NewBuilder(org uint32) *Builder {
	if org < ReservedCells {
		org = ReservedCells
	}
	b := &Builder{
		org:    org,
		fixups: map[int]Ref{},
		labels: map[string]uint32{},
		consts: map[uint64]string{},
	}
	return b
}

// Here returns the absolute address of the next emitted cell.
func (b *Builder) Here() uint32 { return b.org + uint32(len(b.cells)) }

// Label defines name at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = b.Here()
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("verisc builder: "+format, args...)
	}
}

func (b *Builder) emit(op uint32, a Ref) uint32 {
	b.cells = append(b.cells, op, 0)
	idx := len(b.cells) - 1
	b.fixups[idx] = a
	return b.org + uint32(idx)
}

// LD emits a load; it returns the absolute address of the operand cell so
// macros can patch it (indirect addressing).
func (b *Builder) LD(a Ref) uint32 { return b.emit(LD, a) }

// ST emits a store.
func (b *Builder) ST(a Ref) uint32 { return b.emit(ST, a) }

// SBBi emits a subtract-with-borrow.
func (b *Builder) SBBi(a Ref) uint32 { return b.emit(SBB, a) }

// ANDi emits a bitwise and.
func (b *Builder) ANDi(a Ref) uint32 { return b.emit(AND, a) }

// Const returns a reference to an interned data cell holding v.
func (b *Builder) Const(v uint32) Ref {
	key := uint64(v)
	if name, ok := b.consts[key]; ok {
		return Lbl(name)
	}
	name := fmt.Sprintf("$c%d", v)
	b.consts[key] = name
	b.data = append(b.data, dataCell{label: name, init: []Ref{Abs(v)}})
	return Lbl(name)
}

// AddrConst returns a reference to a data cell holding the address of a
// label (a "pointer literal", used for jumps and subroutine returns).
func (b *Builder) AddrConst(target string) Ref {
	key := uint64(1)<<63 | uint64(len(target))<<32 | uint64(hashString(target))
	if name, ok := b.consts[key]; ok {
		return Lbl(name)
	}
	name := "$a_" + target
	b.consts[key] = name
	b.data = append(b.data, dataCell{label: name, init: []Ref{Lbl(target)}})
	return Lbl(name)
}

func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Var allocates a named data cell with an initial value.
func (b *Builder) Var(name string, init uint32) Ref {
	b.data = append(b.data, dataCell{label: name, init: []Ref{Abs(init)}})
	return Lbl(name)
}

// Array allocates size zeroed data cells under one label.
func (b *Builder) Array(name string, size int) Ref {
	init := make([]Ref, size)
	for i := range init {
		init[i] = Abs(0)
	}
	b.data = append(b.data, dataCell{label: name, init: init})
	return Lbl(name)
}

// Table allocates a data cell per entry, each holding a label address.
func (b *Builder) Table(name string, targets ...string) Ref {
	init := make([]Ref, len(targets))
	for i, t := range targets {
		init[i] = Lbl(t)
	}
	b.data = append(b.data, dataCell{label: name, init: init})
	return Lbl(name)
}

func (b *Builder) unique(prefix string) string {
	b.uniq++
	return fmt.Sprintf("$%s%d", prefix, b.uniq)
}

// scratch returns the shared scratch variable refs, creating them once.
func (b *Builder) scratch(name string) Ref {
	key := uint64(2)<<62 | uint64(hashString(name))
	if n, ok := b.consts[key]; ok {
		return Lbl(n)
	}
	b.consts[key] = name
	b.data = append(b.data, dataCell{label: name, init: []Ref{Abs(0)}})
	return Lbl(name)
}

// --- Macro layer -----------------------------------------------------

// LoadImm sets R = v.
func (b *Builder) LoadImm(v uint32) { b.LD(b.Const(v)) }

// ZeroB clears the borrow flag, preserving R.
func (b *Builder) ZeroB() {
	t := b.scratch("$zb")
	b.ST(t)
	b.LD(b.Const(0))
	b.ST(Abs(CellB))
	b.LD(t)
}

// Sub computes R -= M[a] with a clean borrow in (B ends as the borrow out).
func (b *Builder) Sub(a Ref) {
	b.ZeroB()
	b.SBBi(a)
}

// Add computes R += M[a] (32-bit wrap; B is clobbered).
func (b *Builder) Add(a Ref) {
	t1 := b.scratch("$add1")
	t2 := b.scratch("$add2")
	b.ST(t1)
	b.LoadImm(0)
	b.ZeroB()
	b.SBBi(a) // R = -M[a]
	b.ST(t2)
	b.LD(t1)
	b.ZeroB()
	b.SBBi(t2) // R = t1 - (-M[a]) = t1 + M[a]
}

// Goto jumps unconditionally (clobbers R).
func (b *Builder) Goto(target string) {
	b.LD(b.AddrConst(target))
	b.ST(Abs(CellPC))
}

// Halt stops the machine.
func (b *Builder) Halt() { b.ST(Abs(CellHalt)) }

// OutR writes R to the output port.
func (b *Builder) OutR() { b.ST(Abs(CellOut)) }

// InR reads the next input word into R.
func (b *Builder) InR() { b.LD(Abs(CellIn)) }

// jumpOnBVal jumps to target when B==want (0 or 1), else falls through.
// Clobbers R and B.
func (b *Builder) jumpOnBVal(target string, want int) {
	fall := b.unique("fall")
	table := b.unique("jt")
	t := b.scratch("$jb")
	b.LD(Abs(CellB))
	b.ST(t)
	b.LD(b.AddrConst(table))
	b.Add(t) // R = table + B
	// Patch the operand of the next LD with the table slot address.
	pos := b.Here()
	b.ST(Abs(pos + 3))
	b.LD(Abs(0)) // patched: loads the jump target
	b.ST(Abs(CellPC))
	if want == 1 {
		b.Table(table, fall, target)
	} else {
		b.Table(table, target, fall)
	}
	b.Label(fall)
}

// JumpIfBorrow jumps when B==1.
func (b *Builder) JumpIfBorrow(target string) { b.jumpOnBVal(target, 1) }

// JumpIfNoBorrow jumps when B==0.
func (b *Builder) JumpIfNoBorrow(target string) { b.jumpOnBVal(target, 0) }

// JumpIfZero jumps when R==0 (clobbers R and B).
func (b *Builder) JumpIfZero(target string) {
	b.ZeroB()
	b.SBBi(b.Const(1)) // borrows only if R was 0
	b.JumpIfBorrow(target)
}

// JumpIfNonZero jumps when R != 0 (clobbers R and B).
func (b *Builder) JumpIfNonZero(target string) {
	b.ZeroB()
	b.SBBi(b.Const(1))
	b.JumpIfNoBorrow(target)
}

// JumpIfULT jumps to target when R < M[a] (unsigned). Clobbers R, B.
func (b *Builder) JumpIfULT(a Ref, target string) {
	b.Sub(a)
	b.JumpIfBorrow(target)
}

// JumpIfUGE jumps to target when R >= M[a] (unsigned). Clobbers R, B.
func (b *Builder) JumpIfUGE(a Ref, target string) {
	b.Sub(a)
	b.JumpIfNoBorrow(target)
}

// LoadIndirect loads R = M[R] by patching the next instruction.
func (b *Builder) LoadIndirect() {
	pos := b.Here()
	b.ST(Abs(pos + 3)) // operand cell of the LD below
	b.LD(Abs(0))       // patched at runtime
}

// StoreIndirect stores M[R] = M[valVar] by patching.
func (b *Builder) StoreIndirect(valVar Ref) {
	pos := b.Here()
	b.ST(Abs(pos + 5)) // operand cell of the ST below
	b.LD(valVar)
	b.ST(Abs(0)) // patched at runtime
}

// CallSub calls a subroutine built with BeginSub/RetSub (no recursion:
// one return slot per subroutine).
func (b *Builder) CallSub(name string) {
	after := b.unique("ret")
	b.LD(b.AddrConst(after))
	b.ST(b.scratch("$ret_" + name))
	b.Goto(name)
	b.Label(after)
}

// BeginSub starts a subroutine body.
func (b *Builder) BeginSub(name string) {
	b.Label(name)
	b.scratch("$ret_" + name)
}

// RetSub returns from the subroutine.
func (b *Builder) RetSub(name string) {
	b.LD(b.scratch("$ret_" + name))
	b.ST(Abs(CellPC))
}

// Build resolves labels and returns the final image.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Append data cells (stable order).
	dataFixups := map[int]Ref{}
	for _, d := range b.data {
		if _, dup := b.labels[d.label]; dup {
			return nil, fmt.Errorf("verisc builder: data label %q collides", d.label)
		}
		b.labels[d.label] = b.Here()
		for _, init := range d.init {
			b.cells = append(b.cells, 0)
			dataFixups[len(b.cells)-1] = init
		}
	}
	resolve := func(r Ref) (uint32, error) {
		if r.isAbs {
			return r.abs + uint32(r.off), nil
		}
		v, ok := b.labels[r.label]
		if !ok {
			return 0, fmt.Errorf("verisc builder: undefined label %q", r.label)
		}
		return v + uint32(r.off), nil
	}
	apply := func(fixups map[int]Ref) error {
		idxs := make([]int, 0, len(fixups))
		for i := range fixups {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			v, err := resolve(fixups[i])
			if err != nil {
				return err
			}
			b.cells[i] = v
		}
		return nil
	}
	if err := apply(b.fixups); err != nil {
		return nil, err
	}
	if err := apply(dataFixups); err != nil {
		return nil, err
	}
	labels := make(map[string]uint32, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Org: b.org, Cells: append([]uint32(nil), b.cells...), Labels: labels}, nil
}
