package verisc

import (
	"errors"
	"testing"
	"testing/quick"
)

// runProgram builds and runs, returning the CPU.
func runProgram(t *testing.T, build func(b *Builder), in []uint32) *CPU {
	t.Helper()
	b := NewBuilder(ReservedCells)
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCPU(1 << 16)
	c.MaxSteps = 5_000_000
	if err := c.Load(p.Org, p.Cells); err != nil {
		t.Fatal(err)
	}
	c.In = in
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRawInstructions(t *testing.T) {
	// Hand-assembled: R = M[20]; R &= M[21]; R -= M[22]; M[23] = R; halt.
	c := NewCPU(64)
	prog := []uint32{
		LD, 20,
		AND, 21,
		SBB, 22,
		ST, 23,
		ST, CellHalt,
	}
	copy(c.Mem[8:], prog)
	c.Mem[20] = 0xFF
	c.Mem[21] = 0x3C
	c.Mem[22] = 0x04
	c.PC = 8
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Mem[23] != 0x38 {
		t.Fatalf("result %#x", c.Mem[23])
	}
	if c.B != 0 {
		t.Fatal("no borrow expected")
	}
}

func TestSBBBorrowChain(t *testing.T) {
	c := NewCPU(64)
	// R=5; R -= M[20](=7) → borrow; R -= M[21](=0) consumes borrow.
	prog := []uint32{
		LD, 20,
		SBB, 21,
		SBB, 22,
		ST, 23,
		ST, CellHalt,
	}
	copy(c.Mem[8:], prog)
	c.Mem[20] = 5
	c.Mem[21] = 7
	c.Mem[22] = 0
	c.PC = 8
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// 5-7 = 0xFFFFFFFE with B=1, then -0-1 = 0xFFFFFFFD, B=0.
	if c.Mem[23] != 0xFFFFFFFD {
		t.Fatalf("result %#x", c.Mem[23])
	}
}

func TestJumpViaPC(t *testing.T) {
	c := NewCPU(64)
	prog := []uint32{
		LD, 30, // R = 16 (address of the "good" tail)
		ST, CellPC,
		// dead code: writes 99 to out
		LD, 31,
		ST, CellOut,
		ST, CellHalt,
		// good tail at absolute cell 16:
		LD, 32,
		ST, CellOut,
		ST, CellHalt,
	}
	copy(c.Mem[8:], prog)
	c.Mem[30] = 18
	c.Mem[31] = 99
	c.Mem[32] = 42
	c.PC = 8
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.Out) != 1 || c.Out[0] != 42 {
		t.Fatalf("out %v", c.Out)
	}
}

func TestPCReadsNextInstruction(t *testing.T) {
	c := NewCPU(64)
	prog := []uint32{
		LD, CellPC, // R = address after this instruction = 10
		ST, 20,
		ST, CellHalt,
	}
	copy(c.Mem[8:], prog)
	c.PC = 8
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Mem[20] != 10 {
		t.Fatalf("PC read %d, want 10", c.Mem[20])
	}
}

func TestIOAndHalt(t *testing.T) {
	c := NewCPU(64)
	prog := []uint32{
		LD, CellAvail,
		ST, CellOut,
		LD, CellIn,
		ST, CellOut,
		LD, CellIn, // exhausted → 0
		ST, CellOut,
		LD, CellAvail, // 0 now
		ST, CellOut,
		ST, CellHalt,
	}
	copy(c.Mem[8:], prog)
	c.In = []uint32{77}
	c.PC = 8
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 77, 0, 0}
	for i, w := range want {
		if c.Out[i] != w {
			t.Fatalf("out %v, want %v", c.Out, want)
		}
	}
}

func TestBadOpcodeAndAddress(t *testing.T) {
	c := NewCPU(32)
	c.Mem[8] = 9
	c.PC = 8
	if err := c.Run(); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("want bad opcode, got %v", err)
	}
	c2 := NewCPU(32)
	c2.Mem[8] = LD
	c2.Mem[9] = 1000
	c2.PC = 8
	if err := c2.Run(); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("want bad address, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	c := NewCPU(32)
	// Tight loop: jump to self.
	c.Mem[8] = LD
	c.Mem[9] = 20
	c.Mem[10] = ST
	c.Mem[11] = CellPC
	c.Mem[20] = 8
	c.PC = 8
	c.MaxSteps = 50
	if err := c.Run(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want step limit, got %v", err)
	}
}

func TestSetInOutBytes(t *testing.T) {
	c := NewCPU(32)
	c.SetInBytes([]byte{1, 2, 255})
	if len(c.In) != 3 || c.In[2] != 255 {
		t.Fatal("SetInBytes")
	}
	c.Out = []uint32{65, 0x1FF}
	got := c.OutBytes()
	if got[0] != 65 || got[1] != 0xFF {
		t.Fatal("OutBytes truncation")
	}
}

// --- Builder macro tests ---------------------------------------------

func TestBuilderLoadImmOut(t *testing.T) {
	c := runProgram(t, func(b *Builder) {
		b.LoadImm(123456)
		b.OutR()
		b.Halt()
	}, nil)
	if len(c.Out) != 1 || c.Out[0] != 123456 {
		t.Fatalf("out %v", c.Out)
	}
}

func TestBuilderAddMacro(t *testing.T) {
	f := func(x, y uint32) bool {
		b := NewBuilder(ReservedCells)
		vx := b.Var("x", x)
		b.LoadImm(y)
		b.Add(vx)
		b.OutR()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		c := NewCPU(1 << 12)
		c.Load(p.Org, p.Cells)
		c.MaxSteps = 10000
		if err := c.Run(); err != nil {
			return false
		}
		return c.Out[0] == x+y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuilderSubAndBorrowJumps(t *testing.T) {
	// Output 1 if first input < second input else 0.
	build := func(b *Builder) {
		less := b.Var("less", 0)
		y := b.Var("y", 0)
		_ = less
		b.InR()
		b.ST(b.scratch("$x"))
		b.InR()
		b.ST(y)
		b.LD(b.scratch("$x"))
		b.JumpIfULT(Lbl("y"), "isless")
		b.LoadImm(0)
		b.OutR()
		b.Halt()
		b.Label("isless")
		b.LoadImm(1)
		b.OutR()
		b.Halt()
	}
	c := runProgram(t, build, []uint32{3, 9})
	if c.Out[0] != 1 {
		t.Fatal("3 < 9 not detected")
	}
	c = runProgram(t, build, []uint32{9, 3})
	if c.Out[0] != 0 {
		t.Fatal("9 < 3 misdetected")
	}
	c = runProgram(t, build, []uint32{5, 5})
	if c.Out[0] != 0 {
		t.Fatal("5 < 5 misdetected")
	}
}

func TestBuilderJumpZeroNonZero(t *testing.T) {
	build := func(b *Builder) {
		b.InR()
		b.JumpIfZero("zero")
		b.LoadImm(7)
		b.OutR()
		b.Halt()
		b.Label("zero")
		b.LoadImm(8)
		b.OutR()
		b.Halt()
	}
	if c := runProgram(t, build, []uint32{0}); c.Out[0] != 8 {
		t.Fatal("zero path")
	}
	if c := runProgram(t, build, []uint32{5}); c.Out[0] != 7 {
		t.Fatal("nonzero path")
	}

	build2 := func(b *Builder) {
		b.InR()
		b.JumpIfNonZero("nz")
		b.LoadImm(1)
		b.OutR()
		b.Halt()
		b.Label("nz")
		b.LoadImm(2)
		b.OutR()
		b.Halt()
	}
	if c := runProgram(t, build2, []uint32{0}); c.Out[0] != 1 {
		t.Fatal("JumpIfNonZero on zero")
	}
	if c := runProgram(t, build2, []uint32{9}); c.Out[0] != 2 {
		t.Fatal("JumpIfNonZero on nonzero")
	}
}

func TestBuilderLoopSum(t *testing.T) {
	// Sum all input words: the canonical VeRisc loop.
	c := runProgram(t, func(b *Builder) {
		sum := b.Var("sum", 0)
		b.Label("loop")
		b.LD(Abs(CellAvail))
		b.JumpIfZero("done")
		b.InR()
		b.Add(sum)
		b.ST(sum)
		b.Goto("loop")
		b.Label("done")
		b.LD(sum)
		b.OutR()
		b.Halt()
	}, []uint32{10, 20, 30, 4})
	if c.Out[0] != 64 {
		t.Fatalf("sum %d", c.Out[0])
	}
}

func TestBuilderIndirect(t *testing.T) {
	// Reverse 4 input words through an array using indexed access.
	c := runProgram(t, func(b *Builder) {
		arr := b.Array("arr", 4)
		i := b.Var("i", 0)
		val := b.Var("val", 0)
		four := b.Const(4)
		_ = arr

		b.Label("rdloop")
		b.LD(i)
		b.JumpIfUGE(four, "emit")
		// arr[i] = input
		b.InR()
		b.ST(val)
		b.LD(b.AddrConst("arr"))
		b.Add(i)
		b.StoreIndirect(val)
		b.LD(i)
		b.Add(b.Const(1))
		b.ST(i)
		b.Goto("rdloop")

		b.Label("emit")
		b.LoadImm(4)
		b.ST(i)
		b.Label("emitloop")
		b.LD(i)
		b.JumpIfZero("fin")
		b.LD(i) // JumpIfZero clobbers R; reload
		b.Sub(b.Const(1))
		b.ST(i)
		b.LD(b.AddrConst("arr"))
		b.Add(i)
		b.LoadIndirect()
		b.OutR()
		b.Goto("emitloop")
		b.Label("fin")
		b.Halt()
	}, []uint32{1, 2, 3, 4})
	want := []uint32{4, 3, 2, 1}
	for k, w := range want {
		if c.Out[k] != w {
			t.Fatalf("out %v", c.Out)
		}
	}
}

func TestBuilderSubroutine(t *testing.T) {
	// double(): R = R + R via a temp var; called twice.
	c := runProgram(t, func(b *Builder) {
		x := b.Var("x", 0)
		b.InR()
		b.ST(x)
		b.CallSub("double")
		b.CallSub("double")
		b.LD(x)
		b.OutR()
		b.Halt()

		b.BeginSub("double")
		b.LD(x)
		b.Add(Lbl("x"))
		b.ST(x)
		b.RetSub("double")
	}, []uint32{5})
	if c.Out[0] != 20 {
		t.Fatalf("double twice: %d", c.Out[0])
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(ReservedCells)
	b.Goto("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}

	b2 := NewBuilder(ReservedCells)
	b2.Label("a")
	b2.Label("a")
	if _, err := b2.Build(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestBuilderOrgBelowReservedClamped(t *testing.T) {
	b := NewBuilder(0)
	if b.Here() != ReservedCells {
		t.Fatalf("origin %d", b.Here())
	}
}

func TestLoadBounds(t *testing.T) {
	c := NewCPU(16)
	if err := c.Load(10, make([]uint32, 10)); !errors.Is(err, ErrBadAddress) {
		t.Fatal("oversized load accepted")
	}
}
