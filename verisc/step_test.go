package verisc

import (
	"testing"
	"testing/quick"
)

// buildStepProgram assembles a small program exercising every opcode,
// memory-mapped cell and the borrow flag.
func buildStepProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(ReservedCells)
	x := b.Var("x", 1000)
	y := b.Var("y", 58)
	// x - y, borrow games, AND, I/O echo, then halt.
	b.LD(x)
	b.ZeroB()
	b.SBBi(y)
	b.ST(x)
	b.ANDi(b.Const(0xFF))
	b.OutR()
	b.Label("echo")
	b.LD(Abs(CellAvail))
	b.ZeroB()
	b.SBBi(b.Const(0))
	b.JumpIfZero("done")
	b.InR()
	b.OutR()
	b.Goto("echo")
	b.Label("done")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStepMatchesRun pins the contract the fast Run loop relies on:
// stepping one instruction at a time is observationally identical to
// Run — same registers, memory-mapped effects, output and step count.
func TestStepMatchesRun(t *testing.T) {
	p := buildStepProgram(t)
	mk := func() *CPU {
		c := NewCPU(1 << 12)
		if err := c.Load(p.Org, p.Cells); err != nil {
			t.Fatal(err)
		}
		c.In = []uint32{3, 1, 4, 1, 5}
		return c
	}

	fast := mk()
	if err := fast.Run(); err != nil {
		t.Fatal(err)
	}

	slow := mk()
	for !slow.Halted {
		if err := slow.Step(); err != nil {
			t.Fatal(err)
		}
	}

	if fast.R != slow.R || fast.B != slow.B || fast.PC != slow.PC {
		t.Fatalf("register divergence: fast (R=%d B=%d PC=%d) slow (R=%d B=%d PC=%d)",
			fast.R, fast.B, fast.PC, slow.R, slow.B, slow.PC)
	}
	if fast.Steps != slow.Steps {
		t.Fatalf("step counts differ: %d vs %d", fast.Steps, slow.Steps)
	}
	if len(fast.Out) != len(slow.Out) {
		t.Fatalf("output lengths differ: %d vs %d", len(fast.Out), len(slow.Out))
	}
	for i := range fast.Out {
		if fast.Out[i] != slow.Out[i] {
			t.Fatalf("output[%d]: %d vs %d", i, fast.Out[i], slow.Out[i])
		}
	}
}

// TestStepRunEquivalenceProperty drives random instruction soups through
// both execution paths; whatever happens (halt, error, step limit) must
// happen identically.
func TestStepRunEquivalenceProperty(t *testing.T) {
	f := func(cells []uint32, in []uint32) bool {
		run := NewCPU(4096)
		copy(run.Mem[ReservedCells:], cells)
		run.PC = ReservedCells
		run.In = append([]uint32(nil), in...)
		run.MaxSteps = 2000
		runErr := run.Run()

		step := NewCPU(4096)
		copy(step.Mem[ReservedCells:], cells)
		step.PC = ReservedCells
		step.In = append([]uint32(nil), in...)
		step.MaxSteps = 2000
		var stepErr error
		for !step.Halted && stepErr == nil {
			stepErr = step.Step()
		}

		if (runErr == nil) != (stepErr == nil) {
			return false
		}
		if run.R != step.R || run.B != step.B || len(run.Out) != len(step.Out) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStepAfterHaltIsNoop(t *testing.T) {
	c := NewCPU(64)
	c.Mem[ReservedCells] = ST
	c.Mem[ReservedCells+1] = CellHalt
	c.PC = ReservedCells
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	steps := c.Steps
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Steps != steps {
		t.Fatal("Step advanced a halted machine")
	}
}

func TestWriteMappedCells(t *testing.T) {
	c := NewCPU(64)
	// ST to PC jumps.
	c.R = 40
	if err := c.write(CellPC, c.R); err != nil {
		t.Fatal(err)
	}
	if c.PC != 40 {
		t.Fatalf("PC=%d", c.PC)
	}
	// ST to B masks to one bit.
	if err := c.write(CellB, 7); err != nil {
		t.Fatal(err)
	}
	if c.B != 1 {
		t.Fatalf("B=%d", c.B)
	}
	// Out-of-range store errors.
	if err := c.write(1<<20, 1); err == nil {
		t.Fatal("store beyond memory accepted")
	}
	// Out-of-range load errors.
	if _, err := c.read(1 << 20); err == nil {
		t.Fatal("load beyond memory accepted")
	}
}

func TestRunErrorsMatchStepErrors(t *testing.T) {
	// Bad opcode (direct-memory operand) must error on both paths.
	for _, addr := range []uint32{ReservedCells + 10, CellIn} {
		mk := func() *CPU {
			c := NewCPU(64)
			c.Mem[ReservedCells] = 99 // undefined opcode
			c.Mem[ReservedCells+1] = addr
			c.PC = ReservedCells
			return c
		}
		r := mk()
		rErr := r.Run()
		s := mk()
		sErr := s.Step()
		if rErr == nil || sErr == nil {
			t.Fatalf("addr %d: bad opcode accepted (run=%v step=%v)", addr, rErr, sErr)
		}
	}
	// PC walking off the end errors on both paths.
	r := NewCPU(16)
	r.PC = 15
	if err := r.Run(); err == nil {
		t.Fatal("run accepted pc at memory end")
	}
	s := NewCPU(16)
	s.PC = 15
	if err := s.Step(); err == nil {
		t.Fatal("step accepted pc at memory end")
	}
	// A computed jump can park PC at 0xFFFFFFFF; the bounds check must
	// not wrap (pc+1 overflows uint32) — both paths return ErrBadAddress
	// rather than indexing memory at 2^32-1.
	for _, exec := range map[string]func(*CPU) error{
		"run":  (*CPU).Run,
		"step": (*CPU).Step,
	} {
		c := NewCPU(64)
		c.PC = 0xFFFFFFFF
		if err := exec(c); err == nil {
			t.Fatal("wrapped pc accepted")
		}
	}
}

func TestNewCPUDefaults(t *testing.T) {
	if len(NewCPU(0).Mem) != DefaultMemCells {
		t.Fatal("default memory size not applied")
	}
	if len(NewCPU(128).Mem) != 128 {
		t.Fatal("explicit memory size not applied")
	}
}
