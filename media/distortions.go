// Package media simulates the visual analog media of the paper's
// evaluation (§4): laser-printed archival paper, 16 mm microfilm written by
// an archive writer, and 35 mm black-and-white cinema film — together with
// the degradations the paper lists as the threats MOCoder must survive:
// film distortion, fading, hot spots, scratches, dust, lens curvature and
// the unsteady mechanical motion of linear-array scanners (§3.1).
//
// Physical devices are replaced by raster simulation: "writing" quantises
// and stores frames, "scanning" resamples them at the scanner's resolution
// and applies a distortion model. The distortion parameters of each
// built-in profile are calibrated so that an undamaged archive decodes
// (as the paper's experiments did), while the failure-injection helpers
// can push any frame beyond the correction thresholds.
package media

import (
	"math"
	"math/rand"

	"microlonys/raster"
)

// Distortions models everything that can go wrong between writing an
// emblem and handing its scan to MOCoder. The zero value applies nothing.
type Distortions struct {
	Seed int64 // deterministic randomness; 0 derives from frame index

	// Geometry (lens and transport mechanics).
	RotationDeg float64 // page/film skew, degrees
	BarrelK     float64 // radial lens distortion: >0 barrel, <0 pincushion
	RowJitterPx float64 // max horizontal drift from scanner motion, pixels

	// Optics.
	BlurRadius int // lens defocus (box blur radius, pixels)

	// Photometry (media ageing).
	Fade     float64 // 0..1 contrast compression toward mid-gray
	Gradient float64 // 0..1 illumination gradient / hot-spot amplitude
	Noise    float64 // additive noise standard deviation (intensity units)

	// Physical damage.
	DustSpecks    int // random dark/light blobs
	DustMaxRadius int // max blob radius, pixels (default 3)
	Scratches     int // thin straight lines across the frame

	// FastSim selects the fast scanner approximation instead of the
	// reference simulation: nearest-neighbor geometry resampling in place
	// of the bilinear four-tap warp, additive noise drawn from a shared
	// pre-generated normal stream (one random offset per frame) in place
	// of a per-pixel Gaussian draw, and a box blur whose window mean is
	// quantised by fixed-point multiply-shift. The output is NOT
	// byte-identical to the reference — the contract is *statistical*
	// equivalence: campaign recovery curves under FastSim must stay
	// within the regression gate's binomial tolerance bands of the
	// committed reference curves (`campaign -fastsim -diff CAMPAIGN.json`
	// is the enforcement). Determinism still holds: the same Seed always
	// produces the same fast-sim scan. FastSim affects neither IsZero nor
	// Scale — it selects an implementation, not a severity.
	FastSim bool
}

// Scale returns the model with every severity dial multiplied by f — the
// damage-campaign harness's sweep hook. Continuous fields scale linearly
// (Fade clamps at 1, full contrast collapse); the integer counts round to
// nearest, so small non-zero dials survive moderate down-scaling only when
// they round back to at least one. Seed and DustMaxRadius pass through
// unchanged, and Scale(1) returns d exactly.
func (d Distortions) Scale(f float64) Distortions {
	if f < 0 {
		f = 0
	}
	d.RotationDeg *= f
	d.BarrelK *= f
	d.RowJitterPx *= f
	d.Fade *= f
	if d.Fade > 1 {
		d.Fade = 1
	}
	d.Gradient *= f
	d.Noise *= f
	d.BlurRadius = int(math.Round(float64(d.BlurRadius) * f))
	d.DustSpecks = int(math.Round(float64(d.DustSpecks) * f))
	d.Scratches = int(math.Round(float64(d.Scratches) * f))
	return d
}

// IsZero reports whether the distortion model applies nothing at all —
// Apply would only clone. Seed is ignored: it selects randomness that a
// zero model never consumes. The writer side of every built-in profile is
// zero, so the archive place stage rides this fast path.
func (d Distortions) IsZero() bool {
	return d.RotationDeg == 0 && d.BarrelK == 0 && d.RowJitterPx == 0 &&
		d.BlurRadius <= 0 && d.Fade <= 0 && d.Gradient <= 0 && d.Noise <= 0 &&
		d.DustSpecks <= 0 && d.Scratches <= 0
}

// Apply returns a distorted copy of img.
func (d Distortions) Apply(img *raster.Gray) *raster.Gray {
	if d.IsZero() {
		return img.Clone()
	}
	rng := rand.New(rand.NewSource(d.Seed))
	out := img

	// Geometric distortions share one inverse mapping so the image is
	// resampled only once. The mapping hoists everything row-invariant —
	// the jitter shift and the rotation terms of the row's y offset — out
	// of the per-pixel loop; each hoisted value is the same single
	// operation on the same operands as the per-pixel formulation, so the
	// resampled image is bit-identical (TestApplyFastPathDifferential).
	if d.RotationDeg != 0 || d.BarrelK != 0 || d.RowJitterPx != 0 {
		jitter := rowJitter(rng, out.H, d.RowJitterPx)
		src := out
		out = d.warpGeometry(src, &raster.Gray{}, jitter)
	}

	if d.BlurRadius > 0 {
		if d.FastSim {
			out = out.BoxBlurApproxInto(&raster.Gray{}, &raster.Gray{}, d.BlurRadius)
		} else {
			out = out.BoxBlur(d.BlurRadius)
		}
	}

	if d.Fade > 0 || d.Gradient > 0 || d.Noise > 0 {
		if out == img {
			out = img.Clone()
		}
		if d.FastSim && d.Noise > 0 {
			d.photometryFastInPlace(out, rng)
		} else {
			d.photometryInPlace(out, rng)
		}
	}

	if d.DustSpecks > 0 || d.Scratches > 0 {
		if out == img {
			out = img.Clone()
		}
		d.damageInPlace(out, rng)
	}

	if out == img {
		out = img.Clone()
	}
	return out
}

// geometryRowMapper builds the raster.WarpRows row hook for the geometric
// distortions (jitter shift, lens curvature, rotation) of a w×h frame —
// the single inverse mapping Apply and the scan-scratch applyInto share,
// so both resample identically.
func (d Distortions) geometryRowMapper(w, h int, jitter []float64) func(y float64) func(x float64) (float64, float64) {
	theta := d.RotationDeg * math.Pi / 180
	sin, cos := math.Sin(theta), math.Cos(theta)
	cx, cy := float64(w)/2, float64(h)/2
	rmax := math.Hypot(cx, cy)
	return func(y float64) func(x float64) (float64, float64) {
		shift := 0.0
		if d.RowJitterPx != 0 {
			if yi := int(y); yi >= 0 && yi < len(jitter) {
				shift = jitter[yi]
			}
		}
		dy := y - cy
		sinDy, cosDy := sin*dy, cos*dy
		return func(x float64) (float64, float64) {
			if d.RowJitterPx != 0 {
				x += shift
			}
			dx := x - cx
			if d.BarrelK != 0 {
				r := math.Hypot(dx, dy) / rmax
				s := 1 + d.BarrelK*r*r
				dx *= s
				dyb := dy * s
				if theta != 0 {
					return cx + (cos*dx - sin*dyb), cy + (sin*dx + cos*dyb)
				}
				return cx + dx, cy + dyb
			}
			if theta != 0 {
				return cx + (cos*dx - sinDy), cy + (sin*dx + cosDy)
			}
			return cx + dx, cy + dy
		}
	}
}

// warpGeometry runs the geometric resample src→dst through the
// barrel-free raster specialization when the model allows it (every
// built-in scanner except microfilm), the general row mapper otherwise.
// Both evaluate identical per-pixel arithmetic, so the resampled bytes
// are the same either way (TestApplyFastPathDifferential covers each
// model class).
func (d Distortions) warpGeometry(src, dst *raster.Gray, jitter []float64) *raster.Gray {
	if d.FastSim {
		// Fast-sim: nearest-neighbor resample through the same inverse
		// mapping — coarser sampling, identical geometry. Barrel-free
		// models take the allocation-free specialization, mirroring the
		// reference path below (TestWarpNearestSpecialization pins the
		// two nearest formulations to each other).
		if d.BarrelK == 0 {
			theta := d.RotationDeg * math.Pi / 180
			sin, cos := math.Sin(theta), math.Cos(theta)
			var j []float64
			if d.RowJitterPx != 0 {
				j = jitter
			}
			return src.WarpShiftRotateNearestInto(dst, sin, cos, theta != 0, j)
		}
		return src.WarpRowsNearestInto(dst, d.geometryRowMapper(src.W, src.H, jitter))
	}
	if d.BarrelK == 0 {
		theta := d.RotationDeg * math.Pi / 180
		sin, cos := math.Sin(theta), math.Cos(theta)
		var j []float64
		if d.RowJitterPx != 0 {
			j = jitter
		}
		return src.WarpShiftRotateInto(dst, sin, cos, theta != 0, j)
	}
	return src.WarpRowsInto(dst, d.geometryRowMapper(src.W, src.H, jitter))
}

// photometryInPlace applies fade, illumination gradient and noise to out.
// The noise-only model — most built-in scanners on most rows — gets its
// own loop: with Fade non-positive (the per-pixel fade branch is skipped)
// and Gradient exactly zero (the gradient term is exactly 0.0, and adding
// it never changes a finite pixel value), the specialized loop computes
// the identical bytes without the per-pixel flag checks. A *negative*
// Gradient must take the general loop: the reference adds its term
// whenever this stage runs.
func (d Distortions) photometryInPlace(out *raster.Gray, rng *rand.Rand) {
	if d.Fade <= 0 && d.Gradient == 0 && d.Noise > 0 {
		noise := d.Noise
		for i := range out.Pix {
			out.Pix[i] = clamp(float64(out.Pix[i]) + rng.NormFloat64()*noise)
		}
		return
	}
	fade := 1 - d.Fade
	for y := 0; y < out.H; y++ {
		// Illumination gradient: brighter on one side, as from an
		// uneven lamp or a hot spot during filming.
		grad := d.Gradient * 60 * (float64(y)/float64(out.H) - 0.5)
		row := out.Pix[y*out.W : (y+1)*out.W]
		for x := range row {
			v := float64(row[x])
			if d.Fade > 0 {
				v = 128 + (v-128)*fade
			}
			v += grad
			if d.Noise > 0 {
				v += rng.NormFloat64() * d.Noise
			}
			row[x] = clamp(v)
		}
	}
}

// damageInPlace applies dust specks and scratches to out.
func (d Distortions) damageInPlace(out *raster.Gray, rng *rand.Rand) {
	maxR := d.DustMaxRadius
	if maxR <= 0 {
		maxR = 3
	}
	for i := 0; i < d.DustSpecks; i++ {
		x := rng.Intn(out.W)
		y := rng.Intn(out.H)
		r := 1 + rng.Intn(maxR)
		shade := byte(0)
		if rng.Intn(2) == 0 {
			shade = 255
		}
		fillCircle(out, x, y, r, shade)
	}
	for i := 0; i < d.Scratches; i++ {
		drawScratch(out, rng)
	}
}

// rowJitter builds a bounded random walk: adjacent scan lines drift by a
// fraction of a pixel, accumulating up to ±amplitude — the signature of
// unsteady transport in linear-array scanners and ADFs.
func rowJitter(rng *rand.Rand, rows int, amplitude float64) []float64 {
	return rowJitterInto(rng, nil, rows, amplitude)
}

// rowJitterInto is rowJitter into a reused buffer. A zero amplitude
// consumes no randomness, exactly like rowJitter.
func rowJitterInto(rng *rand.Rand, buf []float64, rows int, amplitude float64) []float64 {
	if cap(buf) < rows {
		buf = make([]float64, rows)
	}
	j := buf[:rows]
	if amplitude == 0 {
		for y := range j {
			j[y] = 0
		}
		return j
	}
	cur := 0.0
	for y := range j {
		cur += rng.NormFloat64() * amplitude / 18
		if cur > amplitude {
			cur = amplitude
		}
		if cur < -amplitude {
			cur = -amplitude
		}
		j[y] = cur
	}
	return j
}

func fillCircle(g *raster.Gray, cx, cy, r int, v byte) {
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				g.Set(x, y, v)
			}
		}
	}
}

// drawScratch draws a thin, slightly slanted line across the frame, dark
// or light, like an emulsion scratch.
func drawScratch(g *raster.Gray, rng *rand.Rand) {
	shade := byte(0)
	if rng.Intn(2) == 0 {
		shade = 255
	}
	vertical := rng.Intn(2) == 0
	if vertical {
		x := float64(rng.Intn(g.W))
		slope := (rng.Float64() - 0.5) * 0.1
		for y := 0; y < g.H; y++ {
			g.Set(int(x), y, shade)
			x += slope
		}
	} else {
		y := float64(rng.Intn(g.H))
		slope := (rng.Float64() - 0.5) * 0.1
		for x := 0; x < g.W; x++ {
			g.Set(x, int(y), shade)
			y += slope
		}
	}
}

func clamp(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}
