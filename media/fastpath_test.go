package media

import (
	"math"
	"math/rand"
	"testing"

	"microlonys/raster"
)

// applyRef is the pre-fast-path Apply: one per-pixel closure with all
// branches inside, via the plain raster.Warp. The hoisted WarpRows
// formulation must produce bit-identical images for every model.
func applyRef(d Distortions, img *raster.Gray) *raster.Gray {
	rng := rand.New(rand.NewSource(d.Seed))
	out := img

	if d.RotationDeg != 0 || d.BarrelK != 0 || d.RowJitterPx != 0 {
		theta := d.RotationDeg * math.Pi / 180
		sin, cos := math.Sin(theta), math.Cos(theta)
		cx, cy := float64(out.W)/2, float64(out.H)/2
		rmax := math.Hypot(cx, cy)
		jitter := rowJitter(rng, out.H, d.RowJitterPx)
		src := out
		out = src.Warp(func(x, y float64) (float64, float64) {
			if d.RowJitterPx != 0 {
				yi := int(y)
				if yi >= 0 && yi < len(jitter) {
					x += jitter[yi]
				}
			}
			dx, dy := x-cx, y-cy
			if d.BarrelK != 0 {
				r := math.Hypot(dx, dy) / rmax
				s := 1 + d.BarrelK*r*r
				dx *= s
				dy *= s
			}
			if theta != 0 {
				dx, dy = cos*dx-sin*dy, sin*dx+cos*dy
			}
			return cx + dx, cy + dy
		})
	}

	if d.BlurRadius > 0 {
		out = out.BoxBlur(d.BlurRadius)
	}

	if d.Fade > 0 || d.Gradient > 0 || d.Noise > 0 {
		if out == img {
			out = img.Clone()
		}
		for y := 0; y < out.H; y++ {
			grad := d.Gradient * 60 * (float64(y)/float64(out.H) - 0.5)
			for x := 0; x < out.W; x++ {
				v := float64(out.Pix[y*out.W+x])
				if d.Fade > 0 {
					v = 128 + (v-128)*(1-d.Fade)
				}
				v += grad
				if d.Noise > 0 {
					v += rng.NormFloat64() * d.Noise
				}
				out.Pix[y*out.W+x] = clamp(v)
			}
		}
	}

	if d.DustSpecks > 0 || d.Scratches > 0 {
		if out == img {
			out = img.Clone()
		}
		maxR := d.DustMaxRadius
		if maxR <= 0 {
			maxR = 3
		}
		for i := 0; i < d.DustSpecks; i++ {
			x := rng.Intn(out.W)
			y := rng.Intn(out.H)
			r := 1 + rng.Intn(maxR)
			shade := byte(0)
			if rng.Intn(2) == 0 {
				shade = 255
			}
			fillCircle(out, x, y, r, shade)
		}
		for i := 0; i < d.Scratches; i++ {
			drawScratch(out, rng)
		}
	}

	if out == img {
		out = img.Clone()
	}
	return out
}

// TestApplyFastPathDifferential pins the restructured Apply (IsZero early
// return, WarpRows hoisting, row-sliced photometry) to the reference
// formulation: bit-identical output for the zero model, each distortion
// alone, every built-in profile's scanner model, and stacked combinations.
func TestApplyFastPathDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	img := raster.New(160, 120)
	for i := range img.Pix {
		// Structured content with hard edges, like an emblem.
		x, y := i%160, i/160
		if (x/5+y/7)%2 == 0 {
			img.Pix[i] = 0
		} else {
			img.Pix[i] = byte(200 + rng.Intn(56))
		}
	}

	models := []Distortions{
		{},
		{RowJitterPx: 1.2},
		{RotationDeg: 0.3},
		{BarrelK: 0.002},
		{RotationDeg: -0.25, RowJitterPx: 0.8},
		{RotationDeg: 0.2, BarrelK: 0.0015, RowJitterPx: 1.0},
		{BlurRadius: 1},
		{Fade: 0.1},
		{Gradient: 0.4},
		{Noise: 5},
		{Fade: 0.08, Gradient: 0.3, Noise: 4},
		{Gradient: -0.4, Noise: 5}, // negative gradient still applies once noise runs the stage
		{Fade: -0.2, Noise: 3},     // negative fade is inert but must not skip the stage
		{DustSpecks: 20, Scratches: 2},
		Paper().Scanner,
		Microfilm().Scanner,
		CinemaFilm().Scanner,
	}
	for i, d := range models {
		d.Seed = int64(i)*31 + 5
		got := d.Apply(img)
		want := applyRef(d, img)
		if !raster.Equal(got, want) {
			t.Fatalf("model %d (%+v): fast Apply differs from reference in %d pixels",
				i, d, raster.DiffCount(got, want))
		}
		if &got.Pix[0] == &img.Pix[0] {
			t.Fatalf("model %d: Apply aliases its input", i)
		}
	}
}

// TestWriteZeroWriterMatchesApplyPath pins the Write fast path for
// distortion-free writers to the reference Apply-then-quantise path.
func TestWriteZeroWriterMatchesApplyPath(t *testing.T) {
	frame := raster.New(40, 30)
	for i := range frame.Pix {
		frame.Pix[i] = byte(i * 7)
	}
	for _, bitonal := range []bool{true, false} {
		p := Profile{Name: "z", FrameW: 40, FrameH: 30, ScanW: 40, ScanH: 30, WriteBitonal: bitonal}
		m := New(p)
		if err := m.Write([]*raster.Gray{frame, frame}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			d := p.Writer
			d.Seed = int64(i)*7919 + 1
			want := applyRef(d, frame)
			if bitonal {
				want = want.Threshold(want.OtsuThreshold())
			}
			if !raster.Equal(m.frames[i], want) {
				t.Fatalf("bitonal=%v frame %d: fast Write differs from reference", bitonal, i)
			}
		}
	}
	// A written frame must not alias the caller's image.
	p := Profile{Name: "z", FrameW: 40, FrameH: 30, ScanW: 40, ScanH: 30}
	m := New(p)
	if err := m.Write([]*raster.Gray{frame}); err != nil {
		t.Fatal(err)
	}
	if &m.frames[0].Pix[0] == &frame.Pix[0] {
		t.Fatal("zero-writer Write stored the caller's pixel buffer")
	}
}

func TestIsZero(t *testing.T) {
	if !(Distortions{}).IsZero() || !(Distortions{Seed: 99}).IsZero() {
		t.Fatal("zero model (any seed) must be IsZero")
	}
	nonZero := []Distortions{
		{RotationDeg: 0.1}, {BarrelK: -0.001}, {RowJitterPx: 0.5},
		{BlurRadius: 1}, {Fade: 0.01}, {Gradient: 0.1}, {Noise: 1},
		{DustSpecks: 1}, {Scratches: 1},
	}
	for i, d := range nonZero {
		if d.IsZero() {
			t.Fatalf("model %d (%+v) reported zero", i, d)
		}
	}
}
