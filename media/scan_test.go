package media

import (
	"testing"

	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/raster"
)

// scanProfiles are the ScanFrameInto coverage matrix: native-resolution
// grayscale, rescaling, bitonal scanners, distortion-free scanners, and
// the three built-in profiles (shrunk layouts keep the test fast while
// preserving each profile's distortion model and scan geometry).
func scanProfiles() []Profile {
	shrink := func(p Profile) Profile {
		l := emblem.Layout{DataW: 60, DataH: 48, PxPerModule: p.Layout.PxPerModule}
		scale := func(scan, frame int) int { return l.ImageW() * scan / frame }
		p.ScanW = scale(p.ScanW, p.FrameW)
		p.ScanH = l.ImageH() * p.ScanH / p.FrameH
		p.FrameW, p.FrameH = l.ImageW(), l.ImageH()
		p.Layout = l
		return p
	}
	l := emblem.Layout{DataW: 60, DataH: 48, PxPerModule: 3}
	zero := Profile{
		Name:   "zero-scanner",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
	zeroResize := zero
	zeroResize.Name = "zero-scanner-resized"
	zeroResize.ScanW, zeroResize.ScanH = l.ImageW()*2, l.ImageH()*2
	zeroBitonal := zero
	zeroBitonal.Name = "zero-scanner-bitonal"
	zeroBitonal.ScanBitonal = true
	return []Profile{
		zero, zeroResize, zeroBitonal,
		shrink(Paper()), shrink(Microfilm()), shrink(CinemaFilm()),
	}
}

func writeTestFrames(t *testing.T, p Profile, n int, seed int64) *Medium {
	t.Helper()
	m := New(p)
	var enc mocoder.Encoder
	payload := make([]byte, mocoder.Capacity(p.Layout))
	for i := range payload {
		payload[i] = byte(int(seed) + i*31)
	}
	for i := 0; i < n; i++ {
		img, err := enc.Encode(payload, emblem.Header{Kind: emblem.KindRaw, Index: uint16(i)}, p.Layout)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Write([]*raster.Gray{img}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestScanFrameIntoMatchesScanFrame pins the scratch-rendering scan to
// ScanFrame across the profile matrix — resize, every distortion model,
// bitonal quantisation — with one scratch reused for all frames of all
// profiles, so stale state or stale sizing would be caught.
func TestScanFrameIntoMatchesScanFrame(t *testing.T) {
	var s ScanScratch
	for _, p := range scanProfiles() {
		m := writeTestFrames(t, p, 3, 7)
		for i := 0; i < m.FrameCount(); i++ {
			want, err := m.ScanFrame(i)
			if err != nil {
				t.Fatalf("%s: ScanFrame(%d): %v", p.Name, i, err)
			}
			got, err := m.ScanFrameInto(&s, i)
			if err != nil {
				t.Fatalf("%s: ScanFrameInto(%d): %v", p.Name, i, err)
			}
			if !raster.Equal(got, want) {
				t.Fatalf("%s: frame %d: ScanFrameInto differs from ScanFrame in %d pixels",
					p.Name, i, raster.DiffCount(got, want))
			}
			if i < len(m.frames) && &got.Pix[0] == &m.frames[i].Pix[0] {
				t.Fatalf("%s: frame %d: scan aliases the stored frame", p.Name, i)
			}
		}
		if _, err := m.ScanFrameInto(&s, -1); err == nil {
			t.Fatalf("%s: negative index accepted", p.Name)
		}
		if _, err := m.ScanFrameInto(&s, m.FrameCount()); err == nil {
			t.Fatalf("%s: out-of-range index accepted", p.Name)
		}
	}
}

// TestScanFrameIntoReuseAcrossSizes alternates scans between profiles
// whose frame and scan sizes differ — the scratch must resize safely in
// both directions, repeatedly.
func TestScanFrameIntoReuseAcrossSizes(t *testing.T) {
	profiles := scanProfiles()
	media := make([]*Medium, len(profiles))
	for i, p := range profiles {
		media[i] = writeTestFrames(t, p, 1, int64(i)+11)
	}
	var s ScanScratch
	for round := 0; round < 3; round++ {
		for i, m := range media {
			want, err := m.ScanFrame(0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.ScanFrameInto(&s, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !raster.Equal(got, want) {
				t.Fatalf("round %d profile %s: scratch reuse broke the scan", round, profiles[i].Name)
			}
		}
	}
}

// TestVolumeScanFrameInto pins the volume-level scratch scan to the
// volume ScanFrame across sheet boundaries.
func TestVolumeScanFrameInto(t *testing.T) {
	p := scanProfiles()[3] // shrunk paper: resize + full scanner model
	v := NewVolume(p, 2)
	var enc mocoder.Encoder
	payload := make([]byte, mocoder.Capacity(p.Layout))
	for i := 0; i < 5; i++ {
		img, err := enc.Encode(payload, emblem.Header{Kind: emblem.KindRaw, Index: uint16(i)}, p.Layout)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Write([]*raster.Gray{img}); err != nil {
			t.Fatal(err)
		}
	}
	var s ScanScratch
	for i := 0; i < v.FrameCount(); i++ {
		want, err := v.ScanFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.ScanFrameInto(&s, i)
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(got, want) {
			t.Fatalf("frame %d: volume ScanFrameInto differs", i)
		}
	}
	if _, err := v.ScanFrameInto(&s, v.FrameCount()); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func BenchmarkScanFrame(b *testing.B) {
	l := emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 3}
	p := Profile{
		Name:   "bench",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: Distortions{
			RotationDeg: 0.1, BlurRadius: 1, Noise: 2, DustSpecks: 2,
		},
	}
	m := New(p)
	var enc mocoder.Encoder
	payload := make([]byte, mocoder.Capacity(l))
	img, err := enc.Encode(payload, emblem.Header{Kind: emblem.KindRaw}, l)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Write([]*raster.Gray{img}); err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.ScanFrame(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		var s ScanScratch
		if _, err := m.ScanFrameInto(&s, 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.ScanFrameInto(&s, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastsim-reused", func(b *testing.B) {
		fp := p
		fp.Scanner.FastSim = true
		fm := New(fp)
		if err := fm.Write([]*raster.Gray{img}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var s ScanScratch
		if _, err := fm.ScanFrameInto(&s, 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fm.ScanFrameInto(&s, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
