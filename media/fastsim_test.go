package media

import (
	"math"
	"math/rand"
	"testing"

	"microlonys/raster"
)

// fastSimModels are the fast-sim variants under test: each distortion
// stage alone, stacked combinations, and every built-in scanner model.
func fastSimModels() []Distortions {
	models := []Distortions{
		{RowJitterPx: 1.2},
		{RotationDeg: 0.3},
		{BarrelK: 0.002},
		{RotationDeg: 0.2, BarrelK: 0.0015, RowJitterPx: 1.0},
		{BlurRadius: 1},
		{BlurRadius: 3},
		{Noise: 5},
		{Fade: 0.08, Gradient: 0.3, Noise: 4},
		{Gradient: -0.4, Noise: 5},
		{DustSpecks: 20, Scratches: 2},
		Paper().Scanner,
		Microfilm().Scanner,
		CinemaFilm().Scanner,
	}
	for i := range models {
		models[i].FastSim = true
		models[i].Seed = int64(i)*37 + 11
	}
	return models
}

func fastSimTestImage() *raster.Gray {
	rng := rand.New(rand.NewSource(51))
	img := raster.New(160, 120)
	for i := range img.Pix {
		x, y := i%160, i/160
		if (x/5+y/7)%2 == 0 {
			img.Pix[i] = 0
		} else {
			img.Pix[i] = byte(200 + rng.Intn(56))
		}
	}
	return img
}

// TestFastSimDeterministic pins the fast-sim determinism contract: the
// same Seed always produces the same scan, and (with noise active) a
// different Seed produces a different one.
func TestFastSimDeterministic(t *testing.T) {
	img := fastSimTestImage()
	for i, d := range fastSimModels() {
		a, b := d.Apply(img), d.Apply(img)
		if !raster.Equal(a, b) {
			t.Fatalf("model %d (%+v): fast-sim Apply not deterministic", i, d)
		}
		if d.Noise > 0 {
			d2 := d
			d2.Seed++
			if raster.Equal(a, d2.Apply(img)) {
				t.Fatalf("model %d: seed change did not change the fast-sim scan", i)
			}
		}
	}
}

// TestFastSimApplyIntoMatchesApply pins the scratch path: applyInto must
// route through exactly the same fast-sim stages as Apply — nearest
// warp, approximate blur, stream photometry — for byte-identical output.
func TestFastSimApplyIntoMatchesApply(t *testing.T) {
	img := fastSimTestImage()
	var s ScanScratch
	for i, d := range fastSimModels() {
		want := d.Apply(img)
		got := d.applyInto(&s, img)
		if !raster.Equal(got, want) {
			t.Fatalf("model %d (%+v): applyInto differs from Apply in %d pixels",
				i, d, raster.DiffCount(got, want))
		}
	}
}

// TestFastSimNoiseStatistics checks the shared-stream noise against the
// model it approximates: on a flat mid-gray frame the fast-sim output
// must have the same mean and standard deviation as a per-pixel Gaussian
// of the configured sigma, within loose sampling tolerances.
func TestFastSimNoiseStatistics(t *testing.T) {
	const sigma = 8.0
	img := raster.New(200, 200)
	for i := range img.Pix {
		img.Pix[i] = 128
	}
	d := Distortions{Noise: sigma, FastSim: true, Seed: 7}
	out := d.Apply(img)
	var sum, sumSq float64
	for _, p := range out.Pix {
		v := float64(p)
		sum += v
		sumSq += v * v
	}
	n := float64(len(out.Pix))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-128) > 1 {
		t.Fatalf("fast-sim noise mean %.2f, want 128±1", mean)
	}
	if math.Abs(std-sigma) > 0.15*sigma {
		t.Fatalf("fast-sim noise stddev %.2f, want %.1f±15%%", std, sigma)
	}
}

// TestFastSimCloseToReference is a loose statistical-closeness sanity
// check: the fast-sim scan of each built-in scanner model must stay
// near the reference scan in mean absolute pixel difference. (The real
// equivalence gate is the campaign band diff — this only catches a
// grossly wrong approximation, like a misrouted stage.)
func TestFastSimCloseToReference(t *testing.T) {
	img := fastSimTestImage()
	for _, p := range []Profile{Paper(), Microfilm(), CinemaFilm()} {
		fast := p.Scanner
		fast.FastSim = true
		fast.Seed = 99
		ref := p.Scanner
		ref.Seed = 99
		a, b := fast.Apply(img), ref.Apply(img)
		var diff float64
		for i := range a.Pix {
			diff += math.Abs(float64(a.Pix[i]) - float64(b.Pix[i]))
		}
		mad := diff / float64(len(a.Pix))
		if mad > 4*ref.Noise+10 {
			t.Fatalf("%s: fast-sim mean abs diff %.2f from reference, want <= %.1f",
				p.Name, mad, 4*ref.Noise+10)
		}
	}
}

// TestFastSimHookPassthrough pins FastSim's interaction with the
// campaign hooks: it is an implementation selector, not a severity —
// IsZero ignores it and Scale carries it through unchanged.
func TestFastSimHookPassthrough(t *testing.T) {
	if !(Distortions{FastSim: true}).IsZero() {
		t.Fatal("FastSim alone must not make the model non-zero")
	}
	d := Paper().Scanner
	d.FastSim = true
	if s := d.Scale(0.5); !s.FastSim {
		t.Fatal("Scale dropped FastSim")
	}
	if s := d.Scale(0); !s.FastSim {
		t.Fatal("Scale(0) dropped FastSim")
	}
}
