package media

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/raster"
)

// tinyProfile is a scaled-down medium for fast mechanics tests.
func tinyProfile() Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return Profile{
		Name:   "tiny",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: Distortions{
			RotationDeg: 0.2, RowJitterPx: 0.8, BlurRadius: 1,
			Fade: 0.08, Noise: 4, DustSpecks: 6,
		},
	}
}

func encodeFrame(t *testing.T, p Profile, seed int64, frac float64) (*raster.Gray, []byte) {
	t.Helper()
	payload := make([]byte, int(float64(p.FrameCapacity())*frac))
	rand.New(rand.NewSource(seed)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindData, Total: 1}
	img, err := mocoder.Encode(payload, hdr, p.Layout)
	if err != nil {
		t.Fatal(err)
	}
	return img, payload
}

func TestDistortionsDeterministic(t *testing.T) {
	img := raster.New(200, 150)
	img.FillRect(50, 40, 150, 110, 0)
	d := Distortions{Seed: 5, RotationDeg: 0.4, BlurRadius: 1, Noise: 8, DustSpecks: 10}
	a := d.Apply(img)
	b := d.Apply(img)
	if !raster.Equal(a, b) {
		t.Fatal("same seed produced different distortion")
	}
	d.Seed = 6
	c := d.Apply(img)
	if raster.Equal(a, c) {
		t.Fatal("different seed produced identical noise")
	}
}

func TestDistortionsZeroIsIdentity(t *testing.T) {
	img := raster.New(50, 50)
	img.FillRect(10, 10, 40, 40, 0)
	out := Distortions{}.Apply(img)
	if !raster.Equal(img, out) {
		t.Fatal("zero distortions changed image")
	}
	// And must be a copy, not an alias.
	out.Set(0, 0, 0)
	if img.At(0, 0) != 255 {
		t.Fatal("Apply returned an alias")
	}
}

func TestIndividualDistortionsHaveEffect(t *testing.T) {
	img := raster.New(120, 120)
	img.FillRect(30, 30, 90, 90, 0)
	cases := map[string]Distortions{
		"rotation": {RotationDeg: 2},
		"barrel":   {BarrelK: 0.05},
		"jitter":   {Seed: 1, RowJitterPx: 3},
		"blur":     {BlurRadius: 2},
		"fade":     {Fade: 0.5},
		"gradient": {Gradient: 1},
		"noise":    {Seed: 1, Noise: 20},
		"dust":     {Seed: 1, DustSpecks: 20},
		"scratch":  {Seed: 1, Scratches: 3},
	}
	for name, d := range cases {
		out := d.Apply(img)
		if raster.Equal(img, out) {
			t.Errorf("%s: no effect", name)
		}
	}
}

func TestFadeCompressesRange(t *testing.T) {
	img := raster.New(10, 10)
	img.FillRect(0, 0, 5, 10, 0)
	out := Distortions{Fade: 0.5}.Apply(img)
	if out.At(0, 0) < 50 || out.At(9, 0) > 210 {
		t.Fatalf("fade levels: dark=%d light=%d", out.At(0, 0), out.At(9, 0))
	}
}

func TestMediumWriteScanRoundTrip(t *testing.T) {
	p := tinyProfile()
	m := New(p)
	img, payload := encodeFrame(t, p, 1, 0.9)
	if err := m.Write([]*raster.Gray{img}); err != nil {
		t.Fatal(err)
	}
	if m.FrameCount() != 1 {
		t.Fatal("frame count")
	}
	scans, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := mocoder.Decode(scans[0], p.Layout)
	if err != nil {
		t.Fatalf("decode after simulated scan: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after media round trip")
	}
}

func TestMediumRejectsWrongFrameSize(t *testing.T) {
	m := New(tinyProfile())
	err := m.Write([]*raster.Gray{raster.New(10, 10)})
	if err == nil {
		t.Fatal("wrong frame size accepted")
	}
	// The error must say which frame, what it measured and what the
	// profile wants — the dimensions are the whole diagnosis.
	for _, want := range []string{"frame 0", "10x10", "tiny"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("dimension error %q does not mention %q", err, want)
		}
	}
	// A mismatched frame after valid ones reports its own index.
	img, _ := encodeFrame(t, tinyProfile(), 8, 0.5)
	err = m.Write([]*raster.Gray{img, raster.New(3, 7)})
	if err == nil || !strings.Contains(err.Error(), "frame 1") {
		t.Fatalf("second-frame mismatch: %v", err)
	}
}

func TestMediumDamageAndDestroy(t *testing.T) {
	p := tinyProfile()
	m := New(p)
	img, payload := encodeFrame(t, p, 2, 0.8)
	if err := m.Write([]*raster.Gray{img, img.Clone()}); err != nil {
		t.Fatal(err)
	}

	// Mild extra damage: still decodes.
	if err := m.Damage(0, Distortions{Seed: 3, DustSpecks: 8}); err != nil {
		t.Fatal(err)
	}
	scan, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := mocoder.Decode(scan, p.Layout)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("damaged frame should still decode: %v", err)
	}

	// Destroyed frame: decode must fail loudly.
	if err := m.Destroy(1); err != nil {
		t.Fatal(err)
	}
	scan, err = m.ScanFrame(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mocoder.Decode(scan, p.Layout); err == nil {
		t.Fatal("destroyed frame decoded")
	}

	// Bounds.
	if err := m.Damage(9, Distortions{}); err == nil {
		t.Fatal("out of range damage accepted")
	}
	if err := m.Destroy(-1); err == nil {
		t.Fatal("out of range destroy accepted")
	}
	if _, err := m.ScanFrame(5); err == nil {
		t.Fatal("out of range scan accepted")
	}
}

func TestProfileCapacities(t *testing.T) {
	paper := Paper().FrameCapacity()
	film := Microfilm().FrameCapacity()
	cine := CinemaFilm().FrameCapacity()

	// §4: "we achieved a density of 50KB per page" — ours must land in
	// the same ballpark (the exact figure depends on margins).
	if paper < 40000 || paper > 60000 {
		t.Fatalf("paper page capacity %d outside 40–60 KB", paper)
	}
	// §4: the 102 KB logo took 3 emblems on both film media.
	if n := Microfilm().FramesFor(102 * 1024); n != 3 {
		t.Fatalf("microfilm frames for 102KB = %d, paper reports 3 (capacity %d)", n, film)
	}
	if n := CinemaFilm().FramesFor(102 * 1024); n != 3 {
		t.Fatalf("cinema frames for 102KB = %d, paper reports 3 (capacity %d)", n, cine)
	}
}

func TestProfileFrameSizesMatchEquipment(t *testing.T) {
	// Frames must fit the physical device rasters from §4.
	mf := Microfilm()
	if mf.FrameW > 3888 || mf.FrameH > 5498 {
		t.Fatalf("microfilm frame %dx%d exceeds IMAGELINK 9600 raster", mf.FrameW, mf.FrameH)
	}
	cf := CinemaFilm()
	if cf.FrameW > 2048 || cf.FrameH > 1556 {
		t.Fatalf("cinema frame %dx%d exceeds 2K full aperture", cf.FrameW, cf.FrameH)
	}
	pp := Paper()
	if pp.FrameW > 4961 || pp.FrameH > 7016 {
		t.Fatalf("paper frame %dx%d exceeds A4 at 600 dpi", pp.FrameW, pp.FrameH)
	}
}

func TestReelModel(t *testing.T) {
	reel := MicrofilmReel()
	got := reel.Bytes()
	// §4: 1.3 GB in a single 66 m reel — within 15 %.
	if got < 1_100_000_000 || got > 1_500_000_000 {
		t.Fatalf("reel capacity %d outside 1.3GB ±15%%", got)
	}
	// §5: terabyte-scale data lakes need ~800 reels.
	reels := reel.ReelsFor(1_000_000_000_000)
	if reels < 600 || reels > 1000 {
		t.Fatalf("reels per TB = %d, paper reports ~800", reels)
	}
	if (ReelModel{}).Frames() != 0 {
		t.Fatal("zero pitch should yield zero frames")
	}
}

func TestScaleReport(t *testing.T) {
	rep := Scale(1_000_000_000_000)
	if rep.Reels < 600 || rep.Reels > 1000 {
		t.Fatalf("scale reels %d", rep.Reels)
	}
	if rep.Pages <= 0 {
		t.Fatal("pages")
	}
	// DNA: 1 TB at 1 EB/mm³ is a millionth of a mm³.
	if rep.DNAVolumeMM3 < 1e-7 || rep.DNAVolumeMM3 > 1e-5 {
		t.Fatalf("DNA volume %g mm³", rep.DNAVolumeMM3)
	}
	if rep.ReelShelfNote == "" {
		t.Fatal("empty shelf note")
	}
}

// TestFullProfileRoundTrips runs a payload through each full-size profile
// exactly as the §4 experiments do. These are the slowest unit tests in
// the repository; -short skips them (the bench harness covers them too).
func TestFullProfileRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size media round trips skipped in -short mode")
	}
	for _, p := range []Profile{CinemaFilm(), Microfilm()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := New(p)
			img, payload := encodeFrame(t, p, 11, 0.95)
			if err := m.Write([]*raster.Gray{img}); err != nil {
				t.Fatal(err)
			}
			scan, err := m.ScanFrame(0)
			if err != nil {
				t.Fatal(err)
			}
			got, hdr, st, err := mocoder.Decode(scan, p.Layout)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("payload mismatch")
			}
			if hdr.Kind != emblem.KindData {
				t.Fatal("header kind")
			}
			t.Logf("%s: %d bytes, %d bytes corrected, %d clock violations",
				p.Name, len(payload), st.BytesCorrected, st.ClockViolations)
		})
	}
}
