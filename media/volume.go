package media

import (
	"fmt"

	"microlonys/raster"
)

// Volume is an ordered set of Medium sheets — the multi-carrier archive of
// the paper's §5 arithmetic, where terabytes spread over thousands of film
// reels and paper pages. Each sheet is one physical carrier (a page bundle,
// a film reel) cut to a per-carrier frame capacity; frames are addressed
// globally in write order, `(sheet, index)` locally. A Volume with one
// unbounded sheet behaves exactly like a bare Medium, which remains the
// single-carrier special case throughout the API.
//
// Damage models extend from frames to carriers: Damage and Destroy act on
// one frame of one sheet, DestroySheet loses an entire carrier — the
// failure mode (a burnt reel, a lost folder) the archive-side group
// sharding exists for, since the place stage never lets an outer-code
// group straddle a sheet boundary.
type Volume struct {
	profile     Profile
	sheetFrames int // frames per sheet; 0 = one unbounded sheet
	catalog     bool
	index       bool
	sheets      []*Medium
}

// NewVolume returns an empty volume whose sheets hold at most sheetFrames
// frames each. sheetFrames <= 0 selects one unbounded sheet — the
// single-Medium layout every pre-Volume archive used.
func NewVolume(p Profile, sheetFrames int) *Volume {
	if sheetFrames < 0 {
		sheetFrames = 0
	}
	return &Volume{profile: p, sheetFrames: sheetFrames}
}

// VolumeOf wraps an existing medium as a single-sheet volume, so
// medium-level callers can use the volume-level pipelines unchanged.
func VolumeOf(m *Medium) *Volume {
	return &Volume{profile: m.Profile(), sheets: []*Medium{m}}
}

// Profile returns the volume's media profile.
func (v *Volume) Profile() Profile { return v.profile }

// SheetFrames returns the per-sheet frame capacity (0 = unbounded).
func (v *Volume) SheetFrames() int { return v.sheetFrames }

// Sheets returns the number of sheets written so far.
func (v *Volume) Sheets() int { return len(v.sheets) }

// EnableCatalog reserves the first frame of every sheet for a
// self-describing catalog emblem (internal/catalog). Each time a sheet is
// cut, a placeholder frame is appended in slot 0 — counted against the
// sheet capacity like any frame — and back-patched via FillCatalog once
// the whole volume inventory is known. Must be called before any writes.
func (v *Volume) EnableCatalog() error {
	if len(v.sheets) > 0 {
		return fmt.Errorf("media: EnableCatalog on a volume with %d written sheets", len(v.sheets))
	}
	if v.sheetFrames > 0 && v.sheetFrames <= v.reservedIf(v.index)+1-boolInt(v.catalog) {
		return fmt.Errorf("media: reserved slots would consume the whole %d-frame sheet", v.sheetFrames)
	}
	v.catalog = true
	return nil
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// CatalogEnabled reports whether sheets reserve a catalog slot.
func (v *Volume) CatalogEnabled() bool { return v.catalog }

// EnableIndex reserves one frame of every sheet for a selective-restore
// index emblem (internal/archindex) — slot 1 when a catalog slot is also
// reserved, slot 0 otherwise. Like the catalog slot it is counted against
// the sheet capacity and back-patched via FillIndex once placement is
// done. Must be called before any writes.
func (v *Volume) EnableIndex() error {
	if len(v.sheets) > 0 {
		return fmt.Errorf("media: EnableIndex on a volume with %d written sheets", len(v.sheets))
	}
	if v.sheetFrames > 0 && v.sheetFrames <= v.reservedIf(true) {
		return fmt.Errorf("media: reserved slots would consume the whole %d-frame sheet", v.sheetFrames)
	}
	v.index = true
	return nil
}

// IndexEnabled reports whether sheets reserve an index slot.
func (v *Volume) IndexEnabled() bool { return v.index }

// ReservedSlots returns how many leading frames of every sheet are
// reserved for out-of-band emblems (catalog, index).
func (v *Volume) ReservedSlots() int { return v.reservedIf(v.index) }

func (v *Volume) reservedIf(index bool) int {
	n := 0
	if v.catalog {
		n++
	}
	if index {
		n++
	}
	return n
}

// IndexSlot returns the local slot index frames occupy on every sheet.
func (v *Volume) IndexSlot() int {
	if v.catalog {
		return 1
	}
	return 0
}

// FillIndex back-patches sheet s's reserved index slot with the rendered
// index emblem. The written frame is byte-identical to one written in
// sequence at that slot (see Medium.WriteAt).
func (v *Volume) FillIndex(s int, img *raster.Gray) error {
	if !v.index {
		return fmt.Errorf("media: FillIndex on a volume without index slots")
	}
	m, err := v.Sheet(s)
	if err != nil {
		return err
	}
	return m.WriteAt(v.IndexSlot(), img)
}

// FillCatalog back-patches sheet s's reserved first frame with the
// rendered catalog emblem. The written frame is byte-identical to one
// written in sequence at that slot (see Medium.WriteAt).
func (v *Volume) FillCatalog(s int, img *raster.Gray) error {
	if !v.catalog {
		return fmt.Errorf("media: FillCatalog on a volume without catalog slots")
	}
	m, err := v.Sheet(s)
	if err != nil {
		return err
	}
	return m.WriteAt(0, img)
}

// cutSheet opens a fresh sheet, reserving its catalog and index slots when
// enabled. Each placeholder is a fogged frame (unreadable if never filled —
// the restore side treats it like any destroyed frame) replaced by
// FillCatalog/FillIndex after placement.
func (v *Volume) cutSheet() {
	m := New(v.profile)
	for r := v.ReservedSlots(); r > 0; r-- {
		fogged := raster.New(v.profile.FrameW, v.profile.FrameH)
		for j := range fogged.Pix {
			fogged.Pix[j] = 128
		}
		m.frames = append(m.frames, fogged)
	}
	v.sheets = append(v.sheets, m)
}

// Sheet returns sheet s.
func (v *Volume) Sheet(s int) (*Medium, error) {
	if s < 0 || s >= len(v.sheets) {
		return nil, fmt.Errorf("media: sheet %d out of range (%d sheets)", s, len(v.sheets))
	}
	return v.sheets[s], nil
}

// FrameCount returns the total frames across all sheets.
func (v *Volume) FrameCount() int {
	n := 0
	for _, s := range v.sheets {
		n += s.FrameCount()
	}
	return n
}

// Locate maps a global frame index to its (sheet, local index) address.
func (v *Volume) Locate(i int) (sheet, index int, err error) {
	if i >= 0 {
		rest := i
		for s, m := range v.sheets {
			if rest < m.FrameCount() {
				return s, rest, nil
			}
			rest -= m.FrameCount()
		}
	}
	return 0, 0, fmt.Errorf("media: frame %d out of range (%d frames)", i, v.FrameCount())
}

// SheetStart returns the global index of sheet s's first frame.
func (v *Volume) SheetStart(s int) (int, error) {
	if s < 0 || s >= len(v.sheets) {
		return 0, fmt.Errorf("media: sheet %d out of range (%d sheets)", s, len(v.sheets))
	}
	start := 0
	for _, m := range v.sheets[:s] {
		start += m.FrameCount()
	}
	return start, nil
}

// room returns the open sheet's remaining capacity, cutting the first
// sheet on an empty volume. With unbounded sheets the room is unlimited.
func (v *Volume) room() int {
	if len(v.sheets) == 0 {
		v.cutSheet()
	}
	if v.sheetFrames <= 0 {
		return int(^uint(0) >> 1) // unbounded
	}
	return v.sheetFrames - v.sheets[len(v.sheets)-1].FrameCount()
}

// Write appends frames in order, filling the open sheet and cutting a new
// one whenever it reaches the per-sheet capacity. Frame dimensions are
// validated against the profile by the underlying Medium.Write.
func (v *Volume) Write(frames []*raster.Gray) error {
	for len(frames) > 0 {
		room := v.room()
		if room == 0 {
			v.cutSheet()
			continue
		}
		n := len(frames)
		if n > room {
			n = room
		}
		if err := v.sheets[len(v.sheets)-1].Write(frames[:n]); err != nil {
			return err
		}
		frames = frames[n:]
	}
	return nil
}

// WriteGroup writes frames as one indivisible run on a single sheet,
// cutting a new sheet first if the open one lacks room. This is the
// carrier-loss guarantee of the place stage: an outer-code group never
// straddles a sheet, so losing a whole carrier costs only the groups on
// it.
func (v *Volume) WriteGroup(frames []*raster.Gray) error {
	usable := v.sheetFrames
	if usable > 0 {
		usable -= v.ReservedSlots() // leading slots belong to the catalog/index
	}
	if v.sheetFrames > 0 && len(frames) > usable {
		return fmt.Errorf("media: group of %d frames exceeds sheet capacity %d", len(frames), usable)
	}
	if v.room() < len(frames) {
		v.cutSheet()
	}
	return v.sheets[len(v.sheets)-1].Write(frames)
}

// Clone returns an independent volume: each sheet is cloned (sharing
// frame pixels — see Medium.Clone), so damaging or reprinting the clone
// never touches the original. One archive can feed many damage trials.
func (v *Volume) Clone() *Volume {
	out := &Volume{profile: v.profile, sheetFrames: v.sheetFrames, catalog: v.catalog, index: v.index}
	out.sheets = make([]*Medium, len(v.sheets))
	for i, m := range v.sheets {
		out.sheets[i] = m.Clone()
	}
	return out
}

// SetScanner replaces the scanner distortion model on the volume and
// every sheet — the campaign harness's severity and per-trial-seed hook.
func (v *Volume) SetScanner(d Distortions) {
	v.profile.Scanner = d
	for _, m := range v.sheets {
		m.SetScanner(d)
	}
}

// Reprint plays one generational copy of every sheet (see Medium.Reprint),
// preserving the sheet boundaries so carrier-level damage still maps one
// to one after the copy.
func (v *Volume) Reprint() (*Volume, error) {
	out := &Volume{profile: v.profile, sheetFrames: v.sheetFrames, catalog: v.catalog, index: v.index}
	out.sheets = make([]*Medium, len(v.sheets))
	for i, m := range v.sheets {
		rm, err := m.Reprint()
		if err != nil {
			return nil, err
		}
		out.sheets[i] = rm
	}
	return out, nil
}

// ScanFrame scans the frame at global index i. Each sheet seeds its
// scanner distortion by local frame index, so a single-sheet volume scans
// exactly like the bare medium it wraps.
func (v *Volume) ScanFrame(i int) (*raster.Gray, error) {
	s, idx, err := v.Locate(i)
	if err != nil {
		return nil, err
	}
	return v.sheets[s].ScanFrame(idx)
}

// ScanFrameInto is ScanFrame through the caller's scratch (see
// Medium.ScanFrameInto); the returned image aliases the scratch.
func (v *Volume) ScanFrameInto(s *ScanScratch, i int) (*raster.Gray, error) {
	sheet, idx, err := v.Locate(i)
	if err != nil {
		return nil, err
	}
	return v.sheets[sheet].ScanFrameInto(s, idx)
}

// Damage applies additional distortion to one frame of one sheet.
func (v *Volume) Damage(sheet, index int, d Distortions) error {
	m, err := v.Sheet(sheet)
	if err != nil {
		return err
	}
	return m.Damage(index, d)
}

// Destroy makes one frame of one sheet unreadable.
func (v *Volume) Destroy(sheet, index int) error {
	m, err := v.Sheet(sheet)
	if err != nil {
		return err
	}
	return m.Destroy(index)
}

// DestroySheet loses an entire carrier: every frame on the sheet becomes
// unreadable, the way a burnt reel or a lost page bundle takes all its
// emblems at once. The sheet still scans (fogged frames), so restoration
// sees the loss as decode failures to recover from — or report.
func (v *Volume) DestroySheet(sheet int) error {
	m, err := v.Sheet(sheet)
	if err != nil {
		return err
	}
	for i := 0; i < m.FrameCount(); i++ {
		if err := m.Destroy(i); err != nil {
			return err
		}
	}
	return nil
}
