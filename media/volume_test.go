package media

import (
	"testing"

	"microlonys/internal/mocoder"
	"microlonys/raster"
)

// blankFrames returns n profile-sized frames (solid mid-gray is fine for
// placement tests — only geometry matters here).
func blankFrames(p Profile, n int) []*raster.Gray {
	out := make([]*raster.Gray, n)
	for i := range out {
		img := raster.New(p.FrameW, p.FrameH)
		for j := range img.Pix {
			img.Pix[j] = 200
		}
		out[i] = img
	}
	return out
}

func TestVolumeWriteCutsSheets(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 4)
	if err := v.Write(blankFrames(p, 10)); err != nil {
		t.Fatal(err)
	}
	if v.Sheets() != 3 {
		t.Fatalf("sheets = %d, want 3 (4+4+2)", v.Sheets())
	}
	if v.FrameCount() != 10 {
		t.Fatalf("frames = %d, want 10", v.FrameCount())
	}
	wants := []int{4, 4, 2}
	for s, want := range wants {
		m, err := v.Sheet(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.FrameCount() != want {
			t.Fatalf("sheet %d holds %d frames, want %d", s, m.FrameCount(), want)
		}
	}
	if _, err := v.Sheet(3); err == nil {
		t.Fatal("out-of-range sheet accepted")
	}
}

func TestVolumeUnboundedSingleSheet(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 0)
	if err := v.Write(blankFrames(p, 25)); err != nil {
		t.Fatal(err)
	}
	if v.Sheets() != 1 || v.FrameCount() != 25 {
		t.Fatalf("sheets=%d frames=%d, want one sheet of 25", v.Sheets(), v.FrameCount())
	}
}

func TestVolumeWriteGroupNeverStraddles(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 5)
	// 3 frames fit sheet 0; the next group of 4 would straddle, so it
	// must open sheet 1 whole.
	if err := v.WriteGroup(blankFrames(p, 3)); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteGroup(blankFrames(p, 4)); err != nil {
		t.Fatal(err)
	}
	if v.Sheets() != 2 {
		t.Fatalf("sheets = %d, want 2", v.Sheets())
	}
	s0, _ := v.Sheet(0)
	s1, _ := v.Sheet(1)
	if s0.FrameCount() != 3 || s1.FrameCount() != 4 {
		t.Fatalf("sheet frames = %d,%d; want 3,4", s0.FrameCount(), s1.FrameCount())
	}
	// A group larger than a whole sheet can never be placed.
	if err := v.WriteGroup(blankFrames(p, 6)); err == nil {
		t.Fatal("oversized group accepted")
	}
}

func TestVolumeLocateAndScan(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 3)
	if err := v.Write(blankFrames(p, 7)); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ global, sheet, index int }{
		{0, 0, 0}, {2, 0, 2}, {3, 1, 0}, {5, 1, 2}, {6, 2, 0},
	}
	for _, c := range cases {
		s, i, err := v.Locate(c.global)
		if err != nil {
			t.Fatal(err)
		}
		if s != c.sheet || i != c.index {
			t.Fatalf("Locate(%d) = (%d,%d), want (%d,%d)", c.global, s, i, c.sheet, c.index)
		}
	}
	if _, _, err := v.Locate(7); err == nil {
		t.Fatal("out-of-range frame located")
	}
	if _, _, err := v.Locate(-1); err == nil {
		t.Fatal("negative frame located")
	}
	for s, want := range []int{0, 3, 6} {
		got, err := v.SheetStart(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("SheetStart(%d) = %d, want %d", s, got, want)
		}
	}
	if _, err := v.ScanFrame(4); err != nil {
		t.Fatalf("global scan: %v", err)
	}
	if _, err := v.ScanFrame(7); err == nil {
		t.Fatal("out-of-range scan accepted")
	}
}

// TestVolumeSingleSheetScansLikeMedium pins the Medium-compatibility
// contract: a single-sheet volume and a bare medium written with the same
// frames scan back byte-identically (scanner distortion seeds by local
// frame index).
func TestVolumeSingleSheetScansLikeMedium(t *testing.T) {
	p := tinyProfile()
	img, _ := encodeFrame(t, p, 9, 0.7)
	frames := []*raster.Gray{img, img.Clone(), img.Clone()}

	m := New(p)
	if err := m.Write(frames); err != nil {
		t.Fatal(err)
	}
	v := NewVolume(p, 0)
	if err := v.Write([]*raster.Gray{img, img.Clone(), img.Clone()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a, err := m.ScanFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := v.ScanFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(a, b) {
			t.Fatalf("frame %d: volume scan differs from medium scan", i)
		}
	}
}

func TestVolumeOfWrapsExistingMedium(t *testing.T) {
	p := tinyProfile()
	m := New(p)
	if err := m.Write(blankFrames(p, 2)); err != nil {
		t.Fatal(err)
	}
	v := VolumeOf(m)
	if v.Sheets() != 1 || v.FrameCount() != 2 {
		t.Fatalf("wrap: sheets=%d frames=%d", v.Sheets(), v.FrameCount())
	}
	s, err := v.Sheet(0)
	if err != nil || s != m {
		t.Fatal("wrapped volume must alias the medium")
	}
	if v.Profile().Name != p.Name {
		t.Fatal("profile not carried through")
	}
}

func TestVolumeRejectsWrongFrameSize(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 4)
	if err := v.Write([]*raster.Gray{raster.New(10, 10)}); err == nil {
		t.Fatal("wrong frame size accepted by volume write")
	}
	if err := v.WriteGroup([]*raster.Gray{raster.New(10, 10)}); err == nil {
		t.Fatal("wrong frame size accepted by group write")
	}
}

func TestVolumeDamageDestroyAddressing(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 2)
	img, _ := encodeFrame(t, p, 11, 0.6)
	frames := []*raster.Gray{img, img.Clone(), img.Clone(), img.Clone()}
	if err := v.Write(frames); err != nil {
		t.Fatal(err)
	}
	if err := v.Damage(1, 0, Distortions{Seed: 5, DustSpecks: 4}); err != nil {
		t.Fatal(err)
	}
	if err := v.Destroy(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := v.Destroy(2, 0); err == nil {
		t.Fatal("destroy on missing sheet accepted")
	}
	if err := v.Damage(0, 5, Distortions{}); err == nil {
		t.Fatal("damage on missing frame accepted")
	}
}

func TestVolumeDestroySheet(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 2)
	img, payload := encodeFrame(t, p, 12, 0.6)
	if err := v.Write([]*raster.Gray{img, img.Clone(), img.Clone(), img.Clone()}); err != nil {
		t.Fatal(err)
	}
	if err := v.DestroySheet(0); err != nil {
		t.Fatal(err)
	}
	if err := v.DestroySheet(9); err == nil {
		t.Fatal("destroying a missing sheet accepted")
	}
	// Sheet 0's frames still scan (fogged) but carry no payload; sheet 1
	// is untouched and still decodes.
	for i := 0; i < 2; i++ {
		scan, err := v.ScanFrame(i)
		if err != nil {
			t.Fatalf("destroyed frame must still scan: %v", err)
		}
		if _, _, _, err := mocoder.Decode(scan, p.Layout); err == nil {
			t.Fatalf("frame %d decoded after sheet destruction", i)
		}
	}
	scan, err := v.ScanFrame(2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := mocoder.Decode(scan, p.Layout)
	if err != nil {
		t.Fatalf("surviving sheet frame: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatal("surviving payload mismatch")
	}
}
