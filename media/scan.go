package media

import (
	"fmt"
	"math/rand"

	"microlonys/raster"
)

// ScanScratch holds the image buffers ScanFrameInto renders through: the
// returned scan, a staging buffer for the resample source, the blur
// intermediate, and the scanner-jitter walk. One scratch belongs to one
// scanning goroutine (the restore pipeline threads one per worker); a
// zero value is ready to use and sizes itself to the frames it sees.
type ScanScratch struct {
	out, stage, blur raster.Gray
	jitter           []float64
}

// ScanFrameInto is ScanFrame through the caller's scratch: the resample,
// distortion and threshold stages render into the scratch images instead
// of allocating two or three full-resolution frames per scan. The
// returned image aliases the scratch and is valid until the next call;
// its pixels are byte-identical to ScanFrame's
// (TestScanFrameIntoMatchesScanFrame).
func (m *Medium) ScanFrameInto(s *ScanScratch, i int) (*raster.Gray, error) {
	if i < 0 || i >= len(m.frames) {
		return nil, fmt.Errorf("media: frame %d out of range", i)
	}
	cur := m.frames[i] // read-only: stored frames are never mutated here
	if m.profile.ScanW != m.profile.FrameW || m.profile.ScanH != m.profile.FrameH {
		cur.ResizeInto(&s.stage, m.profile.ScanW, m.profile.ScanH)
		cur = &s.stage
	}
	d := m.profile.Scanner
	d.Seed = scanSeed(d.Seed, i)
	out := d.applyInto(s, cur)
	if m.profile.ScanBitonal {
		out.ThresholdInto(out, out.OtsuThreshold())
	}
	return out, nil
}

// applyInto is Apply rendering into the scratch: the result always lands
// in s.out (never aliasing src), intermediate stages ping-pong through
// the scratch buffers, and the in-place stages mutate s.out directly. The
// stage order, the random-number consumption and the per-stage arithmetic
// are shared with Apply (geometryRowMapper, photometryInPlace,
// damageInPlace), so the output is bit-identical.
func (d Distortions) applyInto(s *ScanScratch, src *raster.Gray) *raster.Gray {
	if d.IsZero() {
		return src.CopyInto(&s.out)
	}
	rng := rand.New(rand.NewSource(d.Seed))
	cur := src
	if d.RotationDeg != 0 || d.BarrelK != 0 || d.RowJitterPx != 0 {
		s.jitter = rowJitterInto(rng, s.jitter, cur.H, d.RowJitterPx)
		d.warpGeometry(cur, &s.out, s.jitter)
		cur = &s.out
	}
	if d.BlurRadius > 0 {
		// The blur may write over its own source (cur can already be
		// s.out); the horizontal pass consumes it into s.blur first.
		if d.FastSim {
			cur = cur.BoxBlurApproxInto(&s.out, &s.blur, d.BlurRadius)
		} else {
			cur = cur.BoxBlurInto(&s.out, &s.blur, d.BlurRadius)
		}
	}
	if cur != &s.out {
		cur = cur.CopyInto(&s.out) // own the pixels before mutating stages
	}
	if d.Fade > 0 || d.Gradient > 0 || d.Noise > 0 {
		if d.FastSim && d.Noise > 0 {
			d.photometryFastInPlace(cur, rng)
		} else {
			d.photometryInPlace(cur, rng)
		}
	}
	if d.DustSpecks > 0 || d.Scratches > 0 {
		d.damageInPlace(cur, rng)
	}
	return cur
}
