package media

import (
	"fmt"

	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/raster"
)

// Profile describes one analog medium: its frame geometry, the emblem
// layout used on it, and the distortion models of its writer and scanner.
// The built-in profiles mirror the equipment of the paper's evaluation.
type Profile struct {
	Name string

	// FrameW/H is the written frame in pixels; ScanW/H is the resolution
	// the scanner captures it back at.
	FrameW, FrameH int
	ScanW, ScanH   int

	// WriteBitonal quantises frames to pure black/white at write time
	// (laser printers and microfilm archive writers are bitonal devices);
	// ScanBitonal models scanners that deliver bitonal output.
	WriteBitonal bool
	ScanBitonal  bool

	Layout emblem.Layout

	// Writer distortions act once when the frame is written; Scanner
	// distortions act on every scan.
	Writer  Distortions
	Scanner Distortions
}

// FrameCapacity returns the payload bytes one emblem frame carries.
func (p Profile) FrameCapacity() int { return mocoder.Capacity(p.Layout) }

// FramesFor returns how many emblem frames a payload of n bytes needs
// (before outer-code parity).
func (p Profile) FramesFor(n int) int {
	c := p.FrameCapacity()
	return (n + c - 1) / c
}

// Paper models the paper experiment of §4: A4 pages printed at 600 dpi on
// a laser printer (4800×6800 usable pixels after margins; 6 px modules)
// and scanned back at the same resolution in grayscale.
func Paper() Profile {
	l := emblem.Layout{DataW: 790, DataH: 1123, PxPerModule: 6}
	return Profile{
		Name:   "paper-600dpi-a4",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		WriteBitonal: true,
		Layout:       l,
		Scanner: Distortions{
			RotationDeg: 0.25,
			RowJitterPx: 1.2,
			BlurRadius:  1,
			Fade:        0.08,
			Gradient:    0.3,
			Noise:       5,
			DustSpecks:  40,
		},
	}
}

// Microfilm models the §4 microfilm experiment: an archive writer exposing
// 3888×5498 bitonal frames on 16 mm film (5 px modules), scanned back
// bitonal at roughly 5000×7000 — with film fading, dust and scratches.
func Microfilm() Profile {
	l := emblem.Layout{DataW: 767, DataH: 1089, PxPerModule: 5}
	return Profile{
		Name:   "microfilm-16mm",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: 5000, ScanH: 7072,
		WriteBitonal: true,
		ScanBitonal:  true,
		Layout:       l,
		Scanner: Distortions{
			RotationDeg: 0.2,
			BarrelK:     0.0015,
			RowJitterPx: 1.0,
			BlurRadius:  1,
			Fade:        0.12,
			Noise:       4,
			DustSpecks:  60,
			Scratches:   2,
		},
	}
}

// CinemaFilm models the §4 cinema-film experiment: an Arrilaser-style
// recorder shooting 2K full-aperture frames (2048×1556, 2 px modules),
// scanned in grayscale at 4K (4096×3120). Cinema scanners produce the
// sharpest, lowest-distortion images of the three media.
func CinemaFilm() Profile {
	l := emblem.Layout{DataW: 1014, DataH: 768, PxPerModule: 2}
	return Profile{
		Name:   "cinema-35mm-2k",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: 4096, ScanH: 3120,
		Layout: l,
		Writer: Distortions{BlurRadius: 0},
		Scanner: Distortions{
			RotationDeg: 0.1,
			RowJitterPx: 0.4,
			BlurRadius:  1,
			Fade:        0.05,
			Noise:       3,
			DustSpecks:  10,
		},
	}
}

// Tiny is a small development profile: the same pipeline and distortion
// model as the real media at a fraction of the pixels, so demos, smoke
// tests and service harnesses run in milliseconds per frame. Not
// calibrated against any physical medium — never use it for capacity or
// recovery studies.
func Tiny() Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return Profile{
		Name:   "tiny-dev",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: Distortions{
			RotationDeg: 0.15,
			BlurRadius:  1,
			Noise:       3,
			DustSpecks:  4,
		},
	}
}

// Medium is a simulated physical artifact: a stack of written frames that
// can be damaged, destroyed and scanned back.
type Medium struct {
	profile Profile
	frames  []*raster.Gray
}

// New returns an empty medium for the profile.
func New(p Profile) *Medium { return &Medium{profile: p} }

// Profile returns the medium's profile.
func (m *Medium) Profile() Profile { return m.profile }

// Write appends frames to the medium, applying writer-side quantisation
// and distortion. Frames must match the profile's frame size.
func (m *Medium) Write(frames []*raster.Gray) error {
	writerZero := m.profile.Writer.IsZero()
	for i, f := range frames {
		if f.W != m.profile.FrameW || f.H != m.profile.FrameH {
			return fmt.Errorf("media: frame %d is %dx%d, profile %q wants %dx%d",
				i, f.W, f.H, m.profile.Name, m.profile.FrameW, m.profile.FrameH)
		}
		var out *raster.Gray
		switch {
		case writerZero && m.profile.WriteBitonal:
			// No writer distortion (all built-in profiles): quantisation
			// allocates the stored frame itself, so the distortion pass's
			// intermediate clone is skipped. Threshold(Clone(f)) and
			// Threshold(f) are the same bytes.
			out = f.Threshold(f.OtsuThreshold())
		case writerZero:
			out = f.Clone() // the medium owns its pixels
		default:
			d := m.profile.Writer
			d.Seed = int64(len(m.frames))*7919 + 1
			out = d.Apply(f)
			if m.profile.WriteBitonal {
				out = out.Threshold(out.OtsuThreshold())
			}
		}
		m.frames = append(m.frames, out)
	}
	return nil
}

// WriteAt replaces frame i with a freshly written image, applying the
// same writer-side quantisation and distortion Write would have at that
// position (the writer seed depends only on the frame index). This is
// the catalog back-patch hook: Volume reserves the first slot of each
// sheet when the sheet is cut and fills it here once the whole volume
// inventory is known — the replacement is byte-identical to having
// written the image in sequence.
func (m *Medium) WriteAt(i int, f *raster.Gray) error {
	if i < 0 || i >= len(m.frames) {
		return fmt.Errorf("media: frame %d out of range", i)
	}
	if f.W != m.profile.FrameW || f.H != m.profile.FrameH {
		return fmt.Errorf("media: frame is %dx%d, profile %q wants %dx%d",
			f.W, f.H, m.profile.Name, m.profile.FrameW, m.profile.FrameH)
	}
	var out *raster.Gray
	switch {
	case m.profile.Writer.IsZero() && m.profile.WriteBitonal:
		out = f.Threshold(f.OtsuThreshold())
	case m.profile.Writer.IsZero():
		out = f.Clone()
	default:
		d := m.profile.Writer
		d.Seed = int64(i)*7919 + 1
		out = d.Apply(f)
		if m.profile.WriteBitonal {
			out = out.Threshold(out.OtsuThreshold())
		}
	}
	m.frames[i] = out
	return nil
}

// Truncate discards every frame from index n on — the fault model of a
// scan run that stopped early (jammed feeder, cut reel). Truncating
// beyond the end is a no-op.
func (m *Medium) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n < len(m.frames) {
		m.frames = m.frames[:n]
	}
}

// FrameCount returns the number of written frames.
func (m *Medium) FrameCount() int { return len(m.frames) }

// Clone returns an independent medium holding the same frames. The clone
// shares frame pixel buffers with the original — safe because every
// mutating API (Write, Damage, Destroy) replaces a frame's image rather
// than editing its pixels in place — so damaging the clone never touches
// the original. The damage-campaign harness clones one archived medium
// per randomized trial instead of re-archiving.
func (m *Medium) Clone() *Medium {
	return &Medium{profile: m.profile, frames: append([]*raster.Gray(nil), m.frames...)}
}

// SetScanner replaces the medium's scanner distortion model — the
// campaign harness's severity and per-trial-seed hook. The stored frames
// are untouched; only future scans see the new model.
func (m *Medium) SetScanner(d Distortions) { m.profile.Scanner = d }

// Reprint plays one generational copy (scan→print→scan loses quality each
// round): every frame is scanned through the current scanner model,
// resampled back to the profile's frame geometry and written — with the
// writer's quantisation and distortion — onto a fresh medium. Chaining
// Reprint models the photocopy-of-a-photocopy degradation the campaign
// harness's generations axis sweeps; vary the scanner Seed between rounds
// so each generation draws fresh noise.
func (m *Medium) Reprint() (*Medium, error) {
	out := New(m.profile)
	buf := make([]*raster.Gray, 1)
	for i := range m.frames {
		img, err := m.ScanFrame(i)
		if err != nil {
			return nil, err
		}
		if img.W != m.profile.FrameW || img.H != m.profile.FrameH {
			img = img.Resize(m.profile.FrameW, m.profile.FrameH)
		}
		buf[0] = img
		if err := out.Write(buf); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scanSeed derives the per-frame scanner distortion seed. A zero profile
// seed — every built-in profile — reproduces the historical per-index
// stream bit-for-bit; a non-zero Scanner.Seed (the campaign harness's
// randomized-trial hook) mixes into the per-frame value so each trial
// draws an independent but deterministic noise pattern.
func scanSeed(base int64, i int) int64 {
	s := int64(i)*104729 + 7
	if base != 0 {
		s ^= base * -7046029254386353131 // odd 64-bit mixing constant
		s *= 2685821657736338717
	}
	return s
}

// Damage applies additional distortion to a stored frame, modelling decay
// or mishandling after writing.
func (m *Medium) Damage(i int, d Distortions) error {
	if i < 0 || i >= len(m.frames) {
		return fmt.Errorf("media: frame %d out of range", i)
	}
	m.frames[i] = d.Apply(m.frames[i])
	return nil
}

// Destroy makes a frame unreadable altogether (torn page, burnt frame) —
// the whole-emblem failure the outer code exists for.
func (m *Medium) Destroy(i int) error {
	if i < 0 || i >= len(m.frames) {
		return fmt.Errorf("media: frame %d out of range", i)
	}
	fogged := raster.New(m.profile.FrameW, m.profile.FrameH)
	for j := range fogged.Pix {
		fogged.Pix[j] = 128
	}
	m.frames[i] = fogged
	return nil
}

// ScanFrame captures one frame at the scanner's resolution and applies
// the scanner's distortion model.
func (m *Medium) ScanFrame(i int) (*raster.Gray, error) {
	if i < 0 || i >= len(m.frames) {
		return nil, fmt.Errorf("media: frame %d out of range", i)
	}
	img := m.frames[i]
	if m.profile.ScanW != m.profile.FrameW || m.profile.ScanH != m.profile.FrameH {
		img = img.Resize(m.profile.ScanW, m.profile.ScanH)
	}
	d := m.profile.Scanner
	d.Seed = scanSeed(d.Seed, i)
	switch {
	case !d.IsZero():
		img = d.Apply(img)
	case img == m.frames[i]:
		// Distortion-free scanner at native resolution: Apply would only
		// clone — do just that, so the caller never sees stored pixels.
		img = img.Clone()
	}
	if m.profile.ScanBitonal {
		img = img.Threshold(img.OtsuThreshold())
	}
	return img, nil
}

// Scan captures every frame in order.
func (m *Medium) Scan() ([]*raster.Gray, error) {
	out := make([]*raster.Gray, len(m.frames))
	for i := range m.frames {
		img, err := m.ScanFrame(i)
		if err != nil {
			return nil, err
		}
		out[i] = img
	}
	return out, nil
}
