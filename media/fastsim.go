package media

// The fast-sim scanner profile (Distortions.FastSim): the expensive
// per-pixel stages of the reference scanner model replaced by coarser
// approximations that preserve the model's statistics but not its bytes.
// Geometry and blur live in package raster (WarpRowsNearestInto,
// BoxBlurApproxInto); this file holds the photometry stage, whose cost in
// the reference model is dominated by one Gaussian draw per pixel.
//
// The contract is statistical, not bitwise: the campaign harness's
// recovery curves under FastSim must stay inside the regression gate's
// binomial tolerance bands of the committed reference curves
// (`campaign -fastsim -diff CAMPAIGN.json`). Determinism per Seed still
// holds — the stream table is fixed and the per-frame offset comes from
// the frame's seeded rng.

import (
	"math/rand"
	"sync"

	"microlonys/raster"
)

// noiseStreamBits sizes the shared unit-normal table: 64 Ki samples is
// several frames' worth at the built-in profiles' scan resolutions, so
// consecutive pixels never see a short cycle within one frame row.
const noiseStreamBits = 16

var (
	noiseStreamOnce sync.Once
	noiseStreamTab  []float64
)

// noiseStream returns the shared table of pre-generated unit normals.
// The table is built once per process from a fixed seed — it is part of
// the fast-sim model's definition, not of any frame's randomness.
func noiseStream() []float64 {
	noiseStreamOnce.Do(func() {
		rng := rand.New(rand.NewSource(0x46535453))
		tab := make([]float64, 1<<noiseStreamBits)
		for i := range tab {
			tab[i] = rng.NormFloat64()
		}
		noiseStreamTab = tab
	})
	return noiseStreamTab
}

// photometryFastInPlace is the fast-sim photometry stage: fade and
// gradient arithmetic are identical to photometryInPlace, but the noise
// term reads the shared pre-generated stream starting at a random
// per-frame offset (one rng draw per frame) instead of drawing one
// Gaussian per pixel. Callers route here only when Noise > 0 — with no
// noise the reference stage is already cheap and exact.
func (d Distortions) photometryFastInPlace(out *raster.Gray, rng *rand.Rand) {
	stream := noiseStream()
	mask := len(stream) - 1
	idx := int(rng.Int63()) & mask
	noise := d.Noise
	if d.Fade <= 0 && d.Gradient == 0 {
		for i := range out.Pix {
			out.Pix[i] = clamp(float64(out.Pix[i]) + stream[idx]*noise)
			idx = (idx + 1) & mask
		}
		return
	}
	fade := 1 - d.Fade
	for y := 0; y < out.H; y++ {
		grad := d.Gradient * 60 * (float64(y)/float64(out.H) - 0.5)
		row := out.Pix[y*out.W : (y+1)*out.W]
		for x := range row {
			v := float64(row[x])
			if d.Fade > 0 {
				v = 128 + (v-128)*fade
			}
			v += grad + stream[idx]*noise
			idx = (idx + 1) & mask
			row[x] = clamp(v)
		}
	}
}
