package media

import (
	"bytes"
	"strings"
	"testing"

	"microlonys/raster"
)

func testFrame(p Profile, fill byte) *raster.Gray {
	f := raster.New(p.FrameW, p.FrameH)
	for i := range f.Pix {
		f.Pix[i] = fill ^ byte(i)
	}
	return f
}

// TestWriteAtMatchesSequentialWrite pins the back-patch contract: a frame
// replaced via WriteAt is byte-identical to the same frame written in
// sequence at that slot, because the writer seed depends only on the
// index.
func TestWriteAtMatchesSequentialWrite(t *testing.T) {
	p := Paper()
	p.Writer = Distortions{BlurRadius: 1, Noise: 2} // force the seeded path
	frames := []*raster.Gray{testFrame(p, 0x00), testFrame(p, 0x55), testFrame(p, 0xAA)}

	seq := New(p)
	if err := seq.Write(frames); err != nil {
		t.Fatalf("Write: %v", err)
	}

	patched := New(p)
	if err := patched.Write(frames); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := patched.WriteAt(1, frames[1]); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	for i := range frames {
		if !bytes.Equal(seq.frames[i].Pix, patched.frames[i].Pix) {
			t.Fatalf("frame %d diverged after WriteAt back-patch", i)
		}
	}

	if err := patched.WriteAt(3, frames[0]); err == nil {
		t.Fatal("WriteAt accepted an out-of-range index")
	}
	if err := patched.WriteAt(0, raster.New(1, 1)); err == nil {
		t.Fatal("WriteAt accepted a mis-sized frame")
	}
}

func TestTruncate(t *testing.T) {
	p := Paper()
	m := New(p)
	if err := m.Write([]*raster.Gray{testFrame(p, 1), testFrame(p, 2), testFrame(p, 3)}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	m.Truncate(5)
	if m.FrameCount() != 3 {
		t.Fatalf("Truncate beyond end changed count to %d", m.FrameCount())
	}
	m.Truncate(1)
	if m.FrameCount() != 1 {
		t.Fatalf("Truncate(1) left %d frames", m.FrameCount())
	}
	m.Truncate(-1)
	if m.FrameCount() != 0 {
		t.Fatalf("Truncate(-1) left %d frames", m.FrameCount())
	}
}

// TestVolumeCatalogReservation pins the placement invariants: slot 0 of
// every sheet is reserved, groups never use it, capacity accounting
// includes it, and FillCatalog back-patches exactly that slot.
func TestVolumeCatalogReservation(t *testing.T) {
	p := Paper()
	v := NewVolume(p, 5)
	if err := v.EnableCatalog(); err != nil {
		t.Fatalf("EnableCatalog: %v", err)
	}
	if !v.CatalogEnabled() {
		t.Fatal("CatalogEnabled false after EnableCatalog")
	}

	group := []*raster.Gray{testFrame(p, 1), testFrame(p, 2), testFrame(p, 3), testFrame(p, 4)}
	for i := 0; i < 3; i++ {
		if err := v.WriteGroup(group); err != nil {
			t.Fatalf("WriteGroup %d: %v", i, err)
		}
	}
	// 4-frame groups + 1 catalog slot exactly fill each 5-frame sheet.
	if v.Sheets() != 3 {
		t.Fatalf("got %d sheets, want 3", v.Sheets())
	}
	for s := 0; s < v.Sheets(); s++ {
		m, _ := v.Sheet(s)
		if m.FrameCount() != 5 {
			t.Fatalf("sheet %d holds %d frames, want 5", s, m.FrameCount())
		}
		start, _ := v.SheetStart(s)
		if start != s*5 {
			t.Fatalf("sheet %d starts at %d, want %d", s, start, s*5)
		}
	}

	// A group of 5 no longer fits a 5-frame sheet once slot 0 is reserved.
	five := append(append([]*raster.Gray(nil), group...), testFrame(p, 5))
	if err := v.WriteGroup(five); err == nil || !strings.Contains(err.Error(), "exceeds sheet capacity") {
		t.Fatalf("WriteGroup of sheet-filling group: err %v, want capacity error", err)
	}

	cat := testFrame(p, 0x3C)
	if err := v.FillCatalog(1, cat); err != nil {
		t.Fatalf("FillCatalog: %v", err)
	}
	m, _ := v.Sheet(1)
	want := New(p)
	if err := want.Write([]*raster.Gray{cat}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(m.frames[0].Pix, want.frames[0].Pix) {
		t.Fatal("FillCatalog slot diverged from a sequential slot-0 write")
	}

	// The flag survives cloning; a written volume rejects late enablement.
	if !v.Clone().CatalogEnabled() {
		t.Fatal("Clone dropped the catalog flag")
	}
	if err := v.EnableCatalog(); err == nil {
		t.Fatal("EnableCatalog accepted a written volume")
	}
	if err := NewVolume(p, 1).EnableCatalog(); err == nil {
		t.Fatal("EnableCatalog accepted a 1-frame sheet capacity")
	}
	if err := NewVolume(p, 5).FillCatalog(0, cat); err == nil {
		t.Fatal("FillCatalog accepted a catalog-free volume")
	}
}
