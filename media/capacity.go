package media

import "fmt"

// Capacity models for §4 ("Micr'Olonys is capable of storing 1.3GB in a
// single 66 meter reel") and the §5 scale arithmetic (800 reels per
// terabyte; DNA at 1 EB per mm³ as the contrasting future medium).

// ReelModel is the analytic capacity model of a film reel.
type ReelModel struct {
	LengthMeters float64
	FramePitchMM float64 // film advanced per frame
	FrameBytes   int     // payload per frame
}

// Frames returns the number of frames a reel holds.
func (r ReelModel) Frames() int {
	if r.FramePitchMM <= 0 {
		return 0
	}
	return int(r.LengthMeters * 1000 / r.FramePitchMM)
}

// Bytes returns the reel's payload capacity.
func (r ReelModel) Bytes() int64 { return int64(r.Frames()) * int64(r.FrameBytes) }

// MicrofilmReel returns the 66 m, 16 mm reel model of the paper with this
// implementation's frame capacity.
func MicrofilmReel() ReelModel {
	return ReelModel{
		LengthMeters: 66,
		FramePitchMM: 2.31,
		FrameBytes:   Microfilm().FrameCapacity(),
	}
}

// ReelsFor returns the number of reels needed for total payload bytes.
func (r ReelModel) ReelsFor(total int64) int {
	per := r.Bytes()
	if per <= 0 {
		return 0
	}
	n := total / per
	if total%per != 0 {
		n++
	}
	return int(n)
}

// PageModel is the analytic capacity model of printed archival paper.
type PageModel struct {
	PageBytes int
}

// PaperPage returns the A4/600 dpi page model ("a density of 50KB per
// page" in the paper; this implementation's exact figure comes from the
// layout arithmetic).
func PaperPage() PageModel { return PageModel{PageBytes: Paper().FrameCapacity()} }

// PagesFor returns pages needed for total bytes.
func (p PageModel) PagesFor(total int64) int {
	if p.PageBytes <= 0 {
		return 0
	}
	n := total / int64(p.PageBytes)
	if total%int64(p.PageBytes) != 0 {
		n++
	}
	return int(n)
}

// DNADensityEBPerMM3 is the theoretical density of synthetic DNA quoted in
// §5 for contrast: one exabyte per cubic millimetre.
const DNADensityEBPerMM3 = 1.0

// ScaleReport summarises the §5 arithmetic for a dataset size.
type ScaleReport struct {
	TotalBytes    int64
	ReelCapacity  int64
	Reels         int
	Pages         int
	DNAVolumeMM3  float64
	ReelShelfNote string
}

// Scale computes the §5 comparison for a dataset of total bytes.
func Scale(total int64) ScaleReport {
	reel := MicrofilmReel()
	rep := ScaleReport{
		TotalBytes:   total,
		ReelCapacity: reel.Bytes(),
		Reels:        reel.ReelsFor(total),
		Pages:        PaperPage().PagesFor(total),
		DNAVolumeMM3: float64(total) / (DNADensityEBPerMM3 * 1e18),
	}
	rep.ReelShelfNote = fmt.Sprintf("%d reels of %.0f m film", rep.Reels, reel.LengthMeters)
	return rep
}
