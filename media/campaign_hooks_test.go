package media

import (
	"math"
	"testing"

	"microlonys/raster"
)

// The damage-campaign hooks: Distortions.Scale, Medium/Volume Clone,
// SetScanner, Reprint, and the per-trial scanner seed mixing.

func TestScaleIdentityAndZero(t *testing.T) {
	d := Paper().Scanner
	d.Seed = 42
	if got := d.Scale(1); got != d {
		t.Fatalf("Scale(1) changed the model: %+v vs %+v", got, d)
	}
	if z := d.Scale(0); !z.IsZero() {
		t.Fatalf("Scale(0) is not the zero model: %+v", z)
	}
	if z := d.Scale(-3); !z.IsZero() {
		t.Fatal("negative scale must clamp to zero severity")
	}
}

func TestScaleProportionsAndClamps(t *testing.T) {
	d := Distortions{RotationDeg: 0.2, BarrelK: 0.001, RowJitterPx: 1.0,
		BlurRadius: 1, Fade: 0.6, Gradient: 0.3, Noise: 4, DustSpecks: 10,
		DustMaxRadius: 5, Scratches: 2, Seed: 9}
	s := d.Scale(2)
	if s.RotationDeg != 0.4 || s.RowJitterPx != 2.0 || s.Noise != 8 ||
		s.DustSpecks != 20 || s.Scratches != 4 || s.BlurRadius != 2 {
		t.Fatalf("Scale(2): %+v", s)
	}
	if s.Fade != 1 {
		t.Fatalf("Fade must clamp at 1, got %v", s.Fade)
	}
	if s.Seed != 9 || s.DustMaxRadius != 5 {
		t.Fatal("Seed and DustMaxRadius must pass through unscaled")
	}
	if half := d.Scale(0.5); half.BlurRadius != 1 || half.DustSpecks != 5 {
		t.Fatalf("Scale(0.5) counts: %+v", half)
	}
}

// Writing Scanner.Seed must change every frame's noise draw while staying
// deterministic, and ScanFrame / ScanFrameInto must agree under it (both
// paths share scanSeed).
func TestScannerSeedHook(t *testing.T) {
	p := tinyProfile()
	m := New(p)
	img, _ := encodeFrame(t, p, 1, 0.5)
	if err := m.Write([]*raster.Gray{img}); err != nil {
		t.Fatal(err)
	}

	base, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}

	d := p.Scanner
	d.Seed = 1234
	m.SetScanner(d)
	a, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if raster.Equal(base, a) {
		t.Fatal("non-zero scanner seed produced the zero-seed noise")
	}
	b, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(a, b) {
		t.Fatal("same scanner seed produced different scans")
	}
	var sc ScanScratch
	c, err := m.ScanFrameInto(&sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(a, c) {
		t.Fatal("ScanFrameInto diverged from ScanFrame under a trial seed")
	}

	d.Seed = 1235
	m.SetScanner(d)
	e, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if raster.Equal(a, e) {
		t.Fatal("different scanner seeds produced identical noise")
	}
}

func TestCloneIsolation(t *testing.T) {
	p := tinyProfile()
	m := New(p)
	img, _ := encodeFrame(t, p, 2, 0.5)
	if err := m.Write([]*raster.Gray{img, img.Clone()}); err != nil {
		t.Fatal(err)
	}
	before, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}

	c := m.Clone()
	if err := c.Destroy(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Damage(1, Distortions{DustSpecks: 50, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	c.SetScanner(Distortions{}) // distortion-free scanner on the clone only

	after, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(before, after) {
		t.Fatal("damaging the clone mutated the original")
	}
	if m.Profile().Scanner.IsZero() {
		t.Fatal("SetScanner on the clone reached the original's profile")
	}
}

func TestVolumeCloneAndSetScanner(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 2)
	img, _ := encodeFrame(t, p, 4, 0.5)
	frames := []*raster.Gray{img, img.Clone(), img.Clone()}
	if err := v.Write(frames); err != nil {
		t.Fatal(err)
	}
	if v.Sheets() != 2 {
		t.Fatalf("sheets = %d, want 2", v.Sheets())
	}

	c := v.Clone()
	if err := c.DestroySheet(0); err != nil {
		t.Fatal(err)
	}
	orig, err := v.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	gone, err := c.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if raster.Equal(orig, gone) {
		t.Fatal("destroying the clone's sheet left its frames identical to the original's")
	}

	d := p.Scanner
	d.Seed = 7
	c.SetScanner(d)
	for s := 0; s < c.Sheets(); s++ {
		sheet, _ := c.Sheet(s)
		if sheet.Profile().Scanner.Seed != 7 {
			t.Fatalf("sheet %d scanner seed not propagated", s)
		}
	}
	if v.Profile().Scanner.Seed != 0 {
		t.Fatal("SetScanner on the clone reached the original volume")
	}
}

// A generational copy must keep the medium scannable (geometry intact)
// while actually degrading it, and chaining copies must degrade further.
func TestReprintDegradesButPreservesGeometry(t *testing.T) {
	p := tinyProfile()
	m := New(p)
	img, _ := encodeFrame(t, p, 5, 0.5)
	if err := m.Write([]*raster.Gray{img}); err != nil {
		t.Fatal(err)
	}

	g1, err := m.Reprint()
	if err != nil {
		t.Fatal(err)
	}
	if g1.FrameCount() != m.FrameCount() {
		t.Fatalf("reprint frame count %d, want %d", g1.FrameCount(), m.FrameCount())
	}
	s0, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := g1.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.W != s0.W || s1.H != s0.H {
		t.Fatalf("reprint scan geometry %dx%d, want %dx%d", s1.W, s1.H, s0.W, s0.H)
	}
	if raster.Equal(s0, s1) {
		t.Fatal("a print→scan generation left the scans bit-identical")
	}

	// Generation loss accumulates: the mean absolute difference from the
	// pristine written frame grows (or at worst holds) across copies.
	d1 := meanAbsDiff(m.frames[0], g1.frames[0])
	g2, err := g1.Reprint()
	if err != nil {
		t.Fatal(err)
	}
	d2 := meanAbsDiff(m.frames[0], g2.frames[0])
	if d1 <= 0 {
		t.Fatal("first generation introduced no degradation")
	}
	if d2 < d1*0.5 {
		t.Fatalf("second generation cleaner than the first: %.3f vs %.3f", d2, d1)
	}
}

func TestVolumeReprintPreservesSheets(t *testing.T) {
	p := tinyProfile()
	v := NewVolume(p, 2)
	img, _ := encodeFrame(t, p, 6, 0.5)
	if err := v.Write([]*raster.Gray{img, img.Clone(), img.Clone()}); err != nil {
		t.Fatal(err)
	}
	r, err := v.Reprint()
	if err != nil {
		t.Fatal(err)
	}
	if r.Sheets() != v.Sheets() || r.FrameCount() != v.FrameCount() {
		t.Fatalf("reprint shape %d sheets/%d frames, want %d/%d",
			r.Sheets(), r.FrameCount(), v.Sheets(), v.FrameCount())
	}
	for s := 0; s < v.Sheets(); s++ {
		a, _ := v.Sheet(s)
		b, _ := r.Sheet(s)
		if a.FrameCount() != b.FrameCount() {
			t.Fatalf("sheet %d frame count changed: %d vs %d", s, a.FrameCount(), b.FrameCount())
		}
	}
}

func meanAbsDiff(a, b *raster.Gray) float64 {
	if a.W != b.W || a.H != b.H {
		return math.Inf(1)
	}
	sum := 0.0
	for i := range a.Pix {
		sum += math.Abs(float64(a.Pix[i]) - float64(b.Pix[i]))
	}
	return sum / float64(len(a.Pix))
}
