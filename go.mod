module microlonys

go 1.24
