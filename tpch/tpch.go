// Package tpch generates TPC-H-shaped test databases — the workload of the
// paper's evaluation (§4: "we used the industry-standard TPC-H benchmark to
// generate a test dataset", loaded into PostgreSQL and dumped with pg_dump).
//
// The generator is a deterministic, dbgen-style re-implementation: the
// eight TPC-H tables with their standard columns, populated from seeded
// pseudo-random draws and the classic value vocabularies (market segments,
// part name words, ship modes). It does not reproduce dbgen's exact byte
// streams — the archival experiments need realistic shape, cardinality and
// text statistics, not official benchmark numbers. Scale factor 1 matches
// TPC-H row counts (6 M lineitems); fractional scale factors produce the
// megabyte-class archives used in the paper's experiments.
package tpch

import (
	"fmt"
	"strings"
)

// Table is a generated table: a name, column names and row data.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
}

// Database is a complete generated TPC-H instance.
type Database struct {
	ScaleFactor float64
	Seed        int64
	Tables      []*Table
}

// rng is a splitmix64 generator: deterministic across platforms.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// decimal renders v/100 with two decimals.
func decimal(v int) string { return fmt.Sprintf("%d.%02d", v/100, v%100) }

var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []struct {
		name   string
		region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments  = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorts   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	instructs = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	nameWords = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood",
		"burnished", "chartreuse", "chiffon", "chocolate", "coral",
		"cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim",
		"dodger", "drab", "firebrick", "floral", "forest", "frosted",
		"gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
		"hot", "hazelnut", "indian", "ivory", "khaki", "lace", "lavender",
		"lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
	}
	containers = []string{"SM CASE", "SM BOX", "LG CASE", "LG BOX", "MED BAG",
		"MED BOX", "JUMBO PKG", "WRAP CASE", "LG DRUM", "SM PKG"}
	types = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER",
		"PROMO BURNISHED NICKEL", "ECONOMY BRUSHED STEEL", "LARGE POLISHED BRASS",
		"MEDIUM BURNISHED COPPER", "PROMO PLATED STEEL", "STANDARD BRUSHED BRASS"}
	commentWords = []string{
		"carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
		"requests", "packages", "accounts", "instructions", "foxes", "pinto",
		"beans", "theodolites", "platelets", "ideas", "sleep", "nag", "haggle",
		"wake", "cajole", "boost", "engage", "doze", "integrate", "final",
		"express", "regular", "special", "ironic", "even", "bold", "pending",
		"silent", "unusual", "about", "the", "above", "across", "after",
	}
)

func comment(r *rng, minWords, maxWords int) string {
	n := r.rangeInt(minWords, maxWords)
	words := make([]string, n)
	for i := range words {
		words[i] = commentWords[r.intn(len(commentWords))]
	}
	return strings.Join(words, " ")
}

func phone(r *rng, nation int) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, r.rangeInt(100, 999),
		r.rangeInt(100, 999), r.rangeInt(1000, 9999))
}

func date(r *rng) string {
	// Order/ship dates span 1992-01-01 .. 1998-08-02 per the spec.
	year := r.rangeInt(1992, 1998)
	month := r.rangeInt(1, 12)
	day := r.rangeInt(1, 28)
	return fmt.Sprintf("%04d-%02d-%02d", year, month, day)
}

// Generate builds a database at the given scale factor. The same (sf,
// seed) always yields identical data.
func Generate(sf float64, seed int64) *Database {
	db := &Database{ScaleFactor: sf, Seed: seed}

	count := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	newRng := func(table string, i int) *rng {
		h := uint64(seed)
		for _, c := range []byte(table) {
			h = h*1099511628211 + uint64(c)
		}
		return &rng{s: h + uint64(i)*0x9E3779B97F4A7C15}
	}

	// region
	region := &Table{Name: "region", Columns: []string{"r_regionkey", "r_name", "r_comment"}}
	for i, name := range regions {
		r := newRng("region", i)
		region.Rows = append(region.Rows, []string{fmt.Sprint(i), name, comment(r, 4, 12)})
	}

	// nation
	nation := &Table{Name: "nation", Columns: []string{"n_nationkey", "n_name", "n_regionkey", "n_comment"}}
	for i, n := range nations {
		r := newRng("nation", i)
		nation.Rows = append(nation.Rows, []string{
			fmt.Sprint(i), n.name, fmt.Sprint(n.region), comment(r, 4, 12)})
	}

	// supplier
	nSupp := count(10000)
	supplier := &Table{Name: "supplier", Columns: []string{
		"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"}}
	for i := 1; i <= nSupp; i++ {
		r := newRng("supplier", i)
		nk := r.intn(len(nations))
		supplier.Rows = append(supplier.Rows, []string{
			fmt.Sprint(i),
			fmt.Sprintf("Supplier#%09d", i),
			address(r),
			fmt.Sprint(nk),
			phone(r, nk),
			decimal(r.rangeInt(-99999, 999999)),
			comment(r, 6, 18),
		})
	}

	// part
	nPart := count(200000)
	part := &Table{Name: "part", Columns: []string{
		"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
		"p_container", "p_retailprice", "p_comment"}}
	for i := 1; i <= nPart; i++ {
		r := newRng("part", i)
		w := make([]string, 5)
		for j := range w {
			w[j] = nameWords[r.intn(len(nameWords))]
		}
		mfgr := r.rangeInt(1, 5)
		part.Rows = append(part.Rows, []string{
			fmt.Sprint(i),
			strings.Join(w, " "),
			fmt.Sprintf("Manufacturer#%d", mfgr),
			fmt.Sprintf("Brand#%d%d", mfgr, r.rangeInt(1, 5)),
			types[r.intn(len(types))],
			fmt.Sprint(r.rangeInt(1, 50)),
			containers[r.intn(len(containers))],
			decimal(90000 + (i%200)*100 + i%1000),
			comment(r, 2, 8),
		})
	}

	// partsupp: 4 suppliers per part
	partsupp := &Table{Name: "partsupp", Columns: []string{
		"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"}}
	for i := 1; i <= nPart; i++ {
		r := newRng("partsupp", i)
		for j := 0; j < 4; j++ {
			sk := (i+j*(nSupp/4+1))%nSupp + 1
			partsupp.Rows = append(partsupp.Rows, []string{
				fmt.Sprint(i), fmt.Sprint(sk),
				fmt.Sprint(r.rangeInt(1, 9999)),
				decimal(r.rangeInt(100, 100000)),
				comment(r, 10, 30),
			})
		}
	}

	// customer
	nCust := count(150000)
	customer := &Table{Name: "customer", Columns: []string{
		"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
		"c_acctbal", "c_mktsegment", "c_comment"}}
	for i := 1; i <= nCust; i++ {
		r := newRng("customer", i)
		nk := r.intn(len(nations))
		customer.Rows = append(customer.Rows, []string{
			fmt.Sprint(i),
			fmt.Sprintf("Customer#%09d", i),
			address(r),
			fmt.Sprint(nk),
			phone(r, nk),
			decimal(r.rangeInt(-99999, 999999)),
			segments[r.intn(len(segments))],
			comment(r, 6, 20),
		})
	}

	// orders + lineitem
	nOrd := count(1500000)
	orders := &Table{Name: "orders", Columns: []string{
		"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
		"o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority", "o_comment"}}
	lineitem := &Table{Name: "lineitem", Columns: []string{
		"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
		"l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct",
		"l_shipmode", "l_comment"}}
	for i := 1; i <= nOrd; i++ {
		r := newRng("orders", i)
		nLines := r.rangeInt(1, 7)
		total := 0
		odate := date(r)
		for ln := 1; ln <= nLines; ln++ {
			qty := r.rangeInt(1, 50)
			price := r.rangeInt(90000, 200000) * qty / 100
			total += price
			lineitem.Rows = append(lineitem.Rows, []string{
				fmt.Sprint(i),
				fmt.Sprint(r.intn(nPart) + 1),
				fmt.Sprint(r.intn(nSupp) + 1),
				fmt.Sprint(ln),
				fmt.Sprint(qty),
				decimal(price),
				decimal(r.rangeInt(0, 10)),
				decimal(r.rangeInt(0, 8)),
				[]string{"A", "N", "R"}[r.intn(3)],
				[]string{"F", "O"}[r.intn(2)],
				date(r), date(r), date(r),
				instructs[r.intn(len(instructs))],
				shipModes[r.intn(len(shipModes))],
				comment(r, 4, 12),
			})
		}
		orders.Rows = append(orders.Rows, []string{
			fmt.Sprint(i),
			fmt.Sprint(r.intn(nCust) + 1),
			[]string{"F", "O", "P"}[r.intn(3)],
			decimal(total),
			odate,
			priorts[r.intn(len(priorts))],
			fmt.Sprintf("Clerk#%09d", r.rangeInt(1, 1000)),
			"0",
			comment(r, 6, 18),
		})
	}

	db.Tables = []*Table{region, nation, supplier, part, partsupp, customer, orders, lineitem}
	return db
}

func address(r *rng) string {
	n := r.rangeInt(10, 30)
	var b strings.Builder
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,"
	for i := 0; i < n; i++ {
		b.WriteByte(chars[r.intn(len(chars))])
	}
	return strings.TrimSpace(b.String())
}

// TotalRows returns the row count across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		n += len(t.Rows)
	}
	return n
}

// Table returns a table by name, or nil.
func (db *Database) Table(name string) *Table {
	for _, t := range db.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// FitScaleFactor searches for a scale factor whose SQL dump (rendered by
// render) is close to targetBytes. It is how the experiments reproduce
// the paper's "roughly 1 MB (1.2 MB)" archive.
func FitScaleFactor(targetBytes int, seed int64, render func(*Database) []byte) (float64, *Database) {
	lo, hi := 0.00001, 0.01
	var best *Database
	var bestSF float64
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		db := Generate(mid, seed)
		size := len(render(db))
		best, bestSF = db, mid
		switch {
		case size < targetBytes*95/100:
			lo = mid
		case size > targetBytes*105/100:
			hi = mid
		default:
			return mid, db
		}
	}
	return bestSF, best
}
