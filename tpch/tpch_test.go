package tpch

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.0005, 42)
	b := Generate(0.0005, 42)
	if a.TotalRows() != b.TotalRows() {
		t.Fatal("row counts differ")
	}
	for i, ta := range a.Tables {
		tb := b.Tables[i]
		for r := range ta.Rows {
			for c := range ta.Rows[r] {
				if ta.Rows[r][c] != tb.Rows[r][c] {
					t.Fatalf("%s[%d][%d] nondeterministic", ta.Name, r, c)
				}
			}
		}
	}
	c := Generate(0.0005, 43)
	if c.Table("customer").Rows[0][7] == a.Table("customer").Rows[0][7] {
		t.Fatal("different seeds produced identical comments")
	}
}

func TestEightTables(t *testing.T) {
	db := Generate(0.0002, 1)
	want := []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}
	if len(db.Tables) != 8 {
		t.Fatalf("%d tables", len(db.Tables))
	}
	for i, n := range want {
		if db.Tables[i].Name != n {
			t.Fatalf("table %d = %s, want %s", i, db.Tables[i].Name, n)
		}
	}
	if db.Table("nope") != nil {
		t.Fatal("unknown table lookup")
	}
}

func TestFixedTables(t *testing.T) {
	db := Generate(0.0001, 7)
	if n := len(db.Table("region").Rows); n != 5 {
		t.Fatalf("regions %d", n)
	}
	if n := len(db.Table("nation").Rows); n != 25 {
		t.Fatalf("nations %d", n)
	}
}

func TestCardinalityScaling(t *testing.T) {
	small := Generate(0.0002, 1)
	big := Generate(0.0008, 1)
	if big.Table("lineitem").Rows == nil || small.Table("lineitem").Rows == nil {
		t.Fatal("no lineitems")
	}
	ratio := float64(len(big.Table("lineitem").Rows)) / float64(len(small.Table("lineitem").Rows))
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("lineitem scaling ratio %.2f, want ≈4", ratio)
	}
	// partsupp is 4 rows per part.
	if len(small.Table("partsupp").Rows) != 4*len(small.Table("part").Rows) {
		t.Fatal("partsupp != 4×part")
	}
}

func TestReferentialShape(t *testing.T) {
	db := Generate(0.0003, 2)
	nCust := len(db.Table("customer").Rows)
	for _, row := range db.Table("orders").Rows[:50] {
		var ck int
		if _, err := sscan(row[1], &ck); err != nil || ck < 1 || ck > nCust {
			t.Fatalf("o_custkey %q out of range [1,%d]", row[1], nCust)
		}
	}
	// Order dates inside the spec window.
	for _, row := range db.Table("orders").Rows[:50] {
		d := row[4]
		if d < "1992-01-01" || d > "1998-12-31" || len(d) != 10 {
			t.Fatalf("o_orderdate %q", d)
		}
	}
	// lineitem line numbers start at 1 per order.
	first := db.Table("lineitem").Rows[0]
	if first[0] != "1" || first[3] != "1" {
		t.Fatalf("first lineitem: %v", first[:4])
	}
}

func TestRowFormats(t *testing.T) {
	db := Generate(0.0002, 3)
	sup := db.Table("supplier").Rows[0]
	if !strings.HasPrefix(sup[1], "Supplier#") || len(sup[1]) != len("Supplier#")+9 {
		t.Fatalf("s_name %q", sup[1])
	}
	if !strings.Contains(sup[4], "-") {
		t.Fatalf("s_phone %q", sup[4])
	}
	if !strings.Contains(sup[5], ".") {
		t.Fatalf("s_acctbal %q", sup[5])
	}
	for _, row := range db.Table("part").Rows[:20] {
		if !strings.HasPrefix(row[3], "Brand#") {
			t.Fatalf("p_brand %q", row[3])
		}
		if strings.Count(row[1], " ") != 4 {
			t.Fatalf("p_name %q should be five words", row[1])
		}
	}
}

func TestNoTabsOrNewlinesInValues(t *testing.T) {
	// The SQL archive uses tab-separated COPY rows; values must be clean.
	db := Generate(0.0005, 4)
	for _, tab := range db.Tables {
		for _, row := range tab.Rows {
			for _, v := range row {
				if strings.ContainsAny(v, "\t\n\\") {
					t.Fatalf("%s value %q contains separator characters", tab.Name, v)
				}
			}
		}
	}
}

func TestFitScaleFactor(t *testing.T) {
	render := func(db *Database) []byte {
		var b strings.Builder
		for _, t := range db.Tables {
			for _, row := range t.Rows {
				b.WriteString(strings.Join(row, "\t"))
				b.WriteByte('\n')
			}
		}
		return []byte(b.String())
	}
	target := 300_000
	sf, db := FitScaleFactor(target, 1, render)
	size := len(render(db))
	if size < target*7/10 || size > target*13/10 {
		t.Fatalf("fitted size %d for target %d (sf=%g)", size, target, sf)
	}
}

// sscan is a minimal integer parser avoiding fmt.Sscan allocation noise.
func sscan(s string, out *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return 1, nil
}

var errBadInt = errString("bad int")

type errString string

func (e errString) Error() string { return string(e) }
