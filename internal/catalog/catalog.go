// Package catalog defines the per-sheet salvage catalog: the
// self-describing emblem written onto every sheet of a catalog-enabled
// volume so that a future user holding any surviving carrier — and
// nothing else, not even the Bootstrap document — can inventory what the
// archive contained, verify what they hold, and recover what remains.
//
// Every sheet's catalog frame carries the whole volume's story:
//
//   - the archive identity (a deterministic 64-bit id) and this sheet's
//     ordinal among the volume's sheets;
//   - the emblem layout and outer-code group shape, which is everything a
//     native decoder needs to read the other frames;
//   - the volume inventory: per-sheet frame and group ranges, so one
//     surviving sheet names exactly what is missing;
//   - per-group CRC-32 checksums over the group's data payloads, so
//     recovery can be verified group by group;
//   - a compressed replica of the Bootstrap essentials (the DynaRisc
//     emulator and MODecode instruction streams), from which the full
//     Bootstrap document is reconstructed when the paper copy is lost;
//   - plain-text recovery instructions for the human holding the sheet.
//
// Frames are small on some media, so Marshal trims the optional parts —
// replica first, then instructions, group checksums, sheet inventory —
// until the catalog fits the frame capacity; flags record what survived
// and Parse tolerates every trim level. The fixed identity/layout core
// always fits any emblem the system can produce.
package catalog

import (
	"errors"
	"fmt"
	"hash/crc32"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/dbcoder"
	"microlonys/internal/emblem"
	"microlonys/verisc"
)

// SheetRange is one sheet's slice of the volume inventory. Frame indices
// are global scan positions (catalog slots included); group ids are the
// planner's outer-code group sequence.
type SheetRange struct {
	StartFrame int // global index of the sheet's first frame (its catalog slot)
	Frames     int // frames on the sheet, catalog slot included
	StartGroup int // first outer-code group placed on the sheet
	Groups     int // groups placed on the sheet
}

// GroupSum is one outer-code group's checksum record, indexed by group id.
type GroupSum struct {
	Kind   emblem.Kind // section kind of the group's data members
	Data   uint8       // data frames in the group
	Parity uint8       // parity frames in the group
	CRC    uint32      // CRC-32 (IEEE) over the data payloads, padded to frame capacity, in group position order
}

// Catalog is one sheet's self-describing record.
type Catalog struct {
	ArchiveID   uint64
	Sheet       int // this sheet's ordinal
	SheetCount  int
	TotalFrames int // frames in the whole volume, catalog slots included
	TotalGroups int

	GroupData   int // default data frames per group (short final groups excepted)
	GroupParity int
	Layout      emblem.Layout
	ProfileName string
	Compress    bool // the archive ran DBCoder
	RawLen      int
	StreamLen   int
	SystemLen   int

	Instructions string       // plain-text recovery instructions (may be trimmed)
	Sheets       []SheetRange // volume inventory (may be trimmed)
	Groups       []GroupSum   // per-group checksums, indexed by id (may be trimmed)
	Replica      []byte       // compressed bootstrap essentials (may be trimmed)

	// IndexSlot records that every sheet reserves a selective-restore
	// index slot right after its catalog slot — salvage needs the reserved
	// count to map local frame positions back to planner indices. Carried
	// in a flag bit, so catalogs of index-free volumes are byte-identical
	// to pre-index ones.
	IndexSlot bool
	// IndexReplica is the marshalled selective-restore index
	// (internal/archindex, already compressed), so salvage can answer
	// range queries from a surviving catalog even when every dedicated
	// index frame is lost. First in line for trimming.
	IndexReplica []byte
}

const (
	magic   = "MOCT"
	version = 1

	flagSheets       = 1 << 0
	flagGroups       = 1 << 1
	flagReplica      = 1 << 2
	flagInstructions = 1 << 3
	flagIndexSlot    = 1 << 4 // no payload: records the reserved index slot
	flagIndexReplica = 1 << 5
)

// ErrCatalog reports an unreadable or oversized catalog.
var ErrCatalog = errors.New("catalog: unreadable catalog frame")

// Instructions returns the default plain-text recovery instructions
// rendered into every catalog frame with room for them.
func Instructions() string {
	return "THIS SHEET IS PART OF A MICR'OLONYS DATABASE ARCHIVE. " +
		"Each sheet begins with one catalog frame (this one) describing the whole volume: " +
		"sheet count, frame and group ranges, and per-group checksums. " +
		"To recover the data: scan every frame of every surviving sheet, in any order; " +
		"decode the 2D emblems (geometry in this record and in the Bootstrap document); " +
		"order frames by the index in each frame's header; rebuild missing frames from " +
		"each group's parity; verify groups against the checksums here. " +
		"If the Bootstrap document is lost, this record's replica section contains its " +
		"machine-readable core."
}

// AppendMarshal serialises the catalog without a size budget.
func (c *Catalog) AppendMarshal(b []byte) []byte {
	out, _ := c.marshal(b, flagSheets|flagGroups|flagReplica|flagInstructions|flagIndexReplica)
	return out
}

// Marshal serialises the catalog into at most capacity bytes, trimming
// optional sections — index replica first, then the bootstrap replica,
// instructions, group checksums, and the sheet inventory — until it fits.
// capacity <= 0 means no limit. An error means even the fixed identity
// core exceeds the budget.
func (c *Catalog) Marshal(capacity int) ([]byte, error) {
	trims := []uint8{
		flagSheets | flagGroups | flagReplica | flagInstructions | flagIndexReplica,
		flagSheets | flagGroups | flagReplica | flagInstructions,
		flagSheets | flagGroups | flagInstructions,
		flagSheets | flagGroups,
		flagSheets,
		0,
	}
	for _, flags := range trims {
		out, err := c.marshal(nil, flags)
		if err != nil {
			return nil, err
		}
		if capacity <= 0 || len(out) <= capacity {
			return out, nil
		}
	}
	min, _ := c.marshal(nil, 0)
	return nil, fmt.Errorf("catalog: minimal catalog of %d bytes exceeds frame capacity %d", len(min), capacity)
}

func (c *Catalog) marshal(b []byte, flags uint8) ([]byte, error) {
	if len(c.Sheets) == 0 {
		flags &^= flagSheets
	}
	if len(c.Groups) == 0 {
		flags &^= flagGroups
	}
	if len(c.Replica) == 0 {
		flags &^= flagReplica
	}
	if c.Instructions == "" {
		flags &^= flagInstructions
	}
	if len(c.IndexReplica) == 0 {
		flags &^= flagIndexReplica
	}
	if c.IndexSlot {
		flags |= flagIndexSlot // orthogonal to the trim ladder
	}
	if len(c.ProfileName) > 255 {
		return nil, fmt.Errorf("catalog: profile name of %d bytes", len(c.ProfileName))
	}

	start := len(b)
	b = append(b, magic...)
	b = append(b, version, flags)
	b = appendU64(b, c.ArchiveID)
	b = appendU32(b, uint32(c.Sheet))
	b = appendU32(b, uint32(c.SheetCount))
	b = appendU32(b, uint32(c.TotalFrames))
	b = appendU32(b, uint32(c.TotalGroups))
	b = append(b, uint8(c.GroupData), uint8(c.GroupParity))
	b = appendU32(b, uint32(c.Layout.DataW))
	b = appendU32(b, uint32(c.Layout.DataH))
	b = append(b, uint8(c.Layout.PxPerModule), boolByte(c.Compress))
	b = appendU32(b, uint32(c.RawLen))
	b = appendU32(b, uint32(c.StreamLen))
	b = appendU32(b, uint32(c.SystemLen))
	b = append(b, uint8(len(c.ProfileName)))
	b = append(b, c.ProfileName...)
	if flags&flagInstructions != 0 {
		b = appendU16(b, uint16(len(c.Instructions)))
		b = append(b, c.Instructions...)
	}
	if flags&flagSheets != 0 {
		b = appendU32(b, uint32(len(c.Sheets)))
		for _, s := range c.Sheets {
			b = appendU32(b, uint32(s.StartFrame))
			b = appendU32(b, uint32(s.Frames))
			b = appendU32(b, uint32(s.StartGroup))
			b = appendU32(b, uint32(s.Groups))
		}
	}
	if flags&flagGroups != 0 {
		b = appendU32(b, uint32(len(c.Groups)))
		for _, g := range c.Groups {
			b = append(b, uint8(g.Kind), g.Data, g.Parity)
			b = appendU32(b, g.CRC)
		}
	}
	if flags&flagReplica != 0 {
		b = appendU32(b, uint32(len(c.Replica)))
		b = append(b, c.Replica...)
	}
	if flags&flagIndexReplica != 0 {
		b = appendU32(b, uint32(len(c.IndexReplica)))
		b = append(b, c.IndexReplica...)
	}
	b = appendU32(b, crc32.ChecksumIEEE(b[start:]))
	return b, nil
}

// Parse reads a catalog frame payload back, validating the trailing
// CRC-32 and tolerating every trim level Marshal can emit. Payload bytes
// past the catalog's own record (emblem padding) are ignored.
func Parse(b []byte) (*Catalog, error) {
	r := reader{b: b}
	if string(r.take(4)) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCatalog)
	}
	if v := r.u8(); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCatalog, v)
	}
	flags := r.u8()
	c := &Catalog{}
	c.ArchiveID = r.u64()
	c.Sheet = int(r.u32())
	c.SheetCount = int(r.u32())
	c.TotalFrames = int(r.u32())
	c.TotalGroups = int(r.u32())
	c.GroupData = int(r.u8())
	c.GroupParity = int(r.u8())
	c.Layout.DataW = int(r.u32())
	c.Layout.DataH = int(r.u32())
	c.Layout.PxPerModule = int(r.u8())
	c.Compress = r.u8() != 0
	c.RawLen = int(r.u32())
	c.StreamLen = int(r.u32())
	c.SystemLen = int(r.u32())
	c.ProfileName = string(r.take(int(r.u8())))
	if flags&flagInstructions != 0 {
		c.Instructions = string(r.take(int(r.u16())))
	}
	if flags&flagSheets != 0 {
		n := int(r.u32())
		if n < 0 || n > len(r.b)/16 {
			return nil, fmt.Errorf("%w: sheet inventory of %d entries", ErrCatalog, n)
		}
		c.Sheets = make([]SheetRange, n)
		for i := range c.Sheets {
			c.Sheets[i] = SheetRange{
				StartFrame: int(r.u32()), Frames: int(r.u32()),
				StartGroup: int(r.u32()), Groups: int(r.u32()),
			}
		}
	}
	if flags&flagGroups != 0 {
		n := int(r.u32())
		if n < 0 || n > len(r.b)/7 {
			return nil, fmt.Errorf("%w: group checksum list of %d entries", ErrCatalog, n)
		}
		c.Groups = make([]GroupSum, n)
		for i := range c.Groups {
			c.Groups[i] = GroupSum{Kind: emblem.Kind(r.u8()), Data: r.u8(), Parity: r.u8(), CRC: r.u32()}
		}
	}
	if flags&flagReplica != 0 {
		n := int(r.u32())
		if n < 0 || n > len(r.b) {
			return nil, fmt.Errorf("%w: replica of %d bytes", ErrCatalog, n)
		}
		c.Replica = append([]byte(nil), r.take(n)...)
	}
	c.IndexSlot = flags&flagIndexSlot != 0
	if flags&flagIndexReplica != 0 {
		n := int(r.u32())
		if n < 0 || n > len(r.b) {
			return nil, fmt.Errorf("%w: index replica of %d bytes", ErrCatalog, n)
		}
		c.IndexReplica = append([]byte(nil), r.take(n)...)
	}
	sum := r.u32()
	if r.err {
		return nil, fmt.Errorf("%w: truncated record", ErrCatalog)
	}
	if crc32.ChecksumIEEE(b[:r.off-4]) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCatalog)
	}
	return c, nil
}

// GroupCRC computes the checksum a GroupSum records: CRC-32 (IEEE) over
// the group's data payloads, each padded to the frame capacity, in group
// position order. Archive and restore sides share this exact definition.
func GroupCRC(padded [][]byte) uint32 {
	h := crc32.NewIEEE()
	for _, p := range padded {
		h.Write(p)
	}
	return h.Sum32()
}

// The bootstrap-essentials replica: the two instruction streams the
// Bootstrap document exists to deliver, compressed with DBCoder. The
// pseudocode and letter encoding are static text this implementation
// regenerates, so the replica plus the catalog's layout fields
// reconstruct the full document byte for byte.

const essentialsMagic = "BSE1"

// EncodeEssentials packs the emulator and MODecode streams into the
// compressed replica blob.
func EncodeEssentials(emulator *verisc.Program, modecode *dynarisc.Program) []byte {
	emu := bootstrap.MarshalVeRisc(emulator)
	mo := bootstrap.MarshalDynaRisc(modecode)
	raw := make([]byte, 0, 12+len(emu)+len(mo))
	raw = append(raw, essentialsMagic...)
	raw = appendU32(raw, uint32(len(emu)))
	raw = append(raw, emu...)
	raw = appendU32(raw, uint32(len(mo)))
	raw = append(raw, mo...)
	return dbcoder.Compress(raw)
}

// DecodeEssentials unpacks an EncodeEssentials replica.
func DecodeEssentials(replica []byte) (*verisc.Program, *dynarisc.Program, error) {
	raw, err := dbcoder.Decompress(replica)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: replica: %v", ErrCatalog, err)
	}
	r := reader{b: raw}
	if string(r.take(4)) != essentialsMagic {
		return nil, nil, fmt.Errorf("%w: replica magic", ErrCatalog)
	}
	emuRaw := r.take(int(r.u32()))
	moRaw := r.take(int(r.u32()))
	if r.err {
		return nil, nil, fmt.Errorf("%w: truncated replica", ErrCatalog)
	}
	emu, err := bootstrap.UnmarshalVeRisc(emuRaw)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: replica emulator: %v", ErrCatalog, err)
	}
	mo, err := bootstrap.UnmarshalDynaRisc(moRaw)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: replica MODecode: %v", ErrCatalog, err)
	}
	return emu, mo, nil
}

// BootstrapDoc reconstructs the full Bootstrap document from the
// catalog's replica and layout fields — the bootstrap-free salvage path.
// It fails when the replica was trimmed away at archive time.
func (c *Catalog) BootstrapDoc() (*bootstrap.Document, error) {
	if len(c.Replica) == 0 {
		return nil, fmt.Errorf("%w: catalog carries no bootstrap replica", ErrCatalog)
	}
	emu, mo, err := DecodeEssentials(c.Replica)
	if err != nil {
		return nil, err
	}
	doc := bootstrap.New(c.ProfileName, c.Layout, c.GroupData, c.GroupParity, emu, mo)
	doc.Catalog = true
	doc.Index = c.IndexSlot
	return doc, nil
}

// reader is a bounds-checked big-endian cursor; the err flag latches on
// the first read past the end so Parse can validate once at the end.
type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) take(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.err = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) u64() uint64 {
	hi := r.u32()
	return uint64(hi)<<32 | uint64(r.u32())
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v>>32)), uint32(v))
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
