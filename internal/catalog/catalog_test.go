package catalog

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/emblem"
	"microlonys/verisc"
)

func sampleCatalog() *Catalog {
	return &Catalog{
		ArchiveID:    0xDEADBEEFCAFE1234,
		Sheet:        2,
		SheetCount:   5,
		TotalFrames:  105,
		TotalGroups:  5,
		GroupData:    17,
		GroupParity:  3,
		Layout:       emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4},
		ProfileName:  "paper-small",
		Compress:     true,
		RawLen:       123,
		StreamLen:    262144,
		SystemLen:    2708,
		Instructions: Instructions(),
		Sheets: []SheetRange{
			{StartFrame: 0, Frames: 21, StartGroup: 0, Groups: 1},
			{StartFrame: 21, Frames: 21, StartGroup: 1, Groups: 1},
			{StartFrame: 42, Frames: 21, StartGroup: 2, Groups: 1},
			{StartFrame: 63, Frames: 21, StartGroup: 3, Groups: 1},
			{StartFrame: 84, Frames: 21, StartGroup: 4, Groups: 1},
		},
		Groups: []GroupSum{
			{Kind: emblem.KindRaw, Data: 17, Parity: 3, CRC: 0x11111111},
			{Kind: emblem.KindData, Data: 17, Parity: 3, CRC: 0x22222222},
			{Kind: emblem.KindData, Data: 17, Parity: 3, CRC: 0x33333333},
			{Kind: emblem.KindData, Data: 4, Parity: 3, CRC: 0x44444444},
			{Kind: emblem.KindSystem, Data: 17, Parity: 3, CRC: 0x55555555},
		},
		Replica: []byte("stand-in replica blob"),
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	c := sampleCatalog()
	b, err := c.Marshal(0)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, c)
	}
	// Emblem payloads are padded to capacity; Parse must ignore the tail.
	padded := append(append([]byte(nil), b...), make([]byte, 97)...)
	got2, err := Parse(padded)
	if err != nil {
		t.Fatalf("Parse with padding: %v", err)
	}
	if !reflect.DeepEqual(c, got2) {
		t.Fatal("padded parse diverged from exact parse")
	}
}

// TestMarshalTrimming walks the capacity ladder: each budget drops the
// next optional section (replica, instructions, group sums, inventory)
// while everything that still fits survives intact.
func TestMarshalTrimming(t *testing.T) {
	c := sampleCatalog()
	full, err := c.Marshal(0)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	prev := len(full)
	wantGone := []func(*Catalog) bool{
		func(p *Catalog) bool { return p.Replica == nil },
		func(p *Catalog) bool { return p.Instructions == "" },
		func(p *Catalog) bool { return p.Groups == nil },
		func(p *Catalog) bool { return p.Sheets == nil },
	}
	for step, gone := range wantGone {
		b, err := c.Marshal(prev - 1)
		if err != nil {
			t.Fatalf("step %d: Marshal(%d): %v", step, prev-1, err)
		}
		if len(b) >= prev {
			t.Fatalf("step %d: trimmed marshal is %d bytes, want < %d", step, len(b), prev)
		}
		p, err := Parse(b)
		if err != nil {
			t.Fatalf("step %d: Parse: %v", step, err)
		}
		if !gone(p) {
			t.Fatalf("step %d: expected section not trimmed: %+v", step, p)
		}
		// Identity core must survive every trim level.
		if p.ArchiveID != c.ArchiveID || p.Sheet != c.Sheet || p.SheetCount != c.SheetCount ||
			p.TotalFrames != c.TotalFrames || p.TotalGroups != c.TotalGroups ||
			p.Layout != c.Layout || p.ProfileName != c.ProfileName {
			t.Fatalf("step %d: identity core damaged: %+v", step, p)
		}
		prev = len(b)
	}

	if _, err := c.Marshal(10); err == nil {
		t.Fatal("Marshal accepted a budget below the identity core")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	c := sampleCatalog()
	b, err := c.Marshal(0)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, i := range []int{0, 5, 20, len(b) / 2, len(b) - 1} {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0xFF
		if _, err := Parse(bad); !errors.Is(err, ErrCatalog) {
			t.Fatalf("Parse accepted corruption at byte %d (err %v)", i, err)
		}
	}
	for _, n := range []int{0, 3, 10, len(b) - 1} {
		if _, err := Parse(b[:n]); !errors.Is(err, ErrCatalog) {
			t.Fatalf("Parse accepted truncation to %d bytes (err %v)", n, err)
		}
	}
}

func TestGroupCRCOrderSensitive(t *testing.T) {
	a, b := bytes.Repeat([]byte{1}, 64), bytes.Repeat([]byte{2}, 64)
	if GroupCRC([][]byte{a, b}) == GroupCRC([][]byte{b, a}) {
		t.Fatal("GroupCRC is order-insensitive")
	}
	if GroupCRC([][]byte{a, b}) != GroupCRC([][]byte{a, b}) {
		t.Fatal("GroupCRC is not deterministic")
	}
}

// TestEssentialsRoundTrip pins the bootstrap-free path: a document
// reconstructed from a catalog's replica renders byte-identically to the
// archived catalog-enabled document.
func TestEssentialsRoundTrip(t *testing.T) {
	// A tiny but real program pair keeps the test fast; the production
	// programs exercise the identical marshal/compress path.
	emu := &verisc.Program{Org: 0, Cells: []uint32{0x01020304, 0xAABBCCDD, 0}}
	mo := &dynarisc.Program{Org: 0x100, Words: []uint16{0x1234, 0x5678, 0}}

	replica := EncodeEssentials(emu, mo)
	gotEmu, gotMo, err := DecodeEssentials(replica)
	if err != nil {
		t.Fatalf("DecodeEssentials: %v", err)
	}
	if !reflect.DeepEqual(emu, gotEmu) || !reflect.DeepEqual(mo, gotMo) {
		t.Fatal("essentials round trip diverged")
	}

	layout := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	want := bootstrap.New("paper-small", layout, 17, 3, emu, mo)
	want.Catalog = true

	c := &Catalog{
		GroupData: 17, GroupParity: 3,
		Layout: layout, ProfileName: "paper-small",
		Replica: replica,
	}
	doc, err := c.BootstrapDoc()
	if err != nil {
		t.Fatalf("BootstrapDoc: %v", err)
	}
	if doc.Render() != want.Render() {
		t.Fatal("reconstructed bootstrap document diverged from the archived one")
	}
	if !strings.Contains(doc.Render(), "catalog=1") {
		t.Fatal("reconstructed document does not declare the catalog layout")
	}

	if _, err := (&Catalog{}).BootstrapDoc(); !errors.Is(err, ErrCatalog) {
		t.Fatal("BootstrapDoc on a trimmed catalog did not fail with ErrCatalog")
	}
	bad := append([]byte(nil), replica...)
	bad[len(bad)/2] ^= 0xFF
	c.Replica = bad
	if _, err := c.BootstrapDoc(); err == nil {
		t.Fatal("BootstrapDoc accepted a corrupted replica")
	}
}
