package dnasim_test

import (
	"bytes"
	"testing"

	"microlonys/internal/campaign"
	"microlonys/internal/dnasim"
)

// TestRoundTripAtCampaignSeverities walks the campaign harness's dnasim
// severity ladder and pins the channel's shape at every step: the
// calibrated operating point (severity ≤ 1) must round-trip bit-exactly
// in the clear majority of trials (the channel keeps a small inherent
// failure floor — consensus errors on oligos that drew few usable
// reads — so single trials may fail), and every step at any severity
// must either round-trip or fail loudly — a decode that returns wrong
// bytes without an error is the one forbidden outcome.
func TestRoundTripAtCampaignSeverities(t *testing.T) {
	data := campaign.Corpus(8192, 3)
	oligos := dnasim.Encode(data)

	const trials = 5
	for _, severity := range campaign.DNASeveritySteps() {
		full := 0
		for trial := int64(0); trial < trials; trial++ {
			ch := campaign.DNAChannel(severity)
			ch.Seed = severity0Seed(severity, trial)
			got, st, err := dnasim.Decode(ch.Sequence(oligos))
			switch {
			case err != nil:
				// Loud failure: acceptable at any severity.
				_ = st
			case !bytes.Equal(got, data):
				t.Errorf("severity %g trial %d: decode returned wrong bytes without error", severity, trial)
			default:
				full++
			}
		}
		if severity <= 1 && full < trials-1 {
			t.Errorf("severity %g: %d/%d trials round-tripped, calibrated point wants at least %d",
				severity, full, trials, trials-1)
		}
	}
}

// severity0Seed derives a distinct, fixed seed per (severity, trial).
func severity0Seed(severity float64, trial int64) int64 {
	return int64(severity*1000)*1_000_003 + trial*7919 + 1
}

// TestPhantomIndexRead pins the decoder hardening the campaign surfaced:
// a stray read whose mangled header passes the CRC-8 check and claims an
// index far past the pool must not fabricate a tail of unrecoverable
// all-erasure groups.
func TestPhantomIndexRead(t *testing.T) {
	data := campaign.Corpus(2048, 5)
	oligos := dnasim.Encode(data)

	reads := dnasim.Channel{Coverage: 4, Seed: 11}.Sequence(oligos)
	// Fabricate the phantom: re-encode an existing oligo's reads under a
	// forged header index within the decoder's address cap but far past
	// the pool end. Header forgery via raw bases is brittle, so splice in
	// a legitimately encoded oligo from a much larger pool instead.
	big := dnasim.Encode(campaign.Corpus(64*1024, 5))
	phantom := string(big[len(big)-1])
	reads = append(reads, phantom)

	got, st, err := dnasim.Decode(reads)
	if err != nil {
		t.Fatalf("decode with phantom read failed: %v (stats %+v)", err, st)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode with phantom read returned wrong bytes")
	}
	if st.ReadsOrphaned == 0 {
		t.Fatal("phantom read was not counted as orphaned")
	}
}
