// Package dnasim is the synthetic-DNA archival substrate of the paper's
// final future-work item (§5): "extending Micr'Olonys to be used in
// conjunction with a DNA-based database archive [OligoArchive]".
//
// It plays MOCoder's role for a non-visual medium, demonstrating the ULE
// claim that media-specific layouts are swappable below the DBCoder
// stream: the same compressed bit stream that becomes emblems on film
// becomes oligonucleotides here.
//
// # Layout
//
// The payload is cut into fixed-size oligo payloads. Each oligo carries
// a 3-byte index, a 1-byte header CRC, and payloadPerOligo data bytes,
// mapped to bases with a Goldman-style rotating ternary code: every
// pair of bytes becomes 11 trits, and each trit selects one of the
// three bases different from the previous base — which structurally
// forbids homopolymer runs (the synthesis/sequencing error hot spot).
//
// Whole-oligo loss (synthesis dropout, sequencing depth variance) is the
// dominant DNA failure mode, so protection is column-wise Reed-Solomon
// across oligos: every group of 223 data oligos gains 32 parity oligos,
// and missing indexes are recovered as erasures — the same inner code
// family the emblems use, rotated 90 degrees to match the medium's
// failure geometry.
//
// # Channel model
//
// Sequencing is simulated as coverage-many noisy reads per oligo
// (Poisson-distributed), each with independent base substitutions.
// Reads are decoded individually, grouped by decoded index, and
// consensus-voted per byte; surviving CRC failures are discarded and
// the RS layer absorbs what remains. Insertions/deletions are not
// modelled: indel-tolerant consensus requires sequence alignment, which
// is out of scope here as large-scale DNA experiments are in the paper.
package dnasim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"microlonys/internal/rs"
)

// Bases of the nucleotide alphabet.
const bases = "ACGT"

// Layout constants.
const (
	// PayloadPerOligo is the data bytes carried by one oligo.
	PayloadPerOligo = 30
	// headerBytes is the per-oligo header: 24-bit index + CRC-8.
	headerBytes = 4
	// oligoBytes is the total coded bytes per oligo.
	oligoBytes = headerBytes + PayloadPerOligo
	// GroupData and GroupParity define the column-wise RS code across
	// oligos (the same inner-code family MOCoder uses).
	GroupData   = rs.InnerData
	GroupParity = rs.InnerParity
)

// tritsPerPair is the rotating-code cost of two bytes (3^11 > 2^16).
const tritsPerPair = 11

// OligoLen returns the length in nucleotides of every oligo.
func OligoLen() int {
	pairs := (oligoBytes + 1) / 2
	return pairs * tritsPerPair
}

// Errors.
var (
	ErrTooManyDropouts = errors.New("dnasim: more oligo dropouts than parity can restore")
	ErrNoReads         = errors.New("dnasim: no decodable reads")
	ErrCorrupt         = errors.New("dnasim: archive corrupt beyond correction")
)

// Oligo is a synthesised DNA strand.
type Oligo string

// Encode converts a payload into oligos: data oligos in index order
// followed by the per-group parity oligos.
func Encode(payload []byte) []Oligo {
	// Cut into per-oligo payloads (the last one zero-padded; the true
	// length travels in the first oligo's prefix).
	withLen := make([]byte, 4+len(payload))
	withLen[0] = byte(len(payload) >> 24)
	withLen[1] = byte(len(payload) >> 16)
	withLen[2] = byte(len(payload) >> 8)
	withLen[3] = byte(len(payload))
	copy(withLen[4:], payload)

	var chunks [][]byte
	for off := 0; off < len(withLen); off += PayloadPerOligo {
		end := off + PayloadPerOligo
		if end > len(withLen) {
			end = len(withLen)
		}
		c := make([]byte, PayloadPerOligo)
		copy(c, withLen[off:end])
		chunks = append(chunks, c)
	}

	// Column-wise RS parity per group of GroupData oligos.
	code := rs.New(GroupParity)
	var all [][]byte
	for g := 0; g < len(chunks); g += GroupData {
		end := g + GroupData
		if end > len(chunks) {
			end = len(chunks)
		}
		group := chunks[g:end]
		all = append(all, group...)
		parity := make([][]byte, GroupParity)
		for i := range parity {
			parity[i] = make([]byte, PayloadPerOligo)
		}
		col := make([]byte, len(group))
		for j := 0; j < PayloadPerOligo; j++ {
			for i, c := range group {
				col[i] = c[j]
			}
			for i, p := range code.Encode(col[:len(group)]) {
				parity[i][j] = p
			}
		}
		all = append(all, parity...)
	}

	oligos := make([]Oligo, len(all))
	for i, c := range all {
		oligos[i] = encodeOligo(uint32(i), c)
	}
	return oligos
}

// encodeOligo frames and maps one oligo payload to bases.
func encodeOligo(index uint32, payload []byte) Oligo {
	buf := make([]byte, 0, oligoBytes)
	buf = append(buf, byte(index>>16), byte(index>>8), byte(index))
	buf = append(buf, crc8(buf))
	buf = append(buf, payload...)
	return Oligo(bytesToBases(buf))
}

// bytesToBases maps bytes to a homopolymer-free base sequence.
func bytesToBases(p []byte) string {
	out := make([]byte, 0, OligoLen())
	prev := byte(0) // index into bases of the previous emitted base; start arbitrary
	first := true
	for i := 0; i < len(p); i += 2 {
		v := uint32(p[i]) << 8
		if i+1 < len(p) {
			v |= uint32(p[i+1])
		}
		// 11 trits, most significant first.
		var trits [tritsPerPair]byte
		for t := tritsPerPair - 1; t >= 0; t-- {
			trits[t] = byte(v % 3)
			v /= 3
		}
		for _, tr := range trits {
			var b byte
			if first {
				b = tr // any of the first three bases
				first = false
			} else {
				// Pick among the three bases ≠ previous.
				b = nextBase(prev, tr)
			}
			out = append(out, bases[b])
			prev = b
		}
	}
	return string(out)
}

// nextBase returns the trit-th base of {0..3} \ {prev}.
func nextBase(prev, trit byte) byte {
	b := trit
	if b >= prev {
		b++
	}
	return b
}

// prevTrit inverts nextBase.
func prevTrit(prev, b byte) byte {
	if b > prev {
		return b - 1
	}
	return b
}

// basesToBytes inverts bytesToBases; n is the byte length to recover.
func basesToBytes(s string, n int) ([]byte, error) {
	idx := func(c byte) (byte, bool) {
		switch c {
		case 'A':
			return 0, true
		case 'C':
			return 1, true
		case 'G':
			return 2, true
		case 'T':
			return 3, true
		}
		return 0, false
	}
	out := make([]byte, 0, n)
	pos := 0
	prev := byte(0)
	first := true
	for len(out) < n {
		var v uint32
		for t := 0; t < tritsPerPair; t++ {
			if pos >= len(s) {
				return nil, fmt.Errorf("dnasim: read truncated at base %d", pos)
			}
			b, ok := idx(s[pos])
			if !ok {
				return nil, fmt.Errorf("dnasim: invalid base %q", s[pos])
			}
			var tr byte
			if first {
				tr = b
				first = false
			} else {
				if b == prev {
					return nil, fmt.Errorf("dnasim: homopolymer at base %d", pos)
				}
				tr = prevTrit(prev, b)
			}
			prev = b
			pos++
			v = v*3 + uint32(tr)
		}
		out = append(out, byte(v>>8))
		if len(out) < n {
			out = append(out, byte(v))
		}
	}
	return out, nil
}

// crc8 is a CRC-8/ATM checksum for the oligo header.
func crc8(p []byte) byte {
	crc := byte(0)
	for _, b := range p {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Channel models the synthesis/sequencing pipeline.
type Channel struct {
	Coverage float64 // mean reads per oligo (Poisson)
	SubRate  float64 // per-base substitution probability
	DropRate float64 // whole-oligo synthesis dropout probability
	Seed     int64
}

// Sequence produces the noisy read set for a pool of oligos.
func (c Channel) Sequence(oligos []Oligo) []string {
	rng := rand.New(rand.NewSource(c.Seed))
	var reads []string
	for _, o := range oligos {
		if c.DropRate > 0 && rng.Float64() < c.DropRate {
			continue
		}
		n := poisson(rng, c.Coverage)
		for k := 0; k < n; k++ {
			reads = append(reads, substitute(rng, string(o), c.SubRate))
		}
	}
	// Sequencers return reads in no particular order.
	rng.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })
	return reads
}

// poisson draws from Poisson(mean) with Knuth's method; sequencing
// coverage means are small.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	l := 1.0
	for k := 0; ; k++ {
		l *= rng.Float64()
		if l < limit {
			return k
		}
	}
}

func substitute(rng *rand.Rand, s string, rate float64) string {
	if rate <= 0 {
		return s
	}
	b := []byte(s)
	for i := range b {
		if rng.Float64() < rate {
			b[i] = bases[rng.Intn(4)]
		}
	}
	return string(b)
}

// Stats reports decoder effort.
type Stats struct {
	Reads          int
	ReadsBadCRC    int
	ReadsOrphaned  int // singleton reads claiming an index past the trusted pool end
	OligosSeen     int
	OligosDropped  int
	BytesCorrected int
}

// Decode reconstructs the payload from a read pool.
func Decode(reads []string) ([]byte, *Stats, error) {
	st := &Stats{Reads: len(reads)}

	// Per-read decode, grouped by claimed index.
	byIndex := map[uint32][][]byte{}
	for _, r := range reads {
		buf, err := basesToBytes(r, oligoBytes)
		if err != nil {
			st.ReadsBadCRC++
			continue
		}
		if crc8(buf[:3]) != buf[3] {
			st.ReadsBadCRC++
			continue
		}
		idx := uint32(buf[0])<<16 | uint32(buf[1])<<8 | uint32(buf[2])
		// A CRC-8 false positive on a mangled header could claim an
		// absurd index and balloon the oligo table; cap the address
		// space (2^22 oligos ≈ 120 MB of payload, far above any pool
		// this simulator produces).
		if idx >= 1<<22 {
			st.ReadsBadCRC++
			continue
		}
		byIndex[idx] = append(byIndex[idx], buf[headerBytes:])
	}
	if len(byIndex) == 0 {
		return nil, st, ErrNoReads
	}

	// A substituted header can pass the CRC-8 check by chance (1 in 256)
	// and claim an index past the end of the pool; left alone, a single
	// such read fabricates a phantom tail of all-erasure groups and sinks
	// the whole decode. Singleton indices are therefore only trusted up to
	// the last multi-read index — inside the pool a singleton is real data
	// (or at worst one diluted consensus vote), beyond it it is noise. A
	// pool with no multi-read index at all (coverage ≤ 1) is left intact:
	// there is no support signal to filter on.
	maxTrusted, multi := uint32(0), false
	for idx, copies := range byIndex {
		if len(copies) >= 2 {
			multi = true
			if idx > maxTrusted {
				maxTrusted = idx
			}
		}
	}
	if multi {
		for idx, copies := range byIndex {
			if len(copies) == 1 && idx > maxTrusted {
				st.ReadsOrphaned++
				delete(byIndex, idx)
			}
		}
	}

	// Consensus per oligo: byte-wise plurality across copies.
	maxIdx := uint32(0)
	for idx := range byIndex {
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	oligos := make([][]byte, maxIdx+1)
	for idx, copies := range byIndex {
		oligos[idx] = consensus(copies)
		st.OligosSeen++
	}

	// Groups are GroupData+GroupParity oligos; erasure-decode columns.
	code := rs.New(GroupParity)
	stride := GroupData + GroupParity
	var data []byte
	for g := 0; g < len(oligos); g += stride {
		end := g + stride
		if end > len(oligos) {
			end = len(oligos)
		}
		group := oligos[g:end]
		nData := len(group) - GroupParity
		if nData <= 0 {
			return nil, st, fmt.Errorf("%w: group %d truncated to %d oligos", ErrCorrupt, g/stride, len(group))
		}
		var erasures []int
		for i, o := range group {
			if o == nil {
				erasures = append(erasures, i)
			}
		}
		st.OligosDropped += len(erasures)
		recovered := make([][]byte, len(group))
		for i := range recovered {
			if group[i] != nil {
				recovered[i] = group[i]
				continue
			}
			recovered[i] = make([]byte, PayloadPerOligo)
		}
		// Correction always runs: beyond the erasures, substitutions
		// that survived read consensus appear as errors in the columns.
		cw := make([]byte, len(group))
		for j := 0; j < PayloadPerOligo; j++ {
			for i := range recovered {
				cw[i] = recovered[i][j]
			}
			n, err := code.Decode(cw, erasures)
			if err != nil {
				return nil, st, fmt.Errorf("%w: group %d column %d: %v", ErrCorrupt, g/stride, j, err)
			}
			st.BytesCorrected += n
			for i := range recovered {
				recovered[i][j] = cw[i]
			}
		}
		for i := 0; i < nData; i++ {
			data = append(data, recovered[i]...)
		}
	}

	if len(data) < 4 {
		return nil, st, ErrCorrupt
	}
	n := int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	if n < 0 || n > len(data)-4 {
		return nil, st, fmt.Errorf("%w: impossible payload length %d", ErrCorrupt, n)
	}
	return data[4 : 4+n], st, nil
}

// consensus votes byte-wise across copies.
func consensus(copies [][]byte) []byte {
	if len(copies) == 1 {
		return copies[0]
	}
	out := make([]byte, PayloadPerOligo)
	counts := map[byte]int{}
	for j := 0; j < PayloadPerOligo; j++ {
		for k := range counts {
			delete(counts, k)
		}
		for _, c := range copies {
			counts[c[j]]++
		}
		best, bestN := byte(0), -1
		keys := make([]int, 0, len(counts))
		for k := range counts {
			keys = append(keys, int(k))
		}
		sort.Ints(keys) // deterministic tie-break
		for _, k := range keys {
			if counts[byte(k)] > bestN {
				best, bestN = byte(k), counts[byte(k)]
			}
		}
		out[j] = best
	}
	return out
}

// Density reports the net information density in bits per nucleotide —
// the figure of merit behind the paper's "1 EB per mm³".
func Density(payloadBytes int) float64 {
	oligos := Encode(make([]byte, payloadBytes))
	nt := 0
	for _, o := range oligos {
		nt += len(o)
	}
	return float64(payloadBytes*8) / float64(nt)
}

// GCContent returns the fraction of G/C bases in an oligo pool —
// synthesis chemistry wants this near 0.5.
func GCContent(oligos []Oligo) float64 {
	gc, total := 0, 0
	for _, o := range oligos {
		for i := 0; i < len(o); i++ {
			if o[i] == 'G' || o[i] == 'C' {
				gc++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(gc) / float64(total)
}

// MaxHomopolymerLimit is the structural guarantee of the rotating code.
const MaxHomopolymerLimit = 1

// MaxHomopolymer returns the longest single-base run in the pool.
func MaxHomopolymer(oligos []Oligo) int {
	max := 0
	for _, o := range oligos {
		run := 0
		var prev byte
		for i := 0; i < len(o); i++ {
			if i > 0 && o[i] == prev {
				run++
			} else {
				run = 1
			}
			if run > max {
				max = run
			}
			prev = o[i]
		}
	}
	return max
}
