package dnasim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func payload(n int, seed int64) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func TestTritMappingRoundTripProperty(t *testing.T) {
	f := func(p []byte) bool {
		if len(p) == 0 {
			return true
		}
		s := bytesToBases(p)
		got, err := basesToBytes(s, len(p))
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoHomopolymers(t *testing.T) {
	// The rotating code structurally forbids repeated bases — the
	// synthesis constraint the Goldman encoding exists for.
	oligos := Encode(payload(4096, 1))
	if got := MaxHomopolymer(oligos); got > MaxHomopolymerLimit {
		t.Fatalf("homopolymer run of %d", got)
	}
}

func TestGCContentBalanced(t *testing.T) {
	gc := GCContent(Encode(payload(8192, 2)))
	if gc < 0.40 || gc > 0.60 {
		t.Fatalf("GC content %.3f outside [0.40, 0.60]", gc)
	}
}

func TestOligoLengthUniform(t *testing.T) {
	oligos := Encode(payload(1000, 3))
	want := OligoLen()
	for i, o := range oligos {
		if len(o) != want {
			t.Fatalf("oligo %d has %d nt, want %d", i, len(o), want)
		}
	}
	// 187 nt at these parameters — inside the synthesis sweet spot the
	// DNA storage literature uses (~150-250 nt).
	if want < 150 || want > 250 {
		t.Fatalf("oligo length %d outside the synthesisable band", want)
	}
}

func TestRoundTripNoiseless(t *testing.T) {
	for _, n := range []int{1, 26, 30, 31, 1000, 8192} {
		data := payload(n, int64(n))
		reads := Channel{Coverage: 1, SubRate: 0, Seed: 9}.sequenceAll(Encode(data))
		got, st, err := Decode(reads)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
		if st.OligosDropped != 0 {
			t.Fatalf("n=%d: phantom dropouts %d", n, st.OligosDropped)
		}
	}
}

// sequenceAll is a deterministic channel with exactly one clean read per
// oligo (Coverage/SubRate ignored).
func (c Channel) sequenceAll(oligos []Oligo) []string {
	reads := make([]string, len(oligos))
	for i, o := range oligos {
		reads[i] = string(o)
	}
	return reads
}

func TestRoundTripSubstitutions(t *testing.T) {
	// 1 % per-base substitutions at 8× coverage: consensus plus the
	// column code must restore everything.
	data := payload(6000, 4)
	ch := Channel{Coverage: 8, SubRate: 0.01, Seed: 5}
	got, st, err := Decode(ch.Sequence(Encode(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch under substitutions")
	}
	t.Logf("reads=%d badCRC=%d corrected=%d", st.Reads, st.ReadsBadCRC, st.BytesCorrected)
}

func TestRoundTripDropouts(t *testing.T) {
	// Whole-oligo loss is the dominant DNA failure mode; the column code
	// restores up to GroupParity erasures per group.
	data := payload(6000, 6)
	oligos := Encode(data)
	rng := rand.New(rand.NewSource(7))
	var kept []Oligo
	dropped := 0
	for _, o := range oligos {
		if dropped < 20 && rng.Float64() < 0.08 {
			dropped++
			continue
		}
		kept = append(kept, o)
	}
	reads := Channel{}.sequenceAll(kept)
	got, st, err := Decode(reads)
	if err != nil {
		t.Fatalf("dropped=%d: %v", dropped, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch after dropouts")
	}
	if st.OligosDropped != dropped {
		t.Fatalf("stats dropped %d, want %d", st.OligosDropped, dropped)
	}
}

func TestFailsBeyondParity(t *testing.T) {
	// Losing more than GroupParity oligos of one group must fail loudly.
	data := payload(GroupData*PayloadPerOligo, 8) // one full group
	oligos := Encode(data)
	reads := Channel{}.sequenceAll(oligos[GroupParity+1:]) // drop 33 from the front
	if _, _, err := Decode(reads); err == nil {
		t.Fatal("decode succeeded beyond parity budget")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty read set accepted")
	}
	if _, _, err := Decode([]string{"ACGTACGT", "NNNN", strings.Repeat("A", OligoLen())}); err == nil {
		t.Fatal("garbage reads accepted")
	}
}

func TestChannelDeterministic(t *testing.T) {
	oligos := Encode(payload(500, 10))
	ch := Channel{Coverage: 5, SubRate: 0.02, DropRate: 0.05, Seed: 77}
	a := ch.Sequence(oligos)
	b := ch.Sequence(oligos)
	if len(a) != len(b) {
		t.Fatal("nondeterministic read count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic reads")
		}
	}
}

func TestEndToEndChannel(t *testing.T) {
	// The §5 integration: DBCoder-style bit stream → oligos → noisy
	// sequencing (substitutions + dropout) → bit-exact payload.
	data := payload(12000, 11)
	ch := Channel{Coverage: 10, SubRate: 0.005, DropRate: 0.02, Seed: 13}
	got, st, err := Decode(ch.Sequence(Encode(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("end-to-end channel mismatch")
	}
	t.Logf("oligos seen=%d dropped=%d corrected=%d", st.OligosSeen, st.OligosDropped, st.BytesCorrected)
}

func TestDensity(t *testing.T) {
	d := Density(100 * 1024)
	// Rotating ternary code: log2(3)/2 ≈ 0.79 bits/nt per trit pair
	// budget; with header, length and parity overhead the net figure
	// must land near 1.2-1.35 bits/nt.
	if d < 1.0 || d > 1.6 {
		t.Fatalf("density %.3f bits/nt outside plausible band", d)
	}
}

func TestConsensusMajority(t *testing.T) {
	a := bytes.Repeat([]byte{1}, PayloadPerOligo)
	b := bytes.Repeat([]byte{2}, PayloadPerOligo)
	got := consensus([][]byte{a, b, a})
	if !bytes.Equal(got, a) {
		t.Fatal("majority lost")
	}
}

func TestCRC8KnownVector(t *testing.T) {
	// CRC-8/ATM of "123456789" is 0xF4.
	if got := crc8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("crc8 check value %#x, want 0xF4", got)
	}
}
