package gf256

import "encoding/binary"

// Slice kernels: the group-wide codecs (rs.EncodeRowsInto, the outer-code
// group recovery) express their work as "accumulate c·src into dst" over
// whole payload rows instead of gathering byte columns. The inner loops
// here fold eight bytes per iteration into one 64-bit XOR — the same
// word-at-a-time trick the per-codeword RS encoder uses for its parity
// taps, lifted to operate across all codewords of a group at once.

// XorSlice xors src into dst element-wise over min(len(dst), len(src))
// bytes: dst[i] ^= src[i]. The tail beyond the shorter slice is untouched,
// so a short src behaves as if zero-padded — exactly the column padding
// rule of the outer group code.
func XorSlice(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 {
		binary.LittleEndian.PutUint64(dst,
			binary.LittleEndian.Uint64(dst)^binary.LittleEndian.Uint64(src))
		dst, src = dst[8:], src[8:]
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// MulAddSlice accumulates c·src into dst over min(len(dst), len(src))
// bytes: dst[i] ^= c·src[i]. c = 0 is a no-op and c = 1 degenerates to
// XorSlice; otherwise the multiplication goes through a freshly built
// MulTable row. Callers looping over many constants against the same
// slices can build the row once and use MulAddSliceTab directly.
func MulAddSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		XorSlice(dst, src)
		return
	}
	var tab [256]byte
	MulTable(c, &tab)
	MulAddSliceTab(dst, src, &tab)
}

// MulAddSliceTab accumulates tab[src[i]] into dst[i] over
// min(len(dst), len(src)) bytes, where tab is a MulTable row (or any byte
// mapping with tab[0] = 0, preserving the zero-padding rule). Eight table
// lookups are gathered into one 64-bit word and folded into dst with a
// single load-XOR-store.
func MulAddSliceTab(dst, src []byte, tab *[256]byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 {
		w := uint64(tab[src[0]]) |
			uint64(tab[src[1]])<<8 |
			uint64(tab[src[2]])<<16 |
			uint64(tab[src[3]])<<24 |
			uint64(tab[src[4]])<<32 |
			uint64(tab[src[5]])<<40 |
			uint64(tab[src[6]])<<48 |
			uint64(tab[src[7]])<<56
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^w)
		dst, src = dst[8:], src[8:]
	}
	for i := range dst {
		dst[i] ^= tab[src[i]]
	}
}
