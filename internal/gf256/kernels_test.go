package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// kernelLengths covers the word-fold boundaries: empty, sub-word, exact
// words, word+tail, and a long run.
var kernelLengths = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 40, 255, 1000}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestXorSlice pins the word-folded XOR to the byte-wise formulation,
// including mismatched lengths (the shorter slice bounds the work).
func TestXorSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range kernelLengths {
		for _, srcLen := range []int{n, n / 2, n + 5} {
			dst := randBytes(rng, n)
			src := randBytes(rng, srcLen)
			want := append([]byte(nil), dst...)
			for i := 0; i < n && i < srcLen; i++ {
				want[i] ^= src[i]
			}
			XorSlice(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("XorSlice(len %d, src %d) diverged from byte-wise XOR", n, srcLen)
			}
		}
	}
}

// TestMulAddSlice pins the 8-way table fold to per-byte Mul across every
// constant, the fold-boundary lengths, and mismatched slice lengths.
func TestMulAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 256; c++ {
		n := kernelLengths[c%len(kernelLengths)]
		for _, srcLen := range []int{n, n/2 + 1} {
			dst := randBytes(rng, n)
			src := randBytes(rng, srcLen)
			want := append([]byte(nil), dst...)
			for i := 0; i < n && i < srcLen; i++ {
				want[i] ^= Mul(byte(c), src[i])
			}
			MulAddSlice(dst, src, byte(c))
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlice(c=%#x, len %d, src %d) diverged from per-byte Mul", c, n, srcLen)
			}
		}
	}
}

// TestMulAddSliceTab checks the precomputed-row entry point against
// MulAddSlice for a spread of constants and lengths.
func TestMulAddSliceTab(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var tab [256]byte
	for _, c := range []byte{0, 1, 2, 0x1d, 0x80, 0xff} {
		MulTable(c, &tab)
		for _, n := range kernelLengths {
			dst := randBytes(rng, n)
			src := randBytes(rng, n)
			want := append([]byte(nil), dst...)
			MulAddSlice(want, src, c)
			MulAddSliceTab(dst, src, &tab)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSliceTab(c=%#x, len %d) diverged from MulAddSlice", c, n)
			}
		}
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	dst := make([]byte, 4096)
	src := randBytes(rand.New(rand.NewSource(4)), 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, 0x57)
	}
}
