package gf256

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTablesConsistent(t *testing.T) {
	for i := 1; i < 256; i++ {
		a := byte(i)
		if Exp(Log(a)) != a {
			t.Fatalf("exp(log(%#x)) = %#x", a, Exp(Log(a)))
		}
	}
	if expTable[0] != 1 {
		t.Fatalf("α^0 = %d, want 1", expTable[0])
	}
	if expTable[1] != 2 {
		t.Fatalf("α^1 = %d, want 2 (α = x)", expTable[1])
	}
}

func TestMulByRepeatedAdd(t *testing.T) {
	// Cross-check table multiplication against shift-and-xor (carry-less)
	// multiplication reduced mod Poly.
	slow := func(a, b byte) byte {
		var p uint16
		x, y := uint16(a), uint16(b)
		for y != 0 {
			if y&1 != 0 {
				p ^= x
			}
			x <<= 1
			if x&0x100 != 0 {
				x ^= Poly
			}
			y >>= 1
		}
		return byte(p)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b += 7 {
			if got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	commut := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	distrib := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	identity := func(a byte) bool { return Mul(a, 1) == a && Add(a, 0) == a }
	for name, f := range map[string]any{
		"commutativity":  commut,
		"associativity":  assoc,
		"distributivity": distrib,
		"identity":       identity,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestInverse(t *testing.T) {
	for i := 1; i < 256; i++ {
		a := byte(i)
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%#x", a)
		}
		if Div(1, a) != Inv(a) {
			t.Fatalf("Div(1,a) ≠ Inv(a) for a=%#x", a)
		}
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"div-by-zero": func() { Div(1, 0) },
		"inv-of-zero": func() { Inv(0) },
		"log-of-zero": func() { Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExpNegative(t *testing.T) {
	for n := -600; n <= 600; n++ {
		want := Exp(((n % 255) + 255) % 255)
		if Exp(n) != want {
			t.Fatalf("Exp(%d) = %#x, want %#x", n, Exp(n), want)
		}
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 || Pow(0, 5) != 0 || Pow(7, 0) != 1 {
		t.Fatal("Pow edge cases wrong")
	}
	f := func(a byte, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		want := byte(1)
		for i := 0; i < n; i++ {
			want = Mul(want, a)
		}
		return Pow(a, n) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyMulEval(t *testing.T) {
	// (x+1)(x+2) evaluated must equal pointwise product of factors.
	f := func(a, b, x byte) bool {
		pa := []byte{1, a}
		pb := []byte{1, b}
		prod := PolyMul(pa, pb)
		return PolyEval(prod, x) == Mul(PolyEval(pa, x), PolyEval(pb, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyAdd(t *testing.T) {
	got := PolyAdd([]byte{1, 2, 3}, []byte{5, 5})
	want := []byte{1, 7, 6}
	if len(got) != len(want) {
		t.Fatalf("len=%d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolyAdd = %v, want %v", got, want)
		}
	}
}

func TestTableImage(t *testing.T) {
	exp, log := TableImage()
	if len(exp) != 256 || len(log) != 256 {
		t.Fatal("table sizes")
	}
	if exp[255] != exp[0] {
		t.Fatal("exp wrap")
	}
	for i := 1; i < 255; i++ {
		if log[exp[i]] != byte(i) {
			t.Fatalf("log(exp(%d)) mismatch", i)
		}
	}
}

func TestMulSlice(t *testing.T) {
	p := []byte{0, 1, 2, 3, 255}
	want := make([]byte, len(p))
	for i, v := range p {
		want[i] = Mul(v, 0x1d)
	}
	MulSlice(p, 0x1d)
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	MulSlice(p, 0)
	for _, v := range p {
		if v != 0 {
			t.Fatal("MulSlice by zero must zero")
		}
	}
}

func TestPolyString(t *testing.T) {
	if s := PolyString([]byte{1, 0, 0x1d}); !strings.Contains(s, "x^2") {
		t.Fatalf("PolyString = %q", s)
	}
	if PolyString(nil) != "0" {
		t.Fatal("empty poly should print 0")
	}
	if PolyString([]byte{0}) != "0" {
		t.Fatalf("zero poly prints %q", PolyString([]byte{0}))
	}
}

func TestMulTable(t *testing.T) {
	var row [256]byte
	for c := 0; c < 256; c++ {
		MulTable(byte(c), &row)
		for x := 0; x < 256; x++ {
			if row[x] != Mul(byte(c), byte(x)) {
				t.Fatalf("MulTable(%d)[%d] = %d, want %d", c, x, row[x], Mul(byte(c), byte(x)))
			}
		}
	}
}
