package lz77

import (
	"bytes"
	"math/rand"
	"testing"
)

// matchLenRef is the byte-at-a-time reference formulation the word-compare
// matchLen must agree with everywhere.
func matchLenRef(s []byte, a, b, limit int) int {
	n := 0
	for n < limit && s[a+n] == s[b+n] {
		n++
	}
	return n
}

// TestMatchLenDifferential pins the 8-byte-word matchLen to the byte loop
// on adversarial inputs: a mismatch planted at every offset around the
// word size, every limit around the word size, and unaligned positions.
func TestMatchLenDifferential(t *testing.T) {
	base := make([]byte, 256)
	rng := rand.New(rand.NewSource(7))
	rng.Read(base)

	check := func(s []byte, a, b, limit int) {
		t.Helper()
		got := matchLen(s, a, b, limit)
		want := matchLenRef(s, a, b, limit)
		if got != want {
			t.Fatalf("matchLen(a=%d, b=%d, limit=%d) = %d, want %d", a, b, limit, got, want)
		}
	}

	// Mismatch planted at every offset 0..40 past b, for every limit 0..48
	// and unaligned a: exercises the first differing byte landing in every
	// lane of the 8-byte word and in the tail loop.
	for mismatch := 0; mismatch <= 40; mismatch++ {
		for _, a := range []int{0, 1, 3, 7, 8, 13} {
			b := 100 + a%3 // keep a < b, unaligned relative offsets
			s := append([]byte(nil), base...)
			copy(s[b:], s[a:a+50])
			if b+mismatch < len(s) {
				s[b+mismatch] ^= 0x40
			}
			for limit := 0; limit <= 48 && b+limit <= len(s); limit++ {
				check(s, a, b, limit)
			}
		}
	}

	// Identical overlapping regions (the RLE case: a+limit may exceed b).
	run := bytes.Repeat([]byte{0xAB}, 300)
	for _, dist := range []int{1, 2, 7, 8, 9} {
		for limit := 0; limit <= MaxMatch && 150+limit <= len(run); limit++ {
			check(run, 150-dist, 150, limit)
		}
	}

	// Random fuzzing over low-entropy input (frequent partial matches).
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(rng.Intn(4))
	}
	for trial := 0; trial < 20000; trial++ {
		b := 1 + rng.Intn(len(src)-1)
		a := rng.Intn(b)
		limit := rng.Intn(len(src) - b + 1)
		if limit > MaxMatch {
			limit = MaxMatch
		}
		check(src, a, b, limit)
	}
}

// findAllValid walks src through a finder the way an encoder would and
// checks every reported match is a real back-reference.
func findAllValid(t *testing.T, f *Finder, src []byte) int {
	t.Helper()
	matched := 0
	i := 0
	for i < len(src) {
		m := f.Find(i)
		if m.Length > 0 {
			if m.Length < MinMatch || m.Length > MaxMatch {
				t.Fatalf("pos %d: bad length %+v", i, m)
			}
			if m.Distance <= 0 || m.Distance > i || m.Distance > MaxDistance {
				t.Fatalf("pos %d: bad distance %+v", i, m)
			}
			if !bytes.Equal(src[i:i+m.Length], src[i-m.Distance:i-m.Distance+m.Length]) {
				t.Fatalf("pos %d: match content mismatch %+v", i, m)
			}
			f.Insert(i)
			f.InsertRange(i+1, m.Length-1)
			i += m.Length
			matched += m.Length
			continue
		}
		f.Insert(i)
		i++
	}
	return matched
}

// TestConfigVariantsValid runs every Config combination over repetitive and
// random inputs: the speed options may change which matches are found, but
// every match must stay a valid back-reference.
func TestConfigVariantsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	text := bytes.Repeat([]byte("INSERT INTO lineitem VALUES (42, 'x');\n"), 400)
	noise := make([]byte, 8192)
	rng.Read(noise)
	runs := append(bytes.Repeat([]byte{5}, 2000), noise[:512]...)

	for _, src := range [][]byte{text, noise, runs} {
		for _, cfg := range []Config{
			{},
			{Depth: 16},
			{HashLen: 4},
			{SkipAhead: true},
			{HashLen: 4, SkipAhead: true, Depth: 8},
		} {
			f := NewFinderConfig(src, cfg)
			matched := findAllValid(t, f, src)
			if &src[0] == &text[0] && matched == 0 {
				t.Fatalf("cfg %+v found no matches in repetitive text", cfg)
			}
		}
	}
}

// TestInsertRangeMatchesInsert pins InsertRange without SkipAhead to be
// exactly n Inserts: the chains (and therefore every future Find) must be
// identical, since the default archival encoder runs through InsertRange.
func TestInsertRangeMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := make([]byte, 3000)
	for i := range src {
		src[i] = byte(rng.Intn(6))
	}
	a := NewFinder(src, 64)
	b := NewFinder(src, 64)
	i := 0
	for i < len(src) {
		n := 1 + rng.Intn(300)
		if i+n > len(src) {
			n = len(src) - i
		}
		for j := 0; j < n; j++ {
			a.Insert(i + j)
		}
		b.InsertRange(i, n)
		i += n
	}
	for i := range a.head {
		if a.head[i] != b.head[i] {
			t.Fatalf("head[%d]: %d vs %d", i, a.head[i], b.head[i])
		}
	}
	for i := range a.prev {
		if a.prev[i] != b.prev[i] {
			t.Fatalf("prev[%d]: %d vs %d", i, a.prev[i], b.prev[i])
		}
	}
}

// TestSkipAheadThinsChains checks the skip option actually skips: inside a
// long run, only every skipAheadStep-th interior position is indexed.
func TestSkipAheadThinsChains(t *testing.T) {
	src := bytes.Repeat([]byte{9}, 500)
	f := NewFinderConfig(src, Config{SkipAhead: true})
	f.InsertRange(0, 400)
	count := 0
	for cand := f.head[f.hash(0)]; cand >= 0; cand = f.prev[cand] {
		count++
		if count > 400 {
			t.Fatal("chain cycle")
		}
	}
	want := (400 + skipAheadStep - 1) / skipAheadStep
	if count != want {
		t.Fatalf("chain length %d, want %d (every %d-th of 400)", count, want, skipAheadStep)
	}
}

func BenchmarkMatchLen(b *testing.B) {
	src := bytes.Repeat([]byte{3}, MaxMatch+64)
	b.Run("long", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if matchLen(src, 0, 64, MaxMatch) != MaxMatch {
				b.Fatal("bad length")
			}
		}
	})
	src2 := append([]byte(nil), src...)
	src2[64+5] ^= 1
	b.Run("short", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if matchLen(src2, 0, 64, MaxMatch) != 5 {
				b.Fatal("bad length")
			}
		}
	})
}
