package lz77

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFindBasic(t *testing.T) {
	src := []byte("abcabcabc")
	f := NewFinder(src, 64)
	for i := 0; i < 3; i++ {
		f.Insert(i)
	}
	m := f.Find(3)
	if m.Distance != 3 || m.Length != 6 {
		t.Fatalf("Find(3) = %+v, want dist=3 len=6", m)
	}
}

func TestFindNone(t *testing.T) {
	src := []byte("abcdefgh")
	f := NewFinder(src, 64)
	for i := 0; i < 4; i++ {
		f.Insert(i)
	}
	if m := f.Find(4); m.Length != 0 {
		t.Fatalf("unexpected match %+v", m)
	}
}

func TestFindNearEnd(t *testing.T) {
	src := []byte("xyxy")
	f := NewFinder(src, 64)
	f.Insert(0)
	f.Insert(1)
	if m := f.Find(3); m.Length != 0 {
		t.Fatalf("match shorter than MinMatch reported: %+v", m)
	}
	// Find and Insert past the end must be safe no-ops.
	f.Insert(3)
	if m := f.Find(4); m.Length != 0 {
		t.Fatal("out of range find")
	}
}

func TestMatchesAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 20000)
	for i := range src {
		src[i] = byte(rng.Intn(8)) // low entropy: many matches
	}
	f := NewFinder(src, 64)
	for i := 0; i < len(src); i++ {
		m := f.Find(i)
		if m.Length > 0 {
			if m.Distance <= 0 || m.Distance > i {
				t.Fatalf("pos %d: bad distance %+v", i, m)
			}
			if m.Length > MaxMatch {
				t.Fatalf("pos %d: overlong %+v", i, m)
			}
			if !bytes.Equal(src[i:i+m.Length], src[i-m.Distance:i-m.Distance+m.Length]) {
				t.Fatalf("pos %d: match content mismatch %+v", i, m)
			}
		}
		f.Insert(i)
	}
}

func TestExtendAt(t *testing.T) {
	src := []byte("abcdabcd")
	f := NewFinder(src, 64)
	if n := f.ExtendAt(4, 4); n != 4 {
		t.Fatalf("ExtendAt(4,4) = %d, want 4", n)
	}
	if n := f.ExtendAt(4, 5); n != 0 {
		t.Fatalf("ExtendAt with dist>i = %d, want 0", n)
	}
	if n := f.ExtendAt(4, 0); n != 0 {
		t.Fatal("dist 0 must be invalid")
	}
}

func TestMaxMatchCap(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 1000)
	f := NewFinder(src, 64)
	for i := 0; i < 500; i++ {
		f.Insert(i)
	}
	m := f.Find(500)
	if m.Length != MaxMatch {
		t.Fatalf("length %d, want capped at %d", m.Length, MaxMatch)
	}
}

func TestDepthDefault(t *testing.T) {
	f := NewFinder([]byte("abc"), 0)
	if f.depth != 64 {
		t.Fatalf("default depth = %d", f.depth)
	}
}

func BenchmarkFindInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 1<<20)
	for i := range src {
		src[i] = byte(rng.Intn(32))
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		f := NewFinder(src, 32)
		for i := 0; i < len(src); i++ {
			f.Find(i)
			f.Insert(i)
		}
	}
}
