// Package lz77 provides the hash-chain match finder behind DBCoder's LZ77
// layer (§3.1). It locates back-references (distance, length) in a sliding
// window; the entropy stage (internal/rangecoder) turns the resulting token
// stream into bits.
package lz77

const (
	// MinMatch is the shortest match the finder reports. Shorter rep-matches
	// are handled by the caller against its last-distance register.
	MinMatch = 3
	// MaxMatch is the longest match representable by the DBC1 length coder.
	MaxMatch = 273
	// MaxDistance bounds the window the finder searches.
	MaxDistance = 1 << 20

	hashBits = 16
	hashSize = 1 << hashBits
)

// Match is a back-reference into the already-emitted stream.
type Match struct {
	Distance int // 1-based distance back from the current position
	Length   int
}

// Finder finds matches in a fixed input buffer using 3-byte hash chains.
type Finder struct {
	src   []byte
	head  []int32 // hash -> most recent position
	prev  []int32 // position -> previous position with same hash
	depth int     // max chain links to follow
}

// NewFinder returns a finder over src. depth bounds the chain walk per
// query; 64 is a good speed/ratio compromise, higher favours ratio.
func NewFinder(src []byte, depth int) *Finder {
	if depth <= 0 {
		depth = 64
	}
	f := &Finder{
		src:   src,
		head:  make([]int32, hashSize),
		prev:  make([]int32, len(src)),
		depth: depth,
	}
	for i := range f.head {
		f.head[i] = -1
	}
	return f
}

func (f *Finder) hash(i int) uint32 {
	s := f.src
	h := uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16
	return (h * 2654435761) >> (32 - hashBits)
}

// Insert registers position i in the hash chains. Positions must be
// inserted in increasing order, and every position the encoder steps past
// (including those inside emitted matches) should be inserted.
func (f *Finder) Insert(i int) {
	if i+MinMatch > len(f.src) {
		return
	}
	h := f.hash(i)
	f.prev[i] = f.head[h]
	f.head[h] = int32(i)
}

// Find returns the longest match for position i (without inserting it), or
// a zero Match if none of at least MinMatch exists.
func (f *Finder) Find(i int) Match {
	if i+MinMatch > len(f.src) {
		return Match{}
	}
	limit := len(f.src) - i
	if limit > MaxMatch {
		limit = MaxMatch
	}
	var best Match
	cand := f.head[f.hash(i)]
	for steps := 0; cand >= 0 && steps < f.depth; steps++ {
		j := int(cand)
		dist := i - j
		if dist > MaxDistance {
			break
		}
		// Quick reject: match must beat best; check the byte past best.
		if best.Length == 0 || (best.Length < limit && f.src[j+best.Length] == f.src[i+best.Length]) {
			n := matchLen(f.src, j, i, limit)
			if n > best.Length {
				best = Match{Distance: dist, Length: n}
				if n == limit {
					break
				}
			}
		}
		cand = f.prev[j]
	}
	if best.Length < MinMatch {
		return Match{}
	}
	return best
}

// ExtendAt returns the length of the match at position i against distance
// dist (used for rep-distance probing), 0 if invalid.
func (f *Finder) ExtendAt(i, dist int) int {
	if dist <= 0 || dist > i {
		return 0
	}
	limit := len(f.src) - i
	if limit > MaxMatch {
		limit = MaxMatch
	}
	return matchLen(f.src, i-dist, i, limit)
}

func matchLen(s []byte, a, b, limit int) int {
	n := 0
	for n < limit && s[a+n] == s[b+n] {
		n++
	}
	return n
}
