// Package lz77 provides the hash-chain match finder behind DBCoder's LZ77
// layer (§3.1). It locates back-references (distance, length) in a sliding
// window; the entropy stage (internal/rangecoder) turns the resulting token
// stream into bits.
package lz77

import (
	"encoding/binary"
	"math/bits"
)

const (
	// MinMatch is the shortest match the finder reports. Shorter rep-matches
	// are handled by the caller against its last-distance register.
	MinMatch = 3
	// MaxMatch is the longest match representable by the DBC1 length coder.
	MaxMatch = 273
	// MaxDistance bounds the window the finder searches.
	MaxDistance = 1 << 20

	hashBits = 16
	hashSize = 1 << hashBits

	// skipAheadMin/skipAheadStep govern the SkipAhead option: while
	// stepping over a match longer than skipAheadMin, only every
	// skipAheadStep-th interior position enters the hash chains.
	skipAheadMin  = 64
	skipAheadStep = 4
)

// Match is a back-reference into the already-emitted stream.
type Match struct {
	Distance int // 1-based distance back from the current position
	Length   int
}

// Config tunes a Finder beyond the chain depth. The zero value selects the
// reference behaviour (3-byte hash, full insertion), which is what DBC1
// archival encoding uses — the speed options below trade compression ratio
// for encode throughput and therefore change the token stream.
type Config struct {
	// Depth bounds the chain walk per query; 0 selects the default (64).
	Depth int

	// HashLen selects how many bytes feed the chain hash: 3 (the default)
	// or 4. A 4-byte hash sharply cuts chain collisions on long inputs
	// (fewer false candidates per Find), at the cost of missing 3-byte
	// matches whose fourth byte differs; positions within 4 bytes of the
	// end are not indexed.
	HashLen int

	// SkipAhead makes InsertRange index only every skipAheadStep-th
	// position inside matches longer than skipAheadMin, the classic
	// fast-mode trade on highly repetitive inputs.
	SkipAhead bool
}

// Finder finds matches in a fixed input buffer using hash chains over
// 3-byte (default) or 4-byte prefixes.
type Finder struct {
	src   []byte
	head  []int32 // hash -> most recent position
	prev  []int32 // position -> previous position with same hash
	depth int     // max chain links to follow
	hash4 bool    // 4-byte hash instead of 3-byte
	skip  bool    // skip-ahead insertion inside long matches
}

// NewFinder returns a finder over src. depth bounds the chain walk per
// query; 64 is a good speed/ratio compromise, higher favours ratio.
func NewFinder(src []byte, depth int) *Finder {
	return NewFinderConfig(src, Config{Depth: depth})
}

// NewFinderConfig returns a finder over src with explicit tuning options.
func NewFinderConfig(src []byte, cfg Config) *Finder {
	if cfg.Depth <= 0 {
		cfg.Depth = 64
	}
	f := &Finder{
		src:   src,
		head:  make([]int32, hashSize),
		prev:  make([]int32, len(src)),
		depth: cfg.Depth,
		hash4: cfg.HashLen == 4,
		skip:  cfg.SkipAhead,
	}
	for i := range f.head {
		f.head[i] = -1
	}
	return f
}

// hashMin returns the number of bytes the configured hash consumes.
func (f *Finder) hashMin() int {
	if f.hash4 {
		return 4
	}
	return MinMatch
}

func (f *Finder) hash(i int) uint32 {
	s := f.src
	if f.hash4 {
		return (binary.LittleEndian.Uint32(s[i:]) * 2654435761) >> (32 - hashBits)
	}
	h := uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16
	return (h * 2654435761) >> (32 - hashBits)
}

// Insert registers position i in the hash chains. Positions must be
// inserted in increasing order, and every position the encoder steps past
// (including those inside emitted matches) should be inserted.
func (f *Finder) Insert(i int) {
	if i+f.hashMin() > len(f.src) {
		return
	}
	h := f.hash(i)
	f.prev[i] = f.head[h]
	f.head[h] = int32(i)
}

// InsertRange registers positions [i, i+n) — typically the interior of an
// emitted match the encoder is stepping over. With the SkipAhead option
// and n above the skip threshold, only every skipAheadStep-th position is
// indexed; otherwise every position is, exactly as n calls to Insert.
func (f *Finder) InsertRange(i, n int) {
	if n <= 0 {
		return
	}
	last := len(f.src) - f.hashMin()
	if i+n-1 > last {
		n = last - i + 1
		if n <= 0 {
			return
		}
	}
	step := 1
	if f.skip && n > skipAheadMin {
		step = skipAheadStep
	}
	for j := 0; j < n; j += step {
		h := f.hash(i + j)
		f.prev[i+j] = f.head[h]
		f.head[h] = int32(i + j)
	}
}

// Find returns the longest match for position i (without inserting it), or
// a zero Match if none of at least MinMatch exists.
func (f *Finder) Find(i int) Match {
	if i+f.hashMin() > len(f.src) {
		return Match{}
	}
	limit := len(f.src) - i
	if limit > MaxMatch {
		limit = MaxMatch
	}
	var best Match
	cand := f.head[f.hash(i)]
	for steps := 0; cand >= 0 && steps < f.depth; steps++ {
		j := int(cand)
		dist := i - j
		if dist > MaxDistance {
			break
		}
		// Quick reject: match must beat best; check the byte past best.
		if best.Length == 0 || (best.Length < limit && f.src[j+best.Length] == f.src[i+best.Length]) {
			n := matchLen(f.src, j, i, limit)
			if n > best.Length {
				best = Match{Distance: dist, Length: n}
				if n == limit {
					break
				}
			}
		}
		cand = f.prev[j]
	}
	if best.Length < MinMatch {
		return Match{}
	}
	return best
}

// ExtendAt returns the length of the match at position i against distance
// dist (used for rep-distance probing), 0 if invalid.
func (f *Finder) ExtendAt(i, dist int) int {
	if dist <= 0 || dist > i {
		return 0
	}
	limit := len(f.src) - i
	if limit > MaxMatch {
		limit = MaxMatch
	}
	return matchLen(f.src, i-dist, i, limit)
}

// matchLen returns the length of the common prefix of s[a:] and s[b:],
// capped at limit. Callers guarantee a < b and b+limit <= len(s), so the
// word loop below never reads past the buffer: while n+8 <= limit, both
// s[a+n:a+n+8] and s[b+n:b+n+8] are in range.
//
// It compares 8 bytes per step and pinpoints the first mismatching byte
// with TrailingZeros64 — the words are read little-endian, so the lowest
// differing octet of x^y is the first differing byte. The result is
// identical to the byte-at-a-time loop (pinned by TestMatchLenDifferential).
func matchLen(s []byte, a, b, limit int) int {
	n := 0
	for n+8 <= limit {
		x := binary.LittleEndian.Uint64(s[a+n:])
		y := binary.LittleEndian.Uint64(s[b+n:])
		if x != y {
			return n + bits.TrailingZeros64(x^y)>>3
		}
		n += 8
	}
	for n < limit && s[a+n] == s[b+n] {
		n++
	}
	return n
}
