package columnar

import (
	"testing"

	"microlonys/internal/sqldump"
	"microlonys/tpch"
)

func TestColumnSections(t *testing.T) {
	db := tpch.Generate(0.002, 7)
	dump := sqldump.Dump(db)
	secs, err := ColumnSections(dump)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 0
	for _, tb := range db.Tables {
		wantCols += len(tb.Columns)
	}
	if len(secs) != wantCols {
		t.Fatalf("%d column sections, want %d", len(secs), wantCols)
	}
	// Agreement with sqldump's table extents: every column covers exactly
	// its table's rows region.
	tables, err := sqldump.Sections(dump)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]sqldump.Section{}
	for _, s := range tables {
		byName[s.Table] = s
	}
	for _, c := range secs {
		ts, ok := byName[c.Table]
		if !ok {
			t.Fatalf("column %s.%s names unknown table", c.Table, c.Column)
		}
		if c.Off != ts.Off || c.Len != ts.Len {
			t.Fatalf("%s.%s extent (%d,%d) != table extent (%d,%d)",
				c.Table, c.Column, c.Off, c.Len, ts.Off, ts.Len)
		}
	}
	if _, err := ColumnSections([]byte("nothing\n")); err == nil {
		t.Fatal("want error for table-free input")
	}
}
