// Package columnar implements the compressed, columnar, database-specific
// layout scheme the paper names as DBCoder's next step (§3.1 "We are
// working on supporting more advanced database-specific, compressed,
// columnar layout schemes", §5 future work).
//
// The encoder understands the pg_dump-style SQL text archive: it locates
// every COPY ... FROM stdin block, transposes its tab-separated rows into
// columns, and encodes each column with a type-specific scheme inferred
// from the values:
//
//   - integers   → zigzag varints (delta, direct or frame-of-reference,
//     whichever measures smallest for the column)
//   - decimals   → scaled integers (fixed two-digit fraction), same coding
//   - dates      → packed y/m/d serials, same coding
//   - strings    → value dictionary (low cardinality), word dictionary
//     (small-vocabulary text such as TPC-H comments), or
//     length-prefixed verbatim text
//
// Everything outside the COPY rows (DDL, comments, the COPY headers)
// is preserved verbatim, and every type-specific column encoder verifies
// canonical round-tripping value-by-value at encode time, falling back to
// string coding otherwise — decoding is always bit-exact, not merely
// semantically equal. The transposed, typed streams are finally passed
// through the generic DBCoder entropy stage, so the measured gain over
// plain DBCoder isolates the layout change, which is exactly the
// comparison the paper's claim is about.
//
// The archived-decoder (DynaRisc) port of this layout is future work here
// as it is in the paper: a columnar archive currently ships with the
// native decoder only, so the ULE pipeline in internal/core keeps using
// the generic layout whose decoder is archived on the medium.
package columnar

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"microlonys/internal/dbcoder"
)

// Magic identifies a columnar archive blob.
const Magic = "CLC1"

// Column encoding tags.
const (
	colString byte = iota // length-prefixed verbatim text
	colDict               // ≤255 distinct values: dictionary + 1-byte refs
	colInt                // canonical integers: zigzag varints
	colDec                // canonical d+.dd decimals: scaled zigzag varints
	colDate               // canonical YYYY-MM-DD: packed serial varints
	colWords              // space-joined words: dictionary + varint refs
)

// Numeric columns carry a mode byte choosing the representation: sorted
// key columns favour first differences, random-valued columns (prices,
// quantities) favour direct values, and offset ranges (dates, keys with
// a floor) favour frame-of-reference — the encoder measures all three.
const (
	modeDelta  byte = iota
	modeDirect      // zigzag varint of each value
	modeFOR         // zigzag varint of column min, then varints of v-min
)

// Errors.
var (
	ErrNotArchive = errors.New("columnar: input is not a recognisable SQL archive")
	ErrCorrupt    = errors.New("columnar: corrupt blob")
)

// rowsMarker replaces a COPY block's row region inside the preserved
// frame text. The byte cannot appear in a text archive.
const rowsMarker = 0x00

// copyBlock is one COPY region located in the dump.
type copyBlock struct {
	rows [][]string // rows[r][c]
	cols int
}

// Compress encodes a pg_dump-style SQL text archive into the columnar
// layout. Inputs that do not contain at least one COPY block are
// rejected (use the generic DBCoder for arbitrary payloads).
func Compress(dump []byte) ([]byte, error) {
	frame, blocks, err := split(dump)
	if err != nil {
		return nil, err
	}

	var body bytes.Buffer
	putUvarint(&body, uint64(len(frame)))
	body.Write(frame)
	putUvarint(&body, uint64(len(blocks)))
	for _, blk := range blocks {
		putUvarint(&body, uint64(blk.cols))
		putUvarint(&body, uint64(len(blk.rows)))
		for c := 0; c < blk.cols; c++ {
			col := make([]string, len(blk.rows))
			for r, row := range blk.rows {
				col[r] = row[c]
			}
			encodeColumn(&body, col)
		}
	}

	// Generic entropy stage on the transposed, typed streams.
	packed := dbcoder.Compress(body.Bytes())

	out := make([]byte, 0, len(packed)+12)
	out = append(out, Magic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(dump)))
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(dump))
	out = append(out, packed...)
	return out, nil
}

// Decompress restores the exact SQL archive bytes.
func Decompress(blob []byte) ([]byte, error) {
	if len(blob) < 12 || string(blob[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rawLen := binary.BigEndian.Uint32(blob[4:8])
	wantCRC := binary.BigEndian.Uint32(blob[8:12])
	body, err := dbcoder.Decompress(blob[12:])
	if err != nil {
		return nil, fmt.Errorf("%w: entropy stage: %v", ErrCorrupt, err)
	}
	r := bytes.NewReader(body)

	frameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: frame length", ErrCorrupt)
	}
	frame := make([]byte, frameLen)
	if _, err := r.Read(frame); err != nil {
		return nil, fmt.Errorf("%w: frame", ErrCorrupt)
	}
	nBlocks, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: block count", ErrCorrupt)
	}

	var out bytes.Buffer
	out.Grow(int(rawLen))
	rest := frame
	for b := uint64(0); b < nBlocks; b++ {
		i := bytes.IndexByte(rest, rowsMarker)
		if i < 0 {
			return nil, fmt.Errorf("%w: marker %d missing", ErrCorrupt, b)
		}
		out.Write(rest[:i])
		rest = rest[i+1:]

		cols, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d cols", ErrCorrupt, b)
		}
		nRows, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d rows", ErrCorrupt, b)
		}
		columns := make([][]string, cols)
		for c := range columns {
			col, err := decodeColumn(r, int(nRows))
			if err != nil {
				return nil, fmt.Errorf("%w: block %d col %d: %v", ErrCorrupt, b, c, err)
			}
			columns[c] = col
		}
		for row := 0; row < int(nRows); row++ {
			for c := range columns {
				if c > 0 {
					out.WriteByte('\t')
				}
				out.WriteString(columns[c][row])
			}
			out.WriteByte('\n')
		}
	}
	out.Write(rest)

	if out.Len() != int(rawLen) {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, out.Len(), rawLen)
	}
	if crc32.ChecksumIEEE(out.Bytes()) != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return out.Bytes(), nil
}

// IsColumnar reports whether blob carries the columnar magic.
func IsColumnar(blob []byte) bool {
	return len(blob) >= 4 && string(blob[:4]) == Magic
}

// ColumnSection names one column's byte cover inside a pg_dump-style SQL
// text archive for the selective-restore index. Columns are not contiguous
// in a row-major dump — every row interleaves all of them — so a column's
// minimal contiguous cover is its table's whole rows region; Off/Len are
// that region's extent, shared by every column of the table.
type ColumnSection struct {
	Table  string
	Column string
	Off    int
	Len    int
}

// ColumnSections locates every COPY block (the same boundary logic the
// columnar encoder's split uses) and returns one named section per column,
// in dump order.
func ColumnSections(dump []byte) ([]ColumnSection, error) {
	var out []ColumnSection
	rest := dump
	for {
		idx := bytes.Index(rest, []byte("FROM stdin;\n"))
		if idx < 0 {
			break
		}
		hdrEnd := idx + len("FROM stdin;\n")
		lineStart := bytes.LastIndexByte(rest[:idx], '\n') + 1
		if !bytes.HasPrefix(rest[lineStart:], []byte("COPY ")) {
			rest = rest[hdrEnd:]
			continue
		}
		end := bytes.Index(rest[hdrEnd:], []byte("\\.\n"))
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated COPY block", ErrNotArchive)
		}
		header := string(rest[lineStart : idx+len("FROM stdin;")])
		table, cols, err := parseCopyLine(header)
		if err != nil {
			return nil, err
		}
		off := len(dump) - len(rest) + hdrEnd
		for _, c := range cols {
			out = append(out, ColumnSection{Table: table, Column: c, Off: off, Len: end})
		}
		rest = rest[hdrEnd+end:]
	}
	if len(out) == 0 {
		return nil, ErrNotArchive
	}
	return out, nil
}

// parseCopyLine splits a "COPY name (col, col) FROM stdin;" header.
func parseCopyLine(line string) (table string, cols []string, err error) {
	rest := strings.TrimPrefix(line, "COPY ")
	open := strings.IndexByte(rest, '(')
	closeP := strings.IndexByte(rest, ')')
	if open < 0 || closeP < open {
		return "", nil, fmt.Errorf("%w: bad COPY line %q", ErrNotArchive, line)
	}
	table = strings.TrimSpace(rest[:open])
	for _, c := range strings.Split(rest[open+1:closeP], ",") {
		cols = append(cols, strings.TrimSpace(c))
	}
	return table, cols, nil
}

// split separates the dump into frame text (with one marker byte per
// COPY block) and the per-block row matrices.
func split(dump []byte) ([]byte, []copyBlock, error) {
	if bytes.IndexByte(dump, rowsMarker) >= 0 {
		return nil, nil, fmt.Errorf("%w: contains NUL", ErrNotArchive)
	}
	var frame bytes.Buffer
	var blocks []copyBlock
	rest := dump
	for {
		// A COPY block starts after a "COPY ... FROM stdin;\n" line and
		// runs to the "\.\n" terminator.
		idx := bytes.Index(rest, []byte("FROM stdin;\n"))
		if idx < 0 {
			break
		}
		hdrEnd := idx + len("FROM stdin;\n")
		// The COPY line must start at a line boundary naming a table.
		lineStart := bytes.LastIndexByte(rest[:idx], '\n') + 1
		if !bytes.HasPrefix(rest[lineStart:], []byte("COPY ")) {
			frame.Write(rest[:hdrEnd])
			rest = rest[hdrEnd:]
			continue
		}
		end := bytes.Index(rest[hdrEnd:], []byte("\\.\n"))
		if end < 0 {
			return nil, nil, fmt.Errorf("%w: unterminated COPY block", ErrNotArchive)
		}
		rowsText := rest[hdrEnd : hdrEnd+end]

		blk, err := parseRows(rowsText)
		if err != nil {
			return nil, nil, err
		}
		frame.Write(rest[:hdrEnd])
		frame.WriteByte(rowsMarker)
		blocks = append(blocks, blk)
		rest = rest[hdrEnd+end:]
	}
	frame.Write(rest)
	if len(blocks) == 0 {
		return nil, nil, ErrNotArchive
	}
	return frame.Bytes(), blocks, nil
}

// parseRows transposes a COPY row region. Every row must have the same
// field count for the block to be columnarisable.
func parseRows(text []byte) (copyBlock, error) {
	var blk copyBlock
	if len(text) == 0 {
		return blk, nil
	}
	if text[len(text)-1] != '\n' {
		return blk, fmt.Errorf("%w: row region not newline-terminated", ErrNotArchive)
	}
	for _, line := range bytes.Split(text[:len(text)-1], []byte("\n")) {
		fields := bytes.Split(line, []byte("\t"))
		row := make([]string, len(fields))
		for i, f := range fields {
			row[i] = string(f)
		}
		if blk.cols == 0 {
			blk.cols = len(row)
		} else if len(row) != blk.cols {
			return blk, fmt.Errorf("%w: ragged COPY rows", ErrNotArchive)
		}
		blk.rows = append(blk.rows, row)
	}
	return blk, nil
}

// ---- column encodings ---------------------------------------------------

// encodeColumn picks the densest type-specific representation whose
// canonical re-rendering reproduces every value byte-for-byte.
func encodeColumn(w *bytes.Buffer, col []string) {
	if vals, ok := asInts(col); ok {
		writeNumeric(w, colInt, vals)
		return
	}
	if vals, ok := asDecimals(col); ok {
		writeNumeric(w, colDec, vals)
		return
	}
	if vals, ok := asDates(col); ok {
		writeNumeric(w, colDate, vals)
		return
	}

	// Text: measure the candidate encodings and keep the smallest.
	var plain bytes.Buffer
	plain.WriteByte(colString)
	for _, s := range col {
		putUvarint(&plain, uint64(len(s)))
		plain.WriteString(s)
	}
	best := plain.Bytes()

	if dict, refs, ok := asDict(col); ok {
		var b bytes.Buffer
		b.WriteByte(colDict)
		putUvarint(&b, uint64(len(dict)))
		for _, s := range dict {
			putUvarint(&b, uint64(len(s)))
			b.WriteString(s)
		}
		b.Write(refs)
		if b.Len() < len(best) {
			best = b.Bytes()
		}
	}
	if words, refs, ok := asWords(col); ok {
		var b bytes.Buffer
		b.WriteByte(colWords)
		putUvarint(&b, uint64(len(words)))
		for _, s := range words {
			putUvarint(&b, uint64(len(s)))
			b.WriteString(s)
		}
		for _, vr := range refs {
			putUvarint(&b, uint64(len(vr)))
			for _, id := range vr {
				putUvarint(&b, uint64(id))
			}
		}
		if b.Len() < len(best) {
			best = b.Bytes()
		}
	}
	w.Write(best)
}

// writeNumeric emits the smallest of the delta, direct and
// frame-of-reference varint forms.
func writeNumeric(w *bytes.Buffer, tag byte, vals []int64) {
	var delta, direct, forBuf bytes.Buffer
	writeDeltas(&delta, vals)
	for _, v := range vals {
		putUvarint(&direct, uint64((v<<1)^(v>>63)))
	}
	min := vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
	}
	putUvarint(&forBuf, uint64((min<<1)^(min>>63)))
	for _, v := range vals {
		putUvarint(&forBuf, uint64(v-min))
	}

	w.WriteByte(tag)
	switch {
	case delta.Len() <= direct.Len() && delta.Len() <= forBuf.Len():
		w.WriteByte(modeDelta)
		w.Write(delta.Bytes())
	case forBuf.Len() < direct.Len():
		w.WriteByte(modeFOR)
		w.Write(forBuf.Bytes())
	default:
		w.WriteByte(modeDirect)
		w.Write(direct.Bytes())
	}
}

// decodeColumn reverses encodeColumn for n values.
func decodeColumn(r *bytes.Reader, n int) ([]string, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	col := make([]string, n)
	switch tag {
	case colInt, colDec, colDate:
		mode, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		var vals []int64
		switch mode {
		case modeDelta:
			vals, err = readDeltas(r, n)
		case modeDirect:
			vals = make([]int64, n)
			for i := 0; i < n; i++ {
				u, e := binary.ReadUvarint(r)
				if e != nil {
					err = e
					break
				}
				vals[i] = int64(u>>1) ^ -int64(u&1)
			}
		case modeFOR:
			u, e := binary.ReadUvarint(r)
			if e != nil {
				return nil, e
			}
			min := int64(u>>1) ^ -int64(u&1)
			vals = make([]int64, n)
			for i := 0; i < n; i++ {
				u, e := binary.ReadUvarint(r)
				if e != nil {
					err = e
					break
				}
				vals[i] = min + int64(u)
			}
		default:
			return nil, fmt.Errorf("unknown numeric mode %d", mode)
		}
		if err != nil {
			return nil, err
		}
		for i, v := range vals {
			switch tag {
			case colInt:
				col[i] = strconv.FormatInt(v, 10)
			case colDec:
				col[i] = renderDecimal(v)
			default:
				col[i] = renderDate(v)
			}
		}
	case colDict:
		dn, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		dict := make([]string, dn)
		for i := range dict {
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, ln)
			if _, err := r.Read(buf); err != nil {
				return nil, err
			}
			dict[i] = string(buf)
		}
		for i := 0; i < n; i++ {
			ref, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			if int(ref) >= len(dict) {
				return nil, fmt.Errorf("dict ref %d of %d", ref, len(dict))
			}
			col[i] = dict[ref]
		}
	case colWords:
		wn, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		words := make([]string, wn)
		for i := range words {
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, ln)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			words[i] = string(buf)
		}
		var sb strings.Builder
		for i := 0; i < n; i++ {
			cnt, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			sb.Reset()
			for k := uint64(0); k < cnt; k++ {
				id, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, err
				}
				if id >= wn {
					return nil, fmt.Errorf("word ref %d of %d", id, wn)
				}
				if k > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(words[id])
			}
			col[i] = sb.String()
		}
	case colString:
		for i := 0; i < n; i++ {
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, ln)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			col[i] = string(buf)
		}
	default:
		return nil, fmt.Errorf("unknown column tag %d", tag)
	}
	return col, nil
}

// asInts returns the column as int64s if every value is a canonical
// integer (re-rendering reproduces the text exactly).
func asInts(col []string) ([]int64, bool) {
	vals := make([]int64, len(col))
	for i, s := range col {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || strconv.FormatInt(v, 10) != s {
			return nil, false
		}
		vals[i] = v
	}
	return vals, len(col) > 0
}

// asDecimals matches canonical d+.dd decimals (the TPC-H money type).
func asDecimals(col []string) ([]int64, bool) {
	vals := make([]int64, len(col))
	for i, s := range col {
		dot := len(s) - 3
		if dot < 1 || s[dot] != '.' {
			return nil, false
		}
		whole, err := strconv.ParseInt(s[:dot], 10, 64)
		if err != nil {
			return nil, false
		}
		frac, err := strconv.ParseInt(s[dot+1:], 10, 64)
		if err != nil || frac < 0 {
			return nil, false
		}
		v := whole*100 + frac
		if whole < 0 || s[0] == '-' {
			v = whole*100 - frac
		}
		vals[i] = v
		if renderDecimal(v) != s {
			return nil, false
		}
	}
	return vals, len(col) > 0
}

func renderDecimal(v int64) string {
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	return fmt.Sprintf("%s%d.%02d", sign, v/100, v%100)
}

// asDates matches canonical YYYY-MM-DD dates, packed as y<<9|m<<5|d.
func asDates(col []string) ([]int64, bool) {
	vals := make([]int64, len(col))
	for i, s := range col {
		if len(s) != 10 || s[4] != '-' || s[7] != '-' {
			return nil, false
		}
		y, err1 := strconv.Atoi(s[:4])
		m, err2 := strconv.Atoi(s[5:7])
		d, err3 := strconv.Atoi(s[8:])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, false
		}
		if m < 1 || m > 12 || d < 1 || d > 31 {
			return nil, false
		}
		v := int64(y)<<9 | int64(m)<<5 | int64(d)
		vals[i] = v
		if renderDate(v) != s {
			return nil, false
		}
	}
	return vals, len(col) > 0
}

func renderDate(v int64) string {
	return fmt.Sprintf("%04d-%02d-%02d", v>>9, (v>>5)&15, v&31)
}

// maxWordDict bounds the per-column word dictionary.
const maxWordDict = 1 << 16

// asWords tokenises every value into single-space-separated words and
// builds a shared word dictionary — the encoding that exploits the
// small-vocabulary text columns (TPC-H comments) a database generates.
// Values that do not re-join canonically (double spaces, leading or
// trailing space) disqualify the column.
func asWords(col []string) (words []string, refs [][]int, ok bool) {
	index := map[string]int{}
	refs = make([][]int, len(col))
	for i, s := range col {
		parts := strings.Split(s, " ")
		for _, w := range parts {
			if w == "" && len(parts) > 1 {
				return nil, nil, false // double/leading/trailing space
			}
		}
		ids := make([]int, len(parts))
		for k, w := range parts {
			id, seen := index[w]
			if !seen {
				if len(words) == maxWordDict {
					return nil, nil, false
				}
				id = len(words)
				index[w] = id
				words = append(words, w)
			}
			ids[k] = id
		}
		refs[i] = ids
	}
	return words, refs, len(col) > 0
}

// asDict builds a dictionary encoding when the column has at most 255
// distinct values and the dictionary pays for itself.
func asDict(col []string) (dict []string, refs []byte, ok bool) {
	index := map[string]int{}
	refs = make([]byte, len(col))
	dictBytes := 0
	for i, s := range col {
		id, seen := index[s]
		if !seen {
			if len(dict) == 255 {
				return nil, nil, false
			}
			id = len(dict)
			index[s] = id
			dict = append(dict, s)
			dictBytes += len(s) + 1
		}
		refs[i] = byte(id)
	}
	// Worth it only if refs+dict beat plain length-prefixed text.
	plain := 0
	for _, s := range col {
		plain += len(s) + 1
	}
	if dictBytes+len(refs) >= plain {
		return nil, nil, false
	}
	return dict, refs, true
}

// ---- varint helpers -------------------------------------------------------

func putUvarint(w *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

// writeDeltas emits zigzag-encoded first differences.
func writeDeltas(w *bytes.Buffer, vals []int64) {
	prev := int64(0)
	for _, v := range vals {
		d := v - prev
		prev = v
		putUvarint(w, uint64((d<<1)^(d>>63)))
	}
}

func readDeltas(r *bytes.Reader, n int) ([]int64, error) {
	vals := make([]int64, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		d := int64(u>>1) ^ -int64(u&1)
		prev += d
		vals[i] = prev
	}
	return vals, nil
}
