package columnar

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"microlonys/internal/dbcoder"
	"microlonys/internal/sqldump"
	"microlonys/tpch"
)

func testDump(sf float64) []byte {
	return sqldump.Dump(tpch.Generate(sf, 42))
}

func TestRoundTripTPCH(t *testing.T) {
	dump := testDump(0.001)
	blob, err := Compress(dump)
	if err != nil {
		t.Fatal(err)
	}
	if !IsColumnar(blob) {
		t.Fatal("blob lacks magic")
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dump) {
		t.Fatal("columnar round trip not bit-exact")
	}
}

func TestBeatsGenericOnTPCH(t *testing.T) {
	// The §3.1/§5 claim: the columnar layout reduces storage over the
	// generic compression path. Require a meaningful margin, not parity.
	dump := testDump(0.001)
	generic := dbcoder.Compress(dump)
	col, err := Compress(dump)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("raw=%d generic=%d columnar=%d (%.2fx over generic)",
		len(dump), len(generic), len(col), float64(len(generic))/float64(len(col)))
	if float64(len(col)) > 0.8*float64(len(generic)) {
		t.Fatalf("columnar %d not < 80%% of generic %d", len(col), len(generic))
	}
}

func TestRejectsNonArchive(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("just some text"),
		[]byte("COPY t (a) FROM stdin;\n1\n"), // unterminated
		{0x00, 0x01},                          // NUL bytes
	} {
		if _, err := Compress(in); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	dump := testDump(0.0005)
	blob, err := Compress(dump)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(blob[:8]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := Decompress([]byte("XXXX1234")); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[8] ^= 0xFF // break the CRC field
	if out, err := Decompress(bad); err == nil && bytes.Equal(out, dump) {
		t.Fatal("CRC damage undetected")
	}
}

func TestEmptyCopyBlock(t *testing.T) {
	dump := []byte("CREATE TABLE t (\n    a text\n);\n\nCOPY t (a) FROM stdin;\n\\.\n\n")
	blob, err := Compress(dump)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dump) {
		t.Fatal("empty COPY block round trip failed")
	}
}

func TestValuesNeedingFallback(t *testing.T) {
	// Non-canonical numerics (leading zeros, +, odd decimals) must fall
	// back to verbatim string coding and still round-trip bit-exact.
	rows := []string{
		"007\tx", "+12\ty", "1.5\tz", "-0.250\tw", "1e5\tv",
		"0001-13-40\tu", // invalid date must not be "normalised"
	}
	dump := []byte("COPY t (a, b) FROM stdin;\n" + strings.Join(rows, "\n") + "\n\\.\n")
	blob, err := Compress(dump)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dump) {
		t.Fatal("fallback values altered by round trip")
	}
}

func TestNegativeDecimals(t *testing.T) {
	vals := []string{"-0.25", "-5.00", "0.00", "12.34", "-123.99"}
	got, ok := asDecimals(vals)
	if !ok {
		t.Fatal("canonical decimals rejected")
	}
	for i, v := range got {
		if renderDecimal(v) != vals[i] {
			t.Fatalf("decimal %q -> %d -> %q", vals[i], v, renderDecimal(v))
		}
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(y uint16, m, d uint8) bool {
		yy := int(y) % 10000
		mm := int(m)%12 + 1
		dd := int(d)%31 + 1
		s := fmt.Sprintf("%04d-%02d-%02d", yy, mm, dd)
		vals, ok := asDates([]string{s})
		return ok && renderDate(vals[0]) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		var buf bytes.Buffer
		writeDeltas(&buf, vals)
		got, err := readDeltas(bytes.NewReader(buf.Bytes()), len(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumnEncoderChoices(t *testing.T) {
	check := func(col []string, wantTag byte) {
		t.Helper()
		var buf bytes.Buffer
		encodeColumn(&buf, col)
		if buf.Bytes()[0] != wantTag {
			t.Fatalf("column %v got tag %d, want %d", col[:min(3, len(col))], buf.Bytes()[0], wantTag)
		}
		got, err := decodeColumn(bytes.NewReader(buf.Bytes()), len(col))
		if err != nil {
			t.Fatal(err)
		}
		for i := range col {
			if got[i] != col[i] {
				t.Fatalf("value %d: %q != %q", i, got[i], col[i])
			}
		}
	}
	check([]string{"1", "2", "30", "-7"}, colInt)
	check([]string{"1.50", "-0.25", "17.00"}, colDec)
	check([]string{"1996-03-13", "1997-12-01"}, colDate)
	check([]string{"A", "B", "A", "A", "B", "A", "B", "A"}, colDict)
	check([]string{"unique string one", "another unique", "third"}, colString)
}

func TestDictCardinalityLimit(t *testing.T) {
	// 256 distinct values cannot be dictionary-coded with 1-byte refs.
	col := make([]string, 600)
	for i := range col {
		col[i] = fmt.Sprintf("value-%d-with-enough-length-to-tempt-the-dict", i%256)
	}
	if _, _, ok := asDict(col); ok {
		t.Fatal("dict accepted 256 distinct values")
	}
	col2 := make([]string, 600)
	for i := range col2 {
		col2[i] = fmt.Sprintf("value-%d-with-enough-length-to-tempt-the-dict", i%255)
	}
	if _, _, ok := asDict(col2); !ok {
		t.Fatal("dict rejected 255 distinct values")
	}
}

func TestRandomTableRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rows []string
		n := rng.Intn(40) + 1
		for i := 0; i < n; i++ {
			f1 := fmt.Sprintf("%d", rng.Intn(100000))
			f2 := fmt.Sprintf("%d.%02d", rng.Intn(1000), rng.Intn(100))
			f3 := fmt.Sprintf("%04d-%02d-%02d", 1990+rng.Intn(20), 1+rng.Intn(12), 1+rng.Intn(28))
			f4 := []string{"RAIL", "AIR", "TRUCK", "SHIP"}[rng.Intn(4)]
			rows = append(rows, strings.Join([]string{f1, f2, f3, f4}, "\t"))
		}
		dump := []byte("COPY x (a, b, c, d) FROM stdin;\n" + strings.Join(rows, "\n") + "\n\\.\n")
		blob, err := Compress(dump)
		if err != nil {
			return false
		}
		got, err := Decompress(blob)
		return err == nil && bytes.Equal(got, dump)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
