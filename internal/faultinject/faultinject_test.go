package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"microlonys/media"
	"microlonys/raster"
)

func testBag(t *testing.T, sheets, frames int) []*media.Medium {
	t.Helper()
	p := media.Paper()
	bag := make([]*media.Medium, sheets)
	for s := range bag {
		m := media.New(p)
		for f := 0; f < frames; f++ {
			img := raster.New(p.FrameW, p.FrameH)
			for i := range img.Pix {
				img.Pix[i] = byte(s*31 + f*7 + i)
			}
			if err := m.Write([]*raster.Gray{img}); err != nil {
				t.Fatal(err)
			}
		}
		bag[s] = m
	}
	return bag
}

// TestScheduleDeterminism: the same seed and call sequence produce the
// same shuffle, the same withheld sheets, the same destroyed frames — a
// failing schedule is replayable.
func TestScheduleDeterminism(t *testing.T) {
	run := func() ([]int, int) {
		bag := testBag(t, 6, 4)
		orig := map[*media.Medium]int{}
		for i, m := range bag {
			orig[m] = i
		}
		s := New(42)
		s.Shuffle(bag)
		bag = s.Withhold(bag, 2)
		destroyed, err := s.DestroyFraction(bag, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		perm := make([]int, len(bag))
		for i, m := range bag {
			perm[i] = orig[m]
		}
		return perm, destroyed
	}
	p1, d1 := run()
	p2, d2 := run()
	if d1 != d2 || len(p1) != len(p2) {
		t.Fatalf("schedules diverged: %v/%d vs %v/%d", p1, d1, p2, d2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("permutation diverged: %v vs %v", p1, p2)
		}
	}
	if len(p1) != 4 {
		t.Fatalf("withheld to %d sheets, want 4", len(p1))
	}
}

// TestDuplicateIsIndependentCopy: damaging a duplicated sheet must not
// damage the original — the copies model independent physical prints.
func TestDuplicateIsIndependentCopy(t *testing.T) {
	bag := testBag(t, 1, 3)
	s := New(7)
	bag = s.Duplicate(bag, 1)
	if len(bag) != 2 {
		t.Fatalf("bag size %d, want 2", len(bag))
	}
	if err := bag[1].Destroy(0); err != nil {
		t.Fatal(err)
	}
	a, err := bag[0].ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bag[1].ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("destroying the duplicate damaged the original")
	}
}

func TestTruncateAndCorruptCatalogs(t *testing.T) {
	bag := testBag(t, 3, 5)
	s := New(9)
	s.TruncateRandom(bag, 2)
	short := 0
	for _, m := range bag {
		if m.FrameCount() < 5 {
			short++
			if m.FrameCount() < 2 {
				t.Fatalf("truncated below keepMin: %d", m.FrameCount())
			}
		}
	}
	if short != 1 {
		t.Fatalf("%d sheets truncated, want 1", short)
	}
	if err := s.CorruptCatalogs(bag, 2); err != nil {
		t.Fatal(err)
	}
}

// TestWriterInjectsAtBudget: the wrapped writer delivers exactly the
// budgeted bytes then fails with ErrInjected.
func TestWriterInjectsAtBudget(t *testing.T) {
	var buf bytes.Buffer
	w := Writer(&buf, 10)
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if buf.String() != "0123456789" {
		t.Fatalf("buffer %q", buf.String())
	}
}

func TestReaderInjectsAtBudget(t *testing.T) {
	r := Reader(strings.NewReader("0123456789abcdef"), 10)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if string(got) != "0123456789" {
		t.Fatalf("read %q before the fault", got)
	}
}

// TestFlakyReaderDeterminism: exactly `failures` Read calls fail — with an
// error matching both ErrInjected and ErrTransient — then every byte comes
// through untouched. The countdown, not chance, decides.
func TestFlakyReaderDeterminism(t *testing.T) {
	const payload = "the archive stream"
	r := FlakyReader(strings.NewReader(payload), 3)
	for i := 0; i < 3; i++ {
		if _, err := r.Read(make([]byte, 4)); err == nil {
			t.Fatalf("read %d: want transient fault, got nil", i)
		} else {
			if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrTransient) {
				t.Fatalf("read %d: %v must match ErrInjected and ErrTransient", i, err)
			}
			var tr interface{ Transient() bool }
			if !errors.As(err, &tr) || !tr.Transient() {
				t.Fatalf("read %d: %v must answer Transient() true", i, err)
			}
		}
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("after the budget: %v", err)
	}
	if string(got) != payload {
		t.Fatalf("read %q, want %q", got, payload)
	}
}

// TestFlakyWriterDeterminism: the write direction of the same contract —
// and zero bytes reach the sink on a failed call.
func TestFlakyWriterDeterminism(t *testing.T) {
	var buf bytes.Buffer
	w := FlakyWriter(&buf, 2)
	for i := 0; i < 2; i++ {
		if n, err := w.Write([]byte("lost")); err == nil || n != 0 {
			t.Fatalf("write %d: got (%d, %v), want transient fault and 0 bytes", i, n, err)
		} else if !errors.Is(err, ErrTransient) {
			t.Fatalf("write %d: %v must match ErrTransient", i, err)
		}
	}
	if _, err := w.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "kept" {
		t.Fatalf("sink holds %q, want %q (failed writes must deliver nothing)", buf.String(), "kept")
	}
}

// TestFlakySharedBudget: one Flaky budget shared across re-opened ends —
// the retry-attempt shape — keeps one countdown: two attempts burn one
// failure each, the third reads clean.
func TestFlakySharedBudget(t *testing.T) {
	f := NewFlaky(2)
	for attempt := 0; attempt < 2; attempt++ {
		r := f.Reader(strings.NewReader("data"))
		if _, err := io.ReadAll(r); !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d: got %v, want transient fault", attempt, err)
		}
	}
	got, err := io.ReadAll(f.Reader(strings.NewReader("data")))
	if err != nil || string(got) != "data" {
		t.Fatalf("third attempt: (%q, %v), want clean read", got, err)
	}
	if f.Faults() != 2 {
		t.Fatalf("faults %d, want 2", f.Faults())
	}
}

// TestSlowEndsDelayEveryCall: the latency injection stalls exactly once
// per call, delivers the bytes untouched, and injects no errors.
func TestSlowEndsDelayEveryCall(t *testing.T) {
	var stalls int
	var total time.Duration
	sleep := func(d time.Duration) { stalls++; total += d }

	sr := SlowReader(strings.NewReader("abcd"), 5*time.Millisecond).(*slowReader)
	sr.sleep = sleep
	got, err := io.ReadAll(sr)
	if err != nil || string(got) != "abcd" {
		t.Fatalf("slow read: (%q, %v)", got, err)
	}
	readStalls := stalls
	if readStalls == 0 || total != time.Duration(readStalls)*5*time.Millisecond {
		t.Fatalf("%d stalls totalling %v, want one 5ms stall per Read call", readStalls, total)
	}

	var buf bytes.Buffer
	sw := SlowWriter(&buf, 7*time.Millisecond).(*slowWriter)
	sw.sleep = sleep
	if _, err := sw.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	if stalls != readStalls+1 || buf.String() != "xy" {
		t.Fatalf("write path: %d stalls, sink %q", stalls-readStalls, buf.String())
	}
}
