package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"microlonys/media"
	"microlonys/raster"
)

func testBag(t *testing.T, sheets, frames int) []*media.Medium {
	t.Helper()
	p := media.Paper()
	bag := make([]*media.Medium, sheets)
	for s := range bag {
		m := media.New(p)
		for f := 0; f < frames; f++ {
			img := raster.New(p.FrameW, p.FrameH)
			for i := range img.Pix {
				img.Pix[i] = byte(s*31 + f*7 + i)
			}
			if err := m.Write([]*raster.Gray{img}); err != nil {
				t.Fatal(err)
			}
		}
		bag[s] = m
	}
	return bag
}

// TestScheduleDeterminism: the same seed and call sequence produce the
// same shuffle, the same withheld sheets, the same destroyed frames — a
// failing schedule is replayable.
func TestScheduleDeterminism(t *testing.T) {
	run := func() ([]int, int) {
		bag := testBag(t, 6, 4)
		orig := map[*media.Medium]int{}
		for i, m := range bag {
			orig[m] = i
		}
		s := New(42)
		s.Shuffle(bag)
		bag = s.Withhold(bag, 2)
		destroyed, err := s.DestroyFraction(bag, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		perm := make([]int, len(bag))
		for i, m := range bag {
			perm[i] = orig[m]
		}
		return perm, destroyed
	}
	p1, d1 := run()
	p2, d2 := run()
	if d1 != d2 || len(p1) != len(p2) {
		t.Fatalf("schedules diverged: %v/%d vs %v/%d", p1, d1, p2, d2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("permutation diverged: %v vs %v", p1, p2)
		}
	}
	if len(p1) != 4 {
		t.Fatalf("withheld to %d sheets, want 4", len(p1))
	}
}

// TestDuplicateIsIndependentCopy: damaging a duplicated sheet must not
// damage the original — the copies model independent physical prints.
func TestDuplicateIsIndependentCopy(t *testing.T) {
	bag := testBag(t, 1, 3)
	s := New(7)
	bag = s.Duplicate(bag, 1)
	if len(bag) != 2 {
		t.Fatalf("bag size %d, want 2", len(bag))
	}
	if err := bag[1].Destroy(0); err != nil {
		t.Fatal(err)
	}
	a, err := bag[0].ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bag[1].ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("destroying the duplicate damaged the original")
	}
}

func TestTruncateAndCorruptCatalogs(t *testing.T) {
	bag := testBag(t, 3, 5)
	s := New(9)
	s.TruncateRandom(bag, 2)
	short := 0
	for _, m := range bag {
		if m.FrameCount() < 5 {
			short++
			if m.FrameCount() < 2 {
				t.Fatalf("truncated below keepMin: %d", m.FrameCount())
			}
		}
	}
	if short != 1 {
		t.Fatalf("%d sheets truncated, want 1", short)
	}
	if err := s.CorruptCatalogs(bag, 2); err != nil {
		t.Fatal(err)
	}
}

// TestWriterInjectsAtBudget: the wrapped writer delivers exactly the
// budgeted bytes then fails with ErrInjected.
func TestWriterInjectsAtBudget(t *testing.T) {
	var buf bytes.Buffer
	w := Writer(&buf, 10)
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if buf.String() != "0123456789" {
		t.Fatalf("buffer %q", buf.String())
	}
}

func TestReaderInjectsAtBudget(t *testing.T) {
	r := Reader(strings.NewReader("0123456789abcdef"), 10)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if string(got) != "0123456789" {
		t.Fatalf("read %q before the fault", got)
	}
}
