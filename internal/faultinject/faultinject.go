// Package faultinject provides deterministic, seeded fault schedules for
// exercising the archive/restore/salvage pipelines: the disasters a
// long-term archive must survive — sheets shuffled, duplicated, withheld
// or torn, catalog frames destroyed, I/O ends that start failing
// mid-stream — generated reproducibly so a failing schedule is a
// replayable regression, not an anecdote.
//
// Every operation draws from the Schedule's private RNG in a fixed
// order, so a (seed, call-sequence) pair always produces the same
// faults. The media mutations go through the same Destroy/Truncate
// primitives real damage campaigns use; the io wrappers inject errors at
// byte-exact positions.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"microlonys/media"
)

// ErrInjected is the error every injected I/O fault wraps, so tests can
// assert the failure they caused is the failure they observed.
var ErrInjected = errors.New("faultinject: injected fault")

// Schedule is a deterministic fault generator. Not safe for concurrent
// use; derive one per trial from the trial's seed.
type Schedule struct {
	rng *rand.Rand
}

// New returns a schedule seeded with seed.
func New(seed int64) *Schedule {
	return &Schedule{rng: rand.New(rand.NewSource(seed))}
}

// Shuffle permutes the bag in place — the unordered-drawer scenario.
func (s *Schedule) Shuffle(bag []*media.Medium) {
	s.rng.Shuffle(len(bag), func(i, j int) {
		bag[i], bag[j] = bag[j], bag[i]
	})
}

// Duplicate appends n copies of randomly chosen sheets to the bag —
// redundant prints mixed into the drawer. The copies are clones, so
// later damage to one copy leaves the other readable.
func (s *Schedule) Duplicate(bag []*media.Medium, n int) []*media.Medium {
	for i := 0; i < n && len(bag) > 0; i++ {
		bag = append(bag, bag[s.rng.Intn(len(bag))].Clone())
	}
	return bag
}

// Withhold removes n randomly chosen sheets from the bag — lost
// carriers. It never empties the bag: at least one sheet survives.
func (s *Schedule) Withhold(bag []*media.Medium, n int) []*media.Medium {
	for i := 0; i < n && len(bag) > 1; i++ {
		k := s.rng.Intn(len(bag))
		bag = append(bag[:k], bag[k+1:]...)
	}
	return bag
}

// DestroyFraction destroys the given fraction of each sheet's frames at
// random positions (rounded down per sheet), returning the number
// destroyed.
func (s *Schedule) DestroyFraction(bag []*media.Medium, fraction float64) (int, error) {
	destroyed := 0
	for _, m := range bag {
		n := m.FrameCount()
		kill := int(float64(n) * fraction)
		for _, f := range s.rng.Perm(n)[:kill] {
			if err := m.Destroy(f); err != nil {
				return destroyed, err
			}
			destroyed++
		}
	}
	return destroyed, nil
}

// CorruptCatalogs destroys slot 0 — the catalog frame on catalog
// volumes — of n randomly chosen sheets.
func (s *Schedule) CorruptCatalogs(bag []*media.Medium, n int) error {
	for _, k := range s.rng.Perm(len(bag)) {
		if n <= 0 {
			return nil
		}
		if bag[k].FrameCount() == 0 {
			continue
		}
		if err := bag[k].Destroy(0); err != nil {
			return err
		}
		n--
	}
	return nil
}

// TruncateRandom tears the tail off one randomly chosen sheet, keeping
// at least keepMin frames — a torn or partially digitised carrier.
func (s *Schedule) TruncateRandom(bag []*media.Medium, keepMin int) {
	if len(bag) == 0 {
		return
	}
	m := bag[s.rng.Intn(len(bag))]
	if n := m.FrameCount(); n > keepMin {
		m.Truncate(keepMin + s.rng.Intn(n-keepMin))
	}
}

// Writer wraps w so it fails with an error wrapping ErrInjected once
// more than failAfter bytes have been written — a full disk, a dropped
// connection, a dying tape head.
func Writer(w io.Writer, failAfter int) io.Writer {
	return &failingWriter{w: w, remaining: failAfter}
}

type failingWriter struct {
	w         io.Writer
	remaining int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if len(p) > f.remaining {
		return 0, fmt.Errorf("%w: write refused after byte budget", ErrInjected)
	}
	n, err := f.w.Write(p)
	f.remaining -= n
	return n, err
}

// Reader wraps r so it fails with an error wrapping ErrInjected once
// more than failAfter bytes have been read — a source that dies
// mid-archive.
func Reader(r io.Reader, failAfter int) io.Reader {
	return &failingReader{r: r, remaining: failAfter}
}

type failingReader struct {
	r         io.Reader
	remaining int
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, fmt.Errorf("%w: read refused after byte budget", ErrInjected)
	}
	if len(p) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= n
	return n, err
}
