// Package faultinject provides deterministic, seeded fault schedules for
// exercising the archive/restore/salvage pipelines: the disasters a
// long-term archive must survive — sheets shuffled, duplicated, withheld
// or torn, catalog frames destroyed, I/O ends that start failing
// mid-stream — generated reproducibly so a failing schedule is a
// replayable regression, not an anecdote.
//
// Every operation draws from the Schedule's private RNG in a fixed
// order, so a (seed, call-sequence) pair always produces the same
// faults. The media mutations go through the same Destroy/Truncate
// primitives real damage campaigns use; the io wrappers inject errors at
// byte-exact positions.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"microlonys/media"
)

// ErrInjected is the error every injected I/O fault wraps, so tests can
// assert the failure they caused is the failure they observed.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrTransient is the error transient injected faults additionally wrap:
// the fault a retry would not see again (a momentary stall, a dropped
// packet, a busy device). Permanent injected faults — the byte-budget
// Writer/Reader — wrap only ErrInjected. Transient faults also implement
// `Transient() bool`, the interface jobs.IsTransient classifies by.
var ErrTransient = errors.New("faultinject: transient fault")

// transientErr marks an injected fault as retryable. It wraps both
// ErrInjected and ErrTransient and answers Transient() true, so callers
// can classify through errors.Is, errors.As or an interface probe.
type transientErr struct {
	msg string
}

func (e *transientErr) Error() string { return e.msg }

// Transient reports that a retry may succeed.
func (e *transientErr) Transient() bool { return true }

// Is matches both fault sentinels.
func (e *transientErr) Is(target error) bool {
	return target == ErrInjected || target == ErrTransient
}

// Flaky is a shared failure budget: the first n operations on any end
// wrapped by the same Flaky fail with a transient error, then every
// operation succeeds. Sharing the budget across wrappers — and across a
// job's retry attempts — is the point: a source that re-opens on retry
// keeps burning the same countdown, so fail-twice-then-succeed means the
// third attempt through the same Flaky goes through. Not safe for
// concurrent use across goroutines; give each concurrent job its own.
type Flaky struct {
	remaining int
	faults    int
}

// NewFlaky returns a failure budget of n operations.
func NewFlaky(n int) *Flaky { return &Flaky{remaining: n} }

// Faults reports how many operations have failed so far.
func (f *Flaky) Faults() int { return f.faults }

// fail consumes one failure from the budget; ok reports whether the
// operation should proceed.
func (f *Flaky) fail(op string) error {
	if f.remaining <= 0 {
		return nil
	}
	f.remaining--
	f.faults++
	return &transientErr{msg: fmt.Sprintf("faultinject: transient %s fault (%d of %d)", op, f.faults, f.faults+f.remaining)}
}

// Reader wraps r so Reads draw on the shared budget.
func (f *Flaky) Reader(r io.Reader) io.Reader { return &flakyReader{f: f, r: r} }

// Writer wraps w so Writes draw on the shared budget.
func (f *Flaky) Writer(w io.Writer) io.Writer { return &flakyWriter{f: f, w: w} }

// FlakyReader wraps r so its first failures Read calls fail with a
// transient error (wrapping ErrInjected and ErrTransient), then reads
// pass through untouched — the I/O end a retry loop must survive.
func FlakyReader(r io.Reader, failures int) io.Reader {
	return NewFlaky(failures).Reader(r)
}

// FlakyWriter is FlakyReader for the write direction.
func FlakyWriter(w io.Writer, failures int) io.Writer {
	return NewFlaky(failures).Writer(w)
}

type flakyReader struct {
	f *Flaky
	r io.Reader
}

func (fr *flakyReader) Read(p []byte) (int, error) {
	if err := fr.f.fail("read"); err != nil {
		return 0, err
	}
	return fr.r.Read(p)
}

type flakyWriter struct {
	f *Flaky
	w io.Writer
}

func (fw *flakyWriter) Write(p []byte) (int, error) {
	if err := fw.f.fail("write"); err != nil {
		return 0, err
	}
	return fw.w.Write(p)
}

// SlowReader wraps r so every Read stalls for delay first — a latency
// injection for exercising timeouts and backpressure, not a fault: the
// bytes still arrive, just late. sleep is overridable for tests.
func SlowReader(r io.Reader, delay time.Duration) io.Reader {
	return &slowReader{r: r, delay: delay, sleep: time.Sleep}
}

type slowReader struct {
	r     io.Reader
	delay time.Duration
	sleep func(time.Duration)
}

func (s *slowReader) Read(p []byte) (int, error) {
	s.sleep(s.delay)
	return s.r.Read(p)
}

// SlowWriter is SlowReader for the write direction.
func SlowWriter(w io.Writer, delay time.Duration) io.Writer {
	return &slowWriter{w: w, delay: delay, sleep: time.Sleep}
}

type slowWriter struct {
	w     io.Writer
	delay time.Duration
	sleep func(time.Duration)
}

func (s *slowWriter) Write(p []byte) (int, error) {
	s.sleep(s.delay)
	return s.w.Write(p)
}

// Schedule is a deterministic fault generator. Not safe for concurrent
// use; derive one per trial from the trial's seed.
type Schedule struct {
	rng *rand.Rand
}

// New returns a schedule seeded with seed.
func New(seed int64) *Schedule {
	return &Schedule{rng: rand.New(rand.NewSource(seed))}
}

// Shuffle permutes the bag in place — the unordered-drawer scenario.
func (s *Schedule) Shuffle(bag []*media.Medium) {
	s.rng.Shuffle(len(bag), func(i, j int) {
		bag[i], bag[j] = bag[j], bag[i]
	})
}

// Duplicate appends n copies of randomly chosen sheets to the bag —
// redundant prints mixed into the drawer. The copies are clones, so
// later damage to one copy leaves the other readable.
func (s *Schedule) Duplicate(bag []*media.Medium, n int) []*media.Medium {
	for i := 0; i < n && len(bag) > 0; i++ {
		bag = append(bag, bag[s.rng.Intn(len(bag))].Clone())
	}
	return bag
}

// Withhold removes n randomly chosen sheets from the bag — lost
// carriers. It never empties the bag: at least one sheet survives.
func (s *Schedule) Withhold(bag []*media.Medium, n int) []*media.Medium {
	for i := 0; i < n && len(bag) > 1; i++ {
		k := s.rng.Intn(len(bag))
		bag = append(bag[:k], bag[k+1:]...)
	}
	return bag
}

// DestroyFraction destroys the given fraction of each sheet's frames at
// random positions (rounded down per sheet), returning the number
// destroyed.
func (s *Schedule) DestroyFraction(bag []*media.Medium, fraction float64) (int, error) {
	destroyed := 0
	for _, m := range bag {
		n := m.FrameCount()
		kill := int(float64(n) * fraction)
		for _, f := range s.rng.Perm(n)[:kill] {
			if err := m.Destroy(f); err != nil {
				return destroyed, err
			}
			destroyed++
		}
	}
	return destroyed, nil
}

// CorruptCatalogs destroys slot 0 — the catalog frame on catalog
// volumes — of n randomly chosen sheets.
func (s *Schedule) CorruptCatalogs(bag []*media.Medium, n int) error {
	for _, k := range s.rng.Perm(len(bag)) {
		if n <= 0 {
			return nil
		}
		if bag[k].FrameCount() == 0 {
			continue
		}
		if err := bag[k].Destroy(0); err != nil {
			return err
		}
		n--
	}
	return nil
}

// TruncateRandom tears the tail off one randomly chosen sheet, keeping
// at least keepMin frames — a torn or partially digitised carrier.
func (s *Schedule) TruncateRandom(bag []*media.Medium, keepMin int) {
	if len(bag) == 0 {
		return
	}
	m := bag[s.rng.Intn(len(bag))]
	if n := m.FrameCount(); n > keepMin {
		m.Truncate(keepMin + s.rng.Intn(n-keepMin))
	}
}

// Writer wraps w so it fails with an error wrapping ErrInjected once
// more than failAfter bytes have been written — a full disk, a dropped
// connection, a dying tape head.
func Writer(w io.Writer, failAfter int) io.Writer {
	return &failingWriter{w: w, remaining: failAfter}
}

type failingWriter struct {
	w         io.Writer
	remaining int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if len(p) > f.remaining {
		return 0, fmt.Errorf("%w: write refused after byte budget", ErrInjected)
	}
	n, err := f.w.Write(p)
	f.remaining -= n
	return n, err
}

// Reader wraps r so it fails with an error wrapping ErrInjected once
// more than failAfter bytes have been read — a source that dies
// mid-archive.
func Reader(r io.Reader, failAfter int) io.Reader {
	return &failingReader{r: r, remaining: failAfter}
}

type failingReader struct {
	r         io.Reader
	remaining int
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, fmt.Errorf("%w: read refused after byte budget", ErrInjected)
	}
	if len(p) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= n
	return n, err
}
