package emblem

import (
	"bytes"
	"testing"
)

// The salvage path leans on header parsing and recovery to identify
// frames from damaged scans, so both entry points carry pinned contracts
// over arbitrary bytes:
//
//   - never panic, whatever the input;
//   - a successful ParseHeader round-trips: re-marshalling the parsed
//     header reproduces the input's first HeaderSize bytes exactly (the
//     CRC covers every field, so there is no slack for divergence);
//   - a successful RecoverHeader yields a header whose marshalling parses
//     back to itself (the voted copy passed the same CRC gate).

// fuzzSeedHeaders returns representative marshalled headers for the seed
// corpus: every kind, boundary field values, and the catalog sentinel.
func fuzzSeedHeaders() []Header {
	return []Header{
		{Version: Version, Kind: KindData, Index: 0, GroupID: 0, GroupPos: 0, GroupData: 17, GroupParity: 3, PayloadLen: 48391, TotalLen: 1 << 20},
		{Version: Version, Kind: KindSystem, Index: 65535, Total: 65535, GroupID: 65534, GroupPos: 19, GroupData: 17, GroupParity: 3, TotalLen: 0xFFFFFFFF},
		{Version: Version, Kind: KindParity, Index: 21, GroupID: 1, GroupPos: 18, GroupData: 17, GroupParity: 3},
		{Version: Version, Kind: KindRaw, Index: 7, GroupID: 0, GroupPos: 7, GroupData: 12, GroupParity: 3, TotalLen: 4096},
		{Version: Version, Kind: KindCatalog, Index: 0, GroupID: CatalogGroupID, GroupData: 0, GroupParity: 0, TotalLen: 361},
	}
}

func FuzzParseHeader(f *testing.F) {
	for _, h := range fuzzSeedHeaders() {
		f.Add(h.Marshal())
	}
	// Damaged variants: bad magic, truncation, flipped CRC, version bump.
	base := fuzzSeedHeaders()[0].Marshal()
	f.Add(base[:HeaderSize-1])
	for _, i := range []int{0, 1, HeaderSize - 1} {
		b := append([]byte(nil), base...)
		b[i] ^= 0x40
		f.Add(b)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseHeader(b)
		if err != nil {
			return
		}
		// Round trip: every accepted header re-marshals to the accepted
		// bytes (magic, all fields and CRC are deterministic).
		if got := h.Marshal(); !bytes.Equal(got, b[:HeaderSize]) {
			t.Fatalf("parse/marshal round trip diverged:\n in  %x\n out %x", b[:HeaderSize], got)
		}
	})
}

func FuzzRecoverHeader(f *testing.F) {
	// Three clean copies, then damage patterns the majority vote exists
	// for: one corrupt copy, two copies corrupt in different bytes, and
	// two copies corrupt in the same byte (vote fails, per-copy fallback).
	for _, h := range fuzzSeedHeaders() {
		one := h.Marshal()
		clean := bytes.Repeat(one, HeaderCopies)
		f.Add(clean)

		oneBad := append([]byte(nil), clean...)
		oneBad[3] ^= 0xFF
		f.Add(oneBad)

		twoBadDiff := append([]byte(nil), clean...)
		twoBadDiff[3] ^= 0xFF
		twoBadDiff[HeaderSize+9] ^= 0xFF
		f.Add(twoBadDiff)

		twoBadSame := append([]byte(nil), clean...)
		twoBadSame[3] ^= 0xFF
		twoBadSame[HeaderSize+3] ^= 0xFF
		f.Add(twoBadSame)
	}
	f.Add([]byte{})
	f.Add(make([]byte, HeaderCopies*HeaderSize))

	f.Fuzz(func(t *testing.T, stream []byte) {
		h, err := RecoverHeader(stream)
		if err != nil {
			return
		}
		// Whatever copy (or vote) was accepted passed the CRC, so the
		// recovered header must survive its own marshal/parse round trip.
		got, err := ParseHeader(h.Marshal())
		if err != nil {
			t.Fatalf("recovered header does not re-parse: %v (header %+v)", err, h)
		}
		if got != h {
			t.Fatalf("recover/marshal/parse round trip diverged: %+v vs %+v", h, got)
		}
	})
}

// TestRecoverHeaderVote pins the repair cases the fuzz seeds encode: a
// single corrupt copy and two copies corrupt in different bytes both
// recover the original header; truncated streams fail cleanly.
func TestRecoverHeaderVote(t *testing.T) {
	h := fuzzSeedHeaders()[0]
	one := h.Marshal()
	stream := bytes.Repeat(one, HeaderCopies)

	damaged := append([]byte(nil), stream...)
	damaged[5] ^= 0xA5
	damaged[HeaderSize+12] ^= 0x5A
	got, err := RecoverHeader(damaged)
	if err != nil {
		t.Fatalf("RecoverHeader on two differently-damaged copies: %v", err)
	}
	if got != h {
		t.Fatalf("recovered %+v, want %+v", got, h)
	}

	if _, err := RecoverHeader(stream[:HeaderCopies*HeaderSize-1]); err == nil {
		t.Fatal("RecoverHeader accepted a truncated stream")
	}
}
