// Package emblem defines the geometry and header of Micr'Olonys emblems —
// the archival 2D barcodes MOCoder prints to analog media (§3.1, Figure 1).
//
// An emblem is a rectangular module grid:
//
//	┌ quiet zone (2 modules, white)
//	│ ┌ border (2 modules, solid black — fast, robust geometry detection)
//	│ │ ┌ separator (1 module, white)
//	│ │ │ ┌ data region (DataW × DataH modules)
//	▼ ▼ ▼ ▼
//	..BB.dddddddddd.BB..
//
// The four 6×6-module corners of the data region hold distinct orientation
// marks (the paper's "large-scale black and white dots"); the remaining
// modules carry a serpentine, Differential-Manchester-modulated bit stream
// (internal/mocoder). The stream begins with three copies of the Header
// defined here, followed by the interleaved inner Reed-Solomon code stream.
package emblem

import (
	"errors"
	"fmt"
)

// Geometry constants, in modules.
const (
	QuietModules     = 2
	BorderModules    = 2
	SeparatorModules = 1
	// MarginModules is the total margin on each side of the data region.
	MarginModules = QuietModules + BorderModules + SeparatorModules
	// CornerBox is the side of the orientation-mark boxes in the data
	// region corners.
	CornerBox = 6
	// MinDataSide keeps the corner boxes disjoint with room between them.
	MinDataSide = 2*CornerBox + 4
)

// HeaderCopies is the replication factor of the header inside the stream.
const HeaderCopies = 3

// HeaderSize is the marshalled header length in bytes (including CRC).
const HeaderSize = 22

// Version is the emblem format version emitted by this implementation.
const Version = 1

// Kind labels what an emblem carries (Figure 2 of the paper).
type Kind uint8

const (
	// KindData emblems carry the DBCoder-compressed database archive.
	KindData Kind = iota + 1
	// KindSystem emblems carry the DBDecode DynaRisc instruction stream.
	KindSystem
	// KindParity emblems carry outer-code parity for a group.
	KindParity
	// KindRaw emblems carry arbitrary uncompressed payloads (e.g. the
	// Olonys logo image of the microfilm experiment).
	KindRaw
	// KindCatalog emblems carry the per-sheet salvage catalog
	// (internal/catalog): archive identity, volume inventory, per-group
	// checksums and a bootstrap replica. Catalog frames belong to no
	// outer-code group — their header carries GroupData 0 and the
	// CatalogGroupID sentinel — and are skipped by the group assembler.
	KindCatalog
	// KindIndex emblems carry the selective-restore index
	// (internal/archindex): the logical→physical map that lets
	// RestoreRange/RestoreTable decode only the groups a byte range
	// needs. Like catalog frames they live in a reserved per-sheet slot,
	// belong to no outer-code group (GroupData = 0, GroupID =
	// IndexGroupID) and are skipped by the group assembler.
	KindIndex
)

// CatalogGroupID is the sentinel GroupID catalog frame headers carry:
// catalog frames sit outside the outer-code group sequence, so they must
// never collide with a real (monotonically assigned) group id.
const CatalogGroupID = 0xFFFF

// IndexGroupID is the sentinel GroupID index frame headers carry, distinct
// from CatalogGroupID so a surviving header alone names its slot.
const IndexGroupID = 0xFFFE

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindSystem:
		return "system"
	case KindParity:
		return "parity"
	case KindRaw:
		return "raw"
	case KindCatalog:
		return "catalog"
	case KindIndex:
		return "index"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Layout fixes the emblem geometry for one medium.
type Layout struct {
	DataW, DataH int // data region size in modules
	PxPerModule  int // rendered pixels per module side
}

// Validate reports whether the layout is usable.
func (l Layout) Validate() error {
	if l.DataW < MinDataSide || l.DataH < MinDataSide {
		return fmt.Errorf("emblem: data region %dx%d below minimum %d", l.DataW, l.DataH, MinDataSide)
	}
	if l.PxPerModule < 1 {
		return fmt.Errorf("emblem: pixels per module %d < 1", l.PxPerModule)
	}
	return nil
}

// FullModulesW returns the emblem width in modules including margins.
func (l Layout) FullModulesW() int { return l.DataW + 2*MarginModules }

// FullModulesH returns the emblem height in modules including margins.
func (l Layout) FullModulesH() int { return l.DataH + 2*MarginModules }

// ImageW returns the rendered image width in pixels.
func (l Layout) ImageW() int { return l.FullModulesW() * l.PxPerModule }

// ImageH returns the rendered image height in pixels.
func (l Layout) ImageH() int { return l.FullModulesH() * l.PxPerModule }

// GridW returns the border-enclosed grid width in modules (border to
// border, excluding the quiet zone) — the span between detected corners.
func (l Layout) GridW() int { return l.DataW + 2*(BorderModules+SeparatorModules) }

// GridH is the border-enclosed grid height in modules.
func (l Layout) GridH() int { return l.DataH + 2*(BorderModules+SeparatorModules) }

// Point is a module coordinate within the data region.
type Point struct{ X, Y int }

// inCornerBox reports whether (x, y) falls inside an orientation mark.
func (l Layout) inCornerBox(x, y int) bool {
	inX0 := x < CornerBox
	inX1 := x >= l.DataW-CornerBox
	inY0 := y < CornerBox
	inY1 := y >= l.DataH-CornerBox
	return (inX0 || inX1) && (inY0 || inY1)
}

// DataPath returns the serpentine module order of the data stream: even
// rows run left to right, odd rows right to left, skipping the four corner
// boxes. Encoder and decoder share this exact order.
func (l Layout) DataPath() []Point {
	path := make([]Point, 0, l.DataW*l.DataH-4*CornerBox*CornerBox)
	for y := 0; y < l.DataH; y++ {
		if y%2 == 0 {
			for x := 0; x < l.DataW; x++ {
				if !l.inCornerBox(x, y) {
					path = append(path, Point{x, y})
				}
			}
		} else {
			for x := l.DataW - 1; x >= 0; x-- {
				if !l.inCornerBox(x, y) {
					path = append(path, Point{x, y})
				}
			}
		}
	}
	return path
}

// StreamBits returns the number of data bits an emblem carries: each bit
// occupies two modules (Differential Manchester halves).
func (l Layout) StreamBits() int {
	return (l.DataW*l.DataH - 4*CornerBox*CornerBox) / 2
}

// Header identifies an emblem and its place in the archive. It is stored
// three times at the start of the stream, each copy CRC-16 protected, and
// recovered by per-byte majority vote.
type Header struct {
	Version     uint8
	Kind        Kind
	Index       uint16 // emblem index within the whole archive section
	Total       uint16 // emblems in the archive section
	GroupID     uint16 // outer-code group this emblem belongs to
	GroupPos    uint8  // position within the group (data first, then parity)
	GroupData   uint8  // number of data emblems in the group
	GroupParity uint8  // number of parity emblems in the group
	PayloadLen  uint32 // payload bytes carried by this emblem
	TotalLen    uint32 // total payload bytes across the archive section
}

const headerMagic = 0xE5

// Marshal serialises the header (big endian) with a trailing CRC-16.
func (h Header) Marshal() []byte {
	return h.AppendMarshal(make([]byte, 0, HeaderSize))
}

// AppendMarshal appends the serialised header to b and returns the
// extended slice — Marshal for callers assembling a stream in a reused
// buffer.
func (h Header) AppendMarshal(b []byte) []byte {
	start := len(b)
	b = append(b, headerMagic, h.Version, uint8(h.Kind))
	b = appendU16(b, h.Index)
	b = appendU16(b, h.Total)
	b = appendU16(b, h.GroupID)
	b = append(b, h.GroupPos, h.GroupData, h.GroupParity)
	b = appendU32(b, h.PayloadLen)
	b = appendU32(b, h.TotalLen)
	crc := CRC16(b[start:])
	b = appendU16(b, crc)
	return b
}

// ErrHeader reports an unrecoverable emblem header.
var ErrHeader = errors.New("emblem: header unreadable")

// ParseHeader deserialises one header copy, validating magic and CRC.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: short buffer", ErrHeader)
	}
	if b[0] != headerMagic {
		return Header{}, fmt.Errorf("%w: bad magic %#x", ErrHeader, b[0])
	}
	if CRC16(b[:HeaderSize-2]) != u16(b[HeaderSize-2:]) {
		return Header{}, fmt.Errorf("%w: CRC mismatch", ErrHeader)
	}
	h := Header{
		Version:     b[1],
		Kind:        Kind(b[2]),
		Index:       u16(b[3:]),
		Total:       u16(b[5:]),
		GroupID:     u16(b[7:]),
		GroupPos:    b[9],
		GroupData:   b[10],
		GroupParity: b[11],
		PayloadLen:  u32(b[12:]),
		TotalLen:    u32(b[16:]),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("%w: unsupported version %d", ErrHeader, h.Version)
	}
	return h, nil
}

// RecoverHeader reconstructs the header from HeaderCopies copies using
// per-byte majority vote, then validates the result.
func RecoverHeader(stream []byte) (Header, error) {
	need := HeaderCopies * HeaderSize
	if len(stream) < need {
		return Header{}, fmt.Errorf("%w: stream shorter than header block", ErrHeader)
	}
	voted := make([]byte, HeaderSize)
	for i := range voted {
		a, b, c := stream[i], stream[HeaderSize+i], stream[2*HeaderSize+i]
		voted[i] = majority3(a, b, c)
	}
	if h, err := ParseHeader(voted); err == nil {
		return h, nil
	}
	// Majority failed (two copies damaged in the same byte): try each copy.
	for k := 0; k < HeaderCopies; k++ {
		if h, err := ParseHeader(stream[k*HeaderSize:]); err == nil {
			return h, nil
		}
	}
	return Header{}, ErrHeader
}

func majority3(a, b, c byte) byte {
	return a&b | a&c | b&c
}

// CRC16 computes the CRC-16/CCITT-FALSE checksum (poly 0x1021, init 0xFFFF)
// used by the emblem header.
func CRC16(p []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range p {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func u16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// CornerPattern returns the 6×6 orientation mark for data-region corner c
// (0=TL, 1=TR, 2=BR, 3=BL); true means black.
func CornerPattern(c int) [CornerBox][CornerBox]bool {
	var p [CornerBox][CornerBox]bool
	switch c {
	case 0: // solid block
		for y := range p {
			for x := range p {
				p[y][x] = true
			}
		}
	case 1: // ring: black outline, white interior
		for y := range p {
			for x := range p {
				p[y][x] = y == 0 || y == CornerBox-1 || x == 0 || x == CornerBox-1
			}
		}
	case 2: // centre dot: white with black 2×2 core
		for y := 2; y < 4; y++ {
			for x := 2; x < 4; x++ {
				p[y][x] = true
			}
		}
	case 3: // checkerboard of 3×3 blocks
		for y := range p {
			for x := range p {
				p[y][x] = (x/3+y/3)%2 == 0
			}
		}
	default:
		panic("emblem: corner index out of range")
	}
	return p
}
