package emblem

import (
	"testing"
	"testing/quick"
)

func testLayout() Layout { return Layout{DataW: 80, DataH: 60, PxPerModule: 4} }

func TestLayoutValidate(t *testing.T) {
	if err := testLayout().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{DataW: 10, DataH: 60, PxPerModule: 4},
		{DataW: 80, DataH: 10, PxPerModule: 4},
		{DataW: 80, DataH: 60, PxPerModule: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Fatalf("layout %d accepted", i)
		}
	}
}

func TestLayoutDerived(t *testing.T) {
	l := testLayout()
	if l.FullModulesW() != 80+2*MarginModules {
		t.Fatal("FullModulesW")
	}
	if l.ImageW() != l.FullModulesW()*4 {
		t.Fatal("ImageW")
	}
	if l.GridW() != 80+2*(BorderModules+SeparatorModules) {
		t.Fatal("GridW")
	}
}

func TestDataPathProperties(t *testing.T) {
	l := testLayout()
	path := l.DataPath()
	wantLen := l.DataW*l.DataH - 4*CornerBox*CornerBox
	if len(path) != wantLen {
		t.Fatalf("path len %d, want %d", len(path), wantLen)
	}
	seen := make(map[Point]bool, len(path))
	for _, p := range path {
		if p.X < 0 || p.X >= l.DataW || p.Y < 0 || p.Y >= l.DataH {
			t.Fatalf("point out of range: %+v", p)
		}
		if l.inCornerBox(p.X, p.Y) {
			t.Fatalf("path enters corner box: %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate point %+v", p)
		}
		seen[p] = true
	}
	// Serpentine: consecutive points in the same row are adjacent.
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if a.Y == b.Y && abs(a.X-b.X) != 1 {
			t.Fatalf("gap within row at %d: %+v -> %+v", i, a, b)
		}
	}
	if l.StreamBits() != wantLen/2 {
		t.Fatal("StreamBits")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Version: Version, Kind: KindData, Index: 7, Total: 26,
		GroupID: 2, GroupPos: 4, GroupData: 17, GroupParity: 3,
		PayloadLen: 50175, TotalLen: 1200000,
	}
	b := h.Marshal()
	if len(b) != HeaderSize {
		t.Fatalf("marshalled size %d", len(b))
	}
	got, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestHeaderQuick(t *testing.T) {
	f := func(kind uint8, idx, tot, gid uint16, gp, gd, gpar uint8, pl, tl uint32) bool {
		h := Header{
			Version: Version, Kind: Kind(kind), Index: idx, Total: tot,
			GroupID: gid, GroupPos: gp, GroupData: gd, GroupParity: gpar,
			PayloadLen: pl, TotalLen: tl,
		}
		got, err := ParseHeader(h.Marshal())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderCRCDetectsDamage(t *testing.T) {
	h := Header{Version: Version, Kind: KindData, Index: 1, Total: 2}
	b := h.Marshal()
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x40
		if _, err := ParseHeader(bad); err == nil {
			t.Fatalf("flip at byte %d undetected", i)
		}
	}
}

func TestRecoverHeaderMajority(t *testing.T) {
	h := Header{Version: Version, Kind: KindSystem, Index: 3, Total: 9, PayloadLen: 100}
	one := h.Marshal()
	stream := append(append(append([]byte{}, one...), one...), one...)

	// Damage one copy heavily: majority still wins.
	for i := 0; i < HeaderSize; i += 2 {
		stream[HeaderSize+i] ^= 0xFF
	}
	got, err := RecoverHeader(stream)
	if err != nil || got != h {
		t.Fatalf("majority recovery failed: %+v %v", got, err)
	}

	// Damage two copies in *different* bytes: majority byte-vote fails for
	// none (each byte still has 2 good copies)... damage same byte in two
	// copies: majority fails there, but copy 3 alone parses.
	stream2 := append(append(append([]byte{}, one...), one...), one...)
	stream2[5] ^= 0xAA
	stream2[HeaderSize+5] ^= 0x55
	got, err = RecoverHeader(stream2)
	if err != nil || got != h {
		t.Fatalf("fallback recovery failed: %+v %v", got, err)
	}

	// All three copies destroyed: must error.
	for c := 0; c < 3; c++ {
		for i := 0; i < HeaderSize; i += 3 {
			stream2[c*HeaderSize+i] ^= byte(0x11 * (c + 1))
		}
	}
	if _, err := RecoverHeader(stream2); err == nil {
		t.Fatal("destroyed header recovered")
	}
}

func TestRecoverHeaderShort(t *testing.T) {
	if _, err := RecoverHeader(make([]byte, 10)); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestParseHeaderRejectsVersion(t *testing.T) {
	h := Header{Version: Version, Kind: KindData}
	b := h.Marshal()
	b[1] = 99
	// Re-CRC so only the version check can fail.
	crc := CRC16(b[:HeaderSize-2])
	b[HeaderSize-2] = byte(crc >> 8)
	b[HeaderSize-1] = byte(crc)
	if _, err := ParseHeader(b); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#x, want 0x29B1", got)
	}
}

func TestCornerPatternsDistinct(t *testing.T) {
	count := func(p [CornerBox][CornerBox]bool) int {
		n := 0
		for _, row := range p {
			for _, v := range row {
				if v {
					n++
				}
			}
		}
		return n
	}
	darkness := map[int]int{}
	for c := 0; c < 4; c++ {
		darkness[c] = count(CornerPattern(c))
	}
	// Pairwise Hamming distance between patterns must be large enough to
	// discriminate under noise.
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			pa, pb := CornerPattern(a), CornerPattern(b)
			d := 0
			for y := 0; y < CornerBox; y++ {
				for x := 0; x < CornerBox; x++ {
					if pa[y][x] != pb[y][x] {
						d++
					}
				}
			}
			if d < 8 {
				t.Fatalf("patterns %d and %d too similar (hamming %d)", a, b, d)
			}
		}
	}
}

func TestCornerPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CornerPattern(4)
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "data", KindSystem: "system", KindParity: "parity",
		KindRaw: "raw", Kind(9): "kind(9)",
	} {
		if k.String() != want {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
}
