// Package bootstrap builds and parses the Bootstrap document (§3.2/§3.3
// of the paper): the short plain-text document archived on analog media
// alongside the emblems, containing everything a future user needs to
// restore the data on a computing platform that does not exist today.
//
// The document has two parts:
//
//   - plain-text pseudocode describing the VeRisc machine, the letter
//     encoding, and the restoration procedure (a few pages a programmer
//     can implement "in under a week", per §4);
//   - the binary instruction streams of the DynaRisc emulator (a VeRisc
//     program) and of MODecode (a DynaRisc program), converted to a list
//     of textual characters with the paper's letter code: letters A to P
//     encode hexadecimal values 0xF down to 0x0.
//
// DBCoder's decoder is NOT in the document: it is archived as system
// emblems (§3.3 step 5), because once MODecode runs, emblems can decode
// themselves. MOCoder and the emulator cannot be stored as emblems — they
// are what reads emblems — hence the letters.
package bootstrap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"microlonys/dynarisc"
	"microlonys/internal/emblem"
	"microlonys/verisc"
)

// EncodeLetters converts bytes to the letter alphabet: each nibble v
// (high first) becomes the letter 'A'+(0xF-v), so A=0xF … P=0x0.
func EncodeLetters(data []byte) string {
	var b strings.Builder
	b.Grow(len(data) * 2)
	for _, d := range data {
		b.WriteByte('A' + (0xF - d>>4))
		b.WriteByte('A' + (0xF - d&0xF))
	}
	return b.String()
}

// ErrBadLetter reports a character outside A..P in a letter stream.
var ErrBadLetter = errors.New("bootstrap: invalid letter")

// DecodeLetters converts a letter stream back to bytes, skipping
// whitespace and line breaks (scanned text arrives with layout noise).
func DecodeLetters(s string) ([]byte, error) {
	nibbles := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			continue
		case c >= 'A' && c <= 'P':
			nibbles = append(nibbles, 0xF-(c-'A'))
		case c >= 'a' && c <= 'p': // tolerate OCR case errors
			nibbles = append(nibbles, 0xF-(c-'a'))
		default:
			return nil, fmt.Errorf("%w: %q at offset %d", ErrBadLetter, c, i)
		}
	}
	if len(nibbles)%2 != 0 {
		return nil, fmt.Errorf("%w: odd nibble count %d", ErrBadLetter, len(nibbles))
	}
	out := make([]byte, len(nibbles)/2)
	for i := range out {
		out[i] = nibbles[2*i]<<4 | nibbles[2*i+1]
	}
	return out, nil
}

// Binary program serialisations used inside the letter sections.
const (
	veriscMagic   = "VR01"
	dynariscMagic = "DR01"
)

// MarshalVeRisc serialises a VeRisc program (org, length, 32-bit cells,
// all big endian).
func MarshalVeRisc(p *verisc.Program) []byte {
	out := make([]byte, 0, 12+4*len(p.Cells))
	out = append(out, veriscMagic...)
	out = binary.BigEndian.AppendUint32(out, p.Org)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.Cells)))
	for _, c := range p.Cells {
		out = binary.BigEndian.AppendUint32(out, c)
	}
	return out
}

// UnmarshalVeRisc parses MarshalVeRisc output.
func UnmarshalVeRisc(data []byte) (*verisc.Program, error) {
	if len(data) < 12 || string(data[:4]) != veriscMagic {
		return nil, errors.New("bootstrap: not a VeRisc program stream")
	}
	org := binary.BigEndian.Uint32(data[4:])
	n := int(binary.BigEndian.Uint32(data[8:]))
	if len(data) != 12+4*n {
		return nil, fmt.Errorf("bootstrap: VeRisc stream length %d, want %d cells", len(data), n)
	}
	cells := make([]uint32, n)
	for i := range cells {
		cells[i] = binary.BigEndian.Uint32(data[12+4*i:])
	}
	return &verisc.Program{Org: org, Cells: cells}, nil
}

// MarshalDynaRisc serialises a DynaRisc program (16-bit words).
func MarshalDynaRisc(p *dynarisc.Program) []byte {
	out := make([]byte, 0, 10+2*len(p.Words))
	out = append(out, dynariscMagic...)
	out = binary.BigEndian.AppendUint16(out, p.Org)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.Words)))
	for _, w := range p.Words {
		out = binary.BigEndian.AppendUint16(out, w)
	}
	return out
}

// UnmarshalDynaRisc parses MarshalDynaRisc output.
func UnmarshalDynaRisc(data []byte) (*dynarisc.Program, error) {
	if len(data) < 10 || string(data[:4]) != dynariscMagic {
		return nil, errors.New("bootstrap: not a DynaRisc program stream")
	}
	org := binary.BigEndian.Uint16(data[4:])
	n := int(binary.BigEndian.Uint32(data[6:]))
	if len(data) != 10+2*n {
		return nil, fmt.Errorf("bootstrap: DynaRisc stream length %d, want %d words", len(data), n)
	}
	words := make([]uint16, n)
	for i := range words {
		words[i] = binary.BigEndian.Uint16(data[10+2*i:])
	}
	return &dynarisc.Program{Org: org, Words: words}, nil
}

// Document is the Bootstrap: everything the future user receives as text.
type Document struct {
	ProfileName string
	Layout      emblem.Layout
	GroupData   int
	GroupParity int
	// Catalog records that the volume reserves the first frame of every
	// sheet for a self-describing catalog emblem (internal/catalog), which
	// the restore assembler must skip when locating outer-code groups.
	Catalog bool
	// Index records that the volume reserves a frame on every sheet (after
	// the catalog slot, when present) for a selective-restore index emblem
	// (internal/archindex), likewise skipped by the group assembler.
	Index bool

	Pseudocode      string
	EmulatorLetters string // DynaRisc emulator (VeRisc instruction stream)
	MODecodeLetters string // MOCoder decoder (DynaRisc instruction stream)
}

// New builds the document for an emblem layout, embedding the emulator
// and MODecode instruction streams.
func New(profileName string, l emblem.Layout, groupData, groupParity int,
	emulator *verisc.Program, modecode *dynarisc.Program) *Document {
	return &Document{
		ProfileName:     profileName,
		Layout:          l,
		GroupData:       groupData,
		GroupParity:     groupParity,
		Pseudocode:      pseudocode(),
		EmulatorLetters: EncodeLetters(MarshalVeRisc(emulator)),
		MODecodeLetters: EncodeLetters(MarshalDynaRisc(modecode)),
	}
}

// Section markers in the rendered document.
const (
	markHeader   = "==== MICR'OLONYS BOOTSTRAP v1 ===="
	markLayout   = "==== SECTION 2: EMBLEM GEOMETRY ===="
	markEmulator = "==== SECTION 3: DYNARISC EMULATOR (letters) ===="
	markDecoder  = "==== SECTION 4: MODECODE (letters) ===="
	markEnd      = "==== END OF BOOTSTRAP ===="
)

// Render produces the full text document.
func (d *Document) Render() string {
	var b strings.Builder
	b.WriteString(markHeader + "\n\n")
	b.WriteString(d.Pseudocode)
	b.WriteString("\n" + markLayout + "\n")
	fmt.Fprintf(&b, "profile=%s\n", d.ProfileName)
	fmt.Fprintf(&b, "dataw=%d datah=%d pxpermodule=%d\n", d.Layout.DataW, d.Layout.DataH, d.Layout.PxPerModule)
	fmt.Fprintf(&b, "groupdata=%d groupparity=%d\n", d.GroupData, d.GroupParity)
	if d.Catalog {
		// Emitted only when set so pre-catalog documents render unchanged;
		// Parse has always ignored unknown keys, so old readers skip it.
		fmt.Fprintf(&b, "catalog=1\n")
	}
	if d.Index {
		// Same compatibility story as catalog=1 above.
		fmt.Fprintf(&b, "index=1\n")
	}
	b.WriteString("\n" + markEmulator + "\n")
	b.WriteString(wrap(d.EmulatorLetters, 64))
	b.WriteString("\n" + markDecoder + "\n")
	b.WriteString(wrap(d.MODecodeLetters, 64))
	b.WriteString("\n" + markEnd + "\n")
	return b.String()
}

func wrap(s string, width int) string {
	var b strings.Builder
	for len(s) > width {
		b.WriteString(s[:width])
		b.WriteByte('\n')
		s = s[width:]
	}
	b.WriteString(s)
	b.WriteByte('\n')
	return b.String()
}

// Parse reads a rendered document back (the "OCR" step of restoration).
func Parse(text string) (*Document, error) {
	if !strings.Contains(text, markHeader) {
		return nil, errors.New("bootstrap: missing header marker")
	}
	section := func(from, to string) (string, error) {
		i := strings.Index(text, from)
		j := strings.Index(text, to)
		if i < 0 || j < i {
			return "", fmt.Errorf("bootstrap: cannot locate section %q", from)
		}
		return text[i+len(from) : j], nil
	}
	layoutTxt, err := section(markLayout, markEmulator)
	if err != nil {
		return nil, err
	}
	emuTxt, err := section(markEmulator, markDecoder)
	if err != nil {
		return nil, err
	}
	decTxt, err := section(markDecoder, markEnd)
	if err != nil {
		return nil, err
	}
	d := &Document{
		EmulatorLetters: compactLetters(emuTxt),
		MODecodeLetters: compactLetters(decTxt),
	}
	for _, line := range strings.Split(strings.TrimSpace(layoutTxt), "\n") {
		for _, field := range strings.Fields(line) {
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				continue
			}
			switch k {
			case "profile":
				d.ProfileName = v
			case "dataw":
				fmt.Sscan(v, &d.Layout.DataW)
			case "datah":
				fmt.Sscan(v, &d.Layout.DataH)
			case "pxpermodule":
				fmt.Sscan(v, &d.Layout.PxPerModule)
			case "groupdata":
				fmt.Sscan(v, &d.GroupData)
			case "groupparity":
				fmt.Sscan(v, &d.GroupParity)
			case "catalog":
				d.Catalog = v == "1"
			case "index":
				d.Index = v == "1"
			}
		}
	}
	if err := d.Layout.Validate(); err != nil {
		return nil, fmt.Errorf("bootstrap: %w", err)
	}
	return d, nil
}

func compactLetters(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'A' && c <= 'P') || (c >= 'a' && c <= 'p') {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// EmulatorProgram decodes the embedded DynaRisc emulator.
func (d *Document) EmulatorProgram() (*verisc.Program, error) {
	raw, err := DecodeLetters(d.EmulatorLetters)
	if err != nil {
		return nil, err
	}
	return UnmarshalVeRisc(raw)
}

// MODecodeProgram decodes the embedded media layout decoder.
func (d *Document) MODecodeProgram() (*dynarisc.Program, error) {
	raw, err := DecodeLetters(d.MODecodeLetters)
	if err != nil {
		return nil, err
	}
	return UnmarshalDynaRisc(raw)
}

// Stats summarises the document for the E4 portability experiment.
type Stats struct {
	PseudocodeLines int
	LetterChars     int
	TotalChars      int
	PseudocodePages int
	LetterPages     int
	TotalPages      int
}

// PageStats computes page counts at the classic 80×66 characters/page.
func (d *Document) PageStats() Stats {
	const pageChars = 80 * 66
	text := d.Render()
	letters := len(d.EmulatorLetters) + len(d.MODecodeLetters)
	pseudoChars := len(text) - letters
	s := Stats{
		PseudocodeLines: strings.Count(d.Pseudocode, "\n"),
		LetterChars:     letters,
		TotalChars:      len(text),
	}
	s.PseudocodePages = (pseudoChars + pageChars - 1) / pageChars
	s.LetterPages = (letters + pageChars - 1) / pageChars
	s.TotalPages = s.PseudocodePages + s.LetterPages
	return s
}
