package bootstrap

// pseudocode returns Section 1 of the Bootstrap: the complete, self-
// contained description of the VeRisc machine and the restoration
// procedure, written for a reader with basic programming skills and no
// knowledge of this system. It is the paper's "four pages of algorithm
// pseudocode" (§3.2); examples/futureuser implements an emulator from
// this text alone.
func pseudocode() string {
	return `SECTION 1: HOW TO RECOVER THE DATA ON THIS MEDIUM

This medium holds a database archive. Most frames carry square barcodes
("emblems"). This document tells you how to turn them back into the
original text file. You need: (a) a way to scan each frame into a grid
of pixel brightness values (0 = black, 255 = white), and (b) any
programmable computer. All software needed for decoding is printed in
this document as letters, plus barcode frames that decode themselves.

STEP 1 - THE VERISC MACHINE (implement this; about 100-300 lines)

Memory: an array M of unsigned 32-bit integers, at least 18,000,000
cells, all initially 0. Registers: R (32-bit accumulator) and B (borrow
flag, 0 or 1). PC is a cell index. Input: a queue of numbers you
provide. Output: a list of numbers the machine produces.

Run loop: forever, read op=M[PC], addr=M[PC+1], set PC=PC+2, then:

  op 0 (LD):   R = read(addr)
  op 1 (ST):   write(addr, R)
  op 2 (SBB):  t = R - read(addr) - B  (as a signed 64-bit value)
               if t < 0 then B = 1 else B = 0
               R = t modulo 2^32
  op 3 (AND):  R = R bitwise-and read(addr)
  any other op: the image is corrupt.

read(a):  a=0 -> PC;  a=1 -> B;  a=2 -> next input number (0 if no
          more);  a=3 -> 1 if input remains else 0;  otherwise M[a].
write(a,v): a=0 -> PC=v (a jump);  a=1 -> B=v mod 2;  a=4 -> append v
          to output;  a=5 -> stop the machine;  otherwise M[a]=v.

STEP 2 - THE LETTER CODE

Letter sections below encode bytes: each letter A..P is one hexadecimal
digit, where A=15(F), B=14(E), ... O=1, P=0. Two letters form one byte,
high digit first. Ignore spaces and line breaks.

STEP 3 - LOAD THE DYNARISC EMULATOR (Section 3 letters)

Decode Section 3 into bytes. Skip 4 bytes ("VR01"). Read org (4 bytes,
big endian), then count (4 bytes). Then count 32-bit big-endian cells.
Copy the cells into M starting at index org, set PC=org. The VeRisc
machine now contains an emulator for a second, richer processor
(DynaRisc). You never need to understand DynaRisc: the emulator's input
protocol is all that matters:

  input = [ guest_org, guest_len, guest_code... , guest_input... ]

It first reads a DynaRisc program (org, length, then that many words),
then runs it; everything after is the program's own input, and the
program's output words appear on your output list.

STEP 4 - DECODE THE EMBLEMS (Section 4 letters = MODecode)

Decode Section 4 into bytes. Skip 4 bytes ("DR01"). Read org (2 bytes,
big endian) and count (4 bytes); then count 16-bit big-endian words.
This is MODecode, a DynaRisc program. For each scanned frame, run the
emulator (Step 3) with:

  guest_input = [ scan_width, scan_height, dataW, dataH, pixels... ]

where dataW/dataH come from Section 2 and pixels are the frame's
brightness values row by row, one number each. Preprocess each scan
first with any image tool: deskew it so the barcode's thick black
border runs parallel to the image edges, and rescale it so that one
barcode module is 3 x 3 pixels (the border then spans exactly
3*(dataW + 6) x 3*(dataH + 6) pixels; use an area-averaging filter,
not nearest-neighbour). Geometry only - do not threshold or otherwise
alter brightness. The output is the frame's 22-byte header followed by
its payload, one byte per output number. A frame that produces no
output is damaged; set it aside (Step 5 recovers it).

STEP 5 - ASSEMBLE THE ARCHIVE

Each payload begins after a 22-byte header stored inside the emblem
(MODecode already validated it). Frames are numbered: 'index' (bytes
3..4 of the header, big endian) orders them; 'kind' (byte 2) is 1 for
data, 2 for system, 3 for parity. Frames form groups of up to
groupdata data frames plus groupparity parity frames (Section 2). If
up to groupparity frames of a group are unreadable, recover them:
parity frame j holds, at each byte position, the Reed-Solomon parity
over the group's data frames (field GF(256), polynomial x^8+x^4+x^3+
x^2+1, generator roots 1, alpha, alpha^2). Erasure decoding at known
positions restores the missing frames. (With all frames readable you
can skip this paragraph entirely.)

Concatenate the data-frame payloads in index order and truncate to
'total length' (header bytes 16..19, big endian). The result is a
compressed archive beginning with the bytes "DBC1".

STEP 6 - DECOMPRESS (the system frames decode themselves)

The frames whose kind byte is 2 ("system") carry, as their payload,
another DynaRisc program: DBDecode. Assemble it exactly as in Step 4's
byte format ("DR01"...). Run it in the emulator with the compressed
archive bytes (one per input number) as guest_input; the output is the
original database archive - a plain text file of SQL statements. Load
it into any database of your era.

Checks: the DBC1 header stores the output length (bytes 4..7, little
endian) and a CRC-32 of the output (bytes 8..11); verify if you wish.
`
}
