package bootstrap

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"microlonys/dynarisc"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/nested"
	"microlonys/verisc"
)

func TestLettersKnownValues(t *testing.T) {
	// A=0xF … P=0x0 (paper: "letters A to P are used to encode
	// hexadecimal values 0xF to 0x0 respectively").
	if got := EncodeLetters([]byte{0xF0}); got != "AP" {
		t.Fatalf("0xF0 -> %q, want AP", got)
	}
	if got := EncodeLetters([]byte{0x00}); got != "PP" {
		t.Fatalf("0x00 -> %q", got)
	}
	if got := EncodeLetters([]byte{0x5A}); got != "KF" {
		t.Fatalf("0x5A -> %q, want KF", got)
	}
}

func TestLettersRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, err := DecodeLetters(EncodeLetters(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLettersTolerateLayoutNoise(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	s := EncodeLetters(data)
	noisy := " " + s[:3] + "\n\t" + strings.ToLower(s[3:5]) + "\r\n" + s[5:] + " \n"
	got, err := DecodeLetters(noisy)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("noisy decode: %v %x", err, got)
	}
}

func TestLettersRejectJunk(t *testing.T) {
	if _, err := DecodeLetters("AZ"); err == nil {
		t.Fatal("Z accepted")
	}
	if _, err := DecodeLetters("ABC"); err == nil {
		t.Fatal("odd nibbles accepted")
	}
}

func TestVeRiscMarshalRoundTrip(t *testing.T) {
	p := &verisc.Program{Org: 8, Cells: []uint32{0, 20, 1, 4, 1, 5, 0xDEADBEEF}}
	got, err := UnmarshalVeRisc(MarshalVeRisc(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Org != p.Org || len(got.Cells) != len(p.Cells) {
		t.Fatal("shape")
	}
	for i := range p.Cells {
		if got.Cells[i] != p.Cells[i] {
			t.Fatal("cells")
		}
	}
	if _, err := UnmarshalVeRisc([]byte("nope")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := UnmarshalVeRisc(MarshalVeRisc(p)[:10]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestDynaRiscMarshalRoundTrip(t *testing.T) {
	p := dynarisc.MustAssemble("LDI R0, 7\nHALT")
	got, err := UnmarshalDynaRisc(MarshalDynaRisc(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Org != p.Org || len(got.Words) != len(p.Words) {
		t.Fatal("shape")
	}
	for i := range p.Words {
		if got.Words[i] != p.Words[i] {
			t.Fatal("words")
		}
	}
}

func buildDoc(t *testing.T) *Document {
	t.Helper()
	emu, err := nested.Program()
	if err != nil {
		t.Fatal(err)
	}
	mo, err := dynprog.MODecode()
	if err != nil {
		t.Fatal(err)
	}
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return New("test-profile", l, 17, 3, emu, mo)
}

func TestDocumentRenderParse(t *testing.T) {
	doc := buildDoc(t)
	text := doc.Render()
	got, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProfileName != "test-profile" || got.Layout.DataW != 100 ||
		got.GroupData != 17 || got.GroupParity != 3 {
		t.Fatalf("parsed fields: %+v", got)
	}

	// The embedded programs must be recoverable and identical.
	emu, err := got.EmulatorProgram()
	if err != nil {
		t.Fatal(err)
	}
	wantEmu, _ := nested.Program()
	if emu.Org != wantEmu.Org || len(emu.Cells) != len(wantEmu.Cells) {
		t.Fatal("emulator program mangled")
	}
	for i := range wantEmu.Cells {
		if emu.Cells[i] != wantEmu.Cells[i] {
			t.Fatalf("emulator cell %d differs", i)
		}
	}
	mo, err := got.MODecodeProgram()
	if err != nil {
		t.Fatal(err)
	}
	wantMo, _ := dynprog.MODecode()
	for i := range wantMo.Words {
		if mo.Words[i] != wantMo.Words[i] {
			t.Fatalf("MODecode word %d differs", i)
		}
	}
}

func TestDocumentPageStats(t *testing.T) {
	doc := buildDoc(t)
	s := doc.PageStats()
	if s.PseudocodeLines < 50 {
		t.Fatalf("pseudocode suspiciously short: %d lines", s.PseudocodeLines)
	}
	// §3.2: "a short, seven-page document". Our emulator is richer than
	// the authors' hand-optimised one, so allow the same order of
	// magnitude rather than the exact page count.
	if s.TotalPages < 2 || s.TotalPages > 40 {
		t.Fatalf("bootstrap is %d pages; expected a short document", s.TotalPages)
	}
	t.Logf("bootstrap: %d pseudocode pages + %d letter pages = %d total (%d letter chars)",
		s.PseudocodePages, s.LetterPages, s.TotalPages, s.LetterChars)
}

func TestParseRejectsDamage(t *testing.T) {
	doc := buildDoc(t)
	text := doc.Render()
	if _, err := Parse(strings.Replace(text, markEmulator, "xxxx", 1)); err == nil {
		t.Fatal("missing section accepted")
	}
	if _, err := Parse("not a bootstrap"); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestPseudocodeSelfSufficient asserts the document tells the future
// user everything the restoration procedure needs: all four VeRisc
// instructions, every memory-mapped cell, the letter decoding rule and
// the nested-execution steps. The paper's whole premise is that this
// text alone suffices decades later.
func TestPseudocodeSelfSufficient(t *testing.T) {
	doc := buildDoc(t)
	text := doc.Render()
	for _, needle := range []string{
		"(LD)", "(ST)", "(SBB)", "(AND)", // the four instructions, defined
		"PC", "borrow", // machine state
		"input", "output", "stop the machine", // I/O and halting
		"A=15(F)",                 // the paper's letter mapping, stated
		"Reed-Solomon", "GF(256)", // outer-code recovery recipe
		"DBC1", "VR01", "DR01", // the three container formats
		"guest_input", "pixels", // the emulator and scan protocols
		"big endian", "22-byte", // framing details a user needs
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("bootstrap text lacks %q", needle)
		}
	}
}

// TestParseToleratesOCRNoise simulates the paper's restoration step 1:
// the letters come back from OCR, which introduces case flips and
// whitespace — Parse must absorb both.
func TestParseToleratesOCRNoise(t *testing.T) {
	doc := buildDoc(t)
	text := doc.Render()

	// Lowercase the letters inside Section 3 (keeping the section
	// markers intact) and pad lines with trailing spaces, as scanned
	// text tends to arrive.
	start := strings.Index(text, markEmulator)
	end := strings.Index(text, markDecoder)
	if start < 0 || end < 0 {
		t.Fatal("section markers missing")
	}
	start += len(markEmulator)
	noisy := text[:start] +
		strings.ReplaceAll(strings.ToLower(text[start:end]), "\n", "  \n") +
		text[end:]

	parsed, err := Parse(noisy)
	if err != nil {
		t.Fatalf("OCR-noised document rejected: %v", err)
	}
	want, err := doc.EmulatorProgram()
	if err != nil {
		t.Fatal(err)
	}
	got, err := parsed.EmulatorProgram()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("emulator program length %d, want %d", len(got.Cells), len(want.Cells))
	}
	for i := range want.Cells {
		if got.Cells[i] != want.Cells[i] {
			t.Fatalf("emulator cell %d differs", i)
		}
	}
}
