package dynprog

import (
	"sync"

	"microlonys/dynarisc"
)

// Named variable addresses for the DBDecode program (word addresses).
// The probability arrays below mirror internal/dbcoder's model exactly;
// any change there is a format change here.
var dbVars = map[string]int{
	"RHI": 0x3F00, "RLO": 0x3F01, "CHI": 0x3F02, "CLO": 0x3F03,
	"RAWLO": 0x3F04, "RAWHI": 0x3F05,
	"POSLO": 0x3F06, "POSHI": 0x3F07,
	"PREV": 0x3F08, "PWM": 0x3F09,
	"LDLO": 0x3F0A, "LDHI": 0x3F0B,
	"LENV": 0x3F0C, "DSTLO": 0x3F0D, "DSTHI": 0x3F0E,
	"SV1": 0x3F10, "SV2": 0x3F11, "SV3": 0x3F12, "SV4": 0x3F13, "SV5": 0x3F14,
	"TMPA": 0x3F15, "TMPB": 0x3F16, "TMPC": 0x3F17, "TMPD": 0x3F18,
	"TMPE": 0x3F19, "TMPF": 0x3F1A, "TMPG": 0x3F1B, "TMPH": 0x3F1C,
	"TMPI": 0x3F1D, "TMPJ": 0x3F1E, "TMPK": 0x3F1F,
	"BTN": 0x3F20, "BTBASE": 0x3F21, "DIRN": 0x3F22, "TMPL": 0x3F23,
}

// Probability table layout (sizes match internal/dbcoder's model).
const (
	dbProbs   = 0x4000
	dbIsMatch = dbProbs         // 2
	dbIsRep   = dbProbs + 2     // 1
	dbLit     = dbProbs + 3     // 8 × 256
	dbLenC    = dbLit + 8*256   // 274: choice, choice2, low[8], mid[8], high[256]
	dbRepLenC = dbLenC + 274    // 274
	dbSlot    = dbRepLenC + 274 // 4 × 64
	dbSpec    = dbSlot + 4*64   // 124 (slots 4..13)
	dbAlign   = dbSpec + 124    // 16
	dbProbEnd = dbAlign + 16

	// DBOutBuf is where the decoded stream accumulates (also the LZ
	// window). Decoded data is limited by guest memory above this point.
	DBOutBuf = 0x10000
)

// specOffsets are the starts of each slot's reverse tree inside dbSpec.
var specOffsets = [10]int{0, 2, 4, 8, 12, 20, 28, 44, 60, 92}

// buildDBDecodeSource emits the DBDecode assembly.
func buildDBDecodeSource() string {
	a := &asm{}
	a.l("; DBDecode — DBC1 archive decoder (LZ77 + adaptive binary range coder)")
	a.l("; Input:  DBC1 blob, one byte per input word.")
	a.l("; Output: decompressed bytes, one per output word.")
	// Emit .equ in a stable order.
	for _, kv := range []struct {
		n string
		v int
	}{
		{"ISMATCH", dbIsMatch}, {"ISREP", dbIsRep}, {"LIT", dbLit},
		{"LENC", dbLenC}, {"REPLENC", dbRepLenC}, {"SLOTP", dbSlot},
		{"SPECP", dbSpec}, {"ALIGNP", dbAlign}, {"PROBEND", dbProbEnd},
	} {
		a.equ(kv.n, kv.v)
	}
	for _, n := range []string{
		"RHI", "RLO", "CHI", "CLO", "RAWLO", "RAWHI", "POSLO", "POSHI",
		"PREV", "PWM", "LDLO", "LDHI", "LENV", "DSTLO", "DSTHI",
		"SV1", "SV2", "SV3", "SV4", "SV5",
		"TMPA", "TMPB", "TMPC", "TMPD", "TMPE", "TMPF", "TMPG", "TMPH",
		"TMPI", "TMPJ", "TMPK", "BTN", "BTBASE", "DIRN", "TMPL",
	} {
		a.equ(n, dbVars[n])
	}

	a.label("start")
	a.l("\tLDI  R5, 1")
	a.setPtrIO("D1", 0xFFF0) // D1 = IOIn, permanently

	// Initialise every probability to 1024.
	a.l("\tLDI  R0, %d", dbProbs)
	a.l("\tMOVE D0, R0")
	a.l("\tLDI  R1, 1024")
	a.l("\tLDI  R2, PROBEND")
	a.label("initp")
	a.l("\tSTM  R1, [D0]")
	a.l("\tADD  D0, R5")
	a.l("\tMOVE R0, D0")
	a.l("\tCMP  R0, R2")
	a.l("\tJNZ  initp")

	// Header: skip magic (4), read rawLen LE (4, top byte ignored),
	// skip CRC (4).
	for i := 0; i < 4; i++ {
		a.l("\tLDM  R0, [D1]")
	}
	a.l("\tLDM  R0, [D1]") // b4 (lsb)
	a.l("\tLDM  R1, [D1]") // b5
	a.shiftImm("LSL", "R1", 8)
	a.l("\tOR   R0, R1")
	a.stv("R0", "RAWLO")
	a.l("\tLDM  R0, [D1]") // b6
	a.stv("R0", "RAWHI")
	a.l("\tLDM  R0, [D1]") // b7 (must be 0 for supported sizes)
	for i := 0; i < 4; i++ {
		a.l("\tLDM  R0, [D1]") // CRC; the host re-verifies
	}

	// Range coder init: one pad byte, then 4 code bytes big-endian.
	a.l("\tLDM  R0, [D1]")
	a.l("\tLDM  R0, [D1]")
	a.l("\tLDM  R1, [D1]")
	a.shiftImm("LSL", "R0", 8)
	a.l("\tOR   R0, R1")
	a.stv("R0", "CHI")
	a.l("\tLDM  R0, [D1]")
	a.l("\tLDM  R1, [D1]")
	a.shiftImm("LSL", "R0", 8)
	a.l("\tOR   R0, R1")
	a.stv("R0", "CLO")
	a.l("\tLDI  R0, 0xFFFF")
	a.stv("R0", "RHI")
	a.stv("R0", "RLO")

	// pos = prev = pwm = lastDist = 0.
	a.l("\tLDI  R0, 0")
	for _, v := range []string{"POSLO", "POSHI", "PREV", "PWM", "LDLO", "LDHI"} {
		a.stv("R0", v)
	}

	// D2 = output buffer pointer.
	a.l("\tLDI  R0, 0")
	a.l("\tMOVE D2, R0")
	a.l("\tLDI  R0, %d", DBOutBuf>>16)
	a.l("\tMOVH D2, R0")

	// ---- main token loop -------------------------------------------
	a.label("mainloop")
	a.ldv("R0", "POSLO")
	a.ldv("R1", "RAWLO")
	a.l("\tCMP  R0, R1")
	a.l("\tJNZ  cont")
	a.ldv("R0", "POSHI")
	a.ldv("R1", "RAWHI")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   alldone")
	a.label("cont")

	a.ldv("R0", "PWM")
	a.l("\tLDI  R1, ISMATCH")
	a.l("\tADD  R0, R1")
	a.l("\tCALL decbit")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJNZ  matchpath")

	// Literal: bit-tree with context prev>>5.
	a.ldv("R1", "PREV")
	a.shiftImm("LSR", "R1", 5)
	a.shiftImm("LSL", "R1", 8)
	a.l("\tLDI  R0, LIT")
	a.l("\tADD  R0, R1")
	a.stv("R0", "BTBASE")
	a.l("\tLDI  R0, 8")
	a.stv("R0", "BTN")
	a.l("\tCALL bittree")
	a.l("\tSTM  R0, [D2]")
	a.l("\tADD  D2, R5")
	a.stv("R0", "PREV")
	a.ldv("R1", "POSLO")
	a.l("\tADD  R1, R5")
	a.stv("R1", "POSLO")
	a.ldv("R2", "POSHI")
	a.l("\tLDI  R3, 0")
	a.l("\tADC  R2, R3")
	a.stv("R2", "POSHI")
	a.l("\tLDI  R0, 0")
	a.stv("R0", "PWM")
	a.l("\tJUMP mainloop")

	// Match: rep or new distance.
	a.label("matchpath")
	a.l("\tLDI  R0, ISREP")
	a.l("\tCALL decbit")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   newdist")

	// rep0: distance = lastDist, length from REPLENC.
	a.l("\tLDI  R0, REPLENC")
	a.l("\tCALL declen")
	a.stv("R0", "LENV")
	a.ldv("R0", "LDLO")
	a.stv("R0", "DSTLO")
	a.ldv("R0", "LDHI")
	a.stv("R0", "DSTHI")
	a.l("\tJUMP docopy")

	a.label("newdist")
	a.l("\tLDI  R0, LENC")
	a.l("\tCALL declen")
	a.stv("R0", "LENV")
	a.l("\tCALL decdist")
	a.ldv("R0", "DSTLO")
	a.stv("R0", "LDLO")
	a.ldv("R0", "DSTHI")
	a.stv("R0", "LDHI")

	// Copy LENV bytes from (pos - dist) in the output buffer.
	a.label("docopy")
	a.ldv("R0", "POSLO")
	a.ldv("R1", "DSTLO")
	a.l("\tSUB  R0, R1")
	a.stv("R0", "TMPJ")
	a.ldv("R0", "POSHI")
	a.ldv("R1", "DSTHI")
	a.l("\tSBB  R0, R1")
	a.l("\tLDI  R1, %d", DBOutBuf>>16)
	a.l("\tADD  R0, R1")
	a.stv("R0", "TMPK")
	a.ldv("R0", "TMPJ")
	a.l("\tMOVE D0, R0")
	a.ldv("R0", "TMPK")
	a.l("\tMOVH D0, R0")
	a.ldv("R3", "LENV")
	a.label("copyloop")
	a.l("\tLDM  R0, [D0]")
	a.l("\tSTM  R0, [D2]")
	a.l("\tADD  D0, R5")
	a.l("\tADD  D2, R5")
	a.l("\tSUB  R3, R5")
	a.l("\tJNZ  copyloop")
	a.stv("R0", "PREV")
	a.ldv("R0", "POSLO")
	a.ldv("R1", "LENV")
	a.l("\tADD  R0, R1")
	a.stv("R0", "POSLO")
	a.ldv("R0", "POSHI")
	a.l("\tLDI  R1, 0")
	a.l("\tADC  R0, R1")
	a.stv("R0", "POSHI")
	a.l("\tLDI  R0, 1")
	a.stv("R0", "PWM")
	a.l("\tJUMP mainloop")

	// Stream the buffer to the output port.
	a.label("alldone")
	a.ldv("R2", "RAWLO")
	a.ldv("R3", "RAWHI")
	a.l("\tLDI  R0, 0")
	a.l("\tMOVE D0, R0")
	a.l("\tLDI  R0, %d", DBOutBuf>>16)
	a.l("\tMOVH D0, R0")
	a.setPtrIO("D2", 0xFFF2) // D2 = IOOut (buffer pointer no longer needed)
	a.label("outloop")
	a.l("\tMOVE R0, R2")
	a.l("\tOR   R0, R3")
	a.l("\tJZ   finish")
	a.l("\tLDM  R0, [D0]")
	a.l("\tSTM  R0, [D2]")
	a.l("\tADD  D0, R5")
	a.l("\tSUB  R2, R5")
	a.l("\tLDI  R1, 0")
	a.l("\tSBB  R3, R1")
	a.l("\tJUMP outloop")
	a.label("finish")
	a.l("\tHALT")

	emitRangeDecoder(a)
	emitTreeDecoders(a)
	emitLenDist(a)
	return a.String()
}

// emitRangeDecoder writes norm, decbit and direct.
func emitRangeDecoder(a *asm) {
	// norm: renormalise while range < 2^24 (leaf subroutine).
	a.label("norm")
	a.ldv("R0", "RHI")
	a.l("\tLDI  R1, 0x0100")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  normdone")
	a.ldv("R2", "RLO")
	a.shiftImm("LSL", "R0", 8)
	a.l("\tMOVE R3, R2")
	a.shiftImm("LSR", "R3", 8)
	a.l("\tOR   R0, R3")
	a.stv("R0", "RHI")
	a.shiftImm("LSL", "R2", 8)
	a.stv("R2", "RLO")
	a.ldv("R0", "CHI")
	a.ldv("R2", "CLO")
	a.shiftImm("LSL", "R0", 8)
	a.l("\tMOVE R3, R2")
	a.shiftImm("LSR", "R3", 8)
	a.l("\tOR   R0, R3")
	a.stv("R0", "CHI")
	a.shiftImm("LSL", "R2", 8)
	a.l("\tLDM  R3, [D1]")
	a.l("\tOR   R2, R3")
	a.stv("R2", "CLO")
	a.l("\tJUMP norm")
	a.label("normdone")
	a.l("\tRET")

	// decbit: probability address in R0 → bit in R0.
	a.label("decbit")
	a.stv("R6", "SV1")
	a.l("\tMOVE D0, R0")
	a.l("\tLDM  R1, [D0]") // p
	// x = range >> 11 (xlo in R0, xhi in R2).
	a.ldv("R0", "RLO")
	a.shiftImm("LSR", "R0", 11)
	a.ldv("R2", "RHI")
	a.l("\tMOVE R3, R2")
	a.shiftImm("LSL", "R3", 5)
	a.l("\tOR   R0, R3")
	a.shiftImm("LSR", "R2", 11)
	// bound = x*p: BLO in R0, BHI in R3.
	a.l("\tMUL  R0, R1")
	a.l("\tMOVE R3, R7")
	a.l("\tMUL  R2, R1")
	a.l("\tADD  R3, R2")
	// Compare code with bound.
	a.ldv("R2", "CHI")
	a.l("\tCMP  R2, R3")
	a.l("\tJC   bit0")
	a.l("\tJNZ  bit1")
	a.ldv("R2", "CLO")
	a.l("\tCMP  R2, R0")
	a.l("\tJC   bit0")

	a.label("bit1")
	a.ldv("R2", "CLO")
	a.l("\tSUB  R2, R0")
	a.stv("R2", "CLO")
	a.ldv("R2", "CHI")
	a.l("\tSBB  R2, R3")
	a.stv("R2", "CHI")
	a.ldv("R2", "RLO")
	a.l("\tSUB  R2, R0")
	a.stv("R2", "RLO")
	a.ldv("R2", "RHI")
	a.l("\tSBB  R2, R3")
	a.stv("R2", "RHI")
	a.l("\tMOVE R2, R1")
	a.shiftImm("LSR", "R2", 5)
	a.l("\tSUB  R1, R2")
	a.l("\tSTM  R1, [D0]")
	a.l("\tLDI  R0, 1")
	a.l("\tJUMP decbitfin")

	a.label("bit0")
	a.stv("R0", "RLO")
	a.stv("R3", "RHI")
	a.l("\tLDI  R2, 2048")
	a.l("\tSUB  R2, R1")
	a.shiftImm("LSR", "R2", 5)
	a.l("\tADD  R1, R2")
	a.l("\tSTM  R1, [D0]")
	a.l("\tLDI  R0, 0")

	a.label("decbitfin")
	a.stv("R0", "TMPE")
	a.l("\tCALL norm")
	a.ldv("R0", "TMPE")
	a.ldv("R6", "SV1")
	a.l("\tRET")

	// direct: DIRN model-free bits (MSB first) → R0.
	a.label("direct")
	a.stv("R6", "SV4")
	a.l("\tLDI  R0, 0")
	a.stv("R0", "TMPH")
	a.label("dirloop")
	a.ldv("R0", "DIRN")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   dirdone")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "DIRN")
	// range >>= 1 across the pair.
	a.ldv("R0", "RHI")
	a.l("\tMOVE R1, R0")
	a.l("\tAND  R1, R5")
	a.l("\tLSR  R0, R5")
	a.stv("R0", "RHI")
	a.ldv("R0", "RLO")
	a.l("\tLSR  R0, R5")
	a.shiftImm("LSL", "R1", 15)
	a.l("\tOR   R0, R1")
	a.stv("R0", "RLO")
	// bit = code >= range; if so code -= range.
	a.ldv("R0", "CHI")
	a.ldv("R1", "RHI")
	a.l("\tCMP  R0, R1")
	a.l("\tJC   dirbit0")
	a.l("\tJNZ  dirbit1")
	a.ldv("R0", "CLO")
	a.ldv("R1", "RLO")
	a.l("\tCMP  R0, R1")
	a.l("\tJC   dirbit0")
	a.label("dirbit1")
	a.ldv("R0", "CLO")
	a.ldv("R1", "RLO")
	a.l("\tSUB  R0, R1")
	a.stv("R0", "CLO")
	a.ldv("R0", "CHI")
	a.ldv("R1", "RHI")
	a.l("\tSBB  R0, R1")
	a.stv("R0", "CHI")
	a.l("\tLDI  R3, 1")
	a.l("\tJUMP diracc")
	a.label("dirbit0")
	a.l("\tLDI  R3, 0")
	a.label("diracc")
	a.ldv("R0", "TMPH")
	a.l("\tADD  R0, R0")
	a.l("\tOR   R0, R3")
	a.stv("R0", "TMPH")
	a.l("\tCALL norm")
	a.l("\tJUMP dirloop")
	a.label("dirdone")
	a.ldv("R0", "TMPH")
	a.ldv("R6", "SV4")
	a.l("\tRET")
}

// emitTreeDecoders writes bittree (MSB-first) and revtree (LSB-first).
func emitTreeDecoders(a *asm) {
	// bittree: BTN bits from BTBASE → symbol in R0.
	a.label("bittree")
	a.stv("R6", "SV2")
	a.l("\tLDI  R0, 1")
	a.stv("R0", "TMPA") // m
	a.ldv("R0", "BTN")
	a.stv("R0", "TMPB") // remaining
	a.label("btloop")
	a.ldv("R0", "TMPB")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   btdone")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "TMPB")
	a.ldv("R0", "BTBASE")
	a.ldv("R1", "TMPA")
	a.l("\tADD  R0, R1")
	a.l("\tCALL decbit")
	a.ldv("R1", "TMPA")
	a.l("\tADD  R1, R1")
	a.l("\tOR   R1, R0")
	a.stv("R1", "TMPA")
	a.l("\tJUMP btloop")
	a.label("btdone")
	a.ldv("R2", "BTN")
	a.l("\tLDI  R1, 1")
	a.l("\tLSL  R1, R2")
	a.ldv("R0", "TMPA")
	a.l("\tSUB  R0, R1")
	a.ldv("R6", "SV2")
	a.l("\tRET")

	// revtree: BTN bits LSB-first from BTBASE → value in R0.
	a.label("revtree")
	a.stv("R6", "SV3")
	a.l("\tLDI  R0, 1")
	a.stv("R0", "TMPC") // m
	a.l("\tLDI  R0, 0")
	a.stv("R0", "TMPD") // v
	a.l("\tLDI  R0, 1")
	a.stv("R0", "TMPF") // current bit weight
	a.ldv("R0", "BTN")
	a.stv("R0", "TMPG") // remaining
	a.label("rtloop")
	a.ldv("R0", "TMPG")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   rtdone")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "TMPG")
	a.ldv("R0", "BTBASE")
	a.ldv("R1", "TMPC")
	a.l("\tADD  R0, R1")
	a.l("\tCALL decbit")
	a.ldv("R1", "TMPC")
	a.l("\tADD  R1, R1")
	a.l("\tOR   R1, R0")
	a.stv("R1", "TMPC")
	// v |= bit * weight.
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   rtskip")
	a.ldv("R0", "TMPD")
	a.ldv("R1", "TMPF")
	a.l("\tOR   R0, R1")
	a.stv("R0", "TMPD")
	a.label("rtskip")
	a.ldv("R0", "TMPF")
	a.l("\tADD  R0, R0")
	a.stv("R0", "TMPF")
	a.l("\tJUMP rtloop")
	a.label("rtdone")
	a.ldv("R0", "TMPD")
	a.ldv("R6", "SV3")
	a.l("\tRET")
}

// emitLenDist writes declen and decdist.
func emitLenDist(a *asm) {
	// declen: coder base in R0 → length (2..273) in R0.
	a.label("declen")
	a.stv("R6", "SV5")
	a.stv("R0", "TMPI")
	a.l("\tCALL decbit") // choice at base+0 (R0 already holds base)
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJNZ  lenmid")
	// low: 3-bit tree at base+2 → len = 2+sym.
	a.ldv("R0", "TMPI")
	a.l("\tLDI  R1, 2")
	a.l("\tADD  R0, R1")
	a.stv("R0", "BTBASE")
	a.l("\tLDI  R0, 3")
	a.stv("R0", "BTN")
	a.l("\tCALL bittree")
	a.l("\tLDI  R1, 2")
	a.l("\tADD  R0, R1")
	a.l("\tJUMP lenret")
	a.label("lenmid")
	a.ldv("R0", "TMPI")
	a.l("\tADD  R0, R5") // choice2 at base+1
	a.l("\tCALL decbit")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJNZ  lenhigh")
	a.ldv("R0", "TMPI")
	a.l("\tLDI  R1, 10")
	a.l("\tADD  R0, R1")
	a.stv("R0", "BTBASE")
	a.l("\tLDI  R0, 3")
	a.stv("R0", "BTN")
	a.l("\tCALL bittree")
	a.l("\tLDI  R1, 10")
	a.l("\tADD  R0, R1")
	a.l("\tJUMP lenret")
	a.label("lenhigh")
	a.ldv("R0", "TMPI")
	a.l("\tLDI  R1, 18")
	a.l("\tADD  R0, R1")
	a.stv("R0", "BTBASE")
	a.l("\tLDI  R0, 8")
	a.stv("R0", "BTN")
	a.l("\tCALL bittree")
	a.l("\tLDI  R1, 18")
	a.l("\tADD  R0, R1")
	a.label("lenret")
	a.ldv("R6", "SV5")
	a.l("\tRET")

	// decdist: LENV set → DSTLO/DSTHI = distance pair.
	a.label("decdist")
	a.stv("R6", "TMPK") // TMPK free here; reused later in docopy only
	// slot context = min(len-2, 3).
	a.ldv("R0", "LENV")
	a.l("\tLDI  R1, 2")
	a.l("\tSUB  R0, R1")
	a.l("\tLDI  R1, 3")
	a.l("\tCMP  R0, R1")
	a.l("\tJC   ctxok")
	a.l("\tLDI  R0, 3")
	a.label("ctxok")
	a.shiftImm("LSL", "R0", 6)
	a.l("\tLDI  R1, SLOTP")
	a.l("\tADD  R0, R1")
	a.stv("R0", "BTBASE")
	a.l("\tLDI  R0, 6")
	a.stv("R0", "BTN")
	a.l("\tCALL bittree") // R0 = slot
	a.stv("R0", "TMPI")   // slot
	a.l("\tLDI  R1, 4")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  bigslot")
	// slot < 4: dist = slot + 1.
	a.l("\tADD  R0, R5")
	a.stv("R0", "DSTLO")
	a.l("\tLDI  R0, 0")
	a.stv("R0", "DSTHI")
	a.l("\tJUMP distret")

	a.label("bigslot")
	// nd = slot/2 - 1; base pair = (2 | slot&1) << nd.
	a.ldv("R0", "TMPI")
	a.l("\tLSR  R0, R5")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "TMPJ") // nd
	a.ldv("R0", "TMPI")
	a.l("\tAND  R0, R5")
	a.l("\tLDI  R1, 2")
	a.l("\tOR   R0, R1")
	a.stv("R0", "DSTLO") // base lo (will shift)
	a.l("\tLDI  R0, 0")
	a.stv("R0", "DSTHI")
	a.ldv("R3", "TMPJ")
	a.label("bshift")
	a.ldv("R0", "DSTLO")
	a.l("\tADD  R0, R0")
	a.stv("R0", "DSTLO")
	a.ldv("R0", "DSTHI")
	a.l("\tADC  R0, R0")
	a.stv("R0", "DSTHI")
	a.l("\tSUB  R3, R5")
	a.l("\tJNZ  bshift")

	a.ldv("R0", "TMPI")
	a.l("\tLDI  R1, 14")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  directslot")
	// slots 4..13: reverse tree of nd bits at SPECP + offset[slot-4].
	a.l("\tLDI  R1, 4")
	a.l("\tSUB  R0, R1")
	a.l("\tLDI  R1, specoff")
	a.l("\tADD  R1, R0")
	a.l("\tMOVE D0, R1")
	a.l("\tLDM  R0, [D0]")
	a.stv("R0", "BTBASE")
	a.ldv("R0", "TMPJ")
	a.stv("R0", "BTN")
	a.l("\tCALL revtree")
	// dist pair += rest (16-bit).
	a.ldv("R1", "DSTLO")
	a.l("\tADD  R1, R0")
	a.stv("R1", "DSTLO")
	a.ldv("R1", "DSTHI")
	a.l("\tLDI  R2, 0")
	a.l("\tADC  R1, R2")
	a.stv("R1", "DSTHI")
	a.l("\tJUMP distplus1")

	a.label("directslot")
	// rest = direct(nd-4) << 4 | align(4 reverse bits).
	a.ldv("R0", "TMPJ")
	a.l("\tLDI  R1, 4")
	a.l("\tSUB  R0, R1")
	a.stv("R0", "DIRN")
	a.l("\tCALL direct") // R0 = high part (≤ 15 bits for our window)
	a.stv("R0", "TMPL")
	// Shift the pair (TMPL:0) left 4 — TMPL lo, TMPK... use TMPJ's slot?
	// nd is no longer needed; TMPJ is free. (revtree below uses
	// TMPC/D/F/G internally, so the pair must avoid those.)
	a.l("\tLDI  R0, 0")
	a.stv("R0", "TMPJ") // pair hi
	for i := 0; i < 4; i++ {
		a.ldv("R0", "TMPL")
		a.l("\tADD  R0, R0")
		a.stv("R0", "TMPL")
		a.ldv("R0", "TMPJ")
		a.l("\tADC  R0, R0")
		a.stv("R0", "TMPJ")
	}
	a.l("\tLDI  R0, ALIGNP")
	a.stv("R0", "BTBASE")
	a.l("\tLDI  R0, 4")
	a.stv("R0", "BTN")
	a.l("\tCALL revtree")
	a.ldv("R1", "TMPL")
	a.l("\tOR   R1, R0")
	// dist pair += (TMPJ:R1).
	a.ldv("R0", "DSTLO")
	a.l("\tADD  R0, R1")
	a.stv("R0", "DSTLO")
	a.ldv("R0", "DSTHI")
	a.ldv("R1", "TMPJ")
	a.l("\tADC  R0, R1")
	a.stv("R0", "DSTHI")

	a.label("distplus1")
	a.ldv("R0", "DSTLO")
	a.l("\tADD  R0, R5")
	a.stv("R0", "DSTLO")
	a.ldv("R0", "DSTHI")
	a.l("\tLDI  R1, 0")
	a.l("\tADC  R0, R1")
	a.stv("R0", "DSTHI")
	a.label("distret")
	a.ldv("R6", "TMPK")
	a.l("\tRET")

	// spec tree base addresses, indexed by slot-4.
	a.label("specoff")
	for _, off := range specOffsets {
		a.l("\t.word %d", dbSpec+off)
	}
}

var (
	dbOnce sync.Once
	dbProg *dynarisc.Program
	dbErr  error
)

// DBDecode returns the assembled DBDecode program (built once).
func DBDecode() (*dynarisc.Program, error) {
	dbOnce.Do(func() {
		dbProg, dbErr = dynarisc.Assemble(buildDBDecodeSource())
	})
	return dbProg, dbErr
}
