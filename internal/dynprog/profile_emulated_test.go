package dynprog

import (
	"bytes"
	"math/rand"
	"testing"

	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/media"
	"microlonys/raster"
)

// TestMicrofilmProfileEmulated drives the archived decoder on a frame
// written and rescanned through the real microfilm profile — full
// distortions (rotation, barrel, jitter, fade, dust, scratches) — after
// the Bootstrap's host-side rectification to 3 px/module. This is the
// §4 microfilm experiment on the emulated path.
func TestMicrofilmProfileEmulated(t *testing.T) {
	p := media.Microfilm()
	l := p.Layout
	payload := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw, GroupData: 1}
	img, err := mocoder.Encode(payload, hdr, l)
	if err != nil {
		t.Fatal(err)
	}
	m := media.New(p)
	if err := m.Write([]*raster.Gray{img}); err != nil {
		t.Fatal(err)
	}
	scan, err := m.ScanFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	rl := l
	rl.PxPerModule = 3
	rect, err := mocoder.Rectify(scan, rl)
	if err != nil {
		t.Fatalf("rectify: %v", err)
	}
	// Go decoder on the rectified image as ground truth feasibility.
	want, _, st, err := mocoder.Decode(rect, rl)
	if err != nil {
		t.Fatalf("Go decode of rectified scan: %v", err)
	}
	t.Logf("Go decode of rectified: corrected=%d clockviol=%d", st.BytesCorrected, st.ClockViolations)
	if !bytes.Equal(want, payload) {
		t.Fatal("Go decode wrong payload")
	}
	got := runMODecode(t, rect, rl)
	if got == nil {
		t.Fatal("asm decoder produced no output")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("asm decoder wrong payload (%d bytes)", len(got))
	}
}
