package dynprog

import (
	"sync"

	"microlonys/dynarisc"
	"microlonys/internal/emblem"
	"microlonys/raster"
)

// MODecode — the media layout decoder as a DynaRisc program.
//
// Input stream (one word per value):
//
//	[ scanW, scanH, dataW, dataH, pixel0, pixel1, ... ]
//
// pixels are 8-bit intensities, row-major — the "linear flat array of
// pixel intensities" the Bootstrap document tells the future user to
// produce from each scan. Output: the emblem payload, one byte per word.
//
// Scope: the assembly decoder assumes an axis-aligned emblem (rotation
// handling and sub-pixel clock tracking live in the Go decoder;
// archival scanners are mechanically aligned, and §4's microfilm scans
// are bitonal). It performs full inner Reed-Solomon *error* correction —
// Berlekamp-Massey, Chien search and Forney's formula over GF(2^8) — so
// dust and damage on the data field are corrected exactly as in the Go
// path (erasure hints from clock violations are a Go-side refinement).
//
// Guest memory map (word addresses):
//
//	code + GF tables     < 0x3C00
//	variables              0x3C00…
//	RS work arrays         0x3E00…
//	row buffer             0x10000
//	demodulated stream     0x11000
//	deinterleaved blocks   0x30000
//	pixel buffer           0x40000…
const (
	moVarBase = 0x3C00
	moRowBuf  = 0x10000
	moStream  = 0x11000
	moBlocks  = 0x30000
	moPixels  = 0x40000
)

var moVars = map[string]int{
	// geometry
	"SCANW": 0x3C00, "SCANH": 0x3C01, "DATAW": 0x3C02, "DATAH": 0x3C03,
	"GRIDW": 0x3C04, "GRIDH": 0x3C05, "THR": 0x3C06,
	"LEFT": 0x3C07, "RIGHT": 0x3C08, "TOP": 0x3C09, "BOT": 0x3C0A,
	"PITXLO": 0x3C0B, "PITXHI": 0x3C0C, "PITYLO": 0x3C0D, "PITYHI": 0x3C0E,
	"X0LO": 0x3C0F, "X0HI": 0x3C10, "Y0LO": 0x3C11, "Y0HI": 0x3C12,
	"RUNX": 0x3C13, "RUNY": 0x3C14,
	// med3 / div32 workspace
	"MA": 0x3C15, "MB": 0x3C16, "MC": 0x3C17,
	"DVLO": 0x3C18, "DVHI": 0x3C19, "DSOR": 0x3C1A,
	"QLO": 0x3C1B, "QHI": 0x3C1C,
	// pixel access
	"XV": 0x3C1D, "YV": 0x3C1E,
	// scanning state
	"SI": 0x3C1F, "SJ": 0x3C20, "SK": 0x3C21, "RUNC": 0x3C22, "EDG": 0x3C23,
	"CXLO": 0x3C24, "CXHI": 0x3C25, "CYLO": 0x3C26, "CYHI": 0x3C27,
	// demodulation
	"MX": 0x3C28, "MY": 0x3C29, "HALF": 0x3C2A, "H1": 0x3C2B,
	"PREVL": 0x3C2C, "BITACC": 0x3C2D, "BITCNT": 0x3C2E,
	"SPOSLO": 0x3C2F, "SPOSHI": 0x3C30, "NBITSLO": 0x3C31, "NBITSHI": 0x3C32,
	"BITSDONELO": 0x3C33, "BITSDONEHI": 0x3C34,
	// stream / blocks bookkeeping
	"CODEDLO": 0x3C35, "CODEDHI": 0x3C36, "NFULL": 0x3C37, "REMB": 0x3C38,
	"NBLK": 0x3C39, "CWLEN": 0x3C3A, "BI": 0x3C3B,
	"PLLO": 0x3C3C, "PLHI": 0x3C3D,
	// RS state
	"CLEN": 0x3C3E, "BLEN": 0x3C3F, "LVAL": 0x3C40, "MVAL": 0x3C41,
	"BCOEF": 0x3C42, "DELTA": 0x3C43, "RIDX": 0x3C44, "IIDX": 0x3C45,
	"NROOT": 0x3C46, "DEGL": 0x3C47, "CWBASE": 0x3C48, "SCOEF": 0x3C49,
	"SSHIFT": 0x3C4A, "OLEN": 0x3C4B,
	// polyeval params
	"PEBASE": 0x3C4C, "PELEN": 0x3C4D, "PEX": 0x3C4E,
	// link-register save slots
	"MSV1": 0x3C50, "MSV2": 0x3C51, "MSV3": 0x3C52, "MSV4": 0x3C53,
	"MSV5": 0x3C54, "MSV6": 0x3C55, "MSV7": 0x3C56,
	// misc temporaries
	"MT1": 0x3C57, "MT2": 0x3C58, "MT3": 0x3C59, "MT4": 0x3C5A,
	"MT5": 0x3C5B, "MT6": 0x3C5C, "MT7": 0x3C5D, "MT8": 0x3C5E,
	"MINV": 0x3C5F, "MAXV": 0x3C60, "STEPC": 0x3C61,
	"OUTLO": 0x3C62, "OUTHI2": 0x3C63,
}

// RS work arrays.
const (
	moSynd   = 0x3E00 // 32
	moLambda = 0x3E20 // 40
	moBPoly  = 0x3E50 // 40
	moTPoly  = 0x3E80 // 40
	moOmega  = 0x3EB0 // 40
	moLPrime = 0x3EE0 // 40
	moPosns  = 0x3F10 // 40
	moHdrBuf = 0x3F40 // 22: voted header, emitted before the payload
)

func moEqus(a *asm) {
	names := []string{
		"SCANW", "SCANH", "DATAW", "DATAH", "GRIDW", "GRIDH", "THR",
		"LEFT", "RIGHT", "TOP", "BOT",
		"PITXLO", "PITXHI", "PITYLO", "PITYHI",
		"X0LO", "X0HI", "Y0LO", "Y0HI", "RUNX", "RUNY",
		"MA", "MB", "MC", "DVLO", "DVHI", "DSOR", "QLO", "QHI",
		"XV", "YV", "SI", "SJ", "SK", "RUNC", "EDG",
		"CXLO", "CXHI", "CYLO", "CYHI",
		"MX", "MY", "HALF", "H1", "PREVL", "BITACC", "BITCNT",
		"SPOSLO", "SPOSHI", "NBITSLO", "NBITSHI", "BITSDONELO", "BITSDONEHI",
		"CODEDLO", "CODEDHI", "NFULL", "REMB", "NBLK", "CWLEN", "BI",
		"PLLO", "PLHI",
		"CLEN", "BLEN", "LVAL", "MVAL", "BCOEF", "DELTA", "RIDX", "IIDX",
		"NROOT", "DEGL", "CWBASE", "SCOEF", "SSHIFT", "OLEN",
		"PEBASE", "PELEN", "PEX",
		"MSV1", "MSV2", "MSV3", "MSV4", "MSV5", "MSV6", "MSV7",
		"MT1", "MT2", "MT3", "MT4", "MT5", "MT6", "MT7", "MT8",
		"MINV", "MAXV", "STEPC", "OUTLO", "OUTHI2",
	}
	for _, n := range names {
		a.equ(n, moVars[n])
	}
	a.equ("SYND", moSynd)
	a.equ("LAMBDA", moLambda)
	a.equ("BPOLY", moBPoly)
	a.equ("TPOLY", moTPoly)
	a.equ("OMEGA", moOmega)
	a.equ("LPRIME", moLPrime)
	a.equ("POSNS", moPosns)
	a.equ("HDRV", moHdrBuf)
}

// setPtr24 points d at a 24-bit constant address using R4.
func setPtr24(a *asm, d string, addr int) {
	a.l("\tLDI  R4, %d", addr&0xFFFF)
	a.l("\tMOVE %s, R4", d)
	a.l("\tLDI  R4, %d", addr>>16)
	a.l("\tMOVH %s, R4", d)
}

func buildMODecodeSource() string {
	a := &asm{}
	a.l("; MODecode — emblem scan decoder (geometry, Differential Manchester,")
	a.l("; interleaved RS(255,223) error correction).")
	moEqus(a)

	moMain(a)
	moGeometry(a)
	moDemod(a)
	moHeaderBlocks(a)
	moRSDriver(a)
	moOutput(a)
	moSubroutines(a)
	moGFTables(a)
	return a.String()
}

// moMain reads the header words and all pixels into the pixel buffer.
func moMain(a *asm) {
	a.label("start")
	a.l("\tLDI  R5, 1")
	a.setPtrIO("D1", 0xFFF0) // IOIn

	for _, v := range []string{"SCANW", "SCANH", "DATAW", "DATAH"} {
		a.l("\tLDM  R0, [D1]")
		a.stv("R0", v)
	}
	// grid = data + 2*(border+separator) = data + 6.
	for _, p := range [][2]string{{"DATAW", "GRIDW"}, {"DATAH", "GRIDH"}} {
		a.ldv("R0", p[0])
		a.l("\tLDI  R1, 6")
		a.l("\tADD  R0, R1")
		a.stv("R0", p[1])
	}

	// Read W*H pixels, tracking min/max for the threshold.
	a.l("\tLDI  R0, 255")
	a.stv("R0", "MINV")
	a.l("\tLDI  R0, 0")
	a.stv("R0", "MAXV")
	a.ldv("R0", "SCANW")
	a.ldv("R1", "SCANH")
	a.l("\tMUL  R0, R1") // lo in R0, hi in R7
	a.l("\tMOVE R2, R7")
	a.stv("R0", "CXLO") // reuse CX pair as the pixel-count pair
	a.stv("R2", "CXHI")
	setPtr24(a, "D2", moPixels)
	a.label("pxloop")
	a.ldv("R0", "CXLO")
	a.ldv("R1", "CXHI")
	a.l("\tMOVE R2, R0")
	a.l("\tOR   R2, R1")
	a.l("\tJZ   pxdone")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "CXLO")
	a.l("\tLDI  R2, 0")
	a.l("\tSBB  R1, R2")
	a.stv("R1", "CXHI")
	a.l("\tLDM  R0, [D1]")
	a.l("\tSTM  R0, [D2]")
	a.l("\tADD  D2, R5")
	// min/max tracking
	a.ldv("R1", "MINV")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  pxmax")
	a.stv("R0", "MINV")
	a.label("pxmax")
	a.ldv("R1", "MAXV")
	a.l("\tCMP  R1, R0")
	a.l("\tJNC  pxnext")
	a.stv("R0", "MAXV")
	a.label("pxnext")
	a.l("\tJUMP pxloop")
	a.label("pxdone")
	// threshold = (min + max + 1) / 2
	a.ldv("R0", "MINV")
	a.ldv("R1", "MAXV")
	a.l("\tADD  R0, R1")
	a.l("\tADD  R0, R5")
	a.l("\tLSR  R0, R5")
	a.stv("R0", "THR")
}

// moGeometry finds the border rectangle and the module pitch.
func moGeometry(a *asm) {
	// Run lengths ≈ half a border (one module) in pixels.
	// RUNX = max(2, SCANW / (DATAW+10) ); RUNY likewise.
	for _, p := range [][3]string{{"SCANW", "DATAW", "RUNX"}, {"SCANH", "DATAH", "RUNY"}} {
		a.ldv("R0", p[0])
		a.stv("R0", "DVLO")
		a.l("\tLDI  R0, 0")
		a.stv("R0", "DVHI")
		a.ldv("R0", p[1])
		a.l("\tLDI  R1, 10")
		a.l("\tADD  R0, R1")
		a.stv("R0", "DSOR")
		a.l("\tCALL div32")
		a.ldv("R0", "QLO")
		a.l("\tLDI  R1, 2")
		a.l("\tCMP  R0, R1")
		a.l("\tJNC  rl_ok_%s", p[2])
		a.l("\tLDI  R0, 2")
		a.l("rl_ok_%s:", p[2])
		a.stv("R0", p[2])
	}

	// Edge scans. For each edge: three sample lines, median of the
	// detected first-dark-run starts.
	// hscan: scan row SJ from x=SI direction SK (+1/-1), run RUNX → EDG.
	// vscan: scan column SJ from y=SI direction SK, run RUNY → EDG.

	// LEFT: rows H/4, H/2, 3H/4 scanning right.
	edge := func(name, scanSub, lineVar, startExpr, dir string, out string) {
		for i := 1; i <= 3; i++ {
			// sample line = dim*i/4
			a.ldv("R0", lineVar)
			a.l("\tLDI  R1, %d", i)
			a.l("\tMUL  R0, R1")
			a.l("\tMOVE R2, R7") // hi
			a.stv("R0", "DVLO")
			a.stv("R2", "DVHI")
			a.l("\tLDI  R0, 4")
			a.stv("R0", "DSOR")
			a.l("\tCALL div32")
			a.ldv("R0", "QLO")
			a.stv("R0", "SJ")
			// start position
			a.l("%s", startExpr)
			a.l("\tLDI  R0, %s", dir)
			a.stv("R0", "SK")
			a.l("\tCALL %s", scanSub)
			a.ldv("R0", "EDG")
			a.stv("R0", []string{"MA", "MB", "MC"}[i-1])
		}
		a.l("\tCALL med3")
		a.stv("R0", out)
		_ = name
	}

	edge("left", "hscan", "SCANH", "\tLDI  R0, 0\n\tLDI  R4, SI\n\tMOVE D3, R4\n\tSTM  R0, [D3]", "1", "LEFT")
	edge("right", "hscan", "SCANH", "\tLDI  R4, SCANW\n\tMOVE D3, R4\n\tLDM  R0, [D3]\n\tSUB  R0, R5\n\tLDI  R4, SI\n\tMOVE D3, R4\n\tSTM  R0, [D3]", "0xFFFF", "RIGHT")
	edge("top", "vscan", "SCANW", "\tLDI  R0, 0\n\tLDI  R4, SI\n\tMOVE D3, R4\n\tSTM  R0, [D3]", "1", "TOP")
	edge("bottom", "vscan", "SCANW", "\tLDI  R4, SCANH\n\tMOVE D3, R4\n\tLDM  R0, [D3]\n\tSUB  R0, R5\n\tLDI  R4, SI\n\tMOVE D3, R4\n\tSTM  R0, [D3]", "0xFFFF", "BOT")

	// pitchX(Q8) = ((RIGHT-LEFT+1) << 8) / GRIDW ; X0(Q8) = LEFT*256-128.
	for _, p := range [][5]string{
		{"RIGHT", "LEFT", "GRIDW", "PITXLO", "PITXHI"},
		{"BOT", "TOP", "GRIDH", "PITYLO", "PITYHI"},
	} {
		a.ldv("R0", p[0])
		a.ldv("R1", p[1])
		a.l("\tSUB  R0, R1")
		a.l("\tADD  R0, R5")
		// <<8 into pair
		a.l("\tMOVE R1, R0")
		a.shiftImm("LSR", "R1", 8) // hi
		a.shiftImm("LSL", "R0", 8) // lo
		a.stv("R0", "DVLO")
		a.stv("R1", "DVHI")
		a.ldv("R0", p[2])
		a.stv("R0", "DSOR")
		a.l("\tCALL div32")
		a.ldv("R0", "QLO")
		a.stv("R0", p[3])
		a.ldv("R0", "QHI")
		a.stv("R0", p[4])
	}
	for _, p := range [][3]string{{"LEFT", "X0LO", "X0HI"}, {"TOP", "Y0LO", "Y0HI"}} {
		a.ldv("R0", p[0])
		a.l("\tMOVE R1, R0")
		a.shiftImm("LSR", "R1", 8)
		a.shiftImm("LSL", "R0", 8)
		a.l("\tLDI  R2, 128")
		a.l("\tSUB  R0, R2")
		a.l("\tLDI  R2, 0")
		a.l("\tSBB  R1, R2")
		a.stv("R0", p[1])
		a.stv("R1", p[2])
	}
}

// moDemod samples the data modules row by row and demodulates the
// Differential-Manchester stream into bytes at moStream.
func moDemod(a *asm) {
	// nbits = (DATAW*DATAH - 144) / 2 (pair).
	a.ldv("R0", "DATAW")
	a.ldv("R1", "DATAH")
	a.l("\tMUL  R0, R1")
	a.l("\tMOVE R1, R7")
	a.l("\tLDI  R2, 144")
	a.l("\tSUB  R0, R2")
	a.l("\tLDI  R2, 0")
	a.l("\tSBB  R1, R2")
	// /2 across the pair: the bit dropped from the high word moves into
	// bit 15 of the low word.
	a.l("\tLSR  R1, R5") // C = dropped hi bit
	a.stv("R1", "NBITSHI")
	a.l("\tLDI  R3, 0")
	a.l("\tJNC  demod_nb")
	a.l("\tLDI  R3, 0x8000")
	a.label("demod_nb")
	a.l("\tMOVE R2, R0")
	a.l("\tLSR  R2, R5")
	a.l("\tOR   R2, R3")
	a.stv("R2", "NBITSLO")

	// halves limit = 2 × nbits
	a.ldv("R0", "NBITSLO")
	a.ldv("R1", "NBITSHI")
	a.l("\tADD  R0, R0")
	a.l("\tADC  R1, R1")
	a.stv("R0", "MT6")
	a.stv("R1", "MT7")

	// init demod state
	a.l("\tLDI  R0, 0")
	for _, v := range []string{"HALF", "PREVL", "BITACC", "SPOSLO", "SPOSHI", "BITSDONELO", "BITSDONEHI", "MY"} {
		a.stv("R0", v)
	}
	a.l("\tLDI  R0, 8")
	a.stv("R0", "BITCNT")

	// row loop
	a.label("rowloop")
	a.ldv("R0", "MY")
	a.ldv("R1", "DATAH")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  demoddone")
	a.l("\tCALL samplerow") // fills moRowBuf with 0/1 levels for row MY
	// serpentine read-out of the row
	a.ldv("R0", "MY")
	a.l("\tAND  R0, R5")
	a.l("\tJNZ  rowrev")
	// even row: x ascending
	a.l("\tLDI  R0, 0")
	a.stv("R0", "MX")
	a.label("rowfwd_loop")
	a.ldv("R0", "MX")
	a.ldv("R1", "DATAW")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  rownext")
	a.l("\tCALL procmodule")
	a.ldv("R0", "MX")
	a.l("\tADD  R0, R5")
	a.stv("R0", "MX")
	a.l("\tJUMP rowfwd_loop")
	// odd row: x descending
	a.label("rowrev")
	a.ldv("R0", "DATAW")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "MX")
	a.label("rowrev_loop")
	a.l("\tCALL procmodule")
	a.ldv("R0", "MX")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   rownext")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "MX")
	a.l("\tJUMP rowrev_loop")
	a.label("rownext")
	a.ldv("R0", "MY")
	a.l("\tADD  R0, R5")
	a.stv("R0", "MY")
	a.l("\tJUMP rowloop")
	a.label("demoddone")
}

// moHeaderBlocks votes the header, computes block shapes and
// deinterleaves the coded stream into moBlocks.
func moHeaderBlocks(a *asm) {
	// Majority vote the three 22-byte header copies in place (into MT
	// scratch, reading stream[i], stream[22+i], stream[44+i]).
	// Validate magic and pull PayloadLen (offsets 12..15, big endian).
	// maj(a,b,c) = (a&b)|(a&c)|(b&c)
	a.l("\tLDI  R0, 0")
	a.stv("R0", "SI")
	a.label("hvloop")
	a.ldv("R0", "SI")
	a.l("\tLDI  R1, 22")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  hvdone")
	// load three copies
	setPtr24(a, "D2", moStream)
	a.ldv("R0", "SI")
	a.l("\tADD  D2, R0")
	a.l("\tLDM  R1, [D2]") // a
	a.l("\tLDI  R0, 22")
	a.l("\tADD  D2, R0")
	a.l("\tLDM  R2, [D2]") // b
	a.l("\tADD  D2, R0")
	a.l("\tLDM  R3, [D2]") // c
	// maj into R1
	a.l("\tMOVE R0, R1")
	a.l("\tAND  R0, R2") // a&b
	a.l("\tAND  R1, R3") // a&c
	a.l("\tOR   R0, R1")
	a.l("\tAND  R2, R3") // b&c
	a.l("\tOR   R0, R2")
	a.stv("R0", "MT1")
	// Keep the voted byte: the header is emitted ahead of the payload so
	// the restoring host can group frames without re-parsing the scan.
	a.ldv("R1", "SI")
	a.l("\tLDI  R2, HDRV")
	a.l("\tADD  R2, R1")
	a.l("\tMOVE D0, R2")
	a.ldv("R0", "MT1")
	a.l("\tSTM  R0, [D0]")
	// dispatch on byte index for the fields we need
	hdrByte := func(idx int, code func()) {
		skip := a.uniq("hb")
		a.ldv("R1", "SI")
		a.l("\tLDI  R2, %d", idx)
		a.l("\tCMP  R1, R2")
		a.l("\tJNZ  %s", skip)
		code()
		a.label(skip)
	}
	hdrByte(0, func() { // magic must be 0xE5
		a.ldv("R0", "MT1")
		a.l("\tLDI  R1, 0xE5")
		a.l("\tCMP  R0, R1")
		a.l("\tJNZ  fail")
	})
	hdrByte(12, func() {
		a.ldv("R0", "MT1")
		a.shiftImm("LSL", "R0", 8)
		a.stv("R0", "PLHI")
	})
	hdrByte(13, func() {
		a.ldv("R0", "MT1")
		a.ldv("R1", "PLHI")
		a.l("\tOR   R0, R1")
		a.stv("R0", "PLHI")
	})
	hdrByte(14, func() {
		a.ldv("R0", "MT1")
		a.shiftImm("LSL", "R0", 8)
		a.stv("R0", "PLLO")
	})
	hdrByte(15, func() {
		a.ldv("R0", "MT1")
		a.ldv("R1", "PLLO")
		a.l("\tOR   R0, R1")
		a.stv("R0", "PLLO")
	})
	a.ldv("R0", "SI")
	a.l("\tADD  R0, R5")
	a.stv("R0", "SI")
	a.l("\tJUMP hvloop")
	a.label("hvdone")

	// codedBytes = (nbits - 528)/8 (pair ÷ 8 via div32).
	a.ldv("R0", "NBITSLO")
	a.ldv("R1", "NBITSHI")
	a.l("\tLDI  R2, 528")
	a.l("\tSUB  R0, R2")
	a.l("\tLDI  R2, 0")
	a.l("\tSBB  R1, R2")
	a.stv("R0", "DVLO")
	a.stv("R1", "DVHI")
	a.l("\tLDI  R0, 8")
	a.stv("R0", "DSOR")
	a.l("\tCALL div32")
	a.ldv("R0", "QLO")
	a.stv("R0", "CODEDLO")
	a.ldv("R0", "QHI")
	a.stv("R0", "CODEDHI")

	// nfull = coded / 255, remB = coded % 255; a remainder block exists
	// when remB >= 48.
	a.ldv("R0", "CODEDLO")
	a.stv("R0", "DVLO")
	a.ldv("R0", "CODEDHI")
	a.stv("R0", "DVHI")
	a.l("\tLDI  R0, 255")
	a.stv("R0", "DSOR")
	a.l("\tCALL div32") // QLO = nfull, remainder comes back in DVLO
	a.ldv("R0", "QLO")
	a.stv("R0", "NFULL")
	a.ldv("R0", "DVLO")
	a.stv("R0", "REMB")
	a.ldv("R0", "NFULL")
	a.stv("R0", "NBLK")
	a.ldv("R0", "REMB")
	a.l("\tLDI  R1, 48")
	a.l("\tCMP  R0, R1")
	a.l("\tJC   noremb")
	a.ldv("R0", "NBLK")
	a.l("\tADD  R0, R5")
	a.stv("R0", "NBLK")
	a.label("noremb")

	// Deinterleave: for i in 0..254: for b in 0..NBLK-1:
	//   if i < cwlen(b): blocks[b*255+i] = stream[66 + pos++]
	setPtr24(a, "D2", moStream+66)
	a.l("\tLDI  R0, 0")
	a.stv("R0", "SI") // i
	a.label("dloop_i")
	a.ldv("R0", "SI")
	a.l("\tLDI  R1, 255")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  ddone")
	a.l("\tLDI  R0, 0")
	a.stv("R0", "SJ") // b
	a.label("dloop_b")
	a.ldv("R0", "SJ")
	a.ldv("R1", "NBLK")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  dnext_i")
	// cwlen(b)
	a.l("\tCALL cwlenof") // SJ → R0 = cwlen
	a.ldv("R1", "SI")
	a.l("\tCMP  R1, R0")
	a.l("\tJNC  dnext_b") // i >= cwlen: skip
	// blocks[b*255 + i] = *D2++
	a.ldv("R0", "SJ")
	a.l("\tLDI  R1, 255")
	a.l("\tMUL  R0, R1")
	a.l("\tMOVE R1, R7")
	a.ldv("R2", "SI")
	a.l("\tADD  R0, R2")
	a.l("\tLDI  R2, 0")
	a.l("\tADC  R1, R2")
	a.l("\tLDI  R2, %d", moBlocks&0xFFFF)
	a.l("\tADD  R0, R2")
	a.l("\tLDI  R2, 0")
	a.l("\tADC  R1, R2")
	a.l("\tLDI  R2, %d", moBlocks>>16)
	a.l("\tADD  R1, R2")
	a.l("\tMOVE D0, R0")
	a.l("\tMOVH D0, R1")
	a.l("\tLDM  R0, [D2]")
	a.l("\tSTM  R0, [D0]")
	a.l("\tADD  D2, R5")
	a.label("dnext_b")
	a.ldv("R0", "SJ")
	a.l("\tADD  R0, R5")
	a.stv("R0", "SJ")
	a.l("\tJUMP dloop_b")
	a.label("dnext_i")
	a.ldv("R0", "SI")
	a.l("\tADD  R0, R5")
	a.stv("R0", "SI")
	a.l("\tJUMP dloop_i")
	a.label("ddone")
}

// moRSDriver decodes every block in place.
func moRSDriver(a *asm) {
	a.l("\tLDI  R0, 0")
	a.stv("R0", "BI")
	a.label("rsloop")
	a.ldv("R0", "BI")
	a.ldv("R1", "NBLK")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  rsalldone")
	// CWBASE = moBlocks + BI*255 (fits 24 bits; keep pair in CWBASE/MT8).
	a.ldv("R0", "BI")
	a.l("\tLDI  R1, 255")
	a.l("\tMUL  R0, R1")
	a.l("\tMOVE R1, R7")
	a.l("\tLDI  R2, %d", moBlocks&0xFFFF)
	a.l("\tADD  R0, R2")
	a.l("\tLDI  R2, 0")
	a.l("\tADC  R1, R2")
	a.l("\tLDI  R2, %d", moBlocks>>16)
	a.l("\tADD  R1, R2")
	a.stv("R0", "CWBASE")
	a.stv("R1", "MT8")
	a.ldv("R0", "BI")
	a.stv("R0", "SJ")
	a.l("\tCALL cwlenof")
	a.stv("R0", "CWLEN")
	a.l("\tCALL rsblock")
	a.ldv("R0", "BI")
	a.l("\tADD  R0, R5")
	a.stv("R0", "BI")
	a.l("\tJUMP rsloop")
	a.label("rsalldone")
}

// moOutput streams the voted header and the corrected data bytes,
// truncated to PayloadLen.
func moOutput(a *asm) {
	a.setPtrIO("D1", 0xFFF2) // IOOut
	// Header first (22 bytes).
	a.l("\tLDI  R2, HDRV")
	a.l("\tMOVE D2, R2")
	a.l("\tLDI  R3, 22")
	a.label("outhdr")
	a.l("\tLDM  R0, [D2]")
	a.l("\tSTM  R0, [D1]")
	a.l("\tADD  D2, R5")
	a.l("\tSUB  R3, R5")
	a.l("\tJNZ  outhdr")
	a.l("\tLDI  R0, 0")
	a.stv("R0", "OUTLO")
	a.stv("R0", "OUTHI2")
	a.stv("R0", "BI")
	a.label("outblk")
	a.ldv("R0", "BI")
	a.ldv("R1", "NBLK")
	a.l("\tCMP  R0, R1")
	a.l("\tJNC  outfin")
	// D2 = block base; SK = data length (cwlen - 32).
	a.ldv("R0", "BI")
	a.l("\tLDI  R1, 255")
	a.l("\tMUL  R0, R1")
	a.l("\tMOVE R1, R7")
	a.l("\tLDI  R2, %d", moBlocks&0xFFFF)
	a.l("\tADD  R0, R2")
	a.l("\tLDI  R2, 0")
	a.l("\tADC  R1, R2")
	a.l("\tLDI  R2, %d", moBlocks>>16)
	a.l("\tADD  R1, R2")
	a.l("\tMOVE D2, R0")
	a.l("\tMOVH D2, R1")
	a.ldv("R0", "BI")
	a.stv("R0", "SJ")
	a.l("\tCALL cwlenof")
	a.l("\tLDI  R1, 32")
	a.l("\tSUB  R0, R1")
	a.stv("R0", "SK")
	a.label("outbyte")
	a.ldv("R0", "SK")
	a.l("\tLDI  R1, 0")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   outblknext")
	a.l("\tSUB  R0, R5")
	a.stv("R0", "SK")
	// stop at payloadLen
	a.ldv("R0", "OUTLO")
	a.ldv("R1", "PLLO")
	a.l("\tCMP  R0, R1")
	a.l("\tJNZ  outemit")
	a.ldv("R0", "OUTHI2")
	a.ldv("R1", "PLHI")
	a.l("\tCMP  R0, R1")
	a.l("\tJZ   outfin")
	a.label("outemit")
	a.l("\tLDM  R0, [D2]")
	a.l("\tSTM  R0, [D1]")
	a.l("\tADD  D2, R5")
	a.ldv("R0", "OUTLO")
	a.l("\tADD  R0, R5")
	a.stv("R0", "OUTLO")
	a.ldv("R0", "OUTHI2")
	a.l("\tLDI  R1, 0")
	a.l("\tADC  R0, R1")
	a.stv("R0", "OUTHI2")
	a.l("\tJUMP outbyte")
	a.label("outblknext")
	a.ldv("R0", "BI")
	a.l("\tADD  R0, R5")
	a.stv("R0", "BI")
	a.l("\tJUMP outblk")
	a.label("outfin")
	a.l("\tHALT")
	a.label("fail")
	a.l("\tHALT") // no output signals failure to the host
}

var (
	moOnce sync.Once
	moProg *dynarisc.Program
	moErr  error
)

// MODecode returns the assembled MODecode program (built once).
func MODecode() (*dynarisc.Program, error) {
	moOnce.Do(func() {
		moProg, moErr = dynarisc.Assemble(buildMODecodeSource())
	})
	return moProg, moErr
}

// MOInput frames a scan image for the MODecode input port:
// [scanW, scanH, dataW, dataH, pixels...].
func MOInput(img *raster.Gray, l emblem.Layout) []uint16 {
	in := make([]uint16, 0, 4+len(img.Pix))
	in = append(in, uint16(img.W), uint16(img.H), uint16(l.DataW), uint16(l.DataH))
	for _, p := range img.Pix {
		in = append(in, uint16(p))
	}
	return in
}

// MOMemWords returns a guest memory size fitting the scan.
func MOMemWords(img *raster.Gray) int {
	need := moPixels + img.W*img.H + 4096
	if need > dynarisc.MaxMemWords {
		need = dynarisc.MaxMemWords
	}
	return need
}
