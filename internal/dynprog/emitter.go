// Package dynprog contains the layout decoders of Micr'Olonys ported to
// DynaRisc assembly (§3.2 of the paper): DBDecode, which decodes the DBC1
// database archive format, and MODecode, which converts scanned emblem
// pixel arrays back to payload bytes.
//
// These are the programs the ULE approach actually archives: DBDecode is
// written to the media as system emblems; MODecode is serialised into the
// Bootstrap document as hex letters together with the DynaRisc emulator.
// Both are differential-tested against their Go twins (internal/dbcoder,
// internal/mocoder) and run under the nested VeRisc emulation path.
//
// The sources are generated with a small emitter rather than written as
// flat strings: variable access on a load/store machine is a three-
// instruction pattern, and generating it keeps several hundred such
// accesses consistent. The emitter reserves R4 and D3 as variable-access
// scratch, R5 as the constant 1, R6 as the link register and R7 for MUL
// high words; generated code keeps its live values in R0..R3 and memory.
package dynprog

import (
	"fmt"
	"strings"
)

// asm is a tiny DynaRisc assembly text emitter.
type asm struct {
	b   strings.Builder
	seq int
}

// l writes one formatted source line.
func (a *asm) l(format string, args ...any) {
	fmt.Fprintf(&a.b, format+"\n", args...)
}

// label places a label.
func (a *asm) label(s string) { a.l("%s:", s) }

// uniq returns a fresh local label.
func (a *asm) uniq(prefix string) string {
	a.seq++
	return fmt.Sprintf("%s_%d", prefix, a.seq)
}

// equ defines an assembler constant.
func (a *asm) equ(name string, v int) { a.l(".equ %s, %d", name, v) }

// ldv loads a memory variable into reg (clobbers R4, D3).
func (a *asm) ldv(reg, sym string) {
	a.l("\tLDI  R4, %s", sym)
	a.l("\tMOVE D3, R4")
	a.l("\tLDM  %s, [D3]", reg)
}

// stv stores reg into a memory variable (clobbers R4, D3; preserves
// flags — LDI/MOVE/STM touch no flags).
func (a *asm) stv(reg, sym string) {
	a.l("\tLDI  R4, %s", sym)
	a.l("\tMOVE D3, R4")
	a.l("\tSTM  %s, [D3]", reg)
}

// shiftImm shifts reg by a constant count using R4 as the count register.
func (a *asm) shiftImm(op, reg string, count int) {
	a.l("\tLDI  %s, %d", "R4", count)
	a.l("\t%s  %s, R4", op, reg)
}

// setPtrIO points a D register at a DynaRisc I/O address.
func (a *asm) setPtrIO(d string, lo int) {
	a.l("\tLDI  R4, %d", lo)
	a.l("\tMOVE %s, R4", d)
	a.l("\tLDI  R4, 0xFF")
	a.l("\tMOVH %s, R4", d)
}

// String returns the accumulated source.
func (a *asm) String() string { return a.b.String() }
