package dynprog

import (
	"bytes"
	"math/rand"
	"testing"

	"microlonys/dynarisc"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/raster"
)

func moLayout() emblem.Layout {
	return emblem.Layout{DataW: 80, DataH: 64, PxPerModule: 4}
}

func moEncode(t *testing.T, l emblem.Layout, frac float64, seed int64) (*raster.Gray, []byte) {
	t.Helper()
	payload := make([]byte, int(float64(mocoder.Capacity(l))*frac))
	rand.New(rand.NewSource(seed)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindData, Total: 1}
	img, err := mocoder.Encode(payload, hdr, l)
	if err != nil {
		t.Fatal(err)
	}
	return img, payload
}

// runMODecode executes the assembly decoder and returns the payload,
// validating the 22-byte header prefix the decoder emits first.
func runMODecode(t *testing.T, img *raster.Gray, l emblem.Layout) []byte {
	t.Helper()
	p, err := MODecode()
	if err != nil {
		t.Fatalf("assemble MODecode: %v", err)
	}
	c := dynarisc.NewCPU(MOMemWords(img))
	c.MaxSteps = 4_000_000_000
	if err := c.LoadProgram(p.Org, p.Words); err != nil {
		t.Fatal(err)
	}
	c.In = MOInput(img, l)
	if err := c.Run(); err != nil {
		t.Fatalf("MODecode run: %v (steps=%d)", err, c.Steps)
	}
	out := c.OutBytes()
	if len(out) == 0 {
		return nil
	}
	if len(out) < emblem.HeaderSize {
		t.Fatalf("output shorter than header: %d bytes", len(out))
	}
	if _, err := emblem.ParseHeader(out[:emblem.HeaderSize]); err != nil {
		t.Fatalf("emitted header invalid: %v", err)
	}
	return out[emblem.HeaderSize:]
}

func TestMODecodeAssembles(t *testing.T) {
	p, err := MODecode()
	if err != nil {
		t.Fatal(err)
	}
	if int(p.Org)+len(p.Words) >= moVarBase {
		t.Fatalf("program (%d words) collides with variable space at %#x", len(p.Words), moVarBase)
	}
	t.Logf("MODecode: %d DynaRisc words", len(p.Words))
}

func TestMODecodeClean(t *testing.T) {
	l := moLayout()
	img, payload := moEncode(t, l, 0.9, 1)
	got := runMODecode(t, img, l)
	if got == nil {
		t.Fatal("decoder produced no output (failure path)")
	}
	if !bytes.Equal(got, payload) {
		n := len(got)
		if n > len(payload) {
			n = len(payload)
		}
		d := -1
		for i := 0; i < n; i++ {
			if got[i] != payload[i] {
				d = i
				break
			}
		}
		t.Fatalf("payload mismatch: got %d want %d bytes, first diff %d", len(got), len(payload), d)
	}
}

func TestMODecodeMatchesGoDecoder(t *testing.T) {
	l := moLayout()
	img, _ := moEncode(t, l, 0.7, 2)
	want, _, _, err := mocoder.Decode(img, l)
	if err != nil {
		t.Fatal(err)
	}
	got := runMODecode(t, img, l)
	if !bytes.Equal(got, want) {
		t.Fatal("assembly decoder diverged from Go decoder on a clean emblem")
	}
}

func TestMODecodeWithDamage(t *testing.T) {
	// Dust specks on the data field: the in-assembly Reed-Solomon
	// decoder (BM + Chien + Forney) must correct them.
	l := moLayout()
	img, payload := moEncode(t, l, 1.0, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		x := 60 + rng.Intn(img.W-120)
		y := 60 + rng.Intn(img.H-120)
		img.FillRect(x, y, x+3, y+3, byte(rng.Intn(2)*255))
	}
	// Verify the Go decoder needed corrections so the test is meaningful.
	_, _, st, err := mocoder.Decode(img, l)
	if err != nil {
		t.Fatal(err)
	}
	got := runMODecode(t, img, l)
	if !bytes.Equal(got, payload) {
		t.Fatalf("assembly RS correction failed (Go path corrected %d bytes)", st.BytesCorrected)
	}
	t.Logf("corrected bytes (Go decoder's count): %d", st.BytesCorrected)
}

func TestMODecodeBitonalRescan(t *testing.T) {
	// Microfilm-style: bitonal scan at a higher resolution.
	l := moLayout()
	img, payload := moEncode(t, l, 0.8, 5)
	scan := img.Resize(img.W*5/4, img.H*5/4)
	scan = scan.Threshold(scan.OtsuThreshold())
	got := runMODecode(t, scan, l)
	if !bytes.Equal(got, payload) {
		t.Fatal("bitonal rescan mismatch")
	}
}

func TestMODecodeGarbageFailsClosed(t *testing.T) {
	l := moLayout()
	img := raster.New(l.ImageW(), l.ImageH())
	rng := rand.New(rand.NewSource(6))
	for i := range img.Pix {
		img.Pix[i] = byte(rng.Intn(256))
	}
	p, err := MODecode()
	if err != nil {
		t.Fatal(err)
	}
	c := dynarisc.NewCPU(MOMemWords(img))
	c.MaxSteps = 4_000_000_000
	c.LoadProgram(p.Org, p.Words)
	c.In = MOInput(img, l)
	// Garbage may halt via the failure path or hit an execution fault;
	// either way it must not emit a payload.
	_ = c.Run()
	if len(c.Out) != 0 {
		t.Fatalf("garbage scan produced %d output words", len(c.Out))
	}
}

// TestMODecodeSizeAndLayoutSweep differentially tests the archived
// decoder against the Go decoder across payload sizes (empty, single
// byte, block boundaries, full) and several emblem geometries, with
// exact stream-level damage injected at the inner code's correction
// bound.
func TestMODecodeSizeAndLayoutSweep(t *testing.T) {
	layouts := []emblem.Layout{
		{DataW: 80, DataH: 64, PxPerModule: 4},
		{DataW: 64, DataH: 64, PxPerModule: 2},
		{DataW: 120, DataH: 48, PxPerModule: 3},
	}
	for li, l := range layouts {
		capacity := mocoder.Capacity(l)
		for _, n := range []int{0, 1, 17, capacity / 2, capacity - 1, capacity} {
			payload := make([]byte, n)
			rand.New(rand.NewSource(int64(li*1000 + n))).Read(payload)
			hdr := emblem.Header{Kind: emblem.KindData, Total: 1}
			img, err := mocoder.Encode(payload, hdr, l)
			if err != nil {
				t.Fatal(err)
			}
			want, _, _, err := mocoder.Decode(img, l)
			if err != nil {
				t.Fatalf("layout %d n=%d: Go decode: %v", li, n, err)
			}
			got := runMODecode(t, img, l)
			if !bytes.Equal(got, want) {
				t.Fatalf("layout %d n=%d: assembly decoder diverged", li, n)
			}
		}
	}
}

// TestMODecodeAtCorrectionBound injects exactly 16 byte errors per
// inner block at the stream level; the in-assembly Berlekamp-Massey
// correction must restore the payload just like the Go path.
func TestMODecodeAtCorrectionBound(t *testing.T) {
	l := moLayout()
	spec := mocoder.Spec(l)
	payload := make([]byte, spec.Capacity)
	rand.New(rand.NewSource(9)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindData, Total: 1}
	rng := rand.New(rand.NewSource(10))
	img, err := mocoder.EncodeDamaged(payload, hdr, l, func(stream []byte) {
		for blk, dataLen := range spec.BlockDataLens {
			nErr := 16
			if nErr > dataLen {
				nErr = dataLen
			}
			for _, j := range rng.Perm(dataLen)[:nErr] {
				stream[spec.StreamPos(blk, j)] ^= 0x3C
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := runMODecode(t, img, l)
	if !bytes.Equal(got, payload) {
		t.Fatal("assembly decoder failed at the 16-errors/block bound")
	}
}
