package dynprog

import (
	"testing"

	"microlonys/dynarisc"
	"microlonys/internal/dbcoder"
)

// The archived decoders are the programs dynarisc.Run is optimised for;
// these tests pin Run ≡ Step-loop on them — every register, flag, memory
// word, cursor and the step count — mirroring verisc/step_test.go one
// emulation level up.

func diffRunStep(t *testing.T, p *dynarisc.Program, memWords int, in []uint16) {
	t.Helper()
	mk := func() *dynarisc.CPU {
		c := dynarisc.NewCPU(memWords)
		c.MaxSteps = 4_000_000_000
		if err := c.LoadProgram(p.Org, p.Words); err != nil {
			t.Fatal(err)
		}
		c.In = append([]uint16(nil), in...)
		return c
	}

	fast := mk()
	if err := fast.Run(); err != nil {
		t.Fatalf("Run: %v (steps=%d)", err, fast.Steps)
	}
	slow := mk()
	for !slow.Halted {
		if err := slow.Step(); err != nil {
			t.Fatalf("Step: %v (steps=%d)", err, slow.Steps)
		}
	}

	if fast.R != slow.R || fast.D != slow.D || fast.PC != slow.PC {
		t.Fatalf("register divergence:\nrun:  R=%v D=%v PC=%#x\nstep: R=%v D=%v PC=%#x",
			fast.R, fast.D, fast.PC, slow.R, slow.D, slow.PC)
	}
	if fast.Z != slow.Z || fast.N != slow.N || fast.C != slow.C {
		t.Fatalf("flag divergence: run (Z=%v N=%v C=%v) step (Z=%v N=%v C=%v)",
			fast.Z, fast.N, fast.C, slow.Z, slow.N, slow.C)
	}
	if fast.Steps != slow.Steps || fast.InPos != slow.InPos {
		t.Fatalf("cursor divergence: steps %d vs %d, inpos %d vs %d",
			fast.Steps, slow.Steps, fast.InPos, slow.InPos)
	}
	if len(fast.Out) != len(slow.Out) {
		t.Fatalf("output lengths differ: %d vs %d", len(fast.Out), len(slow.Out))
	}
	for i := range fast.Out {
		if fast.Out[i] != slow.Out[i] {
			t.Fatalf("output[%d]: run %#x vs step %#x", i, fast.Out[i], slow.Out[i])
		}
	}
	for i := range fast.Mem {
		if fast.Mem[i] != slow.Mem[i] {
			t.Fatalf("memory[%#x]: run %#x vs step %#x", i, fast.Mem[i], slow.Mem[i])
		}
	}
	if len(fast.Out) == 0 {
		t.Fatal("decoder produced no output; differential is vacuous")
	}
}

// TestRunMatchesStepMODecode runs the archived emblem decoder over a
// rendered scan on both execution paths.
func TestRunMatchesStepMODecode(t *testing.T) {
	l := moLayout()
	img, _ := moEncode(t, l, 1.0, 42)
	p, err := MODecode()
	if err != nil {
		t.Fatal(err)
	}
	diffRunStep(t, p, MOMemWords(img), MOInput(img, l))
}

// TestRunMatchesStepDBDecode runs the archived DBC1 decompressor on both
// execution paths.
func TestRunMatchesStepDBDecode(t *testing.T) {
	src := []byte("the quick brown fox jumps over the lazy dog, twice: " +
		"the quick brown fox jumps over the lazy dog")
	blob := dbcoder.Compress(src)
	p, err := DBDecode()
	if err != nil {
		t.Fatal(err)
	}
	in := dynarisc.AppendInWords(nil, blob)
	diffRunStep(t, p, 1<<18, in)
}
