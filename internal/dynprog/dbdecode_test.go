package dynprog

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"microlonys/dynarisc"
	"microlonys/internal/dbcoder"
	"microlonys/internal/nested"
)

// runDBDecode executes the assembly decoder on the reference CPU.
func runDBDecode(t *testing.T, blob []byte, memWords int) []byte {
	t.Helper()
	p, err := DBDecode()
	if err != nil {
		t.Fatalf("assemble DBDecode: %v", err)
	}
	c := dynarisc.NewCPU(memWords)
	c.MaxSteps = 2_000_000_000
	if err := c.LoadProgram(p.Org, p.Words); err != nil {
		t.Fatal(err)
	}
	c.SetInBytes(blob)
	if err := c.Run(); err != nil {
		t.Fatalf("DBDecode run: %v (steps=%d)", err, c.Steps)
	}
	return c.OutBytes()
}

func TestDBDecodeAssembles(t *testing.T) {
	p, err := DBDecode()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) == 0 {
		t.Fatal("empty program")
	}
	if int(p.Org)+len(p.Words) >= 0x3F00 {
		t.Fatalf("program (%d words) collides with variable space", len(p.Words))
	}
	t.Logf("DBDecode: %d DynaRisc words", len(p.Words))
}

func TestDBDecodeSimple(t *testing.T) {
	src := []byte("hello hello hello hello world world world")
	blob := dbcoder.Compress(src)
	got := runDBDecode(t, blob, 1<<18)
	if !bytes.Equal(got, src) {
		t.Fatalf("got %q want %q", got, src)
	}
}

func TestDBDecodeEmpty(t *testing.T) {
	blob := dbcoder.Compress(nil)
	got := runDBDecode(t, blob, 1<<18)
	if len(got) != 0 {
		t.Fatalf("empty archive decoded to %d bytes", len(got))
	}
}

func TestDBDecodeAllTokenPaths(t *testing.T) {
	// Construct data that exercises literals, short/mid/long lengths,
	// rep matches and all distance slot classes.
	var b bytes.Buffer
	rng := rand.New(rand.NewSource(7))
	b.WriteString(strings.Repeat("abcdefgh", 4)) // short distances
	b.Write(bytes.Repeat([]byte{0x55}, 300))     // long lengths + rep
	for i := 0; i < 2000; i++ {                  // noise: literals
		b.WriteByte(byte(rng.Intn(256)))
	}
	b.WriteString(strings.Repeat("abcdefgh", 4)) // distance ≈ 2300 (big slot)
	tail := b.Bytes()[:64]
	b.Write(tail) // medium distance
	src := b.Bytes()

	blob := dbcoder.Compress(src)
	got := runDBDecode(t, blob, 1<<18)
	if !bytes.Equal(got, src) {
		n := len(got)
		if n > len(src) {
			n = len(src)
		}
		diff := -1
		for i := 0; i < n; i++ {
			if got[i] != src[i] {
				diff = i
				break
			}
		}
		t.Fatalf("mismatch: len got=%d want=%d, first diff at %d", len(got), len(src), diff)
	}
}

func TestDBDecodeRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		var src []byte
		for len(src) < 3000+rng.Intn(5000) {
			if rng.Intn(2) == 0 {
				chunk := make([]byte, rng.Intn(80)+1)
				rng.Read(chunk)
				src = append(src, chunk...)
			} else if len(src) > 4 {
				// Reuse an earlier span to force matches.
				start := rng.Intn(len(src) - 2)
				end := start + rng.Intn(len(src)-start)
				src = append(src, src[start:end]...)
			} else {
				src = append(src, 'x')
			}
		}
		blob := dbcoder.Compress(src)
		want, err := dbcoder.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		got := runDBDecode(t, blob, 1<<18)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: assembly decoder diverged from Go decoder", trial)
		}
	}
}

func TestDBDecodeSQLDump(t *testing.T) {
	// The real workload shape: SQL text.
	var b bytes.Buffer
	for i := 0; i < 800; i++ {
		b.WriteString("INSERT INTO lineitem VALUES (")
		b.WriteByte(byte('0' + i%10))
		b.WriteString(", 155190, 7706, 17, 21168.23, '1996-03-13');\n")
	}
	src := b.Bytes()
	blob := dbcoder.Compress(src)
	got := runDBDecode(t, blob, 1<<18)
	if !bytes.Equal(got, src) {
		t.Fatal("SQL dump mismatch")
	}
	t.Logf("raw=%d compressed=%d", len(src), len(blob))
}

func TestDBDecodeNested(t *testing.T) {
	// The full archival restoration path: DBDecode (DynaRisc) running on
	// the DynaRisc emulator written in VeRisc. Small payload — nested
	// emulation trades speed for portability.
	src := []byte(strings.Repeat("ULE! ", 40))
	blob := dbcoder.Compress(src)

	p, err := DBDecode()
	if err != nil {
		t.Fatal(err)
	}
	in := make([]uint16, len(blob))
	for i, bb := range blob {
		in[i] = uint16(bb)
	}
	out, err := nested.Run(p, in, 1<<17, 3_000_000_000)
	if err != nil {
		t.Fatalf("nested DBDecode: %v", err)
	}
	got := make([]byte, len(out))
	for i, w := range out {
		got[i] = byte(w)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("nested decode mismatch: got %d bytes", len(got))
	}
}

func BenchmarkDBDecodeOnDynaRisc(b *testing.B) {
	src := []byte(strings.Repeat("INSERT INTO orders VALUES (7, 'O', 252004.18);\n", 400))
	blob := dbcoder.Compress(src)
	p, err := DBDecode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := dynarisc.NewCPU(1 << 18)
		c.LoadProgram(p.Org, p.Words)
		c.SetInBytes(blob)
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
