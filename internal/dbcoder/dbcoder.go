// Package dbcoder implements DBCoder, the database layout encoder/decoder of
// Micr'Olonys (§3.1).
//
// DBCoder turns the textual, software-independent database archive (a
// pg_dump-style SQL file) into a compact binary stream. The scheme is the
// paper's "generic compression scheme based on LZ77 and arithmetic coding"
// with performance close to LZMA: a hash-chain LZ77 front end feeding an
// adaptive binary range coder with LZMA-style literal, length and
// distance-slot models plus a single rep-distance.
//
// # DBC1 container format
//
//	offset  size  field
//	0       4     magic "DBC1"
//	4       4     raw (uncompressed) length, little endian
//	8       4     CRC-32 (IEEE) of the raw data, little endian
//	12      …     range-coded token stream
//
// Token stream, decoded with the range coder of internal/rangecoder:
//
//	isMatch[prevWasMatch] — 0: literal, 1: match
//	literal: 8 bits via bit-tree, context = previous byte >> 5
//	match:   isRep — 1: distance = last distance, 0: new distance
//	         length: choice/choice2 + 3/3/8-bit trees, len = 2..273
//	         new distance: 6-bit slot tree; slots 4..13 take reverse
//	         bit-tree extras, slots ≥14 take direct bits + 4 aligned
//	         reverse-tree bits (distances are coded 0-based)
//
// The decoder half of this format is also implemented in DynaRisc assembly
// (internal/dynprog, DBDecode) — it is the layout decoder archived with the
// data. Any format change here must be mirrored there.
package dbcoder

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"microlonys/internal/lz77"
	"microlonys/internal/rangecoder"
)

// Magic identifies a DBC1 archive.
const Magic = "DBC1"

// HeaderSize is the byte length of the container header.
const HeaderSize = 12

const (
	minRepLen   = 2
	numLitCtx   = 8
	alignBits   = 4
	numSlots    = 64
	endSlotBits = 6
)

// Errors returned by Decompress.
var (
	ErrBadMagic = errors.New("dbcoder: not a DBC1 archive")
	ErrCorrupt  = errors.New("dbcoder: corrupt archive")
	ErrCRC      = errors.New("dbcoder: CRC mismatch after decompression")
)

type lengthCoder struct {
	choice, choice2 rangecoder.Prob
	low, mid        *rangecoder.BitTree
	high            *rangecoder.BitTree
}

func newLengthCoder() *lengthCoder {
	return &lengthCoder{
		choice:  rangecoder.ProbInit,
		choice2: rangecoder.ProbInit,
		low:     rangecoder.NewBitTree(3),
		mid:     rangecoder.NewBitTree(3),
		high:    rangecoder.NewBitTree(8),
	}
}

func (lc *lengthCoder) encode(e *rangecoder.Encoder, length int) {
	v := uint32(length - minRepLen)
	switch {
	case v < 8:
		e.EncodeBit(&lc.choice, 0)
		lc.low.Encode(e, v)
	case v < 16:
		e.EncodeBit(&lc.choice, 1)
		e.EncodeBit(&lc.choice2, 0)
		lc.mid.Encode(e, v-8)
	default:
		e.EncodeBit(&lc.choice, 1)
		e.EncodeBit(&lc.choice2, 1)
		lc.high.Encode(e, v-16)
	}
}

func (lc *lengthCoder) decode(d *rangecoder.Decoder) int {
	if d.DecodeBit(&lc.choice) == 0 {
		return minRepLen + int(lc.low.Decode(d))
	}
	if d.DecodeBit(&lc.choice2) == 0 {
		return minRepLen + 8 + int(lc.mid.Decode(d))
	}
	return minRepLen + 16 + int(lc.high.Decode(d))
}

type model struct {
	isMatch [2]rangecoder.Prob
	isRep   rangecoder.Prob
	lit     [numLitCtx]*rangecoder.BitTree
	lenC    *lengthCoder
	repLenC *lengthCoder
	slot    [4]*rangecoder.BitTree  // context: min(length-2, 3)
	spec    [10]*rangecoder.BitTree // slots 4..13
	align   *rangecoder.BitTree
}

func lenToSlotCtx(length int) int {
	if c := length - minRepLen; c < 3 {
		return c
	}
	return 3
}

func newModel() *model {
	m := &model{
		isMatch: [2]rangecoder.Prob{rangecoder.ProbInit, rangecoder.ProbInit},
		isRep:   rangecoder.ProbInit,
		lenC:    newLengthCoder(),
		repLenC: newLengthCoder(),
		align:   rangecoder.NewBitTree(alignBits),
	}
	for i := range m.slot {
		m.slot[i] = rangecoder.NewBitTree(endSlotBits)
	}
	for i := range m.lit {
		m.lit[i] = rangecoder.NewBitTree(8)
	}
	for s := 0; s < 10; s++ {
		nd := (s+4)>>1 - 1 // footer bits for slot s+4: 1..5
		m.spec[s] = rangecoder.NewBitTree(nd)
	}
	return m
}

func distSlot(dist0 uint32) uint32 {
	if dist0 < 4 {
		return dist0
	}
	msb := 31 - leadingZeros32(dist0)
	return uint32(msb)<<1 | (dist0>>(uint(msb)-1))&1
}

func leadingZeros32(v uint32) int {
	n := 0
	for v&0x80000000 == 0 {
		v <<= 1
		n++
	}
	return n
}

func (m *model) encodeDistance(e *rangecoder.Encoder, dist, length int) {
	d0 := uint32(dist - 1)
	slot := distSlot(d0)
	m.slot[lenToSlotCtx(length)].Encode(e, slot)
	if slot < 4 {
		return
	}
	nd := int(slot>>1) - 1
	base := (2 | slot&1) << uint(nd)
	rest := d0 - base
	if slot < 14 {
		m.spec[slot-4].EncodeReverse(e, rest)
	} else {
		e.EncodeDirect(rest>>alignBits, nd-alignBits)
		m.align.EncodeReverse(e, rest&(1<<alignBits-1))
	}
}

func (m *model) decodeDistance(d *rangecoder.Decoder, length int) int {
	slot := m.slot[lenToSlotCtx(length)].Decode(d)
	if slot < 4 {
		return int(slot) + 1
	}
	nd := int(slot>>1) - 1
	base := (2 | slot&1) << uint(nd)
	var rest uint32
	if slot < 14 {
		rest = m.spec[slot-4].DecodeReverse(d)
	} else {
		rest = d.DecodeDirect(nd-alignBits) << alignBits
		rest |= m.align.DecodeReverse(d)
	}
	return int(base+rest) + 1
}

// DefaultDepth is the default match-finder chain depth. Archival encoding
// happens once and is read decades later; the default therefore leans
// toward ratio over encode speed.
const DefaultDepth = 256

// Compress returns the DBC1 archive for src.
func Compress(src []byte) []byte {
	return CompressDepth(src, DefaultDepth)
}

// CompressDepth compresses with an explicit match-finder chain depth
// (higher = better ratio, slower).
func CompressDepth(src []byte, depth int) []byte {
	hdr := make([]byte, HeaderSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(src)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(src))

	e := rangecoder.NewEncoder()
	m := newModel()
	f := lz77.NewFinder(src, depth)

	lastDist := 0
	prevWasMatch := 0
	i := 0
	for i < len(src) {
		match := f.Find(i)
		repLen := 0
		if lastDist > 0 {
			repLen = f.ExtendAt(i, lastDist)
		}

		f.Insert(i)

		// Lazy step: if the position after this one holds a strictly longer
		// match, emit a literal here instead.
		if match.Length >= lz77.MinMatch && i+1 < len(src) {
			if next := f.Find(i + 1); next.Length > match.Length {
				m.emitLiteral(e, src, i, prevWasMatch)
				prevWasMatch = 0
				i++
				continue
			}
		}

		if match.Length >= lz77.MinMatch || repLen >= minRepLen {
			var wasMatch bool
			i, wasMatch = m.emitToken(e, f, src, i, match, repLen, &lastDist, prevWasMatch)
			prevWasMatch = 0
			if wasMatch {
				prevWasMatch = 1
			}
			continue
		}
		m.emitLiteral(e, src, i, prevWasMatch)
		prevWasMatch = 0
		i++
	}
	return append(hdr, e.Finish()...)
}

func (m *model) emitLiteral(e *rangecoder.Encoder, src []byte, i, prevWasMatch int) {
	e.EncodeBit(&m.isMatch[prevWasMatch], 0)
	ctx := 0
	if i > 0 {
		ctx = int(src[i-1] >> 5)
	}
	m.lit[ctx].Encode(e, uint32(src[i]))
}

// emitToken writes the better of {rep0 match, normal match} (or a literal if
// neither is economical), inserting skipped positions. It returns the new
// position and whether a match token (vs a literal) was emitted. Position i
// must already be inserted into the chains.
func (m *model) emitToken(e *rangecoder.Encoder, f *lz77.Finder, src []byte, i int, match lz77.Match, repLen int, lastDist *int, prevCtx int) (int, bool) {
	useRep := false
	switch {
	case repLen >= minRepLen && match.Length < lz77.MinMatch:
		useRep = true
	case repLen >= minRepLen && repLen+1 >= match.Length:
		// The rep costs no distance bits; prefer it unless the normal
		// match is at least two bytes longer.
		useRep = true
	}

	// Economy heuristic: very short matches at long distances cost more
	// than the literals they replace.
	if !useRep && (match.Length < lz77.MinMatch ||
		(match.Length == 3 && match.Distance > 1<<12)) {
		m.emitLiteral(e, src, i, prevCtx)
		return i + 1, false
	}

	var length int
	e.EncodeBit(&m.isMatch[prevCtx], 1)
	if useRep {
		e.EncodeBit(&m.isRep, 1)
		length = repLen
		m.repLenC.encode(e, length)
	} else {
		e.EncodeBit(&m.isRep, 0)
		length = match.Length
		m.lenC.encode(e, length)
		m.encodeDistance(e, match.Distance, length)
		*lastDist = match.Distance
	}
	f.InsertRange(i+1, length-1)
	return i + length, true
}

// maxPrealloc caps the output buffer Decompress sizes from the header's
// (attacker-controlled) raw length; beyond it the buffer grows with the
// actual output, so a malformed 12-byte blob cannot demand gigabytes
// up front.
const maxPrealloc = 1 << 20

// Decompress decodes a DBC1 archive produced by Compress, or a seekable
// DBS1 archive produced by CompressSeekable.
func Decompress(blob []byte) ([]byte, error) {
	if IsSeekable(blob) {
		return decompressSeekable(blob)
	}
	if len(blob) < HeaderSize || string(blob[:4]) != Magic {
		return nil, ErrBadMagic
	}
	rawLen := int(binary.LittleEndian.Uint32(blob[4:]))
	wantCRC := binary.LittleEndian.Uint32(blob[8:])
	if rawLen == 0 {
		if wantCRC != 0 {
			return nil, ErrCRC
		}
		return []byte{}, nil
	}

	d, err := rangecoder.NewDecoder(blob[HeaderSize:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	m := newModel()
	hint := rawLen
	if hint > maxPrealloc {
		hint = maxPrealloc
	}
	out := make([]byte, 0, hint)
	lastDist := 0
	prevWasMatch := 0

	for len(out) < rawLen {
		// A decoder that ran past the end of the stream can only emit
		// tokens conjured from phantom zero bytes; the blob would be
		// rejected by the post-loop check regardless, so stop producing
		// output now instead of decoding up to 4 GiB of it first.
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, d.Err())
		}
		if d.DecodeBit(&m.isMatch[prevWasMatch]) == 0 {
			ctx := 0
			if len(out) > 0 {
				ctx = int(out[len(out)-1] >> 5)
			}
			out = append(out, byte(m.lit[ctx].Decode(d)))
			prevWasMatch = 0
			continue
		}
		prevWasMatch = 1
		var dist, length int
		if d.DecodeBit(&m.isRep) == 1 {
			if lastDist == 0 {
				return nil, fmt.Errorf("%w: rep before any match", ErrCorrupt)
			}
			dist = lastDist
			length = m.repLenC.decode(d)
		} else {
			length = m.lenC.decode(d)
			dist = m.decodeDistance(d, length)
			lastDist = dist
		}
		if dist > len(out) {
			return nil, fmt.Errorf("%w: distance %d beyond output %d", ErrCorrupt, dist, len(out))
		}
		if len(out)+length > rawLen {
			return nil, fmt.Errorf("%w: output overrun", ErrCorrupt)
		}
		for j := 0; j < length; j++ {
			out = append(out, out[len(out)-dist])
		}
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, d.Err())
	}
	if crc32.ChecksumIEEE(out) != wantCRC {
		return nil, ErrCRC
	}
	return out, nil
}

// RawLen reports the decompressed size recorded in the archive header.
// Both DBC1 and DBS1 containers record it at the same offset.
func RawLen(blob []byte) (int, error) {
	if IsSeekable(blob) {
		if len(blob) < SeekHeaderSize {
			return 0, fmt.Errorf("%w: truncated DBS1 header", ErrCorrupt)
		}
		return int(binary.LittleEndian.Uint32(blob[4:])), nil
	}
	if len(blob) < HeaderSize || string(blob[:4]) != Magic {
		return 0, ErrBadMagic
	}
	return int(binary.LittleEndian.Uint32(blob[4:])), nil
}

// Verify checks raw against the length and CRC-32 recorded in blob's
// header — the cheap way to validate an independently produced
// decompression (such as the archived DBDecode program's output) against
// the archive, without running the native decompressor a second time.
func Verify(blob, raw []byte) error {
	rawLen, err := RawLen(blob)
	if err != nil {
		return err
	}
	if len(raw) != rawLen {
		return fmt.Errorf("%w: %d bytes, header records %d", ErrCRC, len(raw), rawLen)
	}
	if crc32.ChecksumIEEE(raw) != binary.LittleEndian.Uint32(blob[8:]) {
		return ErrCRC
	}
	return nil
}
