package dbcoder

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// # DBS1 container format — the seekable variant of DBC1
//
// A DBC1 archive is one continuous range-coded stream: the coder state at
// byte k depends on every token before it, so decoding cannot start in the
// middle. That is the right trade for a full restore, but selective restore
// (RestoreRange/RestoreTable) wants to decompress only the spans that
// overlap the requested bytes. DBS1 keeps the token format untouched and
// adds restart points *around* it: the raw input is cut into fixed-size
// blocks and each block is compressed as an independent, standalone DBC1
// archive. The archived DynaRisc DBDecode program therefore decodes a DBS1
// volume unchanged — it is simply run once per block.
//
//	offset  size  field
//	0       4     magic "DBS1"
//	4       4     total raw (uncompressed) length, little endian
//	8       4     CRC-32 (IEEE) of the whole raw data, little endian
//	12      4     block count n, little endian
//	16      8·n   per block: u32 raw length, u32 compressed length (LE)
//	16+8n   …     n concatenated standalone DBC1 archives
const SeekMagic = "DBS1"

// SeekHeaderSize is the byte length of the DBS1 container header before
// the block table.
const SeekHeaderSize = 16

// SeekBlock describes one independently decodable block of a DBS1 archive.
// RawOff/RawLen address the uncompressed stream; CompOff/CompLen address
// the container blob (CompOff points at the block's DBC1 magic).
type SeekBlock struct {
	RawOff, RawLen   int
	CompOff, CompLen int
}

// CompressSeekable returns the DBS1 archive for src with the default
// match-finder depth, cutting restart points every blockBytes raw bytes.
func CompressSeekable(src []byte, blockBytes int) []byte {
	return CompressSeekableDepth(src, DefaultDepth, blockBytes)
}

// CompressSeekableDepth is CompressSeekable with an explicit match-finder
// chain depth. A blockBytes ≤ 0 yields a single block (seekable container,
// DBC1-equivalent ratio).
func CompressSeekableDepth(src []byte, depth, blockBytes int) []byte {
	if blockBytes <= 0 {
		blockBytes = len(src)
	}
	n := 0
	if len(src) > 0 {
		n = (len(src) + blockBytes - 1) / blockBytes
	}
	hdr := make([]byte, SeekHeaderSize, SeekHeaderSize+8*n)
	copy(hdr, SeekMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(src)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(src))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(n))

	blocks := make([][]byte, 0, n)
	for b := 0; b < n; b++ {
		lo := b * blockBytes
		hi := lo + blockBytes
		if hi > len(src) {
			hi = len(src)
		}
		comp := CompressDepth(src[lo:hi], depth)
		blocks = append(blocks, comp)
		var ent [8]byte
		binary.LittleEndian.PutUint32(ent[0:], uint32(hi-lo))
		binary.LittleEndian.PutUint32(ent[4:], uint32(len(comp)))
		hdr = append(hdr, ent[:]...)
	}
	out := hdr
	for _, comp := range blocks {
		out = append(out, comp...)
	}
	return out
}

// IsSeekable reports whether blob carries the DBS1 magic.
func IsSeekable(blob []byte) bool {
	return len(blob) >= 4 && string(blob[:4]) == SeekMagic
}

// SeekTable parses the DBS1 block table, validating that the recorded
// raw/compressed extents are consistent with the blob. It never panics on
// truncated or bit-flipped input.
func SeekTable(blob []byte) ([]SeekBlock, error) {
	if !IsSeekable(blob) {
		return nil, ErrBadMagic
	}
	if len(blob) < SeekHeaderSize {
		return nil, fmt.Errorf("%w: truncated DBS1 header", ErrCorrupt)
	}
	rawLen := int(binary.LittleEndian.Uint32(blob[4:]))
	n := int(binary.LittleEndian.Uint32(blob[12:]))
	if n < 0 || n > (len(blob)-SeekHeaderSize)/8 {
		return nil, fmt.Errorf("%w: DBS1 block count %d exceeds blob", ErrCorrupt, n)
	}
	blocks := make([]SeekBlock, n)
	rawOff := 0
	compOff := SeekHeaderSize + 8*n
	for i := 0; i < n; i++ {
		ent := blob[SeekHeaderSize+8*i:]
		rl := int(binary.LittleEndian.Uint32(ent[0:]))
		cl := int(binary.LittleEndian.Uint32(ent[4:]))
		if rl < 0 || cl < 0 || cl > len(blob)-compOff || rl > rawLen-rawOff {
			return nil, fmt.Errorf("%w: DBS1 block %d extent out of range", ErrCorrupt, i)
		}
		blocks[i] = SeekBlock{RawOff: rawOff, RawLen: rl, CompOff: compOff, CompLen: cl}
		rawOff += rl
		compOff += cl
	}
	if rawOff != rawLen {
		return nil, fmt.Errorf("%w: DBS1 blocks cover %d of %d raw bytes", ErrCorrupt, rawOff, rawLen)
	}
	return blocks, nil
}

// decompressSeekable decodes a DBS1 archive block by block.
func decompressSeekable(blob []byte) ([]byte, error) {
	blocks, err := SeekTable(blob)
	if err != nil {
		return nil, err
	}
	rawLen := int(binary.LittleEndian.Uint32(blob[4:]))
	wantCRC := binary.LittleEndian.Uint32(blob[8:])
	hint := rawLen
	if hint > maxPrealloc {
		hint = maxPrealloc
	}
	out := make([]byte, 0, hint)
	for i, b := range blocks {
		piece, err := Decompress(blob[b.CompOff : b.CompOff+b.CompLen])
		if err != nil {
			return nil, fmt.Errorf("DBS1 block %d: %w", i, err)
		}
		if len(piece) != b.RawLen {
			return nil, fmt.Errorf("%w: DBS1 block %d yielded %d bytes, table records %d",
				ErrCorrupt, i, len(piece), b.RawLen)
		}
		out = append(out, piece...)
	}
	if crc32.ChecksumIEEE(out) != wantCRC {
		return nil, ErrCRC
	}
	return out, nil
}
