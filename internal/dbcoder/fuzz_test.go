package dbcoder

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzText is a compressible seed in the workload's shape.
var fuzzText = bytes.Repeat([]byte("INSERT INTO lineitem VALUES (42, 155190, 'quick brown fox');\n"), 40)

// maxFuzzRawLen bounds the raw length a fuzzed blob may declare before we
// decode it. Outputs are inherently bounded by the header's raw length,
// not the input size (that is what makes any LZ format a zip-bomb
// amplifier), so without the cap a mutated header can legitimately demand
// gigabytes of output — slow, but not a bug. The properties under test
// (no panic, no unbounded loop, errors on malformed data) are fully
// exercised below the cap.
const maxFuzzRawLen = 1 << 22

// FuzzDecompress feeds malformed blobs to Decompress: it must return an
// error or a self-consistent output — never panic, hang, or hand back
// bytes that contradict the blob's own header.
func FuzzDecompress(f *testing.F) {
	valid := Compress(fuzzText)
	f.Add([]byte{})
	f.Add([]byte("DBC1"))
	f.Add([]byte("DBC0\x01\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(valid)
	f.Add(valid[:HeaderSize])           // header only, empty token stream
	f.Add(valid[:HeaderSize+3])         // range coder header cut short
	f.Add(valid[:len(valid)/2])         // truncated mid-stream
	f.Add(append([]byte{}, valid[HeaderSize:]...)) // stream without header

	// Header lies: huge declared length over a tiny valid stream.
	lie := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(lie[4:], 1<<20)
	f.Add(lie)

	// Body corruption at a few offsets.
	for _, off := range []int{HeaderSize, HeaderSize + 7, len(valid) - 2} {
		c := append([]byte{}, valid...)
		c[off] ^= 0xFF
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, blob []byte) {
		if n, err := RawLen(blob); err == nil && n > maxFuzzRawLen {
			t.Skip("declared output beyond fuzz budget")
		}
		out, err := Decompress(blob)
		if err != nil {
			if out != nil {
				t.Fatalf("error %v with non-nil output", err)
			}
			return
		}
		// Accepted: the output must satisfy the blob's own length and CRC
		// record (Decompress checks this; Verify re-derives it).
		if err := Verify(blob, out); err != nil {
			t.Fatalf("accepted blob fails its own header verification: %v", err)
		}
	})
}

// FuzzCompressRoundTrip pins Compress→Decompress bit-exactness on
// arbitrary inputs across match-finder depths.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("a"), uint8(1))
	f.Add(fuzzText, uint8(64))
	f.Add(bytes.Repeat([]byte{0}, 5000), uint8(16))
	f.Add([]byte("abcabcabcabcabcabc"), uint8(255))

	f.Fuzz(func(t *testing.T, src []byte, depth uint8) {
		if len(src) > 1<<20 {
			src = src[:1<<20]
		}
		blob := CompressDepth(src, int(depth))
		got, err := Decompress(blob)
		if err != nil {
			t.Fatalf("depth %d: decompress of own archive: %v", depth, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("depth %d: round trip mismatch: %d bytes in, %d out", depth, len(src), len(got))
		}
	})
}
