package dbcoder

import (
	"bytes"
	"compress/flate"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	blob := Compress(src)
	got, err := Decompress(blob)
	if err != nil {
		t.Fatalf("Decompress(%d bytes raw): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: raw %d bytes", len(src))
	}
	return blob
}

func TestRoundTripEmpty(t *testing.T)  { roundTrip(t, []byte{}) }
func TestRoundTripSingle(t *testing.T) { roundTrip(t, []byte{42}) }

func TestRoundTripText(t *testing.T) {
	src := []byte(strings.Repeat("INSERT INTO lineitem VALUES (1, 155190, 7706, 1, 17, 21168.23);\n", 500))
	blob := roundTrip(t, src)
	if len(blob) > len(src)/20 {
		t.Fatalf("repetitive SQL compressed to %d/%d, want ≥20x", len(blob), len(src))
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 100000)
	rng.Read(src)
	blob := roundTrip(t, src)
	// Incompressible data must not blow up more than ~1 %.
	if len(blob) > len(src)+len(src)/64+HeaderSize {
		t.Fatalf("random data expanded to %d/%d", len(blob), len(src))
	}
}

func TestRoundTripStructured(t *testing.T) {
	var b bytes.Buffer
	for i := 0; i < 2000; i++ {
		b.WriteString("row ")
		b.WriteByte(byte('0' + i%10))
		b.WriteString(" | some column text | ")
		if i%7 == 0 {
			b.WriteString("a longer varying tail segment with digits 0123456789")
		}
		b.WriteByte('\n')
	}
	roundTrip(t, b.Bytes())
}

func TestRoundTripAllByteValues(t *testing.T) {
	src := make([]byte, 256*4)
	for i := range src {
		src[i] = byte(i)
	}
	roundTrip(t, src)
}

func TestRoundTripLongRuns(t *testing.T) {
	roundTrip(t, bytes.Repeat([]byte{0}, 70000))
	roundTrip(t, bytes.Repeat([]byte("ab"), 35000))
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, runs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var src []byte
		// Mix of random bytes and repeated runs to exercise match paths.
		for len(src) < int(n) {
			if rng.Intn(2) == 0 {
				chunk := make([]byte, rng.Intn(50)+1)
				rng.Read(chunk)
				src = append(src, chunk...)
			} else {
				b := byte(rng.Intn(4))
				src = append(src, bytes.Repeat([]byte{b}, rng.Intn(int(runs)+2)+1)...)
			}
		}
		got, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDepthImprovesOrEqualRatio(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog; ", 400))
	shallow := CompressDepth(src, 4)
	deep := CompressDepth(src, 256)
	if len(deep) > len(shallow)+16 {
		t.Fatalf("deeper search much worse: %d vs %d", len(deep), len(shallow))
	}
	for _, blob := range [][]byte{shallow, deep} {
		got, err := Decompress(blob)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatal("depth variant failed round trip")
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decompress([]byte("NOPE00000000")); !errors.Is(err, ErrBadMagic) {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decompress(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatal("nil accepted")
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	src := []byte(strings.Repeat("hello world ", 1000))
	blob := Compress(src)
	rng := rand.New(rand.NewSource(3))
	detected, harmless := 0, 0
	const trials = 50
	for i := 0; i < trials; i++ {
		bad := append([]byte(nil), blob...)
		p := HeaderSize + rng.Intn(len(bad)-HeaderSize)
		bad[p] ^= 1 << uint(rng.Intn(8))
		got, err := Decompress(bad)
		switch {
		case err != nil:
			detected++
		case bytes.Equal(got, src):
			// Flips in the range coder's flush tail can be unreachable by
			// the decoder; they are harmless, not silent corruption.
			harmless++
		default:
			t.Fatalf("flip at %d produced wrong data without error", p)
		}
	}
	if detected < trials*8/10 {
		t.Fatalf("only %d/%d corruptions detected (%d harmless)", detected, trials, harmless)
	}
}

func TestCorruptLengthDetected(t *testing.T) {
	blob := Compress([]byte("some data here"))
	blob[4] = 0xFF // inflate rawLen
	if _, err := Decompress(blob); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestVerify(t *testing.T) {
	src := []byte("verify me, verify me, verify me")
	blob := Compress(src)
	if err := Verify(blob, src); err != nil {
		t.Fatalf("Verify rejected the true payload: %v", err)
	}
	if err := Verify(blob, src[:len(src)-1]); !errors.Is(err, ErrCRC) {
		t.Fatalf("short payload: got %v, want CRC error", err)
	}
	wrong := append([]byte(nil), src...)
	wrong[3] ^= 0x40
	if err := Verify(blob, wrong); !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupt payload: got %v, want CRC error", err)
	}
	if err := Verify([]byte("junk"), src); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("junk blob: got %v, want bad magic", err)
	}
	if err := Verify(Compress(nil), nil); err != nil {
		t.Fatalf("empty archive: %v", err)
	}
}

func TestRawLen(t *testing.T) {
	src := make([]byte, 12345)
	n, err := RawLen(Compress(src))
	if err != nil || n != 12345 {
		t.Fatalf("RawLen = %d, %v", n, err)
	}
	if _, err := RawLen([]byte("xx")); err == nil {
		t.Fatal("RawLen on junk")
	}
}

// TestVsFlate is a smoke check of the paper's "close to LZMA" claim at the
// unit level: on repetitive SQL-ish text DBC1 should beat stdlib flate-9.
// The full E6 experiment lives in the root bench harness.
func TestVsFlate(t *testing.T) {
	var b bytes.Buffer
	rng := rand.New(rand.NewSource(9))
	names := []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA"}
	for i := 0; i < 5000; i++ {
		b.WriteString(names[rng.Intn(len(names))])
		b.WriteString("\t")
		b.WriteString(names[rng.Intn(len(names))])
		b.WriteString("\t19940217\t4242.42\n")
	}
	src := b.Bytes()

	var fl bytes.Buffer
	w, _ := flate.NewWriter(&fl, flate.BestCompression)
	w.Write(src)
	w.Close()

	ours := Compress(src)
	if len(ours) > fl.Len()*11/10 {
		t.Fatalf("DBC1 %d bytes vs flate %d bytes — more than 10%% worse", len(ours), fl.Len())
	}
	t.Logf("raw=%d flate9=%d dbc1=%d", len(src), fl.Len(), len(ours))
}

func BenchmarkCompressText(b *testing.B) {
	src := []byte(strings.Repeat("INSERT INTO orders VALUES (7, 39136, 'O', 252004.18, '1996-01-10');\n", 2000))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}

func BenchmarkDecompressText(b *testing.B) {
	src := []byte(strings.Repeat("INSERT INTO orders VALUES (7, 39136, 'O', 252004.18, '1996-01-10');\n", 2000))
	blob := Compress(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}
