package dbcoder

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestSeekableRoundTrip(t *testing.T) {
	src := bytes.Repeat([]byte("COPY lineitem FROM stdin;\n1\t2\t3\n"), 300)
	for _, blockBytes := range []int{0, 1, 100, 1 << 12, len(src), len(src) * 2} {
		blob := CompressSeekableDepth(src, 32, blockBytes)
		if !IsSeekable(blob) {
			t.Fatalf("blockBytes=%d: blob not seekable", blockBytes)
		}
		got, err := Decompress(blob)
		if err != nil {
			t.Fatalf("blockBytes=%d: decompress: %v", blockBytes, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("blockBytes=%d: round trip mismatch", blockBytes)
		}
		if n, err := RawLen(blob); err != nil || n != len(src) {
			t.Fatalf("blockBytes=%d: RawLen = %d, %v; want %d", blockBytes, n, err, len(src))
		}
		if err := Verify(blob, src); err != nil {
			t.Fatalf("blockBytes=%d: Verify: %v", blockBytes, err)
		}
	}
}

func TestSeekableEmpty(t *testing.T) {
	blob := CompressSeekable(nil, 1<<10)
	got, err := Decompress(blob)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %d bytes, %v", len(got), err)
	}
	blocks, err := SeekTable(blob)
	if err != nil || len(blocks) != 0 {
		t.Fatalf("empty SeekTable: %v blocks, %v", blocks, err)
	}
}

// TestSeekableBlocksStandalone pins the property selective restore depends
// on: every block is a complete DBC1 archive decodable on its own, and the
// table's raw extents map it back to the source slice.
func TestSeekableBlocksStandalone(t *testing.T) {
	src := bytes.Repeat([]byte("0123456789abcdef quick brown fox "), 500)
	blob := CompressSeekableDepth(src, 32, 777)
	blocks, err := SeekTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != (len(src)+776)/777 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	for i, b := range blocks {
		piece, err := Decompress(blob[b.CompOff : b.CompOff+b.CompLen])
		if err != nil {
			t.Fatalf("block %d standalone decode: %v", i, err)
		}
		if !bytes.Equal(piece, src[b.RawOff:b.RawOff+b.RawLen]) {
			t.Fatalf("block %d bytes mismatch", i)
		}
	}
}

func TestSeekTableRejectsCorruption(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 400)
	blob := CompressSeekableDepth(src, 16, 512)

	for _, tc := range []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"huge block count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 1<<30)
			return b
		}},
		{"block len beyond blob", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[SeekHeaderSize+4:], 1<<30)
			return b
		}},
		{"raw len short", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[SeekHeaderSize:], 1)
			return b
		}},
	} {
		b := tc.mutate(append([]byte{}, blob...))
		if _, err := SeekTable(b); err == nil {
			t.Errorf("%s: SeekTable accepted corrupt table", tc.name)
		}
		if _, err := Decompress(b); err == nil {
			t.Errorf("%s: Decompress accepted corrupt table", tc.name)
		}
	}

	// Flipped payload bit: the affected block's DBC1 CRC catches it.
	b := append([]byte{}, blob...)
	b[len(b)-3] ^= 0x40
	if _, err := Decompress(b); err == nil {
		t.Error("payload bit flip: Decompress accepted corrupt block")
	}
}

// FuzzSeekable hammers the DBS1 paths with malformed containers: SeekTable
// and Decompress must error or return self-consistent output, never panic.
func FuzzSeekable(f *testing.F) {
	valid := CompressSeekableDepth(fuzzText, 32, 500)
	f.Add([]byte{})
	f.Add([]byte("DBS1"))
	f.Add(valid)
	f.Add(valid[:SeekHeaderSize])
	f.Add(valid[:len(valid)/2])
	for _, off := range []int{5, 13, SeekHeaderSize, SeekHeaderSize + 5, len(valid) - 2} {
		c := append([]byte{}, valid...)
		c[off] ^= 0xFF
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, blob []byte) {
		if n, err := RawLen(blob); err == nil && n > maxFuzzRawLen {
			t.Skip("declared output beyond fuzz budget")
		}
		_, tableErr := SeekTable(blob)
		out, err := Decompress(blob)
		if err != nil {
			return
		}
		if IsSeekable(blob) && tableErr != nil {
			t.Fatalf("Decompress accepted a blob whose SeekTable fails: %v", tableErr)
		}
		if err := Verify(blob, out); err != nil {
			t.Fatalf("accepted blob fails its own header verification: %v", err)
		}
	})
}
