package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// raggedRows builds nd data rows with lengths varying around maxLen so the
// zero-padding rule is exercised (some rows full-length, some short, some
// empty when maxLen allows).
func raggedRows(rng *rand.Rand, nd, maxLen int) [][]byte {
	rows := make([][]byte, nd)
	for i := range rows {
		n := maxLen
		switch i % 3 {
		case 1:
			n = maxLen / 2
		case 2:
			n = maxLen - 1
		}
		if n < 0 {
			n = 0
		}
		rows[i] = make([]byte, n)
		rng.Read(rows[i])
	}
	// Keep at least one full-length row so maxLen is realized.
	if len(rows[0]) != maxLen {
		rows[0] = make([]byte, maxLen)
		rng.Read(rows[0])
	}
	return rows
}

// encodeRowsRef is the per-column reference: gather each zero-padded byte
// column, run the LFSR encoder, scatter the parity — exactly what
// EncodeRowsInto must reproduce row-major.
func encodeRowsRef(c *Code, data [][]byte, maxLen int) [][]byte {
	parity := make([][]byte, c.Parity())
	for i := range parity {
		parity[i] = make([]byte, maxLen)
	}
	col := make([]byte, len(data))
	par := make([]byte, c.Parity())
	for j := 0; j < maxLen; j++ {
		for i, d := range data {
			if j < len(d) {
				col[i] = d[j]
			} else {
				col[i] = 0
			}
		}
		c.EncodeInto(par, col)
		for i := range parity {
			parity[i][j] = par[i]
		}
	}
	return parity
}

// TestEncodeRowsInto pins the group-wide encode to the per-column LFSR
// across both MOCoder codes, row counts from 1 to full, ragged row
// lengths, and fold-boundary payload lengths.
func TestEncodeRowsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, parity := range []int{OuterParity, InnerParity} {
		c := New(parity)
		for _, nd := range []int{1, 2, 5, OuterData, 64} {
			if nd > c.MaxData() {
				continue
			}
			for _, maxLen := range []int{1, 7, 8, 9, 63, 300} {
				data := raggedRows(rng, nd, maxLen)
				want := encodeRowsRef(c, data, maxLen)
				got := make([][]byte, parity)
				for i := range got {
					got[i] = make([]byte, maxLen)
					rng.Read(got[i]) // must be fully overwritten
				}
				c.EncodeRowsInto(got, data)
				for i := range want {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("parity=%d nd=%d len=%d: parity row %d diverged from per-column encode",
							parity, nd, maxLen, i)
					}
				}
			}
		}
	}
}

// TestRowsCleanDifferential pins the group-wide syndrome check to
// per-column syndromesInto: clean interleaved codeword blocks pass, and
// any single corrupted byte is caught exactly as the per-column scan
// catches it.
func TestRowsCleanDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := New(OuterParity)
	for _, nd := range []int{1, 5, OuterData} {
		for _, maxLen := range []int{1, 9, 300} {
			data := make([][]byte, nd)
			for i := range data {
				data[i] = make([]byte, maxLen)
				rng.Read(data[i])
			}
			parity := make([][]byte, OuterParity)
			for i := range parity {
				parity[i] = make([]byte, maxLen)
			}
			c.EncodeRowsInto(parity, data)
			rows := append(append([][]byte{}, data...), parity...)

			check := func(want bool, label string) {
				t.Helper()
				if got := c.RowsClean(rows); got != want {
					t.Fatalf("nd=%d len=%d %s: RowsClean=%v, want %v", nd, maxLen, label, got, want)
				}
				// Per-column reference.
				s := make([]byte, OuterParity)
				cw := make([]byte, len(rows))
				clean := true
				for j := 0; j < maxLen; j++ {
					for i, r := range rows {
						cw[i] = r[j]
					}
					if c.syndromesInto(s, cw) {
						clean = false
						break
					}
				}
				if clean != want {
					t.Fatalf("nd=%d len=%d %s: per-column clean=%v, want %v", nd, maxLen, label, clean, want)
				}
			}

			check(true, "clean")
			i, j := rng.Intn(len(rows)), rng.Intn(maxLen)
			rows[i][j] ^= 1 + byte(rng.Intn(255))
			check(false, "corrupted")
		}
	}
}
