// Package rs implements Reed-Solomon coding over GF(2^8) with full
// errors-and-erasures decoding.
//
// MOCoder uses two instances of this code (§3.1 of the paper):
//
//   - the inner, intra-emblem code RS(255,223): blocks of 223 user bytes
//     carry 32 redundancy bytes and correct up to 16 in-block byte errors
//     (≈7.2 % of the user data), or up to 32 erasures;
//   - the outer, inter-emblem code RS(20,17): byte i of three parity
//     emblems protects byte i of seventeen data emblems, restoring a group
//     of 20 emblems in which any three are missing altogether.
//
// The decoder uses the Forney-syndrome formulation: erasures are folded
// into modified syndromes, Berlekamp-Massey finds the remaining error
// locator, Chien search locates errata and Forney's formula computes the
// magnitudes. Codes may be shortened (codeword length below 255).
package rs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"microlonys/internal/gf256"
)

// Code is a Reed-Solomon code with a fixed number of parity symbols.
// A Code is immutable after New and safe for concurrent use.
type Code struct {
	parity int
	gen    []byte // generator polynomial, highest-degree first, monic

	// enc holds one 256-entry multiplication table per non-leading
	// generator coefficient — enc[f*parity+k] = gen[k+1]·f — stored
	// factor-major, so one LFSR step against factor f is a contiguous
	// parity-byte row. The encoder's feedback becomes a lookup and an XOR
	// per tap (folded eight taps at a time) instead of log/exp arithmetic
	// with zero checks; both MOCoder codes (inner per-frame and outer
	// inter-frame) share this through their Code instances.
	enc []byte

	// syn holds one 256-entry multiplication table per syndrome power —
	// syn[j*256+x] = α^j·x — the decoder-side mirror of enc. Horner's
	// step for syndrome j becomes s[j] = syn[j<<8|s[j]] ^ c; the
	// byte-major syndrome loop updates all parity accumulators per
	// codeword byte, so the dominant clean-word scan is independent table
	// lookups with no zero checks or log/exp arithmetic.
	syn []byte
}

// Standard code parameters used by MOCoder.
const (
	InnerData   = 223 // user bytes per inner block
	InnerParity = 32  // redundancy bytes per inner block
	InnerTotal  = InnerData + InnerParity

	OuterData   = 17 // data emblems per group
	OuterParity = 3  // parity emblems per group
	OuterTotal  = OuterData + OuterParity
)

// ErrTooManyErrata is returned when the received word is beyond the code's
// correction capability (detected during decoding).
var ErrTooManyErrata = errors.New("rs: too many errors/erasures to correct")

// New returns a code with the given number of parity symbols (1..254).
func New(parity int) *Code {
	if parity < 1 || parity > 254 {
		panic(fmt.Sprintf("rs: invalid parity count %d", parity))
	}
	// g(x) = Π_{j=0}^{parity-1} (x - α^j), built highest-degree first.
	gen := []byte{1}
	for j := 0; j < parity; j++ {
		gen = gf256.PolyMul(gen, []byte{1, gf256.Exp(j)})
	}
	c := &Code{parity: parity, gen: gen, enc: make([]byte, 256*parity), syn: make([]byte, 256*parity)}
	var row [256]byte
	for k := 0; k < parity; k++ {
		gf256.MulTable(gen[k+1], &row)
		for f := 0; f < 256; f++ {
			c.enc[f*parity+k] = row[f]
		}
	}
	for j := 0; j < parity; j++ {
		gf256.MulTable(gf256.Exp(j), &row)
		copy(c.syn[j*256:(j+1)*256], row[:])
	}
	return c
}

// Parity returns the number of parity symbols.
func (c *Code) Parity() int { return c.parity }

// MaxData returns the maximum number of data symbols per codeword.
func (c *Code) MaxData() int { return 255 - c.parity }

// Generator returns a copy of the generator polynomial (highest-degree
// coefficient first, always monic).
func (c *Code) Generator() []byte { return append([]byte(nil), c.gen...) }

// Encode returns the parity symbols for data. len(data) must be in
// [1, MaxData]. The systematic codeword is data || parity.
func (c *Code) Encode(data []byte) []byte {
	par := make([]byte, c.parity)
	c.EncodeInto(par, data)
	return par
}

// EncodeInto computes the parity symbols for data into par, whose length
// must equal Parity() — Encode without the allocation, for callers that
// encode many codewords through a reused buffer. par is fully overwritten.
func (c *Code) EncodeInto(par, data []byte) {
	if len(data) == 0 || len(data) > c.MaxData() {
		panic(fmt.Sprintf("rs: data length %d out of range [1,%d]", len(data), c.MaxData()))
	}
	if len(par) != c.parity {
		panic(fmt.Sprintf("rs: parity buffer length %d, want %d", len(par), c.parity))
	}
	for i := range par {
		par[i] = 0
	}
	// Polynomial long division of data·x^parity by gen using an LFSR.
	// Each step folds the leading byte through that factor's precomputed
	// tap row, fusing the register shift with the feedback XOR — eight
	// taps per word op, the stragglers bytewise; the result is identical
	// to the log/exp formulation (TestEncodeTableDifferential).
	p := c.parity
	last := p - 1
	for _, d := range data {
		factor := d ^ par[0]
		if factor == 0 {
			copy(par, par[1:])
			par[last] = 0
			continue
		}
		row := c.enc[int(factor)*p : int(factor)*p+p]
		k := 0
		for ; k+8 <= last; k += 8 {
			// Reads par[k+1:k+9] (all still pre-step values: writes trail
			// reads by one byte) and writes par[k:k+8].
			x := binary.LittleEndian.Uint64(par[k+1:]) ^ binary.LittleEndian.Uint64(row[k:])
			binary.LittleEndian.PutUint64(par[k:], x)
		}
		for ; k < last; k++ {
			par[k] = par[k+1] ^ row[k]
		}
		par[last] = row[last]
	}
}

// EncodeFull returns data || parity as a fresh slice.
func (c *Code) EncodeFull(data []byte) []byte {
	out := make([]byte, 0, len(data)+c.parity)
	out = append(out, data...)
	return append(out, c.Encode(data)...)
}

// EncodeRowsInto is the group-wide systematic encode: data is a
// column-interleaved block — byte column j is the data word
// (data[0][j], …, data[nd-1][j]), with short rows zero-padded — and
// parity (Parity() rows, caller-sized to the longest data row) receives
// what EncodeInto would write for every column. Systematic RS encoding
// is linear in the data word, so each data row contributes its
// unit-vector parity coefficients scaled across the whole row — one
// 8-way-folded table pass per (data row, parity row) pair instead of an
// LFSR run per byte column (TestEncodeRowsInto pins the byte identity).
// parity is fully overwritten; bytes past a shorter parity row are
// simply not computed.
func (c *Code) EncodeRowsInto(parity, data [][]byte) {
	nd := len(data)
	if nd == 0 || nd > c.MaxData() {
		panic(fmt.Sprintf("rs: data row count %d out of range [1,%d]", nd, c.MaxData()))
	}
	if len(parity) != c.parity {
		panic(fmt.Sprintf("rs: parity row count %d, want %d", len(parity), c.parity))
	}
	for _, p := range parity {
		for i := range p {
			p[i] = 0
		}
	}
	unit := make([]byte, nd)
	coef := make([]byte, c.parity)
	for i, row := range data {
		if len(row) == 0 {
			continue
		}
		unit[i] = 1
		c.EncodeInto(coef, unit)
		unit[i] = 0
		for p, cp := range coef {
			gf256.MulAddSlice(parity[p], row, cp)
		}
	}
}

// RowsClean is the group-wide syndrome check: rows holds a
// column-interleaved block of codewords of length len(rows) — byte
// column j is the word (rows[0][j], …, rows[n-1][j]), rows shorter than
// rows[0] zero-padded — and the result reports whether every column's
// syndromes vanish (every column is a codeword). Each syndrome power is
// one accumulator row built by an 8-way-folded table pass per input row
// (a plain word-XOR pass for power 0), with early exit on the first
// dirty power — the group-wide mirror of syndromesInto
// (TestRowsCleanDifferential pins the equivalence).
func (c *Code) RowsClean(rows [][]byte) bool {
	n := len(rows)
	if n == 0 {
		return true
	}
	acc := make([]byte, len(rows[0]))
	var tab [256]byte
	for j := 0; j < c.parity; j++ {
		for i := range acc {
			acc[i] = 0
		}
		for i, r := range rows {
			e := gf256.Exp(j * (n - 1 - i))
			if e == 1 {
				gf256.XorSlice(acc, r)
				continue
			}
			gf256.MulTable(e, &tab)
			gf256.MulAddSliceTab(acc, r, &tab)
		}
		if !allZero(acc) {
			return false
		}
	}
	return true
}

// DecodeScratch holds the decoder's working buffers — syndromes, the
// erasure/errata locators, the evaluator and the errata position list —
// so a caller decoding many codewords (the per-frame inner-code loop, the
// per-group outer recovery) allocates nothing in steady state. A zero
// DecodeScratch is ready to use; it must not be shared between concurrent
// decodes.
type DecodeScratch struct {
	synd      []byte
	lambdaE   []byte
	fs        []byte
	lambda    []byte
	omega     []byte
	lambdaP   []byte
	positions []int
	// Berlekamp-Massey state; the three buffers rotate.
	cPoly, bPoly, tPoly []byte
}

// Decode corrects codeword (data || parity) in place. erasures lists known-bad
// byte positions (indices into codeword). It returns the number of errata
// corrected. If the word is uncorrectable the codeword is left unspecified and
// ErrTooManyErrata (possibly wrapped) is returned.
func (c *Code) Decode(codeword []byte, erasures []int) (int, error) {
	var s DecodeScratch
	return c.DecodeWith(&s, codeword, erasures)
}

// DecodeWith is Decode through reusable scratch buffers, for callers that
// decode many codewords in a loop. Results are identical to Decode.
func (c *Code) DecodeWith(s *DecodeScratch, codeword []byte, erasures []int) (int, error) {
	n := len(codeword)
	if n <= c.parity || n > 255 {
		return 0, fmt.Errorf("rs: codeword length %d out of range (%d,255]", n, c.parity)
	}
	if len(erasures) > c.parity {
		return 0, fmt.Errorf("%w: %d erasures > %d parity", ErrTooManyErrata, len(erasures), c.parity)
	}
	for _, p := range erasures {
		if p < 0 || p >= n {
			return 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, n)
		}
	}

	s.synd = growBytes(s.synd, c.parity)
	if !c.syndromesInto(s.synd, codeword) {
		return 0, nil // clean word; erasure hints were spurious
	}
	synd := s.synd

	t := c.parity
	e := len(erasures)

	// Erasure locator Λ_E(x) = Π (1 - X_k x), low-order first, built by
	// in-place multiplication with each (1 + X_k·x) factor.
	// The locator of position p is X = α^(n-1-p) (degree of that symbol).
	lambdaE := append(s.lambdaE[:0], 1)
	for _, p := range erasures {
		x := gf256.Exp(n - 1 - p)
		lambdaE = append(lambdaE, 0)
		for i := len(lambdaE) - 1; i >= 1; i-- {
			lambdaE[i] ^= gf256.Mul(x, lambdaE[i-1])
		}
	}
	s.lambdaE = lambdaE

	// Forney syndromes T = S·Λ_E mod x^t; entries e..t-1 form a pure
	// exponential sequence driven by the *error* locators only.
	s.fs = polyMulLowInto(s.fs, synd, lambdaE)
	fs := s.fs
	if len(fs) > t {
		fs = fs[:t]
	}
	u := fs[e:]

	var lambda []byte
	var degLambda int
	if e > 0 && allZero(u) {
		// Erasure-only fast path: no errors beyond the hinted positions,
		// so the errata locator is Λ_E itself and its roots are the known
		// erasure degrees — Berlekamp-Massey and the Chien search over all
		// n degrees are skipped. This is what the outer-code group
		// recovery always hits: every missing emblem position is known.
		lambda = lambdaE
		degLambda = e
		pos := append(s.positions[:0], erasures...)
		// Descending position order mirrors the Chien emission order
		// (ascending degree); duplicates collapse to one root, which the
		// root-count check below rejects exactly like the Chien search.
		for i := 1; i < len(pos); i++ {
			for j := i; j > 0 && pos[j] > pos[j-1]; j-- {
				pos[j], pos[j-1] = pos[j-1], pos[j]
			}
		}
		s.positions = pos
		distinct := 0
		for i, p := range pos {
			if i == 0 || p != pos[i-1] {
				distinct++
			}
		}
		if distinct != degLambda {
			return 0, fmt.Errorf("%w: locator degree %d but %d roots", ErrTooManyErrata, degLambda, distinct)
		}
	} else {
		// Berlekamp-Massey on u_i = T[e+i].
		gamma, L := berlekampMasseyWith(s, u)
		if 2*L > len(u) {
			return 0, fmt.Errorf("%w: locator degree %d exceeds capacity", ErrTooManyErrata, L)
		}

		// Errata locator and Chien search over all symbol degrees.
		s.lambda = polyMulLowInto(s.lambda, gamma, lambdaE)
		lambda = s.lambda
		degLambda = len(lambda) - 1
		for degLambda > 0 && lambda[degLambda] == 0 {
			degLambda--
		}
		lambda = lambda[:degLambda+1]

		s.positions = s.positions[:0]
		for d := 0; d < n; d++ {
			// Root at x = α^{-d} ⇔ symbol with degree d is in error.
			if polyEvalLow(lambda, gf256.Exp(-d)) == 0 {
				s.positions = append(s.positions, n-1-d)
			}
		}
		if len(s.positions) != degLambda {
			return 0, fmt.Errorf("%w: locator degree %d but %d roots", ErrTooManyErrata, degLambda, len(s.positions))
		}
	}
	positions := s.positions

	// Evaluator Ω = S·Λ mod x^t and Forney magnitudes
	// Y = X·Ω(X^{-1}) / Λ'(X^{-1}).
	s.omega = polyMulLowInto(s.omega, synd, lambda)
	omega := s.omega
	if len(omega) > t {
		omega = omega[:t]
	}
	s.lambdaP = formalDerivativeInto(s.lambdaP, lambda)
	lambdaPrime := s.lambdaP

	for _, p := range positions {
		d := n - 1 - p
		xInv := gf256.Exp(-d)
		denom := polyEvalLow(lambdaPrime, xInv)
		if denom == 0 {
			return 0, fmt.Errorf("%w: Forney denominator vanished", ErrTooManyErrata)
		}
		y := gf256.Mul(gf256.Exp(d), gf256.Div(polyEvalLow(omega, xInv), denom))
		codeword[p] ^= y
	}

	// Re-check: a decoding beyond capacity can "correct" to a wrong word
	// whose syndromes are nonzero only if something above went off-script.
	if c.syndromesInto(s.synd, codeword) {
		return 0, fmt.Errorf("%w: residual syndromes after correction", ErrTooManyErrata)
	}
	return len(positions), nil
}

// ErasureSolve expresses the erasure-only decode as an explicit linear
// solve: for codewords of length n with the given distinct erasure
// positions, it returns one coefficient row per erasure — coef[i][k] is
// the GF(2^8) factor of received symbol k in the reconstruction of
// position erasures[i], taking the erased symbols themselves as zero in
// the received word. The reconstruction Σ_k coef[i][k]·received[k] equals
// what Decode writes at erasures[i], because the erasure correction
// (syndromes → evaluator → Forney magnitudes) is linear in the received
// word. Callers that recover many codewords sharing one erasure pattern —
// the outer-code group recovery, which solves the same 3-of-20 pattern
// for every payload byte column — compute the solve once and apply it
// row-major instead of re-deriving it per codeword.
func (c *Code) ErasureSolve(n int, erasures []int) ([][]byte, error) {
	if n <= c.parity || n > 255 {
		return nil, fmt.Errorf("rs: codeword length %d out of range (%d,255]", n, c.parity)
	}
	e := len(erasures)
	if e == 0 || e > c.parity {
		return nil, fmt.Errorf("%w: %d erasures (want 1..%d)", ErrTooManyErrata, e, c.parity)
	}
	erased := make([]bool, n)
	for _, p := range erasures {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, n)
		}
		if erased[p] {
			return nil, fmt.Errorf("rs: duplicate erasure position %d", p)
		}
		erased[p] = true
	}
	t := c.parity

	// Erasure locator Λ_E and its formal derivative (see DecodeWith).
	lambdaE := []byte{1}
	for _, p := range erasures {
		x := gf256.Exp(n - 1 - p)
		lambdaE = append(lambdaE, 0)
		for i := len(lambdaE) - 1; i >= 1; i-- {
			lambdaE[i] ^= gf256.Mul(x, lambdaE[i-1])
		}
	}
	lambdaP := formalDerivativeInto(nil, lambdaE)

	// Per-erasure Forney denominators depend only on the pattern.
	xInv := make([]byte, e)
	denom := make([]byte, e)
	for i, p := range erasures {
		xInv[i] = gf256.Exp(-(n - 1 - p))
		d := polyEvalLow(lambdaP, xInv[i])
		if d == 0 {
			return nil, fmt.Errorf("%w: Forney denominator vanished", ErrTooManyErrata)
		}
		denom[i] = d
	}

	// Probe each non-erased position k with the unit word e_k: its
	// syndromes are S_j = α^{j·deg(k)}, and the Forney magnitude the
	// erasure correction would add at erasures[i] is the solve
	// coefficient coef[i][k].
	coef := make([][]byte, e)
	for i := range coef {
		coef[i] = make([]byte, n)
	}
	synd := make([]byte, t)
	var omega []byte
	for k := 0; k < n; k++ {
		if erased[k] {
			continue
		}
		dk := n - 1 - k
		for j := 0; j < t; j++ {
			synd[j] = gf256.Exp(j * dk)
		}
		omega = polyMulLowInto(omega, synd, lambdaE)
		if len(omega) > t {
			omega = omega[:t]
		}
		for i, p := range erasures {
			d := n - 1 - p
			coef[i][k] = gf256.Mul(gf256.Exp(d), gf256.Div(polyEvalLow(omega, xInv[i]), denom[i]))
		}
	}
	return coef, nil
}

// syndromesInto fills s (length Parity()) with S_j = C(α^j) for
// j = 0..parity-1 (low-order first) and reports whether any syndrome is
// nonzero. The loop is byte-major: each codeword byte advances every
// accumulator through its per-power table row, so the lookups are
// independent across j (full load parallelism) with no zero checks or
// log/exp arithmetic — the cost that dominates the clean-word decode.
func (c *Code) syndromesInto(s, codeword []byte) bool {
	for j := range s {
		s[j] = 0
	}
	syn := c.syn
	for _, cb := range codeword {
		for j := range s {
			s[j] = syn[j<<8|int(s[j])] ^ cb
		}
	}
	var dirty byte
	for _, v := range s {
		dirty |= v
	}
	return dirty != 0
}

func allZero(p []byte) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}

// growBytes returns b resized to n bytes, reallocating only when the
// capacity is short. Contents are unspecified.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// berlekampMasseyWith finds the minimal LFSR C (low-order first, C[0]=1)
// with Σ_i C_i·u_{r-i} = 0 for all r in [L, len(u)), returning C (backed
// by the scratch) and its degree L.
func berlekampMasseyWith(s *DecodeScratch, u []byte) ([]byte, int) {
	cPoly := append(s.cPoly[:0], 1)
	bPoly := append(s.bPoly[:0], 1)
	spare := s.tPoly[:0]
	L, m := 0, 1
	b := byte(1)
	for r := 0; r < len(u); r++ {
		delta := u[r]
		for i := 1; i <= L && i < len(cPoly); i++ {
			delta ^= gf256.Mul(cPoly[i], u[r-i])
		}
		switch {
		case delta == 0:
			m++
		case 2*L <= r:
			tPoly := append(spare[:0], cPoly...)
			cPoly = subScaledShiftInPlace(cPoly, bPoly, gf256.Div(delta, b), m)
			L = r + 1 - L
			spare = bPoly[:0]
			bPoly = tPoly
			b = delta
			m = 1
		default:
			cPoly = subScaledShiftInPlace(cPoly, bPoly, gf256.Div(delta, b), m)
			m++
		}
	}
	s.cPoly, s.bPoly, s.tPoly = cPoly, bPoly, spare
	return cPoly, L
}

// subScaledShiftInPlace computes c - coef·x^shift·b into c (low-order-first
// slices, which must not alias), growing c as needed.
func subScaledShiftInPlace(c, b []byte, coef byte, shift int) []byte {
	n := len(b) + shift
	if len(c) > n {
		n = len(c)
	}
	for len(c) < n {
		c = append(c, 0)
	}
	for i, bv := range b {
		c[i+shift] ^= gf256.Mul(bv, coef)
	}
	return c
}

// polyMulLowInto multiplies two low-order-first polynomials into dst
// (which must not alias a or b).
func polyMulLowInto(dst, a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return dst[:0]
	}
	n := len(a) + len(b) - 1
	dst = growBytes(dst, n)
	for i := range dst {
		dst[i] = 0
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			if bv != 0 {
				dst[i+j] ^= gf256.Mul(av, bv)
			}
		}
	}
	return dst
}

// polyEvalLow evaluates a low-order-first polynomial at x.
func polyEvalLow(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gf256.Mul(y, x) ^ p[i]
	}
	return y
}

// formalDerivativeInto returns p' for low-order-first p over GF(2^8) into
// dst (which must not alias p): the term c·x^k differentiates to
// (k mod 2)·c·x^{k-1}.
func formalDerivativeInto(dst, p []byte) []byte {
	if len(p) <= 1 {
		dst = growBytes(dst, 1)
		dst[0] = 0
		return dst
	}
	dst = growBytes(dst, len(p)-1)
	for i := range dst {
		dst[i] = 0
	}
	for i := 1; i < len(p); i += 2 {
		dst[i-1] = p[i]
	}
	return dst
}
