// Package rs implements Reed-Solomon coding over GF(2^8) with full
// errors-and-erasures decoding.
//
// MOCoder uses two instances of this code (§3.1 of the paper):
//
//   - the inner, intra-emblem code RS(255,223): blocks of 223 user bytes
//     carry 32 redundancy bytes and correct up to 16 in-block byte errors
//     (≈7.2 % of the user data), or up to 32 erasures;
//   - the outer, inter-emblem code RS(20,17): byte i of three parity
//     emblems protects byte i of seventeen data emblems, restoring a group
//     of 20 emblems in which any three are missing altogether.
//
// The decoder uses the Forney-syndrome formulation: erasures are folded
// into modified syndromes, Berlekamp-Massey finds the remaining error
// locator, Chien search locates errata and Forney's formula computes the
// magnitudes. Codes may be shortened (codeword length below 255).
package rs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"microlonys/internal/gf256"
)

// Code is a Reed-Solomon code with a fixed number of parity symbols.
// A Code is immutable after New and safe for concurrent use.
type Code struct {
	parity int
	gen    []byte // generator polynomial, highest-degree first, monic

	// enc holds one 256-entry multiplication table per non-leading
	// generator coefficient — enc[f*parity+k] = gen[k+1]·f — stored
	// factor-major, so one LFSR step against factor f is a contiguous
	// parity-byte row. The encoder's feedback becomes a lookup and an XOR
	// per tap (folded eight taps at a time) instead of log/exp arithmetic
	// with zero checks; both MOCoder codes (inner per-frame and outer
	// inter-frame) share this through their Code instances.
	enc []byte
}

// Standard code parameters used by MOCoder.
const (
	InnerData   = 223 // user bytes per inner block
	InnerParity = 32  // redundancy bytes per inner block
	InnerTotal  = InnerData + InnerParity

	OuterData   = 17 // data emblems per group
	OuterParity = 3  // parity emblems per group
	OuterTotal  = OuterData + OuterParity
)

// ErrTooManyErrata is returned when the received word is beyond the code's
// correction capability (detected during decoding).
var ErrTooManyErrata = errors.New("rs: too many errors/erasures to correct")

// New returns a code with the given number of parity symbols (1..254).
func New(parity int) *Code {
	if parity < 1 || parity > 254 {
		panic(fmt.Sprintf("rs: invalid parity count %d", parity))
	}
	// g(x) = Π_{j=0}^{parity-1} (x - α^j), built highest-degree first.
	gen := []byte{1}
	for j := 0; j < parity; j++ {
		gen = gf256.PolyMul(gen, []byte{1, gf256.Exp(j)})
	}
	c := &Code{parity: parity, gen: gen, enc: make([]byte, 256*parity)}
	var row [256]byte
	for k := 0; k < parity; k++ {
		gf256.MulTable(gen[k+1], &row)
		for f := 0; f < 256; f++ {
			c.enc[f*parity+k] = row[f]
		}
	}
	return c
}

// Parity returns the number of parity symbols.
func (c *Code) Parity() int { return c.parity }

// MaxData returns the maximum number of data symbols per codeword.
func (c *Code) MaxData() int { return 255 - c.parity }

// Generator returns a copy of the generator polynomial (highest-degree
// coefficient first, always monic).
func (c *Code) Generator() []byte { return append([]byte(nil), c.gen...) }

// Encode returns the parity symbols for data. len(data) must be in
// [1, MaxData]. The systematic codeword is data || parity.
func (c *Code) Encode(data []byte) []byte {
	par := make([]byte, c.parity)
	c.EncodeInto(par, data)
	return par
}

// EncodeInto computes the parity symbols for data into par, whose length
// must equal Parity() — Encode without the allocation, for callers that
// encode many codewords through a reused buffer. par is fully overwritten.
func (c *Code) EncodeInto(par, data []byte) {
	if len(data) == 0 || len(data) > c.MaxData() {
		panic(fmt.Sprintf("rs: data length %d out of range [1,%d]", len(data), c.MaxData()))
	}
	if len(par) != c.parity {
		panic(fmt.Sprintf("rs: parity buffer length %d, want %d", len(par), c.parity))
	}
	for i := range par {
		par[i] = 0
	}
	// Polynomial long division of data·x^parity by gen using an LFSR.
	// Each step folds the leading byte through that factor's precomputed
	// tap row, fusing the register shift with the feedback XOR — eight
	// taps per word op, the stragglers bytewise; the result is identical
	// to the log/exp formulation (TestEncodeTableDifferential).
	p := c.parity
	last := p - 1
	for _, d := range data {
		factor := d ^ par[0]
		if factor == 0 {
			copy(par, par[1:])
			par[last] = 0
			continue
		}
		row := c.enc[int(factor)*p : int(factor)*p+p]
		k := 0
		for ; k+8 <= last; k += 8 {
			// Reads par[k+1:k+9] (all still pre-step values: writes trail
			// reads by one byte) and writes par[k:k+8].
			x := binary.LittleEndian.Uint64(par[k+1:]) ^ binary.LittleEndian.Uint64(row[k:])
			binary.LittleEndian.PutUint64(par[k:], x)
		}
		for ; k < last; k++ {
			par[k] = par[k+1] ^ row[k]
		}
		par[last] = row[last]
	}
}

// EncodeFull returns data || parity as a fresh slice.
func (c *Code) EncodeFull(data []byte) []byte {
	out := make([]byte, 0, len(data)+c.parity)
	out = append(out, data...)
	return append(out, c.Encode(data)...)
}

// Decode corrects codeword (data || parity) in place. erasures lists known-bad
// byte positions (indices into codeword). It returns the number of errata
// corrected. If the word is uncorrectable the codeword is left unspecified and
// ErrTooManyErrata (possibly wrapped) is returned.
func (c *Code) Decode(codeword []byte, erasures []int) (int, error) {
	n := len(codeword)
	if n <= c.parity || n > 255 {
		return 0, fmt.Errorf("rs: codeword length %d out of range (%d,255]", n, c.parity)
	}
	if len(erasures) > c.parity {
		return 0, fmt.Errorf("%w: %d erasures > %d parity", ErrTooManyErrata, len(erasures), c.parity)
	}
	for _, p := range erasures {
		if p < 0 || p >= n {
			return 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, n)
		}
	}

	synd := c.syndromes(codeword)
	if allZero(synd) {
		return 0, nil // clean word; erasure hints were spurious
	}

	t := c.parity
	e := len(erasures)

	// Erasure locator Λ_E(x) = Π (1 - X_k x), low-order first.
	// The locator of position p is X = α^(n-1-p) (degree of that symbol).
	lambdaE := []byte{1}
	for _, p := range erasures {
		x := gf256.Exp(n - 1 - p)
		lambdaE = polyMulLow(lambdaE, []byte{1, x})
	}

	// Forney syndromes T = S·Λ_E mod x^t; entries e..t-1 form a pure
	// exponential sequence driven by the *error* locators only.
	fs := polyMulLow(synd, lambdaE)
	if len(fs) > t {
		fs = fs[:t]
	}

	// Berlekamp-Massey on u_i = T[e+i].
	u := fs[e:]
	gamma, L := berlekampMassey(u)
	if 2*L > len(u) {
		return 0, fmt.Errorf("%w: locator degree %d exceeds capacity", ErrTooManyErrata, L)
	}

	// Errata locator and Chien search over all symbol degrees.
	lambda := polyMulLow(gamma, lambdaE)
	degLambda := len(lambda) - 1
	for degLambda > 0 && lambda[degLambda] == 0 {
		degLambda--
	}
	lambda = lambda[:degLambda+1]

	var positions []int // positions in codeword
	for d := 0; d < n; d++ {
		// Root at x = α^{-d} ⇔ symbol with degree d is in error.
		if polyEvalLow(lambda, gf256.Exp(-d)) == 0 {
			positions = append(positions, n-1-d)
		}
	}
	if len(positions) != degLambda {
		return 0, fmt.Errorf("%w: locator degree %d but %d roots", ErrTooManyErrata, degLambda, len(positions))
	}

	// Evaluator Ω = S·Λ mod x^t and Forney magnitudes
	// Y = X·Ω(X^{-1}) / Λ'(X^{-1}).
	omega := polyMulLow(synd, lambda)
	if len(omega) > t {
		omega = omega[:t]
	}
	lambdaPrime := formalDerivativeLow(lambda)

	for _, p := range positions {
		d := n - 1 - p
		xInv := gf256.Exp(-d)
		denom := polyEvalLow(lambdaPrime, xInv)
		if denom == 0 {
			return 0, fmt.Errorf("%w: Forney denominator vanished", ErrTooManyErrata)
		}
		y := gf256.Mul(gf256.Exp(d), gf256.Div(polyEvalLow(omega, xInv), denom))
		codeword[p] ^= y
	}

	// Re-check: a decoding beyond capacity can "correct" to a wrong word
	// whose syndromes are nonzero only if something above went off-script.
	if !allZero(c.syndromes(codeword)) {
		return 0, fmt.Errorf("%w: residual syndromes after correction", ErrTooManyErrata)
	}
	return len(positions), nil
}

// syndromes returns S_j = C(α^j) for j = 0..parity-1 (low-order first).
func (c *Code) syndromes(codeword []byte) []byte {
	s := make([]byte, c.parity)
	for j := range s {
		s[j] = gf256.PolyEval(codeword, gf256.Exp(j))
	}
	return s
}

func allZero(p []byte) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}

// berlekampMassey finds the minimal LFSR C (low-order first, C[0]=1) with
// Σ_i C_i·u_{r-i} = 0 for all r in [L, len(u)), returning C and its degree L.
func berlekampMassey(u []byte) ([]byte, int) {
	cPoly := []byte{1}
	bPoly := []byte{1}
	L, m := 0, 1
	b := byte(1)
	for r := 0; r < len(u); r++ {
		delta := u[r]
		for i := 1; i <= L && i < len(cPoly); i++ {
			delta ^= gf256.Mul(cPoly[i], u[r-i])
		}
		switch {
		case delta == 0:
			m++
		case 2*L <= r:
			tPoly := append([]byte(nil), cPoly...)
			cPoly = subScaledShift(cPoly, bPoly, gf256.Div(delta, b), m)
			L = r + 1 - L
			bPoly = tPoly
			b = delta
			m = 1
		default:
			cPoly = subScaledShift(cPoly, bPoly, gf256.Div(delta, b), m)
			m++
		}
	}
	return cPoly, L
}

// subScaledShift returns c - coef·x^shift·b (low-order-first slices).
func subScaledShift(c, b []byte, coef byte, shift int) []byte {
	n := len(b) + shift
	if len(c) > n {
		n = len(c)
	}
	out := make([]byte, n)
	copy(out, c)
	for i, bv := range b {
		out[i+shift] ^= gf256.Mul(bv, coef)
	}
	return out
}

// polyMulLow multiplies two low-order-first polynomials.
func polyMulLow(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			if bv != 0 {
				out[i+j] ^= gf256.Mul(av, bv)
			}
		}
	}
	return out
}

// polyEvalLow evaluates a low-order-first polynomial at x.
func polyEvalLow(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gf256.Mul(y, x) ^ p[i]
	}
	return y
}

// formalDerivativeLow returns p' for low-order-first p over GF(2^8):
// the term c·x^k differentiates to (k mod 2)·c·x^{k-1}.
func formalDerivativeLow(p []byte) []byte {
	if len(p) <= 1 {
		return []byte{0}
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}
