package rs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"microlonys/internal/gf256"
)

// encodeRef is the log/exp reference formulation of the systematic RS
// encoder: polynomial long division of data·x^parity by the generator,
// with per-tap gf256.Mul calls. The table-driven Encode must match it
// exactly for every code and input.
func encodeRef(c *Code, data []byte) []byte {
	gen := c.Generator()
	par := make([]byte, c.Parity())
	for _, d := range data {
		factor := d ^ par[0]
		copy(par, par[1:])
		par[c.Parity()-1] = 0
		if factor != 0 {
			for i := 1; i < len(gen); i++ {
				par[i-1] ^= gf256.Mul(gen[i], factor)
			}
		}
	}
	return par
}

// TestEncodeTableDifferential pins the table-driven Encode to the log/exp
// reference across the MOCoder code shapes and a sweep of parities,
// data lengths and contents (including all-zero and single-nonzero data,
// which exercise the factor==0 shift path).
func TestEncodeTableDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	parities := []int{1, 2, OuterParity, 5, 16, InnerParity, 64, 254}
	for _, parity := range parities {
		c := New(parity)
		lens := []int{1, 2, parity, 100, c.MaxData()}
		for _, n := range lens {
			if n < 1 || n > c.MaxData() {
				continue
			}
			data := make([]byte, n)
			for trial := 0; trial < 8; trial++ {
				switch trial {
				case 0: // all zero
					for i := range data {
						data[i] = 0
					}
				case 1: // single nonzero byte
					for i := range data {
						data[i] = 0
					}
					data[rng.Intn(n)] = byte(1 + rng.Intn(255))
				default:
					rng.Read(data)
				}
				got := c.Encode(data)
				want := encodeRef(c, data)
				if !bytes.Equal(got, want) {
					t.Fatalf("parity=%d len=%d trial=%d: table %x, reference %x", parity, n, trial, got, want)
				}
			}
		}
	}
}

// TestEncodeIntoMatchesEncode pins buffer-reusing EncodeInto to Encode,
// including across consecutive calls on a dirty buffer.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := New(InnerParity)
	par := bytes.Repeat([]byte{0xFF}, c.Parity()) // dirty on purpose
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 1+rng.Intn(c.MaxData()))
		rng.Read(data)
		c.EncodeInto(par, data)
		if !bytes.Equal(par, c.Encode(data)) {
			t.Fatalf("trial %d: EncodeInto diverged from Encode", trial)
		}
	}
}

// TestEncodeIntoBadBuffer checks the buffer-length contract.
func TestEncodeIntoBadBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeInto with short buffer must panic")
		}
	}()
	New(4).EncodeInto(make([]byte, 3), []byte{1, 2, 3})
}

// ---- decode fast-path references ------------------------------------

// decodeRef is the pre-fast-path Decode formulation, kept verbatim: log/exp
// syndromes through gf256.PolyEval, allocating polynomial helpers, full
// Berlekamp-Massey + Chien search on every errata pattern. The table-driven,
// scratch-reusing DecodeWith (and its erasure-only fast path) must match its
// corrected bytes, return count and error for every input.
func decodeRef(c *Code, codeword []byte, erasures []int) (int, error) {
	n := len(codeword)
	if n <= c.parity || n > 255 {
		return 0, fmt.Errorf("rs: codeword length %d out of range (%d,255]", n, c.parity)
	}
	if len(erasures) > c.parity {
		return 0, fmt.Errorf("%w: %d erasures > %d parity", ErrTooManyErrata, len(erasures), c.parity)
	}
	for _, p := range erasures {
		if p < 0 || p >= n {
			return 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, n)
		}
	}

	synd := syndromesRef(c, codeword)
	if allZero(synd) {
		return 0, nil
	}

	t := c.parity
	e := len(erasures)

	lambdaE := []byte{1}
	for _, p := range erasures {
		x := gf256.Exp(n - 1 - p)
		lambdaE = polyMulLowRef(lambdaE, []byte{1, x})
	}

	fs := polyMulLowRef(synd, lambdaE)
	if len(fs) > t {
		fs = fs[:t]
	}

	u := fs[e:]
	gamma, L := berlekampMasseyRef(u)
	if 2*L > len(u) {
		return 0, fmt.Errorf("%w: locator degree %d exceeds capacity", ErrTooManyErrata, L)
	}

	lambda := polyMulLowRef(gamma, lambdaE)
	degLambda := len(lambda) - 1
	for degLambda > 0 && lambda[degLambda] == 0 {
		degLambda--
	}
	lambda = lambda[:degLambda+1]

	var positions []int
	for d := 0; d < n; d++ {
		if polyEvalLow(lambda, gf256.Exp(-d)) == 0 {
			positions = append(positions, n-1-d)
		}
	}
	if len(positions) != degLambda {
		return 0, fmt.Errorf("%w: locator degree %d but %d roots", ErrTooManyErrata, degLambda, len(positions))
	}

	omega := polyMulLowRef(synd, lambda)
	if len(omega) > t {
		omega = omega[:t]
	}
	lambdaPrime := formalDerivativeLowRef(lambda)

	for _, p := range positions {
		d := n - 1 - p
		xInv := gf256.Exp(-d)
		denom := polyEvalLow(lambdaPrime, xInv)
		if denom == 0 {
			return 0, fmt.Errorf("%w: Forney denominator vanished", ErrTooManyErrata)
		}
		y := gf256.Mul(gf256.Exp(d), gf256.Div(polyEvalLow(omega, xInv), denom))
		codeword[p] ^= y
	}

	if !allZero(syndromesRef(c, codeword)) {
		return 0, fmt.Errorf("%w: residual syndromes after correction", ErrTooManyErrata)
	}
	return len(positions), nil
}

func syndromesRef(c *Code, codeword []byte) []byte {
	s := make([]byte, c.parity)
	for j := range s {
		s[j] = gf256.PolyEval(codeword, gf256.Exp(j))
	}
	return s
}

func berlekampMasseyRef(u []byte) ([]byte, int) {
	cPoly := []byte{1}
	bPoly := []byte{1}
	L, m := 0, 1
	b := byte(1)
	for r := 0; r < len(u); r++ {
		delta := u[r]
		for i := 1; i <= L && i < len(cPoly); i++ {
			delta ^= gf256.Mul(cPoly[i], u[r-i])
		}
		switch {
		case delta == 0:
			m++
		case 2*L <= r:
			tPoly := append([]byte(nil), cPoly...)
			cPoly = subScaledShiftRef(cPoly, bPoly, gf256.Div(delta, b), m)
			L = r + 1 - L
			bPoly = tPoly
			b = delta
			m = 1
		default:
			cPoly = subScaledShiftRef(cPoly, bPoly, gf256.Div(delta, b), m)
			m++
		}
	}
	return cPoly, L
}

func subScaledShiftRef(c, b []byte, coef byte, shift int) []byte {
	n := len(b) + shift
	if len(c) > n {
		n = len(c)
	}
	out := make([]byte, n)
	copy(out, c)
	for i, bv := range b {
		out[i+shift] ^= gf256.Mul(bv, coef)
	}
	return out
}

func polyMulLowRef(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			if bv != 0 {
				out[i+j] ^= gf256.Mul(av, bv)
			}
		}
	}
	return out
}

func formalDerivativeLowRef(p []byte) []byte {
	if len(p) <= 1 {
		return []byte{0}
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}

// checkDecodeAgainstRef runs the fast decoder (through the shared scratch)
// and the reference on copies of the same word and compares bytes, count
// and error identity.
func checkDecodeAgainstRef(t *testing.T, c *Code, s *DecodeScratch, word []byte, erasures []int, label string) {
	t.Helper()
	got := append([]byte(nil), word...)
	want := append([]byte(nil), word...)
	gotN, gotErr := c.DecodeWith(s, got, erasures)
	wantN, wantErr := decodeRef(c, want, erasures)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: fast err %v, reference err %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: fast err %q, reference err %q", label, gotErr, wantErr)
		}
		if errors.Is(wantErr, ErrTooManyErrata) != errors.Is(gotErr, ErrTooManyErrata) {
			t.Fatalf("%s: error identity diverged", label)
		}
		// The codeword is contractually unspecified on error, but callers
		// retry errors-only on the same buffer (the inner-code erasure
		// fallback), so the fast path must leave the same bytes behind.
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: error-path codeword mutation differs from reference", label)
		}
		return
	}
	if gotN != wantN {
		t.Fatalf("%s: fast corrected %d, reference %d", label, gotN, wantN)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: fast decode bytes differ from reference", label)
	}
}

// TestDecodeDifferential pins the fast decode (table syndromes, clean-word
// early-out, erasure-only direct path, scratch reuse) to the reference
// formulation on clean, error-only, erasure-only and mixed words — plus
// spurious hints, duplicate erasures and beyond-capacity damage — across
// the MOCoder code shapes. One scratch is reused for every case on
// purpose: leftovers from a previous decode must never leak.
func TestDecodeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var s DecodeScratch
	for _, parity := range []int{OuterParity, 8, InnerParity} {
		c := New(parity)
		for _, dataLen := range []int{1, OuterData, 100, c.MaxData()} {
			for trial := 0; trial < 60; trial++ {
				data := make([]byte, dataLen)
				rng.Read(data)
				clean := c.EncodeFull(data)
				n := len(clean)

				// Clean word, with and without spurious erasure hints.
				checkDecodeAgainstRef(t, c, &s, clean, nil, fmt.Sprintf("p=%d len=%d clean", parity, dataLen))
				spurious := []int{rng.Intn(n)}
				checkDecodeAgainstRef(t, c, &s, clean, spurious, "clean+spurious hint")

				// Random errata mix within capacity: 2v + e <= parity.
				nera := rng.Intn(parity + 1)
				nerr := rng.Intn((parity-nera)/2 + 1)
				word := append([]byte(nil), clean...)
				pick := rng.Perm(n)[:nera+nerr]
				eras := append([]int(nil), pick[:nera]...)
				for _, p := range pick[nera:] { // errors must actually corrupt
					old := word[p]
					for word[p] == old {
						word[p] = byte(rng.Intn(256))
					}
				}
				for _, p := range eras { // erasures may or may not corrupt
					if rng.Intn(2) == 0 {
						word[p] ^= byte(1 + rng.Intn(255))
					}
				}
				checkDecodeAgainstRef(t, c, &s, word, eras, fmt.Sprintf("p=%d len=%d e=%d v=%d", parity, dataLen, nera, nerr))

				// Duplicate erasure positions (degenerate locator).
				if nera > 0 {
					dup := append(append([]int(nil), eras...), eras[0])
					if len(dup) <= parity {
						checkDecodeAgainstRef(t, c, &s, word, dup, "duplicate erasures")
					}
				}

				// Beyond capacity: more errors than t/2.
				over := append([]byte(nil), clean...)
				for _, p := range rng.Perm(n)[:parity/2+1+rng.Intn(3)] {
					old := over[p]
					for over[p] == old {
						over[p] = byte(rng.Intn(256))
					}
				}
				checkDecodeAgainstRef(t, c, &s, over, nil, "beyond capacity")
			}
		}
	}
}

// TestDecodeErasureFastPathExact pins the erasure-only direct path on the
// outer-code shape it exists for: up to 3 of 20 positions erased, exact
// recovery, reference-identical.
func TestDecodeErasureFastPathExact(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	c := New(OuterParity)
	var s DecodeScratch
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, OuterData)
		rng.Read(data)
		clean := c.EncodeFull(data)
		nera := 1 + rng.Intn(OuterParity)
		word := append([]byte(nil), clean...)
		eras := rng.Perm(len(word))[:nera]
		for _, p := range eras {
			word[p] = byte(rng.Intn(256)) // erased value is arbitrary
		}
		got := append([]byte(nil), word...)
		n, err := c.DecodeWith(&s, got, eras)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, clean) {
			t.Fatalf("trial %d: wrong recovery", trial)
		}
		checkDecodeAgainstRef(t, c, &s, word, eras, fmt.Sprintf("trial %d", trial))
		_ = n
	}
}

// TestDecodeWithZeroAllocSteadyState checks the scratch claim: after
// warm-up, DecodeWith allocates nothing for clean, errored and erased
// words.
func TestDecodeWithZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	c := New(InnerParity)
	data := make([]byte, InnerData)
	rng.Read(data)
	clean := c.EncodeFull(data)
	damaged := append([]byte(nil), clean...)
	corrupt(damaged, rng, 10)
	eras := rng.Perm(len(clean))[:8]
	erased := append([]byte(nil), clean...)
	for _, p := range eras {
		erased[p] ^= 0x5A
	}

	var s DecodeScratch
	buf := make([]byte, len(clean))
	warm := func() {
		copy(buf, clean)
		c.DecodeWith(&s, buf, nil)
		copy(buf, damaged)
		c.DecodeWith(&s, buf, nil)
		copy(buf, erased)
		c.DecodeWith(&s, buf, eras)
	}
	warm()
	if allocs := testing.AllocsPerRun(20, warm); allocs > 0 {
		t.Fatalf("steady-state DecodeWith allocates %.1f objects, want 0", allocs)
	}
}

// TestErasureSolveMatchesDecode pins the explicit linear solve to the
// in-place erasure decode: reconstructing erased symbols from the solve
// coefficients must give exactly the bytes Decode writes, for every code
// shape, codeword length and erasure pattern.
func TestErasureSolveMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for _, parity := range []int{OuterParity, 8, InnerParity} {
		c := New(parity)
		for _, dataLen := range []int{1, OuterData, 120, c.MaxData()} {
			for trial := 0; trial < 40; trial++ {
				data := make([]byte, dataLen)
				rng.Read(data)
				clean := c.EncodeFull(data)
				n := len(clean)
				e := 1 + rng.Intn(parity)
				eras := rng.Perm(n)[:e]

				coef, err := c.ErasureSolve(n, eras)
				if err != nil {
					t.Fatalf("p=%d len=%d e=%d: %v", parity, dataLen, e, err)
				}

				// Received word: erased positions zeroed (as the group
				// recovery presents them).
				word := append([]byte(nil), clean...)
				for _, p := range eras {
					word[p] = 0
				}
				want := append([]byte(nil), word...)
				if _, err := c.Decode(want, eras); err != nil {
					t.Fatalf("decode: %v", err)
				}
				for i, p := range eras {
					var y byte
					for k := 0; k < n; k++ {
						y ^= gf256.Mul(coef[i][k], word[k])
					}
					if y != want[p] {
						t.Fatalf("p=%d len=%d e=%d: solve[%d]=%#x, decode wrote %#x", parity, dataLen, e, p, y, want[p])
					}
					if y != clean[p] {
						t.Fatalf("p=%d len=%d e=%d: solve[%d]=%#x, true symbol %#x", parity, dataLen, e, p, y, clean[p])
					}
				}
			}
		}
	}
}

func TestErasureSolveBadArgs(t *testing.T) {
	c := New(4)
	if _, err := c.ErasureSolve(4, []int{0}); err == nil {
		t.Fatal("codeword length ≤ parity accepted")
	}
	if _, err := c.ErasureSolve(10, nil); err == nil {
		t.Fatal("empty erasure set accepted")
	}
	if _, err := c.ErasureSolve(10, []int{0, 1, 2, 3, 4}); err == nil {
		t.Fatal("more erasures than parity accepted")
	}
	if _, err := c.ErasureSolve(10, []int{11}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if _, err := c.ErasureSolve(10, []int{3, 3}); err == nil {
		t.Fatal("duplicate position accepted")
	}
}

func BenchmarkDecodeInnerClean(b *testing.B) {
	c := New(InnerParity)
	data := make([]byte, InnerData)
	rand.New(rand.NewSource(1)).Read(data)
	cw := c.EncodeFull(data)
	b.SetBytes(InnerData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeWithInnerClean(b *testing.B) {
	c := New(InnerParity)
	data := make([]byte, InnerData)
	rand.New(rand.NewSource(1)).Read(data)
	cw := c.EncodeFull(data)
	var s DecodeScratch
	b.SetBytes(InnerData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeWith(&s, cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeOuterErasures(b *testing.B) {
	c := New(OuterParity)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, OuterData)
	rng.Read(data)
	clean := c.EncodeFull(data)
	word := append([]byte(nil), clean...)
	eras := []int{2, 9, 17}
	for _, p := range eras {
		word[p] = 0
	}
	buf := make([]byte, len(word))
	var s DecodeScratch
	b.SetBytes(OuterData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, word)
		if _, err := c.DecodeWith(&s, buf, eras); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeIntoInner(b *testing.B) {
	c := New(InnerParity)
	data := make([]byte, InnerData)
	rand.New(rand.NewSource(1)).Read(data)
	par := make([]byte, c.Parity())
	b.SetBytes(InnerData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(par, data)
	}
}

func BenchmarkEncodeIntoOuter(b *testing.B) {
	c := New(OuterParity)
	data := make([]byte, OuterData)
	rand.New(rand.NewSource(1)).Read(data)
	par := make([]byte, c.Parity())
	b.SetBytes(OuterData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(par, data)
	}
}
