package rs

import (
	"bytes"
	"math/rand"
	"testing"

	"microlonys/internal/gf256"
)

// encodeRef is the log/exp reference formulation of the systematic RS
// encoder: polynomial long division of data·x^parity by the generator,
// with per-tap gf256.Mul calls. The table-driven Encode must match it
// exactly for every code and input.
func encodeRef(c *Code, data []byte) []byte {
	gen := c.Generator()
	par := make([]byte, c.Parity())
	for _, d := range data {
		factor := d ^ par[0]
		copy(par, par[1:])
		par[c.Parity()-1] = 0
		if factor != 0 {
			for i := 1; i < len(gen); i++ {
				par[i-1] ^= gf256.Mul(gen[i], factor)
			}
		}
	}
	return par
}

// TestEncodeTableDifferential pins the table-driven Encode to the log/exp
// reference across the MOCoder code shapes and a sweep of parities,
// data lengths and contents (including all-zero and single-nonzero data,
// which exercise the factor==0 shift path).
func TestEncodeTableDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	parities := []int{1, 2, OuterParity, 5, 16, InnerParity, 64, 254}
	for _, parity := range parities {
		c := New(parity)
		lens := []int{1, 2, parity, 100, c.MaxData()}
		for _, n := range lens {
			if n < 1 || n > c.MaxData() {
				continue
			}
			data := make([]byte, n)
			for trial := 0; trial < 8; trial++ {
				switch trial {
				case 0: // all zero
					for i := range data {
						data[i] = 0
					}
				case 1: // single nonzero byte
					for i := range data {
						data[i] = 0
					}
					data[rng.Intn(n)] = byte(1 + rng.Intn(255))
				default:
					rng.Read(data)
				}
				got := c.Encode(data)
				want := encodeRef(c, data)
				if !bytes.Equal(got, want) {
					t.Fatalf("parity=%d len=%d trial=%d: table %x, reference %x", parity, n, trial, got, want)
				}
			}
		}
	}
}

// TestEncodeIntoMatchesEncode pins buffer-reusing EncodeInto to Encode,
// including across consecutive calls on a dirty buffer.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := New(InnerParity)
	par := bytes.Repeat([]byte{0xFF}, c.Parity()) // dirty on purpose
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 1+rng.Intn(c.MaxData()))
		rng.Read(data)
		c.EncodeInto(par, data)
		if !bytes.Equal(par, c.Encode(data)) {
			t.Fatalf("trial %d: EncodeInto diverged from Encode", trial)
		}
	}
}

// TestEncodeIntoBadBuffer checks the buffer-length contract.
func TestEncodeIntoBadBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeInto with short buffer must panic")
		}
	}()
	New(4).EncodeInto(make([]byte, 3), []byte{1, 2, 3})
}

func BenchmarkEncodeIntoInner(b *testing.B) {
	c := New(InnerParity)
	data := make([]byte, InnerData)
	rand.New(rand.NewSource(1)).Read(data)
	par := make([]byte, c.Parity())
	b.SetBytes(InnerData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(par, data)
	}
}

func BenchmarkEncodeIntoOuter(b *testing.B) {
	c := New(OuterParity)
	data := make([]byte, OuterData)
	rand.New(rand.NewSource(1)).Read(data)
	par := make([]byte, c.Parity())
	b.SetBytes(OuterData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(par, data)
	}
}
