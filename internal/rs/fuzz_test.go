package rs

import (
	"bytes"
	"math/rand"
	"testing"

	"microlonys/internal/gf256"
)

// FuzzDecode drives random errata patterns through Decode and checks the
// code's two contracts:
//
//   - within capacity (2·errors + erasures ≤ parity) the decode must
//     succeed and return exactly the EncodeFull codeword it started from;
//   - beyond capacity the decode may fail — and must, whenever it claims
//     success, have produced a *valid codeword* (all syndromes zero),
//     never a silently wrong non-codeword. (Decoding to a different valid
//     codeword far beyond capacity is an inherent RS property.)
//
// The fuzz inputs select the code shape, data, and errata mix; positions
// and values derive from the seed so every interesting boundary (zero
// errata, parity-many erasures, just-beyond-capacity) is reachable.
func FuzzDecode(f *testing.F) {
	f.Add(int64(1), uint8(OuterParity), uint16(OuterData), uint8(0), uint8(3))
	f.Add(int64(2), uint8(InnerParity), uint16(InnerData), uint8(16), uint8(0))
	f.Add(int64(3), uint8(InnerParity), uint16(InnerData), uint8(4), uint8(24))
	f.Add(int64(4), uint8(8), uint16(100), uint8(0), uint8(0))
	f.Add(int64(5), uint8(8), uint16(1), uint8(5), uint8(1))   // beyond capacity
	f.Add(int64(6), uint8(2), uint16(200), uint8(1), uint8(2)) // beyond capacity
	f.Add(int64(7), uint8(InnerParity), uint16(223), uint8(0), uint8(32))

	f.Fuzz(func(t *testing.T, seed int64, parityRaw uint8, lenRaw uint16, nerrRaw, neraRaw uint8) {
		parity := 1 + int(parityRaw)%64
		c := New(parity)
		dataLen := 1 + int(lenRaw)%c.MaxData()
		n := dataLen + parity

		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, dataLen)
		rng.Read(data)
		clean := c.EncodeFull(data)

		nerr := int(nerrRaw) % (parity + 1)
		nera := int(neraRaw) % (parity + 1)
		if nerr+nera > n {
			nera = n - nerr
		}
		pick := rng.Perm(n)[:nerr+nera]
		word := append([]byte(nil), clean...)
		for _, p := range pick[:nerr] { // errors must actually corrupt
			old := word[p]
			for word[p] == old {
				word[p] = byte(rng.Intn(256))
			}
		}
		eras := pick[nerr:]
		for _, p := range eras { // erasures may or may not corrupt
			if rng.Intn(2) == 0 {
				word[p] ^= byte(1 + rng.Intn(255))
			}
		}

		var s DecodeScratch
		got := append([]byte(nil), word...)
		_, err := c.DecodeWith(&s, got, eras)

		within := 2*nerr+nera <= parity
		switch {
		case within:
			if err != nil {
				t.Fatalf("within capacity (p=%d v=%d e=%d): %v", parity, nerr, nera, err)
			}
			if !bytes.Equal(got, clean) {
				t.Fatalf("within capacity (p=%d v=%d e=%d): wrong word", parity, nerr, nera)
			}
		case err == nil:
			// Beyond capacity but claimed success: the result must at
			// least be a valid codeword — anything else is a silent
			// corruption Decode's residual-syndrome check exists to stop.
			for j := 0; j < parity; j++ {
				if gf256.PolyEval(got, gf256.Exp(j)) != 0 {
					t.Fatalf("beyond capacity (p=%d v=%d e=%d): accepted a non-codeword", parity, nerr, nera)
				}
			}
		}

		// Decode must agree with DecodeWith regardless of capacity.
		got2 := append([]byte(nil), word...)
		_, err2 := c.Decode(got2, eras)
		if (err == nil) != (err2 == nil) || !bytes.Equal(got, got2) {
			t.Fatalf("Decode and DecodeWith diverged (p=%d v=%d e=%d)", parity, nerr, nera)
		}
	})
}
