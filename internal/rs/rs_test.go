package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"microlonys/internal/gf256"
)

func TestGeneratorRoots(t *testing.T) {
	c := New(32)
	g := c.Generator()
	for j := 0; j < 32; j++ {
		if v := gf256.PolyEval(g, gf256.Exp(j)); v != 0 {
			t.Fatalf("g(α^%d) = %#x, want 0", j, v)
		}
	}
	if len(g) != 33 || g[0] != 1 {
		t.Fatalf("generator not monic degree-32: len=%d g0=%d", len(g), g[0])
	}
}

func TestEncodeProducesValidCodeword(t *testing.T) {
	c := New(16)
	data := []byte("universal layout emulation for long-term database archival")
	cw := c.EncodeFull(data)
	// A valid codeword evaluates to zero at every generator root.
	for j := 0; j < 16; j++ {
		if v := gf256.PolyEval(cw, gf256.Exp(j)); v != 0 {
			t.Fatalf("syndrome %d = %#x", j, v)
		}
	}
}

func TestDecodeClean(t *testing.T) {
	c := New(8)
	cw := c.EncodeFull([]byte{1, 2, 3, 4, 5})
	n, err := c.Decode(cw, nil)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
}

func corrupt(cw []byte, rng *rand.Rand, count int) []int {
	positions := rng.Perm(len(cw))[:count]
	for _, p := range positions {
		old := cw[p]
		for cw[p] == old {
			cw[p] = byte(rng.Intn(256))
		}
	}
	return positions
}

func TestErrorsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New(32)
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 223)
		rng.Read(data)
		cw := c.EncodeFull(data)
		want := append([]byte(nil), cw...)
		nerr := rng.Intn(17) // 0..16 = t/2
		corrupt(cw, rng, nerr)
		n, err := c.Decode(cw, nil)
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		if n != nerr {
			t.Fatalf("trial %d: corrected %d, injected %d", trial, n, nerr)
		}
		if !bytes.Equal(cw, want) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestErasuresOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(32)
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 223)
		rng.Read(data)
		cw := c.EncodeFull(data)
		want := append([]byte(nil), cw...)
		nera := rng.Intn(33) // up to 32 erasures
		pos := corrupt(cw, rng, nera)
		if _, err := c.Decode(cw, pos); err != nil {
			t.Fatalf("trial %d (%d erasures): %v", trial, nera, err)
		}
		if !bytes.Equal(cw, want) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestErrorsAndErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(32)
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, 100+rng.Intn(124))
		rng.Read(data)
		cw := c.EncodeFull(data)
		want := append([]byte(nil), cw...)
		// 2·errors + erasures ≤ 32
		nera := rng.Intn(33)
		nerr := rng.Intn((32-nera)/2 + 1)
		all := rng.Perm(len(cw))[:nera+nerr]
		eras := all[:nera]
		for _, p := range all {
			old := cw[p]
			for cw[p] == old {
				cw[p] = byte(rng.Intn(256))
			}
		}
		if _, err := c.Decode(cw, eras); err != nil {
			t.Fatalf("trial %d (e=%d v=%d n=%d): %v", trial, nera, nerr, len(cw), err)
		}
		if !bytes.Equal(cw, want) {
			t.Fatalf("trial %d: wrong correction (e=%d v=%d)", trial, nera, nerr)
		}
	}
}

func TestBeyondCapacityDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := New(16) // corrects 8 errors
	misdecodes := 0
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 100)
		rng.Read(data)
		cw := c.EncodeFull(data)
		want := append([]byte(nil), cw...)
		corrupt(cw, rng, 9+rng.Intn(8)) // 9..16 errors, beyond t/2
		_, err := c.Decode(cw, nil)
		if err == nil && !bytes.Equal(cw, want) {
			// Decoding to a *different* valid codeword is an inherent RS
			// property when far beyond capacity; it must stay rare.
			misdecodes++
		}
	}
	if misdecodes > 10 {
		t.Fatalf("silent misdecodes: %d/200", misdecodes)
	}
}

func TestTooManyErasures(t *testing.T) {
	c := New(4)
	cw := c.EncodeFull([]byte{1, 2, 3})
	_, err := c.Decode(cw, []int{0, 1, 2, 3, 4})
	if !errors.Is(err, ErrTooManyErrata) {
		t.Fatalf("want ErrTooManyErrata, got %v", err)
	}
}

func TestBadArgs(t *testing.T) {
	c := New(4)
	if _, err := c.Decode([]byte{1, 2}, nil); err == nil {
		t.Fatal("short codeword accepted")
	}
	cw := c.EncodeFull([]byte{9, 9, 9})
	if _, err := c.Decode(cw, []int{99}); err == nil {
		t.Fatal("out-of-range erasure accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with oversized data should panic")
		}
	}()
	c.Encode(make([]byte, 252))
}

func TestShortenedOuterCode(t *testing.T) {
	// The outer inter-emblem code: RS(20,17), erasure-decode any 3 of 20.
	rng := rand.New(rand.NewSource(5))
	c := New(OuterParity)
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, OuterData)
		rng.Read(data)
		cw := c.EncodeFull(data)
		want := append([]byte(nil), cw...)
		pos := corrupt(cw, rng, OuterParity)
		if _, err := c.Decode(cw, pos); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(cw, want) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestInnerCodeIntraEmblemClaim(t *testing.T) {
	// §3.1: the inner code corrects up to 16 errors = 16/223 ≈ 7.2 % of
	// user data within a block.
	c := New(InnerParity)
	if c.MaxData() != InnerData {
		t.Fatalf("MaxData = %d, want %d", c.MaxData(), InnerData)
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, InnerData)
	rng.Read(data)
	cw := c.EncodeFull(data)
	want := append([]byte(nil), cw...)
	corrupt(cw, rng, 16)
	if _, err := c.Decode(cw, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw, want) {
		t.Fatal("wrong correction at 16 errors")
	}
	frac := float64(16) / float64(InnerData)
	if frac < 0.071 || frac > 0.073 {
		t.Fatalf("correction fraction %.4f, want ≈0.072", frac)
	}
}

func TestQuickRandomRoundTrip(t *testing.T) {
	c := New(10)
	f := func(seed int64, sizeRaw uint8, nerrRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 11 + int(sizeRaw)%200
		nerr := int(nerrRaw) % 6 // ≤ 5 = t/2
		data := make([]byte, size)
		rng.Read(data)
		cw := c.EncodeFull(data)
		want := append([]byte(nil), cw...)
		corrupt(cw, rng, nerr)
		if _, err := c.Decode(cw, nil); err != nil {
			return false
		}
		return bytes.Equal(cw, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeInner(b *testing.B) {
	c := New(InnerParity)
	data := make([]byte, InnerData)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(InnerData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkDecodeInner16Errors(b *testing.B) {
	c := New(InnerParity)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, InnerData)
	rng.Read(data)
	clean := c.EncodeFull(data)
	dirty := append([]byte(nil), clean...)
	corrupt(dirty, rng, 16)
	buf := make([]byte, len(dirty))
	b.SetBytes(InnerData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, dirty)
		if _, err := c.Decode(buf, nil); err != nil {
			b.Fatal(err)
		}
	}
}
