package core

import (
	"bytes"
	"context"
	"testing"

	"microlonys/internal/mocoder"
	"microlonys/media"
	"microlonys/raster"
)

// TestEncodeScratchMatchesFresh pins the per-worker encode scratch to the
// fresh-per-frame reference: every frame the encode stage rasterizes
// through a reused mocoder.Encoder must be byte-identical to a fresh
// package-level mocoder.Encode of the same planned task.
func TestEncodeScratchMatchesFresh(t *testing.T) {
	prof := tinyProfile()
	opts := DefaultOptions(prof)
	capacity := mocoder.Capacity(prof.Layout)
	plan, err := splitStage(testPayload(6*capacity), opts, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.tasks) < 3 {
		t.Fatalf("want several frames, got %d", len(plan.tasks))
	}
	for _, workers := range []int{1, 3} {
		frames, err := encodeStage(context.Background(), plan.tasks, prof.Layout, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, task := range plan.tasks {
			want, err := mocoder.Encode(task.payload, task.hdr, prof.Layout)
			if err != nil {
				t.Fatal(err)
			}
			if !raster.Equal(frames[i], want) {
				t.Fatalf("workers=%d frame %d: scratch-encoded frame differs from fresh encode (%d pixels)",
					workers, i, raster.DiffCount(frames[i], want))
			}
		}
	}
}

// TestArchiveScratchMatchesFreshMedium pins the full archive against a
// medium written from fresh-per-frame encodes of the same plan: the
// written (and scanned-back) media must be byte-identical, proving the
// reused scratch never leaks state between frames of a real archive.
func TestArchiveScratchMatchesFreshMedium(t *testing.T) {
	prof := tinyProfile()
	opts := DefaultOptions(prof)
	opts.Workers = 2
	data := testPayload(5 * mocoder.Capacity(prof.Layout))

	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := splitStage(data, opts, mocoder.Capacity(prof.Layout))
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*raster.Gray, len(plan.tasks))
	for i, task := range plan.tasks {
		if frames[i], err = mocoder.Encode(task.payload, task.hdr, prof.Layout); err != nil {
			t.Fatal(err)
		}
	}
	ref := media.New(prof)
	if err := ref.Write(frames); err != nil {
		t.Fatal(err)
	}
	refArch := &Archived{Medium: ref}

	if !bytes.Equal(mediumFingerprint(t, arch), mediumFingerprint(t, refArch)) {
		t.Fatal("archive through reused scratch differs from fresh-per-frame medium")
	}
}
