package core

// The seed (pre-Volume, fully buffered) formulations of the archive split
// stage and the restore reassemble stage, kept verbatim as references: the
// streaming group planner and the group-incremental assembler are
// differentially pinned against them (volume_stream_test.go), and the
// older scratch/chunk tests keep exercising them under their seed names.

import (
	"context"
	"fmt"
	"sort"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/dbcoder"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/media"
	"microlonys/raster"
)

// framePlan is the output of the seed split stage.
type framePlan struct {
	tasks []frameTask
	man   Manifest
}

// splitStage is the seed buffered planner: DBCoder, chunking, outer-code
// groups and header fixup over whole in-memory streams.
func splitStage(data []byte, opts Options, capacity int) (*framePlan, error) {
	stream := data
	kind := emblem.KindRaw
	if opts.Compress {
		depth := opts.CompressDepth
		if depth <= 0 {
			depth = dbcoder.DefaultDepth
		}
		stream = dbcoder.CompressDepth(data, depth)
		kind = emblem.KindData
	}

	plan := &framePlan{man: Manifest{RawLen: len(data), StreamLen: len(stream)}}

	type section struct {
		kind   emblem.Kind
		stream []byte
	}
	sections := []section{{kind, stream}}
	if opts.Compress {
		_, _, prog, err := archivedPrograms()
		if err != nil {
			return nil, err
		}
		sys := bootstrap.MarshalDynaRisc(prog)
		plan.man.SystemLen = len(sys)
		sections = append(sections, section{emblem.KindSystem, sys})
	}

	groupID := 0
	frameIdx := 0
	for _, sec := range sections {
		chunks := splitChunks(sec.stream, capacity)
		for len(chunks) > 0 {
			g := opts.GroupData
			if g > len(chunks) {
				g = len(chunks)
			}
			group := chunks[:g]
			chunks = chunks[g:]

			padded := make([][]byte, g)
			for i, c := range group {
				p := make([]byte, capacity)
				copy(p, c)
				padded[i] = p
			}
			parity, err := mocoder.GroupParityPayloads(padded)
			if err != nil {
				return nil, fmt.Errorf("core: group parity: %w", err)
			}

			emit := func(payload []byte, k emblem.Kind, pos int) {
				plan.tasks = append(plan.tasks, frameTask{
					payload: payload,
					hdr: emblem.Header{
						Kind:        k,
						Index:       uint16(frameIdx),
						GroupID:     uint16(groupID),
						GroupPos:    uint8(pos),
						GroupData:   uint8(g),
						GroupParity: uint8(opts.GroupParity),
						TotalLen:    uint32(len(sec.stream)),
					},
				})
				frameIdx++
			}
			for i, c := range group {
				emit(c, sec.kind, i)
				if sec.kind == emblem.KindSystem {
					plan.man.SystemEmblems++
				} else {
					plan.man.DataEmblems++
				}
			}
			for i, p := range parity {
				emit(p, emblem.KindParity, g+i)
				plan.man.ParityEmblems++
			}
			groupID++
		}
	}
	plan.man.Groups = groupID
	plan.man.TotalFrames = len(plan.tasks)
	return plan, nil
}

// encodeStage is the seed whole-plan encode: every planned frame at once,
// with per-call scratch.
func encodeStage(ctx context.Context, tasks []frameTask, layout emblem.Layout, workers int) ([]*raster.Gray, error) {
	scratch := make([]encScratch, resolveWorkers(workers, len(tasks)))
	return encodeFrames(ctx, tasks, layout, workers, scratch)
}

// splitChunks cuts a stream into capacity-sized chunks (the last may be
// short). An empty stream still occupies one empty chunk, so every
// section produces at least one emblem carrying its TotalLen.
func splitChunks(stream []byte, capacity int) [][]byte {
	var out [][]byte
	for len(stream) > 0 {
		n := capacity
		if n > len(stream) {
			n = len(stream)
		}
		out = append(out, stream[:n])
		stream = stream[n:]
	}
	if len(out) == 0 {
		out = [][]byte{{}}
	}
	return out
}

// referenceDecode is the seed scan+decode stage over a single medium.
func referenceDecode(ctx context.Context, m *media.Medium, layout emblem.Layout, ro RestoreOptions, moProg *dynarisc.Program) ([]frameResult, error) {
	results := make([]frameResult, m.FrameCount())
	scratch := make([]emuScratch, resolveWorkers(ro.Workers, len(results)))
	err := forEachFrame(ctx, ro.Workers, len(results), func(_ context.Context, worker, i int) error {
		scan, err := m.ScanFrame(i)
		if err != nil {
			return fmt.Errorf("%w: scanning frame %d: %v", ErrRestore, i, err)
		}
		res := &results[i]
		res.scanned = true
		switch ro.Mode {
		case RestoreNative:
			var stats *mocoder.Stats
			res.payload, res.hdr, stats, err = mocoder.Decode(scan, layout)
			if stats != nil {
				res.corrected = stats.BytesCorrected
			}
		default:
			res.payload, res.hdr, err = decodeFrameEmulated(&scratch[worker], moProg, scan, layout, ro.Mode)
		}
		res.decoded = err == nil
		return nil
	})
	return results, err
}

// referenceReassemble is the seed buffered reassemble stage: group the
// decoded payloads by header GroupID, recover, concatenate, decompress.
func referenceReassemble(results []frameResult, capacity int, mode Mode, st *RestoreStats) ([]byte, *RestoreStats, error) {
	type groupState struct {
		members map[int][]byte
		data    int
		parity  int
		kind    emblem.Kind
		total   uint32
	}
	groups := map[int]*groupState{}
	decoded := 0
	for i := range results {
		fp := &results[i]
		if !fp.decoded {
			st.FramesFailed++
			continue
		}
		decoded++
		st.BytesCorrected += fp.corrected
		gid := int(fp.hdr.GroupID)
		g := groups[gid]
		if g == nil {
			g = &groupState{members: map[int][]byte{}}
			groups[gid] = g
		}
		padded := make([]byte, capacity)
		copy(padded, fp.payload)
		g.members[int(fp.hdr.GroupPos)] = padded
		if int(fp.hdr.GroupData) > 0 {
			g.data = int(fp.hdr.GroupData)
			g.parity = int(fp.hdr.GroupParity)
		}
		if fp.hdr.Kind != emblem.KindParity {
			g.kind = fp.hdr.Kind
			g.total = fp.hdr.TotalLen
		}
	}
	if decoded == 0 {
		return nil, st, fmt.Errorf("%w: no readable frames", ErrRestore)
	}

	gids := make([]int, 0, len(groups))
	for gid := range groups {
		gids = append(gids, gid)
	}
	sort.Ints(gids)

	streams := map[emblem.Kind][]byte{}
	totals := map[emblem.Kind]uint32{}
	for _, gid := range gids {
		g := groups[gid]
		if g.kind == 0 {
			return nil, st, fmt.Errorf("%w: group %d has no readable data emblems", ErrRestore, gid)
		}
		full := make([][]byte, g.data+g.parity)
		missing := 0
		for pos := range full {
			if p, ok := g.members[pos]; ok {
				full[pos] = p
			} else {
				missing++
			}
		}
		if missing > 0 {
			if err := mocoder.RecoverGroup(full); err != nil {
				return nil, st, fmt.Errorf("%w: group %d: %v", ErrRestore, gid, err)
			}
			st.GroupsRecovered++
		}
		for pos := 0; pos < g.data; pos++ {
			streams[g.kind] = append(streams[g.kind], full[pos]...)
		}
		totals[g.kind] = g.total
	}

	finish := func(k emblem.Kind) ([]byte, bool) {
		s, ok := streams[k]
		if !ok {
			return nil, false
		}
		t := int(totals[k])
		if t > len(s) {
			return nil, false
		}
		return s[:t], true
	}

	if raw, ok := finish(emblem.KindRaw); ok {
		return raw, st, nil
	}
	blob, ok := finish(emblem.KindData)
	if !ok {
		return nil, st, fmt.Errorf("%w: no data stream recovered", ErrRestore)
	}

	switch mode {
	case RestoreNative:
		out, err := dbcoder.Decompress(blob)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		return out, st, nil
	default:
		sys, ok := finish(emblem.KindSystem)
		if !ok {
			return nil, st, fmt.Errorf("%w: system emblems (DBDecode) missing", ErrRestore)
		}
		dbProg, err := bootstrap.UnmarshalDynaRisc(sys)
		if err != nil {
			return nil, st, fmt.Errorf("%w: system emblem payload: %v", ErrRestore, err)
		}
		out, err := runDBDecode(dbProg, blob, mode)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		if err := verifyDBDecodeOutput(blob, out); err != nil {
			return nil, st, err
		}
		return out, st, nil
	}
}

// referenceRestore is the seed end-to-end restore over a single medium:
// decode everything, then reassemble everything.
func referenceRestore(m *media.Medium, bootstrapText string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	layout := doc.Layout
	capacity := mocoder.Capacity(layout)
	st := &RestoreStats{Mode: ro.Mode}

	var moProg *dynarisc.Program
	if ro.Mode != RestoreNative {
		if moProg, err = doc.MODecodeProgram(); err != nil {
			return nil, st, fmt.Errorf("%w: bootstrap MODecode: %v", ErrRestore, err)
		}
	}

	results, err := referenceDecode(context.Background(), m, layout, ro, moProg)
	for i := range results {
		if results[i].scanned {
			st.FramesScanned++
		}
	}
	if err != nil {
		return nil, st, err
	}
	return referenceReassemble(results, capacity, ro.Mode, st)
}
