package core

// Differential and scenario tests for the multi-volume streaming
// pipeline: the streaming planner and group-incremental assembler are
// pinned byte-identical to the seed buffered formulations
// (reference_test.go), and the new carrier-loss scenarios — destroy an
// entire sheet, restore the rest — are asserted in both directions.

import (
	"bytes"
	"context"
	"errors"
	"io"
	mrand "math/rand"
	"reflect"
	"strings"
	"testing"

	"microlonys/internal/bootstrap"
	"microlonys/internal/dbcoder"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/media"
)

// collectPlan drives the streaming planner over data exactly as
// CreateArchiveStream does, collecting the emitted group plans instead of
// encoding them.
func collectPlan(t *testing.T, data []byte, opts Options) *framePlan {
	t.Helper()
	arch, plans, err := planOnly(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := &framePlan{man: arch}
	for _, gp := range plans {
		out.tasks = append(out.tasks, gp.tasks...)
	}
	return out
}

// planOnly runs CreateArchiveStream's section resolution and planner with
// a collecting emit callback (no rasterization).
func planOnly(data []byte, opts Options) (Manifest, []groupPlan, error) {
	if opts.GroupData <= 0 {
		opts.GroupData = mocoder.GroupData
	}
	if opts.GroupParity <= 0 {
		opts.GroupParity = mocoder.GroupParity
	}
	capacity := mocoder.Capacity(opts.Profile.Layout)
	p := &planner{opts: opts, capacity: capacity}
	var plans []groupPlan
	emit := func(gp groupPlan) error { plans = append(plans, gp); return nil }

	// Mirror CreateArchiveStream's section resolution.
	type section struct {
		kind  emblem.Kind
		r     io.Reader
		total int
	}
	var sections []section
	if opts.Compress {
		depth := opts.CompressDepth
		if depth <= 0 {
			depth = dbcoder.DefaultDepth
		}
		stream := dbcoder.CompressDepth(data, depth)
		p.man.RawLen = len(data)
		p.man.StreamLen = len(stream)
		_, _, prog, err := archivedPrograms()
		if err != nil {
			return Manifest{}, nil, err
		}
		sys := bootstrap.MarshalDynaRisc(prog)
		p.man.SystemLen = len(sys)
		sections = []section{
			{emblem.KindData, bytes.NewReader(stream), len(stream)},
			{emblem.KindSystem, bytes.NewReader(sys), len(sys)},
		}
	} else {
		p.man.RawLen = len(data)
		p.man.StreamLen = len(data)
		sections = []section{{emblem.KindRaw, bytes.NewReader(data), len(data)}}
	}
	for _, sec := range sections {
		if err := p.section(sec.kind, sec.r, sec.total, emit); err != nil {
			return Manifest{}, nil, err
		}
	}
	p.man.Groups = p.groupID
	p.man.TotalFrames = p.frameIdx
	return p.man, plans, nil
}

// TestPlannerMatchesReferenceSplit pins the streaming planner to the seed
// buffered split stage: identical frame payloads, headers, order and
// manifest tallies for every section shape — empty streams, exact
// capacity multiples, short tails, multi-group sections — compressed and
// raw.
func TestPlannerMatchesReferenceSplit(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	sizes := []int{0, 1, capacity - 1, capacity, capacity + 1,
		17 * capacity, 17*capacity + 1, 40*capacity + 123}
	for _, compress := range []bool{false, true} {
		for _, n := range sizes {
			opts := DefaultOptions(prof)
			opts.Compress = compress
			data := testPayload(n)

			want, err := splitStage(data, opts, capacity)
			if err != nil {
				t.Fatal(err)
			}
			got := collectPlan(t, data, opts)

			// The streaming manifest additionally reports Sheets; the
			// planner itself leaves it zero, so the comparison is direct.
			if got.man != want.man {
				t.Fatalf("compress=%v n=%d: manifest %+v != reference %+v", compress, n, got.man, want.man)
			}
			if len(got.tasks) != len(want.tasks) {
				t.Fatalf("compress=%v n=%d: %d tasks, reference %d", compress, n, len(got.tasks), len(want.tasks))
			}
			for i := range got.tasks {
				if got.tasks[i].hdr != want.tasks[i].hdr {
					t.Fatalf("compress=%v n=%d frame %d: header %+v != reference %+v",
						compress, n, i, got.tasks[i].hdr, want.tasks[i].hdr)
				}
				if !bytes.Equal(got.tasks[i].payload, want.tasks[i].payload) {
					t.Fatalf("compress=%v n=%d frame %d: payload differs", compress, n, i)
				}
			}
		}
	}
}

// TestArchiveStreamMatchesReferenceMedium pins the full streaming archive
// (single unbounded sheet) against a medium written from the seed split
// stage's plan: the written-and-scanned-back pixels must be byte
// identical at any worker count — the acceptance differential for
// ArchiveReader vs the seed Archive path.
func TestArchiveStreamMatchesReferenceMedium(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(19*capacity + 57) // two groups, short tail

	for _, compress := range []bool{false, true} {
		opts := DefaultOptions(prof)
		opts.Compress = compress

		plan, err := splitStage(data, opts, capacity)
		if err != nil {
			t.Fatal(err)
		}
		frames, err := encodeStage(context.Background(), plan.tasks, prof.Layout, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := media.New(prof)
		if err := ref.Write(frames); err != nil {
			t.Fatal(err)
		}
		want := mediumFingerprint(t, &Archived{Medium: ref})

		for _, workers := range []int{1, 3} {
			opts.Workers = workers
			arch, err := CreateArchiveStream(bytes.NewReader(data), opts)
			if err != nil {
				t.Fatal(err)
			}
			if arch.Medium == nil || arch.Volume.Sheets() != 1 {
				t.Fatalf("compress=%v: single unbounded sheet expected, got %d", compress, arch.Volume.Sheets())
			}
			if arch.Manifest.Sheets != 1 {
				t.Fatalf("manifest sheets = %d", arch.Manifest.Sheets)
			}
			if !bytes.Equal(mediumFingerprint(t, arch), want) {
				t.Fatalf("compress=%v workers=%d: streamed archive differs from reference medium", compress, workers)
			}
		}
	}
}

// TestArchiveReaderUnsizedStream pins the buffering fallback: a reader
// with neither Len nor Seek (a pipe) must archive identically to the
// in-memory path.
func TestArchiveReaderUnsizedStream(t *testing.T) {
	prof := tinyProfile()
	data := testPayload(4000)
	opts := DefaultOptions(prof)
	opts.Compress = false

	want, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CreateArchiveStream(io.MultiReader(bytes.NewReader(data)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest != want.Manifest {
		t.Fatalf("manifest %+v != %+v", got.Manifest, want.Manifest)
	}
	if !bytes.Equal(mediumFingerprint(t, got), mediumFingerprint(t, want)) {
		t.Fatal("unsized-stream archive differs from in-memory archive")
	}
}

// TestRestoreStreamMatchesReference pins the group-incremental restore to
// the seed buffered restore on a damaged single-sheet archive: identical
// bytes and identical headline stats, at several worker counts, native
// and emulated.
func TestRestoreStreamMatchesReference(t *testing.T) {
	data := testPayload(30000)
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Medium.Destroy(1); err != nil {
		t.Fatal(err)
	}
	if err := arch.Medium.Destroy(arch.Medium.FrameCount() - 2); err != nil {
		t.Fatal(err)
	}

	modes := []Mode{RestoreNative, RestoreDynaRisc}
	for _, mode := range modes {
		want, wantSt, err := referenceRestore(arch.Medium, arch.BootstrapText, RestoreOptions{Mode: mode, Workers: 1})
		if err != nil {
			t.Fatalf("mode %v: reference: %v", mode, err)
		}
		if !bytes.Equal(want, data) {
			t.Fatalf("mode %v: reference restore differs from input", mode)
		}
		for _, workers := range []int{1, 4} {
			got, st, err := RestoreWithOptions(arch.Medium, arch.BootstrapText, RestoreOptions{Mode: mode, Workers: workers})
			if err != nil {
				t.Fatalf("mode %v workers=%d: %v", mode, workers, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("mode %v workers=%d: streamed restore differs from reference", mode, workers)
			}
			if st.FramesScanned != wantSt.FramesScanned || st.FramesFailed != wantSt.FramesFailed ||
				st.GroupsRecovered != wantSt.GroupsRecovered || st.BytesCorrected != wantSt.BytesCorrected {
				t.Fatalf("mode %v workers=%d: stats %+v != reference %+v", mode, workers, st, wantSt)
			}
		}
		if testing.Short() && mode == RestoreNative {
			continue
		}
	}
}

// TestRestoreDamagedFramesMatchesReference pins the fast scan path on
// frames that are damaged but recoverable — heavy jitter and noise drive
// the inner code through corrections, clock-violation erasure hints and
// the errors-only retry — against the seed reference restore, bytes and
// stats, per worker count.
func TestRestoreDamagedFramesMatchesReference(t *testing.T) {
	data := testPayload(30000)
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	// Degrade a few frames short of destruction, and destroy one outright
	// so the group recovery runs too.
	for _, f := range []int{0, 3} {
		if err := arch.Medium.Damage(f, media.Distortions{RowJitterPx: 2.2, Noise: 14, DustSpecks: 25, Seed: int64(f) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := arch.Medium.Destroy(5); err != nil {
		t.Fatal(err)
	}

	want, wantSt, err := referenceRestore(arch.Medium, arch.BootstrapText, RestoreOptions{Mode: RestoreNative, Workers: 1})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !bytes.Equal(want, data) {
		t.Fatal("reference restore differs from input")
	}
	if wantSt.BytesCorrected == 0 {
		t.Fatal("damage produced no inner-code corrections; the scenario is too gentle to pin anything")
	}
	for _, workers := range []int{1, 4} {
		got, st, err := RestoreWithOptions(arch.Medium, arch.BootstrapText, RestoreOptions{Mode: RestoreNative, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: restore differs from reference", workers)
		}
		if st.FramesScanned != wantSt.FramesScanned || st.FramesFailed != wantSt.FramesFailed ||
			st.GroupsRecovered != wantSt.GroupsRecovered || st.BytesCorrected != wantSt.BytesCorrected {
			t.Fatalf("workers=%d: stats %+v != reference %+v", workers, st, wantSt)
		}
	}
}

// TestRestoreToMatchesRestore pins the two public ends against each other
// on a multi-sheet archive: RestoreTo's streamed bytes equal
// RestoreVolume's buffered bytes, and the stats — including the per-sheet
// and per-group reports — are deeply equal at every worker count.
func TestRestoreToMatchesRestore(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity) // 3 raw groups
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 3 {
		t.Fatalf("want >=3 sheets, got %d", arch.Volume.Sheets())
	}
	// Damage across sheets so recovery stats are non-trivial.
	if err := arch.Volume.Destroy(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := arch.Volume.Destroy(1, 5); err != nil {
		t.Fatal(err)
	}

	ref, refSt, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, data) {
		t.Fatal("buffered volume restore differs from input")
	}
	for _, workers := range []int{1, 2, 5, 0} {
		var buf bytes.Buffer
		st, err := RestoreToWriter(&buf, arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(buf.Bytes(), ref) {
			t.Fatalf("workers=%d: streamed bytes differ from buffered", workers)
		}
		if !reflect.DeepEqual(st, refSt) {
			t.Fatalf("workers=%d: stats %+v != serial %+v", workers, st, refSt)
		}
	}
}

// TestMultiSheetPlacement verifies the carrier contract end to end: with
// SheetFrames set, groups land whole on sheets (every frame of a group
// decodes to the same sheet) and the manifest counts the cut sheets.
func TestMultiSheetPlacement(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 23 // not a multiple of the 20-frame group: forces gaps
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Manifest.Sheets != arch.Volume.Sheets() {
		t.Fatalf("manifest sheets %d != volume %d", arch.Manifest.Sheets, arch.Volume.Sheets())
	}
	if arch.Volume.Sheets() < 3 {
		t.Fatalf("want >=3 sheets, got %d", arch.Volume.Sheets())
	}
	if arch.Medium != nil {
		t.Fatal("multi-sheet archive must not alias a single medium")
	}

	// Decode every frame's header and map groups to sheets.
	groupSheet := map[int]int{}
	for s := 0; s < arch.Volume.Sheets(); s++ {
		sheet, err := arch.Volume.Sheet(s)
		if err != nil {
			t.Fatal(err)
		}
		if opts.SheetFrames > 0 && sheet.FrameCount() > opts.SheetFrames {
			t.Fatalf("sheet %d holds %d frames, cap %d", s, sheet.FrameCount(), opts.SheetFrames)
		}
		for i := 0; i < sheet.FrameCount(); i++ {
			scan, err := sheet.ScanFrame(i)
			if err != nil {
				t.Fatal(err)
			}
			_, hdr, _, err := mocoder.Decode(scan, prof.Layout)
			if err != nil {
				t.Fatalf("sheet %d frame %d: %v", s, i, err)
			}
			gid := int(hdr.GroupID)
			if prev, ok := groupSheet[gid]; ok && prev != s {
				t.Fatalf("group %d straddles sheets %d and %d", gid, prev, s)
			}
			groupSheet[gid] = s
		}
	}
	if len(groupSheet) != arch.Manifest.Groups {
		t.Fatalf("saw %d groups, manifest says %d", len(groupSheet), arch.Manifest.Groups)
	}

	got, _, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-sheet restore differs from input")
	}
}

// TestSheetFramesBelowGroupRejected: a sheet must hold at least one whole
// group, or no group could ever be placed.
func TestSheetFramesBelowGroupRejected(t *testing.T) {
	opts := DefaultOptions(tinyProfile())
	opts.SheetFrames = 19 // 17+3 = 20 needed
	if _, err := CreateArchive(testPayload(1000), opts); err == nil {
		t.Fatal("sheet capacity below group size accepted")
	}
}

// TestDestroyedSheetIsFatal asserts the acceptance criterion's negative
// half: a destroyed sheet whose groups live only there is beyond the
// outer code — strict restore must fail with ErrRestore even though every
// other sheet is intact.
func TestDestroyedSheetIsFatal(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 3 {
		t.Fatalf("want >=3 sheets, got %d", arch.Volume.Sheets())
	}
	if err := arch.Volume.DestroySheet(1); err != nil {
		t.Fatal(err)
	}
	_, _, err = RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if !errors.Is(err, ErrRestore) {
		t.Fatalf("restore after carrier loss: got %v, want ErrRestore", err)
	}
}

// TestCrossSheetFrameLossRecovers asserts the positive half: spreading
// the same number of destroyed frames across sheets — at most three per
// group — restores bit-exactly, with the per-sheet stats recording each
// sheet's recovery.
func TestCrossSheetFrameLossRecovers(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Three frames per group on the full sheets, the parity limit.
	for _, loss := range []struct{ sheet, frame int }{
		{0, 0}, {0, 7}, {0, 19}, {1, 3}, {1, 11}, {1, 18}, {2, 4},
	} {
		if err := arch.Volume.Destroy(loss.sheet, loss.frame); err != nil {
			t.Fatal(err)
		}
	}
	got, st, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restore after cross-sheet loss differs from input")
	}
	if st.GroupsRecovered != 3 || st.GroupsLost != 0 {
		t.Fatalf("groups recovered = %d lost = %d, want 3 and 0", st.GroupsRecovered, st.GroupsLost)
	}
	for s, want := range []int{3, 3, 1} {
		if st.Sheets[s].FramesFailed != want || st.Sheets[s].GroupsRecovered != 1 {
			t.Fatalf("sheet %d report %+v, want %d failed frames and 1 recovered group", s, st.Sheets[s], want)
		}
	}
	if len(st.Groups) != 3 {
		t.Fatalf("group reports: %d, want 3", len(st.Groups))
	}
	for i, g := range st.Groups {
		if g.ID != i || g.Sheet != i || !g.Recovered || g.Lost {
			t.Fatalf("group report %d: %+v", i, g)
		}
	}
}

// TestPartialRestoreAfterSheetLoss is the new expressible scenario:
// destroy a whole carrier, restore the survivors. Partial mode zero-fills
// the lost sheet's bytes (offsets hold) and the stats name exactly what
// was lost, identically at any worker count.
func TestPartialRestoreAfterSheetLoss(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Volume.DestroySheet(1); err != nil {
		t.Fatal(err)
	}

	got, st, err := RestoreVolume(arch.Volume, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNative, Partial: true})
	if err != nil {
		t.Fatalf("partial restore: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("partial output %d bytes, want %d (zero-filled)", len(got), len(data))
	}
	// Sheet 0 carried group 0 = chunks [0,17); sheet 1 group 1 = chunks
	// [17,34); sheet 2 group 2 = the tail. Survivors bit-exact, the lost
	// group zeroed.
	lo, hi := 17*capacity, 34*capacity
	if !bytes.Equal(got[:lo], data[:lo]) || !bytes.Equal(got[hi:], data[hi:]) {
		t.Fatal("surviving groups not bit-exact at their offsets")
	}
	if !bytes.Equal(got[lo:hi], make([]byte, hi-lo)) {
		t.Fatal("lost group's bytes not zero-filled")
	}
	if st.GroupsLost != 1 || st.FramesLost != 20 || st.BytesLost != hi-lo {
		t.Fatalf("loss stats: %+v", st)
	}
	// The per-group report stays complete in group order, the lost
	// carrier's group included.
	if len(st.Groups) != arch.Manifest.Groups {
		t.Fatalf("group reports: %d, want %d", len(st.Groups), arch.Manifest.Groups)
	}
	if g := st.Groups[1]; g.ID != 1 || g.Sheet != 1 || !g.Lost || g.Recovered {
		t.Fatalf("lost group report: %+v", g)
	}
	sh := st.Sheets[1]
	if sh.FramesFailed != 20 || sh.FramesLost != 20 || sh.GroupsLost != 1 {
		t.Fatalf("sheet 1 report %+v", sh)
	}
	if st.Sheets[0].FramesFailed != 0 || st.Sheets[2].FramesFailed != 0 {
		t.Fatal("surviving sheets reported failures")
	}

	// Identical bytes and stats at any worker count.
	for _, workers := range []int{2, 0} {
		got2, st2, err := RestoreVolume(arch.Volume, arch.BootstrapText,
			RestoreOptions{Mode: RestoreNative, Partial: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got2, got) {
			t.Fatalf("workers=%d: partial bytes differ", workers)
		}
		if !reflect.DeepEqual(st2, st) {
			t.Fatalf("workers=%d: partial stats differ:\n%+v\n%+v", workers, st2, st)
		}
	}
}

// TestPartialRestoreLeadingSheetLoss pins the deferred zero-fill: when
// the FIRST carrier is the one destroyed, no section sink is open when
// the lost range surfaces, so the fill is owed until the next surviving
// group resolves the section — the survivors must still land at their
// archive offsets, with the lost group's bytes zeroed at the front.
func TestPartialRestoreLeadingSheetLoss(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Volume.DestroySheet(0); err != nil {
		t.Fatal(err)
	}
	got, st, err := RestoreVolume(arch.Volume, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNative, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("partial output %d bytes, want %d", len(got), len(data))
	}
	lo := 17 * capacity
	if !bytes.Equal(got[:lo], make([]byte, lo)) {
		t.Fatal("leading lost group not zero-filled")
	}
	if !bytes.Equal(got[lo:], data[lo:]) {
		t.Fatal("survivors shifted off their archive offsets")
	}
	if st.BytesLost != lo || st.GroupsLost != 1 {
		t.Fatalf("loss stats: %+v", st)
	}
}

// TestPartialRestoreParityOnlySurvivors: a group whose data frames are
// all gone but whose parity frames survive is identifiable yet
// unknowable (no data member carries the section kind); Partial mode
// must still zero-fill its data bytes so later groups keep their
// offsets.
func TestPartialRestoreParityOnlySurvivors(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 17; f++ { // group 1's data frames; parity 17..19 survive
		if err := arch.Volume.Destroy(1, f); err != nil {
			t.Fatal(err)
		}
	}
	got, st, err := RestoreVolume(arch.Volume, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNative, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 17*capacity, 34*capacity
	if len(got) != len(data) {
		t.Fatalf("partial output %d bytes, want %d", len(got), len(data))
	}
	if !bytes.Equal(got[:lo], data[:lo]) || !bytes.Equal(got[hi:], data[hi:]) {
		t.Fatal("survivors shifted off their archive offsets")
	}
	if !bytes.Equal(got[lo:hi], make([]byte, hi-lo)) {
		t.Fatal("kind-unknown lost group not zero-filled")
	}
	if st.GroupsLost != 1 {
		t.Fatalf("loss stats: %+v", st)
	}
	// Strict mode refuses the same archive (seed behavior).
	if _, _, err := RestoreVolume(arch.Volume, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNative}); !errors.Is(err, ErrRestore) {
		t.Fatalf("strict: got %v, want ErrRestore", err)
	}
}

// TestPlannerRejectsHeaderLimit: frame indices and group ids are uint16
// in the emblem header; the planner must refuse archives that would wrap.
func TestPlannerRejectsHeaderLimit(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	opts := DefaultOptions(prof)
	p := &planner{opts: opts, capacity: capacity}
	p.frameIdx = 65530 // 6 frames of headroom; the next 1+3 group fits, 17+3 does not
	err := p.section(emblem.KindRaw, bytes.NewReader(make([]byte, 17*capacity)), 17*capacity,
		func(groupPlan) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "65536") {
		t.Fatalf("planner accepted a wrapping frame index: %v", err)
	}
}

// TestRestoreEmptyMediumErrRestore is the regression test for restoring
// nothing: a zero-frame medium (and volume) must return ErrRestore, not
// panic or report empty success.
func TestRestoreEmptyMediumErrRestore(t *testing.T) {
	prof := tinyProfile()
	arch, err := CreateArchive(testPayload(100), DefaultOptions(prof))
	if err != nil {
		t.Fatal(err)
	}
	empty := media.New(prof)
	out, st, err := Restore(empty, arch.BootstrapText, RestoreNative)
	if !errors.Is(err, ErrRestore) {
		t.Fatalf("empty medium: got %v, want ErrRestore", err)
	}
	if out != nil {
		t.Fatal("empty medium returned data")
	}
	if st == nil || st.FramesScanned != 0 {
		t.Fatalf("empty medium stats: %+v", st)
	}

	vol := media.NewVolume(prof, 0)
	if _, _, err := RestoreVolume(vol, arch.BootstrapText, RestoreOptions{}); !errors.Is(err, ErrRestore) {
		t.Fatalf("empty volume: got %v, want ErrRestore", err)
	}
}

// TestMultiSheetEmulatedRestore runs the archived decoders over a
// multi-sheet compressed archive: the data group and the system group end
// up on different carriers and the emulated path reassembles across them.
func TestMultiSheetEmulatedRestore(t *testing.T) {
	prof := tinyProfile()
	// Incompressible data keeps the compressed stream over one group, so
	// the data and system sections are guaranteed to span sheets.
	data := make([]byte, 8000)
	mrand.New(mrand.NewSource(7)).Read(data)
	opts := DefaultOptions(prof)
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 2 {
		t.Fatalf("want the system emblems on their own sheet, got %d sheets", arch.Volume.Sheets())
	}
	got, st, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreDynaRisc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-sheet emulated restore differs")
	}
	if st.Mode != RestoreDynaRisc {
		t.Fatal("stats mode")
	}
}
