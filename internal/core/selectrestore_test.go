package core

// Selective-restore differentials: RestoreRange and RestoreTable must
// return exactly the corresponding slice of a full Restore — at workers
// 1, 2 and 8, through damage, Partial mode and index loss — while
// touching only the frames the query needs.

import (
	"bytes"
	"strings"
	"testing"

	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/tpch"
)

// indexedArchive archives a small TPC-H dump onto an indexed catalog
// volume of several sheets. Returns the archive and the dump bytes.
func indexedArchive(t *testing.T, compress bool) (*Archived, []byte) {
	t.Helper()
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	_, db := tpch.FitScaleFactor(40*capacity, 7, sqldump.Dump)
	data := sqldump.Dump(db)
	opts := DefaultOptions(prof)
	opts.Compress = compress
	opts.CompressDepth = 1
	opts.SheetFrames = 22 // 17+3 group + catalog + index slots
	opts.Catalog = true
	opts.Index = true
	opts.IndexBlockBytes = 4 * capacity
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 2 {
		t.Fatalf("want a multi-sheet volume, got %d sheets", arch.Volume.Sheets())
	}
	if arch.Manifest.IndexFrames != arch.Volume.Sheets() {
		t.Fatalf("manifest: %+v", arch.Manifest)
	}
	return arch, data
}

// checkRange asserts one indexed range query against the input slice at
// workers 1, 2 and 8, and that the frame accounting reconciles.
func checkRange(t *testing.T, arch *Archived, data []byte, off, length int) *RestoreStats {
	t.Helper()
	var last *RestoreStats
	for _, workers := range []int{1, 2, 8} {
		got, st, err := RestoreRange(arch.Volume, arch.BootstrapText, off, length,
			RestoreOptions{Mode: RestoreNative, Workers: workers})
		if err != nil {
			t.Fatalf("range %d:%d workers=%d: %v", off, length, workers, err)
		}
		if !bytes.Equal(got, data[off:off+length]) {
			t.Fatalf("range %d:%d workers=%d: bytes differ from input slice", off, length, workers)
		}
		if st.IndexFallbacks != 0 {
			t.Fatalf("range %d:%d workers=%d: unexpected fallback: %+v", off, length, workers, st)
		}
		if st.FramesScanned+st.FramesSkipped != arch.Volume.FrameCount() {
			t.Fatalf("range %d:%d workers=%d: %d scanned + %d skipped != %d frames",
				off, length, workers, st.FramesScanned, st.FramesSkipped, arch.Volume.FrameCount())
		}
		last = st
	}
	return last
}

// TestRestoreRangeMatchesFullSlice: every queried range of a compressed
// indexed volume is byte-identical to the same slice of the input —
// boundary ranges, block-crossing ranges, the whole archive and the
// empty range — and small queries skip most of the volume.
func TestRestoreRangeMatchesFullSlice(t *testing.T) {
	arch, data := indexedArchive(t, true)

	// The full restore is the reference the slices are checked against.
	full, _, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, data) {
		t.Fatal("full restore differs from input")
	}

	n := len(data)
	st := checkRange(t, arch, data, 0, 200)
	if st.FramesSkipped == 0 || st.GroupsDecoded == 0 {
		t.Fatalf("head query skipped nothing: %+v", st)
	}
	checkRange(t, arch, data, n-200, 200)
	checkRange(t, arch, data, n/3, n/3) // spans restart blocks
	checkRange(t, arch, data, 0, n)
	st = checkRange(t, arch, data, n/2, 0)
	if st.GroupsDecoded != 0 {
		t.Fatalf("empty query decoded groups: %+v", st)
	}

	// Beyond-the-archive ranges are rejected, not truncated.
	if _, _, err := RestoreRange(arch.Volume, arch.BootstrapText, n-10, 20,
		RestoreOptions{Mode: RestoreNative}); err == nil {
		t.Fatal("out-of-range query succeeded")
	}
}

// TestRestoreRangeRawArchive: the same differential on an uncompressed
// volume, where ranges map directly to group extents.
func TestRestoreRangeRawArchive(t *testing.T) {
	arch, data := indexedArchive(t, false)
	n := len(data)
	st := checkRange(t, arch, data, 0, 100)
	if st.FramesSkipped == 0 {
		t.Fatalf("head query skipped nothing: %+v", st)
	}
	checkRange(t, arch, data, n-100, 100)
	checkRange(t, arch, data, n/2, n/4)
	checkRange(t, arch, data, 0, n)
}

// TestRestoreTableMatchesFullSlice: table and column queries return
// exactly the extent sqldump locates in the input, and unknown names
// surface an error naming the miss.
func TestRestoreTableMatchesFullSlice(t *testing.T) {
	arch, data := indexedArchive(t, true)
	secs, err := sqldump.Sections(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) < 2 {
		t.Fatalf("want several tables, got %d", len(secs))
	}
	for _, sec := range secs[:2] {
		for _, workers := range []int{1, 2, 8} {
			got, st, err := RestoreTable(arch.Volume, arch.BootstrapText, sec.Table,
				RestoreOptions{Mode: RestoreNative, Workers: workers})
			if err != nil {
				t.Fatalf("table %q workers=%d: %v", sec.Table, workers, err)
			}
			if !bytes.Equal(got, data[sec.Off:sec.Off+sec.Len]) {
				t.Fatalf("table %q workers=%d: bytes differ from input extent", sec.Table, workers)
			}
			if st.IndexFallbacks != 0 || st.FramesScanned+st.FramesSkipped != arch.Volume.FrameCount() {
				t.Fatalf("table %q workers=%d: stats %+v", sec.Table, workers, st)
			}
		}
	}

	// A column restores its owning table's rows region (the minimal
	// contiguous cover).
	sec := secs[0]
	col := sec.Table + "." + sec.Columns[0]
	got, _, err := RestoreSection(arch.Volume, arch.BootstrapText, col, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[sec.Off:sec.Off+sec.Len]) {
		t.Fatalf("column %q differs from its table extent", col)
	}

	if _, _, err := RestoreTable(arch.Volume, arch.BootstrapText, "no_such_table",
		RestoreOptions{Mode: RestoreNative}); err == nil || !strings.Contains(err.Error(), "no_such_table") {
		t.Fatalf("unknown table: got %v", err)
	}
}

// TestRestoreRangeDamagedGroup: damage within the parity budget of the
// queried group recovers bit-exact; a sheet destroyed outside the query
// does not touch it at all — the selective query succeeds where the
// strict full restore fails.
func TestRestoreRangeDamagedGroup(t *testing.T) {
	arch, data := indexedArchive(t, true)

	// Three frames of the first payload group (locals 2..4 after the
	// catalog and index slots) — exactly the outer-code budget.
	for local := 2; local <= 4; local++ {
		if err := arch.Volume.Destroy(0, local); err != nil {
			t.Fatal(err)
		}
	}
	st := checkRange(t, arch, data, 0, 300)
	if st.GroupsRecovered == 0 {
		t.Fatalf("damaged group not recovered: %+v", st)
	}

	// Destroy the last sheet entirely: queries over the first group still
	// answer, while the strict full restore now fails.
	if err := arch.Volume.DestroySheet(arch.Volume.Sheets() - 1); err != nil {
		t.Fatal(err)
	}
	checkRange(t, arch, data, 0, 300)
	if _, _, err := RestoreVolume(arch.Volume, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNative}); err == nil {
		t.Fatal("strict full restore succeeded despite a destroyed sheet")
	}
}

// TestRestoreRangePartialLoss: a group lost beyond parity inside the
// query zero-fills exactly the bytes the full Partial restore zero-fills.
func TestRestoreRangePartialLoss(t *testing.T) {
	arch, data := indexedArchive(t, false) // raw: Partial holes stay local
	if err := arch.Volume.DestroySheet(0); err != nil {
		t.Fatal(err)
	}

	var fullBuf bytes.Buffer
	_, err := RestoreToWriter(&fullBuf, arch.Volume, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNative, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	full := fullBuf.Bytes()
	if len(full) != len(data) || bytes.Equal(full, data) {
		t.Fatalf("partial reference: len %d vs %d", len(full), len(data))
	}

	off, length := 0, 4000 // inside the lost sheet's groups
	for _, workers := range []int{1, 2, 8} {
		got, st, err := RestoreRange(arch.Volume, arch.BootstrapText, off, length,
			RestoreOptions{Mode: RestoreNative, Partial: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got, full[off:off+length]) {
			t.Fatalf("workers=%d: partial range differs from full partial slice", workers)
		}
		if st.GroupsLost == 0 || st.BytesLost == 0 {
			t.Fatalf("workers=%d: loss not reported: %+v", workers, st)
		}
	}

	// Without Partial the same query is a hard error.
	if _, _, err := RestoreRange(arch.Volume, arch.BootstrapText, off, length,
		RestoreOptions{Mode: RestoreNative}); err == nil {
		t.Fatal("strict query over a lost group succeeded")
	}
}

// TestRestoreRangeCorruptIndexFallsBack: with every index emblem gone —
// and no catalog replica to fall back on — a range query silently takes
// the full-restore path, counted in IndexFallbacks, and still returns
// the exact slice.
func TestRestoreRangeCorruptIndexFallsBack(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(30 * capacity)
	opts := DefaultOptions(prof)
	opts.CompressDepth = 1
	opts.SheetFrames = 21 // group + index slot, no catalog
	opts.Index = true
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < arch.Volume.Sheets(); s++ {
		if err := arch.Volume.Destroy(s, 0); err != nil { // the index slot
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got, st, err := RestoreRange(arch.Volume, arch.BootstrapText, 100, 500,
			RestoreOptions{Mode: RestoreNative, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got, data[100:600]) {
			t.Fatalf("workers=%d: fallback bytes differ", workers)
		}
		if st.IndexFallbacks == 0 {
			t.Fatalf("workers=%d: fallback not counted: %+v", workers, st)
		}
	}

	// A volume archived with no index at all falls back the same way.
	plain, err := CreateArchive(data, DefaultOptions(prof))
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := RestoreRange(plain.Volume, plain.BootstrapText, 0, 256,
		RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:256]) || st.IndexFallbacks == 0 {
		t.Fatalf("index-free fallback: %+v", st)
	}
}

// TestRestoreCatalogIndexReplica: with the index emblems destroyed but
// the catalogs alive, the query recovers the index from the catalog's
// compressed replica instead of falling back. Needs a frame large enough
// that the catalog's trim ladder keeps the replica.
func TestRestoreCatalogIndexReplica(t *testing.T) {
	l := emblem.Layout{DataW: 480, DataH: 360, PxPerModule: 2}
	prof := media.Profile{
		Name:   "replica-test",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
	capacity := mocoder.Capacity(l)
	data := testPayload(10 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.GroupData = 4
	opts.SheetFrames = 9 // one 4+3 group + catalog + index slots
	opts.Catalog = true
	opts.Index = true
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 2 {
		t.Fatalf("want a multi-sheet volume, got %d sheets", arch.Volume.Sheets())
	}
	for s := 0; s < arch.Volume.Sheets(); s++ {
		if err := arch.Volume.Destroy(s, 1); err != nil { // the index slot
			t.Fatal(err)
		}
	}
	got, st, err := RestoreRange(arch.Volume, arch.BootstrapText, 0, 300,
		RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:300]) {
		t.Fatal("replica-indexed bytes differ")
	}
	if st.IndexFallbacks != 0 || st.CatalogFrames == 0 {
		t.Fatalf("replica not used: %+v", st)
	}
}

// TestListIndexReportsSections: ListIndex reads the index from a single
// probe and reports the dump's tables without decoding any payload.
func TestListIndexReportsSections(t *testing.T) {
	arch, data := indexedArchive(t, true)
	x, st, err := ListIndex(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if x.RawLen != len(data) || x.ArchiveID != arch.Manifest.ArchiveID || !x.Compress {
		t.Fatalf("index header: %+v", x)
	}
	secs, err := sqldump.Sections(data)
	if err != nil {
		t.Fatal(err)
	}
	tables := x.Tables()
	if len(tables) != len(secs) {
		t.Fatalf("index lists %d tables, dump has %d", len(tables), len(secs))
	}
	if st.GroupsDecoded != 0 || st.FramesScanned+st.FramesSkipped != arch.Volume.FrameCount() {
		t.Fatalf("list stats: %+v", st)
	}
}

// TestRestoreIndexedVolumeFull: an indexed volume still restores in full
// bit-exact — the index emblems are consumed out-of-band — in both
// native and emulated modes (the DBS1 seekable stream decodes through
// the archived DBDecode program block by block).
func TestRestoreIndexedVolumeFull(t *testing.T) {
	arch, data := indexedArchive(t, true)
	for _, mode := range []Mode{RestoreNative, RestoreDynaRisc} {
		got, st, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: mode})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("mode %s: full restore differs", mode)
		}
		if st.IndexFrames != arch.Volume.Sheets() {
			t.Fatalf("mode %s: index frames not tallied: %+v", mode, st)
		}
	}
}

// TestRestoreRangeDynaRisc: a range query under emulation runs the
// archived DBDecode program over only the overlapping restart blocks and
// still matches the input slice.
func TestRestoreRangeDynaRisc(t *testing.T) {
	arch, data := indexedArchive(t, true)
	got, st, err := RestoreRange(arch.Volume, arch.BootstrapText, 64, 512,
		RestoreOptions{Mode: RestoreDynaRisc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[64:64+512]) {
		t.Fatal("emulated range differs from input slice")
	}
	if st.FramesSkipped == 0 {
		t.Fatalf("emulated query skipped nothing: %+v", st)
	}
}

// TestSalvageIndexedVolume: the disaster path over an indexed volume —
// a shuffled bag with no bootstrap text — consumes the index emblems
// out-of-band, reports them in the ledger and still salvages bit-exact.
func TestSalvageIndexedVolume(t *testing.T) {
	arch, data := indexedArchive(t, false)
	order := make([]int, arch.Volume.Sheets())
	for s := range order {
		order[s] = (s + 1) % len(order) // rotated, so ordering is earned
	}
	bag := bagOf(t, arch.Volume, order...)
	got, rep, err := Salvage(bag, SalvageOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("indexed-volume salvage differs from input")
	}
	if !rep.Complete || rep.IndexFrames != arch.Volume.Sheets() {
		t.Fatalf("ledger %+v", rep)
	}
}

// TestEngineRangeMatchesOneShot: the engine's scratch-reusing range
// queries repeat byte-identically and match the one-shot entry point.
func TestEngineRangeMatchesOneShot(t *testing.T) {
	arch, data := indexedArchive(t, true)
	want, _, err := RestoreRange(arch.Volume, arch.BootstrapText, 128, 1024,
		RestoreOptions{Mode: RestoreNative, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, data[128:128+1024]) {
		t.Fatal("one-shot range differs from input slice")
	}
	eng := NewEngine(2)
	for trial := 0; trial < 3; trial++ {
		got, _, err := eng.RestoreRange(arch.Volume, arch.BootstrapText, 128, 1024, RestoreOptions{Mode: RestoreNative})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: engine range differs from one-shot", trial)
		}
	}
}
