package core

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"microlonys/internal/dbcoder"
	"microlonys/internal/emblem"
	"microlonys/media"
)

// tinyProfile is a fast medium for pipeline tests.
func tinyProfile() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return media.Profile{
		Name:   "tiny-test",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: media.Distortions{
			RotationDeg: 0.15, BlurRadius: 1, Noise: 3, DustSpecks: 4,
		},
	}
}

func testPayload(n int) []byte {
	var b bytes.Buffer
	for i := 0; b.Len() < n; i++ {
		b.WriteString("INSERT INTO lineitem VALUES (")
		b.WriteByte(byte('0' + i%10))
		b.WriteString(", 155190, 7706, 17, 21168.23, '1996-03-13');\n")
	}
	return b.Bytes()[:n]
}

func TestArchiveRestoreNative(t *testing.T) {
	data := testPayload(30000)
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if arch.Manifest.DataEmblems == 0 || arch.Manifest.SystemEmblems == 0 ||
		arch.Manifest.ParityEmblems == 0 {
		t.Fatalf("manifest: %+v", arch.Manifest)
	}
	if arch.Medium.FrameCount() != arch.Manifest.TotalFrames {
		t.Fatal("frame count mismatch")
	}
	got, st, err := Restore(arch.Medium, arch.BootstrapText, RestoreNative)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored data differs")
	}
	if st.FramesFailed != 0 {
		t.Fatalf("frames failed: %d", st.FramesFailed)
	}
}

func TestArchiveRestoreWithDestroyedFrames(t *testing.T) {
	// §3.1: any three emblems per group of twenty may be lost.
	data := testPayload(200000) // enough for a sizeable group
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if arch.Manifest.Groups < 1 {
		t.Fatal("expected at least one group")
	}
	rng := rand.New(rand.NewSource(1))
	killed := 0
	for killed < 3 && killed < arch.Medium.FrameCount()-1 {
		i := rng.Intn(arch.Medium.FrameCount())
		if err := arch.Medium.Destroy(i); err == nil {
			killed++
		}
	}
	got, st, err := Restore(arch.Medium, arch.BootstrapText, RestoreNative)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored data differs after frame loss")
	}
	if st.GroupsRecovered == 0 && killed > 0 {
		t.Log("note: destroyed frames may have clustered in one group")
	}
	t.Logf("killed=%d recoveredGroups=%d framesFailed=%d", killed, st.GroupsRecovered, st.FramesFailed)
}

func TestRestoreFailsBeyondParity(t *testing.T) {
	data := testPayload(5000)
	opts := DefaultOptions(tinyProfile())
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy more frames of one group than parity covers. With a small
	// payload there is one data group: kill 4 frames.
	n := arch.Medium.FrameCount()
	kill := 4
	if kill > n {
		kill = n
	}
	for i := 0; i < kill; i++ {
		arch.Medium.Destroy(i)
	}
	if _, _, err := Restore(arch.Medium, arch.BootstrapText, RestoreNative); err == nil {
		t.Fatal("restore succeeded with group beyond parity")
	}
}

func TestArchiveRestoreRawMode(t *testing.T) {
	// Raw (uncompressed) archival — the paper's experiments stored the
	// 1.2MB dump directly and the 102KB logo image as raw payload.
	data := make([]byte, 20000)
	rand.New(rand.NewSource(2)).Read(data)
	opts := DefaultOptions(tinyProfile())
	opts.Compress = false
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Manifest.SystemEmblems != 0 {
		t.Fatal("raw mode should not write system emblems")
	}
	got, _, err := Restore(arch.Medium, arch.BootstrapText, RestoreNative)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("raw round trip failed")
	}
}

func TestArchiveRestoreDynaRisc(t *testing.T) {
	// The archived decoders do the work: MODecode reads the scans
	// (host-rectified per the Bootstrap), DBDecode (from the system
	// emblems) decompresses. The distorted profile exercises the full
	// preprocessing + emulated-decode path.
	data := testPayload(8000)
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Restore(arch.Medium, arch.BootstrapText, RestoreDynaRisc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("DynaRisc-mode restore differs")
	}
	if st.Mode != RestoreDynaRisc {
		t.Fatal("stats mode")
	}
}

func TestArchiveRestoreNested(t *testing.T) {
	if testing.Short() {
		t.Skip("nested emulation is slow; skipped in -short mode")
	}
	// The complete future-user path: VeRisc hosts DynaRisc hosts the
	// archived MODecode, driven purely from the Bootstrap text. Raw mode
	// keeps this to one group of four small frames — DBDecode under
	// nested emulation is covered separately (and without the pixel
	// volume) by dynprog's TestDBDecodeNested.
	l := emblem.Layout{DataW: 80, DataH: 64, PxPerModule: 2}
	p := media.Profile{
		Name:   "tiny-nested",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
	data := []byte(strings.Repeat("SELECT 42; ", 15))
	opts := DefaultOptions(p)
	opts.Compress = false
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Manifest.TotalFrames != 4 { // 1 data + 3 parity
		t.Fatalf("frames = %d, want 4", arch.Manifest.TotalFrames)
	}
	got, _, err := Restore(arch.Medium, arch.BootstrapText, RestoreNested)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("nested-mode restore differs")
	}
}

// TestEmulatedOutputVerification is the regression test for the silent
// CRC-mismatch pass-through: when the emulated DBDecode output differs
// from what the archive header records, reassembly must fail with
// ErrRestore instead of returning the wrong bytes.
func TestEmulatedOutputVerification(t *testing.T) {
	src := testPayload(5000)
	blob := dbcoder.Compress(src)

	if err := verifyDBDecodeOutput(blob, src); err != nil {
		t.Fatalf("true output rejected: %v", err)
	}

	wrong := append([]byte(nil), src...)
	wrong[100] ^= 0x01 // same length, different bytes — the swallowed case
	err := verifyDBDecodeOutput(blob, wrong)
	if !errors.Is(err, ErrRestore) {
		t.Fatalf("corrupt emulated output: got %v, want ErrRestore", err)
	}
	if err := verifyDBDecodeOutput(blob, src[:len(src)-3]); !errors.Is(err, ErrRestore) {
		t.Fatalf("truncated emulated output: got %v, want ErrRestore", err)
	}
}

func TestRestoreRejectsBadBootstrap(t *testing.T) {
	data := testPayload(1000)
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(arch.Medium, "garbage", RestoreNative); err == nil {
		t.Fatal("bad bootstrap accepted")
	}
}

func TestModeString(t *testing.T) {
	if RestoreNative.String() != "native" || RestoreNested.String() != "nested" ||
		RestoreDynaRisc.String() != "dynarisc" || Mode(9).String() == "" {
		t.Fatal("mode names")
	}
}

func TestSplitChunks(t *testing.T) {
	c := splitChunks(make([]byte, 10), 4)
	if len(c) != 3 || len(c[0]) != 4 || len(c[2]) != 2 {
		t.Fatalf("chunks %v", c)
	}
	if len(splitChunks(nil, 4)) != 1 {
		t.Fatal("empty stream should yield one empty chunk")
	}
}
