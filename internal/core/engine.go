package core

import (
	"bytes"
	"io"

	"microlonys/media"
)

// Engine is a reusable restore pipeline: it owns the per-worker scan
// scratch (full-resolution scan buffers, decoder tables, emulator state)
// that RestoreToWriter otherwise allocates per call, so a caller running
// many restores back to back — the damage-campaign harness runs thousands
// of trial restores per sweep — pays the buffers once per worker instead
// of once per restore. An Engine is not safe for concurrent use; create
// one per goroutine (the campaign runner keeps one per trial worker).
type Engine struct {
	workers int
	scratch []scanScratch
}

// NewEngine returns an engine whose restores run with the given worker
// count (same semantics as RestoreOptions.Workers: 0 = GOMAXPROCS,
// 1 = serial).
func NewEngine(workers int) *Engine {
	w := resolveWorkers(workers, 0) // no volume yet: scratch for the full pool
	return &Engine{workers: w, scratch: make([]scanScratch, w)}
}

// Workers returns the engine's resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// RestoreToWriter is core.RestoreToWriter through the engine's reused
// scratch. The options' Workers field is overridden by the engine's pool
// size; results are byte-identical to the one-shot entry points at any
// worker count.
func (e *Engine) RestoreToWriter(w io.Writer, v *media.Volume, bootstrapText string, ro RestoreOptions) (*RestoreStats, error) {
	ro.Workers = e.workers
	return restoreToWriter(w, v, bootstrapText, ro, e.scratch)
}

// RestoreVolume is core.RestoreVolume through the engine's reused scratch.
func (e *Engine) RestoreVolume(v *media.Volume, bootstrapText string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	var buf bytes.Buffer
	st, err := e.RestoreToWriter(&buf, v, bootstrapText, ro)
	if err != nil {
		return nil, st, err
	}
	return buf.Bytes(), st, nil
}
