package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"microlonys/media"
)

// partialArchive builds a raw (uncompressed) multi-sheet archive whose
// Partial-mode zero-fill accounting is meaningful: a hole in a raw stream
// is a measurable gap, not a decompression failure.
func partialArchive(t *testing.T, n int) (*Archived, []byte) {
	t.Helper()
	data := testPayload(n)
	opts := DefaultOptions(tinyProfile())
	opts.Compress = false
	opts.SheetFrames = 2 * (opts.GroupData + opts.GroupParity)
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	return arch, data
}

// TestPartialStatsAccounting drives randomized sheet and group loss
// through Partial restores and checks the RestoreStats ledger: totals
// reconcile with the per-sheet and per-group reports, zero-filled output
// only ever diverges from the corpus inside counted holes, and the whole
// ledger is identical at worker counts 1, 2 and 8.
func TestPartialStatsAccounting(t *testing.T) {
	arch, data := partialArchive(t, 24000)
	nFrames := arch.Volume.FrameCount()
	nSheets := arch.Volume.Sheets()
	if nSheets < 2 {
		t.Fatalf("archive spans %d sheet(s), test needs at least 2", nSheets)
	}

	cases := []struct {
		name    string
		damage  func(t *testing.T, v *media.Volume)
		minLost int  // minimum GroupsLost the damage guarantees
		lossy   bool // damage guarantees some counted loss (groups or frame runs)
		full    bool // damage stays within parity: output must be exact
	}{
		{
			name:   "clean",
			damage: func(t *testing.T, v *media.Volume) {},
			full:   true,
		},
		{
			name: "within-parity",
			damage: func(t *testing.T, v *media.Volume) {
				// One frame per sheet: comfortably inside every group's parity.
				for s := 0; s < v.Sheets(); s++ {
					if err := v.Destroy(s, 0); err != nil {
						t.Fatal(err)
					}
				}
			},
			full: true,
		},
		{
			name: "group-lost",
			damage: func(t *testing.T, v *media.Volume) {
				// A contiguous run longer than parity, confined to one
				// group (frames 0..19 of sheet 0 are the first group).
				for j := 0; j < DefaultOptions(tinyProfile()).GroupParity+2; j++ {
					if err := v.Destroy(0, j); err != nil {
						t.Fatal(err)
					}
				}
			},
			minLost: 1,
			lossy:   true,
		},
		{
			name: "random-scatter",
			damage: func(t *testing.T, v *media.Volume) {
				rng := rand.New(rand.NewSource(99))
				for _, i := range rng.Perm(nFrames)[:nFrames/4] {
					s, j, err := v.Locate(i)
					if err != nil {
						t.Fatal(err)
					}
					if err := v.Destroy(s, j); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			name: "sheet-destroyed",
			damage: func(t *testing.T, v *media.Volume) {
				if err := v.DestroySheet(v.Sheets() - 1); err != nil {
					t.Fatal(err)
				}
			},
			lossy: true, // a headerless sheet is an unidentifiable run, not a named group
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vol := arch.Volume.Clone()
			tc.damage(t, vol)

			var ref *RestoreStats
			var refOut []byte
			for _, workers := range []int{1, 2, 8} {
				var out bytes.Buffer
				st, err := RestoreToWriter(&out, vol, arch.BootstrapText,
					RestoreOptions{Mode: RestoreNative, Partial: true, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}

				if ref == nil {
					ref, refOut = st, append([]byte(nil), out.Bytes()...)
					checkLedger(t, st, refOut, data, tc.minLost, tc.lossy, tc.full)
					continue
				}
				if !reflect.DeepEqual(st, ref) {
					t.Fatalf("workers=%d: stats differ from workers=1\n got %+v\nwant %+v", workers, st, ref)
				}
				if !bytes.Equal(out.Bytes(), refOut) {
					t.Fatalf("workers=%d: output differs from workers=1", workers)
				}
			}
		})
	}
}

// checkLedger asserts the Partial accounting invariants on one restore.
func checkLedger(t *testing.T, st *RestoreStats, got, want []byte, minLost int, lossy, full bool) {
	t.Helper()

	if len(got) != len(want) {
		t.Fatalf("output %d bytes, corpus %d: Partial mode must preserve length", len(got), len(want))
	}

	// Totals reconcile with the per-sheet ledger.
	var framesFailed, groupsLost int
	for _, sh := range st.Sheets {
		framesFailed += sh.FramesFailed
		groupsLost += sh.GroupsLost
	}
	if framesFailed != st.FramesFailed {
		t.Fatalf("sheet FramesFailed sum %d != total %d", framesFailed, st.FramesFailed)
	}
	if groupsLost != st.GroupsLost {
		t.Fatalf("sheet GroupsLost sum %d != total %d", groupsLost, st.GroupsLost)
	}

	// ... and with the per-group ledger.
	lostGroups := 0
	for _, g := range st.Groups {
		if g.Lost {
			lostGroups++
		}
	}
	if lostGroups != st.GroupsLost {
		t.Fatalf("group reports mark %d lost, total says %d", lostGroups, st.GroupsLost)
	}

	// Output only diverges inside counted, zero-filled holes.
	diverged := 0
	for i := range got {
		if got[i] != want[i] {
			if got[i] != 0 {
				t.Fatalf("output byte %d is %#x, corpus %#x: divergence outside a zero-filled hole", i, got[i], want[i])
			}
			diverged++
		}
	}
	if diverged > st.BytesLost {
		t.Fatalf("%d bytes diverged but only %d counted as lost", diverged, st.BytesLost)
	}

	if st.GroupsLost < minLost {
		t.Fatalf("GroupsLost = %d, damage guarantees at least %d", st.GroupsLost, minLost)
	}
	if lossy && st.GroupsLost+st.FramesLost == 0 {
		t.Fatalf("damage guarantees counted loss, stats show none: %+v", st)
	}
	if lossy && st.BytesLost == 0 {
		t.Fatalf("counted loss with no bytes lost: %+v", st)
	}
	if full {
		if diverged != 0 || st.GroupsLost != 0 || st.BytesLost != 0 || st.FramesLost != 0 {
			t.Fatalf("within-parity damage should restore exactly: diverged=%d stats=%+v", diverged, st)
		}
	} else if st.GroupsLost > 0 && st.BytesLost == 0 {
		t.Fatal("lost groups but no bytes counted lost")
	}
}
