// Package core implements the ULE pipeline of Micr'Olonys (§3.3 of the
// paper): the seven archival steps that turn a textual database archive
// into emblems, system emblems and a Bootstrap document on simulated
// analog media, and the six restoration steps that bring the data back —
// optionally executing the archived decoders under emulation exactly as a
// future user would.
package core

import (
	"errors"
	"fmt"
	"sort"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/dbcoder"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/nested"
	"microlonys/media"
	"microlonys/raster"
)

// Mode selects the restoration execution path.
type Mode int

const (
	// RestoreNative runs the Go reference decoders (fast; the archivist's
	// verification path).
	RestoreNative Mode = iota
	// RestoreDynaRisc executes the archived MODecode/DBDecode instruction
	// streams on the DynaRisc reference CPU — the decoders that were
	// actually stored on the medium do the work.
	RestoreDynaRisc
	// RestoreNested additionally hosts DynaRisc inside the VeRisc
	// emulator: the full future-user path (slow; use small archives).
	RestoreNested
)

func (m Mode) String() string {
	switch m {
	case RestoreNative:
		return "native"
	case RestoreDynaRisc:
		return "dynarisc"
	case RestoreNested:
		return "nested"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures archival.
type Options struct {
	Profile     media.Profile
	GroupData   int  // data emblems per outer-code group (default 17)
	GroupParity int  // parity emblems per group (default 3)
	Compress    bool // run DBCoder (default); false archives raw payloads
	Depth       int  // DBCoder match-finder depth (0 = default)
}

// DefaultOptions returns the paper's configuration for a profile.
func DefaultOptions(p media.Profile) Options {
	return Options{
		Profile:     p,
		GroupData:   mocoder.GroupData,
		GroupParity: mocoder.GroupParity,
		Compress:    true,
	}
}

// Manifest records what was written.
type Manifest struct {
	RawLen        int // original archive bytes
	StreamLen     int // bytes after DBCoder (== RawLen when !Compress)
	SystemLen     int // bytes of the archived DBDecode program
	DataEmblems   int
	SystemEmblems int
	ParityEmblems int
	TotalFrames   int
	Groups        int
}

// Archived is the result of CreateArchive.
type Archived struct {
	Medium        *media.Medium
	Bootstrap     *bootstrap.Document
	BootstrapText string
	Manifest      Manifest
	Options       Options
}

// CreateArchive runs the archival pipeline (Figure 2a): db_dump output in,
// written medium + Bootstrap out.
func CreateArchive(data []byte, opts Options) (*Archived, error) {
	if opts.GroupData <= 0 {
		opts.GroupData = mocoder.GroupData
	}
	if opts.GroupParity <= 0 {
		opts.GroupParity = mocoder.GroupParity
	}
	if opts.GroupData > mocoder.GroupData || opts.GroupParity != mocoder.GroupParity {
		return nil, fmt.Errorf("core: unsupported group shape %d+%d", opts.GroupData, opts.GroupParity)
	}
	layout := opts.Profile.Layout
	capacity := mocoder.Capacity(layout)
	if capacity <= 0 {
		return nil, fmt.Errorf("core: profile %q has zero emblem capacity", opts.Profile.Name)
	}

	// Step 2: DBCoder.
	stream := data
	kind := emblem.KindRaw
	if opts.Compress {
		depth := opts.Depth
		if depth <= 0 {
			depth = dbcoder.DefaultDepth
		}
		stream = dbcoder.CompressDepth(data, depth)
		kind = emblem.KindData
	}

	man := Manifest{RawLen: len(data), StreamLen: len(stream)}

	// Steps 3+5: emblems for the data stream, then for the archived
	// DBDecode instruction stream (system emblems).
	type section struct {
		kind   emblem.Kind
		stream []byte
	}
	sections := []section{{kind, stream}}
	if opts.Compress {
		prog, err := dynprog.DBDecode()
		if err != nil {
			return nil, fmt.Errorf("core: assembling DBDecode: %w", err)
		}
		sys := bootstrap.MarshalDynaRisc(prog)
		man.SystemLen = len(sys)
		sections = append(sections, section{emblem.KindSystem, sys})
	}

	var frames []*raster.Gray
	groupID := 0
	frameIdx := 0
	for _, sec := range sections {
		chunks := splitChunks(sec.stream, capacity)
		for len(chunks) > 0 {
			g := opts.GroupData
			if g > len(chunks) {
				g = len(chunks)
			}
			group := chunks[:g]
			chunks = chunks[g:]

			padded := make([][]byte, g)
			for i, c := range group {
				p := make([]byte, capacity)
				copy(p, c)
				padded[i] = p
			}
			parity, err := mocoder.GroupParityPayloads(padded)
			if err != nil {
				return nil, fmt.Errorf("core: group parity: %w", err)
			}

			emit := func(payload []byte, k emblem.Kind, pos int) error {
				hdr := emblem.Header{
					Kind:        k,
					Index:       uint16(frameIdx),
					GroupID:     uint16(groupID),
					GroupPos:    uint8(pos),
					GroupData:   uint8(g),
					GroupParity: uint8(opts.GroupParity),
					TotalLen:    uint32(len(sec.stream)),
				}
				img, err := mocoder.Encode(payload, hdr, layout)
				if err != nil {
					return err
				}
				frames = append(frames, img)
				frameIdx++
				return nil
			}
			for i, c := range group {
				if err := emit(c, sec.kind, i); err != nil {
					return nil, fmt.Errorf("core: encoding emblem: %w", err)
				}
				if sec.kind == emblem.KindSystem {
					man.SystemEmblems++
				} else {
					man.DataEmblems++
				}
			}
			for i, p := range parity {
				if err := emit(p, emblem.KindParity, g+i); err != nil {
					return nil, fmt.Errorf("core: encoding parity emblem: %w", err)
				}
				man.ParityEmblems++
			}
			groupID++
		}
	}
	man.Groups = groupID
	man.TotalFrames = len(frames)

	// Fix Total in headers? Headers were written per frame already with
	// Index; Total is informative and recomputed at restore from counts.

	// Step 6: Bootstrap document.
	emu, err := nested.Program()
	if err != nil {
		return nil, fmt.Errorf("core: building emulator: %w", err)
	}
	mo, err := dynprog.MODecode()
	if err != nil {
		return nil, fmt.Errorf("core: assembling MODecode: %w", err)
	}
	doc := bootstrap.New(opts.Profile.Name, layout, opts.GroupData, opts.GroupParity, emu, mo)

	// Step 7: write to the medium.
	m := media.New(opts.Profile)
	if err := m.Write(frames); err != nil {
		return nil, fmt.Errorf("core: writing medium: %w", err)
	}

	return &Archived{
		Medium:        m,
		Bootstrap:     doc,
		BootstrapText: doc.Render(),
		Manifest:      man,
		Options:       opts,
	}, nil
}

func splitChunks(stream []byte, capacity int) [][]byte {
	var out [][]byte
	for len(stream) > 0 {
		n := capacity
		if n > len(stream) {
			n = len(stream)
		}
		out = append(out, stream[:n])
		stream = stream[n:]
	}
	if len(out) == 0 {
		out = [][]byte{{}}
	}
	return out
}

// RestoreStats reports how restoration went.
type RestoreStats struct {
	FramesScanned   int
	FramesFailed    int
	BytesCorrected  int // inner-code corrections (native mode only)
	GroupsRecovered int // groups that needed the outer code
	Mode            Mode
}

// ErrRestore wraps restoration failures.
var ErrRestore = errors.New("core: restoration failed")

// Restore runs the restoration pipeline (Figure 2b) against a scanned
// medium and the Bootstrap text. It returns the original archive bytes.
func Restore(m *media.Medium, bootstrapText string, mode Mode) ([]byte, *RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	layout := doc.Layout
	capacity := mocoder.Capacity(layout)
	st := &RestoreStats{Mode: mode}

	var moProg *dynarisc.Program
	if mode != RestoreNative {
		if moProg, err = doc.MODecodeProgram(); err != nil {
			return nil, st, fmt.Errorf("%w: bootstrap MODecode: %v", ErrRestore, err)
		}
	}

	type framePayload struct {
		hdr     emblem.Header
		payload []byte
	}
	var decoded []framePayload
	for i := 0; i < m.FrameCount(); i++ {
		scan, err := m.ScanFrame(i)
		if err != nil {
			return nil, st, fmt.Errorf("%w: scanning frame %d: %v", ErrRestore, i, err)
		}
		st.FramesScanned++
		var payload []byte
		var hdr emblem.Header
		switch mode {
		case RestoreNative:
			var stats *mocoder.Stats
			payload, hdr, stats, err = mocoder.Decode(scan, layout)
			if stats != nil {
				st.BytesCorrected += stats.BytesCorrected
			}
		default:
			payload, hdr, err = decodeFrameEmulated(moProg, scan, layout, mode)
		}
		if err != nil {
			st.FramesFailed++
			continue
		}
		decoded = append(decoded, framePayload{hdr, payload})
	}
	if len(decoded) == 0 {
		return nil, st, fmt.Errorf("%w: no readable frames", ErrRestore)
	}

	// Group the payloads and run outer-code recovery where needed.
	type groupState struct {
		members map[int][]byte // GroupPos → payload (padded to capacity)
		data    int
		parity  int
		kind    emblem.Kind
		total   uint32
	}
	groups := map[int]*groupState{}
	for _, fp := range decoded {
		gid := int(fp.hdr.GroupID)
		g := groups[gid]
		if g == nil {
			g = &groupState{members: map[int][]byte{}}
			groups[gid] = g
		}
		padded := make([]byte, capacity)
		copy(padded, fp.payload)
		g.members[int(fp.hdr.GroupPos)] = padded
		if int(fp.hdr.GroupData) > 0 {
			g.data = int(fp.hdr.GroupData)
			g.parity = int(fp.hdr.GroupParity)
		}
		if fp.hdr.Kind != emblem.KindParity {
			g.kind = fp.hdr.Kind
			g.total = fp.hdr.TotalLen
		}
	}

	gids := make([]int, 0, len(groups))
	for gid := range groups {
		gids = append(gids, gid)
	}
	sort.Ints(gids)

	streams := map[emblem.Kind][]byte{}
	totals := map[emblem.Kind]uint32{}
	for _, gid := range gids {
		g := groups[gid]
		if g.kind == 0 {
			return nil, st, fmt.Errorf("%w: group %d has no readable data emblems", ErrRestore, gid)
		}
		full := make([][]byte, g.data+g.parity)
		missing := 0
		for pos := range full {
			if p, ok := g.members[pos]; ok {
				full[pos] = p
			} else {
				missing++
			}
		}
		if missing > 0 {
			if err := mocoder.RecoverGroup(full); err != nil {
				return nil, st, fmt.Errorf("%w: group %d: %v", ErrRestore, gid, err)
			}
			st.GroupsRecovered++
		}
		for pos := 0; pos < g.data; pos++ {
			streams[g.kind] = append(streams[g.kind], full[pos]...)
		}
		totals[g.kind] = g.total
	}

	finish := func(k emblem.Kind) ([]byte, bool) {
		s, ok := streams[k]
		if !ok {
			return nil, false
		}
		t := int(totals[k])
		if t > len(s) {
			return nil, false
		}
		return s[:t], true
	}

	if raw, ok := finish(emblem.KindRaw); ok {
		return raw, st, nil
	}
	blob, ok := finish(emblem.KindData)
	if !ok {
		return nil, st, fmt.Errorf("%w: no data stream recovered", ErrRestore)
	}

	switch mode {
	case RestoreNative:
		out, err := dbcoder.Decompress(blob)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		return out, st, nil
	default:
		sys, ok := finish(emblem.KindSystem)
		if !ok {
			return nil, st, fmt.Errorf("%w: system emblems (DBDecode) missing", ErrRestore)
		}
		dbProg, err := bootstrap.UnmarshalDynaRisc(sys)
		if err != nil {
			return nil, st, fmt.Errorf("%w: system emblem payload: %v", ErrRestore, err)
		}
		out, err := runDBDecode(dbProg, blob, mode)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		// The archived decoder skips the final CRC; verify here.
		if ref, err := dbcoder.Decompress(blob); err != nil || string(ref) != string(out) {
			if err != nil {
				return nil, st, fmt.Errorf("%w: archive CRC: %v", ErrRestore, err)
			}
		}
		return out, st, nil
	}
}

// decodeFrameEmulated runs the archived MODecode program on a scan.
func decodeFrameEmulated(prog *dynarisc.Program, scan *raster.Gray, l emblem.Layout, mode Mode) ([]byte, emblem.Header, error) {
	// Host-side image preprocessing per the Bootstrap (§3.3 step 1):
	// deskew and rescale the scan onto the nominal grid before handing
	// the flat pixel array to the archived decoder. The Bootstrap fixes
	// the rescale target at 3 pixels per module (module centres land on
	// whole pixels), which also keeps every profile's frame inside
	// DynaRisc's 24-bit address range.
	rl := l
	if rl.PxPerModule > 3 {
		rl.PxPerModule = 3
	}
	scan, err := mocoder.Rectify(scan, rl)
	if err != nil {
		return nil, emblem.Header{}, err
	}

	// Input framing per the Bootstrap: [W, H, dataW, dataH, pixels...].
	in := make([]uint16, 0, 4+len(scan.Pix))
	in = append(in, uint16(scan.W), uint16(scan.H), uint16(l.DataW), uint16(l.DataH))
	for _, p := range scan.Pix {
		in = append(in, uint16(p))
	}

	var outBytes []byte
	switch mode {
	case RestoreDynaRisc:
		cpu := dynarisc.NewCPU(dynprog.MOMemWords(scan))
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, emblem.Header{}, err
		}
		cpu.In = in
		if err := cpu.Run(); err != nil {
			return nil, emblem.Header{}, err
		}
		outBytes = cpu.OutBytes()
	case RestoreNested:
		guestWords := dynprog.MOMemWords(scan)
		out, err := nested.Run(prog, in, guestWords, 0)
		if err != nil {
			return nil, emblem.Header{}, err
		}
		outBytes = make([]byte, len(out))
		for i, w := range out {
			outBytes[i] = byte(w)
		}
	default:
		return nil, emblem.Header{}, fmt.Errorf("core: bad emulated mode %v", mode)
	}
	if len(outBytes) == 0 {
		return nil, emblem.Header{}, errors.New("core: MODecode produced no output (damaged frame)")
	}

	// MODecode emits the payload; recover the header from a native parse
	// of the same scan's header block is not available here, so MODecode
	// convention: the payload is prefixed by the 22-byte voted header.
	if len(outBytes) < emblem.HeaderSize {
		return nil, emblem.Header{}, errors.New("core: emulated payload too short")
	}
	hdr, err := emblem.ParseHeader(outBytes[:emblem.HeaderSize])
	if err != nil {
		return nil, emblem.Header{}, err
	}
	return outBytes[emblem.HeaderSize:], hdr, nil
}

// runDBDecode executes the archived DBDecode program on the compressed
// stream under the selected emulation level.
func runDBDecode(prog *dynarisc.Program, blob []byte, mode Mode) ([]byte, error) {
	rawLen, err := dbcoder.RawLen(blob)
	if err != nil {
		return nil, err
	}
	memWords := dynprog.DBOutBuf + rawLen + 4096
	switch mode {
	case RestoreDynaRisc:
		cpu := dynarisc.NewCPU(memWords)
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, err
		}
		cpu.SetInBytes(blob)
		if err := cpu.Run(); err != nil {
			return nil, err
		}
		return cpu.OutBytes(), nil
	case RestoreNested:
		in := make([]uint16, len(blob))
		for i, b := range blob {
			in[i] = uint16(b)
		}
		out, err := nested.Run(prog, in, memWords, 0)
		if err != nil {
			return nil, err
		}
		res := make([]byte, len(out))
		for i, w := range out {
			res[i] = byte(w)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("core: bad emulated mode %v", mode)
	}
}
