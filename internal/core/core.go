// Package core implements the ULE pipeline of Micr'Olonys (§3.3 of the
// paper): the seven archival steps that turn a textual database archive
// into emblems, system emblems and a Bootstrap document on simulated
// analog media, and the six restoration steps that bring the data back —
// optionally executing the archived decoders under emulation exactly as a
// future user would.
//
// Both directions are organised as explicit stage pipelines over
// independent emblem frames:
//
//	archive:  split → encode frame → place on medium     (archive.go)
//	restore:  scan → decode frame → reassemble           (restore.go)
//
// The split/plan and reassemble stages are serial (they carry the
// cross-frame state: chunking, outer-code groups, stream totals); the
// per-frame stages fan out over a bounded worker pool (pipeline.go) sized
// by Options.Workers / RestoreOptions.Workers, defaulting to GOMAXPROCS.
// Frame order — and therefore every produced byte — is identical at any
// worker count.
package core

import (
	"errors"
	"fmt"

	"microlonys/internal/bootstrap"
	"microlonys/internal/mocoder"
	"microlonys/media"
)

// Mode selects the restoration execution path.
type Mode int

const (
	// RestoreNative runs the Go reference decoders (fast; the archivist's
	// verification path).
	RestoreNative Mode = iota
	// RestoreDynaRisc executes the archived MODecode/DBDecode instruction
	// streams on the DynaRisc reference CPU — the decoders that were
	// actually stored on the medium do the work.
	RestoreDynaRisc
	// RestoreNested additionally hosts DynaRisc inside the VeRisc
	// emulator: the full future-user path (slow; use small archives).
	RestoreNested
)

func (m Mode) String() string {
	switch m {
	case RestoreNative:
		return "native"
	case RestoreDynaRisc:
		return "dynarisc"
	case RestoreNested:
		return "nested"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures archival.
type Options struct {
	Profile     media.Profile
	GroupData   int  // data emblems per outer-code group (default 17)
	GroupParity int  // parity emblems per group (default 3)
	Compress    bool // run DBCoder (default); false archives raw payloads

	// CompressDepth is DBCoder's match-finder chain depth (0 selects
	// dbcoder.DefaultDepth): the archive-speed vs density dial — lower
	// depths encode faster, higher depths find longer matches and pack
	// more data per frame. The cmd/microlonys -depth flag sets it.
	CompressDepth int

	// Workers bounds the frame-encode worker pool: 0 (the default) uses
	// GOMAXPROCS, 1 forces the serial reference path, larger values cap
	// the fan-out. Output is byte-identical at any setting.
	Workers int
}

// DefaultOptions returns the paper's configuration for a profile.
func DefaultOptions(p media.Profile) Options {
	return Options{
		Profile:     p,
		GroupData:   mocoder.GroupData,
		GroupParity: mocoder.GroupParity,
		Compress:    true,
	}
}

// RestoreOptions configures restoration.
type RestoreOptions struct {
	Mode Mode

	// Workers bounds the frame scan/decode worker pool, with the same
	// semantics as Options.Workers: 0 = GOMAXPROCS, 1 = serial.
	Workers int
}

// Manifest records what was written.
type Manifest struct {
	RawLen        int // original archive bytes
	StreamLen     int // bytes after DBCoder (== RawLen when !Compress)
	SystemLen     int // bytes of the archived DBDecode program
	DataEmblems   int
	SystemEmblems int
	ParityEmblems int
	TotalFrames   int
	Groups        int
}

// Archived is the result of CreateArchive.
type Archived struct {
	Medium        *media.Medium
	Bootstrap     *bootstrap.Document
	BootstrapText string
	Manifest      Manifest
	Options       Options
}

// RestoreStats reports how restoration went.
type RestoreStats struct {
	FramesScanned   int
	FramesFailed    int
	BytesCorrected  int // inner-code corrections (native mode only)
	GroupsRecovered int // groups that needed the outer code
	Mode            Mode
}

// ErrRestore wraps restoration failures.
var ErrRestore = errors.New("core: restoration failed")
