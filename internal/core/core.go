// Package core implements the ULE pipeline of Micr'Olonys (§3.3 of the
// paper): the seven archival steps that turn a textual database archive
// into emblems, system emblems and a Bootstrap document on simulated
// analog media, and the six restoration steps that bring the data back —
// optionally executing the archived decoders under emulation exactly as a
// future user would.
//
// Both directions are organised as explicit stage pipelines over
// independent emblem frames:
//
//	archive:  split → encode frame → place on medium     (archive.go)
//	restore:  scan → decode frame → reassemble           (restore.go)
//
// The split/plan and reassemble stages are serial (they carry the
// cross-frame state: chunking, outer-code groups, stream totals); the
// per-frame stages fan out over a bounded worker pool (pipeline.go) sized
// by Options.Workers / RestoreOptions.Workers, defaulting to GOMAXPROCS.
// Frame order — and therefore every produced byte — is identical at any
// worker count.
package core

import (
	"context"
	"errors"
	"fmt"

	"microlonys/internal/bootstrap"
	"microlonys/internal/mocoder"
	"microlonys/media"
)

// Mode selects the restoration execution path.
type Mode int

const (
	// RestoreNative runs the Go reference decoders (fast; the archivist's
	// verification path).
	RestoreNative Mode = iota
	// RestoreDynaRisc executes the archived MODecode/DBDecode instruction
	// streams on the DynaRisc reference CPU — the decoders that were
	// actually stored on the medium do the work.
	RestoreDynaRisc
	// RestoreNested additionally hosts DynaRisc inside the VeRisc
	// emulator: the full future-user path (slow; use small archives).
	RestoreNested
)

func (m Mode) String() string {
	switch m {
	case RestoreNative:
		return "native"
	case RestoreDynaRisc:
		return "dynarisc"
	case RestoreNested:
		return "nested"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures archival.
type Options struct {
	Profile     media.Profile
	GroupData   int  // data emblems per outer-code group (default 17)
	GroupParity int  // parity emblems per group (default 3)
	Compress    bool // run DBCoder (default); false archives raw payloads

	// CompressDepth is DBCoder's match-finder chain depth (0 selects
	// dbcoder.DefaultDepth): the archive-speed vs density dial — lower
	// depths encode faster, higher depths find longer matches and pack
	// more data per frame. The cmd/microlonys -depth flag sets it.
	CompressDepth int

	// Workers bounds the frame-encode worker pool: 0 (the default) uses
	// GOMAXPROCS, 1 forces the serial reference path, larger values cap
	// the fan-out. Output is byte-identical at any setting.
	Workers int

	// SheetFrames caps the frames per media sheet (a page bundle, a film
	// reel): the place stage cuts a new sheet whenever the next
	// outer-code group would not fit, so a group never straddles a
	// carrier and losing a whole sheet costs only that sheet's groups.
	// 0 (the default) writes one unbounded sheet — the single-medium
	// layout, byte-identical to the pre-Volume pipeline.
	SheetFrames int

	// Catalog reserves the first frame of every sheet for a
	// self-describing catalog emblem (internal/catalog): archive identity,
	// volume inventory, per-group checksums, a compressed replica of the
	// Bootstrap essentials and plain-text recovery instructions. Catalog
	// volumes can be restored by Salvage from an unordered bag of sheets
	// with no external bootstrap text. Off by default — catalog-free
	// archives stay byte-identical to previous releases. The catalog slot
	// counts against SheetFrames, so a bounded sheet needs
	// GroupData+GroupParity+1 frames of capacity.
	Catalog bool

	// Index reserves one more frame per sheet for a selective-restore
	// index emblem (internal/archindex) mapping logical archive bytes to
	// physical volume extents: RestoreRange and RestoreTable consult it to
	// scan and decode only the groups a query touches. Compressed archives
	// switch to the DBS1 seekable container (independently decodable
	// restart blocks) so a byte range can be decompressed without the rest
	// of the stream. Off by default — index-free volumes stay
	// byte-identical to previous releases. The index slot counts against
	// SheetFrames like the catalog slot.
	Index bool

	// IndexBlockBytes sets the DBS1 restart-block size for indexed
	// compressed archives. 0 selects one group's worth of payload bytes
	// (GroupData × frame capacity), widened when needed so the block
	// table still fits a single index frame next to the section table.
	// Smaller blocks tighten the set of groups a range query must
	// decode; larger blocks compress better.
	IndexBlockBytes int

	// Context, when non-nil, cancels the archive pipeline: planning stops
	// at the next group boundary, in-flight encodes drain, and
	// CreateArchive returns the context's error. Nil means no external
	// cancellation (context.Background()).
	Context context.Context
}

// DefaultOptions returns the paper's configuration for a profile.
func DefaultOptions(p media.Profile) Options {
	return Options{
		Profile:     p,
		GroupData:   mocoder.GroupData,
		GroupParity: mocoder.GroupParity,
		Compress:    true,
	}
}

// RestoreOptions configures restoration.
type RestoreOptions struct {
	Mode Mode

	// Workers bounds the frame scan/decode worker pool, with the same
	// semantics as Options.Workers: 0 = GOMAXPROCS, 1 = serial.
	Workers int

	// Partial keeps restoring past unrecoverable groups instead of
	// aborting: the lost groups' data bytes are zero-filled in the output
	// (offsets stay aligned) and reported in RestoreStats. Most useful
	// for raw archives after carrier loss — a compressed stream with a
	// hole still fails at DBDecode.
	Partial bool

	// Context, when non-nil, cancels the restore pipeline: scan/decode
	// workers stop, the group assembler drains, and Restore returns an
	// error wrapping both ErrRestore and the context's error. Nil means no
	// external cancellation (context.Background()).
	Context context.Context
}

// Manifest records what was written.
type Manifest struct {
	RawLen        int // original archive bytes
	StreamLen     int // bytes after DBCoder (== RawLen when !Compress)
	SystemLen     int // bytes of the archived DBDecode program
	DataEmblems   int
	SystemEmblems int
	ParityEmblems int
	TotalFrames   int // frames written, catalog slots included
	Groups        int
	Sheets        int // media sheets the place stage cut

	// Catalog-volume fields (Options.Catalog): the deterministic archive
	// identity rendered into every catalog emblem, and the number of
	// catalog frames written (one per sheet).
	ArchiveID     uint64
	CatalogFrames int

	// IndexFrames is the number of selective-restore index emblems written
	// (Options.Index: one per sheet).
	IndexFrames int
}

// Archived is the result of CreateArchive.
type Archived struct {
	// Volume holds every written sheet. Medium aliases the first sheet
	// when the archive fits one sheet (always true with
	// Options.SheetFrames == 0, the default) and is nil for multi-sheet
	// archives — medium-level callers keep working unchanged, volume-aware
	// callers use Volume.
	Volume        *media.Volume
	Medium        *media.Medium
	Bootstrap     *bootstrap.Document
	BootstrapText string
	Manifest      Manifest
	Options       Options
}

// SheetReport is one sheet's slice of RestoreStats.
type SheetReport struct {
	Frames          int // frames consumed from this sheet
	FramesFailed    int // frames that did not decode
	FramesLost      int // frames in wholly-unidentifiable runs (Partial mode)
	Groups          int // groups identified on this sheet
	GroupsRecovered int // groups the outer code repaired
	GroupsLost      int // groups lost beyond parity (Partial mode)
}

// GroupReport is one outer-code group's slice of RestoreStats, in group
// order.
type GroupReport struct {
	ID        int    // header GroupID
	Sheet     int    // sheet holding the group (groups never straddle)
	Kind      string // data, system, parity... the group's section kind
	Frames     int    // data + parity frames
	Missing    int    // frames the outer code had to supply
	Recovered  bool   // outer code ran and succeeded
	Lost       bool   // beyond parity; zero-filled (Partial mode only)
	Verified   bool   // data matched the catalog's group checksum
	Mismatched bool   // data decoded but contradicted the checksum
}

// RestoreStats reports how restoration went.
type RestoreStats struct {
	FramesScanned   int
	FramesFailed    int
	BytesCorrected  int // inner-code corrections (native mode only)
	GroupsRecovered int // groups that needed the outer code
	GroupsLost      int // identified groups beyond parity (Partial mode)
	FramesLost      int // frames in wholly-unidentifiable runs (Partial mode)
	BytesLost       int // output bytes zero-filled for lost groups (Partial mode)
	Mode            Mode

	// Catalog-volume tallies: catalog frames consumed out-of-band by the
	// assembler, and groups checked against the catalog's per-group
	// checksums (verified + mismatched ≤ groups restored; groups with no
	// checksum available are neither).
	CatalogFrames    int
	GroupsVerified   int
	GroupsMismatched int

	// Selective-restore tallies (RestoreRange/RestoreTable/ListIndex).
	// FramesSkipped counts volume frames the query never scanned —
	// FramesScanned + FramesSkipped equals the volume's frame count on a
	// successful indexed query. GroupsDecoded counts outer-code groups the
	// query assembled. IndexFrames counts index emblems consumed (full
	// restores also tally the ones they pass over). IndexFallbacks counts
	// queries that fell back to a full restore because no usable index was
	// readable.
	FramesSkipped  int
	GroupsDecoded  int
	IndexFrames    int
	IndexFallbacks int

	// Per-sheet and per-group recovery detail, indexed by sheet and in
	// group order respectively. Identical at any worker count.
	Sheets []SheetReport
	Groups []GroupReport
}

// ErrRestore wraps restoration failures.
var ErrRestore = errors.New("core: restoration failed")
