package core

import (
	"bytes"
	"testing"

	"microlonys/media"
)

// An Engine's reused scratch must be invisible: back-to-back restores —
// clean, damaged, clean again — return exactly what the one-shot entry
// point returns for the same volume.
func TestEngineMatchesOneShotAcrossTrials(t *testing.T) {
	data := testPayload(40000)
	opts := DefaultOptions(tinyProfile())
	opts.Compress = false
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	vol := arch.Volume

	damaged := vol.Clone()
	for _, i := range []int{1, 5, 9} {
		s, j, err := damaged.Locate(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := damaged.Destroy(s, j); err != nil {
			t.Fatal(err)
		}
	}

	eng := NewEngine(1)
	ro := RestoreOptions{Mode: RestoreNative, Workers: 1, Partial: true}
	for trial, v := range []*media.Volume{vol, damaged, vol, damaged} {
		wantBytes, wantStats, wantErr := RestoreVolume(v, arch.BootstrapText, ro)
		gotBytes, gotStats, gotErr := eng.RestoreVolume(v, arch.BootstrapText, ro)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("trial %d: engine bytes diverged from one-shot restore", trial)
		}
		if gotStats.FramesFailed != wantStats.FramesFailed ||
			gotStats.GroupsRecovered != wantStats.GroupsRecovered ||
			gotStats.GroupsLost != wantStats.GroupsLost ||
			gotStats.BytesLost != wantStats.BytesLost {
			t.Fatalf("trial %d: stats diverged: %+v vs %+v", trial, gotStats, wantStats)
		}
		if trial%2 == 0 && !bytes.Equal(gotBytes, data) {
			t.Fatalf("trial %d: clean volume did not restore bit-exact", trial)
		}
	}
}
