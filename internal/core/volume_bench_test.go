package core

// P6 companions to the root-level BenchmarkP6Volume: the streaming
// pipeline measured against the seed buffered formulations preserved in
// reference_test.go — the only honest "buffered" baseline left, since the
// public APIs all stream now. BENCH_volume.json records the committed
// numbers.

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"microlonys/internal/bootstrap"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/media"
)

// streamProfile is dense and clean: one pixel per module puts the
// payload:pixel ratio near the format's floor (~19:1), so payload-level
// memory effects are visible over per-frame pixel work.
func streamProfile() media.Profile {
	l := emblem.Layout{DataW: 600, DataH: 400, PxPerModule: 1}
	return media.Profile{
		Name:   "stream-bench",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
}

// benchHeapPeak samples HeapAlloc above the post-GC baseline while fn
// runs, with GC tightened (GOGC=20) so the peak tracks the live set
// instead of the collector's slack, and takes one final sample after fn
// returns (the buffered formulations peak at their very end). Treat the
// number as a magnitude: the gaps it exists to show are multiples.
func benchHeapPeak(fn func()) uint64 {
	old := debug.SetGCPercent(20)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	done := make(chan struct{})
	var peak uint64
	sample := func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak {
			peak = m.HeapAlloc
		}
	}
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sample()
			time.Sleep(500 * time.Microsecond)
		}
	}()
	fn()
	sample()
	close(stop)
	<-done
	if peak < base.HeapAlloc {
		return 0
	}
	return peak - base.HeapAlloc
}

// retainedBytes measures, GC-precisely, the live bytes a pipeline variant
// holds at its high-water point: setup returns whatever the variant
// retains there, a forced GC collects everything else, and the live-set
// delta against the pre-setup baseline is exact — no sampling involved.
func retainedBytes(setup func() any) uint64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	hold := setup()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(hold)
	if after.HeapAlloc < base.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - base.HeapAlloc
}

// BenchmarkP6ArchivePeak prices what the streaming planner saves on the
// way out. The seed pipeline rasterized every frame before placing any,
// so at the place stage it holds the entire encoded frame list on top of
// the medium (two full copies of the archive's pixels); the streaming
// pipeline holds the medium plus at most one group in flight. retained-B
// is the GC-exact live set at that point; peak-B the sampled high-water
// mark over the whole run.
func BenchmarkP6ArchivePeak(b *testing.B) {
	prof := streamProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(60 * capacity) // 4 groups, 72 frames
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.Workers = 1

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		var retained, peak uint64
		for i := 0; i < b.N; i++ {
			peak = benchHeapPeak(func() {
				retained = retainedBytes(func() any {
					arch, err := CreateArchiveStream(bytes.NewReader(data), opts)
					if err != nil {
						b.Fatal(err)
					}
					return arch // the medium; in-flight groups are gone
				})
			})
		}
		b.ReportMetric(float64(retained), "retained-B")
		b.ReportMetric(float64(peak), "peak-B")
	})
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		var retained, peak uint64
		for i := 0; i < b.N; i++ {
			peak = benchHeapPeak(func() {
				retained = retainedBytes(func() any {
					// The seed formulation: plan everything, encode
					// everything, then place everything — at the place
					// stage both the frame list and the medium are live.
					plan, err := splitStage(data, opts, capacity)
					if err != nil {
						b.Fatal(err)
					}
					frames, err := encodeStage(context.Background(), plan.tasks, prof.Layout, 1)
					if err != nil {
						b.Fatal(err)
					}
					m := media.New(prof)
					if err := m.Write(frames); err != nil {
						b.Fatal(err)
					}
					emu, mo, _, err := archivedPrograms()
					if err != nil {
						b.Fatal(err)
					}
					doc := bootstrap.New(prof.Name, prof.Layout, opts.GroupData, opts.GroupParity, emu, mo)
					return [3]any{frames, m, doc.Render()}
				})
			})
		}
		b.ReportMetric(float64(retained), "retained-B")
		b.ReportMetric(float64(peak), "peak-B")
	})
}

// BenchmarkP6ReassemblePeak isolates the reassemble stage — no pixels, no
// decoding — over synthetic decoded frames of a 20-group raw archive: the
// seed reassemble pads and retains every group's payloads and
// concatenates the whole stream before returning it, while the
// group-incremental assembler holds one group and flushes it to the
// writer. This is the restore-side streaming-vs-buffered comparison of
// the acceptance criteria, free of the per-frame decode churn that
// dominates end-to-end numbers.
func BenchmarkP6ReassemblePeak(b *testing.B) {
	prof := streamProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(340 * capacity) // 20 groups, ~4.4 MB stream
	opts := DefaultOptions(prof)
	opts.Compress = false
	_, plans, err := planOnly(data, opts)
	if err != nil {
		b.Fatal(err)
	}
	var results []frameResult
	for _, gp := range plans {
		for _, task := range gp.tasks {
			results = append(results, frameResult{scanned: true, decoded: true, hdr: task.hdr, payload: task.payload})
		}
	}
	sheetOf := make([]int, len(results)) // one sheet; the stage is sheet-agnostic

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		var peak uint64
		for i := 0; i < b.N; i++ {
			peak = benchHeapPeak(func() {
				st := &RestoreStats{Sheets: make([]SheetReport, 1)}
				asm := &assembler{
					st: st, capacity: capacity, groupParity: opts.GroupParity,
					out: io.Discard, sinks: map[emblem.Kind]*kindSink{},
					sheetOf: sheetOf, zeros: make([]byte, capacity), lastClosed: -1,
				}
				for j := range results {
					if err := asm.consume(j, &results[j]); err != nil {
						b.Fatal(err)
					}
				}
				if err := asm.finish(); err != nil {
					b.Fatal(err)
				}
			})
		}
		b.ReportMetric(float64(peak), "peak-B")
	})
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		var peak uint64
		for i := 0; i < b.N; i++ {
			peak = benchHeapPeak(func() {
				st := &RestoreStats{}
				out, _, err := referenceReassemble(results, capacity, RestoreNative, st)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != len(data) {
					b.Fatal("short reassemble")
				}
			})
		}
		b.ReportMetric(float64(peak), "peak-B")
	})
}

var _ = emblem.KindRaw // the synthetic results carry emblem headers
