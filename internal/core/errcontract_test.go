package core

// The error-taxonomy contract: every failing pipeline path must satisfy
// errors.Is for BOTH the domain sentinel (ErrRestore on the restore side)
// AND the underlying cause — a caller holding a cancelled context, an
// injected I/O fault or its own sink error must be able to match the
// error it planted. The table below walks every public entry point; the
// cancellation suite drills the selective-restore and salvage paths PR 8
// left uncovered, at workers 1, 2 and 8, with a goroutine-leak check.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"microlonys/internal/faultinject"
	"microlonys/media"
)

// TestErrorTaxonomyTable: each path reports ErrRestore (restore side) and
// preserves the planted cause through the wrap chain.
func TestErrorTaxonomyTable(t *testing.T) {
	arch, _ := catalogArchive(t, false)
	idx, _ := indexedArchive(t, true)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name    string
		run     func() error
		wants   []error // every listed sentinel must match via errors.Is
		restore bool    // must additionally match ErrRestore
	}{
		{
			name: "restore/cancelled-context",
			run: func() error {
				_, _, err := RestoreVolume(arch.Volume, arch.BootstrapText,
					RestoreOptions{Mode: RestoreNative, Context: cancelled})
				return err
			},
			wants: []error{context.Canceled}, restore: true,
		},
		{
			name: "restore-to/failing-sink",
			run: func() error {
				_, err := RestoreToWriter(faultinject.Writer(io.Discard, 64), arch.Volume,
					arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
				return err
			},
			wants: []error{faultinject.ErrInjected}, restore: true,
		},
		{
			name: "restore/bad-bootstrap",
			run: func() error {
				_, _, err := RestoreVolume(arch.Volume, "not a bootstrap document",
					RestoreOptions{Mode: RestoreNative})
				return err
			},
			restore: true,
		},
		{
			name: "range/cancelled-context",
			run: func() error {
				_, _, err := RestoreRange(idx.Volume, idx.BootstrapText, 0, 128,
					RestoreOptions{Mode: RestoreNative, Context: cancelled})
				return err
			},
			wants: []error{context.Canceled}, restore: true,
		},
		{
			name: "range/cancelled-context-unindexed-fallback",
			run: func() error {
				// No index on this volume: the query falls back to a full
				// restore, which must still surface the caller's context.
				_, _, err := RestoreRange(arch.Volume, arch.BootstrapText, 0, 128,
					RestoreOptions{Mode: RestoreNative, Context: cancelled})
				return err
			},
			wants: []error{context.Canceled}, restore: true,
		},
		{
			name: "table/cancelled-context",
			run: func() error {
				_, _, err := RestoreTable(idx.Volume, idx.BootstrapText, "nation",
					RestoreOptions{Mode: RestoreNative, Context: cancelled})
				return err
			},
			wants: []error{context.Canceled}, restore: true,
		},
		{
			name: "listindex/cancelled-context",
			run: func() error {
				_, _, err := ListIndex(idx.Volume, idx.BootstrapText,
					RestoreOptions{Mode: RestoreNative, Context: cancelled})
				return err
			},
			wants: []error{context.Canceled}, restore: true,
		},
		{
			name: "salvage/cancelled-context",
			run: func() error {
				bag := volumeBag(t, arch.Volume)
				_, err := SalvageTo(io.Discard, bag, SalvageOptions{Mode: RestoreNative, Context: cancelled})
				return err
			},
			wants: []error{context.Canceled}, restore: true,
		},
		{
			name: "salvage/failing-sink",
			run: func() error {
				bag := volumeBag(t, arch.Volume)
				_, err := SalvageTo(faultinject.Writer(io.Discard, 64), bag,
					SalvageOptions{Mode: RestoreNative})
				return err
			},
			wants: []error{faultinject.ErrInjected}, restore: true,
		},
		{
			name: "archive/failing-reader",
			run: func() error {
				opts := DefaultOptions(tinyProfile())
				opts.Compress = false
				_, err := CreateArchiveStream(faultinject.Reader(bytes.NewReader(testPayload(4096)), 100), opts)
				return err
			},
			wants: []error{faultinject.ErrInjected},
		},
		{
			name: "archive/failing-reader-compressed",
			run: func() error {
				opts := DefaultOptions(tinyProfile())
				_, err := CreateArchiveStream(faultinject.Reader(bytes.NewReader(testPayload(4096)), 100), opts)
				return err
			},
			wants: []error{faultinject.ErrInjected},
		},
		{
			name: "archive/cancelled-context",
			run: func() error {
				opts := DefaultOptions(tinyProfile())
				opts.Context = cancelled
				_, err := CreateArchive(testPayload(4096), opts)
				return err
			},
			wants: []error{context.Canceled},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("want an error, got nil")
			}
			if tc.restore && !errors.Is(err, ErrRestore) {
				t.Fatalf("%v does not match ErrRestore", err)
			}
			for _, want := range tc.wants {
				if !errors.Is(err, want) {
					t.Fatalf("%v does not preserve cause %v", err, want)
				}
			}
		})
	}
}

// volumeBag pulls a volume's sheets into a salvage bag without mutation.
func volumeBag(t *testing.T, v *media.Volume) []*media.Medium {
	t.Helper()
	var bag []*media.Medium
	for s := 0; s < v.Sheets(); s++ {
		m, err := v.Sheet(s)
		if err != nil {
			t.Fatal(err)
		}
		bag = append(bag, m)
	}
	return bag
}

// TestSelectiveAndSalvageCancelWorkers closes PR 9's cancellation
// coverage gap: RestoreRange, RestoreTable, ListIndex and SalvageTo must
// honor a cancelled context at workers 1, 2 and 8 — pre-cancelled
// deterministically, mid-operation promptly — and leak no goroutines.
func TestSelectiveAndSalvageCancelWorkers(t *testing.T) {
	idx, _ := indexedArchive(t, true)
	before := runtime.NumGoroutine()

	type entry struct {
		name string
		run  func(ctx context.Context, workers int) error
	}
	entries := []entry{
		{"range", func(ctx context.Context, w int) error {
			_, _, err := RestoreRange(idx.Volume, idx.BootstrapText, 0, 256,
				RestoreOptions{Mode: RestoreNative, Workers: w, Context: ctx})
			return err
		}},
		{"table", func(ctx context.Context, w int) error {
			_, _, err := RestoreTable(idx.Volume, idx.BootstrapText, "nation",
				RestoreOptions{Mode: RestoreNative, Workers: w, Context: ctx})
			return err
		}},
		{"listindex", func(ctx context.Context, w int) error {
			_, _, err := ListIndex(idx.Volume, idx.BootstrapText,
				RestoreOptions{Mode: RestoreNative, Workers: w, Context: ctx})
			return err
		}},
		{"salvage", func(ctx context.Context, w int) error {
			_, err := SalvageTo(io.Discard, volumeBag(t, idx.Volume),
				SalvageOptions{Mode: RestoreNative, Workers: w, Context: ctx})
			return err
		}},
	}

	for _, e := range entries {
		for _, workers := range []int{1, 2, 8} {
			// Pre-cancelled: the pipeline must notice before any real work
			// and report both ErrRestore and the context's error.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := e.run(ctx, workers); !errors.Is(err, ErrRestore) || !errors.Is(err, context.Canceled) {
				t.Fatalf("%s workers=%d pre-cancelled: got %v, want ErrRestore wrapping context.Canceled",
					e.name, workers, err)
			}

			// Mid-operation: cancel from another goroutine; the call must
			// return promptly — clean if it won the race, cancelled if not.
			ctx, cancel = context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func(e entry, w int) { done <- e.run(ctx, w) }(e, workers)
			time.Sleep(2 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("%s workers=%d mid-operation: %v", e.name, workers, err)
				}
			case <-time.After(60 * time.Second):
				t.Fatalf("%s workers=%d did not return after cancellation", e.name, workers)
			}
		}
	}

	// All pipelines drained: nothing may linger.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
