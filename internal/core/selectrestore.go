package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"

	"microlonys/dynarisc"
	"microlonys/internal/archindex"
	"microlonys/internal/bootstrap"
	"microlonys/internal/catalog"
	"microlonys/internal/dbcoder"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/sqldump"
	"microlonys/media"
)

// Selective restore: indexed range and table queries that decode only the
// groups a query touches.
//
//	probe:    read one sheet's reserved index emblem (internal/archindex) —
//	          the logical→physical map every sheet carries
//	plan:     replay the planner's group-cutting and the volume's
//	          sheet-cutting arithmetic from the index's integers, deriving
//	          every group's (sheet, frame, stream-offset) extent; map the
//	          requested raw range onto the archived stream (directly for
//	          raw archives, through the DBS1 restart-block table for
//	          compressed ones)
//	decode:   scan and decode only the overlapping groups' frames — whole
//	          sheets outside the query never see a ScanFrameInto call —
//	          then assemble each group with the same outer-code arithmetic
//	          a full restore uses
//	finish:   decompress only the overlapping restart blocks and trim to
//	          the exact byte range
//
// The result is byte-identical to the corresponding slice of a full
// restore, at any worker count. Every path that cannot proceed — no index
// slot, unreadable or corrupt index frames, an index contradicting the
// volume in hand — falls back to a full restore (counted in
// RestoreStats.IndexFallbacks), so a selective query never fails where a
// full restore would succeed.

// errIndexGeometry reports an index whose derived geometry contradicts
// the volume in hand (damaged, stale or forged): the caller falls back to
// the full scan path.
var errIndexGeometry = errors.New("core: index geometry contradicts the volume")

// RestoreRange restores exactly bytes [off, off+length) of the original
// archive from an indexed volume, scanning only the frames the range
// touches. The bytes are identical to the same slice of a full Restore.
// Volumes without a usable index fall back to a full restore.
func RestoreRange(v *media.Volume, bootstrapText string, off, length int, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	return restoreRange(v, bootstrapText, off, length, ro, make([]scanScratch, resolveWorkers(ro.Workers, v.FrameCount())))
}

// RestoreRange is core.RestoreRange through the engine's reused scratch.
func (e *Engine) RestoreRange(v *media.Volume, bootstrapText string, off, length int, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	ro.Workers = e.workers
	return restoreRange(v, bootstrapText, off, length, ro, e.scratch)
}

// RestoreSection restores one named section of the archive — a SQL-dump
// table ("nation") or column ("nation.n_name") — resolving the name
// through the index's section table. A column restores its minimal
// contiguous cover: the owning table's whole rows region. Names the index
// cannot resolve fall back to a full restore and are located there.
func RestoreSection(v *media.Volume, bootstrapText, name string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	return restoreSection(v, bootstrapText, name, ro, make([]scanScratch, resolveWorkers(ro.Workers, v.FrameCount())))
}

// RestoreSection is core.RestoreSection through the engine's reused scratch.
func (e *Engine) RestoreSection(v *media.Volume, bootstrapText, name string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	ro.Workers = e.workers
	return restoreSection(v, bootstrapText, name, ro, e.scratch)
}

// RestoreTable restores one SQL-dump table's rows region by name. It is
// RestoreSection under the table-name convention.
func RestoreTable(v *media.Volume, bootstrapText, table string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	return RestoreSection(v, bootstrapText, table, ro)
}

// RestoreTable is core.RestoreTable through the engine's reused scratch.
func (e *Engine) RestoreTable(v *media.Volume, bootstrapText, table string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	return e.RestoreSection(v, bootstrapText, table, ro)
}

// ListIndex reads the volume's selective-restore index — archive
// identity, geometry, restart blocks, named sections — without decoding
// any payload group. There is no full-restore fallback: a volume with no
// readable index reports ErrRestore.
func ListIndex(v *media.Volume, bootstrapText string, ro RestoreOptions) (*archindex.Index, *RestoreStats, error) {
	return listIndex(v, bootstrapText, ro, make([]scanScratch, 1))
}

// ListIndex is core.ListIndex through the engine's reused scratch.
func (e *Engine) ListIndex(v *media.Volume, bootstrapText string, ro RestoreOptions) (*archindex.Index, *RestoreStats, error) {
	ro.Workers = e.workers
	return listIndex(v, bootstrapText, ro, e.scratch)
}

func restoreRange(v *media.Volume, bootstrapText string, off, length int, ro RestoreOptions, scratch []scanScratch) ([]byte, *RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrRestore, err)
	}
	if off < 0 || length < 0 {
		return nil, nil, fmt.Errorf("%w: negative range %d:%d", ErrRestore, off, length)
	}
	st := newSelectStats(v, ro)
	ctx := orBackground(ro.Context)
	x, err := readIndex(ctx, v, doc, ro, scratch, st)
	if err != nil {
		return nil, st, err
	}
	if x != nil {
		if off+length > x.RawLen {
			return nil, st, fmt.Errorf("%w: range %d:%d beyond archive of %d bytes", ErrRestore, off, length, x.RawLen)
		}
		out, err := selectiveRange(ctx, v, doc, x, off, length, ro, scratch, st)
		if err == nil {
			return out, st, nil
		}
		if !errors.Is(err, errIndexGeometry) {
			return nil, st, err
		}
	}
	return rangeFallback(v, bootstrapText, off, length, ro, scratch)
}

func restoreSection(v *media.Volume, bootstrapText, name string, ro RestoreOptions, scratch []scanScratch) ([]byte, *RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrRestore, err)
	}
	st := newSelectStats(v, ro)
	ctx := orBackground(ro.Context)
	x, err := readIndex(ctx, v, doc, ro, scratch, st)
	if err != nil {
		return nil, st, err
	}
	if x != nil {
		if sec, ok := x.Lookup(name); ok {
			out, err := selectiveRange(ctx, v, doc, x, sec.Off, sec.Len, ro, scratch, st)
			if err == nil {
				return out, st, nil
			}
			if !errors.Is(err, errIndexGeometry) {
				return nil, st, err
			}
		}
		// A trimmed section table, an unknown name or a geometry
		// contradiction: the full restore resolves all three (and is the
		// arbiter of whether the name exists at all).
	}
	return sectionFallback(v, bootstrapText, name, ro, scratch)
}

func listIndex(v *media.Volume, bootstrapText string, ro RestoreOptions, scratch []scanScratch) (*archindex.Index, *RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrRestore, err)
	}
	st := newSelectStats(v, ro)
	x, err := readIndex(orBackground(ro.Context), v, doc, ro, scratch, st)
	if err != nil {
		return nil, st, err
	}
	if x == nil {
		return nil, st, fmt.Errorf("%w: no readable selective-restore index", ErrRestore)
	}
	st.FramesSkipped = v.FrameCount() - st.FramesScanned
	return x, st, nil
}

func newSelectStats(v *media.Volume, ro RestoreOptions) *RestoreStats {
	return &RestoreStats{Mode: ro.Mode, Sheets: make([]SheetReport, v.Sheets())}
}

// readIndex probes the volume's reserved index slots sheet by sheet until
// one parses, decoding through the mode-faithful path (emulated modes run
// the archived MODecode program on the index frame too). When every index
// slot is unreadable it tries the catalog's compressed index replica.
// Returns nil — with RestoreStats.IndexFallbacks counted — when no usable
// index exists; the caller falls back to a full restore. The only error is
// cancellation: each sheet probe checks ctx so a query on a large damaged
// volume aborts between frame scans, wrapping ErrRestore and the context's
// error.
func readIndex(ctx context.Context, v *media.Volume, doc *bootstrap.Document, ro RestoreOptions, scratch []scanScratch, st *RestoreStats) (*archindex.Index, error) {
	if !doc.Index {
		st.IndexFallbacks++
		return nil, nil
	}
	var moProg *dynarisc.Program
	if ro.Mode != RestoreNative {
		var err error
		if moProg, err = doc.MODecodeProgram(); err != nil {
			st.IndexFallbacks++
			return nil, nil
		}
	}
	sc := &scratch[0]
	slot := boolInt(doc.Catalog) // the index slot follows the catalog slot
	for s := 0; s < v.Sheets(); s++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrRestore, err)
		}
		m, err := v.Sheet(s)
		if err != nil || m.FrameCount() <= slot {
			continue
		}
		start, err := v.SheetStart(s)
		if err != nil {
			continue
		}
		payload, hdr, ok := probeFrame(v, start+slot, s, ro.Mode, moProg, doc.Layout, sc, st)
		if !ok || hdr.Kind != emblem.KindIndex {
			continue
		}
		if x, err := archindex.Parse(payload); err == nil {
			st.IndexFrames++
			return x, nil
		}
	}
	if doc.Catalog {
		for s := 0; s < v.Sheets(); s++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: %w", ErrRestore, err)
			}
			m, err := v.Sheet(s)
			if err != nil || m.FrameCount() == 0 {
				continue
			}
			start, err := v.SheetStart(s)
			if err != nil {
				continue
			}
			payload, hdr, ok := probeFrame(v, start, s, ro.Mode, moProg, doc.Layout, sc, st)
			if !ok || hdr.Kind != emblem.KindCatalog {
				continue
			}
			c, err := catalog.Parse(payload)
			if err != nil || len(c.IndexReplica) == 0 {
				continue
			}
			if x, err := archindex.Parse(c.IndexReplica); err == nil {
				st.CatalogFrames++
				return x, nil
			}
		}
	}
	st.IndexFallbacks++
	return nil, nil
}

// probeFrame scans and decodes one frame serially, tallying it like the
// full pipeline would.
func probeFrame(v *media.Volume, i, sheet int, mode Mode, moProg *dynarisc.Program, layout emblem.Layout, sc *scanScratch, st *RestoreStats) ([]byte, emblem.Header, bool) {
	scan, err := v.ScanFrameInto(&sc.scan, i)
	if err != nil {
		return nil, emblem.Header{}, false
	}
	st.FramesScanned++
	if sheet < len(st.Sheets) {
		st.Sheets[sheet].Frames++
	}
	var payload []byte
	var hdr emblem.Header
	switch mode {
	case RestoreNative:
		payload, hdr, _, err = mocoder.DecodeWith(&sc.dec, scan, layout)
	default:
		payload, hdr, err = decodeFrameEmulated(&sc.emu, moProg, scan, layout, mode)
	}
	if err != nil {
		st.FramesFailed++
		if sheet < len(st.Sheets) {
			st.Sheets[sheet].FramesFailed++
		}
		return nil, emblem.Header{}, false
	}
	return payload, hdr, true
}

// groupExtent is one outer-code group's derived physical placement: its
// id and shape, the stream extent it carries, the sheet it landed on and
// the global scan-space index of its first frame.
type groupExtent struct {
	id             int
	kind           emblem.Kind
	data, parity   int
	secOff, secLen int // byte extent within the group's section stream
	sheet          int
	scanStart      int // global frame index of the group's first frame
}

// planGeometry replays the planner's group-cutting and the volume's
// sheet-cutting arithmetic from the index's dozen integers, re-deriving
// every group's physical extent — the index stores parameters, not
// tables. The derived frame and sheet totals are checked against the
// volume in hand; a contradiction (a damaged or stale index) reports
// errIndexGeometry so the caller falls back to a full restore.
func planGeometry(x *archindex.Index, capacity int, v *media.Volume) ([]groupExtent, error) {
	if capacity <= 0 || x.GroupData <= 0 {
		return nil, errIndexGeometry
	}
	reserved := 1 + boolInt(x.CatalogSlot) // the index slot plus the optional catalog slot
	bounded := x.SheetFrames > 0
	usable := x.SheetFrames - reserved
	if bounded && usable <= 0 {
		return nil, errIndexGeometry
	}
	type sec struct {
		kind  emblem.Kind
		total int
	}
	var secs []sec
	if x.Compress {
		secs = []sec{{emblem.KindData, x.StreamLen}, {emblem.KindSystem, x.SystemLen}}
	} else {
		secs = []sec{{emblem.KindRaw, x.RawLen}}
	}

	var out []groupExtent
	gid := 0
	sheet, fill := 0, 0 // open sheet and its placed (non-reserved) frames
	sheetStartScan := 0 // global scan index of the open sheet's frame 0
	for _, s := range secs {
		totalChunks := (s.total + capacity - 1) / capacity
		if totalChunks == 0 {
			totalChunks = 1
		}
		for chunk := 0; chunk < totalChunks; {
			g := x.GroupData
			if g > totalChunks-chunk {
				g = totalChunks - chunk
			}
			size := g + x.GroupParity
			if bounded {
				if size > usable {
					return nil, errIndexGeometry
				}
				if fill+size > usable {
					sheetStartScan += reserved + fill
					sheet++
					fill = 0
				}
			}
			secOff := chunk * capacity
			secEnd := (chunk + g) * capacity
			if secEnd > s.total {
				secEnd = s.total
			}
			out = append(out, groupExtent{
				id: gid, kind: s.kind, data: g, parity: x.GroupParity,
				secOff: secOff, secLen: secEnd - secOff,
				sheet: sheet, scanStart: sheetStartScan + reserved + fill,
			})
			fill += size
			gid++
			chunk += g
		}
	}
	if sheetStartScan+reserved+fill != v.FrameCount() || sheet+1 != v.Sheets() {
		return nil, errIndexGeometry
	}
	return out, nil
}

// selectiveRange restores raw bytes [off, off+length) through the index:
// computes the minimal closed set of groups, scans and decodes only their
// frames, assembles them with the full restore's outer-code arithmetic
// and decompresses only the overlapping restart blocks.
func selectiveRange(ctx context.Context, v *media.Volume, doc *bootstrap.Document, x *archindex.Index, off, length int, ro RestoreOptions, scratch []scanScratch, st *RestoreStats) ([]byte, error) {
	capacity := mocoder.Capacity(doc.Layout)
	geo, err := planGeometry(x, capacity, v)
	if err != nil {
		return nil, err
	}
	if length == 0 {
		st.FramesSkipped = v.FrameCount() - st.FramesScanned
		return []byte{}, nil
	}

	// Map the raw range onto the archived stream: raw archives read their
	// bytes directly; compressed archives read the DBS1 restart blocks the
	// range overlaps — or, with the block table trimmed from the index,
	// the whole stream (still skipping nothing but, under native mode, the
	// system groups).
	kind := emblem.KindRaw
	spanOff, spanLen := off, length
	var blocks []dbcoder.SeekBlock
	if x.Compress {
		kind = emblem.KindData
		if len(x.Blocks) > 0 {
			lo := 0
			for lo < len(x.Blocks) && x.Blocks[lo].RawOff+x.Blocks[lo].RawLen <= off {
				lo++
			}
			hi := lo
			for hi < len(x.Blocks) && x.Blocks[hi].RawOff < off+length {
				hi++
			}
			if lo >= hi {
				return nil, errIndexGeometry
			}
			blocks = x.Blocks[lo:hi]
			last := blocks[len(blocks)-1]
			spanOff = blocks[0].CompOff
			spanLen = last.CompOff + last.CompLen - spanOff
		} else {
			spanOff, spanLen = 0, x.StreamLen
		}
	}

	// The minimal closed set of groups: target-kind groups overlapping the
	// stream span, plus — under emulation — every system group (the
	// archived DBDecode program must be whole to run at all).
	var sel []groupExtent
	for _, g := range geo {
		switch {
		case g.kind == kind && g.secOff < spanOff+spanLen && spanOff < g.secOff+g.secLen:
			sel = append(sel, g)
		case g.kind == emblem.KindSystem && ro.Mode != RestoreNative:
			sel = append(sel, g)
		}
	}

	var moProg *dynarisc.Program
	if ro.Mode != RestoreNative {
		if moProg, err = doc.MODecodeProgram(); err != nil {
			return nil, fmt.Errorf("%w: bootstrap MODecode: %w", ErrRestore, err)
		}
	}

	// Scan and decode only the selected groups' frames; every other frame
	// of the volume is skipped without a single ScanFrameInto call.
	var frameIdx []int
	for _, g := range sel {
		for f := 0; f < g.data+g.parity; f++ {
			frameIdx = append(frameIdx, g.scanStart+f)
		}
	}
	results := make([]frameResult, len(frameIdx))
	decErr := forEachFrame(ctx, ro.Workers, len(frameIdx), func(_ context.Context, worker, i int) error {
		sc := &scratch[worker]
		scan, err := v.ScanFrameInto(&sc.scan, frameIdx[i])
		if err != nil {
			return fmt.Errorf("%w: scanning frame %d: %w", ErrRestore, frameIdx[i], err)
		}
		res := &results[i]
		res.scanned = true
		switch ro.Mode {
		case RestoreNative:
			var stats *mocoder.Stats
			res.payload, res.hdr, stats, err = mocoder.DecodeWith(&sc.dec, scan, doc.Layout)
			if stats != nil {
				res.corrected = stats.BytesCorrected
			}
		default:
			res.payload, res.hdr, err = decodeFrameEmulated(&sc.emu, moProg, scan, doc.Layout, ro.Mode)
		}
		res.decoded = err == nil
		return nil
	})
	if decErr != nil {
		if errors.Is(decErr, ErrRestore) {
			return nil, decErr
		}
		return nil, fmt.Errorf("%w: %w", ErrRestore, decErr)
	}

	// Serial per-group assembly in group order, mirroring the full
	// restore's outer-code arithmetic so the recovered bytes are
	// byte-identical to the corresponding slice of a full restore — lost
	// groups included (Partial mode zero-fills exactly the group's stream
	// extent, which is what the full restore's trimmed sink writes).
	var spanBuf, sysBuf bytes.Buffer
	base := 0
	for _, g := range sel {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrRestore, err)
		}
		size := g.data + g.parity
		full := make([][]byte, size)
		members := 0
		var sh *SheetReport
		if g.sheet < len(st.Sheets) {
			sh = &st.Sheets[g.sheet]
		} else {
			sh = &SheetReport{}
		}
		for p := 0; p < size; p++ {
			res := &results[base+p]
			if res.scanned {
				st.FramesScanned++
				sh.Frames++
			}
			if res.decoded && int(res.hdr.GroupID) == g.id && int(res.hdr.GroupPos) == p {
				padded := make([]byte, capacity)
				copy(padded, res.payload)
				full[p] = padded
				members++
				st.BytesCorrected += res.corrected
			} else {
				st.FramesFailed++
				sh.FramesFailed++
			}
		}
		base += size

		st.GroupsDecoded++
		sh.Groups++
		missing := size - members
		rep := GroupReport{ID: g.id, Sheet: g.sheet, Kind: g.kind.String(), Frames: size, Missing: missing}
		lost := false
		if missing > 0 {
			if err := mocoder.RecoverGroup(full); err != nil {
				if !ro.Partial {
					return nil, fmt.Errorf("%w: group %d: %w", ErrRestore, g.id, err)
				}
				lost = true
				rep.Lost = true
				st.GroupsLost++
				sh.GroupsLost++
			} else {
				rep.Recovered = true
				st.GroupsRecovered++
				sh.GroupsRecovered++
			}
		}
		st.Groups = append(st.Groups, rep)

		sink := &spanBuf
		if g.kind == emblem.KindSystem {
			sink = &sysBuf
		}
		if lost {
			sink.Write(make([]byte, g.secLen))
			st.BytesLost += g.secLen
			continue
		}
		written := 0
		for p := 0; p < g.data && written < g.secLen; p++ {
			n := g.secLen - written
			if n > capacity {
				n = capacity
			}
			sink.Write(full[p][:n])
			written += n
		}
	}

	// Trim the assembled target-kind bytes to the exact stream span: the
	// selected groups cover it contiguously starting at the first group's
	// extent.
	firstOff := -1
	for _, g := range sel {
		if g.kind == kind {
			firstOff = g.secOff
			break
		}
	}
	span := spanBuf.Bytes()
	if firstOff < 0 || firstOff > spanOff || firstOff+len(span) < spanOff+spanLen {
		return nil, errIndexGeometry
	}
	stream := span[spanOff-firstOff : spanOff-firstOff+spanLen]

	if !x.Compress {
		st.FramesSkipped = v.FrameCount() - st.FramesScanned
		return append([]byte(nil), stream...), nil
	}

	// Decompress only the overlapping restart blocks, each independently
	// decodable — natively or through the archived DBDecode program
	// reassembled from the system groups.
	var dbProg *dynarisc.Program
	if ro.Mode != RestoreNative {
		if dbProg, err = bootstrap.UnmarshalDynaRisc(sysBuf.Bytes()); err != nil {
			return nil, fmt.Errorf("%w: system emblem payload: %w", ErrRestore, err)
		}
	}
	decode := func(blob []byte) ([]byte, error) {
		if ro.Mode == RestoreNative {
			raw, err := dbcoder.Decompress(blob)
			if err != nil {
				return nil, fmt.Errorf("%w: %w", ErrRestore, err)
			}
			return raw, nil
		}
		return emulatedDecompress(dbProg, blob, ro.Mode)
	}
	var out []byte
	if len(blocks) == 0 {
		raw, err := decode(stream)
		if err != nil {
			return nil, err
		}
		if off+length > len(raw) {
			return nil, errIndexGeometry
		}
		out = append([]byte(nil), raw[off:off+length]...)
	} else {
		out = make([]byte, 0, length)
		for _, b := range blocks {
			raw, err := decode(stream[b.CompOff-spanOff : b.CompOff-spanOff+b.CompLen])
			if err != nil {
				return nil, err
			}
			if len(raw) != b.RawLen {
				return nil, errIndexGeometry
			}
			lo, hi := 0, b.RawLen
			if off > b.RawOff {
				lo = off - b.RawOff
			}
			if off+length < b.RawOff+b.RawLen {
				hi = off + length - b.RawOff
			}
			out = append(out, raw[lo:hi]...)
		}
	}
	st.FramesSkipped = v.FrameCount() - st.FramesScanned
	return out, nil
}

// rangeFallback answers a range query with a full restore and a slice —
// the path taken when no usable index is readable.
func rangeFallback(v *media.Volume, bootstrapText string, off, length int, ro RestoreOptions, scratch []scanScratch) ([]byte, *RestoreStats, error) {
	var buf bytes.Buffer
	st, err := restoreToWriter(&buf, v, bootstrapText, ro, scratch)
	if st == nil {
		st = &RestoreStats{Mode: ro.Mode}
	}
	st.IndexFallbacks++
	if err != nil {
		return nil, st, err
	}
	data := buf.Bytes()
	if off+length > len(data) {
		return nil, st, fmt.Errorf("%w: range %d:%d beyond archive of %d bytes", ErrRestore, off, length, len(data))
	}
	return append([]byte(nil), data[off:off+length]...), st, nil
}

// sectionFallback answers a table/column query with a full restore,
// locating the name by parsing the restored SQL dump.
func sectionFallback(v *media.Volume, bootstrapText, name string, ro RestoreOptions, scratch []scanScratch) ([]byte, *RestoreStats, error) {
	var buf bytes.Buffer
	st, err := restoreToWriter(&buf, v, bootstrapText, ro, scratch)
	if st == nil {
		st = &RestoreStats{Mode: ro.Mode}
	}
	st.IndexFallbacks++
	if err != nil {
		return nil, st, err
	}
	data := buf.Bytes()
	secs, serr := sqldump.Sections(data)
	if serr != nil {
		return nil, st, fmt.Errorf("%w: locating %q: %w", ErrRestore, name, serr)
	}
	table, column := name, ""
	if i := strings.IndexByte(name, '.'); i > 0 {
		table, column = name[:i], name[i+1:]
	}
	for _, s := range secs {
		if s.Table == name {
			return append([]byte(nil), data[s.Off:s.Off+s.Len]...), st, nil
		}
		if column == "" || s.Table != table {
			continue
		}
		for _, c := range s.Columns {
			if c == column {
				return append([]byte(nil), data[s.Off:s.Off+s.Len]...), st, nil
			}
		}
	}
	return nil, st, fmt.Errorf("%w: no table or column %q in the archive", ErrRestore, name)
}
