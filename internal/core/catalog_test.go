package core

// Catalog-volume tests on the ordinary Restore path (the salvage path
// has its own suite in salvage_test.go): archives written with
// Options.Catalog restore bit-exact with every group verified against
// the catalog checksums, catalog loss is never a data loss, and
// catalog-free archives remain byte-identical to previous releases.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"microlonys/internal/mocoder"
)

// TestRestoreCatalogVolume: a catalog archive restores bit-exact through
// the ordinary bootstrap-text path, with the assembler consuming the
// catalog frames out-of-band and verifying every group's checksum.
func TestRestoreCatalogVolume(t *testing.T) {
	arch, data := catalogArchive(t, false)
	got, st, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("catalog-volume restore differs from input")
	}
	if st.CatalogFrames != 3 || st.GroupsVerified != arch.Manifest.Groups || st.GroupsMismatched != 0 {
		t.Fatalf("catalog stats %+v", st)
	}
	for _, g := range st.Groups {
		if !g.Verified || g.Mismatched {
			t.Fatalf("group report %+v", g)
		}
	}

	// A destroyed catalog frame costs context, never data: strict restore
	// still succeeds and still verifies from the surviving catalogs.
	if err := arch.Volume.Destroy(1, 0); err != nil {
		t.Fatal(err)
	}
	got, st, err = RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatalf("strict restore after catalog loss: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restore after catalog loss differs from input")
	}
	if st.CatalogFrames != 2 || st.GroupsVerified != arch.Manifest.Groups {
		t.Fatalf("stats after catalog loss %+v", st)
	}
}

// TestCatalogOffIsByteIdentical pins the opt-in: with Options.Catalog
// left false, the written volume is byte-identical to the seed pipeline
// — no reserved slots, no manifest catalog fields.
func TestCatalogOffIsByteIdentical(t *testing.T) {
	prof := tinyProfile()
	data := testPayload(20000)
	opts := DefaultOptions(prof)

	a, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.CatalogFrames != 0 || a.Manifest.ArchiveID != 0 {
		t.Fatalf("catalog-free manifest carries catalog fields: %+v", a.Manifest)
	}
	if !bytes.Equal(mediumFingerprint(t, a), mediumFingerprint(t, b)) {
		t.Fatal("catalog-free archives not deterministic")
	}
	if !bytes.Contains([]byte(a.BootstrapText), []byte("groupdata")) ||
		bytes.Contains([]byte(a.BootstrapText), []byte("catalog=1")) {
		t.Fatal("catalog key rendered on a catalog-free bootstrap")
	}

	c, err := CreateArchive(data, Options{Profile: prof, GroupData: opts.GroupData,
		GroupParity: opts.GroupParity, Compress: true, Catalog: true, SheetFrames: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(c.BootstrapText), []byte("catalog=1")) {
		t.Fatal("catalog bootstrap misses the catalog key")
	}
}

// TestRestoreContextCancel is the satellite regression test: a context
// cancelled mid-restore aborts promptly, surfaces both ErrRestore and
// context.Canceled, and leaks no goroutines or deadlocks.
func TestRestoreContextCancel(t *testing.T) {
	arch, _ := catalogArchive(t, false)
	before := runtime.NumGoroutine()

	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the pipeline must notice immediately
		_, _, err := RestoreVolume(arch.Volume, arch.BootstrapText,
			RestoreOptions{Mode: RestoreNative, Workers: workers, Context: ctx})
		if !errors.Is(err, ErrRestore) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want ErrRestore wrapping context.Canceled", workers, err)
		}
	}

	// Cancel mid-flight from another goroutine; the restore must return
	// promptly rather than hang on a worker or consumer.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := RestoreVolume(arch.Volume, arch.BootstrapText,
			RestoreOptions{Mode: RestoreNative, Workers: 2, Context: ctx})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		// A fast restore may legitimately win the race and finish clean.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-flight cancel: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("restore did not return after cancellation")
	}

	// Give drained goroutines a moment, then check nothing leaked.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// errAfterWriter fails with errWriter after n bytes have been accepted.
type errAfterWriter struct {
	n int
}

var errWriter = errors.New("writer: simulated downstream failure")

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		return 0, errWriter
	}
	w.n -= len(p)
	return len(p), nil
}

// TestRestoreToErroringWriter is the satellite regression test: a sink
// that starts failing mid-stream surfaces through ErrRestore (wrapping
// nothing silently), drains the pipeline without deadlock, and behaves
// identically at workers 1, 2 and 8.
func TestRestoreToErroringWriter(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false // raw archives stream to the writer group by group
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}

	var refErr error
	for i, workers := range []int{1, 2, 8} {
		w := &errAfterWriter{n: 18 * capacity} // fails inside group 2
		_, err := RestoreToWriter(w, arch.Volume, arch.BootstrapText,
			RestoreOptions{Mode: RestoreNative, Workers: workers})
		if !errors.Is(err, ErrRestore) {
			t.Fatalf("workers=%d: got %v, want ErrRestore", workers, err)
		}
		if i == 0 {
			refErr = err
		} else if fmt.Sprint(err) != fmt.Sprint(refErr) {
			t.Fatalf("workers=%d: error %q diverged from serial %q", workers, err, refErr)
		}
	}
}

// TestEngineSalvageMatchesOneShot: the engine's scratch-reusing salvage
// produces the same bytes and report as the one-shot entry point.
func TestEngineSalvageMatchesOneShot(t *testing.T) {
	arch, data := catalogArchive(t, false)
	if err := arch.Volume.Destroy(0, 3); err != nil {
		t.Fatal(err)
	}
	bag := bagOf(t, arch.Volume, 2, 0, 1)

	want, wantRep, err := Salvage(bag, SalvageOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, data) {
		t.Fatal("salvage differs from input")
	}
	eng := NewEngine(2)
	for trial := 0; trial < 3; trial++ {
		var buf bytes.Buffer
		rep, err := eng.SalvageTo(&buf, bag, SalvageOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("trial %d: engine salvage differs from one-shot", trial)
		}
		if !reflect.DeepEqual(rep, wantRep) {
			t.Fatalf("trial %d: report diverged:\n%+v\n%+v", trial, rep, wantRep)
		}
	}
}
