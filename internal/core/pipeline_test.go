package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"microlonys/internal/emblem"
	"microlonys/media"
)

// ---- splitChunks edge cases -------------------------------------------

func TestSplitChunksEmptyStream(t *testing.T) {
	c := splitChunks(nil, 64)
	if len(c) != 1 || len(c[0]) != 0 {
		t.Fatalf("empty stream: got %d chunks, first len %d; want one empty chunk", len(c), len(c[0]))
	}
	c = splitChunks([]byte{}, 64)
	if len(c) != 1 || len(c[0]) != 0 {
		t.Fatalf("zero-length stream: got %d chunks, want one empty chunk", len(c))
	}
}

func TestSplitChunksCapacityOne(t *testing.T) {
	data := []byte("abc")
	c := splitChunks(data, 1)
	if len(c) != 3 {
		t.Fatalf("capacity 1: got %d chunks, want 3", len(c))
	}
	for i, ch := range c {
		if len(ch) != 1 || ch[0] != data[i] {
			t.Fatalf("chunk %d = %q, want %q", i, ch, data[i:i+1])
		}
	}
}

func TestSplitChunksStreamSmallerThanCapacity(t *testing.T) {
	data := []byte("tiny")
	c := splitChunks(data, 1000)
	if len(c) != 1 || !bytes.Equal(c[0], data) {
		t.Fatalf("small stream: got %v", c)
	}
}

func TestSplitChunksReassembles(t *testing.T) {
	data := []byte("0123456789abcdef-")
	for _, capacity := range []int{1, 2, 3, 16, 17, 100} {
		var joined []byte
		for _, ch := range splitChunks(data, capacity) {
			joined = append(joined, ch...)
		}
		if !bytes.Equal(joined, data) {
			t.Fatalf("capacity %d: chunks do not reassemble", capacity)
		}
	}
}

// ---- worker pool ------------------------------------------------------

func TestForEachFrameVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]int32, n)
		err := forEachFrame(context.Background(), workers, n, func(_ context.Context, _, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachFrameReportsLowestIndexError(t *testing.T) {
	// Frames 3 and 7 fail; whichever is hit first cancels the pool, but
	// if both record an error the lower index must win. Run at several
	// worker counts to shake out scheduling orders.
	for _, workers := range []int{1, 2, 8} {
		err := forEachFrame(context.Background(), workers, 10, func(_ context.Context, _, i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("frame %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		// With one worker, frame 3 always fails first. With more, either
		// index may have been recorded, but never anything else.
		if err.Error() != "frame 3 failed" && err.Error() != "frame 7 failed" {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if workers == 1 && err.Error() != "frame 3 failed" {
			t.Fatalf("serial path must fail on the first bad frame, got %v", err)
		}
	}
}

func TestForEachFrameCancelsRemainingWork(t *testing.T) {
	// Frame 0 fails immediately; every other frame blocks until it sees
	// the cancellation. If the pool did not cancel, the blocked frames
	// would run out the 2 s timeout and the started count would reach n.
	const n = 1000
	var started int32
	boom := errors.New("boom")
	err := forEachFrame(context.Background(), 4, n, func(ctx context.Context, _, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Second):
			t.Error("frame never saw cancellation")
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s := atomic.LoadInt32(&started); s >= n {
		t.Fatalf("cancellation started all %d frames", s)
	}
}

func TestForEachFrameHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := forEachFrame(ctx, 4, 50, func(_ context.Context, _, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestResolveWorkers(t *testing.T) {
	if resolveWorkers(0, 0) < 1 || resolveWorkers(-3, 0) < 1 {
		t.Fatal("default workers must be at least 1")
	}
	if resolveWorkers(7, 0) != 7 {
		t.Fatal("explicit worker count must be respected")
	}
}

// TestResolveWorkersCapsAtLiveCount is the regression test for the idle-
// goroutine fix: a pool never exceeds the number of live work items, so a
// two-frame restore on a 64-way request (or a GOMAXPROCS default) spins
// up exactly two workers — and allocates scratch for exactly two.
func TestResolveWorkersCapsAtLiveCount(t *testing.T) {
	if got := resolveWorkers(64, 2); got != 2 {
		t.Fatalf("resolveWorkers(64, 2) = %d, want 2", got)
	}
	if got := resolveWorkers(0, 3); got > 3 {
		t.Fatalf("resolveWorkers(0, 3) = %d, want <= 3", got)
	}
	if got := resolveWorkers(2, 100); got != 2 {
		t.Fatalf("resolveWorkers(2, 100) = %d, want 2", got)
	}
	if got := resolveWorkers(5, 0); got != 5 {
		t.Fatalf("resolveWorkers(5, 0) = %d, want 5 (unknown live count leaves the pool uncapped)", got)
	}
}

// TestFrontierOrdering pins the ordered-frontier helper: out-of-order
// completions drain in strict index order, each exactly once.
func TestFrontierOrdering(t *testing.T) {
	f := newFrontier(5)
	var got []int
	collect := func(i int) { got = append(got, i) }
	f.complete(2)
	f.drain(collect)
	if len(got) != 0 {
		t.Fatalf("drained %v before index 0 completed", got)
	}
	f.complete(0)
	f.drain(collect)
	f.complete(1)
	f.complete(4)
	f.drain(collect)
	if f.done() {
		t.Fatal("done with index 3 outstanding")
	}
	f.complete(3)
	f.drain(collect)
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if !f.done() {
		t.Fatal("frontier not done after all indices drained")
	}
}

// ---- parallel vs serial determinism -----------------------------------

// mediumFingerprint hashes every scanned frame. ScanFrame's distortion is
// seeded by frame index, so identical written frames scan identically —
// any divergence in written pixels shows up here.
func mediumFingerprint(t *testing.T, a *Archived) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < a.Medium.FrameCount(); i++ {
		img, err := a.Medium.ScanFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(img.Pix)
	}
	return buf.Bytes()
}

func TestArchiveParallelMatchesSerial(t *testing.T) {
	data := testPayload(40000)
	base := DefaultOptions(tinyProfile())

	serialOpts := base
	serialOpts.Workers = 1
	serial, err := CreateArchive(data, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	ref := mediumFingerprint(t, serial)

	for _, workers := range []int{0, 2, 5} {
		opts := base
		opts.Workers = workers
		par, err := CreateArchive(data, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Manifest != serial.Manifest {
			t.Fatalf("workers=%d: manifest %+v != serial %+v", workers, par.Manifest, serial.Manifest)
		}
		if par.BootstrapText != serial.BootstrapText {
			t.Fatalf("workers=%d: bootstrap text differs", workers)
		}
		if !bytes.Equal(mediumFingerprint(t, par), ref) {
			t.Fatalf("workers=%d: written medium differs from serial", workers)
		}
	}
}

func TestRestoreParallelMatchesSerial(t *testing.T) {
	data := testPayload(50000)
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	// Destroy two frames so the parallel reassembly also exercises
	// outer-code recovery.
	if err := arch.Medium.Destroy(1); err != nil {
		t.Fatal(err)
	}
	if err := arch.Medium.Destroy(arch.Medium.FrameCount() - 1); err != nil {
		t.Fatal(err)
	}

	serialOut, serialSt, err := RestoreWithOptions(arch.Medium, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNative, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOut, data) {
		t.Fatal("serial restore differs from input")
	}

	for _, workers := range []int{0, 2, 5} {
		out, st, err := RestoreWithOptions(arch.Medium, arch.BootstrapText,
			RestoreOptions{Mode: RestoreNative, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(out, serialOut) {
			t.Fatalf("workers=%d: restored bytes differ from serial", workers)
		}
		if !reflect.DeepEqual(st, serialSt) {
			t.Fatalf("workers=%d: stats %+v != serial %+v", workers, st, serialSt)
		}
	}
}

func TestRestoreParallelMatchesSerialEmulated(t *testing.T) {
	// The emulated decode path reuses one DynaRisc CPU per worker: with
	// Workers=1 a single machine decodes every frame back to back, with
	// Workers=4 each pool goroutine owns its own. Byte identity across
	// the counts pins both the pipeline determinism and the Reset-based
	// reuse.
	data := testPayload(4000)
	arch, err := CreateArchive(data, DefaultOptions(tinyProfile()))
	if err != nil {
		t.Fatal(err)
	}
	serialOut, _, err := RestoreWithOptions(arch.Medium, arch.BootstrapText,
		RestoreOptions{Mode: RestoreDynaRisc, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOut, data) {
		t.Fatal("serial emulated restore differs from input")
	}
	out, _, err := RestoreWithOptions(arch.Medium, arch.BootstrapText,
		RestoreOptions{Mode: RestoreDynaRisc, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, serialOut) {
		t.Fatal("parallel emulated restore differs from serial")
	}
}

func TestRestoreParallelMatchesSerialNested(t *testing.T) {
	if testing.Short() {
		t.Skip("nested emulation is slow; skipped in -short mode")
	}
	// Same identity for the VeRisc-hosted path, whose per-worker Runner
	// reuses the largest machine image of all. Raw mode keeps this to
	// one group of four small frames, as in TestArchiveRestoreNested.
	l := emblem.Layout{DataW: 80, DataH: 64, PxPerModule: 2}
	p := media.Profile{
		Name:   "tiny-nested-par",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
	data := []byte(strings.Repeat("SELECT 1; ", 20))
	opts := DefaultOptions(p)
	opts.Compress = false
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	serialOut, _, err := RestoreWithOptions(arch.Medium, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNested, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOut, data) {
		t.Fatal("serial nested restore differs from input")
	}
	out, _, err := RestoreWithOptions(arch.Medium, arch.BootstrapText,
		RestoreOptions{Mode: RestoreNested, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, serialOut) {
		t.Fatal("parallel nested restore differs from serial")
	}
}
