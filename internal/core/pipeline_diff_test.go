package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"microlonys/media"
)

// The stage-pipeline differential suite: with more than one worker the
// archive runs its plan, encode and place stages overlapped through
// bounded channels (pipelineGroups), and the restore consumer drains the
// ordered frontier while frames are still decoding. Both must be
// byte-identical to the pre-pipeline formulation — every stage strictly
// in sequence per group — at workers 1, 2 and 8, including the Partial
// damaged-sheet path.

// prePipelineVolume is the pre-pipeline archive formulation, kept
// verbatim: the planner emits groups one at a time, each group is
// encoded to completion (the only parallel stage) and placed before the
// next is cut — no stage overlap, no channels.
func prePipelineVolume(t *testing.T, data []byte, opts Options, workers int) *media.Volume {
	t.Helper()
	_, plans, err := planOnly(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	vol := media.NewVolume(opts.Profile, opts.SheetFrames)
	scratch := make([]encScratch, resolveWorkers(workers, 0))
	ctx := context.Background()
	for _, gp := range plans {
		frames, err := encodeFrames(ctx, gp.tasks, opts.Profile.Layout, workers, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if err := vol.WriteGroup(frames); err != nil {
			t.Fatal(err)
		}
	}
	return vol
}

// volumeFingerprint hashes every scanned frame of every sheet. Scan
// distortion is seeded by frame index, so identical written pixels scan
// identically — any divergence in the placed frames shows up here.
func volumeFingerprint(t *testing.T, v *media.Volume) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < v.FrameCount(); i++ {
		img, err := v.ScanFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(img.Pix)
	}
	return buf.Bytes()
}

// TestPipelinedArchiveMatchesPrePipeline pins the channel-pipelined
// archive to the pre-pipeline formulation at workers 1, 2 and 8 over a
// compressed multi-sheet archive: identical manifests, bootstrap text
// and written pixels on every sheet.
func TestPipelinedArchiveMatchesPrePipeline(t *testing.T) {
	// Incompressible data keeps the compressed stream big enough to span
	// several groups and sheets.
	data := make([]byte, 60000)
	rand.New(rand.NewSource(9)).Read(data)
	base := DefaultOptions(tinyProfile())
	base.SheetFrames = 40

	ref := volumeFingerprint(t, prePipelineVolume(t, data, base, 1))

	var first *Archived
	for _, workers := range []int{1, 2, 8} {
		opts := base
		opts.Workers = workers
		arch, err := CreateArchive(data, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if arch.Volume.Sheets() < 2 {
			t.Fatalf("workers=%d: want a multi-sheet volume, got %d sheets", workers, arch.Volume.Sheets())
		}
		if !bytes.Equal(volumeFingerprint(t, arch.Volume), ref) {
			t.Fatalf("workers=%d: written volume differs from the pre-pipeline formulation", workers)
		}
		if first == nil {
			first = arch
			continue
		}
		if arch.Manifest != first.Manifest {
			t.Fatalf("workers=%d: manifest %+v != workers=1 %+v", workers, arch.Manifest, first.Manifest)
		}
		if arch.BootstrapText != first.BootstrapText {
			t.Fatalf("workers=%d: bootstrap text differs", workers)
		}
	}
}

// TestPipelinedRestorePartialDamagedSheet pins the pipelined restore's
// Partial path at workers 1, 2 and 8 against a volume with a whole sheet
// destroyed plus scattered frame damage: identical restored bytes
// (zero-fill included) and identical RestoreStats — the loss accounting
// must not depend on decode scheduling.
func TestPipelinedRestorePartialDamagedSheet(t *testing.T) {
	data := testPayload(45000)
	opts := DefaultOptions(tinyProfile())
	// Raw archive: a compressed stream with a zero-filled hole fails at
	// DBDecode, which would collapse Partial to pass/fail.
	opts.Compress = false
	opts.SheetFrames = 20
	opts.Workers = 1
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 3 {
		t.Fatalf("want >= 3 sheets, got %d", arch.Volume.Sheets())
	}
	// A whole carrier gone, plus recoverable damage on a surviving sheet.
	if err := arch.Volume.DestroySheet(1); err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 5} {
		if err := arch.Volume.Destroy(0, j); err != nil {
			t.Fatal(err)
		}
	}

	var refOut []byte
	var refSt *RestoreStats
	for _, workers := range []int{1, 2, 8} {
		var buf bytes.Buffer
		st, err := RestoreToWriter(&buf, arch.Volume, arch.BootstrapText,
			RestoreOptions{Mode: RestoreNative, Workers: workers, Partial: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.GroupsLost == 0 || st.BytesLost == 0 {
			t.Fatalf("workers=%d: sheet loss not reflected in stats: %+v", workers, st)
		}
		if len(buf.Bytes()) != len(data) {
			t.Fatalf("workers=%d: partial output %d bytes, want %d", workers, buf.Len(), len(data))
		}
		if refOut == nil {
			refOut, refSt = append([]byte(nil), buf.Bytes()...), st
			continue
		}
		if !bytes.Equal(buf.Bytes(), refOut) {
			t.Fatalf("workers=%d: partial restore bytes differ from workers=1", workers)
		}
		if !reflect.DeepEqual(st, refSt) {
			t.Fatalf("workers=%d: stats %+v != workers=1 %+v", workers, st, refSt)
		}
	}
}

// TestPipelinedArchiveErrorMatchesSerial pins the pipelined error path:
// an input that dies mid-plan (a reader that fails after the first group)
// must surface the same planner error at any worker count, with no hangs
// and no partial-group writes racing the failure.
func TestPipelinedArchiveErrorMatchesSerial(t *testing.T) {
	opts := DefaultOptions(tinyProfile())
	opts.Compress = false
	want := ""
	for _, workers := range []int{1, 2, 8} {
		opts.Workers = workers
		_, err := CreateArchiveStream(&failingReader{n: 30000, failAfter: 9000}, opts)
		if err == nil {
			t.Fatalf("workers=%d: want error from failing reader", workers)
		}
		if want == "" {
			want = err.Error()
			continue
		}
		if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err, want)
		}
	}
}

// failingReader reports Len() = n (so the raw planner sizes the section
// without buffering) but fails after failAfter bytes.
type failingReader struct {
	n, failAfter, read int
}

func (r *failingReader) Len() int { return r.n - r.read }

func (r *failingReader) Read(p []byte) (int, error) {
	if r.read >= r.failAfter {
		return 0, fmt.Errorf("synthetic media fault at byte %d", r.read)
	}
	if len(p) > r.failAfter-r.read {
		p = p[:r.failAfter-r.read]
	}
	for i := range p {
		p[i] = byte(r.read + i)
	}
	r.read += len(p)
	return len(p), nil
}
