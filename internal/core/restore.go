package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/dbcoder"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/nested"
	"microlonys/media"
	"microlonys/raster"
)

// The restoration pipeline (Figure 2b), as three explicit stages:
//
//	scan:       medium → per-frame scans (the simulated scanner)
//	decode:     scan → header + payload, natively or under emulation
//	reassemble: decoded frames → outer-code groups → streams → DBDecode
//
// Scan and decode are fused into one parallel per-frame stage — a scan
// feeds exactly one decode, so splitting them would only add a buffer of
// full-resolution frame images between two stages of the same fan-out.
// Reassemble is serial: it owns the cross-frame state (group membership,
// recovery, stream order). A frame that fails to decode is not an error —
// that is what the outer code is for — but a frame that cannot even be
// scanned aborts the run.

// frameResult is the decode stage's per-frame slot.
type frameResult struct {
	scanned   bool
	decoded   bool
	hdr       emblem.Header
	payload   []byte
	corrected int // inner-code corrections (native mode only)
}

// Restore runs the restoration pipeline (Figure 2b) against a scanned
// medium and the Bootstrap text with default options. It returns the
// original archive bytes.
func Restore(m *media.Medium, bootstrapText string, mode Mode) ([]byte, *RestoreStats, error) {
	return RestoreWithOptions(m, bootstrapText, RestoreOptions{Mode: mode})
}

// RestoreWithOptions is Restore with an explicit worker-pool size. The
// restored bytes and stats are identical at any worker count.
func RestoreWithOptions(m *media.Medium, bootstrapText string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	layout := doc.Layout
	capacity := mocoder.Capacity(layout)
	st := &RestoreStats{Mode: ro.Mode}

	var moProg *dynarisc.Program
	if ro.Mode != RestoreNative {
		if moProg, err = doc.MODecodeProgram(); err != nil {
			return nil, st, fmt.Errorf("%w: bootstrap MODecode: %v", ErrRestore, err)
		}
	}

	// Stages 1+2: scan and decode every frame on the worker pool.
	results, err := decodeStage(context.Background(), m, layout, ro, moProg)
	for i := range results {
		if results[i].scanned {
			st.FramesScanned++
		}
	}
	if err != nil {
		return nil, st, err
	}

	// Stage 3: reassemble the streams from the decoded frames.
	return reassembleStage(results, capacity, ro.Mode, st)
}

// emuScratch is one worker's reusable emulator state for the emulated
// restore modes: the DynaRisc reference CPU (RestoreDynaRisc), the
// VeRisc-hosted runner (RestoreNested) and the input framing buffer.
// Each worker id owns exactly one goroutine for a run (see
// forEachFrame), so the scratch is reused serially without locks and a
// frame decode allocates its payload and nothing else — not the
// multi-megawords machine image it used to build per frame.
type emuScratch struct {
	cpu    *dynarisc.CPU
	nested *nested.Runner
	in     []uint16
}

// decodeStage scans and decodes each frame of the medium into an
// index-addressed result slice. Decode failures are recorded in the slot
// (the outer code recovers them later); scan failures are fatal and cancel
// the remaining frames.
func decodeStage(ctx context.Context, m *media.Medium, layout emblem.Layout, ro RestoreOptions, moProg *dynarisc.Program) ([]frameResult, error) {
	results := make([]frameResult, m.FrameCount())
	scratch := make([]emuScratch, resolveWorkers(ro.Workers))
	err := forEachFrame(ctx, ro.Workers, len(results), func(_ context.Context, worker, i int) error {
		scan, err := m.ScanFrame(i)
		if err != nil {
			return fmt.Errorf("%w: scanning frame %d: %v", ErrRestore, i, err)
		}
		res := &results[i]
		res.scanned = true
		switch ro.Mode {
		case RestoreNative:
			var stats *mocoder.Stats
			res.payload, res.hdr, stats, err = mocoder.Decode(scan, layout)
			if stats != nil {
				res.corrected = stats.BytesCorrected
			}
		default:
			res.payload, res.hdr, err = decodeFrameEmulated(&scratch[worker], moProg, scan, layout, ro.Mode)
		}
		res.decoded = err == nil
		return nil
	})
	return results, err
}

// reassembleStage groups the decoded payloads, runs outer-code recovery
// where frames are missing, concatenates the per-kind streams and — for
// compressed archives — decompresses, natively or by executing the
// archived DBDecode program.
func reassembleStage(results []frameResult, capacity int, mode Mode, st *RestoreStats) ([]byte, *RestoreStats, error) {
	type groupState struct {
		members map[int][]byte // GroupPos → payload (padded to capacity)
		data    int
		parity  int
		kind    emblem.Kind
		total   uint32
	}
	groups := map[int]*groupState{}
	decoded := 0
	for i := range results {
		fp := &results[i]
		if !fp.decoded {
			st.FramesFailed++
			continue
		}
		decoded++
		st.BytesCorrected += fp.corrected
		gid := int(fp.hdr.GroupID)
		g := groups[gid]
		if g == nil {
			g = &groupState{members: map[int][]byte{}}
			groups[gid] = g
		}
		padded := make([]byte, capacity)
		copy(padded, fp.payload)
		g.members[int(fp.hdr.GroupPos)] = padded
		if int(fp.hdr.GroupData) > 0 {
			g.data = int(fp.hdr.GroupData)
			g.parity = int(fp.hdr.GroupParity)
		}
		if fp.hdr.Kind != emblem.KindParity {
			g.kind = fp.hdr.Kind
			g.total = fp.hdr.TotalLen
		}
	}
	if decoded == 0 {
		return nil, st, fmt.Errorf("%w: no readable frames", ErrRestore)
	}

	gids := make([]int, 0, len(groups))
	for gid := range groups {
		gids = append(gids, gid)
	}
	sort.Ints(gids)

	streams := map[emblem.Kind][]byte{}
	totals := map[emblem.Kind]uint32{}
	for _, gid := range gids {
		g := groups[gid]
		if g.kind == 0 {
			return nil, st, fmt.Errorf("%w: group %d has no readable data emblems", ErrRestore, gid)
		}
		full := make([][]byte, g.data+g.parity)
		missing := 0
		for pos := range full {
			if p, ok := g.members[pos]; ok {
				full[pos] = p
			} else {
				missing++
			}
		}
		if missing > 0 {
			if err := mocoder.RecoverGroup(full); err != nil {
				return nil, st, fmt.Errorf("%w: group %d: %v", ErrRestore, gid, err)
			}
			st.GroupsRecovered++
		}
		for pos := 0; pos < g.data; pos++ {
			streams[g.kind] = append(streams[g.kind], full[pos]...)
		}
		totals[g.kind] = g.total
	}

	finish := func(k emblem.Kind) ([]byte, bool) {
		s, ok := streams[k]
		if !ok {
			return nil, false
		}
		t := int(totals[k])
		if t > len(s) {
			return nil, false
		}
		return s[:t], true
	}

	if raw, ok := finish(emblem.KindRaw); ok {
		return raw, st, nil
	}
	blob, ok := finish(emblem.KindData)
	if !ok {
		return nil, st, fmt.Errorf("%w: no data stream recovered", ErrRestore)
	}

	switch mode {
	case RestoreNative:
		out, err := dbcoder.Decompress(blob)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		return out, st, nil
	default:
		sys, ok := finish(emblem.KindSystem)
		if !ok {
			return nil, st, fmt.Errorf("%w: system emblems (DBDecode) missing", ErrRestore)
		}
		dbProg, err := bootstrap.UnmarshalDynaRisc(sys)
		if err != nil {
			return nil, st, fmt.Errorf("%w: system emblem payload: %v", ErrRestore, err)
		}
		out, err := runDBDecode(dbProg, blob, mode)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		// The archived decoder skips the trailing CRC; check its output
		// against the length and checksum in the archive header — a
		// mismatch is a restoration failure, never data to hand back,
		// and the header check costs one CRC pass instead of the full
		// native decompression it used to duplicate.
		if err := verifyDBDecodeOutput(blob, out); err != nil {
			return nil, st, err
		}
		return out, st, nil
	}
}

// verifyDBDecodeOutput validates the emulated decompressor's output
// against the archive header. Factored out for the regression test: an
// output that differs from the archived stream's record must surface as
// ErrRestore, not be silently returned.
func verifyDBDecodeOutput(blob, out []byte) error {
	if err := dbcoder.Verify(blob, out); err != nil {
		return fmt.Errorf("%w: emulated DBDecode output: %v", ErrRestore, err)
	}
	return nil
}

// decodeFrameEmulated runs the archived MODecode program on a scan,
// reusing the worker's emulator and buffers.
func decodeFrameEmulated(s *emuScratch, prog *dynarisc.Program, scan *raster.Gray, l emblem.Layout, mode Mode) ([]byte, emblem.Header, error) {
	// Host-side image preprocessing per the Bootstrap (§3.3 step 1):
	// deskew and rescale the scan onto the nominal grid before handing
	// the flat pixel array to the archived decoder. The Bootstrap fixes
	// the rescale target at 3 pixels per module (module centres land on
	// whole pixels), which also keeps every profile's frame inside
	// DynaRisc's 24-bit address range.
	rl := l
	if rl.PxPerModule > 3 {
		rl.PxPerModule = 3
	}
	scan, err := mocoder.Rectify(scan, rl)
	if err != nil {
		return nil, emblem.Header{}, err
	}

	// Input framing per the Bootstrap: [W, H, dataW, dataH, pixels...],
	// assembled into the worker's reusable buffer.
	in := append(s.in[:0], uint16(scan.W), uint16(scan.H), uint16(l.DataW), uint16(l.DataH))
	in = dynarisc.AppendInWords(in, scan.Pix)
	s.in = in

	var outBytes []byte
	switch mode {
	case RestoreDynaRisc:
		if s.cpu == nil {
			s.cpu = dynarisc.NewCPU(dynprog.MOMemWords(scan))
		} else {
			s.cpu.Reset()
			s.cpu.EnsureMem(dynprog.MOMemWords(scan))
		}
		cpu := s.cpu
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, emblem.Header{}, err
		}
		cpu.In = in
		if err := cpu.Run(); err != nil {
			return nil, emblem.Header{}, err
		}
		outBytes = cpu.OutBytes()
	case RestoreNested:
		if s.nested == nil {
			s.nested = nested.NewRunner()
		}
		var err error
		outBytes, err = s.nested.RunAppendBytes(nil, prog, in, dynprog.MOMemWords(scan), 0)
		if err != nil {
			return nil, emblem.Header{}, err
		}
	default:
		return nil, emblem.Header{}, fmt.Errorf("core: bad emulated mode %v", mode)
	}
	if len(outBytes) == 0 {
		return nil, emblem.Header{}, errors.New("core: MODecode produced no output (damaged frame)")
	}

	// MODecode emits the payload; recover the header from a native parse
	// of the same scan's header block is not available here, so MODecode
	// convention: the payload is prefixed by the 22-byte voted header.
	if len(outBytes) < emblem.HeaderSize {
		return nil, emblem.Header{}, errors.New("core: emulated payload too short")
	}
	hdr, err := emblem.ParseHeader(outBytes[:emblem.HeaderSize])
	if err != nil {
		return nil, emblem.Header{}, err
	}
	return outBytes[emblem.HeaderSize:], hdr, nil
}

// runDBDecode executes the archived DBDecode program on the compressed
// stream under the selected emulation level.
func runDBDecode(prog *dynarisc.Program, blob []byte, mode Mode) ([]byte, error) {
	rawLen, err := dbcoder.RawLen(blob)
	if err != nil {
		return nil, err
	}
	memWords := dynprog.DBOutBuf + rawLen + 4096
	switch mode {
	case RestoreDynaRisc:
		cpu := dynarisc.NewCPU(memWords)
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, err
		}
		cpu.SetInBytes(blob)
		cpu.ReserveOut(rawLen)
		if err := cpu.Run(); err != nil {
			return nil, err
		}
		return cpu.OutBytes(), nil
	case RestoreNested:
		return nested.NewRunner().RunBytesAppendBytes(
			make([]byte, 0, rawLen), prog, blob, memWords, 0)
	default:
		return nil, fmt.Errorf("core: bad emulated mode %v", mode)
	}
}
