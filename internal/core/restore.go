package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/catalog"
	"microlonys/internal/dbcoder"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/nested"
	"microlonys/media"
	"microlonys/raster"
)

// The restoration pipeline (Figure 2b), as three explicit stages:
//
//	scan:       volume → per-frame scans (the simulated scanner)
//	decode:     scan → header + payload, natively or under emulation
//	reassemble: decoded frames → outer-code groups → streams → DBDecode
//
// Scan and decode are fused into one parallel per-frame stage — a scan
// feeds exactly one decode, so splitting them would only add a buffer of
// full-resolution frame images between two stages of the same fan-out.
// Reassembly is group-incremental: a serial consumer walks the frames in
// global index order as the workers finish them, and the moment a group's
// last frame is consumed the group is outer-recovered, trimmed and
// flushed — raw archives stream straight to the caller's io.Writer, and a
// frame's payload is released as soon as its group closes, so peak memory
// is bounded by the groups in flight instead of the whole archive. A
// frame that fails to decode is not an error — that is what the outer
// code is for — but a frame that cannot even be scanned aborts the run.

// frameResult is the decode stage's per-frame slot.
type frameResult struct {
	scanned   bool
	decoded   bool
	hdr       emblem.Header
	payload   []byte
	corrected int // inner-code corrections (native mode only)
}

// Restore runs the restoration pipeline (Figure 2b) against a scanned
// medium and the Bootstrap text with default options. It returns the
// original archive bytes.
func Restore(m *media.Medium, bootstrapText string, mode Mode) ([]byte, *RestoreStats, error) {
	return RestoreWithOptions(m, bootstrapText, RestoreOptions{Mode: mode})
}

// RestoreWithOptions is Restore with explicit options. The restored bytes
// and stats are identical at any worker count.
func RestoreWithOptions(m *media.Medium, bootstrapText string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	return RestoreVolume(media.VolumeOf(m), bootstrapText, ro)
}

// RestoreVolume restores a multi-sheet volume into memory: RestoreToWriter
// over a bytes.Buffer.
func RestoreVolume(v *media.Volume, bootstrapText string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	var buf bytes.Buffer
	st, err := RestoreToWriter(&buf, v, bootstrapText, ro)
	if err != nil {
		return nil, st, err
	}
	return buf.Bytes(), st, nil
}

// RestoreToWriter runs the restoration pipeline against a volume and the
// Bootstrap text, writing the restored archive bytes to w. Raw archives
// stream group by group as their frames decode; compressed archives
// accumulate only the (small) compressed stream before DBDecode runs. On
// error, w may already have received a prefix of the output.
func RestoreToWriter(w io.Writer, v *media.Volume, bootstrapText string, ro RestoreOptions) (*RestoreStats, error) {
	return restoreToWriter(w, v, bootstrapText, ro, make([]scanScratch, resolveWorkers(ro.Workers, v.FrameCount())))
}

// restoreToWriter is RestoreToWriter over caller-owned per-worker scratch
// (len(scratch) must be at least the resolved worker count): the one-shot entry
// points allocate fresh scratch per call, an Engine reuses its scratch
// across calls so a campaign of thousands of trial restores pays the scan
// buffers and decoder tables once per worker, not once per trial.
func restoreToWriter(w io.Writer, v *media.Volume, bootstrapText string, ro RestoreOptions, scratch []scanScratch) (*RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrRestore, err)
	}
	layout := doc.Layout
	capacity := mocoder.Capacity(layout)
	st := &RestoreStats{Mode: ro.Mode, Sheets: make([]SheetReport, v.Sheets())}

	var moProg *dynarisc.Program
	if ro.Mode != RestoreNative {
		if moProg, err = doc.MODecodeProgram(); err != nil {
			return st, fmt.Errorf("%w: bootstrap MODecode: %w", ErrRestore, err)
		}
	}

	n := v.FrameCount()
	if n == 0 {
		return st, fmt.Errorf("%w: no readable frames", ErrRestore)
	}

	// Global frame index → sheet, for per-sheet stats and loss reports.
	sheetOf := make([]int, n)
	for s, i := 0, 0; s < v.Sheets(); s++ {
		m, _ := v.Sheet(s)
		for j := 0; j < m.FrameCount(); j++ {
			sheetOf[i] = s
			i++
		}
	}

	// Reserved-slot volumes (declared by the Bootstrap's catalog=1 /
	// index=1): the leading frames of every sheet are out-of-band catalog
	// and index emblems the group assembler must treat as no group's
	// members — their loss is not a data loss.
	var catSlot []bool
	if reserved := boolInt(doc.Catalog) + boolInt(doc.Index); reserved > 0 {
		catSlot = make([]bool, n)
		for s := 0; s < v.Sheets(); s++ {
			m, _ := v.Sheet(s)
			if m == nil || m.FrameCount() == 0 {
				continue
			}
			start, _ := v.SheetStart(s)
			for j := 0; j < reserved && j < m.FrameCount(); j++ {
				catSlot[start+j] = true
			}
		}
	}

	asm := &assembler{
		st:          st,
		capacity:    capacity,
		groupParity: doc.GroupParity,
		partial:     ro.Partial,
		out:         w,
		sinks:       map[emblem.Kind]*kindSink{},
		sheetOf:     sheetOf,
		catSlot:     catSlot,
		zeros:       make([]byte, capacity),
		lastClosed:  -1,
	}

	// Stages 1+2 feed stage 3 incrementally: workers scan and decode
	// frames in any order; the consumer goroutine drains an ordered
	// frontier, handing each frame to the group assembler in strict index
	// order and releasing its payload. The completion channel is sized so
	// workers never block on a momentarily busy consumer: twice the live
	// pool plus one group of slack.
	workers := resolveWorkers(ro.Workers, n)
	results := make([]frameResult, n)
	completed := make(chan int, 2*workers+doc.GroupData+doc.GroupParity)

	ctx, cancel := context.WithCancel(orBackground(ro.Context))
	defer cancel()

	consumerErr := make(chan error, 1)
	go func() {
		fr := newFrontier(n)
		var cerr error
		for i := range completed {
			fr.complete(i)
			fr.drain(func(i int) {
				if cerr == nil {
					if cerr = asm.consume(i, &results[i]); cerr != nil {
						cancel() // stop decoding frames the assembler will never use
					}
				}
				results[i] = frameResult{} // release the payload
			})
		}
		if cerr == nil && fr.done() { // decode completed; close the books
			cerr = asm.finish()
		}
		consumerErr <- cerr
	}()

	decErr := forEachFrame(ctx, ro.Workers, n, func(_ context.Context, worker, i int) error {
		sc := &scratch[worker]
		scan, err := v.ScanFrameInto(&sc.scan, i)
		if err != nil {
			return fmt.Errorf("%w: scanning frame %d: %w", ErrRestore, i, err)
		}
		res := &results[i]
		res.scanned = true
		switch ro.Mode {
		case RestoreNative:
			var stats *mocoder.Stats
			res.payload, res.hdr, stats, err = mocoder.DecodeWith(&sc.dec, scan, layout)
			if stats != nil {
				res.corrected = stats.BytesCorrected
			}
		default:
			res.payload, res.hdr, err = decodeFrameEmulated(&sc.emu, moProg, scan, layout, ro.Mode)
		}
		res.decoded = err == nil
		completed <- i
		return nil
	})
	close(completed)
	cerr := <-consumerErr
	if cerr != nil {
		return st, cerr
	}
	if decErr != nil {
		if errors.Is(decErr, ErrRestore) {
			return st, decErr
		}
		// Cancellation (or another pipeline error outside the restore
		// domain): wrap so callers can match either ErrRestore or the
		// context's error.
		return st, fmt.Errorf("%w: %w", ErrRestore, decErr)
	}
	return st, decompressTail(w, asm, ro.Mode)
}

// decompressTail finishes a restore once every group has flushed: raw
// archives already streamed to w, compressed archives decompress the
// assembled stream — natively or by executing the archived DBDecode
// program from the system emblems. Shared between restore and salvage.
func decompressTail(w io.Writer, asm *assembler, mode Mode) error {
	// The raw section streamed directly to w as its groups closed.
	if asm.sinks[emblem.KindRaw] != nil {
		return nil
	}

	if asm.dataBuf == nil {
		return fmt.Errorf("%w: no data stream recovered", ErrRestore)
	}
	blob := asm.dataBuf.Bytes()
	var out []byte
	var err error
	switch mode {
	case RestoreNative:
		if out, err = dbcoder.Decompress(blob); err != nil {
			return fmt.Errorf("%w: %w", ErrRestore, err)
		}
	default:
		if asm.sysBuf == nil {
			return fmt.Errorf("%w: system emblems (DBDecode) missing", ErrRestore)
		}
		dbProg, err := bootstrap.UnmarshalDynaRisc(asm.sysBuf.Bytes())
		if err != nil {
			return fmt.Errorf("%w: system emblem payload: %w", ErrRestore, err)
		}
		if out, err = emulatedDecompress(dbProg, blob, mode); err != nil {
			return err
		}
	}
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("%w: writing output: %w", ErrRestore, err)
	}
	return nil
}

// kindSink accumulates one section's recovered stream, trimming at the
// header-declared TotalLen. The raw section's sink is the caller's writer;
// the data and system sections buffer (DBDecode needs the whole stream).
type kindSink struct {
	w       io.Writer
	total   int // section TotalLen from the headers; -1 until known
	written int
}

// write appends b to the sink, trimmed so the section never exceeds its
// TotalLen (frame payloads are padded to emblem capacity).
func (s *kindSink) write(b []byte) (int, error) {
	rem := s.total - s.written
	if rem > len(b) {
		rem = len(b)
	}
	if rem <= 0 {
		return 0, nil
	}
	if _, err := s.w.Write(b[:rem]); err != nil {
		// Both %w verbs matter: callers match ErrRestore for "the restore
		// failed" and the sink's own error for "my writer did this".
		return 0, fmt.Errorf("%w: writing output: %w", ErrRestore, err)
	}
	s.written += rem
	return rem, nil
}

// assembler is the group-incremental reassemble stage. It consumes frames
// in strict global index order and reconstructs the outer-code groups
// from their headers: a decoded frame at index i with group position p
// places its group's frames at indices [i-p, i-p+data+parity) — the place
// stage wrote groups contiguously, so the range is exact, and failed
// frames inside it are the group's missing members. A run of failed
// frames no decoded header claims is a wholly-lost range (a destroyed
// carrier): fatal normally, counted and zero-filled in Partial mode.
type assembler struct {
	st          *RestoreStats
	capacity    int
	groupParity int // the Bootstrap's parity-per-group (loss arithmetic)
	partial     bool
	out         io.Writer
	dataBuf     *bytes.Buffer
	sysBuf      *bytes.Buffer
	sinks       map[emblem.Kind]*kindSink
	sheetOf     []int
	catSlot     []bool // per-index: reserved catalog slot (nil when catalog off)
	sums        []catalog.GroupSum
	zeros       []byte

	cur struct {
		known   bool
		id      int
		start   int
		data    int
		parity  int
		kind    emblem.Kind // from data members; 0 if only parity decoded
		total   uint32
		members map[int][]byte
	}
	runStart, runLen int // consumed failed frames no group has claimed
	lastClosed       int // group id of the last closed group (-1 initially)
	decoded          int

	// pendingZeroFrames is Partial-mode fill owed before the next group
	// flushes: a lost range (or a kind-unknown lost group) with no
	// section sink open yet cannot be placed until the next surviving
	// group reveals the section — the fill happens in closeGroup, ahead
	// of that group's own bytes, so output offsets hold.
	pendingZeroFrames int
}

// consume feeds the frame at global index i (frames arrive in strictly
// increasing order) into the group state machine.
func (a *assembler) consume(i int, res *frameResult) error {
	sh := &a.st.Sheets[a.sheetOf[i]]
	sh.Frames++
	if res.scanned {
		a.st.FramesScanned++
	}
	ok := res.decoded
	if ok {
		a.decoded++
		a.st.BytesCorrected += res.corrected
	} else {
		a.st.FramesFailed++
		sh.FramesFailed++
	}

	// Catalog frames are out-of-band: they belong to no outer-code group,
	// so they never open, join or close one. The first readable catalog
	// supplies the per-group checksums closeGroup verifies against. A
	// catalog frame that failed to decode falls through to the ordinary
	// failed-frame path — the loss arithmetic discounts reserved slots.
	if ok && res.hdr.Kind == emblem.KindCatalog {
		a.st.CatalogFrames++
		if a.sums == nil {
			if c, err := catalog.Parse(res.payload); err == nil && len(c.Groups) > 0 {
				a.sums = c.Groups
			}
		}
		return nil
	}

	// Index frames are likewise out-of-band: the selective-restore index
	// serves RestoreRange/RestoreTable queries, not a full restore — here
	// it only needs to stay clear of the group state machine.
	if ok && res.hdr.Kind == emblem.KindIndex {
		a.st.IndexFrames++
		return nil
	}

	if a.cur.known {
		end := a.cur.start + a.cur.data + a.cur.parity
		if ok {
			pos := i - a.cur.start
			if int(res.hdr.GroupID) != a.cur.id || int(res.hdr.GroupPos) != pos {
				// Header disagrees with the group's placement: the frame
				// decoded but contributes nothing — count it failed so
				// the loss arithmetic stays consistent.
				a.st.FramesFailed++
				sh.FramesFailed++
			} else {
				padded := make([]byte, a.capacity)
				copy(padded, res.payload)
				a.cur.members[pos] = padded
				if res.hdr.Kind != emblem.KindParity {
					a.cur.kind = res.hdr.Kind
					a.cur.total = res.hdr.TotalLen
				}
			}
		}
		if i == end-1 {
			return a.closeGroup()
		}
		return nil
	}

	if !ok {
		if a.runLen == 0 {
			a.runStart = i
		}
		a.runLen++
		return nil
	}

	// A decoded frame opens (and locates) a new group.
	start := i - int(res.hdr.GroupPos)
	size := int(res.hdr.GroupData) + int(res.hdr.GroupParity)
	if res.hdr.GroupData == 0 || start < 0 || i >= start+size {
		// A header that cannot describe a group; treat the frame as failed.
		a.st.FramesFailed++
		sh.FramesFailed++
		if a.runLen == 0 {
			a.runStart = i
		}
		a.runLen++
		return nil
	}
	if a.runLen > 0 {
		if a.runStart < start {
			// Failed frames before this group's start belong to groups no
			// surviving frame identifies — carrier loss beyond the outer code.
			if err := a.lostRange(a.runStart, start-a.runStart, int(res.hdr.GroupID)); err != nil {
				return err
			}
		}
		// Failed frames inside [start, i) are this group's missing members;
		// closeGroup counts them as size - len(members).
		a.runLen = 0
	}
	a.cur.known = true
	a.cur.id = int(res.hdr.GroupID)
	a.cur.start = start
	a.cur.data = int(res.hdr.GroupData)
	a.cur.parity = int(res.hdr.GroupParity)
	a.cur.kind = 0
	a.cur.total = 0
	a.cur.members = map[int][]byte{}
	pos := i - start
	padded := make([]byte, a.capacity)
	copy(padded, res.payload)
	a.cur.members[pos] = padded
	if res.hdr.Kind != emblem.KindParity {
		a.cur.kind = res.hdr.Kind
		a.cur.total = res.hdr.TotalLen
	}
	if i == start+size-1 {
		return a.closeGroup()
	}
	return nil
}

// closeGroup recovers and flushes the current group the moment its last
// frame index has been consumed.
func (a *assembler) closeGroup() error {
	size := a.cur.data + a.cur.parity
	sheet := a.sheetOf[a.cur.start]
	sh := &a.st.Sheets[sheet]
	sh.Groups++
	missing := size - len(a.cur.members)
	rep := GroupReport{ID: a.cur.id, Sheet: sheet, Frames: size, Missing: missing}
	defer func() {
		a.st.Groups = append(a.st.Groups, rep)
		a.lastClosed = a.cur.id
		a.cur.known = false
		a.cur.members = nil
	}()

	if a.cur.kind == 0 {
		// Only parity members decoded: the section kind and stream totals
		// are unknowable, so the group's bytes cannot be recovered — in
		// Partial mode its data frames still owe zero-fill so later
		// groups keep their offsets.
		if !a.partial {
			return fmt.Errorf("%w: group %d has no readable data emblems", ErrRestore, a.cur.id)
		}
		rep.Lost = true
		a.st.GroupsLost++
		sh.GroupsLost++
		return a.fillLost(a.cur.data)
	}
	rep.Kind = a.cur.kind.String()
	sink := a.sink(a.cur.kind)
	if sink.total < 0 {
		sink.total = int(a.cur.total)
	}
	// Fill owed for losses that preceded this section's first surviving
	// group, before this group's own bytes.
	if err := a.fillLost(0); err != nil {
		return err
	}

	full := make([][]byte, size)
	for pos, p := range a.cur.members {
		full[pos] = p
	}
	if missing > 0 {
		if err := mocoder.RecoverGroup(full); err != nil {
			if !a.partial {
				return fmt.Errorf("%w: group %d: %w", ErrRestore, a.cur.id, err)
			}
			// Beyond parity: zero-fill the group's data bytes so every
			// later group's output offset stays where the archive put it.
			rep.Lost = true
			a.st.GroupsLost++
			sh.GroupsLost++
			for pos := 0; pos < a.cur.data; pos++ {
				n, err := sink.write(a.zeros)
				if err != nil {
					return err
				}
				a.st.BytesLost += n
			}
			return nil
		}
		rep.Recovered = true
		a.st.GroupsRecovered++
		sh.GroupsRecovered++
	}
	// Verify the recovered data against the catalog's group checksum when
	// one is available. A mismatch means the bytes decoded but contradict
	// what was archived (silent corruption the outer code missed): fatal
	// normally, counted — and still written, they are the best available —
	// in Partial mode.
	if a.cur.id < len(a.sums) {
		if catalog.GroupCRC(full[:a.cur.data]) == a.sums[a.cur.id].CRC {
			rep.Verified = true
			a.st.GroupsVerified++
		} else {
			if !a.partial {
				return fmt.Errorf("%w: group %d contradicts its catalog checksum", ErrRestore, a.cur.id)
			}
			rep.Mismatched = true
			a.st.GroupsMismatched++
		}
	}
	for pos := 0; pos < a.cur.data; pos++ {
		if _, err := sink.write(full[pos]); err != nil {
			return err
		}
	}
	return nil
}

// lostRange handles frames [start, start+n) that failed to decode and
// that no surviving frame's header claims: whole groups — typically a
// whole carrier — are gone. nextID is the group id that ends the range
// (the id of the group whose decoded frame exposed it), so the group
// arithmetic is exact: the range holds nextID-lastClosed-1 groups, each
// carrying groupParity parity frames, and the rest of its frames are data.
func (a *assembler) lostRange(start, n, nextID int) error {
	nCat := a.catalogSlots(start, n)
	lostGroups := nextID - a.lastClosed - 1
	if n == nCat && lostGroups <= 0 {
		// Every frame in the range is a reserved catalog slot and no group
		// id was skipped: an unreadable catalog costs context, not data —
		// never a restore failure.
		return nil
	}
	if !a.partial {
		return fmt.Errorf("%w: frames %d..%d unreadable and no group identifiable (carrier loss beyond parity)",
			ErrRestore, start, start+n-1)
	}
	a.st.FramesLost += n
	for i := start; i < start+n; i++ {
		a.st.Sheets[a.sheetOf[i]].FramesLost++
	}
	if lostGroups <= 0 {
		return nil // incoherent ids; the frames are already counted
	}
	a.st.GroupsLost += lostGroups
	a.st.Sheets[a.sheetOf[start]].GroupsLost += lostGroups
	// Report the lost groups so st.Groups stays complete in group order.
	// Their individual shapes are unknowable (the range may hold a
	// section's short final group), so each report carries the range's
	// even share.
	share := n / lostGroups
	for g := 0; g < lostGroups; g++ {
		a.st.Groups = append(a.st.Groups, GroupReport{
			ID:      a.lastClosed + 1 + g,
			Sheet:   a.sheetOf[start],
			Frames:  share,
			Missing: share,
			Lost:    true,
		})
	}
	// Zero-fill the lost data bytes so later groups stay at their archive
	// offsets: the range held lostGroups*groupParity parity frames and
	// nCat reserved catalog slots, the rest were data. When the range
	// spans a section boundary the fill past the section's TotalLen is
	// trimmed away and finish pads the following section instead.
	return a.fillLost(n - nCat - lostGroups*a.groupParity)
}

// catalogSlots counts the reserved catalog slots in [start, start+n) —
// the frames the loss arithmetic must not mistake for data.
func (a *assembler) catalogSlots(start, n int) int {
	if a.catSlot == nil {
		return 0
	}
	c := 0
	for i := start; i < start+n && i < len(a.catSlot); i++ {
		if a.catSlot[i] {
			c++
		}
	}
	return c
}

// fillLost zero-fills n lost data frames — plus any fill already owed —
// into the first open section sink. When no section is open yet (the loss
// precedes the section's first surviving group), the fill is deferred
// until closeGroup resolves the next group's sink, so output offsets
// hold; anything still owed at the end is covered by finish's pad.
func (a *assembler) fillLost(n int) error {
	n += a.pendingZeroFrames
	a.pendingZeroFrames = 0
	if n <= 0 {
		return nil
	}
	var sink *kindSink
	for _, k := range sectionKinds {
		if s := a.sinks[k]; s != nil && s.total >= 0 && s.written < s.total {
			sink = s
			break
		}
	}
	if sink == nil {
		a.pendingZeroFrames = n
		return nil
	}
	for f := 0; f < n; f++ {
		w, err := sink.write(a.zeros)
		if err != nil {
			return err
		}
		a.st.BytesLost += w
	}
	return nil
}

// finish closes the books once every frame has been consumed.
func (a *assembler) finish() error {
	if a.cur.known {
		// The volume ended inside a group's claimed range (truncated
		// carrier); close it with what decoded.
		if err := a.closeGroup(); err != nil {
			return err
		}
	}
	if a.runLen > 0 {
		// Trailing failed frames no group claims: there is no next group
		// id, so the group arithmetic is unavailable; the per-sink pad
		// below restores the output length.
		if !a.partial {
			return fmt.Errorf("%w: frames %d..%d unreadable and no group identifiable (carrier loss beyond parity)",
				ErrRestore, a.runStart, a.runStart+a.runLen-1)
		}
		a.st.FramesLost += a.runLen
		for i := a.runStart; i < a.runStart+a.runLen; i++ {
			a.st.Sheets[a.sheetOf[i]].FramesLost++
		}
		a.runLen = 0
	}
	if a.decoded == 0 {
		return fmt.Errorf("%w: no readable frames", ErrRestore)
	}
	for _, k := range sectionKinds {
		s := a.sinks[k]
		if s == nil || s.total < 0 || s.written >= s.total {
			continue
		}
		if !a.partial {
			return fmt.Errorf("%w: no data stream recovered (%d of %d bytes)", ErrRestore, s.written, s.total)
		}
		for s.written < s.total {
			n, err := s.write(a.zeros)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			a.st.BytesLost += n
		}
	}
	return nil
}

// sectionKinds is the archive's section emission order — the order loss
// arithmetic and padding walk the sinks, so results are deterministic.
var sectionKinds = []emblem.Kind{emblem.KindRaw, emblem.KindData, emblem.KindSystem}

// sink returns (creating on first use) the destination for a section
// kind: the raw section streams to the caller's writer, the data and
// system sections buffer for DBDecode.
func (a *assembler) sink(k emblem.Kind) *kindSink {
	if s := a.sinks[k]; s != nil {
		return s
	}
	var w io.Writer
	switch k {
	case emblem.KindRaw:
		w = a.out
	case emblem.KindData:
		a.dataBuf = &bytes.Buffer{}
		w = a.dataBuf
	case emblem.KindSystem:
		a.sysBuf = &bytes.Buffer{}
		w = a.sysBuf
	default:
		w = io.Discard // unknown section kinds are dropped
	}
	s := &kindSink{w: w, total: -1}
	a.sinks[k] = s
	return s
}

// emulatedDecompress runs the archived DBDecode program over the
// assembled compressed stream. The archived decoder reads one standalone
// DBCoder archive; seekable (DBS1) streams — what indexed archives write —
// are its restart blocks run back to back, so the emulated path decodes
// them block by block through the same program, exactly as the index's
// recovery instructions direct a future user to. The concatenated output
// is verified against the container's whole-stream length and checksum.
func emulatedDecompress(dbProg *dynarisc.Program, blob []byte, mode Mode) ([]byte, error) {
	var out []byte
	if dbcoder.IsSeekable(blob) {
		blocks, err := dbcoder.SeekTable(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrRestore, err)
		}
		for _, b := range blocks {
			part, err := runDBDecode(dbProg, blob[b.CompOff:b.CompOff+b.CompLen], mode)
			if err != nil {
				return nil, fmt.Errorf("%w: %w", ErrRestore, err)
			}
			out = append(out, part...)
		}
	} else {
		var err error
		if out, err = runDBDecode(dbProg, blob, mode); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrRestore, err)
		}
	}
	// The archived decoder skips the trailing CRC; check its output
	// against the length and checksum in the archive header — a mismatch
	// is a restoration failure, never data to hand back.
	if err := verifyDBDecodeOutput(blob, out); err != nil {
		return nil, err
	}
	return out, nil
}

// verifyDBDecodeOutput validates the emulated decompressor's output
// against the archive header. Factored out for the regression test: an
// output that differs from the archived stream's record must surface as
// ErrRestore, not be silently returned.
func verifyDBDecodeOutput(blob, out []byte) error {
	if err := dbcoder.Verify(blob, out); err != nil {
		return fmt.Errorf("%w: emulated DBDecode output: %w", ErrRestore, err)
	}
	return nil
}

// scanScratch is one restore worker's reusable state for the fused
// scan+decode stage: the media scan buffers (the full-resolution frame
// images the scanner simulation renders through), the native decoder's
// per-frame scratch, and the emulated modes' machine state. Each worker
// id owns exactly one goroutine for a run (see forEachFrame), so the
// scratch is reused serially without locks — a steady-state native frame
// decode allocates only its payload and stats, and the scan stage is down
// to a handful of small per-frame allocations (the distortion RNG and the
// blur/warp lookup tables) instead of two or three full-resolution
// images.
type scanScratch struct {
	scan media.ScanScratch
	dec  mocoder.DecodeScratch
	emu  emuScratch
}

// emuScratch is one worker's reusable emulator state for the emulated
// restore modes: the DynaRisc reference CPU (RestoreDynaRisc), the
// VeRisc-hosted runner (RestoreNested) and the input framing buffer.
// Each worker id owns exactly one goroutine for a run (see
// forEachFrame), so the scratch is reused serially without locks and a
// frame decode allocates its payload and nothing else — not the
// multi-megawords machine image it used to build per frame.
type emuScratch struct {
	cpu    *dynarisc.CPU
	nested *nested.Runner
	in     []uint16
}

// decodeFrameEmulated runs the archived MODecode program on a scan,
// reusing the worker's emulator and buffers.
func decodeFrameEmulated(s *emuScratch, prog *dynarisc.Program, scan *raster.Gray, l emblem.Layout, mode Mode) ([]byte, emblem.Header, error) {
	// Host-side image preprocessing per the Bootstrap (§3.3 step 1):
	// deskew and rescale the scan onto the nominal grid before handing
	// the flat pixel array to the archived decoder. The Bootstrap fixes
	// the rescale target at 3 pixels per module (module centres land on
	// whole pixels), which also keeps every profile's frame inside
	// DynaRisc's 24-bit address range.
	rl := l
	if rl.PxPerModule > 3 {
		rl.PxPerModule = 3
	}
	scan, err := mocoder.Rectify(scan, rl)
	if err != nil {
		return nil, emblem.Header{}, err
	}

	// Input framing per the Bootstrap: [W, H, dataW, dataH, pixels...],
	// assembled into the worker's reusable buffer.
	in := append(s.in[:0], uint16(scan.W), uint16(scan.H), uint16(l.DataW), uint16(l.DataH))
	in = dynarisc.AppendInWords(in, scan.Pix)
	s.in = in

	var outBytes []byte
	switch mode {
	case RestoreDynaRisc:
		if s.cpu == nil {
			s.cpu = dynarisc.NewCPU(dynprog.MOMemWords(scan))
		} else {
			s.cpu.Reset()
			s.cpu.EnsureMem(dynprog.MOMemWords(scan))
		}
		cpu := s.cpu
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, emblem.Header{}, err
		}
		cpu.In = in
		if err := cpu.Run(); err != nil {
			return nil, emblem.Header{}, err
		}
		outBytes = cpu.OutBytes()
	case RestoreNested:
		if s.nested == nil {
			s.nested = nested.NewRunner()
		}
		var err error
		outBytes, err = s.nested.RunAppendBytes(nil, prog, in, dynprog.MOMemWords(scan), 0)
		if err != nil {
			return nil, emblem.Header{}, err
		}
	default:
		return nil, emblem.Header{}, fmt.Errorf("core: bad emulated mode %v", mode)
	}
	if len(outBytes) == 0 {
		return nil, emblem.Header{}, errors.New("core: MODecode produced no output (damaged frame)")
	}

	// MODecode emits the payload; recover the header from a native parse
	// of the same scan's header block is not available here, so MODecode
	// convention: the payload is prefixed by the 22-byte voted header.
	if len(outBytes) < emblem.HeaderSize {
		return nil, emblem.Header{}, errors.New("core: emulated payload too short")
	}
	hdr, err := emblem.ParseHeader(outBytes[:emblem.HeaderSize])
	if err != nil {
		return nil, emblem.Header{}, err
	}
	return outBytes[emblem.HeaderSize:], hdr, nil
}

// runDBDecode executes the archived DBDecode program on the compressed
// stream under the selected emulation level.
func runDBDecode(prog *dynarisc.Program, blob []byte, mode Mode) ([]byte, error) {
	rawLen, err := dbcoder.RawLen(blob)
	if err != nil {
		return nil, err
	}
	memWords := dynprog.DBOutBuf + rawLen + 4096
	switch mode {
	case RestoreDynaRisc:
		cpu := dynarisc.NewCPU(memWords)
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, err
		}
		cpu.SetInBytes(blob)
		cpu.ReserveOut(rawLen)
		if err := cpu.Run(); err != nil {
			return nil, err
		}
		return cpu.OutBytes(), nil
	case RestoreNested:
		return nested.NewRunner().RunBytesAppendBytes(
			make([]byte, 0, rawLen), prog, blob, memWords, 0)
	default:
		return nil, fmt.Errorf("core: bad emulated mode %v", mode)
	}
}
