package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/dbcoder"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/nested"
	"microlonys/media"
	"microlonys/raster"
)

// The restoration pipeline (Figure 2b), as three explicit stages:
//
//	scan:       medium → per-frame scans (the simulated scanner)
//	decode:     scan → header + payload, natively or under emulation
//	reassemble: decoded frames → outer-code groups → streams → DBDecode
//
// Scan and decode are fused into one parallel per-frame stage — a scan
// feeds exactly one decode, so splitting them would only add a buffer of
// full-resolution frame images between two stages of the same fan-out.
// Reassemble is serial: it owns the cross-frame state (group membership,
// recovery, stream order). A frame that fails to decode is not an error —
// that is what the outer code is for — but a frame that cannot even be
// scanned aborts the run.

// frameResult is the decode stage's per-frame slot.
type frameResult struct {
	scanned   bool
	decoded   bool
	hdr       emblem.Header
	payload   []byte
	corrected int // inner-code corrections (native mode only)
}

// Restore runs the restoration pipeline (Figure 2b) against a scanned
// medium and the Bootstrap text with default options. It returns the
// original archive bytes.
func Restore(m *media.Medium, bootstrapText string, mode Mode) ([]byte, *RestoreStats, error) {
	return RestoreWithOptions(m, bootstrapText, RestoreOptions{Mode: mode})
}

// RestoreWithOptions is Restore with an explicit worker-pool size. The
// restored bytes and stats are identical at any worker count.
func RestoreWithOptions(m *media.Medium, bootstrapText string, ro RestoreOptions) ([]byte, *RestoreStats, error) {
	doc, err := bootstrap.Parse(bootstrapText)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	layout := doc.Layout
	capacity := mocoder.Capacity(layout)
	st := &RestoreStats{Mode: ro.Mode}

	var moProg *dynarisc.Program
	if ro.Mode != RestoreNative {
		if moProg, err = doc.MODecodeProgram(); err != nil {
			return nil, st, fmt.Errorf("%w: bootstrap MODecode: %v", ErrRestore, err)
		}
	}

	// Stages 1+2: scan and decode every frame on the worker pool.
	results, err := decodeStage(context.Background(), m, layout, ro, moProg)
	for i := range results {
		if results[i].scanned {
			st.FramesScanned++
		}
	}
	if err != nil {
		return nil, st, err
	}

	// Stage 3: reassemble the streams from the decoded frames.
	return reassembleStage(results, capacity, ro.Mode, st)
}

// decodeStage scans and decodes each frame of the medium into an
// index-addressed result slice. Decode failures are recorded in the slot
// (the outer code recovers them later); scan failures are fatal and cancel
// the remaining frames.
func decodeStage(ctx context.Context, m *media.Medium, layout emblem.Layout, ro RestoreOptions, moProg *dynarisc.Program) ([]frameResult, error) {
	results := make([]frameResult, m.FrameCount())
	err := forEachFrame(ctx, ro.Workers, len(results), func(_ context.Context, i int) error {
		scan, err := m.ScanFrame(i)
		if err != nil {
			return fmt.Errorf("%w: scanning frame %d: %v", ErrRestore, i, err)
		}
		res := &results[i]
		res.scanned = true
		switch ro.Mode {
		case RestoreNative:
			var stats *mocoder.Stats
			res.payload, res.hdr, stats, err = mocoder.Decode(scan, layout)
			if stats != nil {
				res.corrected = stats.BytesCorrected
			}
		default:
			res.payload, res.hdr, err = decodeFrameEmulated(moProg, scan, layout, ro.Mode)
		}
		res.decoded = err == nil
		return nil
	})
	return results, err
}

// reassembleStage groups the decoded payloads, runs outer-code recovery
// where frames are missing, concatenates the per-kind streams and — for
// compressed archives — decompresses, natively or by executing the
// archived DBDecode program.
func reassembleStage(results []frameResult, capacity int, mode Mode, st *RestoreStats) ([]byte, *RestoreStats, error) {
	type groupState struct {
		members map[int][]byte // GroupPos → payload (padded to capacity)
		data    int
		parity  int
		kind    emblem.Kind
		total   uint32
	}
	groups := map[int]*groupState{}
	decoded := 0
	for i := range results {
		fp := &results[i]
		if !fp.decoded {
			st.FramesFailed++
			continue
		}
		decoded++
		st.BytesCorrected += fp.corrected
		gid := int(fp.hdr.GroupID)
		g := groups[gid]
		if g == nil {
			g = &groupState{members: map[int][]byte{}}
			groups[gid] = g
		}
		padded := make([]byte, capacity)
		copy(padded, fp.payload)
		g.members[int(fp.hdr.GroupPos)] = padded
		if int(fp.hdr.GroupData) > 0 {
			g.data = int(fp.hdr.GroupData)
			g.parity = int(fp.hdr.GroupParity)
		}
		if fp.hdr.Kind != emblem.KindParity {
			g.kind = fp.hdr.Kind
			g.total = fp.hdr.TotalLen
		}
	}
	if decoded == 0 {
		return nil, st, fmt.Errorf("%w: no readable frames", ErrRestore)
	}

	gids := make([]int, 0, len(groups))
	for gid := range groups {
		gids = append(gids, gid)
	}
	sort.Ints(gids)

	streams := map[emblem.Kind][]byte{}
	totals := map[emblem.Kind]uint32{}
	for _, gid := range gids {
		g := groups[gid]
		if g.kind == 0 {
			return nil, st, fmt.Errorf("%w: group %d has no readable data emblems", ErrRestore, gid)
		}
		full := make([][]byte, g.data+g.parity)
		missing := 0
		for pos := range full {
			if p, ok := g.members[pos]; ok {
				full[pos] = p
			} else {
				missing++
			}
		}
		if missing > 0 {
			if err := mocoder.RecoverGroup(full); err != nil {
				return nil, st, fmt.Errorf("%w: group %d: %v", ErrRestore, gid, err)
			}
			st.GroupsRecovered++
		}
		for pos := 0; pos < g.data; pos++ {
			streams[g.kind] = append(streams[g.kind], full[pos]...)
		}
		totals[g.kind] = g.total
	}

	finish := func(k emblem.Kind) ([]byte, bool) {
		s, ok := streams[k]
		if !ok {
			return nil, false
		}
		t := int(totals[k])
		if t > len(s) {
			return nil, false
		}
		return s[:t], true
	}

	if raw, ok := finish(emblem.KindRaw); ok {
		return raw, st, nil
	}
	blob, ok := finish(emblem.KindData)
	if !ok {
		return nil, st, fmt.Errorf("%w: no data stream recovered", ErrRestore)
	}

	switch mode {
	case RestoreNative:
		out, err := dbcoder.Decompress(blob)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		return out, st, nil
	default:
		sys, ok := finish(emblem.KindSystem)
		if !ok {
			return nil, st, fmt.Errorf("%w: system emblems (DBDecode) missing", ErrRestore)
		}
		dbProg, err := bootstrap.UnmarshalDynaRisc(sys)
		if err != nil {
			return nil, st, fmt.Errorf("%w: system emblem payload: %v", ErrRestore, err)
		}
		out, err := runDBDecode(dbProg, blob, mode)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrRestore, err)
		}
		// The archived decoder skips the final CRC; verify here.
		if ref, err := dbcoder.Decompress(blob); err != nil || string(ref) != string(out) {
			if err != nil {
				return nil, st, fmt.Errorf("%w: archive CRC: %v", ErrRestore, err)
			}
		}
		return out, st, nil
	}
}

// decodeFrameEmulated runs the archived MODecode program on a scan.
func decodeFrameEmulated(prog *dynarisc.Program, scan *raster.Gray, l emblem.Layout, mode Mode) ([]byte, emblem.Header, error) {
	// Host-side image preprocessing per the Bootstrap (§3.3 step 1):
	// deskew and rescale the scan onto the nominal grid before handing
	// the flat pixel array to the archived decoder. The Bootstrap fixes
	// the rescale target at 3 pixels per module (module centres land on
	// whole pixels), which also keeps every profile's frame inside
	// DynaRisc's 24-bit address range.
	rl := l
	if rl.PxPerModule > 3 {
		rl.PxPerModule = 3
	}
	scan, err := mocoder.Rectify(scan, rl)
	if err != nil {
		return nil, emblem.Header{}, err
	}

	// Input framing per the Bootstrap: [W, H, dataW, dataH, pixels...].
	in := make([]uint16, 0, 4+len(scan.Pix))
	in = append(in, uint16(scan.W), uint16(scan.H), uint16(l.DataW), uint16(l.DataH))
	for _, p := range scan.Pix {
		in = append(in, uint16(p))
	}

	var outBytes []byte
	switch mode {
	case RestoreDynaRisc:
		cpu := dynarisc.NewCPU(dynprog.MOMemWords(scan))
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, emblem.Header{}, err
		}
		cpu.In = in
		if err := cpu.Run(); err != nil {
			return nil, emblem.Header{}, err
		}
		outBytes = cpu.OutBytes()
	case RestoreNested:
		guestWords := dynprog.MOMemWords(scan)
		out, err := nested.Run(prog, in, guestWords, 0)
		if err != nil {
			return nil, emblem.Header{}, err
		}
		outBytes = make([]byte, len(out))
		for i, w := range out {
			outBytes[i] = byte(w)
		}
	default:
		return nil, emblem.Header{}, fmt.Errorf("core: bad emulated mode %v", mode)
	}
	if len(outBytes) == 0 {
		return nil, emblem.Header{}, errors.New("core: MODecode produced no output (damaged frame)")
	}

	// MODecode emits the payload; recover the header from a native parse
	// of the same scan's header block is not available here, so MODecode
	// convention: the payload is prefixed by the 22-byte voted header.
	if len(outBytes) < emblem.HeaderSize {
		return nil, emblem.Header{}, errors.New("core: emulated payload too short")
	}
	hdr, err := emblem.ParseHeader(outBytes[:emblem.HeaderSize])
	if err != nil {
		return nil, emblem.Header{}, err
	}
	return outBytes[emblem.HeaderSize:], hdr, nil
}

// runDBDecode executes the archived DBDecode program on the compressed
// stream under the selected emulation level.
func runDBDecode(prog *dynarisc.Program, blob []byte, mode Mode) ([]byte, error) {
	rawLen, err := dbcoder.RawLen(blob)
	if err != nil {
		return nil, err
	}
	memWords := dynprog.DBOutBuf + rawLen + 4096
	switch mode {
	case RestoreDynaRisc:
		cpu := dynarisc.NewCPU(memWords)
		cpu.MaxSteps = 60_000_000_000
		if err := cpu.LoadProgram(prog.Org, prog.Words); err != nil {
			return nil, err
		}
		cpu.SetInBytes(blob)
		if err := cpu.Run(); err != nil {
			return nil, err
		}
		return cpu.OutBytes(), nil
	case RestoreNested:
		in := make([]uint16, len(blob))
		for i, b := range blob {
			in[i] = uint16(b)
		}
		out, err := nested.Run(prog, in, memWords, 0)
		if err != nil {
			return nil, err
		}
		res := make([]byte, len(out))
		for i, w := range out {
			res[i] = byte(w)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("core: bad emulated mode %v", mode)
	}
}
