package core

// Salvage-engine tests: restoring an unordered, damaged, duplicated,
// incomplete bag of sheets with no external bootstrap text. The
// acceptance differential — Salvage output byte-identical to Restore
// whenever damage stays within the parity budget — is pinned at workers
// 1, 2 and 8, and the identification ledger (ordinals, duplicates,
// missing sheets) is asserted against known damage.

import (
	"bytes"
	"errors"
	"io"
	mrand "math/rand"
	"reflect"
	"testing"

	"microlonys/internal/emblem"
	"microlonys/internal/faultinject"
	"microlonys/internal/mocoder"
	"microlonys/media"
)

// catalogArchive builds a 3-sheet catalog-enabled raw archive over
// testPayload data: three 20-frame groups, 21-frame sheets (group +
// catalog slot).
func catalogArchive(t *testing.T, compress bool) (*Archived, []byte) {
	t.Helper()
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = compress
	opts.SheetFrames = 21
	opts.Catalog = true
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() != 3 {
		t.Fatalf("want 3 sheets, got %d", arch.Volume.Sheets())
	}
	if arch.Manifest.CatalogFrames != 3 || arch.Manifest.ArchiveID == 0 {
		t.Fatalf("catalog manifest: %+v", arch.Manifest)
	}
	return arch, data
}

// bagOf pulls the volume's sheets in the given presentation order.
func bagOf(t *testing.T, v *media.Volume, order ...int) []*media.Medium {
	t.Helper()
	bag := make([]*media.Medium, 0, len(order))
	for _, s := range order {
		m, err := v.Sheet(s)
		if err != nil {
			t.Fatal(err)
		}
		bag = append(bag, m)
	}
	return bag
}

// TestSalvageMatchesRestoreShuffled is the headline acceptance
// differential: a shuffled bag with no bootstrap text salvages to the
// exact Restore output — the exact archive — at workers 1, 2 and 8,
// with identical reports.
func TestSalvageMatchesRestoreShuffled(t *testing.T) {
	arch, data := catalogArchive(t, false)

	want, _, err := RestoreVolume(arch.Volume, arch.BootstrapText, RestoreOptions{Mode: RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, data) {
		t.Fatal("restore differs from input")
	}

	bag := bagOf(t, arch.Volume, 2, 0, 1)
	var ref *SalvageReport
	for _, workers := range []int{1, 2, 8} {
		got, rep, err := Salvage(bag, SalvageOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: salvage differs from restore", workers)
		}
		if !rep.Complete || rep.SheetsDuplicate != 0 || rep.SheetsUnidentified != 0 {
			t.Fatalf("workers=%d: report %+v", workers, rep)
		}
		if rep.ArchiveID != arch.Manifest.ArchiveID {
			t.Fatalf("workers=%d: archive id %#x, manifest %#x", workers, rep.ArchiveID, arch.Manifest.ArchiveID)
		}
		if !reflect.DeepEqual(rep.SheetsIdentified, []int{0, 1, 2}) || len(rep.SheetsMissing) != 0 {
			t.Fatalf("workers=%d: identification %+v / %+v", workers, rep.SheetsIdentified, rep.SheetsMissing)
		}
		// The tiny test frame (361B) cannot carry the ~6KB bootstrap
		// replica, so the catalog legitimately trimmed it: identity,
		// inventory and checksums survive, BootstrapRecovered stays false.
		if !rep.CatalogUsed || rep.CatalogFrames != 3 || rep.BootstrapRecovered {
			t.Fatalf("workers=%d: catalog fields %+v", workers, rep)
		}
		if rep.Stats.GroupsVerified != arch.Manifest.Groups || rep.Stats.GroupsMismatched != 0 {
			t.Fatalf("workers=%d: verification %+v", workers, rep.Stats)
		}
		if ref == nil {
			ref = rep
		} else {
			rep.Stats.Mode = ref.Stats.Mode // same by construction
			if !reflect.DeepEqual(rep, ref) {
				t.Fatalf("workers=%d: report diverged:\n%+v\n%+v", workers, rep, ref)
			}
		}
	}
}

// TestSalvageDamagedAndDuplicated: frame damage within the parity budget
// plus a redundant copy of one sheet still salvages bit-exact, and the
// ledger counts the duplicate.
func TestSalvageDamagedAndDuplicated(t *testing.T) {
	arch, data := catalogArchive(t, false)
	// Three destroyed frames per group — the parity limit. Local slot 0 is
	// the catalog; group frames are 1..20.
	for _, loss := range []struct{ sheet, frame int }{
		{0, 1}, {0, 8}, {0, 20}, {1, 4}, {1, 12}, {1, 19}, {2, 5},
	} {
		if err := arch.Volume.Destroy(loss.sheet, loss.frame); err != nil {
			t.Fatal(err)
		}
	}
	bag := bagOf(t, arch.Volume, 1, 2, 0, 1) // sheet 1 presented twice
	got, rep, err := Salvage(bag, SalvageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("salvage after parity-budget damage differs from input")
	}
	if !rep.Complete || rep.SheetsDuplicate != 1 || rep.SheetsPresented != 4 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Stats.GroupsRecovered != 3 || rep.Stats.GroupsVerified != 3 {
		t.Fatalf("stats %+v", rep.Stats)
	}
}

// TestSalvageWithheldSheet: a sheet missing from the bag is named in the
// ledger, its groups are zero-filled at their archive offsets, and the
// survivors restore bit-exact.
func TestSalvageWithheldSheet(t *testing.T) {
	arch, data := catalogArchive(t, false)
	capacity := mocoder.Capacity(tinyProfile().Layout)

	bag := bagOf(t, arch.Volume, 2, 0) // sheet 1 withheld
	got, rep, err := Salvage(bag, SalvageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("salvage output %d bytes, want %d (zero-filled)", len(got), len(data))
	}
	lo, hi := 17*capacity, 34*capacity
	if !bytes.Equal(got[:lo], data[:lo]) || !bytes.Equal(got[hi:], data[hi:]) {
		t.Fatal("surviving groups shifted off their archive offsets")
	}
	if !bytes.Equal(got[lo:hi], make([]byte, hi-lo)) {
		t.Fatal("withheld sheet's group not zero-filled")
	}
	if rep.Complete {
		t.Fatal("report claims completeness after a lost sheet")
	}
	if !reflect.DeepEqual(rep.SheetsMissing, []int{1}) ||
		!reflect.DeepEqual(rep.SheetsIdentified, []int{0, 2}) {
		t.Fatalf("identification %+v / %+v", rep.SheetsIdentified, rep.SheetsMissing)
	}
	if rep.Stats.GroupsLost != 1 || rep.Stats.GroupsVerified != 2 {
		t.Fatalf("stats %+v", rep.Stats)
	}
}

// TestSalvageCatalogFreeFallback: an archive written without catalogs
// still salvages from a shuffled bag — ordering falls back to the frame
// headers' index vote. The original ordinals are unknowable, so the
// ledger reports planner-order numbering and no catalog.
func TestSalvageCatalogFreeFallback(t *testing.T) {
	prof := tinyProfile()
	capacity := mocoder.Capacity(prof.Layout)
	data := testPayload(40 * capacity)
	opts := DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	bag := bagOf(t, arch.Volume, 1, 2, 0)
	got, rep, err := Salvage(bag, SalvageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("catalog-free salvage differs from input")
	}
	if rep.CatalogUsed || rep.ArchiveID != 0 || rep.CatalogFrames != 0 {
		t.Fatalf("catalog fields set on a catalog-free archive: %+v", rep)
	}
	if !rep.Complete || rep.Stats.GroupsVerified != 0 {
		t.Fatalf("report %+v", rep)
	}
}

// TestSalvageDestroyedCatalogs: every catalog frame destroyed on a
// catalog volume — identification falls back to the header vote and the
// data still salvages bit-exact (an unreadable catalog costs context,
// never data).
func TestSalvageDestroyedCatalogs(t *testing.T) {
	arch, data := catalogArchive(t, false)
	for s := 0; s < arch.Volume.Sheets(); s++ {
		if err := arch.Volume.Destroy(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	bag := bagOf(t, arch.Volume, 2, 1, 0)
	got, rep, err := Salvage(bag, SalvageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("salvage with destroyed catalogs differs from input")
	}
	if rep.CatalogUsed || rep.CatalogFrames != 0 {
		t.Fatalf("destroyed catalogs still reported: %+v", rep)
	}
	if !rep.Complete {
		t.Fatalf("report %+v / stats %+v", rep, rep.Stats)
	}
}

// TestSalvageSingleCatalogSurvivor: only one sheet's catalog survives;
// it still supplies identity, inventory and checksums for the whole bag.
func TestSalvageSingleCatalogSurvivor(t *testing.T) {
	arch, data := catalogArchive(t, false)
	for _, s := range []int{0, 2} {
		if err := arch.Volume.Destroy(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	bag := bagOf(t, arch.Volume, 2, 0, 1)
	got, rep, err := Salvage(bag, SalvageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("salvage with a single surviving catalog differs from input")
	}
	if !rep.CatalogUsed || rep.CatalogFrames != 1 || rep.ArchiveID != arch.Manifest.ArchiveID {
		t.Fatalf("report %+v", rep)
	}
	if !reflect.DeepEqual(rep.SheetsIdentified, []int{0, 1, 2}) {
		t.Fatalf("identification %+v", rep.SheetsIdentified)
	}
	if rep.Stats.GroupsVerified != 3 {
		t.Fatalf("stats %+v", rep.Stats)
	}
}

// TestSalvageTruncatedSheet: a sheet that lost its tail (a torn carrier)
// is still identified and its group recovered when the loss stays within
// parity.
func TestSalvageTruncatedSheet(t *testing.T) {
	arch, data := catalogArchive(t, false)
	s1, err := arch.Volume.Sheet(1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Truncate(s1.FrameCount() - 3) // drop 3 of the group's 20 frames
	bag := bagOf(t, arch.Volume, 1, 0, 2)
	got, rep, err := Salvage(bag, SalvageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("salvage of a truncated sheet differs from input")
	}
	if !rep.Complete || rep.Stats.GroupsRecovered != 1 {
		t.Fatalf("report %+v stats %+v", rep, rep.Stats)
	}
}

// TestSalvageCompressedArchive: the compressed pipeline end to end — the
// data and system sections reassemble from the shuffled bag and DBDecode
// reproduces the original bytes.
func TestSalvageCompressedArchive(t *testing.T) {
	prof := tinyProfile()
	// Incompressible data keeps the compressed stream over one group, so
	// the data and system sections are guaranteed to span sheets.
	data := make([]byte, 8000)
	mrand.New(mrand.NewSource(11)).Read(data)
	opts := DefaultOptions(prof)
	opts.SheetFrames = 21
	opts.Catalog = true
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 2 {
		t.Fatalf("want a multi-sheet compressed archive, got %d sheets", arch.Volume.Sheets())
	}
	order := make([]int, arch.Volume.Sheets())
	for i := range order {
		order[i] = len(order) - 1 - i
	}
	got, rep, err := Salvage(bagOf(t, arch.Volume, order...), SalvageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("compressed salvage differs from input")
	}
	if !rep.Complete {
		t.Fatalf("report %+v", rep)
	}
}

// TestSalvageEmptyAndUnreadable: degenerate bags fail with ErrRestore
// instead of panicking or fabricating output.
func TestSalvageEmptyAndUnreadable(t *testing.T) {
	if _, _, err := Salvage(nil, SalvageOptions{}); !errors.Is(err, ErrRestore) {
		t.Fatalf("empty bag: got %v, want ErrRestore", err)
	}
	prof := tinyProfile()
	m := media.New(prof)
	if _, _, err := Salvage([]*media.Medium{m}, SalvageOptions{}); !errors.Is(err, ErrRestore) {
		t.Fatalf("frameless bag: got %v, want ErrRestore", err)
	}
	arch, _ := catalogArchive(t, false)
	s0, err := arch.Volume.Sheet(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s0.FrameCount(); i++ {
		if err := s0.Destroy(i); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err := Salvage([]*media.Medium{s0}, SalvageOptions{})
	if !errors.Is(err, ErrRestore) {
		t.Fatalf("fully destroyed bag: got %v, want ErrRestore", err)
	}
	if rep == nil || rep.SheetsUnidentified != 1 {
		t.Fatalf("report %+v", rep)
	}
}

// TestSalvageEmulatedFromReplica: the full disaster drill — no bootstrap
// text, decoders recovered from the catalog's compressed replica and
// executed under DynaRisc emulation. Needs a frame large enough to carry
// the replica.
func TestSalvageEmulatedFromReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("emulated salvage is slow")
	}
	l := emblem.Layout{DataW: 480, DataH: 360, PxPerModule: 2}
	prof := media.Profile{
		Name:   "salvage-test",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
	data := testPayload(12000)
	opts := DefaultOptions(prof)
	opts.GroupData = 4
	opts.SheetFrames = 8 // one 4+3 group + catalog slot
	opts.Catalog = true
	arch, err := CreateArchive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume.Sheets() < 2 {
		t.Fatalf("want >=2 sheets, got %d", arch.Volume.Sheets())
	}
	order := make([]int, arch.Volume.Sheets())
	for i := range order {
		order[i] = len(order) - 1 - i
	}
	got, rep, err := Salvage(bagOf(t, arch.Volume, order...), SalvageOptions{Mode: RestoreDynaRisc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("emulated salvage differs from input")
	}
	if !rep.BootstrapFromCatalog || !rep.BootstrapRecovered || !rep.Complete {
		t.Fatalf("report %+v", rep)
	}

	// Without a readable catalog, emulated salvage has no decoders to run
	// and must say so.
	bag := bagOf(t, arch.Volume, order...)
	for _, m := range bag {
		if err := m.Destroy(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Salvage(bag, SalvageOptions{Mode: RestoreDynaRisc}); !errors.Is(err, ErrRestore) {
		t.Fatalf("replica-free emulated salvage: got %v, want ErrRestore", err)
	}
}

// TestSalvageFaultSchedules drives the salvage engine through seeded
// fault-injection schedules — shuffle, duplicate, catalog corruption,
// random frame destruction, a torn sheet — and pins worker-count
// independence on every schedule: bytes and reports identical at 1, 2
// and 8 workers, and bit-exact recovery whenever the report claims
// completeness.
func TestSalvageFaultSchedules(t *testing.T) {
	arch, data := catalogArchive(t, false)
	recovered := 0
	for seed := int64(1); seed <= 4; seed++ {
		sched := faultinject.New(seed)
		bag := bagOf(t, arch.Volume, 0, 1, 2)
		for i, m := range bag {
			bag[i] = m.Clone()
		}
		sched.Shuffle(bag)
		bag = sched.Duplicate(bag, 1)
		if err := sched.CorruptCatalogs(bag, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := sched.DestroyFraction(bag, 0.05); err != nil {
			t.Fatal(err)
		}
		sched.TruncateRandom(bag, 18)

		var want []byte
		var wantRep *SalvageReport
		for _, workers := range []int{1, 2, 8} {
			got, rep, err := Salvage(bag, SalvageOptions{Workers: workers})
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			if want == nil {
				want, wantRep = got, rep
			} else {
				if !bytes.Equal(got, want) {
					t.Fatalf("seed=%d workers=%d: bytes diverged from serial", seed, workers)
				}
				if !reflect.DeepEqual(rep, wantRep) {
					t.Fatalf("seed=%d workers=%d: report diverged:\n%+v\n%+v", seed, workers, rep, wantRep)
				}
			}
		}
		if wantRep.Complete {
			recovered++
			if !bytes.Equal(want, data) {
				t.Fatalf("seed=%d: report claims completeness but bytes differ", seed)
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no schedule recovered; damage too harsh to pin the positive path")
	}
}

// TestSalvageToErroringWriter: an output sink that dies mid-salvage
// surfaces ErrInjected through ErrRestore and drains the pipeline, at
// several worker counts.
func TestSalvageToErroringWriter(t *testing.T) {
	arch, _ := catalogArchive(t, false)
	capacity := mocoder.Capacity(tinyProfile().Layout)
	bag := bagOf(t, arch.Volume, 2, 1, 0)
	for _, workers := range []int{1, 2, 8} {
		w := faultinject.Writer(io.Discard, 18*capacity)
		_, err := SalvageTo(w, bag, SalvageOptions{Workers: workers})
		if !errors.Is(err, ErrRestore) || !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("workers=%d: got %v, want ErrRestore wrapping ErrInjected", workers, err)
		}
	}
}
