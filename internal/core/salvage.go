package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"

	"microlonys/dynarisc"
	"microlonys/internal/catalog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/media"
)

// Salvage is the disaster-path restore: the future user holds an
// unordered bag of sheets — possibly damaged, duplicated, incomplete —
// and nothing else. No bootstrap text, no manifest, no sheet order.
// The salvage engine rebuilds what Restore is handed for free:
//
//	identify: scan and decode every frame of every bag sheet; read each
//	          sheet's catalog emblem (archive id, sheet ordinal, volume
//	          inventory, group checksums, bootstrap replica)
//	order:    place each sheet's frames into the archive's global frame
//	          space — from the catalog inventory, or, when catalogs are
//	          unreadable, by majority vote over the frame headers' index
//	          fields (every surviving frame knows its own position)
//	dedupe:   two bag sheets claiming the same position are copies; keep
//	          the one with more readable frames
//	restore:  run the group assembler best-effort over the reconstructed
//	          frame space, verifying each group against its catalog
//	          checksum and zero-filling what is beyond parity
//
// The output is byte-identical to Restore whenever the damage is within
// the parity budget; beyond it, the SalvageReport ledger says exactly
// which sheets and groups were lost.

// SalvageOptions configures a salvage run.
type SalvageOptions struct {
	// Mode selects the restore execution path. Emulated modes require a
	// readable catalog bootstrap replica (there is no bootstrap text to
	// parse the decoder programs from).
	Mode Mode

	// Workers bounds the scan/decode pool (0 = GOMAXPROCS, 1 = serial).
	// Output and report are identical at any worker count.
	Workers int

	// Context, when non-nil, cancels the salvage pipeline.
	Context context.Context
}

// SalvageReport is the salvage ledger: what the bag contained, what the
// archive was, and what could be brought back.
type SalvageReport struct {
	Stats RestoreStats // assembler tallies (groups verified/mismatched/lost, bytes lost...)

	ArchiveID  uint64 // identity from the catalog (0 when no catalog was readable)
	SheetCount int    // sheets the archive had (from the catalog; bag-derived otherwise)

	SheetsPresented    int   // sheets handed to Salvage
	SheetsIdentified   []int // original sheet ordinals recovered, ascending
	SheetsMissing      []int // ordinals of sheets absent from the bag (requires a catalog)
	SheetsDuplicate    int   // redundant copies discarded after dedupe
	SheetsUnidentified int   // bag sheets with no readable catalog or frame headers

	CatalogFrames        int  // catalog emblems that decoded and parsed
	IndexFrames          int  // selective-restore index emblems that decoded
	CatalogUsed          bool // a catalog supplied inventory, checksums or identity
	BootstrapRecovered   bool // the catalog replica rebuilt the full Bootstrap document
	BootstrapFromCatalog bool // the rebuilt Bootstrap's programs executed the restore (emulated modes)

	Complete bool // nothing lost or mismatched: the output is the exact archive
}

// Salvage restores an unordered bag of sheets into memory. See SalvageTo.
func Salvage(sheets []*media.Medium, opts SalvageOptions) ([]byte, *SalvageReport, error) {
	var buf bytes.Buffer
	rep, err := SalvageTo(&buf, sheets, opts)
	if err != nil {
		return nil, rep, err
	}
	return buf.Bytes(), rep, nil
}

// SalvageTo restores an unordered bag of sheets to w, best-effort, with
// no external bootstrap text. On error, w may hold a prefix of the
// output; the report — returned alongside most errors — still carries
// the identification ledger.
func SalvageTo(w io.Writer, sheets []*media.Medium, opts SalvageOptions) (*SalvageReport, error) {
	n := 0
	for _, m := range sheets {
		if m != nil {
			n += m.FrameCount()
		}
	}
	return salvageToWriter(w, sheets, opts, make([]scanScratch, resolveWorkers(opts.Workers, n)))
}

// SalvageTo is core.SalvageTo through the engine's reused scratch.
func (e *Engine) SalvageTo(w io.Writer, sheets []*media.Medium, opts SalvageOptions) (*SalvageReport, error) {
	opts.Workers = e.workers
	return salvageToWriter(w, sheets, opts, e.scratch)
}

// bagFrame addresses one frame of the presented bag.
type bagFrame struct {
	sheet, local int
}

// bagSheet is one presented sheet's identification state.
type bagSheet struct {
	present int               // position in the bag
	frames  int               // frames on the sheet
	decoded int               // frames that decoded (any kind)
	cat     *catalog.Catalog  // the sheet's own catalog, when readable
	offset  int               // planner offset v: frame at local j holds global planner index v+j
	hasOff  bool
	ordinal int // original sheet ordinal; -1 unknown
}

func salvageToWriter(w io.Writer, sheets []*media.Medium, opts SalvageOptions, scratch []scanScratch) (*SalvageReport, error) {
	rep := &SalvageReport{SheetsPresented: len(sheets)}
	ctx := orBackground(opts.Context)

	var layout emblem.Layout
	var frames []bagFrame
	for s, m := range sheets {
		if m == nil || m.FrameCount() == 0 {
			continue
		}
		if layout == (emblem.Layout{}) {
			layout = m.Profile().Layout
		}
		for j := 0; j < m.FrameCount(); j++ {
			frames = append(frames, bagFrame{s, j})
		}
	}
	if len(frames) == 0 {
		return rep, fmt.Errorf("%w: empty sheet bag", ErrRestore)
	}
	if err := layout.Validate(); err != nil {
		return rep, fmt.Errorf("%w: bag media layout: %w", ErrRestore, err)
	}
	capacity := mocoder.Capacity(layout)

	// Identify: scan and natively decode every frame of every sheet. The
	// emblem geometry is a physical property of the artifact (and is
	// restated in every catalog frame), so no bootstrap is needed to read
	// headers. A frame that fails to scan or decode is damage to recover
	// from, never an abort.
	results := make([]frameResult, len(frames))
	decErr := forEachFrame(ctx, opts.Workers, len(frames), func(_ context.Context, worker, i int) error {
		sc := &scratch[worker]
		m := sheets[frames[i].sheet]
		scan, err := m.ScanFrameInto(&sc.scan, frames[i].local)
		if err != nil {
			return nil // unreadable frame, not a pipeline failure
		}
		res := &results[i]
		res.scanned = true
		var stats *mocoder.Stats
		res.payload, res.hdr, stats, err = mocoder.DecodeWith(&sc.dec, scan, layout)
		if stats != nil {
			res.corrected = stats.BytesCorrected
		}
		res.decoded = err == nil
		return nil
	})
	if decErr != nil {
		return rep, fmt.Errorf("%w: %w", ErrRestore, decErr)
	}

	// Per-sheet identification: parse catalogs, vote planner offsets.
	bag := identifySheets(sheets, frames, results)

	// Adopt the most complete readable catalog — they are identical
	// across sheets apart from the ordinal, but damage may have trimmed
	// some copies harder than others.
	var best *catalog.Catalog
	for _, bs := range bag {
		if bs.cat == nil {
			continue
		}
		rep.CatalogFrames++
		if better(bs.cat, best) {
			best = bs.cat
		}
	}
	catalogOn := best != nil
	if catalogOn {
		rep.CatalogUsed = true
		rep.ArchiveID = best.ArchiveID
		rep.SheetCount = best.SheetCount
	}

	// Index volumes reserve one more leading slot per sheet. The catalog
	// records the reservation; without one the surviving index frames
	// themselves reveal it (their decoded headers say KindIndex).
	indexOn := catalogOn && best.IndexSlot
	for i := range results {
		if results[i].decoded && results[i].hdr.Kind == emblem.KindIndex {
			rep.IndexFrames++
			indexOn = true
		}
	}
	reserved := boolInt(catalogOn) + boolInt(indexOn)

	// Resolve every sheet's planner offset and ordinal from the catalog
	// inventory where the vote is silent, then dedupe copies.
	kept, dup, unid := resolveAndDedupe(bag, best, reserved)
	rep.SheetsDuplicate = dup
	rep.SheetsUnidentified = unid

	// The global planner frame space. The catalog states it exactly;
	// without one it is the furthest frame any kept sheet reaches.
	nTotal := 0
	if catalogOn {
		nTotal = best.TotalFrames - best.SheetCount*reserved
	}
	planner := placeFrames(kept, frames, results, sheets, reserved, &nTotal)
	if nTotal <= 0 {
		return rep, fmt.Errorf("%w: no readable frames", ErrRestore)
	}

	// Identified/missing ledger.
	seen := map[int]bool{}
	for _, ks := range kept {
		if ks.ordinal >= 0 {
			seen[ks.ordinal] = true
			rep.SheetsIdentified = append(rep.SheetsIdentified, ks.ordinal)
		}
	}
	sort.Ints(rep.SheetsIdentified)
	if rep.SheetCount == 0 {
		rep.SheetCount = len(kept)
	}
	for s := 0; s < rep.SheetCount && catalogOn; s++ {
		if !seen[s] {
			rep.SheetsMissing = append(rep.SheetsMissing, s)
		}
	}

	// Emulated modes decode through the archived programs; with no
	// bootstrap text the only source is the catalog replica.
	var moProg *dynarisc.Program
	if opts.Mode != RestoreNative {
		if best == nil {
			return rep, fmt.Errorf("%w: emulated salvage needs a catalog bootstrap replica and no catalog was readable", ErrRestore)
		}
		doc, err := best.BootstrapDoc()
		if err != nil {
			return rep, fmt.Errorf("%w: emulated salvage: %w", ErrRestore, err)
		}
		rep.BootstrapRecovered = true
		rep.BootstrapFromCatalog = true
		if moProg, err = doc.MODecodeProgram(); err != nil {
			return rep, fmt.Errorf("%w: catalog replica MODecode: %w", ErrRestore, err)
		}
		// Re-decode the kept sheets' frames through the recovered program:
		// the restore path the future user would actually run.
		// Identification keeps the native pass's placement (the headers
		// agree); discarded duplicate sheets are not decoded twice.
		keptPresent := map[int]bool{}
		for _, ks := range kept {
			keptPresent[ks.present] = true
		}
		redoErr := forEachFrame(ctx, opts.Workers, len(frames), func(_ context.Context, worker, i int) error {
			res := &results[i]
			if !res.scanned || !keptPresent[frames[i].sheet] {
				return nil
			}
			sc := &scratch[worker]
			m := sheets[frames[i].sheet]
			scan, err := m.ScanFrameInto(&sc.scan, frames[i].local)
			if err != nil {
				res.scanned, res.decoded = false, false
				return nil
			}
			res.payload, res.hdr, err = decodeFrameEmulated(&sc.emu, moProg, scan, layout, opts.Mode)
			res.decoded = err == nil
			res.corrected = 0
			return nil
		})
		if redoErr != nil {
			return rep, fmt.Errorf("%w: %w", ErrRestore, redoErr)
		}
		planner = placeFrames(kept, frames, results, sheets, reserved, &nTotal)
	} else if best != nil {
		if _, err := best.BootstrapDoc(); err == nil {
			rep.BootstrapRecovered = true
		}
	}

	// Best-effort group assembly over the reconstructed frame space.
	gp := groupParityOf(best, results)
	numSheets := rep.SheetCount
	if numSheets <= 0 {
		numSheets = 1
	}
	st := &RestoreStats{Mode: opts.Mode, Sheets: make([]SheetReport, numSheets)}
	st.CatalogFrames = rep.CatalogFrames
	st.IndexFrames = rep.IndexFrames
	asm := &assembler{
		st:          st,
		capacity:    capacity,
		groupParity: gp,
		partial:     true,
		out:         w,
		sinks:       map[emblem.Kind]*kindSink{},
		sheetOf:     plannerSheetOf(nTotal, numSheets, kept, best, reserved),
		zeros:       make([]byte, capacity),
		lastClosed:  -1,
	}
	if best != nil {
		asm.sums = best.Groups
	}
	var asmErr error
	for i := 0; i < nTotal && asmErr == nil; i++ {
		// The assembly leg is serial; honor cancellation between groups so
		// a salvage of a large bag aborts promptly (the scan/decode legs
		// already stop through forEachFrame).
		if i%(mocoder.GroupData+mocoder.GroupParity) == 0 && ctx.Err() != nil {
			asmErr = fmt.Errorf("%w: %w", ErrRestore, ctx.Err())
			break
		}
		asmErr = asm.consume(i, &planner[i])
	}
	if asmErr == nil {
		asmErr = asm.finish()
	}
	if asmErr == nil {
		if err := ctx.Err(); err != nil {
			asmErr = fmt.Errorf("%w: %w", ErrRestore, err)
		} else {
			asmErr = decompressTail(w, asm, opts.Mode)
		}
	}
	rep.Stats = *st
	rep.Complete = asmErr == nil && st.GroupsLost == 0 && st.FramesLost == 0 &&
		st.GroupsMismatched == 0 && len(rep.SheetsMissing) == 0
	return rep, asmErr
}

// identifySheets builds each presented sheet's identification state from
// the decoded frames: its catalog (if one decoded) and the majority vote
// over planner offsets — every decoded frame at local position j with
// header index idx claims its sheet starts the planner space at idx-j.
func identifySheets(sheets []*media.Medium, frames []bagFrame, results []frameResult) []*bagSheet {
	bag := make([]*bagSheet, len(sheets))
	votes := make([]map[int]int, len(sheets))
	for i, bf := range frames {
		bs := bag[bf.sheet]
		if bs == nil {
			bs = &bagSheet{present: bf.sheet, frames: sheets[bf.sheet].FrameCount(), ordinal: -1}
			bag[bf.sheet] = bs
			votes[bf.sheet] = map[int]int{}
		}
		res := &results[i]
		if !res.decoded {
			continue
		}
		bs.decoded++
		if res.hdr.Kind == emblem.KindCatalog {
			if bs.cat == nil {
				if c, err := catalog.Parse(res.payload); err == nil {
					bs.cat = c
				}
			}
			continue
		}
		if res.hdr.Kind == emblem.KindIndex {
			continue // out-of-band: its header Index is a sheet ordinal, not a planner position
		}
		votes[bf.sheet][int(res.hdr.Index)-bf.local]++
	}
	for s, bs := range bag {
		if bs == nil {
			continue
		}
		bestV, bestN := 0, 0
		for v, n := range votes[s] {
			if n > bestN || (n == bestN && v < bestV) {
				bestV, bestN = v, n
			}
		}
		if bestN > 0 {
			bs.offset, bs.hasOff = bestV, true
		}
		if bs.cat != nil {
			bs.ordinal = bs.cat.Sheet
		}
	}
	out := bag[:0]
	for _, bs := range bag {
		if bs != nil {
			out = append(out, bs)
		}
	}
	return out
}

// better ranks catalogs by completeness: replica > group checksums >
// sheet inventory > any.
func better(c, than *catalog.Catalog) bool {
	if than == nil {
		return true
	}
	score := func(c *catalog.Catalog) int {
		s := 0
		if len(c.Replica) > 0 {
			s += 4
		}
		if len(c.Groups) > 0 {
			s += 2
		}
		if len(c.Sheets) > 0 {
			s++
		}
		return s
	}
	return score(c) > score(than)
}

// resolveAndDedupe fills planner offsets from the catalog inventory where
// frame votes are silent, then collapses bag sheets claiming the same
// planner position, keeping the copy with the most readable frames
// (ties: the earlier bag position). Returns the kept sheets, the number
// of discarded duplicates, and the number of unidentifiable sheets.
func resolveAndDedupe(bag []*bagSheet, best *catalog.Catalog, reserved int) (kept []*bagSheet, dup, unid int) {
	for _, bs := range bag {
		if bs.hasOff {
			continue
		}
		// A sheet whose catalog survived but whose data frames all failed:
		// the inventory places it. On reserved-slot volumes planner(j) =
		// v+j with the sheet's `reserved` leading slots (catalog, index)
		// outside the planner space, so v = startFrame - ordinal*reserved
		// - reserved.
		if bs.cat != nil && bs.ordinal >= 0 && bs.ordinal < len(bs.cat.Sheets) {
			bs.offset = bs.cat.Sheets[bs.ordinal].StartFrame - bs.ordinal*reserved - reserved
			bs.hasOff = true
		}
	}
	// Derive missing ordinals from the inventory: the sheet whose range
	// starts where this sheet's frames start.
	if best != nil {
		for _, bs := range bag {
			if bs.ordinal >= 0 || !bs.hasOff {
				continue
			}
			for s, r := range best.Sheets {
				if r.StartFrame-s*reserved-reserved == bs.offset {
					bs.ordinal = s
					break
				}
			}
		}
	}

	byKey := map[int]*bagSheet{}
	var orphans []*bagSheet // identified by ordinal only (no frames to place)
	for _, bs := range bag {
		switch {
		case bs.hasOff:
			cur := byKey[bs.offset]
			if cur == nil {
				byKey[bs.offset] = bs
			} else {
				dup++
				if bs.decoded > cur.decoded || (bs.decoded == cur.decoded && bs.present < cur.present) {
					byKey[bs.offset] = bs
				}
			}
		case bs.ordinal >= 0:
			orphans = append(orphans, bs)
		default:
			unid++
		}
	}
	for _, bs := range byKey {
		kept = append(kept, bs)
	}
	for _, bs := range orphans {
		// Dedupe orphans against placed sheets by ordinal.
		dupOf := false
		for _, ks := range kept {
			if ks.ordinal == bs.ordinal {
				dupOf = true
				break
			}
		}
		if dupOf {
			dup++
		} else {
			kept = append(kept, bs)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].hasOff != kept[j].hasOff {
			return kept[i].hasOff
		}
		if kept[i].offset != kept[j].offset {
			return kept[i].offset < kept[j].offset
		}
		return kept[i].present < kept[j].present
	})
	// Without a catalog the original ordinals are unknowable; planner
	// order is the best reconstruction — number the sheets by it.
	for rank, ks := range kept {
		if ks.ordinal < 0 {
			ks.ordinal = rank
		}
	}
	return kept, dup, unid
}

// placeFrames lays every kept sheet's decoded frames into the global
// planner frame space (catalog and index slots excluded — they are
// scan-space artifacts). Slots covered by a present sheet are marked
// scanned even when their frame failed to decode, so the loss ledger
// distinguishes damaged-but-present from absent. nTotal grows to fit when
// the catalog did not state it.
func placeFrames(kept []*bagSheet, frames []bagFrame, results []frameResult, sheets []*media.Medium, reserved int, nTotal *int) []frameResult {
	keptSet := map[int]*bagSheet{}
	for _, ks := range kept {
		if ks.hasOff {
			keptSet[ks.present] = ks
		}
	}
	// Size first: the furthest planner index any placed sheet reaches.
	for _, ks := range keptSet {
		// The leading reserved slots are not planner frames.
		end := ks.offset + ks.frames - reserved
		if end > *nTotal {
			*nTotal = end
		}
	}
	if *nTotal <= 0 {
		return nil
	}
	planner := make([]frameResult, *nTotal)
	for i, bf := range frames {
		ks := keptSet[bf.sheet]
		if ks == nil {
			continue
		}
		res := &results[i]
		if res.decoded && (res.hdr.Kind == emblem.KindCatalog || res.hdr.Kind == emblem.KindIndex) {
			continue
		}
		// Skip the reserved slots even when they failed to decode.
		if bf.local < reserved {
			continue
		}
		pi := ks.offset + bf.local
		if pi < 0 || pi >= *nTotal {
			continue
		}
		if planner[pi].decoded && !res.decoded {
			continue // never let a failed frame shadow a decoded one
		}
		planner[pi] = frameResult{scanned: res.scanned, decoded: res.decoded,
			hdr: res.hdr, payload: res.payload, corrected: res.corrected}
	}
	return planner
}

// groupParityOf resolves the parity-per-group the loss arithmetic needs:
// the catalog states it; otherwise the surviving frame headers vote.
func groupParityOf(best *catalog.Catalog, results []frameResult) int {
	if best != nil && best.GroupParity > 0 {
		return best.GroupParity
	}
	votes := map[int]int{}
	for i := range results {
		if results[i].decoded && results[i].hdr.Kind != emblem.KindCatalog &&
			results[i].hdr.Kind != emblem.KindIndex {
			votes[int(results[i].hdr.GroupParity)]++
		}
	}
	bestV, bestN := mocoder.GroupParity, 0
	for v, n := range votes {
		if v > 0 && (n > bestN || (n == bestN && v < bestV)) {
			bestV, bestN = v, n
		}
	}
	return bestV
}

// plannerSheetOf maps planner frame indices to original sheet ordinals
// for the per-sheet ledger: exact from the catalog inventory, otherwise
// from the kept sheets' ranges (gaps inherit the preceding sheet).
func plannerSheetOf(n, numSheets int, kept []*bagSheet, best *catalog.Catalog, reserved int) []int {
	sheetOf := make([]int, n)
	for i := range sheetOf {
		sheetOf[i] = -1
	}
	assign := func(lo, length, s int) {
		if s < 0 || s >= numSheets {
			return
		}
		for i := lo; i < lo+length && i < n; i++ {
			if i >= 0 {
				sheetOf[i] = s
			}
		}
	}
	if best != nil && len(best.Sheets) > 0 {
		// Inventory ranges are in scan space (reserved slots included); the
		// planner range of sheet s starts StartFrame-s*reserved and holds
		// `reserved` frames fewer.
		for s, r := range best.Sheets {
			assign(r.StartFrame-s*reserved, r.Frames-reserved, s)
		}
	} else {
		for _, ks := range kept {
			if ks.hasOff {
				assign(ks.offset, ks.frames-reserved, ks.ordinal)
			}
		}
	}
	// Gaps (frames no identified sheet covers) inherit the preceding
	// sheet so every index maps somewhere within bounds.
	cur := 0
	for i := 0; i < n; i++ {
		if sheetOf[i] >= 0 {
			cur = sheetOf[i]
		} else {
			sheetOf[i] = cur
		}
	}
	return sheetOf
}
