package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"microlonys/dynarisc"
	"microlonys/internal/archindex"
	"microlonys/internal/bootstrap"
	"microlonys/internal/catalog"
	"microlonys/internal/dbcoder"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/nested"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/raster"
	"microlonys/verisc"
)

// The archival pipeline (Figure 2a), as three explicit stages:
//
//	plan:   DBCoder + system stream → an io.Reader per section → fixed-size
//	        outer-code group plans, one at a time (serial; owns all
//	        cross-frame state: chunking, parity, header and index fixup)
//	encode: group plan → rasterized emblems (parallel per frame)
//	place:  emblems → the volume's sheets, in frame order, one whole group
//	        per write (serial; a group never straddles a sheet)
//
// With one worker the three stages run inline on the calling goroutine —
// the reference formulation the parallel path must match byte for byte.
// With more, the serial stages overlap the parallel middle (see
// pipelineGroups): the planner goroutine cuts groups and feeds frame
// tasks to the encode pool while the placer consumes finished groups in
// plan order, so planning group k+2, encoding group k+1 and writing
// group k proceed concurrently instead of the planner and placer
// stalling the pool at every group boundary.
//
// The planner streams: it reads one group's worth of payload bytes at a
// time and hands the group on before cutting the next, so peak memory is
// bounded by the groups in flight — exactly one when serial, at most
// pipelineGroupDepth+2 when pipelined (queue, plus one being planned and
// one being placed) — not the whole archive's frame list. Fixing headers
// and frame indices at planning time is what keeps the encode fan-out
// trivially deterministic: workers only rasterize, they never allocate
// indices or touch shared counters, and the placer writes whole groups
// in the order the planner emitted them.

// The archived decoder programs and the Bootstrap emulator are
// deterministic builds of static assembly; build each once per process
// instead of once per archive (they dominated CreateArchive's fixed cost
// for small archives). All consumers treat the programs as read-only.
var (
	buildOnce sync.Once
	builtEmu  *verisc.Program
	builtMO   *dynarisc.Program
	builtDB   *dynarisc.Program
	buildErr  error
)

func archivedPrograms() (*verisc.Program, *dynarisc.Program, *dynarisc.Program, error) {
	buildOnce.Do(func() {
		if builtEmu, buildErr = nested.Program(); buildErr != nil {
			buildErr = fmt.Errorf("core: building emulator: %w", buildErr)
			return
		}
		if builtMO, buildErr = dynprog.MODecode(); buildErr != nil {
			buildErr = fmt.Errorf("core: assembling MODecode: %w", buildErr)
			return
		}
		if builtDB, buildErr = dynprog.DBDecode(); buildErr != nil {
			buildErr = fmt.Errorf("core: assembling DBDecode: %w", buildErr)
		}
	})
	return builtEmu, builtMO, builtDB, buildErr
}

// frameTask is one planned emblem: the payload and the fully resolved
// header the encode stage will rasterize.
type frameTask struct {
	payload []byte
	hdr     emblem.Header
}

// groupPlan is one outer-code group's worth of planned frames — data
// emblems first, then parity — the unit the planner emits and the place
// stage writes atomically onto a sheet.
type groupPlan struct {
	tasks []frameTask
}

// CreateArchive runs the archival pipeline (Figure 2a) over an in-memory
// archive: db_dump output in, written volume + Bootstrap out. It is
// CreateArchiveStream over a bytes.Reader.
func CreateArchive(data []byte, opts Options) (*Archived, error) {
	return CreateArchiveStream(bytes.NewReader(data), opts)
}

// CreateArchiveStream runs the archival pipeline over an io.Reader,
// planning, encoding and placing one outer-code group at a time.
//
// Every frame header carries its section's TotalLen, so the planner needs
// each section's byte length before the first group is cut: compressed
// archives learn it from DBCoder's output (DBCoder is a whole-stream
// compressor, so the input is buffered regardless), raw archives read it
// from the reader's Len or Seek end without buffering, falling back to
// buffering only for unsized streams (pipes). The rasterized frames —
// three orders of magnitude larger than the payload bytes — are never
// materialized beyond the group in flight.
func CreateArchiveStream(r io.Reader, opts Options) (*Archived, error) {
	if opts.GroupData <= 0 {
		opts.GroupData = mocoder.GroupData
	}
	if opts.GroupParity <= 0 {
		opts.GroupParity = mocoder.GroupParity
	}
	if opts.GroupData > mocoder.GroupData || opts.GroupParity != mocoder.GroupParity {
		return nil, fmt.Errorf("core: unsupported group shape %d+%d", opts.GroupData, opts.GroupParity)
	}
	if opts.SheetFrames > 0 && opts.SheetFrames < opts.GroupData+opts.GroupParity {
		return nil, fmt.Errorf("core: sheet capacity %d below group size %d+%d",
			opts.SheetFrames, opts.GroupData, opts.GroupParity)
	}
	if reserved := boolInt(opts.Catalog) + boolInt(opts.Index); reserved > 0 && opts.SheetFrames > 0 &&
		opts.SheetFrames < opts.GroupData+opts.GroupParity+reserved {
		return nil, fmt.Errorf("core: sheet capacity %d below group size %d+%d plus %d reserved slots",
			opts.SheetFrames, opts.GroupData, opts.GroupParity, reserved)
	}
	layout := opts.Profile.Layout
	capacity := mocoder.Capacity(layout)
	if capacity <= 0 {
		return nil, fmt.Errorf("core: profile %q has zero emblem capacity", opts.Profile.Name)
	}

	// Resolve the sections: the (possibly compressed) data stream, then
	// the archived DBDecode instruction stream (system emblems).
	p := &planner{opts: opts, capacity: capacity}
	var sections []archiveSection
	var idxBlocks []dbcoder.SeekBlock
	var idxSections []archindex.Section
	if opts.Compress {
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("core: reading input: %w", err)
		}
		depth := opts.CompressDepth
		if depth <= 0 {
			depth = dbcoder.DefaultDepth
		}
		var stream []byte
		if opts.Index {
			// Indexed archives use the seekable container: independently
			// decodable restart blocks whose raw/compressed extents the
			// index records, so a range query decompresses only the blocks
			// it overlaps.
			blockBytes := opts.IndexBlockBytes
			if blockBytes <= 0 {
				// Default: about one outer-code group of compressed
				// payload per block, but never more block-table entries
				// than the index frame can carry alongside its section
				// table (~16 raw bytes per entry against one frame's
				// capacity), or the trim ladder would drop the sections.
				blockBytes = opts.GroupData * capacity
				if maxBlocks := capacity / 16; maxBlocks > 0 {
					if minBytes := (len(data) + maxBlocks - 1) / maxBlocks; blockBytes < minBytes {
						blockBytes = minBytes
					}
				}
			}
			stream = dbcoder.CompressSeekableDepth(data, depth, blockBytes)
			if bl, err := dbcoder.SeekTable(stream); err == nil {
				idxBlocks = bl
			}
			idxSections = namedSections(data)
		} else {
			stream = dbcoder.CompressDepth(data, depth)
		}
		p.man.RawLen = len(data)
		p.man.StreamLen = len(stream)

		_, _, prog, err := archivedPrograms()
		if err != nil {
			return nil, err
		}
		sys := bootstrap.MarshalDynaRisc(prog)
		p.man.SystemLen = len(sys)
		sections = []archiveSection{
			{emblem.KindData, bytes.NewReader(stream), len(stream)},
			{emblem.KindSystem, bytes.NewReader(sys), len(sys)},
		}
	} else if opts.Index {
		// Section discovery needs the bytes in hand; raw indexed archives
		// buffer the input like compressed ones do.
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("core: reading input: %w", err)
		}
		idxSections = namedSections(data)
		p.man.RawLen = len(data)
		p.man.StreamLen = len(data)
		sections = []archiveSection{{emblem.KindRaw, bytes.NewReader(data), len(data)}}
	} else {
		total, rr, err := readerLen(r)
		if err != nil {
			return nil, fmt.Errorf("core: sizing input: %w", err)
		}
		p.man.RawLen = total
		p.man.StreamLen = total
		sections = []archiveSection{{emblem.KindRaw, rr, total}}
	}
	for _, sec := range sections {
		if int64(sec.total) > math.MaxUint32 {
			return nil, fmt.Errorf("core: section of %d bytes exceeds the 4 GiB header limit", sec.total)
		}
	}

	// Plan → encode → place. The section totals are known before the
	// first group is cut, so the whole archive's frame count is too —
	// the pool (and its scratch) never exceeds the frames there are to
	// encode.
	vol := media.NewVolume(opts.Profile, opts.SheetFrames)
	if opts.Catalog {
		if err := vol.EnableCatalog(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if opts.Index {
		if err := vol.EnableIndex(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	workers := resolveWorkers(opts.Workers, plannedFrames(sections, capacity, opts))
	scratch := make([]encScratch, workers)
	if workers == 1 {
		// Serial reference path: plan, encode and place each group inline.
		ctx := orBackground(opts.Context)
		emit := func(gp groupPlan) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			frames, err := encodeFrames(ctx, gp.tasks, layout, 1, scratch)
			if err != nil {
				return err
			}
			if err := vol.WriteGroup(frames); err != nil {
				return fmt.Errorf("core: writing medium: %w", err)
			}
			p.groupSheets = append(p.groupSheets, vol.Sheets()-1)
			return nil
		}
		for _, sec := range sections {
			if err := p.section(sec.kind, sec.r, sec.total, emit); err != nil {
				return nil, err
			}
		}
	} else if err := pipelineGroups(p, sections, layout, vol, workers, scratch); err != nil {
		return nil, err
	}
	p.man.Groups = p.groupID
	p.man.TotalFrames = p.frameIdx
	p.man.Sheets = vol.Sheets()

	// The deterministic archive identity both the catalog and the index
	// carry; computable only once every group checksum is collected.
	if opts.Catalog || opts.Index {
		p.man.ArchiveID = archiveID(p.opts, p.man, p.sums)
	}

	// Indexed volumes: marshal the selective-restore index once — block
	// and section tables are final after placement — so the catalog can
	// carry a replica and every sheet's index slot the same payload.
	var indexPayload []byte
	if opts.Index {
		x := &archindex.Index{
			ArchiveID:   p.man.ArchiveID,
			Compress:    opts.Compress,
			CatalogSlot: opts.Catalog,
			RawLen:      p.man.RawLen,
			StreamLen:   p.man.StreamLen,
			SystemLen:   p.man.SystemLen,
			GroupData:   opts.GroupData,
			GroupParity: opts.GroupParity,
			SheetFrames: opts.SheetFrames,
			Blocks:      idxBlocks,
			Sections:    idxSections,
		}
		var err error
		if indexPayload, err = x.Marshal(capacity); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	// Catalog volumes: with every group placed the inventory is complete,
	// so render each sheet's catalog emblem and back-patch the reserved
	// slot 0 (byte-identical to having written it in sequence).
	if opts.Catalog {
		if err := p.fillCatalogs(vol, capacity, &scratch[0], indexPayload); err != nil {
			return nil, err
		}
		p.man.CatalogFrames = vol.Sheets()
		p.man.TotalFrames += vol.Sheets()
	}
	if opts.Index {
		if err := p.fillIndexes(vol, indexPayload, &scratch[0]); err != nil {
			return nil, err
		}
		p.man.IndexFrames = vol.Sheets()
		p.man.TotalFrames += vol.Sheets()
	}

	// Step 6: Bootstrap document.
	emu, mo, _, err := archivedPrograms()
	if err != nil {
		return nil, err
	}
	doc := bootstrap.New(opts.Profile.Name, layout, opts.GroupData, opts.GroupParity, emu, mo)
	doc.Catalog = opts.Catalog
	doc.Index = opts.Index

	arch := &Archived{
		Volume:        vol,
		Bootstrap:     doc,
		BootstrapText: doc.Render(),
		Manifest:      p.man,
		Options:       opts,
	}
	if vol.Sheets() == 1 {
		arch.Medium, _ = vol.Sheet(0)
	}
	return arch, nil
}

// planner owns the archive side's cross-frame state: global frame and
// group counters and the manifest tallies. Section by section it cuts the
// stream into capacity-sized chunks, forms outer-code groups, computes
// their parity payloads and fixes every frame's header and index — then
// hands each group to the emit callback and forgets it.
type planner struct {
	opts     Options
	capacity int
	groupID  int
	frameIdx int
	man      Manifest

	// Catalog bookkeeping (Options.Catalog only): per-group checksum
	// records collected at planning time — the padded data payloads the
	// CRC covers are exactly what the planner just built — and the sheet
	// each group landed on, appended by the place stage in plan order.
	sums        []catalog.GroupSum
	groupSheets []int
}

// section plans one section's groups, reading exactly total bytes from r
// one group at a time. An empty section still occupies one empty chunk,
// so every section produces at least one emblem carrying its TotalLen.
func (p *planner) section(kind emblem.Kind, r io.Reader, total int, emit func(groupPlan) error) error {
	totalChunks := (total + p.capacity - 1) / p.capacity
	if totalChunks == 0 {
		totalChunks = 1
	}
	for chunk := 0; chunk < totalChunks; {
		g := p.opts.GroupData
		if g > totalChunks-chunk {
			g = totalChunks - chunk
		}

		group := make([][]byte, g)
		padded := make([][]byte, g)
		for i := range group {
			n := p.capacity
			if chunk+i == totalChunks-1 {
				n = total - (totalChunks-1)*p.capacity
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				return fmt.Errorf("core: reading section stream: %w", err)
			}
			group[i] = buf
			pd := make([]byte, p.capacity)
			copy(pd, buf)
			padded[i] = pd
		}
		parity, err := mocoder.GroupParityPayloads(padded)
		if err != nil {
			return fmt.Errorf("core: group parity: %w", err)
		}
		if p.opts.Catalog || p.opts.Index {
			p.sums = append(p.sums, catalog.GroupSum{
				Kind: kind, Data: uint8(g), Parity: uint8(len(parity)),
				CRC: catalog.GroupCRC(padded),
			})
		}

		// The emblem header stores frame indices and group ids as uint16;
		// reject archives that would wrap instead of corrupting silently
		// (the restore side's loss arithmetic depends on monotonic ids).
		if p.groupID > math.MaxUint16 || p.frameIdx+g+len(parity) > math.MaxUint16+1 {
			return fmt.Errorf("core: archive exceeds the header's 65536-frame/group limit (frame %d, group %d); split the input across volumes",
				p.frameIdx, p.groupID)
		}

		gp := groupPlan{tasks: make([]frameTask, 0, g+len(parity))}
		add := func(payload []byte, k emblem.Kind, pos int) {
			gp.tasks = append(gp.tasks, frameTask{
				payload: payload,
				hdr: emblem.Header{
					Kind:        k,
					Index:       uint16(p.frameIdx),
					GroupID:     uint16(p.groupID),
					GroupPos:    uint8(pos),
					GroupData:   uint8(g),
					GroupParity: uint8(p.opts.GroupParity),
					TotalLen:    uint32(total),
				},
			})
			p.frameIdx++
		}
		for i, c := range group {
			add(c, kind, i)
			if kind == emblem.KindSystem {
				p.man.SystemEmblems++
			} else {
				p.man.DataEmblems++
			}
		}
		for i, par := range parity {
			add(par, emblem.KindParity, g+i)
			p.man.ParityEmblems++
		}
		p.groupID++
		chunk += g

		if err := emit(gp); err != nil {
			return err
		}
	}
	return nil
}

// archiveSection is one planned section of the archive stream: its emblem
// kind, its byte source and its exact length (known before the first
// group is cut — every frame header carries the section TotalLen).
type archiveSection struct {
	kind  emblem.Kind
	r     io.Reader
	total int
}

// plannedFrames computes the archive's total frame count from the section
// lengths alone — the same chunk/group arithmetic planner.section walks,
// evaluated up front so the encode pool can be sized to the frames that
// will actually exist.
func plannedFrames(sections []archiveSection, capacity int, opts Options) int {
	frames := 0
	for _, sec := range sections {
		chunks := (sec.total + capacity - 1) / capacity
		if chunks == 0 {
			chunks = 1
		}
		groups := (chunks + opts.GroupData - 1) / opts.GroupData
		frames += chunks + groups*opts.GroupParity
	}
	return frames
}

// pipelineGroupDepth bounds how far the planner may run ahead of the
// placer, in whole queued groups. Frames in flight never exceed
// (pipelineGroupDepth+2)·GroupTotal — the queue plus the group being
// planned and the group being placed — which is the archive pipeline's
// peak-memory bound.
const pipelineGroupDepth = 2

// plannedGroup is a groupPlan in flight through the pipelined archive:
// the placer waits on done (closed when the encode pool has filled every
// frame slot), then reports the lowest-index frame error or writes the
// whole group to the volume.
type plannedGroup struct {
	tasks  []frameTask
	frames []*raster.Gray
	errs   []error
	left   int64 // frames not yet encoded; the last encoder closes done
	done   chan struct{}
}

// encodeTask is one frame of a plannedGroup awaiting rasterization.
type encodeTask struct {
	pg *plannedGroup
	i  int
}

// pipelineGroups runs plan → encode → place with the serial stages
// overlapped: a planner goroutine cuts groups and feeds the bounded
// groups queue (plan order, pipelineGroupDepth deep) and the frame-task
// channel; `workers` encode goroutines drain tasks into their group's
// frame slots; the placer — this goroutine — consumes the groups queue
// in order, waiting per group for its last frame. Output is byte-
// identical to the serial path at any worker count: frame indices,
// headers and group order are fixed at planning time, and the placer
// writes whole groups in plan order. Error precedence matches the serial
// path too — the first failing group in plan order reports its
// lowest-index frame error (cancelling the rest), and a planner error
// surfaces only once every group it emitted has been placed.
func pipelineGroups(p *planner, sections []archiveSection, layout emblem.Layout, vol *media.Volume, workers int, scratch []encScratch) error {
	ctx, cancel := context.WithCancel(orBackground(p.opts.Context))
	defer cancel()

	groups := make(chan *plannedGroup, pipelineGroupDepth)
	tasks := make(chan encodeTask, workers)

	// Plan stage. Every group reaches the groups queue before its frame
	// tasks are enqueued, so the queue order is the plan order; once a
	// group is queued, all its tasks follow (cancellation is the placer's
	// own doing, after which it stops waiting on done channels).
	planErr := make(chan error, 1)
	go func() {
		defer close(groups)
		defer close(tasks)
		emit := func(gp groupPlan) error {
			pg := &plannedGroup{
				tasks:  gp.tasks,
				frames: make([]*raster.Gray, len(gp.tasks)),
				errs:   make([]error, len(gp.tasks)),
				left:   int64(len(gp.tasks)),
				done:   make(chan struct{}),
			}
			select {
			case groups <- pg:
			case <-ctx.Done():
				return ctx.Err()
			}
			for i := range pg.tasks {
				select {
				case tasks <- encodeTask{pg, i}:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return nil
		}
		var err error
		for _, sec := range sections {
			if err = p.section(sec.kind, sec.r, sec.total, emit); err != nil {
				break
			}
		}
		planErr <- err
	}()

	// Encode stage: the parallel middle. After cancellation the workers
	// keep draining tasks without encoding so every group's done channel
	// still closes.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for t := range tasks {
				if ctx.Err() == nil {
					ft := &t.pg.tasks[t.i]
					img, err := scratch[worker].enc.Encode(ft.payload, ft.hdr, layout)
					if err != nil {
						kind := "emblem"
						if ft.hdr.Kind == emblem.KindParity {
							kind = "parity emblem"
						}
						t.pg.errs[t.i] = fmt.Errorf("core: encoding %s: %w", kind, err)
					} else {
						t.pg.frames[t.i] = img
					}
				}
				if atomic.AddInt64(&t.pg.left, -1) == 0 {
					close(t.pg.done)
				}
			}
		}(w)
	}

	// Place stage, on the calling goroutine. After an error it keeps
	// draining the queue (without waiting) so the planner can unblock and
	// observe the cancellation.
	var placeErr error
	for pg := range groups {
		if placeErr != nil {
			continue
		}
		<-pg.done
		for _, err := range pg.errs {
			if err != nil {
				placeErr = err
				break
			}
		}
		if placeErr == nil {
			if err := vol.WriteGroup(pg.frames); err != nil {
				placeErr = fmt.Errorf("core: writing medium: %w", err)
			} else {
				p.groupSheets = append(p.groupSheets, vol.Sheets()-1)
			}
		}
		if placeErr != nil {
			cancel()
		}
	}
	err := <-planErr
	wg.Wait()
	if placeErr != nil {
		return placeErr
	}
	return err
}

// orBackground resolves an optional caller context.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// fillCatalogs renders one catalog emblem per sheet — shared archive
// identity, inventory, checksums, bootstrap replica — and back-patches
// each sheet's reserved slot 0. Runs after placement, when the whole
// inventory is known; serial, on the caller's goroutine.
func (p *planner) fillCatalogs(vol *media.Volume, capacity int, scratch *encScratch, indexPayload []byte) error {
	emu, mo, _, err := archivedPrograms()
	if err != nil {
		return err
	}
	replica := catalog.EncodeEssentials(emu, mo)

	sheets := make([]catalog.SheetRange, vol.Sheets())
	for s := range sheets {
		start, err := vol.SheetStart(s)
		if err != nil {
			return fmt.Errorf("core: catalog inventory: %w", err)
		}
		m, err := vol.Sheet(s)
		if err != nil {
			return fmt.Errorf("core: catalog inventory: %w", err)
		}
		sheets[s] = catalog.SheetRange{StartFrame: start, Frames: m.FrameCount(), StartGroup: -1}
	}
	for g, s := range p.groupSheets {
		if sheets[s].Groups == 0 {
			sheets[s].StartGroup = g
		}
		sheets[s].Groups++
	}

	c := &catalog.Catalog{
		ArchiveID:    p.man.ArchiveID,
		SheetCount:   vol.Sheets(),
		TotalFrames:  p.frameIdx + vol.Sheets()*vol.ReservedSlots(),
		TotalGroups:  p.groupID,
		GroupData:    p.opts.GroupData,
		GroupParity:  p.opts.GroupParity,
		Layout:       p.opts.Profile.Layout,
		ProfileName:  p.opts.Profile.Name,
		Compress:     p.opts.Compress,
		RawLen:       p.man.RawLen,
		StreamLen:    p.man.StreamLen,
		SystemLen:    p.man.SystemLen,
		Instructions: catalog.Instructions(),
		Sheets:       sheets,
		Groups:       p.sums,
		Replica:      replica,
		IndexSlot:    p.opts.Index,
		IndexReplica: indexPayload,
	}
	for s := 0; s < vol.Sheets(); s++ {
		c.Sheet = s
		payload, err := c.Marshal(capacity)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		hdr := emblem.Header{
			Kind:    emblem.KindCatalog,
			Index:   uint16(s),
			Total:   uint16(vol.Sheets()),
			GroupID: emblem.CatalogGroupID,
			// GroupData 0 marks the frame as belonging to no outer-code
			// group; the assembler consumes it out-of-band.
			TotalLen: uint32(len(payload)),
		}
		img, err := scratch.enc.Encode(payload, hdr, p.opts.Profile.Layout)
		if err != nil {
			return fmt.Errorf("core: encoding catalog emblem: %w", err)
		}
		if err := vol.FillCatalog(s, img); err != nil {
			return fmt.Errorf("core: placing catalog emblem: %w", err)
		}
	}
	return nil
}

// fillIndexes renders the selective-restore index emblem — the same
// payload on every sheet, so any single surviving sheet can answer a
// range query — and back-patches each sheet's reserved index slot. Runs
// after placement, when the block and section tables and the archive
// identity are final; serial, on the caller's goroutine.
func (p *planner) fillIndexes(vol *media.Volume, payload []byte, scratch *encScratch) error {
	for s := 0; s < vol.Sheets(); s++ {
		hdr := emblem.Header{
			Kind:    emblem.KindIndex,
			Index:   uint16(s),
			Total:   uint16(vol.Sheets()),
			GroupID: emblem.IndexGroupID,
			// GroupData 0 marks the frame as belonging to no outer-code
			// group; the assembler consumes it out-of-band.
			TotalLen: uint32(len(payload)),
		}
		img, err := scratch.enc.Encode(payload, hdr, p.opts.Profile.Layout)
		if err != nil {
			return fmt.Errorf("core: encoding index emblem: %w", err)
		}
		if err := vol.FillIndex(s, img); err != nil {
			return fmt.Errorf("core: placing index emblem: %w", err)
		}
	}
	return nil
}

// namedSections derives the index's named byte ranges from the raw
// archive: one table section per SQL-dump COPY block plus one column
// section per column. A column's extent is the minimal contiguous cover —
// its table's whole rows region, since row-major dumps interleave
// columns. Input that is not a SQL dump simply yields no named sections;
// range queries still work, table queries fall back to a full restore.
func namedSections(data []byte) []archindex.Section {
	secs, err := sqldump.Sections(data)
	if err != nil {
		return nil
	}
	var out []archindex.Section
	for _, s := range secs {
		out = append(out, archindex.Section{Kind: archindex.SectionTable, Name: s.Table, Off: s.Off, Len: s.Len})
	}
	for _, s := range secs {
		for _, c := range s.Columns {
			out = append(out, archindex.Section{Kind: archindex.SectionColumn, Name: s.Table + "." + c, Off: s.Off, Len: s.Len})
		}
	}
	return out
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// archiveID derives the deterministic archive identity rendered into
// every catalog emblem: FNV-64a over the layout, group shape, section
// lengths and every group checksum — any two archives with identical
// content and configuration share an id, any payload difference changes
// it.
func archiveID(opts Options, man Manifest, sums []catalog.GroupSum) uint64 {
	const offset64, prime64 = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	for _, b := range []byte(opts.Profile.Name) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(uint64(opts.Profile.Layout.DataW))
	mix(uint64(opts.Profile.Layout.DataH))
	mix(uint64(opts.GroupData))
	mix(uint64(opts.GroupParity))
	mix(uint64(man.RawLen))
	mix(uint64(man.StreamLen))
	mix(uint64(man.SystemLen))
	for _, s := range sums {
		mix(uint64(s.CRC))
	}
	return h
}

// readerLen determines how many bytes r will deliver without consuming
// it: Len (bytes.Reader, strings.Reader, bytes.Buffer), Seek-to-end
// arithmetic (files), or full buffering as a last resort for unsized
// streams. The planner needs each section's length before the first group
// is cut, because every frame header carries the section TotalLen.
func readerLen(r io.Reader) (int, io.Reader, error) {
	if v, ok := r.(interface{ Len() int }); ok {
		return v.Len(), r, nil
	}
	if s, ok := r.(io.Seeker); ok {
		cur, err := s.Seek(0, io.SeekCurrent)
		if err == nil {
			end, err := s.Seek(0, io.SeekEnd)
			if err != nil {
				return 0, nil, err
			}
			if _, err := s.Seek(cur, io.SeekStart); err != nil {
				return 0, nil, err
			}
			return int(end - cur), r, nil
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, nil, err
	}
	return len(data), bytes.NewReader(data), nil
}

// encScratch is one worker's reusable frame-encode state, the archive
// side's counterpart of restore's emuScratch: the mocoder.Encoder holds
// the padded-payload, RS-codeword, interleave and bit-stream buffers plus
// the cached serpentine path. Each worker id owns exactly one goroutine
// for a run (see forEachFrame), so the scratch is reused serially without
// locks and a steady-state frame encode allocates only the placed frame.
// The scratch slice outlives the per-group encode calls, so the reuse
// carries across groups.
type encScratch struct {
	enc mocoder.Encoder
}

// encodeFrames rasterizes one group plan's frames. Workers claim frames
// by index and write only frames[i], so the result order matches the plan
// regardless of scheduling; the first encode error cancels the rest.
func encodeFrames(ctx context.Context, tasks []frameTask, layout emblem.Layout, workers int, scratch []encScratch) ([]*raster.Gray, error) {
	frames := make([]*raster.Gray, len(tasks))
	err := forEachFrame(ctx, workers, len(tasks), func(_ context.Context, worker, i int) error {
		img, err := scratch[worker].enc.Encode(tasks[i].payload, tasks[i].hdr, layout)
		if err != nil {
			kind := "emblem"
			if tasks[i].hdr.Kind == emblem.KindParity {
				kind = "parity emblem"
			}
			return fmt.Errorf("core: encoding %s: %w", kind, err)
		}
		frames[i] = img
		return nil
	})
	if err != nil {
		return nil, err
	}
	return frames, nil
}
