package core

import (
	"context"
	"fmt"
	"sync"

	"microlonys/dynarisc"
	"microlonys/internal/bootstrap"
	"microlonys/internal/dbcoder"
	"microlonys/internal/dynprog"
	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/internal/nested"
	"microlonys/media"
	"microlonys/raster"
	"microlonys/verisc"
)

// The archival pipeline (Figure 2a), as three explicit stages:
//
//	split:  DBCoder + system stream → chunks → outer-code groups → a
//	        frame plan fixing every header and payload (serial; owns all
//	        cross-frame state)
//	encode: frame plan → rasterized emblems (parallel per frame)
//	place:  emblems → written medium, in frame order (serial; the medium
//	        applies per-frame-index writer distortion)
//
// Fixing headers and frame indices during split is what makes the encode
// fan-out trivially deterministic: workers only rasterize, they never
// allocate indices or touch shared counters.

// The archived decoder programs and the Bootstrap emulator are
// deterministic builds of static assembly; build each once per process
// instead of once per archive (they dominated CreateArchive's fixed cost
// for small archives). All consumers treat the programs as read-only.
var (
	buildOnce sync.Once
	builtEmu  *verisc.Program
	builtMO   *dynarisc.Program
	builtDB   *dynarisc.Program
	buildErr  error
)

func archivedPrograms() (*verisc.Program, *dynarisc.Program, *dynarisc.Program, error) {
	buildOnce.Do(func() {
		if builtEmu, buildErr = nested.Program(); buildErr != nil {
			buildErr = fmt.Errorf("core: building emulator: %w", buildErr)
			return
		}
		if builtMO, buildErr = dynprog.MODecode(); buildErr != nil {
			buildErr = fmt.Errorf("core: assembling MODecode: %w", buildErr)
			return
		}
		if builtDB, buildErr = dynprog.DBDecode(); buildErr != nil {
			buildErr = fmt.Errorf("core: assembling DBDecode: %w", buildErr)
		}
	})
	return builtEmu, builtMO, builtDB, buildErr
}

// frameTask is one planned emblem: the padded payload and the fully
// resolved header the encode stage will rasterize.
type frameTask struct {
	payload []byte
	hdr     emblem.Header
}

// framePlan is the output of the split stage.
type framePlan struct {
	tasks []frameTask
	man   Manifest
}

// CreateArchive runs the archival pipeline (Figure 2a): db_dump output in,
// written medium + Bootstrap out.
func CreateArchive(data []byte, opts Options) (*Archived, error) {
	if opts.GroupData <= 0 {
		opts.GroupData = mocoder.GroupData
	}
	if opts.GroupParity <= 0 {
		opts.GroupParity = mocoder.GroupParity
	}
	if opts.GroupData > mocoder.GroupData || opts.GroupParity != mocoder.GroupParity {
		return nil, fmt.Errorf("core: unsupported group shape %d+%d", opts.GroupData, opts.GroupParity)
	}
	layout := opts.Profile.Layout
	capacity := mocoder.Capacity(layout)
	if capacity <= 0 {
		return nil, fmt.Errorf("core: profile %q has zero emblem capacity", opts.Profile.Name)
	}

	// Stage 1: split the streams into a frame plan.
	plan, err := splitStage(data, opts, capacity)
	if err != nil {
		return nil, err
	}

	// Stage 2: encode every planned frame, fanning out across workers.
	frames, err := encodeStage(context.Background(), plan.tasks, layout, opts.Workers)
	if err != nil {
		return nil, err
	}

	// Step 6: Bootstrap document.
	emu, mo, _, err := archivedPrograms()
	if err != nil {
		return nil, err
	}
	doc := bootstrap.New(opts.Profile.Name, layout, opts.GroupData, opts.GroupParity, emu, mo)

	// Stage 3: place the frames on the medium.
	m := media.New(opts.Profile)
	if err := m.Write(frames); err != nil {
		return nil, fmt.Errorf("core: writing medium: %w", err)
	}

	return &Archived{
		Medium:        m,
		Bootstrap:     doc,
		BootstrapText: doc.Render(),
		Manifest:      plan.man,
		Options:       opts,
	}, nil
}

// splitStage runs DBCoder, splits the data and system streams into
// capacity-sized chunks, forms outer-code groups and computes their parity
// payloads, and assigns every frame its header and index. All cross-frame
// bookkeeping lives here, so the stages after it treat frames as fully
// independent.
func splitStage(data []byte, opts Options, capacity int) (*framePlan, error) {
	// Step 2: DBCoder.
	stream := data
	kind := emblem.KindRaw
	if opts.Compress {
		depth := opts.CompressDepth
		if depth <= 0 {
			depth = dbcoder.DefaultDepth
		}
		stream = dbcoder.CompressDepth(data, depth)
		kind = emblem.KindData
	}

	plan := &framePlan{man: Manifest{RawLen: len(data), StreamLen: len(stream)}}

	// Steps 3+5: emblems for the data stream, then for the archived
	// DBDecode instruction stream (system emblems).
	type section struct {
		kind   emblem.Kind
		stream []byte
	}
	sections := []section{{kind, stream}}
	if opts.Compress {
		_, _, prog, err := archivedPrograms()
		if err != nil {
			return nil, err
		}
		sys := bootstrap.MarshalDynaRisc(prog)
		plan.man.SystemLen = len(sys)
		sections = append(sections, section{emblem.KindSystem, sys})
	}

	groupID := 0
	frameIdx := 0
	for _, sec := range sections {
		chunks := splitChunks(sec.stream, capacity)
		for len(chunks) > 0 {
			g := opts.GroupData
			if g > len(chunks) {
				g = len(chunks)
			}
			group := chunks[:g]
			chunks = chunks[g:]

			padded := make([][]byte, g)
			for i, c := range group {
				p := make([]byte, capacity)
				copy(p, c)
				padded[i] = p
			}
			parity, err := mocoder.GroupParityPayloads(padded)
			if err != nil {
				return nil, fmt.Errorf("core: group parity: %w", err)
			}

			emit := func(payload []byte, k emblem.Kind, pos int) {
				plan.tasks = append(plan.tasks, frameTask{
					payload: payload,
					hdr: emblem.Header{
						Kind:        k,
						Index:       uint16(frameIdx),
						GroupID:     uint16(groupID),
						GroupPos:    uint8(pos),
						GroupData:   uint8(g),
						GroupParity: uint8(opts.GroupParity),
						TotalLen:    uint32(len(sec.stream)),
					},
				})
				frameIdx++
			}
			for i, c := range group {
				emit(c, sec.kind, i)
				if sec.kind == emblem.KindSystem {
					plan.man.SystemEmblems++
				} else {
					plan.man.DataEmblems++
				}
			}
			for i, p := range parity {
				emit(p, emblem.KindParity, g+i)
				plan.man.ParityEmblems++
			}
			groupID++
		}
	}
	plan.man.Groups = groupID
	plan.man.TotalFrames = len(plan.tasks)
	return plan, nil
}

// encScratch is one worker's reusable frame-encode state, the archive
// side's counterpart of restore's emuScratch: the mocoder.Encoder holds
// the padded-payload, RS-codeword, interleave and bit-stream buffers plus
// the cached serpentine path. Each worker id owns exactly one goroutine
// for a run (see forEachFrame), so the scratch is reused serially without
// locks and a steady-state frame encode allocates only the placed frame.
type encScratch struct {
	enc mocoder.Encoder
}

// encodeStage rasterizes every planned frame. Workers claim frames by
// index and write only frames[i], so the result order matches the plan
// regardless of scheduling; the first encode error cancels the rest.
func encodeStage(ctx context.Context, tasks []frameTask, layout emblem.Layout, workers int) ([]*raster.Gray, error) {
	frames := make([]*raster.Gray, len(tasks))
	scratch := make([]encScratch, resolveWorkers(workers))
	err := forEachFrame(ctx, workers, len(tasks), func(_ context.Context, worker, i int) error {
		img, err := scratch[worker].enc.Encode(tasks[i].payload, tasks[i].hdr, layout)
		if err != nil {
			kind := "emblem"
			if tasks[i].hdr.Kind == emblem.KindParity {
				kind = "parity emblem"
			}
			return fmt.Errorf("core: encoding %s: %w", kind, err)
		}
		frames[i] = img
		return nil
	})
	if err != nil {
		return nil, err
	}
	return frames, nil
}

// splitChunks cuts a stream into capacity-sized chunks (the last may be
// short). An empty stream still occupies one empty chunk, so every
// section produces at least one emblem carrying its TotalLen.
func splitChunks(stream []byte, capacity int) [][]byte {
	var out [][]byte
	for len(stream) > 0 {
		n := capacity
		if n > len(stream) {
			n = len(stream)
		}
		out = append(out, stream[:n])
		stream = stream[n:]
	}
	if len(out) == 0 {
		out = [][]byte{{}}
	}
	return out
}
