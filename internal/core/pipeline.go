package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The frame fan-out machinery shared by the archival and restoration
// pipelines. Emblem frames are independent by construction (§3.1 — each
// carries its own header, inner code and outer-code group coordinates), so
// the per-frame stages (rasterize/encode on the way out, scan/decode on
// the way back) run on a bounded worker pool. Order never depends on
// scheduling: every worker writes only the slot of the frame index it
// claimed, and the serial stages that follow read the slots in index
// order. A frame-fatal error cancels the remaining work through the
// context; among the errors recorded before cancellation lands, the one
// from the lowest frame index is reported.

// resolveWorkers maps an Options.Workers value to a concrete pool size:
// n <= 0 selects GOMAXPROCS (the default), anything else is used as
// given — then the result is capped at live, the number of work items
// actually available (frames to encode or scan), so tiny inputs never
// spin up goroutines that would exit without claiming a frame. live <= 0
// means the item count is unknown at call time (an Engine sizes its
// scratch before ever seeing a volume) and leaves the pool uncapped.
func resolveWorkers(n, live int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if live > 0 && n > live {
		n = live
	}
	return n
}

// frontier replays out-of-order completions in strict index order: the
// parallel stage reports indices as they finish, drain walks the
// contiguous prefix exactly once per index. It is the ordering half of
// the pipelines' serial tail stages — the restore consumer feeds the
// group assembler through one, and the archive placer is its
// group-granular analogue (the planner emits groups in order, so the
// placer's frontier is the channel itself).
type frontier struct {
	ready []bool
	next  int
}

func newFrontier(n int) *frontier { return &frontier{ready: make([]bool, n)} }

// complete marks index i finished. Each index must complete exactly once.
func (f *frontier) complete(i int) { f.ready[i] = true }

// drain calls fn(i) for every index that has become contiguous with the
// already-drained prefix, in increasing order.
func (f *frontier) drain(fn func(i int)) {
	for f.next < len(f.ready) && f.ready[f.next] {
		fn(f.next)
		f.next++
	}
}

// done reports whether every index has been drained.
func (f *frontier) done() bool { return f.next == len(f.ready) }

// forEachFrame runs fn(ctx, worker, i) for every i in [0, n), fanning
// out over at most `workers` goroutines. fn must confine its writes to
// per-index storage owned by the caller, plus any per-worker scratch it
// keys off the worker id: each id in [0, workers) is owned by exactly
// one goroutine for the whole run, which is how the restore pipeline
// threads reusable emulator state through the pool without locks.
//
// The first fn error cancels ctx so in-flight siblings can stop early and
// queued frames are never started; forEachFrame still waits for every
// started call to return before it does. When several frames fail before
// cancellation lands, the error of the lowest such frame index is
// returned (which errors got recorded can vary with scheduling; the
// tie-break among them is deterministic).
// With workers == 1 (or n <= 1) the frames run strictly serially on the
// calling goroutine — the reference path the parallel one must match
// byte-for-byte.
func forEachFrame(ctx context.Context, workers, n int, fn func(ctx context.Context, worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = resolveWorkers(workers, n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next int64 = -1 // atomically claimed frame cursor
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[int]error) // frame index → fatal error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, worker, i); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if len(errs) == 0 {
		return ctx.Err()
	}
	first := -1
	for i := range errs {
		if first < 0 || i < first {
			first = i
		}
	}
	return errs[first]
}
