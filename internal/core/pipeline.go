package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The frame fan-out machinery shared by the archival and restoration
// pipelines. Emblem frames are independent by construction (§3.1 — each
// carries its own header, inner code and outer-code group coordinates), so
// the per-frame stages (rasterize/encode on the way out, scan/decode on
// the way back) run on a bounded worker pool. Order never depends on
// scheduling: every worker writes only the slot of the frame index it
// claimed, and the serial stages that follow read the slots in index
// order. A frame-fatal error cancels the remaining work through the
// context; among the errors recorded before cancellation lands, the one
// from the lowest frame index is reported.

// resolveWorkers maps an Options.Workers value to a concrete pool size:
// n <= 0 selects GOMAXPROCS (the default), anything else is used as given.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// forEachFrame runs fn(ctx, worker, i) for every i in [0, n), fanning
// out over at most `workers` goroutines. fn must confine its writes to
// per-index storage owned by the caller, plus any per-worker scratch it
// keys off the worker id: each id in [0, workers) is owned by exactly
// one goroutine for the whole run, which is how the restore pipeline
// threads reusable emulator state through the pool without locks.
//
// The first fn error cancels ctx so in-flight siblings can stop early and
// queued frames are never started; forEachFrame still waits for every
// started call to return before it does. When several frames fail before
// cancellation lands, the error of the lowest such frame index is
// returned (which errors got recorded can vary with scheduling; the
// tie-break among them is deterministic).
// With workers == 1 (or n <= 1) the frames run strictly serially on the
// calling goroutine — the reference path the parallel one must match
// byte-for-byte.
func forEachFrame(ctx context.Context, workers, n int, fn func(ctx context.Context, worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next int64 = -1 // atomically claimed frame cursor
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[int]error) // frame index → fatal error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, worker, i); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if len(errs) == 0 {
		return ctx.Err()
	}
	first := -1
	for i := range errs {
		if first < 0 || i < first {
			first = i
		}
	}
	return errs[first]
}
