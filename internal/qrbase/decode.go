package qrbase

import (
	"fmt"
	"math"

	"microlonys/internal/rs"
	"microlonys/raster"
)

// Stats reports decoder effort, mirroring mocoder.Stats for the E9
// comparison harness.
type Stats struct {
	Threshold      byte
	Version        int
	ModulePitch    float64 // estimated pixels per module
	BytesCorrected int
	BlocksDecoded  int
}

type point struct{ x, y float64 }

// Decode locates the barcode in a scan and returns the payload. The
// parity strength must match the encoder's (it is a property of the
// archive format, not of a single symbol).
func Decode(img *raster.Gray, parity int) ([]byte, *Stats, error) {
	st := &Stats{Threshold: img.OtsuThreshold()}

	finders, pitch, err := findFinders(img, st.Threshold)
	if err != nil {
		return nil, st, err
	}
	st.ModulePitch = pitch

	tl, tr, bl, err := orientFinders(finders)
	if err != nil {
		return nil, st, err
	}

	// Estimate grid size from finder spacing: centres are (size-7)
	// modules apart.
	d1 := math.Hypot(tr.x-tl.x, tr.y-tl.y)
	d2 := math.Hypot(bl.x-tl.x, bl.y-tl.y)
	span := (d1 + d2) / 2 / pitch
	version := int(math.Round((span + 7 - 17) / 4))
	if version < MinVersion {
		version = MinVersion
	}
	if version > MaxVersion {
		version = MaxVersion
	}
	// sample reads every data module of a candidate version on a rigid
	// affine grid anchored at the three finder centres — the QR-style
	// absolute sampling the paper contrasts with self-clocking emblems.
	sample := func(c *Code) []byte {
		n := c.size()
		sp := float64(n - 7)
		ex := point{(tr.x - tl.x) / sp, (tr.y - tl.y) / sp}
		ey := point{(bl.x - tl.x) / sp, (bl.y - tl.y) / sp}
		var bits []byte
		var acc byte
		nacc := 0
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if c.isFunction(x, y) {
					continue
				}
				// Module x's centre sits at module coordinate x+0.5; the
				// finder centres anchor coordinate 3.5.
				u, v := float64(x)+0.5-3.5, float64(y)+0.5-3.5
				p := point{tl.x + ex.x*u + ey.x*v, tl.y + ex.y*u + ey.y*v}
				b := 0
				if img.SampleBilinear(p.x, p.y) < float64(st.Threshold) {
					b = 1
				}
				if mask(x, y) {
					b ^= 1
				}
				acc = acc<<1 | byte(b)
				nacc++
				if nacc == 8 {
					bits = append(bits, acc)
					acc, nacc = 0, 0
				}
			}
		}
		if nacc > 0 {
			bits = append(bits, acc<<(8-nacc))
		}
		return bits
	}

	c := &Code{Version: version, Parity: parity}
	bits := sample(c)

	// Header: majority of three copies, falling back to each copy.
	parseVoted := func(bits []byte) (int, int, error) {
		if len(bits) < headerCopies*headerSize {
			return 0, 0, fmt.Errorf("%w: stream too short", ErrBadHeader)
		}
		voted := make([]byte, headerSize)
		for i := range voted {
			a, b2, c2 := bits[i], bits[headerSize+i], bits[2*headerSize+i]
			voted[i] = a&b2 | a&c2 | b2&c2
		}
		hv, pl, err := parseHeader(voted)
		if err == nil {
			return hv, pl, nil
		}
		for k := 0; k < headerCopies; k++ {
			if hv, pl, err2 := parseHeader(bits[k*headerSize:]); err2 == nil {
				return hv, pl, nil
			}
		}
		return 0, 0, err
	}
	hv, payloadLen, err := parseVoted(bits)
	if err != nil {
		return nil, st, err
	}
	if hv != version && hv >= MinVersion && hv <= MaxVersion {
		// Header knows best: the finder-derived size estimate can be off
		// by one version under heavy distortion. Resample once.
		c = &Code{Version: hv, Parity: parity}
		bits = sample(c)
		if _, pl, err2 := parseVoted(bits); err2 == nil {
			payloadLen = pl
		}
		version = hv
	}
	st.Version = version

	lens := c.blockLens()
	coded := bits[headerCopies*headerSize:]
	blocks := deinterleave(coded, lens, parity)
	code := rs.New(parity)
	payload := make([]byte, 0, c.Capacity())
	for i, cw := range blocks {
		nFix, err := code.Decode(cw, nil)
		if err != nil {
			return nil, st, fmt.Errorf("%w: block %d/%d: %v", ErrDamaged, i+1, len(blocks), err)
		}
		st.BytesCorrected += nFix
		st.BlocksDecoded++
		payload = append(payload, cw[:lens[i]]...)
	}
	if payloadLen > len(payload) {
		return nil, st, fmt.Errorf("%w: header claims %d bytes, capacity %d", ErrBadHeader, payloadLen, len(payload))
	}
	return payload[:payloadLen], st, nil
}

// findFinders locates the three position patterns by scanning rows for
// the characteristic 1:1:3:1:1 black/white run ratio, verifying each
// candidate vertically, then clustering the hits.
func findFinders(img *raster.Gray, thr byte) ([]point, float64, error) {
	type hit struct {
		p     point
		width float64 // finder width in pixels (7 modules)
	}
	var hits []hit

	checkRatio := func(runs [5]int) bool {
		unit := float64(runs[0]+runs[1]+runs[2]+runs[3]+runs[4]) / 7
		if unit < 1 {
			return false
		}
		want := [5]float64{1, 1, 3, 1, 1}
		for i, r := range runs {
			if math.Abs(float64(r)-want[i]*unit) > unit*0.75 {
				return false
			}
		}
		return true
	}

	// verifyVertical runs the same ratio test along the column through x.
	verifyVertical := func(x, y int) (cy float64, h float64, ok bool) {
		dark := func(yy int) bool { return img.At(x, yy) < thr }
		if !dark(y) {
			return 0, 0, false
		}
		up, down := y, y
		for up > 0 && dark(up-1) {
			up--
		}
		for down < img.H-1 && dark(down+1) {
			down++
		}
		core := down - up + 1
		// Walk outwards: white, black rings.
		w1top, b1top := 0, 0
		yy := up - 1
		for yy >= 0 && !dark(yy) {
			w1top++
			yy--
		}
		for yy >= 0 && dark(yy) {
			b1top++
			yy--
		}
		topEnd := yy + 1
		w1bot, b1bot := 0, 0
		yy = down + 1
		for yy < img.H && !dark(yy) {
			w1bot++
			yy++
		}
		for yy < img.H && dark(yy) {
			b1bot++
			yy++
		}
		botEnd := yy - 1
		runs := [5]int{b1top, w1top, core, w1bot, b1bot}
		if !checkRatio(runs) {
			return 0, 0, false
		}
		return (float64(topEnd) + float64(botEnd)) / 2, float64(botEnd - topEnd + 1), true
	}

	for y := 0; y < img.H; y++ {
		// Run-length encode the row.
		var runs []int
		var starts []int
		cur := img.At(0, y) < thr
		runStart, runLen := 0, 0
		for x := 0; x <= img.W; x++ {
			var d bool
			if x < img.W {
				d = img.At(x, y) < thr
			}
			if x < img.W && d == cur {
				runLen++
				continue
			}
			runs = append(runs, runLen)
			starts = append(starts, runStart)
			runStart, runLen = x, 1
			cur = d
		}
		// First run colour: a run at index i is dark iff the row starts
		// dark and i is even, or starts light and i is odd.
		startsDark := img.At(0, y) < thr
		for i := 0; i+4 < len(runs); i++ {
			isDark := (i%2 == 0) == startsDark
			if !isDark {
				continue
			}
			var five [5]int
			copy(five[:], runs[i:i+5])
			if !checkRatio(five) {
				continue
			}
			cx := float64(starts[i+2]) + (float64(runs[i+2])-1)/2
			cy, vh, ok := verifyVertical(int(cx), y)
			if !ok {
				continue
			}
			hw := float64(five[0] + five[1] + five[2] + five[3] + five[4])
			if math.Abs(hw-vh) > math.Max(hw, vh)*0.4 {
				continue // not square enough
			}
			hits = append(hits, hit{point{cx, cy}, (hw + vh) / 2})
		}
	}
	if len(hits) < 3 {
		return nil, 0, ErrNotFound
	}

	// Cluster hits by proximity (within half a finder width).
	type cluster struct {
		sx, sy, sw float64
		n          int
	}
	var clusters []*cluster
	for _, h := range hits {
		placed := false
		for _, c := range clusters {
			cx, cy := c.sx/float64(c.n), c.sy/float64(c.n)
			if math.Hypot(h.p.x-cx, h.p.y-cy) < h.width/2 {
				c.sx += h.p.x
				c.sy += h.p.y
				c.sw += h.width
				c.n++
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cluster{h.p.x, h.p.y, h.width, 1})
		}
	}
	if len(clusters) < 3 {
		return nil, 0, ErrNotFound
	}
	// Keep the three clusters with the most supporting hits.
	for i := 0; i < len(clusters); i++ {
		for j := i + 1; j < len(clusters); j++ {
			if clusters[j].n > clusters[i].n {
				clusters[i], clusters[j] = clusters[j], clusters[i]
			}
		}
	}
	clusters = clusters[:3]
	pts := make([]point, 3)
	pitch := 0.0
	for i, c := range clusters {
		pts[i] = point{c.sx / float64(c.n), c.sy / float64(c.n)}
		pitch += c.sw / float64(c.n) / finderBox
	}
	return pts, pitch / 3, nil
}

// orientFinders identifies which finder is top-left (the corner where the
// two edge vectors are closest to perpendicular) and orders the other two
// so the grid has positive orientation.
func orientFinders(p []point) (tl, tr, bl point, err error) {
	if len(p) != 3 {
		return tl, tr, bl, ErrNotFound
	}
	best, bestDot := -1, math.MaxFloat64
	for i := 0; i < 3; i++ {
		a, b := p[(i+1)%3], p[(i+2)%3]
		vx1, vy1 := a.x-p[i].x, a.y-p[i].y
		vx2, vy2 := b.x-p[i].x, b.y-p[i].y
		dot := math.Abs(vx1*vx2+vy1*vy2) / (math.Hypot(vx1, vy1) * math.Hypot(vx2, vy2))
		if dot < bestDot {
			bestDot, best = dot, i
		}
	}
	if bestDot > 0.35 { // ~70° tolerance window around perpendicular
		return tl, tr, bl, fmt.Errorf("%w: finder geometry not square", ErrNotFound)
	}
	tl = p[best]
	a, b := p[(best+1)%3], p[(best+2)%3]
	// Cross product sign picks the right-handed assignment (x right,
	// y down in image space).
	cross := (a.x-tl.x)*(b.y-tl.y) - (a.y-tl.y)*(b.x-tl.x)
	if cross > 0 {
		tr, bl = a, b
	} else {
		tr, bl = b, a
	}
	return tl, tr, bl, nil
}
