// Package qrbase implements a QR-style two-dimensional barcode — the
// baseline §3.1 of the paper argues against for archival use.
//
// The code reproduces the structural elements the paper describes for QR
// codes: three 7×7 position (finder) patterns in three corners, two
// timing patterns (one per dimension), an alignment pattern, and a fixed
// square module grid in which each data bit is a single black or white
// module. Decoding anchors a rigid affine grid on the three finder
// centres and samples every module at its nominal position — there is no
// self-clocking layer, so low-scale distortions (scanner jitter, lens
// curvature, scale drift) accumulate across the grid instead of being
// absorbed locally as Differential-Manchester emblems absorb them.
//
// The package exists to regenerate the paper's two comparative claims:
//
//   - capacity: "QR codes and other 2D barcodes typically store a few
//     kilobytes of information at best" — see MaxCapacity and the version
//     table, which top out near 3 KB even at the largest grid;
//   - robustness: QR-style absolute grids tolerate large-scale distortion
//     (rotation, affine viewing) but not the low-scale unsteady-motion
//     errors of archival scanners — benchmarked against mocoder in E9.
//
// Error correction reuses the same inner Reed-Solomon code family as
// MOCoder so that the comparison isolates the layout/clocking design.
package qrbase

import (
	"errors"
	"fmt"

	"microlonys/internal/bitio"
	"microlonys/internal/emblem"
	"microlonys/internal/rs"
	"microlonys/raster"
)

// Version bounds follow the QR standard: version v is a square of
// 17+4v modules per side.
const (
	MinVersion = 1
	MaxVersion = 40
)

// QuietModules is the white margin around the symbol, per the QR spec.
const QuietModules = 4

// finderBox is the side of a finder pattern; with its separator it
// occupies an 8×8 corner region.
const finderBox = 7

// headerSize is the in-stream header: magic, version, payload length
// (big endian), CRC-16. Stored headerCopies times for majority voting.
const (
	headerSize   = 6
	headerCopies = 3
	headerMagic  = 0xB7
)

// DefaultParity is the Reed-Solomon parity bytes per block — the same
// strength as MOCoder's inner code, for a like-for-like comparison.
const DefaultParity = rs.InnerParity

// Errors.
var (
	ErrTooLarge  = errors.New("qrbase: payload exceeds the largest version")
	ErrNotFound  = errors.New("qrbase: finder patterns not located")
	ErrDamaged   = errors.New("qrbase: damage beyond error correction")
	ErrBadHeader = errors.New("qrbase: header unreadable")
)

// Size returns the side of version v in modules.
func Size(v int) int { return 17 + 4*v }

// Code describes one barcode geometry.
type Code struct {
	Version int
	Parity  int // RS parity bytes per block
}

// New returns a Code for the given version, validating bounds.
func New(version, parity int) (*Code, error) {
	if version < MinVersion || version > MaxVersion {
		return nil, fmt.Errorf("qrbase: version %d out of range [%d,%d]", version, MinVersion, MaxVersion)
	}
	if parity < 2 || parity > 128 || parity%2 != 0 {
		return nil, fmt.Errorf("qrbase: parity %d not an even value in [2,128]", parity)
	}
	return &Code{Version: version, Parity: parity}, nil
}

// size is the module side length.
func (c *Code) size() int { return Size(c.Version) }

// isFunction reports whether module (x, y) belongs to a function pattern
// (finder+separator corners, timing row/column, alignment pattern).
func (c *Code) isFunction(x, y int) bool {
	n := c.size()
	// Finder + separator regions: 8×8 at TL, TR, BL.
	if x < finderBox+1 && y < finderBox+1 {
		return true
	}
	if x >= n-finderBox-1 && y < finderBox+1 {
		return true
	}
	if x < finderBox+1 && y >= n-finderBox-1 {
		return true
	}
	// Timing patterns.
	if x == 6 || y == 6 {
		return true
	}
	// Alignment pattern (5×5 centred at (n-7, n-7)) for versions ≥ 2.
	if c.Version >= 2 {
		if x >= n-9 && x <= n-5 && y >= n-9 && y <= n-5 {
			return true
		}
	}
	return false
}

// DataModules returns the number of modules available for data bits.
func (c *Code) DataModules() int {
	n := c.size()
	count := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if !c.isFunction(x, y) {
				count++
			}
		}
	}
	return count
}

// blockLens splits the coded-byte budget into RS block data lengths.
func (c *Code) blockLens() []int {
	coded := c.DataModules()/8 - headerCopies*headerSize
	if coded <= c.Parity {
		return nil
	}
	blockTotal := 255
	var lens []int
	for coded > 0 {
		t := blockTotal
		if t > coded {
			t = coded
		}
		d := t - c.Parity
		if d <= 0 {
			break
		}
		lens = append(lens, d)
		coded -= t
	}
	return lens
}

// Capacity returns the payload bytes version v with the given parity can
// carry.
func (c *Code) Capacity() int {
	total := 0
	for _, n := range c.blockLens() {
		total += n
	}
	return total
}

// MaxCapacity returns the largest payload any version carries at the
// given parity strength — the paper's "a few kilobytes at best".
func MaxCapacity(parity int) int {
	c := &Code{Version: MaxVersion, Parity: parity}
	return c.Capacity()
}

// FitVersion returns the smallest version whose capacity holds n bytes.
func FitVersion(n, parity int) (int, error) {
	for v := MinVersion; v <= MaxVersion; v++ {
		c := &Code{Version: v, Parity: parity}
		if c.Capacity() >= n {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, n, MaxCapacity(parity))
}

// mask is the checkerboard mask applied to data modules so that long runs
// of identical bits do not produce large uniform areas (QR mask 0).
func mask(x, y int) bool { return (x+y)%2 == 0 }

// Encode renders the payload as a barcode image at px pixels per module,
// picking the smallest version that fits.
func Encode(payload []byte, parity, px int) (*raster.Gray, *Code, error) {
	v, err := FitVersion(len(payload), parity)
	if err != nil {
		return nil, nil, err
	}
	c, err := New(v, parity)
	if err != nil {
		return nil, nil, err
	}
	img, err := c.Encode(payload, px)
	return img, c, err
}

// Encode renders the payload at px pixels per module.
func (c *Code) Encode(payload []byte, px int) (*raster.Gray, error) {
	if px < 1 {
		return nil, fmt.Errorf("qrbase: pixels per module %d < 1", px)
	}
	capBytes := c.Capacity()
	if len(payload) > capBytes {
		return nil, fmt.Errorf("qrbase: payload %d bytes exceeds version %d capacity %d", len(payload), c.Version, capBytes)
	}

	// Header ×3 plus interleaved RS blocks.
	hdr := c.marshalHeader(len(payload))
	stream := make([]byte, 0, headerCopies*headerSize+capBytes+c.Parity)
	for i := 0; i < headerCopies; i++ {
		stream = append(stream, hdr...)
	}
	padded := make([]byte, capBytes)
	copy(padded, payload)
	code := rs.New(c.Parity)
	var blocks [][]byte
	off := 0
	for _, n := range c.blockLens() {
		blocks = append(blocks, code.EncodeFull(padded[off:off+n]))
		off += n
	}
	stream = append(stream, interleave(blocks)...)

	w := bitio.NewWriter()
	w.WriteBytes(stream)
	bits := w.Bytes()

	// Paint.
	n := c.size()
	full := n + 2*QuietModules
	img := raster.New(full*px, full*px)
	setModule := func(x, y int, black bool) {
		if black {
			img.FillRect((QuietModules+x)*px, (QuietModules+y)*px,
				(QuietModules+x+1)*px, (QuietModules+y+1)*px, 0)
		}
	}
	c.paintFunction(setModule)

	bitIdx := 0
	nbits := len(bits) * 8
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if c.isFunction(x, y) {
				continue
			}
			b := 0
			if bitIdx < nbits {
				b = int(bits[bitIdx/8]>>(7-bitIdx%8)) & 1
			} else {
				b = bitIdx & 1 // filler
			}
			if mask(x, y) {
				b ^= 1
			}
			setModule(x, y, b == 1)
			bitIdx++
		}
	}
	return img, nil
}

// paintFunction draws finders, separators (implicitly white), timing and
// alignment patterns.
func (c *Code) paintFunction(set func(x, y int, black bool)) {
	n := c.size()
	finder := func(ox, oy int) {
		for y := 0; y < finderBox; y++ {
			for x := 0; x < finderBox; x++ {
				ring := x == 0 || y == 0 || x == finderBox-1 || y == finderBox-1
				core := x >= 2 && x <= 4 && y >= 2 && y <= 4
				set(ox+x, oy+y, ring || core)
			}
		}
	}
	finder(0, 0)
	finder(n-finderBox, 0)
	finder(0, n-finderBox)

	// Timing patterns: alternating, black on even module index.
	for i := finderBox + 1; i < n-finderBox-1; i++ {
		set(i, 6, i%2 == 0)
		set(6, i, i%2 == 0)
	}

	// Alignment pattern: 5×5 black ring, white ring, black centre.
	if c.Version >= 2 {
		cx, cy := n-7, n-7
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				ring := dx == -2 || dx == 2 || dy == -2 || dy == 2
				set(cx+dx, cy+dy, ring || (dx == 0 && dy == 0))
			}
		}
	}
}

func (c *Code) marshalHeader(payloadLen int) []byte {
	b := []byte{headerMagic, byte(c.Version), byte(payloadLen >> 8), byte(payloadLen)}
	crc := emblem.CRC16(b)
	return append(b, byte(crc>>8), byte(crc))
}

func parseHeader(b []byte) (version, payloadLen int, err error) {
	if len(b) < headerSize {
		return 0, 0, fmt.Errorf("%w: short", ErrBadHeader)
	}
	if b[0] != headerMagic {
		return 0, 0, fmt.Errorf("%w: magic %#x", ErrBadHeader, b[0])
	}
	if emblem.CRC16(b[:4]) != uint16(b[4])<<8|uint16(b[5]) {
		return 0, 0, fmt.Errorf("%w: CRC mismatch", ErrBadHeader)
	}
	return int(b[1]), int(b[2])<<8 | int(b[3]), nil
}

func interleave(blocks [][]byte) []byte {
	maxLen, total := 0, 0
	for _, b := range blocks {
		total += len(b)
		if len(b) > maxLen {
			maxLen = len(b)
		}
	}
	out := make([]byte, 0, total)
	for i := 0; i < maxLen; i++ {
		for _, b := range blocks {
			if i < len(b) {
				out = append(out, b[i])
			}
		}
	}
	return out
}

func deinterleave(stream []byte, lens []int, parity int) [][]byte {
	blocks := make([][]byte, len(lens))
	idx := make([]int, len(lens))
	maxLen := 0
	for i, n := range lens {
		blocks[i] = make([]byte, n+parity)
		if n+parity > maxLen {
			maxLen = n + parity
		}
	}
	pos := 0
	for i := 0; i < maxLen; i++ {
		for b := range blocks {
			if i < len(blocks[b]) {
				if pos < len(stream) {
					blocks[b][idx[b]] = stream[pos]
				}
				idx[b]++
				pos++
			}
		}
	}
	return blocks
}
