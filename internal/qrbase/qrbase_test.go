package qrbase

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"microlonys/media"
	"microlonys/raster"
)

func TestSizeFollowsQRStandard(t *testing.T) {
	if Size(1) != 21 || Size(2) != 25 || Size(40) != 177 {
		t.Fatalf("sizes: v1=%d v2=%d v40=%d", Size(1), Size(2), Size(40))
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 32); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := New(41, 32); err == nil {
		t.Fatal("version 41 accepted")
	}
	if _, err := New(1, 3); err == nil {
		t.Fatal("odd parity accepted")
	}
	if _, err := New(1, 0); err == nil {
		t.Fatal("zero parity accepted")
	}
	if _, err := New(7, 32); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionPatternCounts(t *testing.T) {
	// For version 1 (21×21 = 441 modules): three 8×8 corner regions
	// (192), timing row+column outside them, no alignment pattern.
	c, _ := New(1, 16)
	fn := 0
	for y := 0; y < 21; y++ {
		for x := 0; x < 21; x++ {
			if c.isFunction(x, y) {
				fn++
			}
		}
	}
	// 3×64 corners + timing: row 6 spans x∈[8,12] (5) and col 6 y∈[8,12]
	// (5); the rest of row/col 6 lies inside corner regions.
	want := 3*64 + 5 + 5
	if fn != want {
		t.Fatalf("function modules = %d, want %d", fn, want)
	}
	if c.DataModules() != 441-want {
		t.Fatalf("data modules = %d", c.DataModules())
	}
}

func TestCapacityFewKilobytesAtBest(t *testing.T) {
	// §3.1: "QR codes and other 2D barcodes typically store a few
	// kilobytes of information at best."
	max := MaxCapacity(DefaultParity)
	if max < 1024 || max > 4096 {
		t.Fatalf("max capacity %d outside the paper's few-KB band", max)
	}
	// Capacity grows monotonically with version.
	prev := 0
	for v := MinVersion; v <= MaxVersion; v++ {
		c := &Code{Version: v, Parity: DefaultParity}
		if got := c.Capacity(); got < prev {
			t.Fatalf("capacity shrank at version %d: %d < %d", v, got, prev)
		} else {
			prev = got
		}
	}
}

func TestFitVersion(t *testing.T) {
	// With archival-strength parity (32 bytes/block) plus the replicated
	// header, versions 1-2 have no room left — itself a datum for the
	// paper's capacity argument. Version 3 is the first usable symbol.
	v, err := FitVersion(10, DefaultParity)
	if err != nil || v != 3 {
		t.Fatalf("FitVersion(10) = %d, %v", v, err)
	}
	if _, err := FitVersion(MaxCapacity(DefaultParity)+1, DefaultParity); err == nil {
		t.Fatal("oversized payload accepted")
	}
	// FitVersion result must actually fit.
	for _, n := range []int{1, 100, 1000, 3000} {
		v, err := FitVersion(n, DefaultParity)
		if err != nil {
			t.Fatalf("FitVersion(%d): %v", n, err)
		}
		c := &Code{Version: v, Parity: DefaultParity}
		if c.Capacity() < n {
			t.Fatalf("FitVersion(%d) = %d with capacity %d", n, v, c.Capacity())
		}
	}
}

func TestRoundTripCleanAllVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, v := range []int{1, 2, 5, 10, 20, 40} {
		c, err := New(v, DefaultParity)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, c.Capacity())
		rng.Read(payload)
		img, err := c.Encode(payload, 4)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		got, st, err := Decode(img, DefaultParity)
		if err != nil {
			t.Fatalf("v%d decode: %v", v, err)
		}
		if st.Version != v {
			t.Fatalf("v%d: detected version %d", v, st.Version)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("v%d: payload mismatch", v)
		}
	}
}

func TestRoundTripShortPayload(t *testing.T) {
	img, c, err := Encode([]byte("hello, future"), DefaultParity, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != 3 {
		t.Fatalf("picked version %d for a short payload, want 3", c.Version)
	}
	got, _, err := Decode(img, DefaultParity)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello, future" {
		t.Fatalf("got %q", got)
	}
}

func TestDecodeSurvivesRotation(t *testing.T) {
	// QR-style codes are designed for large-scale distortion: a rotated
	// capture must still decode (the finder geometry fixes orientation).
	payload := []byte("rotation-tolerant payload 0123456789")
	img, _, err := Encode(payload, DefaultParity, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, deg := range []float64{1, 3, -2} {
		rot := media.Distortions{RotationDeg: deg, Seed: 42}.Apply(img)
		got, _, err := Decode(rot, DefaultParity)
		if err != nil {
			t.Fatalf("rot %.0f°: %v", deg, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("rot %.0f°: payload mismatch", deg)
		}
	}
}

func TestDecodeCorrectsModuleDamage(t *testing.T) {
	payload := make([]byte, 100)
	rand.New(rand.NewSource(3)).Read(payload)
	img, c, err := Encode(payload, DefaultParity, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a handful of data modules by painting over them.
	n := Size(c.Version)
	px := 4
	rng := rand.New(rand.NewSource(9))
	flipped := 0
	for flipped < 8 {
		x, y := rng.Intn(n), rng.Intn(n)
		if c.isFunction(x, y) {
			continue
		}
		ix, iy := (QuietModules+x)*px, (QuietModules+y)*px
		v := img.At(ix, iy)
		img.FillRect(ix, iy, ix+px, iy+px, 255-v)
		flipped++
	}
	got, st, err := Decode(img, DefaultParity)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after module damage")
	}
	if st.BytesCorrected == 0 {
		t.Fatal("expected RS corrections to be reported")
	}
}

func TestDecodeFailsOnBlank(t *testing.T) {
	if _, _, err := Decode(raster.New(200, 200), DefaultParity); err == nil {
		t.Fatal("blank image decoded")
	}
}

func TestDecodeFailsBeyondCorrection(t *testing.T) {
	payload := make([]byte, 50)
	img, c, err := Encode(payload, 8, 4) // weak parity
	if err != nil {
		t.Fatal(err)
	}
	// Obliterate a band of data modules.
	n := Size(c.Version)
	px := 4
	img.FillRect((QuietModules+8)*px, (QuietModules+9)*px,
		(QuietModules+n-8)*px, (QuietModules+15)*px, 0)
	if _, _, err := Decode(img, 8); err == nil {
		t.Fatal("destroyed symbol decoded")
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	c, _ := New(1, DefaultParity)
	if _, err := c.Encode(make([]byte, c.Capacity()+1), 4); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, err := c.Encode([]byte("x"), 0); err == nil {
		t.Fatal("zero px accepted")
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(version uint8, plen uint16) bool {
		v := int(version)%MaxVersion + 1
		c := &Code{Version: v, Parity: 32}
		b := c.marshalHeader(int(plen))
		gv, gl, err := parseHeader(b)
		return err == nil && gv == v && gl == int(plen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveRoundTripProperty(t *testing.T) {
	f := func(seed int64, nBlocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(nBlocks)%4 + 1
		parity := 8
		lens := make([]int, k)
		blocks := make([][]byte, k)
		for i := range blocks {
			lens[i] = rng.Intn(40) + 1
			blocks[i] = make([]byte, lens[i]+parity)
			rng.Read(blocks[i])
		}
		stream := interleave(blocks)
		back := deinterleave(stream, lens, parity)
		for i := range blocks {
			if !bytes.Equal(back[i], blocks[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterFragility(t *testing.T) {
	// The design point of E9: absolute-grid sampling accumulates row
	// jitter across the symbol, while emblems recover it locally. Here we
	// only assert the qrbase side: decode still works at tiny jitter and
	// reports rising corrections, demonstrating sensitivity.
	payload := make([]byte, 200)
	rand.New(rand.NewSource(5)).Read(payload)
	img, _, err := Encode(payload, DefaultParity, 4)
	if err != nil {
		t.Fatal(err)
	}
	clean, st0, err := Decode(img, DefaultParity)
	if err != nil || !bytes.Equal(clean, payload) {
		t.Fatalf("clean decode: %v", err)
	}
	jit := media.Distortions{RowJitterPx: 0.4, Seed: 11}.Apply(img)
	_, st1, err := Decode(jit, DefaultParity)
	if err == nil && st1.BytesCorrected < st0.BytesCorrected {
		t.Fatalf("jitter did not increase corrections: %d -> %d", st0.BytesCorrected, st1.BytesCorrected)
	}
	// Either failing outright or needing more corrections is acceptable;
	// silently returning wrong data is not.
	if err == nil {
		got, _, _ := Decode(jit, DefaultParity)
		if got != nil && !bytes.Equal(got, payload) {
			t.Fatal("jittered decode returned wrong data without error")
		}
	}
}
