package sqldump

import (
	"bytes"
	"testing"

	"microlonys/tpch"
)

func TestSections(t *testing.T) {
	db := tpch.Generate(0.002, 7)
	dump := Dump(db)
	secs, err := Sections(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != len(db.Tables) {
		t.Fatalf("%d sections, want %d tables", len(secs), len(db.Tables))
	}
	for i, s := range secs {
		want := db.Tables[i]
		if s.Table != want.Name {
			t.Fatalf("section %d = %q, want %q", i, s.Table, want.Name)
		}
		if len(s.Columns) != len(want.Columns) {
			t.Fatalf("%s: %d columns, want %d", s.Table, len(s.Columns), len(want.Columns))
		}
		rows := dump[s.Off : s.Off+s.Len]
		// The extent is exactly the row lines: row count matches and the
		// terminator/header stay outside.
		if n := bytes.Count(rows, []byte("\n")); n != len(want.Rows) {
			t.Fatalf("%s: extent holds %d lines, want %d rows", s.Table, n, len(want.Rows))
		}
		if bytes.Contains(rows, []byte("COPY ")) || bytes.Contains(rows, []byte("\\.")) {
			t.Fatalf("%s: extent includes COPY framing", s.Table)
		}
		if len(want.Rows) > 0 {
			first := []byte(want.Rows[0][0])
			if !bytes.HasPrefix(rows, first) {
				t.Fatalf("%s: extent does not start at first row", s.Table)
			}
		}
	}
}

func TestSectionsEmptyAndBad(t *testing.T) {
	if _, err := Sections([]byte("no tables here\n")); err == nil {
		t.Fatal("want error for table-free input")
	}
	if _, err := Sections([]byte("COPY t (a) FROM stdin;\n1\n2\n")); err == nil {
		t.Fatal("want error for unterminated COPY")
	}
	// Empty rows region.
	secs, err := Sections([]byte("COPY t (a, b) FROM stdin;\n\\.\n"))
	if err != nil || len(secs) != 1 || secs[0].Len != 0 {
		t.Fatalf("empty table: %+v, %v", secs, err)
	}
}
