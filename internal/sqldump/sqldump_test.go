package sqldump

import (
	"bytes"
	"strings"
	"testing"

	"microlonys/tpch"
)

func TestDumpShape(t *testing.T) {
	db := tpch.Generate(0.0002, 1)
	dump := Dump(db)
	text := string(dump)
	for _, want := range []string{
		"PostgreSQL database dump",
		"CREATE TABLE lineitem (",
		"COPY region (r_regionkey, r_name, r_comment) FROM stdin;",
		"\\.",
		"dump complete",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("dump missing %q", want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	db := tpch.Generate(0.0004, 2)
	dump := Dump(db)
	parsed, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(db, parsed); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsJunk(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no tables":       "hello world\n",
		"unknown copy":    "COPY ghosts (a) FROM stdin;\n\\.\n",
		"unterminated":    "CREATE TABLE t (\n a text\n);\nCOPY t (a) FROM stdin;\nrow1\n",
		"bad copy syntax": "CREATE TABLE t (\n a text\n);\nCOPY t a FROM somewhere\n",
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	db := tpch.Generate(0.0002, 3)
	dump := Dump(db)

	corrupt := bytes.Replace(dump, []byte("AFRICA"), []byte("AFRIKA"), 1)
	parsed, err := Parse(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(db, parsed); err == nil {
		t.Fatal("changed value not detected")
	}

	// A dropped row must also fail.
	lines := strings.Split(string(dump), "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "0\tAFRICA") {
			lines = append(lines[:i], lines[i+1:]...)
			break
		}
	}
	parsed, err = Parse([]byte(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(db, parsed); err == nil {
		t.Fatal("dropped row not detected")
	}
}

func TestDumpSizeBallpark(t *testing.T) {
	// The paper's experiment used a TPC-H archive of roughly 1.2 MB;
	// verify FitScaleFactor can land there through the real renderer.
	sf, db := tpch.FitScaleFactor(1_200_000, 7, Dump)
	size := len(Dump(db))
	if size < 1_000_000 || size > 1_500_000 {
		t.Fatalf("fitted dump %d bytes (sf=%g)", size, sf)
	}
	t.Logf("sf=%g gives a %d byte dump with %d rows", sf, size, db.TotalRows())
}
