package campaign

import (
	"bytes"
	"os"
	"testing"
)

// smallCfg is the cheapest campaign that still exercises the whole
// pipeline: one visual profile, one axis, a corpus small enough for a
// single outer-code group.
func smallCfg(workers int) Config {
	return Config{
		Profiles:    []string{"paper-small"},
		Axes:        []string{AxisLoss},
		Trials:      2,
		Seed:        42,
		CorpusBytes: 2048,
		Workers:     workers,
	}
}

// TestRunDeterministicAcrossWorkerCounts is the reproducibility contract
// behind the committed CAMPAIGN.json: the same config serializes to the
// same bytes no matter how the trials were scheduled.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var prev []byte
	for _, workers := range []int{1, 3} {
		res, err := Run(smallCfg(workers))
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		b, err := res.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("campaign JSON differs between worker counts 1 and %d", workers)
		}
		prev = b
	}
}

// TestRunSeedChangesResults guards against a seed that is silently
// ignored: different seeds must produce different trial streams.
func TestRunSeedChangesResults(t *testing.T) {
	a := smallCfg(1)
	b := smallCfg(1)
	b.Seed = 43
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := ra.Marshal()
	bb, _ := rb.Marshal()
	if bytes.Equal(ba, bb) {
		t.Fatal("campaigns with different seeds produced identical JSON")
	}
}

// TestRunShape checks the sweep structure: every requested profile×axis
// pair yields a curve, every point carries the requested trial count,
// and the calibrated anchor (no damage) recovers fully.
func TestRunShape(t *testing.T) {
	res, err := Run(smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 1 {
		t.Fatalf("curves = %d, want 1", len(res.Curves))
	}
	c := res.Curves[0]
	if c.Profile != "paper-small" || c.Axis != AxisLoss {
		t.Fatalf("curve = %s/%s, want paper-small/%s", c.Profile, c.Axis, AxisLoss)
	}
	if len(c.Points) == 0 {
		t.Fatal("curve has no points")
	}
	for _, p := range c.Points {
		if p.Trials != 2 {
			t.Fatalf("point %g: trials = %d, want 2", p.Value, p.Trials)
		}
		if got := p.Full + p.Partial + p.Failed; got != p.Trials {
			t.Fatalf("point %g: outcomes %d do not sum to trials %d", p.Value, got, p.Trials)
		}
	}
	if p := c.Points[0]; p.Value != 0 || p.Recovered != 1 {
		t.Fatalf("undamaged anchor point = %+v, want value 0 fully recovered", p)
	}
}

// TestCorpusDeterministic pins the corpus generator: same size and seed,
// same bytes; different seed, different bytes.
func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(4096, 7), Corpus(4096, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("Corpus is not deterministic for a fixed seed")
	}
	if len(a) != 4096 {
		t.Fatalf("len = %d, want 4096", len(a))
	}
	if bytes.Equal(a, Corpus(4096, 8)) {
		t.Fatal("Corpus ignores its seed")
	}
}

// TestTrialSeedsDistinct ensures trial seeds differ along every axis of
// their derivation — profile, axis, point, and trial index.
func TestTrialSeedsDistinct(t *testing.T) {
	seen := map[int64]string{}
	add := func(label string, s int64) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %s and %s both map to %d", prev, label, s)
		}
		seen[s] = label
	}
	add("base", trialSeed(1, "p", "a", 0, 0))
	add("seed", trialSeed(2, "p", "a", 0, 0))
	add("profile", trialSeed(1, "q", "a", 0, 0))
	add("axis", trialSeed(1, "p", "b", 0, 0))
	add("point", trialSeed(1, "p", "a", 1, 0))
	add("trial", trialSeed(1, "p", "a", 0, 1))
}

// TestDiff exercises the regression gate on synthetic results: a drop
// beyond the band regresses, a drop inside it does not, a gain counts as
// improved, and unswept baseline points are skipped.
func TestDiff(t *testing.T) {
	mk := func(points ...PointResult) *Result {
		return &Result{Curves: []Curve{{Profile: "p", Axis: AxisSeverity, Points: points}}}
	}
	base := mk(
		PointResult{Value: 1, Trials: 8, Recovered: 1},
		PointResult{Value: 2, Trials: 8, Recovered: 0.5},
		PointResult{Value: 3, Trials: 8, Recovered: 0.25},
	)
	fresh := mk(
		PointResult{Value: 1, Trials: 4, Recovered: 0.5}, // anchor: no binomial slack, regression
		PointResult{Value: 3, Trials: 4, Recovered: 1},   // above band 0.1+1.96·sqrt(.25·.75/4)≈0.52: improved
	)
	rep := Diff(base, fresh, 0.1)
	if rep.Compared != 2 || rep.Skipped != 1 || rep.Improved != 1 || len(rep.Regressions) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	r := rep.Regressions[0]
	if r.Value != 1 || r.Band != 0.1 {
		t.Fatalf("regression = %+v, want anchor point with flat band 0.1", r)
	}

	// Inside the band: a 2-trial run at baseline 0.5 gets binomial slack
	// wide enough that recovering 0/2 is not yet proof of regression.
	fresh2 := mk(PointResult{Value: 2, Trials: 2, Recovered: 0})
	if rep := Diff(base, fresh2, 0.15); len(rep.Regressions) != 0 {
		t.Fatalf("2-trial drop at a 0.5 baseline should fit in the band, got %+v", rep.Regressions)
	}
}

// TestMarshalRoundTrip pins the JSON schema: the committed baseline must
// load back into an equal structure.
func TestMarshalRoundTrip(t *testing.T) {
	res, err := Run(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/campaign.json"
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("baseline does not round-trip through Marshal/LoadBaseline")
	}
	// A round-tripped baseline diffed against its own run is clean.
	if rep := Diff(back, res, 0.01); len(rep.Regressions) != 0 || rep.Skipped != 0 {
		t.Fatalf("self-diff not clean: %+v", rep)
	}
}

// TestRunFastSim pins the fast-sim campaign mode: the config flag must
// reach the visual runner's scanner selector, the run stays
// deterministic at any worker count, and the calibrated no-damage
// anchor still recovers fully — the cheap end of the
// statistical-equivalence contract the full `-fastsim -diff` gate
// checks. (Aggregate curves may legitimately coincide with the
// reference model's on small sweeps — the outcomes are coarse — so the
// flag is asserted on the runner, not on the JSON.)
func TestRunFastSim(t *testing.T) {
	fast := smallCfg(1)
	fast.FastSim = true
	r, err := newRunner("paper-small", fast)
	if err != nil {
		t.Fatal(err)
	}
	if vr, ok := r.(*visualRunner); !ok || !vr.fastSim {
		t.Fatal("FastSim config did not reach the visual runner")
	}
	ra, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if p := ra.Curves[0].Points[0]; p.Value != 0 || p.Recovered != 1 {
		t.Fatalf("fast-sim undamaged anchor = %+v, want full recovery", p)
	}
	fast.Workers = 3
	rb, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := ra.Marshal()
	bb, _ := rb.Marshal()
	if !bytes.Equal(ba, bb) {
		t.Fatal("fast-sim campaign JSON differs between worker counts")
	}
}
