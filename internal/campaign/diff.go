package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// The regression gate: a fresh (typically small-trial-count) run compared
// against the committed baseline, point by point, inside a tolerance band
// that widens with the fresh run's sampling noise.

// Regression is one axis point whose fresh recovery rate fell outside the
// band below the baseline.
type Regression struct {
	Profile  string
	Axis     string
	Value    float64
	Baseline float64 // baseline recovered fraction
	Fresh    float64 // fresh recovered fraction
	Band     float64 // allowed one-sided drop
}

func (r Regression) String() string {
	return fmt.Sprintf("%s/%s@%g: recovered %.3f, baseline %.3f (band %.3f)",
		r.Profile, r.Axis, r.Value, r.Fresh, r.Baseline, r.Band)
}

// DiffReport is the outcome of comparing a fresh run to a baseline.
type DiffReport struct {
	Compared    int          // axis points compared
	Skipped     int          // baseline points the fresh run did not sweep
	Improved    int          // points above the baseline by more than the band
	Regressions []Regression // points below the baseline beyond the band
}

// Diff compares fresh against baseline. tol is the flat tolerance on the
// recovered fraction; on top of it each point gets a binomial slack of
// 1.96·sqrt(p(1-p)/n) for the fresh run's trial count n at baseline rate
// p — a 2-trial smoke run is only held to what 2 trials can statistically
// say, while the anchor points (p = 0 or 1, e.g. "severity 1 always
// recovers") get no slack at all and gate tightly at any trial count.
// Only drops below the baseline regress; gains are reported as Improved
// (a hint to refresh the baseline).
func Diff(baseline, fresh *Result, tol float64) *DiffReport {
	rep := &DiffReport{}
	type key struct {
		profile, axis string
		value         float64
	}
	freshPts := map[key]PointResult{}
	for _, c := range fresh.Curves {
		for _, p := range c.Points {
			freshPts[key{c.Profile, c.Axis, p.Value}] = p
		}
	}
	for _, c := range baseline.Curves {
		for _, bp := range c.Points {
			fp, ok := freshPts[key{c.Profile, c.Axis, bp.Value}]
			if !ok {
				rep.Skipped++
				continue
			}
			rep.Compared++
			band := tol + 1.96*math.Sqrt(bp.Recovered*(1-bp.Recovered)/float64(fp.Trials))
			switch {
			case fp.Recovered < bp.Recovered-band:
				rep.Regressions = append(rep.Regressions, Regression{
					Profile: c.Profile, Axis: c.Axis, Value: bp.Value,
					Baseline: bp.Recovered, Fresh: fp.Recovered, Band: band,
				})
			case fp.Recovered > bp.Recovered+band:
				rep.Improved++
			}
		}
	}
	return rep
}

func (r *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d points compared, %d skipped, %d improved, %d regressions",
		r.Compared, r.Skipped, r.Improved, len(r.Regressions))
	for _, reg := range r.Regressions {
		fmt.Fprintf(&b, "\n  REGRESSION %s", reg)
	}
	return b.String()
}

// Marshal renders a Result as the committed CAMPAIGN.json bytes:
// two-space indented, trailing newline, deterministic field order — the
// same campaign always serializes to the same bytes.
func (r *Result) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadBaseline reads a committed campaign JSON.
func LoadBaseline(path string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("campaign: parsing %s: %w", path, err)
	}
	return &r, nil
}
