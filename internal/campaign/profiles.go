package campaign

import (
	"fmt"

	"microlonys/media"
)

// The profile registry: names the harness (and cmd/campaign flags)
// resolve to runners.

// ProfileDNA is the dnasim substrate's profile name.
const ProfileDNA = "dnasim"

// visualProfiles maps campaign profile names to their media profiles.
var visualProfiles = map[string]func() media.Profile{
	"paper-small":     PaperSmall,
	"microfilm-small": MicrofilmSmall,
}

// DefaultProfiles returns the baseline sweep set: one print medium, one
// film medium, and the DNA substrate.
func DefaultProfiles() []string {
	return []string{"paper-small", "microfilm-small", ProfileDNA}
}

// ProfileNames returns every profile the harness can sweep, sorted.
func ProfileNames() []string {
	names := []string{ProfileDNA}
	for n := range visualProfiles {
		names = append(names, n)
	}
	return sortedCopy(names)
}

// newRunner resolves a profile name to its trial runner.
func newRunner(name string, cfg Config) (runner, error) {
	if name == ProfileDNA {
		return newDNARunner(cfg)
	}
	if mk, ok := visualProfiles[name]; ok {
		return newVisualRunner(mk(), cfg)
	}
	return nil, fmt.Errorf("campaign: unknown profile %q (have %v)", name, ProfileNames())
}
