package campaign

import (
	"bytes"
	"math/rand"

	"microlonys/internal/dnasim"
)

// The DNA side of the harness: the same compressed-stream-to-substrate
// sweep, expressed in the dnasim channel's failure modes. The axis values
// share the visual profiles' scale where the physics allows it — loss is
// a lost-carrier fraction on both (destroyed frames there, synthesis
// dropouts here) — and severity multiplies the channel's calibrated base
// substitution rate the way it multiplies the scanner's distortion dials.
// Dust has no DNA analogue, so the dnasim profile skips that axis.

// Base channel calibration: severity 1 must recover cleanly, like the
// visual profiles' calibrated scanners.
const (
	dnaCoverage = 14.0   // mean sequencing reads per oligo
	dnaBaseSub  = 0.01   // per-base substitution rate at severity 1
	dnaBaseDrop = 0.003  // whole-oligo dropout rate outside the loss axis
	dnaCopySub  = 0.0004 // per-base substitution applied by one re-synthesis copy
	dnaLossSub  = 0.005  // substitution rate while sweeping dropouts
)

// DNASeveritySteps returns the dnasim severity ladder the campaign
// sweeps, for tests that walk the same operating points.
func DNASeveritySteps() []float64 {
	return (&dnaRunner{}).points(AxisSeverity)
}

// DNAChannel returns the calibrated dnasim channel at a severity
// multiplier, the way the harness's severity axis builds it. The caller
// picks the Seed.
func DNAChannel(severity float64) dnasim.Channel {
	return dnasim.Channel{Coverage: dnaCoverage, SubRate: dnaBaseSub * severity, DropRate: dnaBaseDrop}
}

type dnaRunner struct {
	corpus []byte
	oligos []dnasim.Oligo
}

func newDNARunner(cfg Config) (*dnaRunner, error) {
	corpus := Corpus(cfg.CorpusBytes, cfg.Seed)
	return &dnaRunner{corpus: corpus, oligos: dnasim.Encode(corpus)}, nil
}

func (r *dnaRunner) axes(requested []string) []string {
	var out []string
	for _, a := range requested {
		if a != AxisDust && a != AxisSalvage { // no dust and no sheet bag on a DNA pool
			out = append(out, a)
		}
	}
	return out
}

func (r *dnaRunner) points(axis string) []float64 {
	switch axis {
	case AxisSeverity:
		return []float64{0.5, 1, 1.25, 1.5, 2, 3}
	case AxisLoss:
		return []float64{0, 0.05, 0.10, 0.15, 0.25}
	case AxisGenerations:
		return []float64{0, 1, 2, 3, 4}
	}
	return nil
}

func (r *dnaRunner) trial(axis string, value float64, rng *rand.Rand, _ *engine) outcome {
	pool := r.oligos
	ch := dnasim.Channel{Coverage: dnaCoverage, SubRate: dnaBaseSub, DropRate: dnaBaseDrop}

	switch axis {
	case AxisSeverity:
		ch.SubRate = dnaBaseSub * value
	case AxisLoss:
		ch.SubRate = dnaLossSub
		ch.DropRate = value
	case AxisGenerations:
		// Each re-synthesis copy substitutes bases in the pool itself —
		// unlike read noise, these errors are shared by every read of the
		// oligo, so consensus cannot vote them away and the column code
		// must absorb them.
		for g := 0; g < int(value); g++ {
			pool = mutatePool(pool, dnaCopySub, rng)
		}
	}
	ch.Seed = rng.Int63() | 1

	got, st, err := dnasim.Decode(ch.Sequence(pool))
	o := outcome{}
	if st != nil {
		// The closest frame analogue on DNA is the oligo: dropped oligos
		// are the "frames" the erasure code had to supply (or could not).
		o.framesFailed = st.OligosDropped
	}
	switch {
	case err != nil:
		o.failed = true
	case bytes.Equal(got, r.corpus):
		o.full = true
	default:
		o.partial = true
		o.bytesLost = diffBytes(got, r.corpus)
	}
	return o
}

// mutatePool applies one synthesis-copy generation: independent per-base
// substitutions across every oligo. A substitution may create a
// homopolymer the rotating code forbids — sequencing reads of that oligo
// then fail to decode, which is exactly the amplification-damage story.
func mutatePool(pool []dnasim.Oligo, rate float64, rng *rand.Rand) []dnasim.Oligo {
	const bases = "ACGT"
	out := make([]dnasim.Oligo, len(pool))
	for i, o := range pool {
		b := []byte(o)
		for j := range b {
			if rng.Float64() < rate {
				b[j] = bases[rng.Intn(4)]
			}
		}
		out[i] = dnasim.Oligo(b)
	}
	return out
}
