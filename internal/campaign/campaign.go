// Package campaign is the statistical damage-torture harness: it turns
// the paper's durability claims — survive lost carriers, scanner
// distortion, generational copies — into measured recovery-probability
// curves instead of hand-picked anecdotes.
//
// A campaign archives a deterministic corpus once per media profile, then
// runs randomized trials along damage axes: each trial clones the
// archived volume, applies parameterized damage (distortion severity,
// dust/tear density, lost-carrier fraction, or scan→print→scan
// generational copies), restores with RestoreOptions.Partial through a
// reused core.Engine, and scores the outcome — full recovery, partial
// (with the stats' GroupsLost/BytesLost accounting), or failure. The
// internal/dnasim substrate runs the same sweeps through its sequencing
// channel model, so every media profile of the ULE stack gets a curve.
//
// Everything derives from one seed: trial damage placement, scanner noise
// (via the media package's Scanner.Seed hook) and sequencing randomness
// are all keyed by (seed, profile, axis, point, trial), so a campaign is
// reproducible bit-for-bit at any worker count — the committed
// CAMPAIGN.json baseline regenerates exactly from cmd/campaign with the
// same flags. See Diff for the tolerance-band regression gate.
package campaign

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// Config parameterizes one campaign run.
type Config struct {
	// Profiles selects the media profiles to sweep (see ProfileNames);
	// empty means DefaultProfiles.
	Profiles []string
	// Axes selects the damage axes to sweep (see AxisNames); empty means
	// DefaultAxes. Axes a profile cannot express (dust on DNA) are
	// skipped for that profile.
	Axes []string
	// Trials is the randomized trials per axis point (default 8).
	Trials int
	// Seed keys every random draw of the campaign (default 1).
	Seed int64
	// CorpusBytes sizes the archived corpus (default 16384).
	CorpusBytes int
	// Workers bounds the trial-level fan-out (0 = GOMAXPROCS). Results
	// are identical at any setting.
	Workers int
	// FastSim scans every visual trial through the fast-sim scanner
	// approximation (media.Distortions.FastSim). Curves are NOT
	// bit-identical to the reference model's — the contract is that they
	// stay inside Diff's tolerance bands of the reference baseline, which
	// is exactly what `campaign -fastsim -diff CAMPAIGN.json` checks.
	// DNA profiles have no scanner and ignore it.
	FastSim bool
}

// Damage axes.
const (
	AxisSeverity    = "severity"    // scanner-distortion multiplier (1 = the profile's calibration)
	AxisDust        = "dust"        // dust specks (+ a scratch per 16) added to every frame
	AxisLoss        = "loss"        // fraction of frames destroyed outright (lost carriers)
	AxisGenerations = "generations" // scan→print→scan copies before restoration
	AxisSalvage     = "salvage"     // frame-destruction fraction on a shuffled, bootstrap-free sheet bag (core.Salvage)
)

// DefaultAxes returns every damage axis in sweep order.
func DefaultAxes() []string {
	return []string{AxisSeverity, AxisDust, AxisLoss, AxisGenerations, AxisSalvage}
}

// PointResult aggregates one axis point's trials.
type PointResult struct {
	Value float64 `json:"value"` // the axis value (multiplier, specks, fraction, copies)

	Trials  int `json:"trials"`
	Full    int `json:"full"`    // bit-exact recovery
	Partial int `json:"partial"` // restored with losses (Partial accounting)
	Failed  int `json:"failed"`  // restoration error

	// Recovered is Full/Trials — the recovery probability estimate the
	// curve plots and the regression gate compares.
	Recovered float64 `json:"recovered_fraction"`

	MeanGroupsLost   float64 `json:"mean_groups_lost"`
	MeanBytesLost    float64 `json:"mean_bytes_lost"`
	MeanFramesFailed float64 `json:"mean_frames_failed"`
}

// Curve is one profile's recovery-rate curve along one axis.
type Curve struct {
	Profile string        `json:"profile"`
	Axis    string        `json:"axis"`
	Points  []PointResult `json:"points"`
}

// Result is a complete campaign, the shape CAMPAIGN.json commits.
type Result struct {
	Description string   `json:"description"`
	Command     string   `json:"command"`
	Seed        int64    `json:"seed"`
	Trials      int      `json:"trials"`
	CorpusBytes int      `json:"corpus_bytes"`
	Profiles    []string `json:"profiles"`
	Axes        []string `json:"axes"`
	Curves      []Curve  `json:"curves"`
}

// outcome is one trial's score.
type outcome struct {
	full, partial, failed bool
	groupsLost            int
	bytesLost             int
	framesFailed          int
}

// runner executes one profile's trials. Implementations must be safe to
// call from multiple goroutines concurrently (they treat their archived
// state as read-only and thread all mutation through per-trial clones).
type runner interface {
	// axes filters the requested axes to the ones the profile supports.
	axes(requested []string) []string
	// points returns the sweep values for a supported axis.
	points(axis string) []float64
	// trial runs one randomized trial and scores it. rng is the trial's
	// private randomness; eng is the calling worker's reusable engine.
	trial(axis string, value float64, rng *rand.Rand, eng *engine) outcome
}

// normalize fills Config defaults.
func (c Config) normalize() Config {
	if len(c.Profiles) == 0 {
		c.Profiles = DefaultProfiles()
	}
	if len(c.Axes) == 0 {
		c.Axes = DefaultAxes()
	}
	if c.Trials <= 0 {
		c.Trials = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CorpusBytes <= 0 {
		c.CorpusBytes = 16384
	}
	return c
}

// Run executes the campaign: every profile × supported axis × sweep point
// × trial, fanned across Workers goroutines, aggregated into curves in
// deterministic order.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.normalize()
	for _, a := range cfg.Axes {
		if !validAxis(a) {
			return nil, fmt.Errorf("campaign: unknown axis %q", a)
		}
	}

	// Build every runner up front (each archives or encodes its corpus
	// once; trials only clone).
	runners := make([]runner, len(cfg.Profiles))
	for i, name := range cfg.Profiles {
		r, err := newRunner(name, cfg)
		if err != nil {
			return nil, err
		}
		runners[i] = r
	}

	// Enumerate the trial jobs with their result slots, then fan out.
	type job struct {
		runner    runner
		axis      string
		value     float64
		seed      int64
		curve, pt int
		trial     int
	}
	var curves []Curve
	var jobs []job
	for pi, name := range cfg.Profiles {
		r := runners[pi]
		for _, axis := range r.axes(cfg.Axes) {
			ci := len(curves)
			pts := r.points(axis)
			c := Curve{Profile: name, Axis: axis, Points: make([]PointResult, len(pts))}
			for vi, v := range pts {
				c.Points[vi].Value = v
				c.Points[vi].Trials = cfg.Trials
				for t := 0; t < cfg.Trials; t++ {
					jobs = append(jobs, job{
						runner: r, axis: axis, value: v,
						seed:  trialSeed(cfg.Seed, name, axis, vi, t),
						curve: ci, pt: vi, trial: t,
					})
				}
			}
			curves = append(curves, c)
		}
	}

	outcomes := make([]outcome, len(jobs))
	workers := cfg.Workers
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := newEngine() // per-worker: reused scan scratch across trials
			for i := range next {
				j := &jobs[i]
				rng := rand.New(rand.NewSource(j.seed))
				outcomes[i] = j.runner.trial(j.axis, j.value, rng, eng)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	// Aggregate in job order — deterministic at any worker count because
	// each outcome lands in its own slot.
	for i, j := range jobs {
		p := &curves[j.curve].Points[j.pt]
		o := outcomes[i]
		switch {
		case o.full:
			p.Full++
		case o.failed:
			p.Failed++
		default:
			p.Partial++
		}
		p.MeanGroupsLost += float64(o.groupsLost)
		p.MeanBytesLost += float64(o.bytesLost)
		p.MeanFramesFailed += float64(o.framesFailed)
	}
	for ci := range curves {
		for pi := range curves[ci].Points {
			p := &curves[ci].Points[pi]
			n := float64(p.Trials)
			p.Recovered = float64(p.Full) / n
			p.MeanGroupsLost /= n
			p.MeanBytesLost /= n
			p.MeanFramesFailed /= n
		}
	}

	return &Result{
		Description: "Recovery-probability curves from randomized damage trials: per axis point, the fraction of trials restored bit-exact (recovered_fraction), restored with Partial-mode losses (partial), or failed, with mean GroupsLost/BytesLost from the restore stats. Reproducible bit-for-bit with the same seed.",
		Seed:        cfg.Seed,
		Trials:      cfg.Trials,
		CorpusBytes: cfg.CorpusBytes,
		Profiles:    append([]string(nil), cfg.Profiles...),
		Axes:        append([]string(nil), cfg.Axes...),
		Curves:      curves,
	}, nil
}

func validAxis(a string) bool {
	for _, x := range DefaultAxes() {
		if a == x {
			return true
		}
	}
	return false
}

// trialSeed derives one trial's private seed from the campaign seed and
// the trial's coordinates, via FNV-1a — stable across runs and platforms.
func trialSeed(seed int64, profile, axis string, point, trial int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%d", seed, profile, axis, point, trial)
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// Corpus returns the campaign's deterministic archive corpus: SQL-dump-
// shaped text (the workload the paper archives) generated from the seed.
func Corpus(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x636f7270)) // "corp"
	buf := make([]byte, 0, n+64)
	for i := 0; len(buf) < n; i++ {
		buf = append(buf,
			fmt.Sprintf("INSERT INTO lineitem VALUES (%d, %d, %d, %d, %d.%02d, '19%02d-%02d-%02d');\n",
				i, rng.Intn(200000), rng.Intn(10000), 1+rng.Intn(50),
				rng.Intn(60000), rng.Intn(100),
				92+rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28))...)
	}
	return buf[:n]
}

// sortedCopy returns a sorted copy (diff reporting wants stable order).
func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}
