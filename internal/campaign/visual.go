package campaign

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"microlonys/internal/core"
	"microlonys/internal/emblem"
	"microlonys/internal/faultinject"
	"microlonys/media"
)

// The visual-media side of the harness: scaled-down counterparts of the
// paper's three §4 profiles. The full-size profiles render multi-megapixel
// frames — far too slow for hundreds of randomized trials — so each
// campaign profile keeps its parent's distortion character (rotation and
// photometry are resolution-independent; the pixel-denominated dials are
// re-calibrated to the smaller module size) on a small emblem layout, with
// severity 1 calibrated to restore cleanly, exactly like the parents.

// campaignSheetGroups is the per-sheet capacity in outer-code groups: two
// groups per sheet splits the default corpus across carriers, so the loss
// axis exercises the per-sheet accounting.
const campaignSheetGroups = 2

// PaperSmall is the campaign's laser-printed-paper profile: the Paper()
// distortion family on a 100×80-module emblem at 3 px/module.
func PaperSmall() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return media.Profile{
		Name:   "paper-small",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		WriteBitonal: true,
		Layout:       l,
		Scanner: media.Distortions{
			RotationDeg: 0.25,
			RowJitterPx: 0.8,
			BlurRadius:  1,
			Fade:        0.08,
			Gradient:    0.3,
			Noise:       5,
			DustSpecks:  3,
		},
	}
}

// MicrofilmSmall is the campaign's 16 mm-microfilm profile: bitonal
// scan-back with film fade, dust and a scratch budget, scanned at a
// slightly higher resolution than written (the archive-scanner resample).
func MicrofilmSmall() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return media.Profile{
		Name:   "microfilm-small",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW() * 5 / 4, ScanH: l.ImageH() * 5 / 4,
		WriteBitonal: true,
		ScanBitonal:  true,
		Layout:       l,
		Scanner: media.Distortions{
			RotationDeg: 0.2,
			BarrelK:     0.0015,
			RowJitterPx: 0.5,
			BlurRadius:  1,
			Fade:        0.12,
			Noise:       4,
			DustSpecks:  2,
			Scratches:   1,
		},
	}
}

// visualRunner holds one profile's archived corpus; trials clone it.
type visualRunner struct {
	profile   media.Profile
	corpus    []byte
	arch      *core.Archived
	archCat   *core.Archived // catalog-enabled twin for the salvage axis
	bootstrap string
	fastSim   bool // scan trials through the fast-sim approximation
}

// engine is one campaign worker's reusable per-trial state.
type engine struct {
	core *core.Engine
	out  bytes.Buffer
}

func newEngine() *engine { return &engine{core: core.NewEngine(1)} }

func newVisualRunner(p media.Profile, cfg Config) (*visualRunner, error) {
	corpus := Corpus(cfg.CorpusBytes, cfg.Seed)
	opts := core.DefaultOptions(p)
	// Raw archives are the Partial-accounting workload: a compressed
	// stream with a zero-filled hole still fails at DBDecode, so the
	// partial/full distinction would collapse to pass/fail.
	opts.Compress = false
	opts.Workers = 1
	opts.SheetFrames = campaignSheetGroups * (opts.GroupData + opts.GroupParity)
	arch, err := core.CreateArchive(corpus, opts)
	if err != nil {
		return nil, fmt.Errorf("campaign: archiving %s corpus: %w", p.Name, err)
	}
	// The salvage axis restores from an unordered sheet bag with no
	// bootstrap text, which needs the self-describing catalog emblems:
	// archive a catalog-enabled twin (one extra reserved frame per sheet).
	optsCat := opts
	optsCat.Catalog = true
	optsCat.SheetFrames++
	archCat, err := core.CreateArchive(corpus, optsCat)
	if err != nil {
		return nil, fmt.Errorf("campaign: archiving %s catalog corpus: %w", p.Name, err)
	}
	return &visualRunner{profile: p, corpus: corpus, arch: arch, archCat: archCat,
		bootstrap: arch.BootstrapText, fastSim: cfg.FastSim}, nil
}

func (r *visualRunner) axes(requested []string) []string {
	return append([]string(nil), requested...) // visual media support every axis
}

func (r *visualRunner) points(axis string) []float64 {
	switch axis {
	case AxisSeverity:
		return []float64{0.5, 1, 1.25, 1.5, 2, 3}
	case AxisDust:
		return []float64{0, 16, 32, 48, 64, 96}
	case AxisLoss:
		return []float64{0, 0.05, 0.10, 0.15, 0.25}
	case AxisGenerations:
		return []float64{0, 1, 2, 3, 4}
	case AxisSalvage:
		return []float64{0, 0.05, 0.10, 0.15, 0.25}
	}
	return nil
}

// genScanner is the scanner model a generational copy runs through: a
// gentler pass than the final archive scan (a copy stand, not a battered
// ADF), so generation loss accumulates from quantisation and residual
// noise rather than cliffing on the first copy's blur.
const genScannerScale = 0.6

// trial clones the archived volume, applies the axis's damage at the
// given value, and scores a Partial restore.
func (r *visualRunner) trial(axis string, value float64, rng *rand.Rand, eng *engine) outcome {
	if axis == AxisSalvage {
		return r.salvageTrial(value, rng, eng)
	}
	vol := r.arch.Volume.Clone()
	scanner := r.profile.Scanner
	// The fast-sim selector rides every scanner pass of the trial: Scale
	// passes it through, so generational copies inherit it too.
	scanner.FastSim = r.fastSim

	switch axis {
	case AxisSeverity:
		scanner = scanner.Scale(value)
	case AxisDust:
		if specks := int(value); specks > 0 {
			d := media.Distortions{DustSpecks: specks, DustMaxRadius: 5, Scratches: specks / 16}
			for i, n := 0, vol.FrameCount(); i < n; i++ {
				s, j, _ := vol.Locate(i)
				d.Seed = rng.Int63() | 1
				if err := vol.Damage(s, j, d); err != nil {
					return outcome{failed: true}
				}
			}
		}
	case AxisLoss:
		n := vol.FrameCount()
		kill := int(math.Round(value * float64(n)))
		for _, i := range rng.Perm(n)[:kill] {
			s, j, _ := vol.Locate(i)
			if err := vol.Destroy(s, j); err != nil {
				return outcome{failed: true}
			}
		}
	case AxisGenerations:
		for g := 0; g < int(value); g++ {
			gen := scanner.Scale(genScannerScale)
			gen.Seed = rng.Int63() | 1
			vol.SetScanner(gen)
			var err error
			if vol, err = vol.Reprint(); err != nil {
				return outcome{failed: true}
			}
		}
	}

	// Every trial scans through fresh, trial-private scanner noise.
	scanner.Seed = rng.Int63() | 1
	vol.SetScanner(scanner)

	eng.out.Reset()
	st, err := eng.core.RestoreToWriter(&eng.out, vol, r.bootstrap,
		core.RestoreOptions{Mode: core.RestoreNative, Partial: true})
	o := outcome{}
	if st != nil {
		o.groupsLost = st.GroupsLost
		o.bytesLost = st.BytesLost
		o.framesFailed = st.FramesFailed
	}
	switch {
	case err != nil:
		o.failed = true
	case bytes.Equal(eng.out.Bytes(), r.corpus):
		o.full = true
	default:
		o.partial = true
		if o.bytesLost == 0 {
			// The restore claimed clean output that differs from the
			// corpus — count the divergence so the curve records it.
			o.bytesLost = diffBytes(eng.out.Bytes(), r.corpus)
		}
	}
	return o
}

// salvageTrial is the disaster-drill axis: the catalog-enabled twin's
// sheets are pulled into an unordered bag — value sets the fraction of
// frames destroyed across it, a faultinject schedule shuffles the bag,
// duplicates one sheet and tears another — then core.Salvage restores
// with no bootstrap text and the output is scored against the corpus.
func (r *visualRunner) salvageTrial(value float64, rng *rand.Rand, eng *engine) outcome {
	vol := r.archCat.Volume.Clone()
	scanner := r.profile.Scanner
	scanner.FastSim = r.fastSim
	scanner.Seed = rng.Int63() | 1
	vol.SetScanner(scanner)

	bag := make([]*media.Medium, vol.Sheets())
	for s := range bag {
		m, err := vol.Sheet(s)
		if err != nil {
			return outcome{failed: true}
		}
		bag[s] = m
	}
	sched := faultinject.New(rng.Int63() | 1)
	if _, err := sched.DestroyFraction(bag, value); err != nil {
		return outcome{failed: true}
	}
	sched.Shuffle(bag)
	bag = sched.Duplicate(bag, 1)

	eng.out.Reset()
	rep, err := eng.core.SalvageTo(&eng.out, bag, core.SalvageOptions{Mode: core.RestoreNative})
	o := outcome{}
	if rep != nil {
		o.groupsLost = rep.Stats.GroupsLost
		o.bytesLost = rep.Stats.BytesLost
		o.framesFailed = rep.Stats.FramesFailed
	}
	switch {
	case err != nil:
		o.failed = true
	case bytes.Equal(eng.out.Bytes(), r.corpus):
		o.full = true
	default:
		o.partial = true
		if o.bytesLost == 0 {
			o.bytesLost = diffBytes(eng.out.Bytes(), r.corpus)
		}
	}
	return o
}

// diffBytes counts positions where a and b differ, plus any length gap.
func diffBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := len(a) + len(b) - 2*n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
