package jobs

import (
	"context"
	"errors"
)

// IsTransient classifies an error as retryable. An error is transient
// when something in its wrap chain implements `Transient() bool` and
// answers true — the convention faultinject's flaky ends follow and any
// real I/O layer can adopt. Context cancellation and deadline expiry are
// never transient: the caller asked to stop, retrying would defy them.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
