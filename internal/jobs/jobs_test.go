package jobs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"microlonys/internal/core"
	"microlonys/internal/emblem"
	"microlonys/internal/faultinject"
	"microlonys/internal/mocoder"
	"microlonys/internal/sqldump"
	"microlonys/media"
	"microlonys/tpch"
)

// tinyProfile is the same fast medium the core tests use.
func tinyProfile() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 4}
	return media.Profile{
		Name:   "tiny-test",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
		Scanner: media.Distortions{
			RotationDeg: 0.15, BlurRadius: 1, Noise: 3, DustSpecks: 4,
		},
	}
}

func testPayload(n int) []byte {
	var b bytes.Buffer
	for i := 0; b.Len() < n; i++ {
		b.WriteString("INSERT INTO lineitem VALUES (")
		b.WriteByte(byte('0' + i%10))
		b.WriteString(", 155190, 7706, 17, 21168.23, '1996-03-13');\n")
	}
	return b.Bytes()[:n]
}

// The shared fixture: one indexed catalog archive of a small TPC-H dump,
// built once — every job test restores, queries or salvages it.
var (
	fixOnce sync.Once
	fixArch *core.Archived
	fixData []byte
	fixErr  error
)

func fixture(t *testing.T) (*core.Archived, []byte) {
	t.Helper()
	fixOnce.Do(func() {
		prof := tinyProfile()
		capacity := mocoder.Capacity(prof.Layout)
		_, db := tpch.FitScaleFactor(40*capacity, 7, sqldump.Dump)
		fixData = sqldump.Dump(db)
		opts := core.DefaultOptions(prof)
		opts.CompressDepth = 1
		opts.SheetFrames = 22
		opts.Catalog = true
		opts.Index = true
		opts.IndexBlockBytes = 4 * capacity
		fixArch, fixErr = core.CreateArchive(fixData, opts)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixArch, fixData
}

func fixtureBag(t *testing.T) []*media.Medium {
	arch, _ := fixture(t)
	var bag []*media.Medium
	for s := 0; s < arch.Volume.Sheets(); s++ {
		m, err := arch.Volume.Sheet(s)
		if err != nil {
			t.Fatal(err)
		}
		bag = append(bag, m)
	}
	return bag
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func restoreReq(arch *core.Archived) Request {
	return Request{
		Kind: KindRestore, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		RestoreOptions: core.RestoreOptions{Mode: core.RestoreNative},
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	defer drain(t, m)
	for _, req := range []Request{
		{Kind: KindArchive},               // no source
		{Kind: KindRestore},               // no volume
		{Kind: KindTable, Table: ""},      // no volume, no table
		{Kind: KindSalvage},               // no sheets
		{Kind: Kind("transmogrify")},      // unknown kind
	} {
		if _, err := m.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("Submit(%+v): got %v, want ErrBadRequest", req.Kind, err)
		}
	}
}

// TestResultsMatchOneShotFacade: every job kind's successful output is
// byte-identical to the corresponding one-shot core call.
func TestResultsMatchOneShotFacade(t *testing.T) {
	arch, data := fixture(t)
	ro := core.RestoreOptions{Mode: core.RestoreNative}
	wantTable, _, err := core.RestoreTable(arch.Volume, arch.BootstrapText, "nation", ro)
	if err != nil {
		t.Fatal(err)
	}
	var wantSalvage bytes.Buffer
	if _, err := core.SalvageTo(&wantSalvage, fixtureBag(t), core.SalvageOptions{Mode: core.RestoreNative}); err != nil {
		t.Fatal(err)
	}

	m := newManager(t, Config{Workers: 3})
	defer drain(t, m)
	ctx := context.Background()

	submit := func(req Request) int64 {
		t.Helper()
		id, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	wait := func(id int64) Result {
		t.Helper()
		res, snap, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		if snap.State != StateSucceeded {
			t.Fatalf("job %d state %s", id, snap.State)
		}
		return res
	}

	restoreID := submit(restoreReq(arch))
	rangeID := submit(Request{
		Kind: KindRange, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		Off: 128, Length: 512, RestoreOptions: ro,
	})
	tableID := submit(Request{
		Kind: KindTable, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		Table: "nation", RestoreOptions: ro,
	})
	listID := submit(Request{
		Kind: KindListIndex, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		RestoreOptions: ro,
	})
	salvageID := submit(Request{
		Kind: KindSalvage, Sheets: fixtureBag(t),
		SalvageOptions: core.SalvageOptions{Mode: core.RestoreNative},
	})
	archiveID := submit(Request{
		Kind:           KindArchive,
		Source:         func(context.Context) (io.Reader, error) { return bytes.NewReader(testPayload(8192)), nil },
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})

	if got := wait(restoreID); !bytes.Equal(got.Data, data) {
		t.Fatalf("restore job: %d bytes, want %d identical", len(got.Data), len(data))
	}
	if got := wait(rangeID); !bytes.Equal(got.Data, data[128:128+512]) {
		t.Fatal("range job output differs from the one-shot slice")
	}
	if got := wait(tableID); !bytes.Equal(got.Data, wantTable) {
		t.Fatal("table job output differs from the one-shot call")
	}
	if got := wait(listID); got.Index == nil || len(got.Index.Sections) == 0 {
		t.Fatal("listindex job returned no sections")
	}
	if got := wait(salvageID); !bytes.Equal(got.Data, wantSalvage.Bytes()) {
		t.Fatal("salvage job output differs from the one-shot call")
	}
	res := wait(archiveID)
	if res.Archived == nil {
		t.Fatal("archive job returned no archive")
	}
	back, _, err := core.RestoreVolume(res.Archived.Volume, res.Archived.BootstrapText, ro)
	if err != nil || !bytes.Equal(back, testPayload(8192)) {
		t.Fatalf("archive job roundtrip: %v", err)
	}
}

// TestBackpressure: a full queue sheds load with ErrQueueFull instead of
// buffering, and admitted jobs all finish once the worker frees up.
func TestBackpressure(t *testing.T) {
	m := newManager(t, Config{Workers: 1, QueueDepth: 2})
	defer drain(t, m)

	gate := make(chan struct{})
	blockedReq := Request{
		Kind: KindArchive,
		Source: func(ctx context.Context) (io.Reader, error) {
			select {
			case <-gate:
				return bytes.NewReader(testPayload(4096)), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	}
	// First job: wait until the worker has pulled it off the queue, so
	// the two queue slots are reliably free for the next submissions.
	first, err := m.Submit(blockedReq)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, _ := m.Job(first); s.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ids := []int64{first}
	for i := 0; i < 2; i++ { // fill both queue slots
		id, err := m.Submit(blockedReq)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if _, err := m.Submit(blockedReq); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: got %v, want ErrQueueFull", err)
	}
	close(gate)
	for _, id := range ids {
		if _, snap, err := m.Wait(context.Background(), id); err != nil || snap.State != StateSucceeded {
			t.Fatalf("job %d: state %s, err %v", id, snap.State, err)
		}
	}
	// With the queue empty again, admission reopens.
	id, err := m.Submit(Request{
		Kind:           KindArchive,
		Source:         func(context.Context) (io.Reader, error) { return bytes.NewReader(testPayload(4096)), nil },
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatalf("admission did not reopen: %v", err)
	}
	m.Wait(context.Background(), id)
}

// TestRetryTransientThenSucceed: a source that fails twice with a
// transient fault is retried with backoff and succeeds on the third
// attempt, with the retry count on the record.
func TestRetryTransientThenSucceed(t *testing.T) {
	m := newManager(t, Config{Workers: 1, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})
	defer drain(t, m)

	flaky := faultinject.NewFlaky(2)
	id, err := m.Submit(Request{
		Kind: KindArchive,
		Source: func(context.Context) (io.Reader, error) {
			return flaky.Reader(bytes.NewReader(testPayload(8192))), nil
		},
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, snap, err := m.Wait(context.Background(), id)
	if err != nil || snap.State != StateSucceeded {
		t.Fatalf("state %s, err %v", snap.State, err)
	}
	if snap.Retries != 2 || snap.Attempts != 3 {
		t.Fatalf("retries %d attempts %d, want 2 and 3", snap.Retries, snap.Attempts)
	}
	back, _, err := core.RestoreVolume(res.Archived.Volume, res.Archived.BootstrapText,
		core.RestoreOptions{Mode: core.RestoreNative})
	if err != nil || !bytes.Equal(back, testPayload(8192)) {
		t.Fatalf("flaky-source archive did not roundtrip: %v", err)
	}
}

// TestRetryBudgetExhausted: a fault that outlives the retry budget fails
// the job with the transient error preserved.
func TestRetryBudgetExhausted(t *testing.T) {
	m := newManager(t, Config{Workers: 1, MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	defer drain(t, m)

	flaky := faultinject.NewFlaky(100)
	id, err := m.Submit(Request{
		Kind: KindArchive,
		Source: func(context.Context) (io.Reader, error) {
			return flaky.Reader(bytes.NewReader(testPayload(4096))), nil
		},
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := m.Wait(context.Background(), id)
	if snap.State != StateFailed {
		t.Fatalf("state %s, want failed", snap.State)
	}
	if !IsTransient(err) || !errors.Is(err, faultinject.ErrTransient) {
		t.Fatalf("final error %v must preserve the transient cause", err)
	}
	if snap.Attempts != 3 || snap.Retries != 2 {
		t.Fatalf("attempts %d retries %d, want 3 and 2", snap.Attempts, snap.Retries)
	}
}

// TestNonTransientFailsFast: a permanent fault is not retried.
func TestNonTransientFailsFast(t *testing.T) {
	arch, _ := fixture(t)
	m := newManager(t, Config{Workers: 1})
	defer drain(t, m)

	req := restoreReq(arch)
	req.Sink = func(context.Context) (io.Writer, error) { return faultinject.Writer(io.Discard, 64), nil }
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := m.Wait(context.Background(), id)
	if snap.State != StateFailed || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("state %s err %v, want failed with ErrInjected", snap.State, err)
	}
	if snap.Attempts != 1 {
		t.Fatalf("attempts %d: permanent faults must not be retried", snap.Attempts)
	}
}

// TestPanicIsolation: a job that panics is marked failed with the stack
// captured, and the worker survives to run the next job.
func TestPanicIsolation(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	defer drain(t, m)

	id, err := m.Submit(Request{
		Kind:           KindArchive,
		Source:         func(context.Context) (io.Reader, error) { panic("injected chaos panic") },
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := m.Wait(context.Background(), id)
	if snap.State != StateFailed || !errors.Is(err, ErrPanicked) {
		t.Fatalf("state %s err %v, want failed with ErrPanicked", snap.State, err)
	}
	if snap.Panic == "" {
		t.Fatal("no stack captured")
	}
	if snap.Retries != 0 {
		t.Fatalf("panicked job retried %d times", snap.Retries)
	}
	// The same worker must still be alive and able to run jobs.
	id, err = m.Submit(Request{
		Kind:           KindArchive,
		Source:         func(context.Context) (io.Reader, error) { return bytes.NewReader(testPayload(4096)), nil },
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, snap, err := m.Wait(context.Background(), id); err != nil || snap.State != StateSucceeded {
		t.Fatalf("worker did not survive the panic: state %s err %v", snap.State, err)
	}
}

// TestDeadline: a job that outlives its Timeout fails with
// context.DeadlineExceeded and is not retried (deadlines are the
// caller's word, not a transient fault).
func TestDeadline(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	defer drain(t, m)

	id, err := m.Submit(Request{
		Kind: KindArchive,
		Source: func(context.Context) (io.Reader, error) {
			return faultinject.SlowReader(bytes.NewReader(testPayload(64*1024)), 20*time.Millisecond), nil
		},
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
		Timeout:        30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := m.Wait(context.Background(), id)
	if snap.State != StateFailed || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("state %s err %v, want failed with DeadlineExceeded", snap.State, err)
	}
	if snap.Retries != 0 {
		t.Fatal("deadline expiry must not be retried")
	}
}

// TestCancelQueuedAndRunning: cancellation lands wherever the job is —
// a queued job terminates without ever starting, a running one aborts.
func TestCancelQueuedAndRunning(t *testing.T) {
	m := newManager(t, Config{Workers: 1, QueueDepth: 4})
	defer drain(t, m)

	runningID, err := m.Submit(Request{
		Kind: KindArchive,
		Source: func(ctx context.Context) (io.Reader, error) {
			<-ctx.Done() // hold the worker until the job is cancelled
			return nil, ctx.Err()
		},
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatal(err)
	}
	queuedID, err := m.Submit(restoreReqFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, _ := m.Job(runningID); s.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gated job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(runningID); err != nil {
		t.Fatal(err)
	}

	_, snap, _ := m.Wait(context.Background(), queuedID)
	if snap.State != StateCancelled {
		t.Fatalf("queued job state %s, want cancelled", snap.State)
	}
	if !snap.StartedAt.IsZero() {
		t.Fatal("cancelled-while-queued job reports a start time")
	}
	_, snap, _ = m.Wait(context.Background(), runningID)
	if snap.State != StateCancelled {
		t.Fatalf("running job state %s, want cancelled", snap.State)
	}
	if err := m.Cancel(99999); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel of unknown id: %v", err)
	}
}

func restoreReqFixture(t *testing.T) Request {
	arch, _ := fixture(t)
	return restoreReq(arch)
}

// TestDrainSemantics: Drain stops admission immediately, lets in-flight
// work finish, and a second drain is an error.
func TestDrainSemantics(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	var ids []int64
	for i := 0; i < 4; i++ {
		id, err := m.Submit(restoreReqFixture(t))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(restoreReqFixture(t)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	for _, id := range ids {
		snap, err := m.Job(id)
		if err != nil || snap.State != StateSucceeded {
			t.Fatalf("job %d after graceful drain: state %s err %v", id, snap.State, err)
		}
	}
	if err := m.Drain(ctx); err == nil {
		t.Fatal("second drain must error")
	}
}

// TestDrainDeadlineCancelsStragglers: when the drain deadline passes,
// in-flight jobs are cancelled rather than held onto forever.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	id, err := m.Submit(Request{
		Kind: KindArchive,
		Source: func(ctx context.Context) (io.Reader, error) {
			<-ctx.Done() // only the forced drain can unblock this job
			return nil, ctx.Err()
		},
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Job(id)
	if err != nil || snap.State != StateCancelled {
		t.Fatalf("straggler after forced drain: state %s err %v, want cancelled", snap.State, err)
	}
}
