package jobs

// The journal is the manager's crash-safe memory: one JSON object per
// line, append-only, fsynced on terminal events (done, drain) and left
// buffered for the chatty ones (submit, start, retry). After a crash the
// tail may lose buffered lines but never corrupts — a torn final line is
// skipped on replay — so a restarted manager always reconstructs a
// consistent job table: every job it knows about, with any job lacking a
// terminal event reported as interrupted.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// event is one journal line.
type event struct {
	T        string    `json:"t"` // submit | start | retry | done | drain
	TS       time.Time `json:"ts"`
	ID       int64     `json:"id,omitempty"`
	Kind     Kind      `json:"kind,omitempty"`
	State    State     `json:"state,omitempty"` // terminal state, on done
	Attempt  int       `json:"attempt,omitempty"`
	Retries  int       `json:"retries,omitempty"`
	Err      string    `json:"err,omitempty"`
	Graceful bool      `json:"graceful,omitempty"` // on drain: all jobs finished in time
}

type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

// write appends one event; sync flushes and fsyncs so the event survives
// a crash — the durability contract for terminal events.
func (j *journal) write(ev event, sync bool) {
	line, err := json.Marshal(ev)
	if err != nil {
		return // events are plain structs; this cannot happen
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w.Write(line)
	j.w.WriteByte('\n')
	if sync {
		j.w.Flush()
		j.f.Sync()
	}
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReplayJournal reads a journal file and reconstructs the job table it
// describes, in ID order. Jobs with no terminal "done" event are
// reported as StateInterrupted. A missing file is an empty journal; a
// torn or malformed line ends the replay at the last good line.
func ReplayJournal(path string) ([]Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()

	table := map[int64]*Snapshot{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			break // torn tail from a crash: stop at the last good line
		}
		switch ev.T {
		case "submit":
			table[ev.ID] = &Snapshot{
				ID: ev.ID, Kind: ev.Kind, State: StateInterrupted, SubmittedAt: ev.TS,
			}
		case "start":
			if s := table[ev.ID]; s != nil {
				s.StartedAt = ev.TS
			}
		case "retry":
			if s := table[ev.ID]; s != nil {
				s.Retries++
				s.Attempts = ev.Attempt
			}
		case "done":
			if s := table[ev.ID]; s != nil {
				s.State = ev.State
				s.Retries = ev.Retries
				s.Err = ev.Err
				s.FinishedAt = ev.TS
			}
		}
	}
	out := make([]Snapshot, 0, len(table))
	for _, s := range table {
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, sc.Err()
}
