// Package jobs runs many concurrent archive/restore/salvage/range-query
// jobs against one shared bounded worker pool. It is the long-running
// service layer the one-shot core facade lacks: a Manager owns K workers
// (each with its own reusable core.Engine, since engines are not safe
// for concurrent use), a bounded admission queue that sheds load instead
// of buffering without limit, per-job deadlines and cancellation,
// retry-with-backoff for transient I/O faults, panic isolation so one
// poisoned job cannot take the process down, and an append-only JSONL
// journal that survives a crash and replays on restart.
//
// Concurrency is bounded in exactly one place: each worker runs its job
// with core workers forced to 1, so total pipeline parallelism equals
// the manager's pool size no matter how many jobs are in flight — there
// are no per-call worker pools stacking multiplicatively.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"microlonys/internal/archindex"
	"microlonys/internal/core"
	"microlonys/media"
)

// Kind names the operation a job performs.
type Kind string

const (
	KindArchive   Kind = "archive"
	KindRestore   Kind = "restore"
	KindRange     Kind = "range"
	KindTable     Kind = "table"
	KindListIndex Kind = "listindex"
	KindSalvage   Kind = "salvage"
)

// State is a job's lifecycle position. Terminal states are Succeeded,
// Failed and Cancelled; everything reaches one of them exactly once.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateRetrying  State = "retrying"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateInterrupted only appears in replayed journals: the job was
	// non-terminal when the previous process stopped.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity — the caller should back off (HTTP layers map it to 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining is returned by Submit after Drain has begun.
	ErrDraining = errors.New("jobs: manager draining")
	// ErrPanicked wraps the recovered value of a job that panicked; the
	// stack is preserved in the job's snapshot.
	ErrPanicked = errors.New("jobs: job panicked")
	// ErrUnknownJob is returned for an ID the manager has never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrBadRequest is returned by Submit for a request missing the
	// inputs its kind needs.
	ErrBadRequest = errors.New("jobs: bad request")
)

// Request describes one job. Inputs are factories where retries need a
// fresh end per attempt: Source reopens the archive input stream, Sink
// reopens the restore output. Factories receive the job's context —
// cancelled on Cancel, deadline expiry or forced drain — and should
// abort rather than block past it. A nil Sink captures output in memory
// and returns it in Result.Data.
type Request struct {
	Kind Kind

	// Archive inputs.
	Source         func(ctx context.Context) (io.Reader, error)
	ArchiveOptions core.Options

	// Restore-family inputs.
	Volume         *media.Volume
	BootstrapText  string
	RestoreOptions core.RestoreOptions
	Sink           func(ctx context.Context) (io.Writer, error)
	Off, Length    int // KindRange
	Table          string

	// Salvage inputs.
	Sheets         []*media.Medium
	SalvageOptions core.SalvageOptions

	// Timeout, when positive, bounds the job's total wall clock across
	// all retry attempts. Context, when non-nil, is the job's parent
	// context — cancelling it cancels the job wherever it is.
	Timeout time.Duration
	Context context.Context

	// MaxRetries overrides the manager's retry budget for this job:
	// 0 means the manager default, negative means no retries.
	MaxRetries int
}

// Result carries a succeeded job's outputs; fields are kind-specific.
type Result struct {
	Archived *core.Archived      // KindArchive
	Data     []byte              // restore family with a nil Sink
	Stats    *core.RestoreStats  // restore family
	Report   *core.SalvageReport // KindSalvage
	Index    *archindex.Index    // KindListIndex
}

// Snapshot is a point-in-time view of a job, safe to serialise.
type Snapshot struct {
	ID       int64  `json:"id"`
	Kind     Kind   `json:"kind"`
	State    State  `json:"state"`
	Attempts int    `json:"attempts"`
	Retries  int    `json:"retries"`
	Err      string `json:"err,omitempty"`
	Panic    string `json:"panic,omitempty"` // captured stack, if the job panicked

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	// BytesOut counts bytes delivered to the job's sink so far — a live
	// progress figure for restores, final for terminal jobs.
	BytesOut int64 `json:"bytes_out"`
}

// Config sizes a Manager.
type Config struct {
	// Workers is the shared pool size (defaults to 2). Each worker runs
	// one job at a time with core parallelism 1.
	Workers int
	// QueueDepth bounds admitted-but-unstarted jobs (defaults to 16).
	// Submit sheds load with ErrQueueFull beyond it.
	QueueDepth int
	// MaxRetries is the default transient-fault retry budget per job
	// (defaults to 3; a request can override).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the exponential retry delay:
	// attempt n sleeps a jittered min(MaxBackoff, BaseBackoff<<(n-1)).
	// Defaults: 10ms base, 1s cap.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JournalPath, when set, appends a JSONL event log the manager
	// fsyncs on terminal events; an existing journal is replayed into
	// Recovered() and IDs continue after it.
	JournalPath string
	// Seed feeds the jitter RNG (0 means 1, for determinism).
	Seed int64
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

type job struct {
	id  int64
	req Request

	ctx    context.Context
	cancel context.CancelFunc

	done     chan struct{} // closed exactly once, on reaching a terminal state
	bytesOut atomic.Int64

	mu         sync.Mutex // guards the mutable snapshot fields below
	state      State
	attempts   int
	retries    int
	err        error
	panicStack string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	result     Result
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID: j.id, Kind: j.req.Kind, State: j.state,
		Attempts: j.attempts, Retries: j.retries,
		Panic:       j.panicStack,
		SubmittedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
		BytesOut: j.bytesOut.Load(),
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Manager owns the worker pool, the admission queue and the journal.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	jobs      map[int64]*job
	order     []int64 // submission order, for stable listings
	nextID    int64
	draining  bool
	recovered []Snapshot
	rng       *rand.Rand

	queue   chan *job
	workers sync.WaitGroup
	journal *journal
}

// New builds a Manager, replays any existing journal at cfg.JournalPath,
// starts the worker pool, and is ready to accept Submit calls.
func New(cfg Config) (*Manager, error) {
	cfg.fill()
	m := &Manager{
		cfg:   cfg,
		jobs:  make(map[int64]*job),
		queue: make(chan *job, cfg.QueueDepth),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.JournalPath != "" {
		recovered, err := ReplayJournal(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("jobs: replaying journal: %w", err)
		}
		m.recovered = recovered
		for _, s := range recovered {
			if s.ID > m.nextID {
				m.nextID = s.ID
			}
		}
		j, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		m.journal = j
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m, nil
}

// Recovered returns the jobs replayed from a pre-existing journal.
// Jobs that were non-terminal when the previous process stopped are
// reported as StateInterrupted — the caller decides whether to resubmit.
func (m *Manager) Recovered() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, len(m.recovered))
	copy(out, m.recovered)
	return out
}

// Submit admits a job without blocking: a full queue returns
// ErrQueueFull, a draining manager ErrDraining. On success the job is
// queued and its ID returned.
func (m *Manager) Submit(req Request) (int64, error) {
	if err := validate(req); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return 0, ErrDraining
	}
	m.nextID++
	parent := req.Context
	if parent == nil {
		parent = context.Background()
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if req.Timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, req.Timeout)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	j := &job{
		id: m.nextID, req: req,
		ctx: ctx, cancel: cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		cancel()
		m.nextID--
		return 0, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.journalEvent(event{T: "submit", ID: j.id, Kind: j.req.Kind}, false)
	return j.id, nil
}

func validate(req Request) error {
	switch req.Kind {
	case KindArchive:
		if req.Source == nil {
			return fmt.Errorf("%w: archive needs a Source", ErrBadRequest)
		}
	case KindRestore, KindRange, KindListIndex:
		if req.Volume == nil {
			return fmt.Errorf("%w: %s needs a Volume", ErrBadRequest, req.Kind)
		}
	case KindTable:
		if req.Volume == nil || req.Table == "" {
			return fmt.Errorf("%w: table needs a Volume and a Table", ErrBadRequest)
		}
	case KindSalvage:
		if len(req.Sheets) == 0 {
			return fmt.Errorf("%w: salvage needs Sheets", ErrBadRequest)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadRequest, req.Kind)
	}
	return nil
}

// Cancel cancels a job wherever it is — queued jobs terminate without
// running, running jobs abort at the pipeline's next cancellation point.
func (m *Manager) Cancel(id int64) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}
	j.cancel()
	return nil
}

// Job returns one job's snapshot.
func (m *Manager) Job(id int64) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrUnknownJob
	}
	return j.snapshot(), nil
}

// Jobs lists every job this manager has admitted, in submission order.
func (m *Manager) Jobs() []Snapshot {
	m.mu.Lock()
	ids := make([]int64, len(m.order))
	copy(ids, m.order)
	js := make([]*job, 0, len(ids))
	for _, id := range ids {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// then returns the job's result (zero unless it succeeded), its final
// snapshot, and the job's error if it did not succeed.
func (m *Manager) Wait(ctx context.Context, id int64) (Result, Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Result{}, Snapshot{}, ErrUnknownJob
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Result{}, j.snapshot(), ctx.Err()
	}
	j.mu.Lock()
	res, err := j.result, j.err
	j.mu.Unlock()
	return res, j.snapshot(), err
}

// Drain stops admission, lets queued and running jobs finish until ctx
// expires, then cancels whatever is still in flight, waits for the pool
// to empty, and flushes and closes the journal. Safe to call once;
// Submit returns ErrDraining from the moment it begins.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return errors.New("jobs: already draining")
	}
	m.draining = true
	close(m.queue) // Submit holds mu while sending, so no send can race this
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(finished)
	}()
	graceful := true
	select {
	case <-finished:
	case <-ctx.Done():
		graceful = false
		m.mu.Lock()
		for _, j := range m.jobs {
			j.cancel()
		}
		m.mu.Unlock()
		<-finished // cancellation unblocks every pipeline; the pool empties
	}
	m.journalEvent(event{T: "drain", Graceful: graceful}, true)
	if m.journal != nil {
		return m.journal.close()
	}
	return nil
}

func (m *Manager) journalEvent(ev event, sync bool) {
	if m.journal == nil {
		return
	}
	ev.TS = time.Now()
	m.journal.write(ev, sync)
}

// worker owns one core.Engine and runs queued jobs serially until the
// queue closes. Engine parallelism is pinned to 1 so the manager's pool
// size is the only concurrency knob.
func (m *Manager) worker() {
	defer m.workers.Done()
	eng := core.NewEngine(1)
	for j := range m.queue {
		m.runJob(eng, j)
	}
}

func (m *Manager) runJob(eng *core.Engine, j *job) {
	defer j.cancel() // release the deadline timer whatever happens

	if err := j.ctx.Err(); err != nil {
		// Cancelled while queued: terminal without ever running.
		m.finish(j, Result{}, fmt.Errorf("jobs: cancelled while queued: %w", err))
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	m.journalEvent(event{T: "start", ID: j.id, Kind: j.req.Kind}, false)

	maxRetries := m.cfg.MaxRetries
	if j.req.MaxRetries < 0 {
		maxRetries = 0
	} else if j.req.MaxRetries > 0 {
		maxRetries = j.req.MaxRetries
	}

	var res Result
	var err error
	for attempt := 1; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt
		j.state = StateRunning
		j.mu.Unlock()

		res, err = m.attempt(eng, j)
		if err == nil || j.ctx.Err() != nil ||
			errors.Is(err, ErrPanicked) || !IsTransient(err) || attempt > maxRetries {
			break
		}

		j.mu.Lock()
		j.state = StateRetrying
		j.retries++
		j.mu.Unlock()
		m.journalEvent(event{T: "retry", ID: j.id, Attempt: attempt, Err: err.Error()}, false)
		if !m.backoff(j.ctx, attempt) {
			err = fmt.Errorf("jobs: cancelled during retry backoff: %w", j.ctx.Err())
			break
		}
	}
	m.finish(j, res, err)
}

// backoff sleeps the jittered exponential delay for the given attempt;
// it reports false if ctx expired first.
func (m *Manager) backoff(ctx context.Context, attempt int) bool {
	d := m.cfg.BaseBackoff << (attempt - 1)
	if d > m.cfg.MaxBackoff || d <= 0 {
		d = m.cfg.MaxBackoff
	}
	m.mu.Lock()
	d = d/2 + time.Duration(m.rng.Int63n(int64(d/2)+1))
	m.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attempt runs one try of the job's operation, isolating panics: a
// panicking job returns ErrPanicked with the stack captured instead of
// unwinding into the worker loop.
func (m *Manager) attempt(eng *core.Engine, j *job) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.panicStack = string(debug.Stack())
			j.mu.Unlock()
			res = Result{}
			err = fmt.Errorf("%w: %v", ErrPanicked, r)
		}
	}()

	// Each attempt writes into a fresh sink so a failed attempt's
	// partial output never leaks into the final result.
	j.bytesOut.Store(0)
	var buf *bytes.Buffer
	var sink io.Writer
	needsSink := j.req.Kind == KindRestore || j.req.Kind == KindSalvage
	if needsSink {
		if j.req.Sink != nil {
			sink, err = j.req.Sink(j.ctx)
			if err != nil {
				return Result{}, fmt.Errorf("jobs: opening sink: %w", err)
			}
		} else {
			buf = &bytes.Buffer{}
			sink = buf
		}
		sink = &countingWriter{w: sink, n: &j.bytesOut}
	}

	switch j.req.Kind {
	case KindArchive:
		r, err := j.req.Source(j.ctx)
		if err != nil {
			return Result{}, fmt.Errorf("jobs: opening source: %w", err)
		}
		opts := j.req.ArchiveOptions
		opts.Workers = 1
		opts.Context = j.ctx
		arch, err := core.CreateArchiveStream(r, opts)
		if err != nil {
			return Result{}, err
		}
		return Result{Archived: arch}, nil

	case KindRestore:
		ro := j.req.RestoreOptions
		ro.Context = j.ctx
		st, err := eng.RestoreToWriter(sink, j.req.Volume, j.req.BootstrapText, ro)
		if err != nil {
			return Result{}, err
		}
		res = Result{Stats: st}
		if buf != nil {
			res.Data = buf.Bytes()
		}
		return res, nil

	case KindRange:
		ro := j.req.RestoreOptions
		ro.Context = j.ctx
		data, st, err := eng.RestoreRange(j.req.Volume, j.req.BootstrapText, j.req.Off, j.req.Length, ro)
		if err != nil {
			return Result{}, err
		}
		j.bytesOut.Store(int64(len(data)))
		return Result{Data: data, Stats: st}, nil

	case KindTable:
		ro := j.req.RestoreOptions
		ro.Context = j.ctx
		data, st, err := eng.RestoreTable(j.req.Volume, j.req.BootstrapText, j.req.Table, ro)
		if err != nil {
			return Result{}, err
		}
		j.bytesOut.Store(int64(len(data)))
		return Result{Data: data, Stats: st}, nil

	case KindListIndex:
		ro := j.req.RestoreOptions
		ro.Context = j.ctx
		x, st, err := eng.ListIndex(j.req.Volume, j.req.BootstrapText, ro)
		if err != nil {
			return Result{}, err
		}
		return Result{Index: x, Stats: st}, nil

	case KindSalvage:
		so := j.req.SalvageOptions
		so.Context = j.ctx
		rep, err := eng.SalvageTo(sink, j.req.Sheets, so)
		if err != nil {
			return Result{}, err
		}
		res = Result{Report: rep}
		if buf != nil {
			res.Data = buf.Bytes()
		}
		return res, nil
	}
	return Result{}, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, j.req.Kind)
}

// finish moves a job to its terminal state and journals it durably.
func (m *Manager) finish(j *job, res Result, err error) {
	state := StateSucceeded
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		state = StateCancelled
	default:
		state = StateFailed
	}
	j.mu.Lock()
	j.state = state
	j.err = err
	j.result = res
	j.finished = time.Now()
	retries := j.retries
	j.mu.Unlock()
	ev := event{T: "done", ID: j.id, Kind: j.req.Kind, State: state, Retries: retries}
	if err != nil {
		ev.Err = err.Error()
	}
	m.journalEvent(ev, true)
	close(j.done)
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
